package psmr_test

// End-to-end crash/restart recovery: a replica is killed mid-workload,
// the cluster keeps serving, and the replica is restarted from a live
// peer — snapshot restore plus decided-suffix replay — after which it
// must converge to byte-identical fingerprints with the survivors.
// Covered across sP-SMR (scan and index engines), optimistic sP-SMR
// (both engines — checkpoints must capture only order-confirmed
// state), and classic SMR (the core replica's inline checkpoint path).
// Runs under `make race` with a scaled-down workload.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
)

const (
	recTestKeys    = 64
	recTestWorkers = 3
)

func TestCrashRestartConvergence(t *testing.T) {
	variants := []struct {
		name       string
		mode       psmr.Mode
		scheduler  psmr.SchedulerKind
		optimistic bool
	}{
		{name: "spsmr-scan", mode: psmr.ModeSPSMR, scheduler: psmr.SchedScan},
		{name: "spsmr-index", mode: psmr.ModeSPSMR, scheduler: psmr.SchedIndex},
		{name: "optimistic-scan", mode: psmr.ModeSPSMR, scheduler: psmr.SchedScan, optimistic: true},
		{name: "optimistic-index", mode: psmr.ModeSPSMR, scheduler: psmr.SchedIndex, optimistic: true},
		{name: "smr", mode: psmr.ModeSMR},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			runCrashRestart(t, v.mode, v.scheduler, v.optimistic)
		})
	}
}

func runCrashRestart(t *testing.T, mode psmr.Mode, scheduler psmr.SchedulerKind, optimistic bool, mutate ...func(*psmr.Config)) {
	t.Helper()
	var (
		mu     sync.Mutex
		stores []*markedStore
	)
	const interval = 20
	cfg := psmr.Config{
		Mode:       mode,
		Workers:    recTestWorkers,
		Scheduler:  scheduler,
		Optimistic: optimistic,
		Spec:       kvstore.Spec(),
		Checkpoint: psmr.CheckpointConfig{Interval: interval},
		NewService: func() command.Service {
			mu.Lock()
			defer mu.Unlock()
			st := kvstore.New()
			st.Preload(recTestKeys)
			ms := &markedStore{Store: st}
			stores = append(stores, ms)
			return ms
		},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	cl, err := psmr.StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	clients, opsPerPhase := 3, 30
	if raceEnabled {
		clients, opsPerPhase = 2, 12
	}

	// runPhase drives one workload phase to completion on all clients.
	runPhase := func(phase int) {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			inv, err := cl.NewClientID(uint64(phase*100 + c + 1))
			if err != nil {
				t.Fatalf("NewClient: %v", err)
			}
			t.Cleanup(func() { _ = inv.Close() })
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(phase*1000 + c)))
				const half = recTestKeys / 2
				for i := 0; i < opsPerPhase; i++ {
					var err error
					switch rng.Intn(10) {
					case 0, 1, 2:
						_, err = inv.Invoke(kvstore.CmdTransfer,
							kvstore.EncodeTransfer(rng.Uint64()%half, rng.Uint64()%half, rng.Uint64()%5))
					case 3, 4:
						val := binary.LittleEndian.AppendUint64(nil, rng.Uint64())
						_, err = inv.Invoke(kvstore.CmdUpdate,
							kvstore.EncodeKeyValue(half+rng.Uint64()%half, val))
					default:
						_, err = inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(rng.Uint64()%recTestKeys))
					}
					if err != nil {
						errCh <- fmt.Errorf("phase %d client %d op %d: %w", phase, c, i, err)
						return
					}
				}
				errCh <- nil
			}(c)
		}
		wg.Wait()
		for c := 0; c < clients; c++ {
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: both replicas live; enough traffic to cross several
	// checkpoint intervals.
	runPhase(1)
	// Phase 2: replica 1 is dead; the cluster keeps serving and
	// replica 0 keeps checkpointing past replica 1's last position.
	cl.CrashReplica(1)
	runPhase(2)

	// Restart replica 1 from replica 0's newest snapshot + suffix.
	if err := cl.RestartReplica(1); err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	mu.Lock()
	if len(stores) != 3 {
		mu.Unlock()
		t.Fatalf("expected a fresh service for the restarted replica, have %d", len(stores))
	}
	live, recovered := stores[0], stores[2]
	mu.Unlock()

	ck := cl.CheckpointCounters()
	if len(ck) != 2 || ck[1].Restores != 1 {
		t.Fatalf("recovered replica did not restore from a peer: %+v", ck)
	}
	if ck[1].RestoredCommands == 0 {
		t.Fatalf("recovery replayed the whole history instead of restoring a snapshot: %+v", ck)
	}
	if ck[0].Checkpoints == 0 || ck[0].LastBytes == 0 {
		t.Fatalf("live replica never checkpointed: %+v", ck)
	}

	// Phase 3: the recovered replica serves live traffic again.
	runPhase(3)

	// Quiesce: a global-barrier marker insert, executed on BOTH
	// replicas; under speculation additionally require every decided
	// command to be order-CONFIRMED on both (the reconciler is
	// sequential, so a confirmed tail implies a confirmed prefix).
	inv, err := cl.NewClientID(9999)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })
	if out, err := inv.Invoke(kvstore.CmdInsert,
		kvstore.EncodeKeyValue(recTestKeys+1, kvstore.EncodeKey(1))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("marker insert: %v %v", err, out)
	}
	totalDecided := uint64(3*clients*opsPerPhase + 1)
	waitForCondition(t, 15*time.Second, func() bool {
		if live.inserts.Load() < 1 || recovered.inserts.Load() < 1 {
			return false
		}
		if !optimistic {
			return true
		}
		cs := cl.OptimisticCounters()
		if len(cs) != 2 {
			return false
		}
		restored := cl.CheckpointCounters()[1].RestoredCommands
		return cs[0].Decided() >= totalDecided && cs[1].Decided() >= totalDecided-restored
	}, func() string {
		return fmt.Sprintf("marker inserts %d/%d, optimistic counters %v (want %d decided)",
			live.inserts.Load(), recovered.inserts.Load(), cl.OptimisticCounters(), totalDecided)
	})

	if f0, f1 := live.Fingerprint(), recovered.Fingerprint(); f0 != f1 {
		t.Fatalf("recovered replica diverged: %x vs live %x (checkpoints: %+v)", f1, f0, cl.CheckpointCounters())
	}
	// The original replica-1 store must have stopped cold at the crash
	// (its state is NOT the converged one — recovery really rebuilt a
	// fresh service from snapshot + replay).
	if stores[1].Fingerprint() == live.Fingerprint() {
		t.Log("note: crashed store coincidentally matches (tiny workload); recovery path still verified via counters")
	}
}

// A replica restarted BEFORE any checkpoint exists recovers by full
// suffix replay: the enabled retain floor pins the peers' logs at
// instance 0 until the first snapshot, so nothing is lost.
func TestRestartBeforeFirstCheckpoint(t *testing.T) {
	var (
		mu     sync.Mutex
		stores []*markedStore
	)
	cl, err := psmr.StartCluster(psmr.Config{
		Mode:      psmr.ModeSPSMR,
		Workers:   2,
		Scheduler: psmr.SchedIndex,
		Spec:      kvstore.Spec(),
		// Interval far beyond the workload: no checkpoint ever taken.
		Checkpoint: psmr.CheckpointConfig{Interval: 1 << 20},
		NewService: func() command.Service {
			mu.Lock()
			defer mu.Unlock()
			st := kvstore.New()
			st.Preload(16)
			ms := &markedStore{Store: st}
			stores = append(stores, ms)
			return ms
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	inv, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })
	for i := 0; i < 10; i++ {
		if out, err := inv.Invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(1, 2, 1)); err != nil || out[0] != kvstore.OK {
			t.Fatalf("transfer %d: %v %v", i, err, out)
		}
	}
	cl.CrashReplica(1)
	if err := cl.RestartReplica(1); err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	ck := cl.CheckpointCounters()
	if len(ck) != 2 || ck[1].Restores != 0 || ck[1].RestoredCommands != 0 {
		t.Fatalf("suffix-only recovery should not count a snapshot restore: %+v", ck)
	}
	if out, err := inv.Invoke(kvstore.CmdInsert,
		kvstore.EncodeKeyValue(20, kvstore.EncodeKey(1))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("marker insert: %v %v", err, out)
	}
	mu.Lock()
	live, recovered := stores[0], stores[2]
	mu.Unlock()
	waitForCondition(t, 10*time.Second, func() bool {
		return live.inserts.Load() >= 1 && recovered.inserts.Load() >= 1
	}, func() string {
		return fmt.Sprintf("marker inserts %d/%d", live.inserts.Load(), recovered.inserts.Load())
	})
	if f0, f1 := live.Fingerprint(), recovered.Fingerprint(); f0 != f1 {
		t.Fatalf("suffix-only recovery diverged: %x vs %x", f1, f0)
	}
}
