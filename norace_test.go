//go:build !race

package psmr_test

// raceEnabled scales down workload sizes when the race detector
// multiplies the cost of every synchronization operation.
const raceEnabled = false
