package psmr_test

// Flight-recorder e2e tests: cross-process trace propagation over the
// TCP transport (the client stamps submit in its own process and the
// stamp must land in the server's per-stage histograms via the wire
// tag), and the anomaly-triggered diagnostic bundle on a dead decision
// relay.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/core"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

// TestWireTraceTCPSingleHistogram runs the cluster and the client on
// two separate TCP nodes (same-node sends take the deliverLocal
// shortcut, so distinct nodes are what stand in for distinct OS
// processes) and checks that one sampled command's stamps fold into a
// single trace on the server: the client-side submit stamp crosses the
// wire as a trace tag, the proxy absorbs it, and every server-side
// stage lands in the same per-stage histogram set.
func TestWireTraceTCPSingleHistogram(t *testing.T) {
	nodeA, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	t.Cleanup(func() { _ = nodeA.Close() })
	nodeB, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	t.Cleanup(func() { _ = nodeB.Close() })

	// Optimistic execution needs a versioned service: run the kvstore
	// (the daemon's service) rather than the root tests' register array.
	const workers = 2
	cl, err := psmr.StartCluster(psmr.Config{
		Mode:         psmr.ModeSPSMR,
		Workers:      workers,
		Scheduler:    psmr.SchedIndex,
		Proxies:      1,
		FanoutDegree: 2,
		Optimistic:   true,
		TraceSample:  1,
		Transport:    nodeA,
		Spec:         kvstore.Spec(),
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(64)
			return st
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	// Build the remote client by hand, the way cmd/psmr-kv does:
	// its own node, its own sender, its own tracer. The cluster's
	// endpoint names are local to nodeA, so qualify them with nodeA's
	// host:port for the trip across the wire.
	groups := make([]multicast.GroupConfig, 0, len(cl.Groups()))
	for _, g := range cl.Groups() {
		coords := make([]transport.Addr, 0, len(g.Coordinators))
		for _, c := range g.Coordinators {
			coords = append(coords, nodeA.Addr(string(c)))
		}
		groups = append(groups, multicast.GroupConfig{ID: g.ID, Coordinators: coords})
	}
	cg, err := cdep.Compile(kvstore.Spec(), workers)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sender := multicast.NewSender(nodeB, groups)
	sender.UseProxies([]transport.Addr{nodeA.Addr(string(psmr.ProxyAddr(0)))})
	clientTracer := obs.NewTracer(obs.TracerConfig{Sample: 1, Final: obs.StageExecEnd})
	sender.SetTracer(clientTracer)
	const clientID = 42
	client, err := core.NewClient(core.ClientConfig{
		ID:        clientID,
		Sender:    sender,
		CG:        cg,
		Transport: nodeB,
		ReplyAddr: nodeB.Addr(fmt.Sprintf("client/%d", clientID)),
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = client.Close() })

	const n = 32
	for i := uint64(0); i < n; i++ {
		out, err := client.Invoke(kvstore.CmdUpdate,
			kvstore.EncodeKeyValue(i%8, []byte("v")))
		if err != nil {
			t.Fatalf("Invoke(%d): %v", i, err)
		}
		if out[0] != kvstore.OK {
			t.Fatalf("update %d: error code %d", i, out[0])
		}
	}

	// The client process stamped submit (and only submit): its tracer
	// claimed slots but never folded a trace.
	if sampled, folded, _, _ := clientTracer.Counts(); sampled == 0 || folded != 0 {
		t.Fatalf("client tracer sampled=%d folded=%d, want >0 and 0", sampled, folded)
	}

	tr := cl.Tracer()
	waitForCondition(t, 5*time.Second, func() bool {
		_, folded, _, _ := tr.Counts()
		return folded >= n
	}, func() string {
		_, folded, _, _ := tr.Counts()
		return fmt.Sprintf("server folded %d traces, want %d", folded, n)
	})

	// Every server-side stage of the proxied sP-SMR pipeline recorded
	// into the one histogram set.
	for _, st := range []obs.Stage{obs.StageProxySeal, obs.StageLeaderAdmit,
		obs.StageDecided, obs.StageLearnerDeliver, obs.StageEngineAdmit,
		obs.StageExecStart, obs.StageExecEnd, obs.StageConfirm} {
		if tr.StageHistogram(st).Count() == 0 {
			t.Errorf("stage %v never recorded on the server", st)
		}
	}
	if tr.TotalHistogram().Count() == 0 {
		t.Fatal("no end-to-end latencies on the server")
	}

	// The folded records carry the client-side submit stamp: the server
	// never stamps submit itself (the client runs its own sender and
	// tracer), so a nonzero submit timestamp next to the server-side
	// exec stamps proves both processes landed in one trace.
	var crossProcess bool
	for _, rec := range tr.Recent() {
		if rec.Client != clientID {
			continue
		}
		if rec.TS[obs.StageSubmit] != 0 && rec.TS[obs.StageConfirm] != 0 &&
			rec.TS[obs.StageProxySeal] != 0 {
			crossProcess = true
			break
		}
	}
	if !crossProcess {
		t.Fatalf("no folded record carries both the wire-absorbed submit stamp and server stages: %+v", tr.Recent())
	}
}

// TestFlightBundleOnDeadRelay kills the only decision relay of a
// fanned-out deployment and checks the watchdog's anomaly trigger
// captures a diagnostic bundle: the relay-silent transition event, the
// stalled stripe's last forward events, and the registry snapshot.
func TestFlightBundleOnDeadRelay(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:             psmr.ModeSPSMR,
		Workers:          2,
		FanoutDegree:     1,
		RelaySilentAfter: 100 * time.Millisecond,
		RetryInterval:    100 * time.Millisecond,
	})
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(1, 10))

	f := cl.Flight()
	if f == nil {
		t.Fatal("flight recorder nil with journal on by default")
	}
	if got := f.Triggered(); got != 0 {
		t.Fatalf("bundles before the crash: %d", got)
	}

	cl.CrashRelay(0, 0)
	// With the single stripe dead nothing reaches the learners, so this
	// invoke can never complete — its retransmissions keep the group
	// deciding while the relay stays silent (see the watchdog test).
	driver, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = driver.Close() })
	go func() { _, _ = driver.Invoke(cmdWrite, writeInput(2, 20)) }()

	waitForCondition(t, 10*time.Second, func() bool {
		return len(f.Bundles()) > 0
	}, func() string {
		return fmt.Sprintf("no bundle captured (relay silent transitions: %d)", cl.RelaySilent())
	})

	b := f.Bundles()[0]
	if !strings.Contains(b.Reason, "ordering_relay_silent") {
		t.Fatalf("bundle reason = %q, want an ordering_relay_silent trigger", b.Reason)
	}
	var sawSilent, sawForward bool
	for _, e := range b.Events {
		switch e.Kind {
		case obs.EvRelaySilent:
			sawSilent = true
		case obs.EvRelayForward:
			sawForward = true
		}
	}
	if !sawSilent {
		t.Error("bundle journal missing the watchdog's relay-silent transition event")
	}
	if !sawForward {
		t.Error("bundle journal missing the relay's forward events from before the crash")
	}
	var sawMetric bool
	for _, s := range b.Metrics {
		if s.Name == "ordering_relay_forwarded_total" {
			sawMetric = true
			break
		}
	}
	if !sawMetric {
		t.Error("bundle registry snapshot missing ordering_relay_forwarded_total")
	}

	// The dump renders: the operator-facing text form carries the
	// reason and the event log.
	var sb strings.Builder
	f.WriteText(&sb)
	if !strings.Contains(sb.String(), "ordering_relay_silent") {
		t.Fatalf("flight text dump missing the trigger reason:\n%s", sb.String())
	}
}
