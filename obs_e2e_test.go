package psmr_test

// End-to-end observability tests: pipeline-stage tracing through a
// live cluster, the unified metrics registry, the per-tier counter
// snapshot semantics, and the relay-staleness watchdog.

import (
	"strings"
	"sync"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/obs"
)

// TestTracingStageHistogramsE2E traces every command (TraceSample=1)
// through an sP-SMR deployment and checks that the per-stage latency
// histograms cover the whole pipeline, that the registry snapshot and
// the Prometheus text exposition carry them, and that the breakdown
// table renders.
func TestTracingStageHistogramsE2E(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:        psmr.ModeSPSMR,
		Workers:     2,
		Scheduler:   psmr.SchedIndex,
		TraceSample: 1,
	})
	h := mustClient(t, cl)
	for i := uint64(0); i < 64; i++ {
		h.invoke(cmdWrite, writeInput(i%8, i))
	}

	tr := cl.Tracer()
	if tr == nil {
		t.Fatal("tracer nil with TraceSample=1")
	}
	if _, folded, _, _ := tr.Counts(); folded == 0 {
		t.Fatal("no traces folded")
	}
	for _, st := range []obs.Stage{obs.StageSubmit, obs.StageLeaderAdmit,
		obs.StageDecided, obs.StageLearnerDeliver, obs.StageEngineAdmit,
		obs.StageExecStart, obs.StageExecEnd} {
		if st == obs.StageSubmit {
			continue // submit is the base stamp: it has no predecessor delta
		}
		if tr.StageHistogram(st).Count() == 0 {
			t.Errorf("stage %v never recorded", st)
		}
	}
	if tr.TotalHistogram().Count() == 0 {
		t.Fatal("no end-to-end latencies")
	}
	if !strings.Contains(tr.StageBreakdown(), "total") {
		t.Fatalf("breakdown missing total row:\n%s", tr.StageBreakdown())
	}

	flat := cl.Registry().Flatten()
	if flat["trace_folded_total"] == 0 {
		t.Fatalf("registry missing trace fold count: %v", flat["trace_folded_total"])
	}
	if flat["ordering_decided_total"] == 0 {
		t.Fatal("registry missing decided count")
	}
	var sb strings.Builder
	cl.Registry().WritePrometheus(&sb)
	for _, want := range []string{"trace_stage_seconds", "trace_total_seconds", "ordering_decided_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}

// TestTracingDisabled checks TraceSample=-1 builds no tracer and the
// cluster still serves commands and metrics.
func TestTracingDisabled(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:        psmr.ModeSPSMR,
		Workers:     2,
		TraceSample: -1,
	})
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(1, 2))
	if cl.Tracer() != nil {
		t.Fatal("tracer built with TraceSample=-1")
	}
	flat := cl.Registry().Flatten()
	if _, ok := flat["trace_folded_total"]; ok {
		t.Fatal("trace metrics registered with tracing off")
	}
	if flat["ordering_decided_total"] == 0 {
		t.Fatal("registry lost the ordering counters")
	}
}

// TestOrderingCountersSnapshotSemantics checks the OrderingCounters
// surface: zero-valued with the proxy tier off, race-free and
// monotonically non-decreasing when snapshotted concurrently with
// load.
func TestOrderingCountersSnapshotSemantics(t *testing.T) {
	t.Run("ZeroWhenOff", func(t *testing.T) {
		cl, _ := startCluster(t, psmr.Config{Mode: psmr.ModeSPSMR, Workers: 2})
		h := mustClient(t, cl)
		h.invoke(cmdWrite, writeInput(1, 1))
		oc := cl.OrderingCounters()
		if len(oc.Proxies) != 0 {
			t.Fatalf("proxy counters with no proxy tier: %+v", oc.Proxies)
		}
		if oc.Leader.InboundCommands == 0 {
			t.Fatal("leader admitted nothing")
		}
	})
	t.Run("MonotonicUnderLoad", func(t *testing.T) {
		cl, _ := startCluster(t, psmr.Config{
			Mode:    psmr.ModeSPSMR,
			Workers: 2,
			Proxies: 2,
		})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			h := mustClient(t, cl)
			wg.Add(1)
			go func(h *clientHandle, w int) {
				defer wg.Done()
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					h.invoke(cmdWrite, writeInput(uint64(w)*8+i%8, i))
				}
			}(h, w)
		}
		var prev psmr.OrderingCounters
		for i := 0; i < 200; i++ {
			time.Sleep(time.Millisecond)
			oc := cl.OrderingCounters()
			if oc.Leader.InboundFrames < prev.Leader.InboundFrames ||
				oc.Leader.InboundCommands < prev.Leader.InboundCommands {
				t.Errorf("leader counters regressed: %+v -> %+v", prev.Leader, oc.Leader)
				break
			}
			var cmds, prevCmds uint64
			for _, p := range oc.Proxies {
				cmds += p.Commands
			}
			for _, p := range prev.Proxies {
				prevCmds += p.Commands
			}
			if cmds < prevCmds {
				t.Errorf("proxy commands regressed: %d -> %d", prevCmds, cmds)
				break
			}
			prev = oc
		}
		close(stop)
		wg.Wait()
		if prev.Leader.InboundCommands == 0 {
			t.Fatal("no load observed")
		}
	})
}

// TestTierCountersZeroWhenOff checks the speculation and checkpoint
// snapshots read zero-valued (not panic, not garbage) on deployments
// that never enabled those tiers.
func TestTierCountersZeroWhenOff(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{Mode: psmr.ModeSPSMR, Workers: 2})
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(1, 1))
	if oc := cl.OptimisticCounters(); len(oc) != 0 {
		t.Fatalf("optimistic counters on a non-optimistic cluster: %+v", oc)
	}
	for i, c := range cl.CheckpointCounters() {
		if c != (psmr.CheckpointCounters{}) {
			t.Fatalf("replica %d checkpoint counters non-zero with checkpointing off: %+v", i, c)
		}
	}
}

// TestRelayStalenessWatchdog kills the only decision relay of a
// fanned-out deployment and checks the watchdog flags it: the group
// keeps deciding (client retransmissions re-propose), the relay's
// forward counter stands still, and ordering_relay_silent increments
// exactly one transition.
func TestRelayStalenessWatchdog(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:             psmr.ModeSPSMR,
		Workers:          2,
		FanoutDegree:     1,
		RelaySilentAfter: 100 * time.Millisecond,
		RetryInterval:    100 * time.Millisecond,
	})
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(1, 10))
	if got := cl.Registry().Flatten()[`ordering_relay_forwarded_total{group="0",relay="0"}`]; got == 0 {
		t.Fatal("relay forwarded nothing while alive")
	}
	if got := cl.RelaySilent(); got != 0 {
		t.Fatalf("silent transitions before the crash: %d", got)
	}

	cl.CrashRelay(0, 0)
	// With the single stripe dead nothing reaches the learners, so this
	// invoke can never complete — its retransmissions are the load that
	// keeps the group deciding while the relay stays silent. The client
	// is torn down by cluster cleanup, failing the pending call.
	driver, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = driver.Close() })
	go func() { _, _ = driver.Invoke(cmdWrite, writeInput(2, 20)) }()

	deadline := time.Now().Add(10 * time.Second)
	for cl.RelaySilent() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the dead relay")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The idle-age gauge reads stale: no forward for > RelaySilentAfter.
	if idle := cl.Registry().Flatten()[`ordering_relay_idle_seconds{group="0",relay="0"}`]; idle < 0.1 {
		t.Fatalf("idle gauge = %.3fs, want > 0.1s", idle)
	}
	// One transition, not one increment per tick.
	time.Sleep(300 * time.Millisecond)
	if got := cl.RelaySilent(); got != 1 {
		t.Fatalf("silent transitions = %d, want 1", got)
	}
}

// TestClusterMetricsSnapshot sanity-checks the unified Metrics()
// surface: sorted samples, the CPU-role gauges present when a meter is
// attached, and sched steal counters registered on the index engine.
func TestClusterMetricsSnapshot(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:      psmr.ModeSPSMR,
		Workers:   2,
		Scheduler: psmr.SchedIndex,
	})
	h := mustClient(t, cl)
	for i := uint64(0); i < 16; i++ {
		h.invoke(cmdWrite, writeInput(i%4, i))
	}
	samples := cl.Metrics()
	if len(samples) == 0 {
		t.Fatal("empty metrics snapshot")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Name < samples[i-1].Name {
			t.Fatalf("snapshot unsorted: %q after %q", samples[i].Name, samples[i-1].Name)
		}
	}
	flat := cl.Registry().Flatten()
	if _, ok := flat["sched_stolen_total"]; !ok {
		t.Fatal("sched steal counter not registered")
	}
	if flat["ordering_leader_inbound_commands_total"] == 0 {
		t.Fatal("leader inbound counter empty")
	}
}
