// kvcluster: a replicated key-value store hosted over real TCP, with a
// remote client and a small mixed workload.
//
// The cluster's roles (coordinators, acceptors, replicas) run inside a
// server process bound to a TCP node; the client talks to it over the
// network using the same wire protocol the in-process benchmarks use.
// Here both ends live in one binary for convenience — the cmd/psmr-kvd
// and cmd/psmr-kv tools split them into separate processes.
//
// Run: go run ./examples/kvcluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/core"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/transport"
)

const workers = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Server process: host every cluster role on one TCP node. ---
	serverNode, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("server node: %w", err)
	}
	defer serverNode.Close()

	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:     psmr.ModePSMR,
		Workers:  workers,
		Replicas: 2,
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(10_000)
			return st
		},
		Spec:      kvstore.Spec(),
		Transport: serverNode,
	})
	if err != nil {
		return fmt.Errorf("start cluster: %w", err)
	}
	defer cluster.Close()
	fmt.Printf("cluster hosted at %s (%d groups)\n", serverNode.HostPort(), len(cluster.Groups()))

	// --- Client process: its own TCP node, reaching the cluster by
	// address. Group coordinator endpoints follow the fixed naming
	// scheme g<i>/coord<j> on the server's host:port. ---
	clientNode, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("client node: %w", err)
	}
	defer clientNode.Close()

	groups := make([]multicast.GroupConfig, 0, workers+1)
	for g := 0; g <= workers; g++ {
		groups = append(groups, multicast.GroupConfig{
			ID: uint32(g),
			Coordinators: []transport.Addr{
				transport.Addr(fmt.Sprintf("%s/g%d/coord0", serverNode.HostPort(), g)),
			},
		})
	}
	cg, err := cdep.Compile(kvstore.Spec(), workers)
	if err != nil {
		return err
	}
	client, err := core.NewClient(core.ClientConfig{
		ID:        1,
		Sender:    multicast.NewSender(clientNode, groups),
		CG:        cg,
		Transport: clientNode,
		ReplyAddr: clientNode.Addr("client/1"),
	})
	if err != nil {
		return fmt.Errorf("new client: %w", err)
	}
	defer client.Close()

	// --- A small mixed workload over TCP. ---
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	var reads, updates, inserts int
	var lastInserted uint64
	for i := 0; i < 500; i++ {
		key := uint64(rng.Intn(10_000))
		switch rng.Intn(10) {
		case 0: // occasional dependent command
			lastInserted = 10_000 + uint64(i)
			if _, err := client.Invoke(kvstore.CmdInsert,
				kvstore.EncodeKeyValue(lastInserted, []byte("newvalue"))); err != nil {
				return err
			}
			inserts++
		case 1, 2, 3:
			if _, err := client.Invoke(kvstore.CmdUpdate,
				kvstore.EncodeKeyValue(key, []byte("fresh!!!"))); err != nil {
				return err
			}
			updates++
		default:
			if _, err := client.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key)); err != nil {
				return err
			}
			reads++
		}
	}
	elapsed := time.Since(start)
	total := reads + updates + inserts
	fmt.Printf("%d ops over TCP in %v (%.0f ops/s): %d reads, %d updates, %d inserts\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), reads, updates, inserts)

	out, err := client.Invoke(kvstore.CmdRead, kvstore.EncodeKey(lastInserted))
	if err != nil {
		return err
	}
	value, code := kvstore.DecodeReadOutput(out)
	fmt.Printf("read(%d) = %q (code %d)\n", lastInserted, value, code)
	return nil
}
