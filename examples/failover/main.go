// Failover example: P-SMR keeps serving through the failures its
// deployment is dimensioned for — one of three Paxos acceptors per
// group, the primary coordinator of every group (a standby takes
// over), and one of the two replicas (n = f+1).
//
// Run: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:                  psmr.ModePSMR,
		Workers:               4,
		Replicas:              2,
		CoordinatorCandidates: 2, // standby coordinators enable fail-over
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(1000)
			return st
		},
		Spec:          kvstore.Spec(),
		RetryInterval: 200 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("start cluster: %w", err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		return err
	}
	defer client.Close()

	write := func(key, value uint64) error {
		input := kvstore.EncodeKeyValue(key, fmt.Appendf(nil, "%08d", value))
		_, err := client.Invoke(kvstore.CmdUpdate, input)
		return err
	}
	read := func(key uint64) (string, error) {
		out, err := client.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key))
		if err != nil {
			return "", err
		}
		value, code := kvstore.DecodeReadOutput(out)
		if code != kvstore.OK {
			return "", fmt.Errorf("read(%d): code %d", key, code)
		}
		return string(value), nil
	}

	if err := write(1, 100); err != nil {
		return err
	}
	fmt.Println("baseline write OK")

	// 1. Crash one acceptor in every group: quorum (2 of 3) remains.
	for g := range cluster.Groups() {
		cluster.CrashAcceptor(g, 2)
	}
	if err := write(2, 200); err != nil {
		return err
	}
	fmt.Println("after acceptor crashes: write OK (f=1 of 3 acceptors tolerated)")

	// 2. Crash every group's primary coordinator. The client's
	// retransmission rotates to the standby, which runs Paxos phase 1
	// and takes over.
	for g := range cluster.Groups() {
		cluster.CrashCoordinator(g, 0)
	}
	start := time.Now()
	if err := write(3, 300); err != nil {
		return err
	}
	fmt.Printf("after coordinator crashes: write OK in %v (standby took over)\n",
		time.Since(start).Round(time.Millisecond))

	// 3. Crash a replica: the survivor answers alone.
	cluster.CrashReplica(1)
	if err := write(4, 400); err != nil {
		return err
	}
	for _, key := range []uint64{1, 2, 3, 4} {
		v, err := read(key)
		if err != nil {
			return err
		}
		fmt.Printf("after replica crash: read(%d) = %q\n", key, v)
	}
	fmt.Println("all failure modes survived")
	return nil
}
