// NetFS example: a replicated networked file system on P-SMR.
//
// Eight worker threads serve eight path ranges in parallel; structural
// operations (create, mkdir, unlink, ...) synchronize all workers.
// Requests and responses travel lz4-compressed, like the paper's
// prototype (§VI-C).
//
// Run: go run ./examples/netfs
package main

import (
	"fmt"
	"log"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/netfs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:     psmr.ModePSMR,
		Workers:  8,
		Replicas: 2,
		NewService: func() command.Service {
			return netfs.NewService()
		},
		Spec: netfs.Spec(),
	})
	if err != nil {
		return fmt.Errorf("start cluster: %w", err)
	}
	defer cluster.Close()

	inv, err := cluster.NewClient()
	if err != nil {
		return err
	}
	defer inv.Close()
	fs := netfs.NewClient(inv)

	now := time.Now().UnixNano() // timestamps come from the client: determinism

	// Build a small tree.
	if err := fs.Mkdir("/projects", 0o755, now); err != nil {
		return err
	}
	if err := fs.Mkdir("/projects/psmr", 0o755, now); err != nil {
		return err
	}
	fd, err := fs.Create("/projects/psmr/notes.txt", 0o644, now)
	if err != nil {
		return err
	}
	fmt.Printf("created /projects/psmr/notes.txt (fd %d)\n", fd)

	// Write and read back through the fd.
	content := []byte("parallel state-machine replication: k worker threads,\n" +
		"k+1 multicast groups, deterministic merge, no central scheduler.\n")
	n, err := fs.Write(fd, 0, content, now)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes\n", n)

	data, err := fs.Read(fd, 0, 4096)
	if err != nil {
		return err
	}
	fmt.Printf("read back %d bytes:\n%s", len(data), data)

	// Metadata and listing.
	st, err := fs.Lstat("/projects/psmr/notes.txt")
	if err != nil {
		return err
	}
	fmt.Printf("lstat: ino=%d size=%d\n", st.Ino, st.Size)

	names, err := fs.Readdir("/projects/psmr")
	if err != nil {
		return err
	}
	fmt.Printf("readdir /projects/psmr: %v\n", names)

	// Error handling: NetFS errors carry POSIX-style codes.
	if err := fs.Rmdir("/projects", now); err != nil {
		fmt.Printf("rmdir /projects: %v (expected: directory not empty)\n", err)
	}

	if err := fs.Release(fd); err != nil {
		return err
	}
	fmt.Println("released fd; done")
	return nil
}
