// Quickstart: a replicated key-value store on Parallel State-Machine
// Replication, all in one process.
//
// The cluster runs 2 replicas with 8 worker threads each, 9 multicast
// groups (8 parallel + 1 serial), and 3 Paxos acceptors per group.
// Reads and updates on different keys execute concurrently on
// different workers; inserts and deletes synchronize every worker
// (Algorithm 1's synchronous mode).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:     psmr.ModePSMR,
		Workers:  8,
		Replicas: 2,
		NewService: func() command.Service {
			return kvstore.New()
		},
		Spec: kvstore.Spec(),
	})
	if err != nil {
		return fmt.Errorf("start cluster: %w", err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		return fmt.Errorf("new client: %w", err)
	}
	defer client.Close()

	// Insert — a dependent command: multicast to all 8 groups and
	// executed once per replica after a worker barrier.
	out, err := client.Invoke(kvstore.CmdInsert, kvstore.EncodeKeyValue(42, []byte("hello 42")))
	if err != nil {
		return err
	}
	fmt.Printf("insert(42) -> code %d\n", out[0])

	// Reads — independent commands: each goes to the single group its
	// key maps to and executes in parallel mode.
	for _, key := range []uint64{42, 7} {
		out, err := client.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key))
		if err != nil {
			return err
		}
		value, code := kvstore.DecodeReadOutput(out)
		if code == kvstore.OK {
			fmt.Printf("read(%d)   -> %q\n", key, value)
		} else {
			fmt.Printf("read(%d)   -> not found\n", key)
		}
	}

	// Update — keyed: serialized against other commands on key 42
	// only.
	if _, err := client.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(42, []byte("updated!"))); err != nil {
		return err
	}
	out, err = client.Invoke(kvstore.CmdRead, kvstore.EncodeKey(42))
	if err != nil {
		return err
	}
	value, _ := kvstore.DecodeReadOutput(out)
	fmt.Printf("read(42)   -> %q after update\n", value)

	// Delete — dependent again.
	if _, err := client.Invoke(kvstore.CmdDelete, kvstore.EncodeKey(42)); err != nil {
		return err
	}
	out, err = client.Invoke(kvstore.CmdRead, kvstore.EncodeKey(42))
	if err != nil {
		return err
	}
	_, code := kvstore.DecodeReadOutput(out)
	fmt.Printf("read(42)   -> code %d after delete (1 = not found)\n", code)
	return nil
}
