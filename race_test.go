//go:build race

package psmr_test

// raceEnabled scales down workload sizes when the race detector
// multiplies the cost of every synchronization operation; the protocol
// stack is synchronization-heavy by design (Paxos rounds plus skip
// padding on every group).
const raceEnabled = true
