package psmr_test

// End-to-end multi-key routing: the kvstore's two-key transfer rides
// the keyed path through full replicated clusters. In P-SMR mode the
// client-side C-G multicasts each transfer to the UNION of its two
// keys' groups (delivered via the serial group, executed in
// synchronous mode across exactly those workers); in sP-SMR mode both
// scheduling engines order it against every command touching either
// key. Money conservation plus replica convergence catch any lost
// serialization.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/mvstore"
)

// markedStore wraps a kvstore.Store with an atomic count of executed
// inserts, letting tests quiesce a replica through a global barrier
// command before touching its state directly.
type markedStore struct {
	*kvstore.Store
	inserts atomic.Int64
}

func (m *markedStore) Execute(cmd command.ID, input []byte) []byte {
	out := m.Store.Execute(cmd, input)
	if cmd == kvstore.CmdInsert {
		m.inserts.Add(1)
	}
	return out
}

// SpeculateAt keeps the marker count on the speculative path too (the
// optimistic executor drives Versioned services through it).
func (m *markedStore) SpeculateAt(e mvstore.Epoch, cmd command.ID, input []byte) []byte {
	out := m.Store.SpeculateAt(e, cmd, input)
	if cmd == kvstore.CmdInsert {
		m.inserts.Add(1)
	}
	return out
}

func TestKVTransferAllModes(t *testing.T) {
	const (
		keys    = 64
		workers = 4
	)
	type variant struct {
		name      string
		mode      psmr.Mode
		scheduler psmr.SchedulerKind
	}
	variants := []variant{
		{name: "P-SMR", mode: psmr.ModePSMR},
		{name: "SMR", mode: psmr.ModeSMR},
		{name: "sP-SMR-scan", mode: psmr.ModeSPSMR, scheduler: psmr.SchedScan},
		{name: "sP-SMR-index", mode: psmr.ModeSPSMR, scheduler: psmr.SchedIndex},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var (
				mu     sync.Mutex
				stores []*markedStore
			)
			cl, err := psmr.StartCluster(psmr.Config{
				Mode:      v.mode,
				Workers:   workers,
				Scheduler: v.scheduler,
				Spec:      kvstore.Spec(),
				NewService: func() command.Service {
					mu.Lock()
					defer mu.Unlock()
					st := kvstore.New()
					st.Preload(keys) // key i → value i
					ms := &markedStore{Store: st}
					stores = append(stores, ms)
					return ms
				},
			})
			if err != nil {
				t.Fatalf("StartCluster: %v", err)
			}
			t.Cleanup(func() { _ = cl.Close() })

			clients, ops := 3, 40
			if raceEnabled {
				clients, ops = 2, 15
			}
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				inv, err := cl.NewClient()
				if err != nil {
					t.Fatalf("NewClient: %v", err)
				}
				t.Cleanup(func() { _ = inv.Close() })
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c + 1)))
					for i := 0; i < ops; i++ {
						from := rng.Uint64() % keys
						to := rng.Uint64() % keys
						amount := rng.Uint64() % 10
						out, err := inv.Invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(from, to, amount))
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
						if out[0] != kvstore.OK {
							t.Errorf("transfer(%d→%d) code %d", from, to, out[0])
							return
						}
						if i%4 == 0 {
							if _, err := inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(from)); err != nil {
								t.Errorf("read: %v", err)
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Conservation: the transfers only move value around, so the
			// sum over all keys (mod 2^64) is the preloaded sum.
			inv, err := cl.NewClient()
			if err != nil {
				t.Fatalf("NewClient: %v", err)
			}
			t.Cleanup(func() { _ = inv.Close() })
			var sum, want uint64
			for k := uint64(0); k < keys; k++ {
				out, err := inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(k))
				if err != nil {
					t.Fatalf("read %d: %v", k, err)
				}
				value, code := kvstore.DecodeReadOutput(out)
				if code != kvstore.OK || len(value) < 8 {
					t.Fatalf("read %d: code %d", k, code)
				}
				sum += binary.LittleEndian.Uint64(value)
				want += k
			}
			if sum != want {
				t.Fatalf("balance sum = %d, want %d (transfer lost or duplicated value)", sum, want)
			}

			// Both replicas converge to identical databases. An insert is
			// a global (barrier) command, so once each replica has
			// executed it, everything ordered before it has finished and
			// the stores are quiescent — fingerprinting cannot race the
			// worker threads.
			if out, err := inv.Invoke(kvstore.CmdInsert,
				kvstore.EncodeKeyValue(keys, kvstore.EncodeKey(keys))); err != nil || out[0] != kvstore.OK {
				t.Fatalf("marker insert: %v code=%v", err, out)
			}
			waitForCondition(t, 10*time.Second, func() bool {
				return stores[0].inserts.Load() >= 1 && stores[1].inserts.Load() >= 1
			}, func() string {
				return fmt.Sprintf("marker inserts executed: %d and %d",
					stores[0].inserts.Load(), stores[1].inserts.Load())
			})
			if f0, f1 := stores[0].Fingerprint(), stores[1].Fingerprint(); f0 != f1 {
				t.Fatalf("replicas did not converge: %x vs %x", f0, f1)
			}
		})
	}
}
