package psmr_test

// End-to-end optimistic execution: full replicated clusters running
// ModeSPSMR with Optimistic on speculate on the coordinators'
// pre-consensus stream and must converge to EXACTLY the state plain
// sP-SMR reaches — on both scheduling engines, with and without forced
// optimistic/decided reordering, under a mixed workload of two-key
// transfers (conflicting, multi-key), snapshot reads (read-only
// multi-key), plain reads, per-client keyed updates and global
// inserts. The workload is constructed so its final state is
// independent of the interleaving across clients (transfers commute as
// deltas, each client owns its update keys), which is what makes the
// cross-mode fingerprint comparison meaningful.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
)

const (
	optTestKeys    = 48
	optTestWorkers = 4
)

// runOptimisticWorkload drives one cluster configuration with a fixed
// deterministic workload and returns the converged fingerprint plus
// the aggregated speculation counters. Optional mutators adjust the
// cluster config before start (the compartment e2e uses them to switch
// on the proxy tier and delivery fan-out).
func runOptimisticWorkload(t *testing.T, scheduler psmr.SchedulerKind, optimistic bool, reorder int, reSpec bool, mutate ...func(*psmr.Config)) (uint64, psmr.OptimisticCounters) {
	t.Helper()
	var (
		mu     sync.Mutex
		stores []*markedStore
	)
	cfg := psmr.Config{
		Mode:                  psmr.ModeSPSMR,
		Workers:               optTestWorkers,
		Scheduler:             scheduler,
		Optimistic:            optimistic,
		OptimisticReorder:     reorder,
		OptimisticReSpeculate: reSpec,
		Spec:                  kvstore.Spec(),
		NewService: func() command.Service {
			mu.Lock()
			defer mu.Unlock()
			st := kvstore.New()
			st.Preload(optTestKeys) // key i → value i
			ms := &markedStore{Store: st}
			stores = append(stores, ms)
			return ms
		},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	cl, err := psmr.StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	clients, ops := 3, 60
	if raceEnabled {
		clients, ops = 2, 20
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		inv, err := cl.NewClient()
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		t.Cleanup(func() { _ = inv.Close() })
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			// Key-space partition keeps the FINAL state independent of
			// the cross-client interleaving: transfers touch only
			// [0, half) (value deltas commute), updates touch only the
			// client's own keys in [half, optTestKeys) with a constant
			// per-client value (the last write is fixed). Reads and
			// snapshot reads roam everywhere.
			const half = optTestKeys / 2
			for i := 0; i < ops; i++ {
				var (
					out []byte
					err error
				)
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					from := rng.Uint64() % half
					to := rng.Uint64() % half
					out, err = inv.Invoke(kvstore.CmdTransfer,
						kvstore.EncodeTransfer(from, to, rng.Uint64()%7))
				case 4, 5:
					out, err = inv.Invoke(kvstore.CmdMultiRead, kvstore.EncodeMultiRead(
						rng.Uint64()%optTestKeys, rng.Uint64()%optTestKeys, rng.Uint64()%optTestKeys))
					if err == nil && len(out) > 0 && out[0] != kvstore.OK {
						err = fmt.Errorf("multi-read code %d", out[0])
					}
				case 6:
					k := half + uint64(c) + uint64(clients)*(rng.Uint64()%((optTestKeys-half)/uint64(clients)))
					val := binary.LittleEndian.AppendUint64(nil, uint64(c+1)<<32)
					out, err = inv.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(k%optTestKeys, val))
				default:
					out, err = inv.Invoke(kvstore.CmdRead,
						kvstore.EncodeKey(rng.Uint64()%optTestKeys))
				}
				if err != nil {
					errCh <- fmt.Errorf("client %d op %d: %w", c, i, err)
					return
				}
				_ = out
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	// Conservation check through the replicated path: transfers only
	// move value, updates overwrite deterministically.
	inv, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })

	// Quiesce both replicas before fingerprinting. The global barrier
	// marker alone is sound only for NON-optimistic modes (the barrier
	// executes strictly after everything ordered before it); in
	// optimistic mode the marker's SPECULATIVE execution can bump the
	// counter while decided-path work is still reconciling, so the
	// wait additionally requires every decided command — the clients'
	// ops plus the marker — to be order-CONFIRMED on both replicas
	// (the reconciler is sequential, so a confirmed marker implies a
	// fully confirmed prefix and a drained engine behind its barrier).
	if out, err := inv.Invoke(kvstore.CmdInsert,
		kvstore.EncodeKeyValue(optTestKeys+1, kvstore.EncodeKey(1))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("marker insert: %v %v", err, out)
	}
	totalDecided := uint64(clients*ops + 1)
	waitForCondition(t, 10*time.Second, func() bool {
		if stores[0].inserts.Load() < 1 || stores[1].inserts.Load() < 1 {
			return false
		}
		if !optimistic {
			return true
		}
		cs := cl.OptimisticCounters()
		return len(cs) == 2 && cs[0].Decided() >= totalDecided && cs[1].Decided() >= totalDecided
	}, func() string {
		return fmt.Sprintf("marker inserts %d/%d, decided %v (want %d each)",
			stores[0].inserts.Load(), stores[1].inserts.Load(),
			cl.OptimisticCounters(), totalDecided)
	})
	f0, f1 := stores[0].Fingerprint(), stores[1].Fingerprint()
	if f0 != f1 {
		t.Fatalf("replicas diverged: %x vs %x", f0, f1)
	}

	var agg psmr.OptimisticCounters
	for _, c := range cl.OptimisticCounters() {
		agg.Add(c)
	}
	return f0, agg
}

// The determinism acceptance bar: optimistic mode reaches the same
// final state fingerprint as plain sP-SMR on both engines, including
// under forced optimistic-stream reordering (which exercises the
// rollback path end to end). Runs under `make race`.
func TestOptimisticDeterminismVsSPSMR(t *testing.T) {
	want, _ := runOptimisticWorkload(t, psmr.SchedScan, false, 0, false)

	variants := []struct {
		name      string
		scheduler psmr.SchedulerKind
		reorder   int
		reSpec    bool
	}{
		{name: "scan", scheduler: psmr.SchedScan},
		{name: "index", scheduler: psmr.SchedIndex},
		{name: "scan-reorder", scheduler: psmr.SchedScan, reorder: 2},
		{name: "index-reorder", scheduler: psmr.SchedIndex, reorder: 2},
		// Forced reordering with re-speculation: rollback collateral is
		// re-admitted against the repaired state, and the final state
		// must STILL be byte-identical to plain sP-SMR's.
		{name: "scan-reorder-respec", scheduler: psmr.SchedScan, reorder: 2, reSpec: true},
		{name: "index-reorder-respec", scheduler: psmr.SchedIndex, reorder: 2, reSpec: true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			got, counters := runOptimisticWorkload(t, v.scheduler, true, v.reorder, v.reSpec)
			if got != want {
				t.Fatalf("optimistic %s fingerprint %x != sP-SMR %x (counters: %v)",
					v.name, got, want, counters)
			}
			if counters.Speculated == 0 {
				t.Fatalf("no speculation happened: %v", counters)
			}
			if counters.Decided() == 0 {
				t.Fatalf("no decided commands reconciled: %v", counters)
			}
			if !v.reSpec && counters.ReSpeculations != 0 {
				t.Fatalf("re-speculation fired with the knob off: %v", counters)
			}
			t.Logf("%s: %v", v.name, counters)
		})
	}

	// Plain sP-SMR on the index engine must agree too (sanity for the
	// cross-mode comparison itself).
	if got, _ := runOptimisticWorkload(t, psmr.SchedIndex, false, 0, false); got != want {
		t.Fatalf("sP-SMR index fingerprint %x != scan %x", got, want)
	}
}

// Optimistic clusters keep every client-visible guarantee of the other
// modes: at-most-once execution under retransmission pressure and
// replica crash tolerance.
func TestOptimisticClientGuarantees(t *testing.T) {
	var (
		mu     sync.Mutex
		stores []*markedStore
	)
	cl, err := psmr.StartCluster(psmr.Config{
		Mode:          psmr.ModeSPSMR,
		Workers:       2,
		Optimistic:    true,
		Spec:          kvstore.Spec(),
		RetryInterval: 50 * time.Millisecond,
		NewService: func() command.Service {
			mu.Lock()
			defer mu.Unlock()
			st := kvstore.New()
			st.Preload(16)
			ms := &markedStore{Store: st}
			stores = append(stores, ms)
			return ms
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	inv, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })

	// Transfers survive a crashed replica and stay exactly-once.
	for i := 0; i < 10; i++ {
		if out, err := inv.Invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(1, 2, 1)); err != nil || out[0] != kvstore.OK {
			t.Fatalf("transfer %d: %v %v", i, err, out)
		}
	}
	cl.CrashReplica(1)
	for i := 0; i < 10; i++ {
		if out, err := inv.Invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(2, 3, 1)); err != nil || out[0] != kvstore.OK {
			t.Fatalf("post-crash transfer %d: %v %v", i, err, out)
		}
	}
	// Exactly-once accounting: key 3 started at 3 and received 10.
	out, err := inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(3))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	value, code := kvstore.DecodeReadOutput(out)
	if code != kvstore.OK || binary.LittleEndian.Uint64(value) != 13 {
		t.Fatalf("key 3 balance = %d, want 13", binary.LittleEndian.Uint64(value))
	}
}
