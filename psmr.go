// Package psmr is a production-quality Go implementation of Parallel
// State-Machine Replication (P-SMR) from "Rethinking State-Machine
// Replication for Parallelism" (Marandi, Bezerra, Pedone — ICDCS 2014),
// together with the replication baselines the paper evaluates.
//
// The package wires complete replicated deployments: per-group Paxos
// (coordinator candidates, acceptors, learners), the atomic-multicast
// layer with deterministic merge, and the replica execution engines:
//
//   - ModePSMR  — parallel delivery and parallel execution (the paper's
//     contribution): k worker threads, k parallel groups plus one
//     serial group, Algorithm 1's parallel/synchronous execution modes.
//   - ModeSMR   — classic state-machine replication: sequential
//     delivery, sequential execution (k = 1, one group).
//   - ModeSPSMR — semi-parallel SMR: sequential delivery into a single
//     scheduler that dispatches independent commands onto a worker
//     pool (the CBASE/Eve family the paper compares against).
//
// A Cluster runs all roles in one process over an in-process message
// network, which is how the test-suite and the benchmark harness
// reproduce the paper's evaluation; the cmd/ directory wires the same
// components over TCP for multi-process deployments.
package psmr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/checkpoint"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/core"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/optimistic"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/proxy"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/spsmr"
	"github.com/psmr/psmr/internal/transport"
)

// OptimisticCounters is a snapshot of one optimistic replica's
// speculation statistics (hit rate, rollbacks, rollback depth).
type OptimisticCounters = optimistic.Counters

// CheckpointConfig enables and sizes coordinated checkpoints (see
// internal/checkpoint): Interval is the number of decided commands
// between snapshots (0 disables), Retain how many snapshots each
// replica keeps for peer catch-up.
type CheckpointConfig = checkpoint.Config

// CheckpointCounters is a snapshot of one replica's checkpoint
// statistics (count, snapshot size, quiesce pause, restores).
type CheckpointCounters = checkpoint.Counters

// SchedulerKind selects the sP-SMR scheduling engine (ModeSPSMR only).
type SchedulerKind = sched.SchedulerKind

// SchedTuning carries the batch-first execution pipeline knobs
// (batched admission on/off, reader sets on/off, work stealing on/off
// and its batch size); the zero value enables everything.
type SchedTuning = sched.Tuning

// sP-SMR scheduling engines.
const (
	// SchedScan is the paper's scheduler: one thread scans conflicts at
	// admission and feeds a worker pool (the measured bottleneck).
	SchedScan = sched.KindScan
	// SchedIndex is the index-based early scheduler: compiled
	// class-to-worker routes plus a per-key conflict index; commands
	// flow straight into per-worker queues with no scheduler thread.
	SchedIndex = sched.KindIndex
)

// Mode selects the replication technique (Table I of the paper).
type Mode int

// Replication modes.
const (
	// ModePSMR is Parallel State-Machine Replication: parallel
	// delivery, parallel execution.
	ModePSMR Mode = iota + 1
	// ModeSMR is classic state-machine replication: sequential
	// delivery, sequential execution.
	ModeSMR
	// ModeSPSMR is semi-parallel state-machine replication: sequential
	// delivery through a scheduler, parallel execution.
	ModeSPSMR
)

func (m Mode) String() string {
	switch m {
	case ModePSMR:
		return "P-SMR"
	case ModeSMR:
		return "SMR"
	case ModeSPSMR:
		return "sP-SMR"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes a replicated deployment.
type Config struct {
	// Mode selects the replication technique.
	Mode Mode
	// Workers is the multiprogramming level (worker threads per
	// replica). ModeSMR forces 1.
	Workers int
	// Replicas is the number of server replicas (the paper uses
	// n = f+1 = 2). Default 2.
	Replicas int
	// Acceptors per Paxos group. Default 3 (tolerates one failure).
	Acceptors int
	// CoordinatorCandidates per group (>=2 enables fail-over). Default 1.
	CoordinatorCandidates int
	// NewService builds one deterministic service instance per replica.
	NewService func() command.Service
	// Spec is the service's command-dependency specification (C-Dep).
	Spec cdep.Spec
	// Placement optionally pins hot keys to groups (see cdep.WithPlacement).
	Placement map[uint64]int
	// Transport defaults to a fresh in-process network. Provide a
	// MemNetwork to inject faults in tests, or a TCPNode to host the
	// cluster's roles in a process reachable over the network.
	Transport transport.Transport

	// MergeWeight is the deterministic merge weight (= coordinator skip
	// slots, one slot per command). Default 256.
	MergeWeight int
	// SkipInterval is the coordinators' skip padding period. Default
	// 1ms. Only groups that feed multi-stream merges pad (the serial
	// group and parallel groups in ModePSMR with k >= 1).
	SkipInterval time.Duration
	// BatchMaxBytes is the consensus batch size limit. Default 8192
	// (the paper's 8 KB).
	BatchMaxBytes int
	// FlushInterval bounds batch formation latency. Default 200µs.
	FlushInterval time.Duration
	// RetryInterval is the client retransmission interval. Default 3s.
	RetryInterval time.Duration
	// Scheduler selects the sP-SMR scheduling engine (ModeSPSMR only):
	// SchedScan reproduces the paper's single-scheduler bottleneck,
	// SchedIndex is the index-based early scheduler that removes it.
	Scheduler SchedulerKind
	// SchedulerQueue bounds the sP-SMR ready queue. Default 4096.
	SchedulerQueue int
	// SchedTuning switches the batch-first pipeline optimisations
	// (batched admission, reader sets, work stealing, steal batch
	// size) off for ablations; the zero value is the tuned pipeline.
	SchedTuning SchedTuning
	// Optimistic enables optimistic execution on the sP-SMR path
	// (ModeSPSMR only): coordinators push proposals to the learners
	// before phase 2 completes, replicas execute them speculatively
	// through the selected scheduling engine, and replies are released
	// when the decided order confirms the speculation (see
	// internal/optimistic). The service must implement
	// command.Versioned.
	Optimistic bool
	// OptimisticReorder, when positive, makes each replica swap every
	// Nth optimistic batch with its successor before speculating — a
	// test/ablation knob forcing optimistic/decided divergence (a
	// stable single leader never reorders on its own).
	OptimisticReorder int
	// OptimisticReSpeculate re-admits rollback-withdrawn commands as
	// fresh speculations against the repaired state instead of leaving
	// them to execute as decided-path misses (see internal/optimistic;
	// requires Optimistic).
	OptimisticReSpeculate bool
	// Proxies, when positive, starts that many stateless proxy-proposers
	// (the compartmentalized ordering layer's ingress tier): clients
	// submit to a proxy, which batches frames per group and forwards one
	// ProposeBatch frame per sealed batch to the leader, cutting the
	// coordinator's inbound frames per command. Client submits fail with
	// a distinct error (multicast.ErrProxyDown) only when every proxy is
	// unreachable; a single dead proxy is routed around.
	Proxies int
	// ProxyBatch is the proxy seal threshold in commands. Default 64.
	ProxyBatch int
	// ProxyDelay bounds how long a proxy holds a partial batch. Default
	// 200µs.
	ProxyDelay time.Duration
	// FanoutDegree, when positive, starts that many decision relays per
	// group and makes leaders stripe decision (and optimistic) pushes
	// across them instead of broadcasting to every learner themselves —
	// the compartmentalized ordering layer's egress tier.
	FanoutDegree int
	// SubsetGroups declares hot multi-worker subsets that get dedicated
	// multicast groups (multi-group P-SMR only): a command whose γ
	// exactly matches a subset is ordered on its own group instead of
	// the shared serial group. cdep.AllPairs(k) covers all pairwise
	// unions. Deterministic merge positions are preserved; subsets are
	// routing only.
	SubsetGroups [][]int
	// Checkpoint enables coordinated checkpoints and replica recovery:
	// every Interval decided commands each replica quiesces its workers
	// at one deterministic log position (the engines' global-barrier
	// rendezvous; the optimistic executor's confirmed-state quiesce),
	// snapshots the service (which must implement command.Snapshotter),
	// gates learner log truncation on the stable checkpoint, and serves
	// peer catch-up — CrashReplica + RestartReplica then exercise full
	// recovery. Supported on single-ordered-stream deployments (sP-SMR,
	// SMR, optimistic sP-SMR, one-worker P-SMR); multi-group P-SMR
	// checkpoint positions are an open item.
	Checkpoint CheckpointConfig

	// CPU, when set, meters every role's busy time.
	CPU *bench.CPUMeter

	// TraceSample controls pipeline-stage tracing: every TraceSample-th
	// command (deterministically chosen by request-id hash) is stamped
	// with monotonic timestamps at each pipeline stage boundary it
	// crosses — client submit, proxy seal, leader admit, decided,
	// learner delivery, engine admission, execution, optimistic
	// confirm/rollback — and folded into per-stage latency histograms.
	// 0 samples 1 in 1024 (the default), 1 traces every command, -1
	// disables tracing entirely (no tracer is built; every stamp site
	// is a nil-receiver no-op).
	TraceSample int
	// RelaySilentAfter is the staleness horizon of the decision-relay
	// watchdog (FanoutDegree > 0): a relay whose forward counter has
	// not moved for this long while its group kept deciding is flagged
	// silent (the ordering_relay_silent counter; one increment per
	// transition). Default 500ms.
	RelaySilentAfter time.Duration
	// JournalEvents sizes the always-on flight-recorder journal (total
	// retained events across its stripes). 0 selects the default
	// (4096, ~128 KiB); -1 disables the journal and the flight
	// recorder entirely (every emit site is a nil-receiver no-op).
	JournalEvents int
	// RollbackStormThreshold is the per-tick rollback-delta above which
	// the anomaly watcher cuts a "rollback storm" diagnostic bundle
	// (Optimistic mode only). Default 256.
	RollbackStormThreshold int
}

func (c *Config) fillDefaults() error {
	if c.Mode == ModeSMR {
		c.Workers = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Workers > 64 {
		return fmt.Errorf("psmr: %d workers exceed the 64-worker bitset", c.Workers)
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Acceptors <= 0 {
		c.Acceptors = 3
	}
	if c.CoordinatorCandidates <= 0 {
		c.CoordinatorCandidates = 1
	}
	if c.NewService == nil {
		return errors.New("psmr: Config.NewService is required")
	}
	if c.MergeWeight <= 0 {
		c.MergeWeight = 256
	}
	if c.SkipInterval <= 0 {
		c.SkipInterval = time.Millisecond
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 3 * time.Second
	}
	if c.Transport == nil {
		c.Transport = transport.NewMemNetwork(1)
	}
	if c.RelaySilentAfter <= 0 {
		c.RelaySilentAfter = 500 * time.Millisecond
	}
	if c.RollbackStormThreshold <= 0 {
		c.RollbackStormThreshold = 256
	}
	return nil
}

// groupCount returns how many multicast groups the mode needs.
func (c *Config) groupCount() int {
	switch c.Mode {
	case ModePSMR:
		if c.Workers == 1 {
			// Degenerate P-SMR: a single worker needs no serial group.
			return 1
		}
		return c.Workers + len(c.SubsetGroups) + 1
	default:
		// SMR and sP-SMR order everything through one group.
		return 1
	}
}

// Cluster is a running deployment: Paxos roles plus replicas, all over
// one transport.
type Cluster struct {
	cfg     Config
	cg      *cdep.Compiled    // client-side C-G (γ over workers)
	subsets *cdep.SubsetTable // dedicated multi-worker subset groups
	groups  []multicast.GroupConfig

	acceptors []*paxos.Acceptor
	coords    []*paxos.Coordinator
	relays    []*proxy.Relay
	proxies   []*proxy.Proxy
	proxyAddr []transport.Addr

	// replMu guards the replica slots: RestartReplica swaps a slot
	// while the anomaly watcher and live metric scrapes read them.
	replMu    sync.RWMutex
	replicas  []*core.Replica
	schedRepl []*spsmr.Replica
	optRepl   []*optimistic.Replica

	tracer  *obs.Tracer
	reg     *obs.Registry
	journal *obs.Journal
	flight  *obs.Flight

	// Relay-staleness watchdog state (FanoutDegree > 0).
	relaySilent *obs.Counter
	watchStop   chan struct{}
	watchDone   chan struct{}

	// Anomaly-watcher state (JournalEvents >= 0): learner gap stalls
	// and optimistic rollback storms trigger flight dumps.
	anomStop chan struct{}
	anomDone chan struct{}

	clientSeq uint64
	closed    bool
}

// StartCluster launches every role of a deployment and returns once
// all components are running.
func StartCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case ModePSMR, ModeSMR, ModeSPSMR:
	default:
		return nil, fmt.Errorf("psmr: unknown mode %d", int(cfg.Mode))
	}
	if cfg.Optimistic && cfg.Mode != ModeSPSMR {
		return nil, fmt.Errorf("psmr: Optimistic requires ModeSPSMR, got %v", cfg.Mode)
	}
	if cfg.Checkpoint.Enabled() && cfg.groupCount() > 1 {
		return nil, fmt.Errorf("psmr: checkpointing requires a single ordered stream (sP-SMR, SMR, or 1-worker P-SMR); %v with %d workers has %d groups",
			cfg.Mode, cfg.Workers, cfg.groupCount())
	}
	if len(cfg.SubsetGroups) > 0 && (cfg.Mode != ModePSMR || cfg.Workers == 1) {
		return nil, fmt.Errorf("psmr: SubsetGroups requires multi-group P-SMR (mode %v, %d workers has a single ordered stream)",
			cfg.Mode, cfg.Workers)
	}
	subsets, err := cdep.CompileSubsets(cfg.Workers, cfg.SubsetGroups)
	if err != nil {
		return nil, fmt.Errorf("psmr: %w", err)
	}

	// The client-side C-G is always compiled against the
	// multiprogramming level; sP-SMR and SMR route every request
	// through their single group regardless, and sP-SMR's scheduler
	// re-derives conflicts from the same spec.
	var placementOpts []cdep.Option
	if cfg.Placement != nil {
		placementOpts = append(placementOpts, cdep.WithPlacement(cfg.Placement))
	}
	cg, err := cdep.Compile(cfg.Spec, cfg.Workers, placementOpts...)
	if err != nil {
		return nil, fmt.Errorf("psmr: compile C-Dep: %w", err)
	}

	cl := &Cluster{cfg: cfg, cg: cg, subsets: subsets, reg: obs.NewRegistry()}
	if cfg.JournalEvents >= 0 {
		// Always-on black box: the journal samples per-command events
		// at the tracer's rate so trace and journal agree on which
		// commands are interesting.
		cl.journal = obs.NewJournal(obs.JournalConfig{
			Events: cfg.JournalEvents,
			Sample: obs.EffectiveSample(cfg.TraceSample),
		})
	}
	if cfg.TraceSample >= 0 {
		// The trace folds (and the total histogram closes) at the last
		// stage a command crosses: optimistic confirmation when
		// speculation is on, execution end otherwise.
		final := obs.StageExecEnd
		if cfg.Optimistic {
			final = obs.StageConfirm
		}
		cl.tracer = obs.NewTracer(obs.TracerConfig{Sample: cfg.TraceSample, Final: final})
		cl.tracer.AttachJournal(cl.journal)
	}
	if cl.journal != nil {
		cl.flight = obs.NewFlight(obs.FlightConfig{
			Registry: cl.reg,
			Tracer:   cl.tracer,
			Journal:  cl.journal,
		})
	}
	if err := cl.startOrdering(); err != nil {
		cl.Close()
		return nil, err
	}
	if err := cl.startProxies(); err != nil {
		cl.Close()
		return nil, err
	}
	if err := cl.startReplicas(); err != nil {
		cl.Close()
		return nil, err
	}
	cl.registerMetrics()
	if cl.cfg.FanoutDegree > 0 {
		cl.watchStop = make(chan struct{})
		cl.watchDone = make(chan struct{})
		go cl.watchRelays()
	}
	if cl.flight != nil {
		cl.anomStop = make(chan struct{})
		cl.anomDone = make(chan struct{})
		go cl.watchAnomalies()
	}
	return cl, nil
}

// startOrdering launches acceptors and coordinators for every group.
func (cl *Cluster) startOrdering() error {
	cfg := &cl.cfg
	nGroups := cfg.groupCount()

	// Learner push targets per group: one learner endpoint per
	// (replica, group), named by core.LearnerAddr.
	for g := 0; g < nGroups; g++ {
		gid := uint32(g)
		accAddrs := make([]transport.Addr, cfg.Acceptors)
		for i := range accAddrs {
			accAddrs[i] = transport.Addr(fmt.Sprintf("g%d/acc%d", g, i))
		}
		candAddrs := make([]transport.Addr, cfg.CoordinatorCandidates)
		for i := range candAddrs {
			candAddrs[i] = transport.Addr(fmt.Sprintf("g%d/coord%d", g, i))
		}
		var pushAddrs []transport.Addr
		for r := 0; r < cfg.Replicas; r++ {
			pushAddrs = append(pushAddrs, core.LearnerAddr(r, gid))
		}
		// Standby candidates track decisions for retransmission.
		pushAddrs = append(pushAddrs, candAddrs[1:]...)

		// Decision fan-out tier: the leader stripes its pushes across
		// relays, each re-broadcasting to the full learner set.
		var relayAddrs []transport.Addr
		for i := 0; i < cfg.FanoutDegree; i++ {
			addr := transport.Addr(fmt.Sprintf("g%d/relay%d", g, i))
			rl, err := proxy.StartRelay(proxy.RelayConfig{
				Addr:      addr,
				ID:        uint64(g)<<32 | uint64(i),
				Targets:   pushAddrs,
				Transport: cfg.Transport,
				Journal:   cl.journal,
			})
			if err != nil {
				return fmt.Errorf("psmr: start relay g%d/%d: %w", g, i, err)
			}
			cl.relays = append(cl.relays, rl)
			relayAddrs = append(relayAddrs, addr)
		}

		for i := range accAddrs {
			a, err := paxos.StartAcceptor(paxos.AcceptorConfig{
				GroupID:   gid,
				ID:        uint32(i),
				Addr:      accAddrs[i],
				Transport: cfg.Transport,
				CPU:       cfg.CPU.Role("acceptor"),
			})
			if err != nil {
				return fmt.Errorf("psmr: start acceptor g%d/%d: %w", g, i, err)
			}
			cl.acceptors = append(cl.acceptors, a)
		}
		// Multi-stream merges need every merged group to pad its slot
		// rate; single-group modes never merge, so padding is waste.
		skip := cfg.SkipInterval
		if nGroups == 1 {
			skip = 0
		}
		for i := range candAddrs {
			co, err := paxos.StartCoordinator(paxos.CoordinatorConfig{
				GroupID:       gid,
				CandidateIdx:  i,
				Candidates:    candAddrs,
				Acceptors:     accAddrs,
				Learners:      pushAddrs,
				Relays:        relayAddrs,
				Transport:     cfg.Transport,
				BatchMaxBytes: cfg.BatchMaxBytes,
				FlushInterval: cfg.FlushInterval,
				SkipInterval:  skip,
				SkipSlots:     uint32(cfg.MergeWeight),
				Optimistic:    cfg.Optimistic,
				CPU:           cfg.CPU.Role("coordinator"),
				Trace:         cl.tracer,
				Journal:       cl.journal,
			})
			if err != nil {
				return fmt.Errorf("psmr: start coordinator g%d/%d: %w", g, i, err)
			}
			cl.coords = append(cl.coords, co)
		}
		cl.groups = append(cl.groups, multicast.GroupConfig{
			ID:           gid,
			Coordinators: candAddrs,
			Acceptors:    accAddrs,
		})
	}
	return nil
}

// startProxies launches the proxy-proposer tier (Config.Proxies > 0):
// stateless ingress proxies clients submit through.
func (cl *Cluster) startProxies() error {
	cfg := &cl.cfg
	for i := 0; i < cfg.Proxies; i++ {
		addr := ProxyAddr(i)
		p, err := proxy.Start(proxy.Config{
			Addr:      addr,
			Groups:    cl.groups,
			Transport: cfg.Transport,
			BatchMax:  cfg.ProxyBatch,
			Delay:     cfg.ProxyDelay,
			CPU:       cfg.CPU.Role("proxy"),
			Trace:     cl.tracer,
			Journal:   cl.journal,
		})
		if err != nil {
			return fmt.Errorf("psmr: start proxy %d: %w", i, err)
		}
		cl.proxies = append(cl.proxies, p)
		cl.proxyAddr = append(cl.proxyAddr, addr)
	}
	return nil
}

// ProxyAddr names proxy i's endpoint; the cluster wiring and the TCP
// daemons use the same scheme so remote clients can reconstruct it.
func ProxyAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("proxy%d", i))
}

// startReplicas launches the mode-specific execution engines.
func (cl *Cluster) startReplicas() error {
	cfg := &cl.cfg
	switch {
	case cfg.Mode == ModeSPSMR && cfg.Optimistic:
		cl.optRepl = make([]*optimistic.Replica, cfg.Replicas)
	case cfg.Mode == ModeSPSMR:
		cl.schedRepl = make([]*spsmr.Replica, cfg.Replicas)
	default:
		cl.replicas = make([]*core.Replica, cfg.Replicas)
	}
	for r := 0; r < cfg.Replicas; r++ {
		if err := cl.startReplica(r, nil); err != nil {
			return err
		}
	}
	return nil
}

// startReplica launches (or, on recovery, relaunches) replica r.
// peers, when non-empty, are live replicas' state-transfer endpoints
// the new replica bootstraps from.
func (cl *Cluster) startReplica(r int, peers []transport.Addr) error {
	cfg := &cl.cfg
	switch cfg.Mode {
	case ModePSMR, ModeSMR:
		rep, err := core.StartReplica(core.ReplicaConfig{
			ReplicaID:    r,
			Workers:      cfg.Workers,
			Service:      cfg.NewService(),
			Groups:       cl.groups,
			Subsets:      cl.subsets,
			Transport:    cfg.Transport,
			MergeWeight:  cfg.MergeWeight,
			Checkpoint:   cfg.Checkpoint,
			RecoverPeers: peers,
			CPU:          cfg.CPU,
			Trace:        cl.tracer,
			Journal:      cl.journal,
		})
		if err != nil {
			return fmt.Errorf("psmr: start replica %d: %w", r, err)
		}
		cl.replMu.Lock()
		cl.replicas[r] = rep
		cl.replMu.Unlock()
	case ModeSPSMR:
		if cfg.Optimistic {
			rep, err := optimistic.StartReplica(optimistic.ReplicaConfig{
				ReplicaID:    r,
				Workers:      cfg.Workers,
				Service:      cfg.NewService(),
				Spec:         cfg.Spec,
				Group:        cl.groups[0],
				Transport:    cfg.Transport,
				Scheduler:    cfg.Scheduler,
				Tuning:       cfg.SchedTuning,
				QueueBound:   cfg.SchedulerQueue,
				ReorderEvery: cfg.OptimisticReorder,
				ReSpeculate:  cfg.OptimisticReSpeculate,
				Checkpoint:   cfg.Checkpoint,
				RecoverPeers: peers,
				CPU:          cfg.CPU,
				Trace:        cl.tracer,
				Journal:      cl.journal,
			})
			if err != nil {
				return fmt.Errorf("psmr: start optimistic replica %d: %w", r, err)
			}
			cl.replMu.Lock()
			cl.optRepl[r] = rep
			cl.replMu.Unlock()
			return nil
		}
		rep, err := spsmr.StartReplica(spsmr.ReplicaConfig{
			ReplicaID:    r,
			Workers:      cfg.Workers,
			Service:      cfg.NewService(),
			Spec:         cfg.Spec,
			Group:        cl.groups[0],
			Transport:    cfg.Transport,
			Scheduler:    cfg.Scheduler,
			QueueBound:   cfg.SchedulerQueue,
			Tuning:       cfg.SchedTuning,
			Checkpoint:   cfg.Checkpoint,
			RecoverPeers: peers,
			CPU:          cfg.CPU,
			Trace:        cl.tracer,
			Journal:      cl.journal,
		})
		if err != nil {
			return fmt.Errorf("psmr: start sp-smr replica %d: %w", r, err)
		}
		cl.replMu.Lock()
		cl.schedRepl[r] = rep
		cl.replMu.Unlock()
	}
	return nil
}

// NewClient creates a client proxy bound to this cluster. Client ids
// are allocated sequentially; pass NewClientID for explicit control.
func (cl *Cluster) NewClient() (*core.Client, error) {
	cl.clientSeq++
	return cl.NewClientID(cl.clientSeq)
}

// NewClientID creates a client proxy with an explicit unique id.
// Single-group modes (SMR, sP-SMR) route every request to group 0
// through the proxy's physical-group mapping; the γ the proxy computes
// still rides along in the request for the schedulers' benefit.
func (cl *Cluster) NewClientID(id uint64) (*core.Client, error) {
	sender := multicast.NewSender(cl.cfg.Transport, cl.groups)
	if len(cl.proxyAddr) > 0 {
		sender.UseProxies(cl.proxyAddr)
	}
	sender.SetTracer(cl.tracer)
	return core.NewClient(core.ClientConfig{
		ID:            id,
		Sender:        sender,
		CG:            cl.cg,
		Transport:     cl.cfg.Transport,
		RetryInterval: cl.cfg.RetryInterval,
		Seed:          int64(id),
		Subsets:       cl.subsets,
	})
}

// Transport exposes the cluster's network (fault injection in tests
// when the transport is a MemNetwork).
func (cl *Cluster) Transport() *transport.MemNetwork {
	mem, _ := cl.cfg.Transport.(*transport.MemNetwork)
	return mem
}

// Groups exposes the group wiring (diagnostics, tools).
func (cl *Cluster) Groups() []multicast.GroupConfig { return cl.groups }

// CoordinatorStatus returns the status of group g's candidate i.
func (cl *Cluster) CoordinatorStatus(g, i int) paxos.Status {
	return cl.coords[g*cl.cfg.CoordinatorCandidates+i].Status()
}

// CrashCoordinator kills group g's candidate i (fail-over tests).
func (cl *Cluster) CrashCoordinator(g, i int) {
	co := cl.coords[g*cl.cfg.CoordinatorCandidates+i]
	_ = co.Close()
	if mem := cl.Transport(); mem != nil {
		mem.Drop(cl.groups[g].Coordinators[i])
		mem.Drop(paxos.ProtoAddr(cl.groups[g].Coordinators[i]))
	}
}

// CrashAcceptor kills acceptor i of group g.
func (cl *Cluster) CrashAcceptor(g, i int) {
	a := cl.acceptors[g*cl.cfg.Acceptors+i]
	_ = a.Close()
	if mem := cl.Transport(); mem != nil {
		mem.Drop(cl.groups[g].Acceptors[i])
	}
}

// CrashProxy kills proxy i (proxy fail-over tests): clients routing
// through it rotate to a survivor; with no survivors their submits
// fail with multicast.ErrProxyDown.
func (cl *Cluster) CrashProxy(i int) {
	_ = cl.proxies[i].Close()
	if mem := cl.Transport(); mem != nil {
		mem.Drop(cl.proxyAddr[i])
	}
}

// OrderingCounters aggregates the compartmentalized ordering layer's
// observability counters: per-proxy forwarding work plus the
// coordinators' inbound admission totals (all candidates; standbys
// contribute zero).
type OrderingCounters struct {
	// Proxies holds one counter snapshot per proxy, in proxy order.
	Proxies []proxy.Counters
	// Leader is the admission work summed over every coordinator.
	Leader paxos.CoordinatorCounters
}

// OrderingCounters snapshots the ordering layer's counters.
func (cl *Cluster) OrderingCounters() OrderingCounters {
	var oc OrderingCounters
	for _, p := range cl.proxies {
		oc.Proxies = append(oc.Proxies, p.Counters())
	}
	for _, co := range cl.coords {
		c := co.Counters()
		oc.Leader.InboundFrames += c.InboundFrames
		oc.Leader.InboundCommands += c.InboundCommands
	}
	return oc
}

// CrashReplica kills replica r (clients keep being served by the
// others).
func (cl *Cluster) CrashReplica(r int) {
	switch {
	case cl.cfg.Mode == ModeSPSMR && cl.cfg.Optimistic:
		_ = cl.optRepl[r].Close()
	case cl.cfg.Mode == ModeSPSMR:
		_ = cl.schedRepl[r].Close()
	default:
		_ = cl.replicas[r].Close()
	}
}

// RestartReplica restarts a crashed (or still-running — it is closed
// first) replica from its live peers: the new service instance
// (Config.NewService) restores the newest peer checkpoint, replays the
// decided suffix, and rejoins live delivery. Requires
// Config.Checkpoint enabled.
func (cl *Cluster) RestartReplica(r int) error {
	cfg := &cl.cfg
	if !cfg.Checkpoint.Enabled() {
		return fmt.Errorf("psmr: RestartReplica requires Config.Checkpoint enabled")
	}
	if r < 0 || r >= cfg.Replicas {
		return fmt.Errorf("psmr: replica %d outside [0,%d)", r, cfg.Replicas)
	}
	cl.CrashReplica(r) // idempotent: frees the replica's endpoints
	var peers []transport.Addr
	for o := 0; o < cfg.Replicas; o++ {
		if o != r {
			peers = append(peers, checkpoint.ServerAddr(o))
		}
	}
	return cl.startReplica(r, peers)
}

// CheckpointCounters returns each replica's checkpoint statistics
// (zero-valued unless Config.Checkpoint is enabled).
func (cl *Cluster) CheckpointCounters() []CheckpointCounters {
	cl.replMu.RLock()
	defer cl.replMu.RUnlock()
	var counters []CheckpointCounters
	for _, rep := range cl.replicas {
		if rep != nil {
			counters = append(counters, rep.CheckpointCounters())
		}
	}
	for _, rep := range cl.schedRepl {
		if rep != nil {
			counters = append(counters, rep.CheckpointCounters())
		}
	}
	for _, rep := range cl.optRepl {
		if rep != nil {
			counters = append(counters, rep.CheckpointCounters())
		}
	}
	return counters
}

// OptimisticCounters returns each optimistic replica's speculation
// counters (empty unless Config.Optimistic).
func (cl *Cluster) OptimisticCounters() []OptimisticCounters {
	cl.replMu.RLock()
	defer cl.replMu.RUnlock()
	counters := make([]OptimisticCounters, 0, len(cl.optRepl))
	for _, rep := range cl.optRepl {
		counters = append(counters, rep.Counters())
	}
	return counters
}

// Registry exposes the cluster's metrics registry: every counter the
// scattered per-tier snapshots report, the relay watchdog, CPU-meter
// busy time and — when tracing is on — the per-stage latency
// histograms, all behind one name+labels namespace. Serve it with
// obs.ServeMux for live Prometheus/expvar/pprof exposition.
func (cl *Cluster) Registry() *obs.Registry { return cl.reg }

// Tracer exposes the pipeline-stage tracer (nil when TraceSample < 0).
func (cl *Cluster) Tracer() *obs.Tracer { return cl.tracer }

// Journal exposes the flight-recorder event journal (nil when
// JournalEvents < 0).
func (cl *Cluster) Journal() *obs.Journal { return cl.journal }

// Flight exposes the flight recorder: anomaly-triggered diagnostic
// bundles plus operator-initiated dumps (nil when JournalEvents < 0).
func (cl *Cluster) Flight() *obs.Flight { return cl.flight }

// Metrics returns one coherent snapshot of every registered metric.
func (cl *Cluster) Metrics() []obs.Sample { return cl.reg.Snapshot() }

// RelaySilent reports how many silent-relay transitions the watchdog
// has flagged (zero when FanoutDegree is 0).
func (cl *Cluster) RelaySilent() uint64 { return cl.relaySilent.Load() }

// registerMetrics folds every tier's counters into the cluster
// registry as live function-backed metrics. Reads are atomic counter
// loads on the instrumented components, so scrapes never contend with
// the hot path.
func (cl *Cluster) registerMetrics() {
	r := cl.reg
	cl.tracer.Register(r)
	cl.journal.Register(r)
	cl.flight.Register(r)
	cl.relaySilent = r.Counter("ordering_relay_silent", "")

	for i, p := range cl.proxies {
		p := p
		labels := fmt.Sprintf(`proxy="%d"`, i)
		r.FuncCounter("proxy_queued_total", labels, func() uint64 { return p.Counters().Queued })
		r.FuncCounter("proxy_batches_total", labels, func() uint64 { return p.Counters().Batches })
		r.FuncCounter("proxy_commands_total", labels, func() uint64 { return p.Counters().Commands })
		r.FuncCounter("proxy_shed_total", labels, func() uint64 { return p.Counters().Shed })
	}

	coords := cl.coords
	sumCoord := func(pick func(paxos.CoordinatorCounters) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, co := range coords {
				total += pick(co.Counters())
			}
			return total
		}
	}
	r.FuncCounter("ordering_leader_inbound_frames_total", "",
		sumCoord(func(c paxos.CoordinatorCounters) uint64 { return c.InboundFrames }))
	r.FuncCounter("ordering_leader_inbound_commands_total", "",
		sumCoord(func(c paxos.CoordinatorCounters) uint64 { return c.InboundCommands }))
	r.FuncCounter("ordering_decided_total", "",
		sumCoord(func(c paxos.CoordinatorCounters) uint64 { return c.Decided }))

	if d := cl.cfg.FanoutDegree; d > 0 {
		for idx, rl := range cl.relays {
			rl := rl
			labels := fmt.Sprintf(`group="%d",relay="%d"`, idx/d, idx%d)
			r.FuncCounter("ordering_relay_forwarded_total", labels, rl.Forwarded)
			// Idle age in seconds since the relay last forwarded a
			// decision (0 until its first forward) — the per-stripe
			// last-delivery gauge the staleness test watches.
			r.FuncGauge("ordering_relay_idle_seconds", labels, func() float64 {
				last := rl.LastForward()
				if last.IsZero() {
					return 0
				}
				return time.Since(last).Seconds()
			})
		}
	}

	if cl.cfg.Checkpoint.Enabled() {
		sumCkpt := func(pick func(checkpoint.Counters) uint64) func() uint64 {
			return func() uint64 {
				var total uint64
				for _, c := range cl.CheckpointCounters() {
					total += pick(c)
				}
				return total
			}
		}
		r.FuncCounter("checkpoint_snapshots_total", "",
			sumCkpt(func(c checkpoint.Counters) uint64 { return c.Checkpoints }))
		r.FuncCounter("checkpoint_restores_total", "",
			sumCkpt(func(c checkpoint.Counters) uint64 { return c.Restores }))
		r.FuncCounter("checkpoint_pause_ns_total", "",
			sumCkpt(func(c checkpoint.Counters) uint64 { return c.TotalPauseNs }))
	}

	if cl.cfg.Optimistic {
		sumOpt := func(pick func(optimistic.Counters) uint64) func() uint64 {
			return func() uint64 {
				var total uint64
				for _, c := range cl.OptimisticCounters() {
					total += pick(c)
				}
				return total
			}
		}
		r.FuncCounter("optimistic_speculated_total", "",
			sumOpt(func(c optimistic.Counters) uint64 { return c.Speculated }))
		r.FuncCounter("optimistic_hits_total", "",
			sumOpt(func(c optimistic.Counters) uint64 { return c.Hits }))
		r.FuncCounter("optimistic_misses_total", "",
			sumOpt(func(c optimistic.Counters) uint64 { return c.Misses }))
		r.FuncCounter("optimistic_rollbacks_total", "",
			sumOpt(func(c optimistic.Counters) uint64 { return c.Rollbacks }))
	}

	if cl.cfg.Mode == ModeSPSMR {
		r.FuncCounter("sched_stolen_total", "", func() uint64 {
			cl.replMu.RLock()
			defer cl.replMu.RUnlock()
			var total uint64
			for _, rep := range cl.schedRepl {
				s, _ := rep.SchedStats()
				total += s
			}
			for _, rep := range cl.optRepl {
				s, _ := rep.SchedStats()
				total += s
			}
			return total
		})
		r.FuncGauge("sched_raided", "", func() float64 {
			cl.replMu.RLock()
			defer cl.replMu.RUnlock()
			var total int64
			for _, rep := range cl.schedRepl {
				_, ra := rep.SchedStats()
				total += ra
			}
			for _, rep := range cl.optRepl {
				_, ra := rep.SchedStats()
				total += ra
			}
			return float64(total)
		})
	}

	if cpu := cl.cfg.CPU; cpu != nil {
		busy, _ := cpu.Snapshot()
		for role := range busy {
			role := role
			r.FuncGauge("cpu_role_busy_seconds", fmt.Sprintf(`role="%s"`, role),
				func() float64 {
					b, _ := cpu.Snapshot()
					return b[role].Seconds()
				})
		}
	}
}

// watchRelays is the relay-staleness watchdog (FanoutDegree > 0): a
// relay whose forward counter stopped moving for RelaySilentAfter
// while its group kept deciding has lost its stripe — learners survive
// via gap retransmission, but tail latency degrades silently. The
// watchdog counts one ordering_relay_silent transition per stall and
// re-arms when the relay forwards again.
func (cl *Cluster) watchRelays() {
	defer close(cl.watchDone)
	cfg := &cl.cfg
	nGroups := len(cl.relays) / cfg.FanoutDegree
	lastDecided := make([]uint64, nGroups)
	lastForwarded := make([]uint64, len(cl.relays))
	silent := make([]bool, len(cl.relays))
	ticker := time.NewTicker(cfg.RelaySilentAfter / 2)
	defer ticker.Stop()
	for {
		select {
		case <-cl.watchStop:
			return
		case <-ticker.C:
		}
		for g := 0; g < nGroups; g++ {
			var decided uint64
			for i := 0; i < cfg.CoordinatorCandidates; i++ {
				decided += cl.coords[g*cfg.CoordinatorCandidates+i].Counters().Decided
			}
			groupActive := decided > lastDecided[g]
			lastDecided[g] = decided
			for i := 0; i < cfg.FanoutDegree; i++ {
				idx := g*cfg.FanoutDegree + i
				rl := cl.relays[idx]
				fwd := rl.Forwarded()
				if fwd != lastForwarded[idx] {
					lastForwarded[idx] = fwd
					silent[idx] = false
					continue
				}
				if silent[idx] || !groupActive {
					continue
				}
				if last := rl.LastForward(); last.IsZero() || time.Since(last) > cfg.RelaySilentAfter {
					silent[idx] = true
					cl.relaySilent.Inc()
					cl.journal.Emit(obs.EvRelaySilent, uint64(g), uint64(i))
					cl.flight.Trigger(fmt.Sprintf("ordering_relay_silent g%d/relay%d", g, i))
				}
			}
		}
	}
}

// watchAnomalies is the flight recorder's trigger loop for the
// execution-side black-box conditions the relay watchdog cannot see:
// learner gap stalls (a replica waiting on retransmission while its
// peers advance) and optimistic rollback storms (a re-speculation
// cascade burning CPU without confirming work). Each tick compares the
// counters against the previous tick and cuts a diagnostic bundle on a
// fresh burst; Flight's per-reason cooldown keeps a sustained storm
// from flooding the bundle ring.
func (cl *Cluster) watchAnomalies() {
	defer close(cl.anomDone)
	cfg := &cl.cfg
	ticker := time.NewTicker(cfg.RelaySilentAfter / 2)
	defer ticker.Stop()
	var lastStalls, lastRollbacks uint64
	for {
		select {
		case <-cl.anomStop:
			return
		case <-ticker.C:
		}
		if stalls := cl.gapStalls(); stalls > lastStalls {
			lastStalls = stalls
			cl.flight.Trigger("learner_gap_stall")
		}
		if cfg.Optimistic {
			var rollbacks uint64
			for _, c := range cl.OptimisticCounters() {
				rollbacks += c.Rollbacks
			}
			if rollbacks-lastRollbacks > uint64(cfg.RollbackStormThreshold) {
				cl.flight.Trigger("optimistic_rollback_storm")
			}
			lastRollbacks = rollbacks
		}
	}
}

// gapStalls sums learner gap-stall transitions across every replica.
func (cl *Cluster) gapStalls() uint64 {
	cl.replMu.RLock()
	defer cl.replMu.RUnlock()
	var total uint64
	for _, rep := range cl.replicas {
		if rep != nil {
			total += rep.GapStalls()
		}
	}
	for _, rep := range cl.schedRepl {
		if rep != nil {
			total += rep.GapStalls()
		}
	}
	for _, rep := range cl.optRepl {
		if rep != nil {
			total += rep.GapStalls()
		}
	}
	return total
}

// CrashRelay kills relay i of group g (staleness-detection tests):
// learners keep completing via gap retransmission while the watchdog
// flags the dead stripe.
func (cl *Cluster) CrashRelay(g, i int) {
	rl := cl.relays[g*cl.cfg.FanoutDegree+i]
	_ = rl.Close()
	if mem := cl.Transport(); mem != nil {
		mem.Drop(transport.Addr(fmt.Sprintf("g%d/relay%d", g, i)))
	}
}

// Close shuts the whole deployment down.
func (cl *Cluster) Close() error {
	if cl.closed {
		return nil
	}
	cl.closed = true
	if cl.watchStop != nil {
		close(cl.watchStop)
		<-cl.watchDone
	}
	if cl.anomStop != nil {
		close(cl.anomStop)
		<-cl.anomDone
	}
	for _, rep := range cl.replicas {
		if rep != nil {
			_ = rep.Close()
		}
	}
	for _, rep := range cl.schedRepl {
		if rep != nil {
			_ = rep.Close()
		}
	}
	for _, rep := range cl.optRepl {
		if rep != nil {
			_ = rep.Close()
		}
	}
	for _, p := range cl.proxies {
		_ = p.Close()
	}
	for _, co := range cl.coords {
		_ = co.Close()
	}
	for _, rl := range cl.relays {
		_ = rl.Close()
	}
	for _, a := range cl.acceptors {
		_ = a.Close()
	}
	return cl.cfg.Transport.Close()
}
