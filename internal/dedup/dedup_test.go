package dedup

import (
	"bytes"
	"fmt"
	"testing"
)

func TestLookupMiss(t *testing.T) {
	tbl := NewTable(8)
	if _, dup := tbl.Lookup(1, 1); dup {
		t.Fatal("empty table reported duplicate")
	}
}

func TestRecordAndLookup(t *testing.T) {
	tbl := NewTable(8)
	tbl.Record(1, 5, []byte("out5"))
	out, dup := tbl.Lookup(1, 5)
	if !dup || !bytes.Equal(out, []byte("out5")) {
		t.Fatalf("Lookup = %q, %v", out, dup)
	}
	// Other client, same seq: miss.
	if _, dup := tbl.Lookup(2, 5); dup {
		t.Fatal("cross-client hit")
	}
	// Same client, other seq: miss.
	if _, dup := tbl.Lookup(1, 6); dup {
		t.Fatal("wrong-seq hit")
	}
}

func TestEvictionKeepsRecent(t *testing.T) {
	const window = 16
	tbl := NewTable(window)
	const n = 200
	for seq := uint64(1); seq <= n; seq++ {
		tbl.Record(7, seq, []byte(fmt.Sprintf("v%d", seq)))
	}
	// The most recent half-window must always be retained.
	for seq := uint64(n - window/2 + 1); seq <= n; seq++ {
		if _, dup := tbl.Lookup(7, seq); !dup {
			t.Fatalf("recent seq %d evicted", seq)
		}
	}
	// Ancient entries must be gone (bounded memory).
	if _, dup := tbl.Lookup(7, 1); dup {
		t.Fatal("ancient entry retained")
	}
}

func TestSparseSequences(t *testing.T) {
	tbl := NewTable(8)
	// A client that jumps its sequence space must not pin memory or
	// break retention of the newest entries.
	for i := uint64(0); i < 50; i++ {
		tbl.Record(3, i*1_000_000, []byte("x"))
	}
	if _, dup := tbl.Lookup(3, 49*1_000_000); !dup {
		t.Fatal("most recent sparse entry evicted")
	}
}

func TestTinyWindowNormalised(t *testing.T) {
	tbl := NewTable(0)
	tbl.Record(1, 1, []byte("a"))
	tbl.Record(1, 2, []byte("b"))
	if _, dup := tbl.Lookup(1, 2); !dup {
		t.Fatal("latest entry must be retained even with tiny window")
	}
}

func TestManyClients(t *testing.T) {
	tbl := NewTable(4)
	for c := uint64(0); c < 100; c++ {
		tbl.Record(c, 1, []byte{byte(c)})
	}
	for c := uint64(0); c < 100; c++ {
		out, dup := tbl.Lookup(c, 1)
		if !dup || out[0] != byte(c) {
			t.Fatalf("client %d: %v %v", c, out, dup)
		}
	}
}
