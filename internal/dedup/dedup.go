// Package dedup provides the per-client at-most-once table shared by
// every replica engine: it caches the responses of recently executed
// requests so a retransmitted request (same client id and sequence
// number) is answered from the cache instead of re-executed.
package dedup

// Table caches responses keyed by (client, seq). Entries are evicted
// per client once a client's cache exceeds the window: lowest sequence
// numbers first, since clients allocate sequence numbers monotonically
// and only retransmit requests within their outstanding window.
//
// A Table is confined to a single goroutine (one worker or one
// scheduler); it performs no locking.
type Table struct {
	window  int
	clients map[uint64]*clientCache
}

type clientCache struct {
	responses map[uint64][]byte
	minSeq    uint64 // smallest seq possibly present
}

// NewTable creates a table retaining about window responses per client.
func NewTable(window int) *Table {
	if window < 2 {
		window = 2
	}
	return &Table{
		window:  window,
		clients: make(map[uint64]*clientCache),
	}
}

// Lookup returns the cached response for (client, seq) if the request
// was already executed through this table.
func (t *Table) Lookup(client, seq uint64) (output []byte, duplicate bool) {
	c, ok := t.clients[client]
	if !ok {
		return nil, false
	}
	output, duplicate = c.responses[seq]
	return output, duplicate
}

// Record stores the response of a just-executed request and evicts old
// entries beyond the window.
func (t *Table) Record(client, seq uint64, output []byte) {
	c, ok := t.clients[client]
	if !ok {
		c = &clientCache{responses: make(map[uint64][]byte, 8), minSeq: seq}
		t.clients[client] = c
	}
	c.responses[seq] = output
	if len(c.responses) <= t.window {
		return
	}
	// Evict roughly the oldest half by advancing minSeq; sequence
	// numbers below the new floor can no longer be retransmitted by a
	// correct client. The scan bound is fixed up front (the loop
	// advances minSeq, so a bound recomputed from it would never bind
	// and sparse maps would trigger unbounded scans).
	target := len(c.responses) - t.window/2
	limit := c.minSeq + uint64(4*t.window)
	for seq := c.minSeq; target > 0 && seq <= limit; seq++ {
		if _, ok := c.responses[seq]; ok {
			delete(c.responses, seq)
			target--
		}
		c.minSeq = seq + 1
	}
	if target > 0 {
		// Sparse sequence numbers (client jumped): rebuild keeping the
		// highest entries.
		max := uint64(0)
		for s := range c.responses {
			if s > max {
				max = s
			}
		}
		floor := uint64(0)
		if max > uint64(t.window/2) {
			floor = max - uint64(t.window/2)
		}
		for s := range c.responses {
			if s < floor {
				delete(c.responses, s)
			}
		}
		c.minSeq = floor
	}
}
