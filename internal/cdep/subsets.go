package cdep

import (
	"fmt"
	"sort"

	"github.com/psmr/psmr/internal/command"
)

// SubsetTable maps hot worker-subset unions (multi-key γ sets) to
// dedicated physical multicast groups. Without it, every multi-worker
// command rides the single shared serial group — the source paper's
// open physical-multicast gap. With it, a command whose γ exactly
// matches a compiled subset is ordered on that subset's own group and
// merged (deterministically) only by the subset's members, so hot
// pairs no longer serialize behind unrelated multi-key traffic.
//
// Subsets are purely a routing optimization: γ sets with no exact
// match still fall back to the serial group, and correctness never
// depends on which physical group carried a command (the deterministic
// merge restricted to any common stream subset is identical at every
// subscriber).
type SubsetTable struct {
	workers int
	subsets []command.Gamma       // canonical order: ascending bitset value
	index   map[command.Gamma]int // γ -> position in subsets
}

// CompileSubsets validates and canonicalizes the configured hot
// subsets for a deployment of `workers` P-SMR workers. Each subset
// must name at least two distinct workers within [0, workers);
// duplicate subsets are rejected. The resulting table order (ascending
// γ bitset value) is the deployment-wide subset-group numbering, so it
// must be identical at clients and replicas — deriving it here, from
// the same config, guarantees that.
func CompileSubsets(workers int, subsets [][]int) (*SubsetTable, error) {
	if len(subsets) == 0 {
		return nil, nil
	}
	if workers < 2 {
		return nil, fmt.Errorf("cdep: subset groups need >= 2 workers, have %d", workers)
	}
	t := &SubsetTable{
		workers: workers,
		subsets: make([]command.Gamma, 0, len(subsets)),
		index:   make(map[command.Gamma]int, len(subsets)),
	}
	for i, ws := range subsets {
		var g command.Gamma
		for _, w := range ws {
			if w < 0 || w >= workers {
				return nil, fmt.Errorf("cdep: subset %d: worker %d outside [0,%d)", i, w, workers)
			}
			g |= command.GammaOf(w)
		}
		if g.Count() < 2 {
			return nil, fmt.Errorf("cdep: subset %d %s has %d distinct workers, need >= 2", i, g, g.Count())
		}
		if g.Count() == workers {
			return nil, fmt.Errorf("cdep: subset %d %s spans all workers; that is the serial group", i, g)
		}
		if _, dup := t.index[g]; dup {
			return nil, fmt.Errorf("cdep: duplicate subset %s", g)
		}
		t.index[g] = 0 // placeholder until sorted
		t.subsets = append(t.subsets, g)
	}
	sort.Slice(t.subsets, func(i, j int) bool { return t.subsets[i] < t.subsets[j] })
	for i, g := range t.subsets {
		t.index[g] = i
	}
	return t, nil
}

// AllPairs enumerates every 2-worker subset of a deployment — the
// exhaustive hot-union set for pairwise multi-key workloads (e.g. the
// kvstore transfer). Quadratic in workers; intended for small k.
func AllPairs(workers int) [][]int {
	var out [][]int
	for i := 0; i < workers; i++ {
		for j := i + 1; j < workers; j++ {
			out = append(out, []int{i, j})
		}
	}
	return out
}

// Count returns the number of compiled subsets; 0 on a nil table.
func (t *SubsetTable) Count() int {
	if t == nil {
		return 0
	}
	return len(t.subsets)
}

// Gammas returns the compiled subsets in canonical order. The caller
// must not modify the slice.
func (t *SubsetTable) Gammas() []command.Gamma {
	if t == nil {
		return nil
	}
	return t.subsets
}

// Lookup returns the canonical index of γ if it is a compiled subset.
func (t *SubsetTable) Lookup(g command.Gamma) (int, bool) {
	if t == nil {
		return 0, false
	}
	idx, ok := t.index[g]
	return idx, ok
}

// ForWorker returns (ascending) the canonical indices of the subsets
// containing worker w — the subset streams w's merger must subscribe
// to.
func (t *SubsetTable) ForWorker(w int) []int {
	if t == nil {
		return nil
	}
	var out []int
	for i, g := range t.subsets {
		if g.Has(w) {
			out = append(out, i)
		}
	}
	return out
}
