package cdep

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/command"
)

const cmdXferT command.ID = 5

func xferKeysFromInput(input []byte) ([]uint64, bool) {
	if len(input) < 16 {
		return nil, false
	}
	return []uint64{
		binary.LittleEndian.Uint64(input),
		binary.LittleEndian.Uint64(input[8:16]),
	}, true
}

func xferInput(from, to uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, from)
	binary.LittleEndian.PutUint64(buf[8:], to)
	return buf
}

// kvSpecWithTransfer extends the paper's kv C-Dep with a two-key
// transfer: same-key over {from, to} against reads/updates/transfers,
// always-conflicting with inserts and deletes.
func kvSpecWithTransfer() Spec {
	spec := kvSpec()
	spec.Commands = append(spec.Commands,
		Command{ID: cmdXferT, Name: "transfer", KeySet: xferKeysFromInput})
	spec.Deps = append(spec.Deps,
		Dep{A: cmdInsert, B: cmdXferT}, Dep{A: cmdDelete, B: cmdXferT},
		Dep{A: cmdXferT, B: cmdXferT, SameKey: true},
		Dep{A: cmdXferT, B: cmdRead, SameKey: true},
		Dep{A: cmdXferT, B: cmdUpdate, SameKey: true},
	)
	return spec
}

func TestMultiKeyClassification(t *testing.T) {
	c, err := Compile(kvSpecWithTransfer(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Class(cmdXferT); got != MultiKeyed {
		t.Fatalf("transfer class = %v, want MultiKeyed", got)
	}
	if got := c.Route(cmdXferT).Kind; got != RouteMultiKey {
		t.Fatalf("transfer route = %v, want multikey", got)
	}
	if c.Route(cmdXferT).ReadOnly {
		t.Fatal("multi-key command marked read-only")
	}
	// Existing classes are untouched by the extension.
	if c.Class(cmdInsert) != Global || c.Class(cmdUpdate) != Keyed {
		t.Fatal("extension shifted existing classes")
	}
	if MultiKeyed.String() != "multikey" || RouteMultiKey.String() != "multikey" {
		t.Fatal("String() mismatch for multi-key class/route")
	}
}

// KeySet canonicalises extractor output: sorted ascending, duplicates
// removed, singleton adapter for single-key commands.
func TestKeySetCanonical(t *testing.T) {
	c, err := Compile(kvSpecWithTransfer(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	keys, ok := c.KeySet(cmdXferT, xferInput(9, 3))
	if !ok || len(keys) != 2 || keys[0] != 3 || keys[1] != 9 {
		t.Fatalf("KeySet(9,3) = %v, %v; want [3 9]", keys, ok)
	}
	keys, ok = c.KeySet(cmdXferT, xferInput(4, 4))
	if !ok || len(keys) != 1 || keys[0] != 4 {
		t.Fatalf("KeySet(4,4) = %v, %v; want [4]", keys, ok)
	}
	// Single-key adapter.
	keys, ok = c.KeySet(cmdUpdate, keyInput(7))
	if !ok || len(keys) != 1 || keys[0] != 7 {
		t.Fatalf("KeySet(update 7) = %v, %v; want [7]", keys, ok)
	}
	// No extractor / short input.
	if _, ok := c.KeySet(cmdXferT, []byte{1}); ok {
		t.Fatal("short transfer input produced a key set")
	}
	if _, ok := c.KeySet(command.ID(99), nil); ok {
		t.Fatal("unknown command produced a key set")
	}
}

// Conflicts intersects key sets: a transfer conflicts with anything
// touching either endpoint, with transfers sharing one endpoint, and
// with nothing disjoint.
func TestMultiKeyConflicts(t *testing.T) {
	c, err := Compile(kvSpecWithTransfer(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tests := []struct {
		name string
		a    command.ID
		ia   []byte
		b    command.ID
		ib   []byte
		want bool
	}{
		{"xfer vs read from", cmdXferT, xferInput(1, 2), cmdRead, keyInput(1), true},
		{"xfer vs read to", cmdXferT, xferInput(1, 2), cmdRead, keyInput(2), true},
		{"xfer vs read other", cmdXferT, xferInput(1, 2), cmdRead, keyInput(3), false},
		{"xfer vs update to", cmdXferT, xferInput(1, 2), cmdUpdate, keyInput(2), true},
		{"xfer vs xfer shared", cmdXferT, xferInput(1, 2), cmdXferT, xferInput(2, 3), true},
		{"xfer vs xfer disjoint", cmdXferT, xferInput(1, 2), cmdXferT, xferInput(3, 4), false},
		{"xfer vs insert always", cmdXferT, xferInput(1, 2), cmdInsert, keyInput(9), true},
		{"xfer keyless conservative", cmdXferT, []byte{1}, cmdXferT, xferInput(3, 4), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Conflicts(tt.a, tt.ia, tt.b, tt.ib); got != tt.want {
				t.Fatalf("Conflicts = %v, want %v", got, tt.want)
			}
			if rev := c.Conflicts(tt.b, tt.ib, tt.a, tt.ia); rev != tt.want {
				t.Fatalf("Conflicts not symmetric")
			}
		})
	}
}

// The C-G function multicasts a multi-key command to the UNION of its
// keys' groups, and the safety property (dependent invocations share a
// group) holds across single- and multi-key commands.
func TestMultiKeyGroupsUnion(t *testing.T) {
	const k = 8
	c, err := Compile(kvSpecWithTransfer(), k)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	g := c.Groups(cmdXferT, xferInput(3, 12), nil)
	want := command.GammaOf(3%k, 12%k)
	if g != want {
		t.Fatalf("transfer γ = %v, want %v", g, want)
	}
	// Same group for both keys → singleton γ.
	if g := c.Groups(cmdXferT, xferInput(1, 1+k), nil); g.Count() != 1 {
		t.Fatalf("same-group transfer γ = %v, want singleton", g)
	}
	// Keyless invocation: synchronous mode.
	if g := c.Groups(cmdXferT, []byte{1}, nil); g != command.AllWorkers(k) {
		t.Fatalf("keyless transfer γ = %v, want all", g)
	}
	// Placement pins steer the union exactly like keyed commands.
	cp, err := Compile(kvSpecWithTransfer(), k, WithPlacement(map[uint64]int{3: 6}))
	if err != nil {
		t.Fatalf("Compile placed: %v", err)
	}
	if g := cp.Groups(cmdXferT, xferInput(3, 12), nil); g != command.GammaOf(6, 12%k) {
		t.Fatalf("placed transfer γ = %v, want %v", g, command.GammaOf(6, 12%k))
	}
	// Safety: random dependent pairs always share a group.
	rng := rand.New(rand.NewSource(21))
	cmds := []command.ID{cmdInsert, cmdDelete, cmdRead, cmdUpdate, cmdXferT}
	inputFor := func(cmd command.ID) []byte {
		if cmd == cmdXferT {
			return xferInput(uint64(rng.Intn(40)), uint64(rng.Intn(40)))
		}
		return keyInput(uint64(rng.Intn(40)))
	}
	for i := 0; i < 3000; i++ {
		ca, cb := cmds[rng.Intn(len(cmds))], cmds[rng.Intn(len(cmds))]
		ia, ib := inputFor(ca), inputFor(cb)
		if !c.Conflicts(ca, ia, cb, ib) {
			continue
		}
		ga, gb := c.Groups(ca, ia, rng.Intn), c.Groups(cb, ib, rng.Intn)
		if ga&gb == 0 {
			t.Fatalf("dependent (%d,%x) γ=%v and (%d,%x) γ=%v share no group", ca, ia, ga, cb, ib, gb)
		}
	}
}

// Compile error cases of the key-set extension.
func TestMultiKeyCompileErrors(t *testing.T) {
	// A same-key dep on a command with NEITHER extractor.
	noExtractor := Spec{
		Commands: []Command{
			{ID: 1, Name: "xfer"}, // multi-key intent, extractor missing
			{ID: 2, Name: "read", Key: keyFromInput},
		},
		Deps: []Dep{{A: 1, B: 2, SameKey: true}},
	}
	if _, err := Compile(noExtractor, 4); err == nil {
		t.Fatal("same-key dep on extractor-less command accepted")
	}
	// Key and KeySet on the same command are ambiguous.
	both := Spec{
		Commands: []Command{
			{ID: 1, Name: "xfer", Key: keyFromInput, KeySet: xferKeysFromInput},
		},
	}
	if _, err := Compile(both, 4); err == nil {
		t.Fatal("command with both Key and KeySet accepted")
	}
	// Disjoint worker sets across a same-key dep involving a multi-key
	// command would route same-key invocations to disjoint workers.
	if _, err := Compile(kvSpecWithTransfer(), 4,
		WithWorkerSet(cmdXferT, 0, 1),
		WithWorkerSet(cmdRead, 2, 3), WithWorkerSet(cmdUpdate, 2, 3)); err == nil {
		t.Fatal("disjoint worker sets across a multi-key same-key dep accepted")
	}
	// Shared sets compile, restrict the route, and keep placement pins
	// inside the set validated.
	if _, err := Compile(kvSpecWithTransfer(), 4,
		WithWorkerSet(cmdXferT, 1, 3), WithWorkerSet(cmdRead, 1, 3), WithWorkerSet(cmdUpdate, 1, 3),
		WithPlacement(map[uint64]int{7: 0})); err == nil {
		t.Fatal("placement pin outside a multi-key command's worker set accepted")
	}
	c, err := Compile(kvSpecWithTransfer(), 4,
		WithWorkerSet(cmdXferT, 1, 3), WithWorkerSet(cmdRead, 1, 3), WithWorkerSet(cmdUpdate, 1, 3))
	if err != nil {
		t.Fatalf("shared worker sets rejected: %v", err)
	}
	if got := c.Route(cmdXferT).Workers; got != command.GammaOf(1, 3) {
		t.Fatalf("transfer route workers = %v, want {1,3}", got)
	}
	// The union γ stays inside the restricted set.
	for i := uint64(0); i < 50; i++ {
		g := c.Groups(cmdXferT, xferInput(i, i*7+1), nil)
		if g&^command.GammaOf(1, 3) != 0 {
			t.Fatalf("transfer γ %v escaped worker set {1,3}", g)
		}
	}
}
