package cdep

import (
	"testing"

	"github.com/psmr/psmr/internal/command"
)

func TestCompileSubsetsCanonicalOrder(t *testing.T) {
	// Declaration order must not matter: the canonical numbering is
	// ascending bitset value.
	tab, err := CompileSubsets(4, [][]int{{2, 3}, {0, 1}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []command.Gamma{
		command.GammaOf(0, 1), // 0b0011
		command.GammaOf(1, 3), // 0b1010
		command.GammaOf(2, 3), // 0b1100
	}
	got := tab.Gammas()
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subset %d = %s, want %s", i, got[i], want[i])
		}
	}
	if idx, ok := tab.Lookup(command.GammaOf(3, 1)); !ok || idx != 1 {
		t.Fatalf("Lookup({1,3}) = %d,%v, want 1,true", idx, ok)
	}
	if _, ok := tab.Lookup(command.GammaOf(0, 2)); ok {
		t.Fatal("Lookup({0,2}) found a subset that was not compiled")
	}
}

func TestCompileSubsetsRejections(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		subsets [][]int
	}{
		{"singleton", 4, [][]int{{2}}},
		{"duplicate-members-collapse-to-singleton", 4, [][]int{{2, 2}}},
		{"out-of-range", 4, [][]int{{1, 4}}},
		{"negative", 4, [][]int{{-1, 1}}},
		{"all-workers", 3, [][]int{{0, 1, 2}}},
		{"duplicate-subset", 4, [][]int{{0, 1}, {1, 0}}},
		{"one-worker-deployment", 1, [][]int{{0, 1}}},
	}
	for _, c := range cases {
		if _, err := CompileSubsets(c.workers, c.subsets); err == nil {
			t.Errorf("%s: CompileSubsets accepted %v", c.name, c.subsets)
		}
	}
}

func TestCompileSubsetsEmpty(t *testing.T) {
	tab, err := CompileSubsets(4, nil)
	if err != nil || tab != nil {
		t.Fatalf("CompileSubsets(4, nil) = %v, %v; want nil, nil", tab, err)
	}
	// The nil table must behave as "no subsets" everywhere.
	if tab.Count() != 0 || tab.Gammas() != nil || tab.ForWorker(0) != nil {
		t.Fatal("nil SubsetTable is not inert")
	}
	if _, ok := tab.Lookup(command.GammaOf(0, 1)); ok {
		t.Fatal("nil SubsetTable resolved a lookup")
	}
}

func TestSubsetsForWorker(t *testing.T) {
	tab, err := CompileSubsets(4, AllPairs(4))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Count() != 6 {
		t.Fatalf("AllPairs(4) compiled to %d subsets, want 6", tab.Count())
	}
	for w := 0; w < 4; w++ {
		idxs := tab.ForWorker(w)
		if len(idxs) != 3 {
			t.Fatalf("worker %d in %d pair subsets, want 3", w, len(idxs))
		}
		for i := 1; i < len(idxs); i++ {
			if idxs[i] <= idxs[i-1] {
				t.Fatalf("worker %d subset indices not ascending: %v", w, idxs)
			}
		}
		for _, si := range idxs {
			if !tab.Gammas()[si].Has(w) {
				t.Fatalf("worker %d listed for subset %s", w, tab.Gammas()[si])
			}
		}
	}
}
