package cdep

import (
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/command"
)

func TestCompiledRoutes(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	all := command.AllWorkers(8)
	tests := []struct {
		cmd  command.ID
		want RouteKind
	}{
		{cmdInsert, RouteBarrier},
		{cmdDelete, RouteBarrier},
		{cmdRead, RouteKeyed},
		{cmdUpdate, RouteKeyed},
	}
	for _, tt := range tests {
		r := c.Route(tt.cmd)
		if r.Kind != tt.want {
			t.Errorf("Route(%d).Kind = %v, want %v", tt.cmd, r.Kind, tt.want)
		}
		if r.Workers != all {
			t.Errorf("Route(%d).Workers = %v, want %v", tt.cmd, r.Workers, all)
		}
	}
}

func TestRouteUnknownCommandIsBarrier(t *testing.T) {
	c, err := Compile(kvSpec(), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	r := c.Route(command.ID(999))
	if r.Kind != RouteBarrier {
		t.Fatalf("unknown command routes as %v, want barrier", r.Kind)
	}
}

func TestRouteIndependentCommandIsFree(t *testing.T) {
	spec := Spec{
		Commands: []Command{
			{ID: cmdRead, Name: "get_state"},
			{ID: cmdUpdate, Name: "set_state"},
		},
		Deps: []Dep{
			{A: cmdUpdate, B: cmdUpdate},
			{A: cmdUpdate, B: cmdRead},
		},
	}
	c, err := Compile(spec, 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Route(cmdRead).Kind; got != RouteFree {
		t.Fatalf("independent command routes as %v, want free", got)
	}
	if got := c.Route(cmdUpdate).Kind; got != RouteBarrier {
		t.Fatalf("global command routes as %v, want barrier", got)
	}
}

func TestPlacedWorker(t *testing.T) {
	c, err := Compile(kvSpec(), 8, WithPlacement(map[uint64]int{42: 3}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if w, ok := c.PlacedWorker(42); !ok || w != 3 {
		t.Fatalf("PlacedWorker(42) = %d,%v, want 3,true", w, ok)
	}
	if _, ok := c.PlacedWorker(7); ok {
		t.Fatal("PlacedWorker(7) reported a pin for an unpinned key")
	}
}

// Keyed commands without a self-dependency are read-only (reads never
// conflict with reads); self-conflicting keyed commands are not.
func TestRouteReadOnlyBit(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !c.Route(cmdRead).ReadOnly {
		t.Fatal("read route not marked read-only")
	}
	if c.Route(cmdUpdate).ReadOnly {
		t.Fatal("update route marked read-only")
	}
	if c.Route(cmdInsert).ReadOnly {
		t.Fatal("barrier route marked read-only")
	}
}

// Two keyed commands that conflict with each other but not with
// themselves must NOT both be read-only: in one reader set they would
// overlap despite the declared same-key dependency. The compiler
// demotes both to writers.
func TestRouteMutualReadersDemotedToWriters(t *testing.T) {
	spec := Spec{
		Commands: []Command{
			{ID: 1, Name: "a", Key: keyFromInput},
			{ID: 2, Name: "b", Key: keyFromInput},
			{ID: 3, Name: "w", Key: keyFromInput},
			{ID: 4, Name: "r", Key: keyFromInput},
		},
		Deps: []Dep{
			{A: 1, B: 2, SameKey: true}, // mutual, neither self-conflicts
			{A: 3, B: 3, SameKey: true}, // plain writer...
			{A: 3, B: 4, SameKey: true}, // ...with a plain reader
		},
	}
	c, err := Compile(spec, 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if c.Route(1).ReadOnly || c.Route(2).ReadOnly {
		t.Fatal("mutually-conflicting keyed commands marked read-only")
	}
	if c.Route(3).ReadOnly {
		t.Fatal("self-conflicting command marked read-only")
	}
	if !c.Route(4).ReadOnly {
		t.Fatal("plain reader (writer-only partners) not marked read-only")
	}
}

// WithWorkerSet must restrict the compiled route table AND drive the
// client-side C-G: keyed commands hash their key over the restricted
// set, independent commands draw a random member of it. This is the
// P-SMR-side adoption of the route table (ROADMAP): the same compiled
// worker-set assignment that routes commands inside the index engine
// now steers the client's group choice for keyed commands.
func TestWorkerSetDrivesClientCG(t *testing.T) {
	const k = 8
	set := command.GammaOf(1, 3, 5)
	c, err := Compile(kvSpec(), k,
		WithWorkerSet(cmdRead, 1, 3, 5), WithWorkerSet(cmdUpdate, 1, 3, 5))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Route(cmdRead).Workers; got != set {
		t.Fatalf("Route(read).Workers = %v, want %v", got, set)
	}
	for key := uint64(0); key < 100; key++ {
		gu := c.Groups(cmdUpdate, keyInput(key), nil)
		gr := c.Groups(cmdRead, keyInput(key), nil)
		if gu != gr {
			t.Fatalf("key %d: update γ=%v read γ=%v", key, gu, gr)
		}
		if gu.Count() != 1 || !set.Has(gu.Min()) {
			t.Fatalf("key %d: γ=%v outside worker set %v", key, gu, set)
		}
		// Deterministic: same key, same destination.
		if again := c.Groups(cmdUpdate, keyInput(key), nil); again != gu {
			t.Fatalf("key %d: γ changed between calls (%v then %v)", key, gu, again)
		}
	}
	// The three members must all be used (key mod 3 over the set).
	seen := map[int]bool{}
	for key := uint64(0); key < 30; key++ {
		seen[c.Groups(cmdRead, keyInput(key), nil).Min()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("restricted keyed C-G used %d of 3 members", len(seen))
	}
}

func TestWorkerSetIndependentCommand(t *testing.T) {
	const (
		cmdGet command.ID = 1
		cmdSet command.ID = 2
	)
	spec := Spec{
		Commands: []Command{{ID: cmdGet, Name: "get_state"}, {ID: cmdSet, Name: "set_state"}},
		Deps:     []Dep{{A: cmdSet, B: cmdSet}, {A: cmdSet, B: cmdGet}},
	}
	c, err := Compile(spec, 8, WithWorkerSet(cmdGet, 2, 6))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if g := c.Groups(cmdGet, nil, nil); g.Min() != 2 {
		t.Fatalf("nil randN γ=%v, want lowest member 2", g)
	}
	seen := map[int]bool{}
	draw := 0
	randN := func(n int) int {
		if n != 2 {
			t.Fatalf("randN called with %d, want worker-set size 2", n)
		}
		draw++
		return draw % 2
	}
	for i := 0; i < 10; i++ {
		g := c.Groups(cmdGet, nil, randN)
		if g.Count() != 1 || (g.Min() != 2 && g.Min() != 6) {
			t.Fatalf("independent γ=%v outside {2,6}", g)
		}
		seen[g.Min()] = true
	}
	if len(seen) != 2 {
		t.Fatal("independent draws did not cover the worker set")
	}
}

func TestWorkerSetValidation(t *testing.T) {
	if _, err := Compile(kvSpec(), 4, WithWorkerSet(cmdRead, 4)); err == nil {
		t.Fatal("worker set outside [0,k) accepted")
	}
	if _, err := Compile(kvSpec(), 4, WithWorkerSet(command.ID(99), 0)); err == nil {
		t.Fatal("worker set for unknown command accepted")
	}
	if _, err := Compile(kvSpec(), 4, WithWorkerSet(cmdRead)); err == nil {
		t.Fatal("empty worker set accepted")
	}
	// Same-key-dependent commands with divergent sets would break the
	// shared-group safety property.
	if _, err := Compile(kvSpec(), 4, WithWorkerSet(cmdRead, 0, 1), WithWorkerSet(cmdUpdate, 2, 3)); err == nil {
		t.Fatal("divergent worker sets on a same-key dep accepted")
	}
	// A placement pin outside a keyed command's worker set would
	// silently defeat the restriction.
	if _, err := Compile(kvSpec(), 4,
		WithWorkerSet(cmdRead, 1, 3), WithWorkerSet(cmdUpdate, 1, 3),
		WithPlacement(map[uint64]int{42: 0})); err == nil {
		t.Fatal("placement pin outside the worker set accepted")
	}
	if _, err := Compile(kvSpec(), 4,
		WithWorkerSet(cmdRead, 1, 3), WithWorkerSet(cmdUpdate, 1, 3),
		WithPlacement(map[uint64]int{42: 3})); err != nil {
		t.Fatalf("placement pin inside the worker set rejected: %v", err)
	}
}

// Restricted sets must preserve the C-G safety property: dependent
// invocations share at least one group.
func TestWorkerSetKeepsDependentsShared(t *testing.T) {
	c, err := Compile(kvSpec(), 8,
		WithWorkerSet(cmdRead, 1, 3, 5), WithWorkerSet(cmdUpdate, 1, 3, 5))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	cmds := []command.ID{cmdInsert, cmdDelete, cmdRead, cmdUpdate}
	for i := 0; i < 2000; i++ {
		ca, cb := cmds[rng.Intn(len(cmds))], cmds[rng.Intn(len(cmds))]
		ia, ib := keyInput(uint64(rng.Intn(40))), keyInput(uint64(rng.Intn(40)))
		if !c.Conflicts(ca, ia, cb, ib) {
			continue
		}
		ga, gb := c.Groups(ca, ia, rng.Intn), c.Groups(cb, ib, rng.Intn)
		if ga&gb == 0 {
			t.Fatalf("dependent (%d,%x) γ=%v and (%d,%x) γ=%v share no group", ca, ia, ga, cb, ib, gb)
		}
	}
}

func TestRouteKindString(t *testing.T) {
	for kind, want := range map[RouteKind]string{
		RouteKeyed:    "keyed",
		RouteFree:     "free",
		RouteBarrier:  "barrier",
		RouteKind(42): "RouteKind(42)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}
