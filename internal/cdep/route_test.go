package cdep

import (
	"testing"

	"github.com/psmr/psmr/internal/command"
)

func TestCompiledRoutes(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	all := command.AllWorkers(8)
	tests := []struct {
		cmd  command.ID
		want RouteKind
	}{
		{cmdInsert, RouteBarrier},
		{cmdDelete, RouteBarrier},
		{cmdRead, RouteKeyed},
		{cmdUpdate, RouteKeyed},
	}
	for _, tt := range tests {
		r := c.Route(tt.cmd)
		if r.Kind != tt.want {
			t.Errorf("Route(%d).Kind = %v, want %v", tt.cmd, r.Kind, tt.want)
		}
		if r.Workers != all {
			t.Errorf("Route(%d).Workers = %v, want %v", tt.cmd, r.Workers, all)
		}
	}
}

func TestRouteUnknownCommandIsBarrier(t *testing.T) {
	c, err := Compile(kvSpec(), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	r := c.Route(command.ID(999))
	if r.Kind != RouteBarrier {
		t.Fatalf("unknown command routes as %v, want barrier", r.Kind)
	}
}

func TestRouteIndependentCommandIsFree(t *testing.T) {
	spec := Spec{
		Commands: []Command{
			{ID: cmdRead, Name: "get_state"},
			{ID: cmdUpdate, Name: "set_state"},
		},
		Deps: []Dep{
			{A: cmdUpdate, B: cmdUpdate},
			{A: cmdUpdate, B: cmdRead},
		},
	}
	c, err := Compile(spec, 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Route(cmdRead).Kind; got != RouteFree {
		t.Fatalf("independent command routes as %v, want free", got)
	}
	if got := c.Route(cmdUpdate).Kind; got != RouteBarrier {
		t.Fatalf("global command routes as %v, want barrier", got)
	}
}

func TestPlacedWorker(t *testing.T) {
	c, err := Compile(kvSpec(), 8, WithPlacement(map[uint64]int{42: 3}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if w, ok := c.PlacedWorker(42); !ok || w != 3 {
		t.Fatalf("PlacedWorker(42) = %d,%v, want 3,true", w, ok)
	}
	if _, ok := c.PlacedWorker(7); ok {
		t.Fatal("PlacedWorker(7) reported a pin for an unpinned key")
	}
}

func TestRouteKindString(t *testing.T) {
	for kind, want := range map[RouteKind]string{
		RouteKeyed:    "keyed",
		RouteFree:     "free",
		RouteBarrier:  "barrier",
		RouteKind(42): "RouteKind(42)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}
