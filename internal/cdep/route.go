package cdep

import (
	"fmt"

	"github.com/psmr/psmr/internal/command"
)

// RouteKind is the compiled admission decision the index-based early
// scheduler applies to a command, following "Early Scheduling in
// Parallel State Machine Replication" (Alchieri et al.): the mapping
// from command classes to worker sets is computed once at compile time,
// so delivering a command costs O(1) instead of a scan over the live
// command set.
type RouteKind int

// Route kinds.
const (
	// RouteKeyed commands serialize only against same-key commands:
	// they are appended to the queue of the worker currently owning
	// their key (per-key conflict index), or of any worker when the key
	// has no live commands.
	RouteKeyed RouteKind = iota + 1
	// RouteFree commands conflict with nothing that is not itself a
	// barrier: they may be appended to any worker's queue.
	RouteFree
	// RouteBarrier commands conflict with commands whose placement
	// cannot be predicted: every worker must rendezvous before they
	// execute, and no later command may start before they finish.
	RouteBarrier
	// RouteMultiKey commands serialize against same-key commands over a
	// key SET: one token is enqueued on every worker owning one of
	// their keys' conflict chains (keys claimed in sorted order — a
	// 2PL-style lock point). The index engine's default discipline is
	// deposit-and-continue: each owner marks its arrival and keeps
	// draining unrelated queued work, and the LAST depositor executes,
	// so unlike RouteBarrier no worker stalls on the token at all;
	// same-key successors wait on the token's completion gates
	// instead. (The parking rendezvous — owners idle until the last
	// arrival, lowest-id owner executes — survives behind sched's
	// Tuning.NoMKHandoff as the ablation baseline.)
	RouteMultiKey
)

func (k RouteKind) String() string {
	switch k {
	case RouteKeyed:
		return "keyed"
	case RouteFree:
		return "free"
	case RouteBarrier:
		return "barrier"
	case RouteMultiKey:
		return "multikey"
	default:
		return fmt.Sprintf("RouteKind(%d)", int(k))
	}
}

// Route is the compiled class-to-worker-set assignment of one command
// type: how the early scheduler routes it and the set of workers an
// invocation may land on.
type Route struct {
	Kind RouteKind
	// Workers is the worker set invocations of the command may be
	// dispatched to. RouteKeyed commands go to the worker owning their
	// key's live conflict chain, else to a placement pin
	// (PlacedWorker), else to the least-loaded member of this set;
	// RouteFree commands go to the least-loaded member; RouteBarrier
	// commands rendezvous every worker and the set's minimum index
	// executes. The set defaults to all workers; WithWorkerSet
	// restricts it per command, and the client-side C-G (Groups)
	// honours the restriction too.
	Workers command.Gamma
	// ReadOnly marks a RouteKeyed or RouteMultiKey command class whose
	// invocations may execute concurrently with each other: the command
	// has no self-dependency in C-Dep AND every same-key conflict
	// partner self-conflicts (is a writer class). The second condition
	// demotes mutually-conflicting "reader" pairs — two commands with a
	// same-key dep but no self-deps — to writers, so the declared
	// conflict still serializes them. Both engines consume this bit:
	// the index engine's per-key reader sets and the scan engine's
	// reader tracking let ReadOnly invocations run concurrently behind
	// the keys' last writers. A read-only RouteMultiKey command latches
	// EVERY key in its set's reader group instead of rendezvousing the
	// owners, so a snapshot read never parks a worker.
	ReadOnly bool
}

// Route returns the early-scheduling assignment of cmd. Unknown
// commands conservatively route as barriers.
func (c *Compiled) Route(cmd command.ID) Route {
	if r, ok := c.routes[cmd]; ok {
		return r
	}
	return Route{Kind: RouteBarrier, Workers: c.all}
}

// PlacedWorker reports the worker a key was explicitly pinned to with
// WithPlacement, if any — the paper's §IV-D load-balancing hint,
// honoured by the early scheduler when the key has no live commands.
func (c *Compiled) PlacedWorker(key uint64) (worker int, ok bool) {
	g, ok := c.placement[key]
	return g, ok
}

// compileRoutes derives the class-to-worker-set table from the
// classification. It runs at Compile time (early scheduling): admission
// never consults the dependency specification again.
func compileRoutes(classes map[command.ID]Class, deps map[pairKey]bool,
	workerSets map[command.ID]command.Gamma, all command.Gamma) map[command.ID]Route {
	selfDep := func(id command.ID) bool {
		_, ok := deps[orderedPair(id, id)]
		return ok
	}
	// A keyed command is read-only when its invocations never conflict
	// with each other (no self-dep) and every same-key partner is a
	// writer (has a self-dep). Without the second condition, two
	// commands declared mutually conflicting but individually
	// non-self-conflicting would land in one reader set and overlap
	// despite the declared dependency.
	readOnly := func(id command.ID) bool {
		if selfDep(id) {
			return false
		}
		for pk, sameKey := range deps {
			if !sameKey {
				continue
			}
			var other command.ID
			switch id {
			case pk.a:
				other = pk.b
			case pk.b:
				other = pk.a
			default:
				continue
			}
			if !selfDep(other) {
				return false
			}
		}
		return true
	}
	routes := make(map[command.ID]Route, len(classes))
	for id, class := range classes {
		set := all
		if ws, ok := workerSets[id]; ok {
			set = ws
		}
		switch class {
		case Global:
			routes[id] = Route{Kind: RouteBarrier, Workers: set}
		case Keyed:
			routes[id] = Route{Kind: RouteKeyed, Workers: set, ReadOnly: readOnly(id)}
		case MultiKeyed:
			// Read-only multi-key commands (snapshot reads over a key
			// set) carry the ReadOnly bit: the engines latch each key's
			// reader set instead of pinning every owner with a rendezvous
			// token. Writers keep the exclusive 2PL-style hold.
			routes[id] = Route{Kind: RouteMultiKey, Workers: set, ReadOnly: readOnly(id)}
		default:
			routes[id] = Route{Kind: RouteFree, Workers: set}
		}
	}
	return routes
}
