// Package cdep implements the command-dependency machinery of P-SMR
// (paper §IV-B/§IV-C): the C-Dep structure a service designer provides,
// and the compiler that derives the Command-to-Groups (C-G) function
// from C-Dep and the multiprogramming level.
//
// C-Dep encodes the paper's two levels of dependency information:
// commands that depend on each other regardless of parameters
// (Dep.SameKey == false, e.g. create/delete of objects) and commands
// that depend on each other only when they touch the same object
// (Dep.SameKey == true, e.g. two updates on the same key). If no entry
// asserts a dependency between two commands, they are independent.
//
// An invocation's accessed objects are declared through extractors.
// The paper's C-G keys each command by a single object (Command.Key);
// this package generalises that to key SETS (Command.KeySet), following
// the class-to-worker-set compilation of "Early Scheduling in Parallel
// State Machine Replication" (Alchieri, Dotti, Pedone) and the
// read/write-set conflict detection of CBASE (Kotla & Dahlin, DSN'04).
// Two same-key-dependent invocations conflict iff their key sets
// intersect, so a command touching {a, b} serializes against commands
// on a and commands on b but runs in parallel with everything else —
// without falling back to synchronous mode.
//
// Compiling C-Dep assigns every command a class:
//
//   - Global — the command conflicts with commands whose group cannot be
//     predicted, so it must be multicast to all groups (synchronous
//     mode). Example: kvstore insert/delete.
//   - Keyed — the command conflicts only with same-key commands; it is
//     multicast to the single group its key maps to. Example: kvstore
//     read/update, NetFS read/write (keyed by path).
//   - MultiKeyed — the command conflicts with same-key commands over a
//     key set; it is multicast to the union of its keys' groups and
//     executes after a rendezvous across the owners of those keys.
//     Example: kvstore transfer {from, to}, NetFS create {path, parent}.
//   - Independent — the command conflicts with nothing (or only with
//     Global commands); it is multicast to one group chosen at random,
//     like get_state in the paper's first C-G example.
//
// The same compiled specification also answers pairwise conflict
// queries, which is what the sP-SMR scheduler uses.
package cdep

import (
	"fmt"
	"sort"

	"github.com/psmr/psmr/internal/command"
)

// KeyFunc extracts the object key a command invocation touches. ok is
// false when the invocation has no key (the command then conflicts as if
// keys differed).
type KeyFunc func(input []byte) (key uint64, ok bool)

// KeySetFunc extracts the set of object keys a command invocation
// touches (a multi-key command's read/write set, à la CBASE). The
// returned slice may be unsorted and contain duplicates; the compiled
// spec canonicalises it. ok is false (or the set empty) when the
// invocation's key set cannot be determined — such invocations fall
// back to synchronous mode, like keyless invocations of keyed commands.
type KeySetFunc func(input []byte) (keys []uint64, ok bool)

// Command declares one command of a service. At most one of Key and
// KeySet may be set; the single-key Key is the adapter for commands
// touching exactly one object (the paper's original C-G keying), KeySet
// declares a multi-key command.
type Command struct {
	ID   command.ID
	Name string
	// Key extracts the accessed object; required for single-key
	// commands involved in SameKey dependencies.
	Key KeyFunc
	// KeySet extracts the accessed object set; declares the command
	// multi-key. Mutually exclusive with Key.
	KeySet KeySetFunc
}

// Dep declares a dependency between command types A and B (order does
// not matter; A may equal B). SameKey limits the dependency to
// invocations touching the same key.
type Dep struct {
	A, B    command.ID
	SameKey bool
}

// Spec is a service's command-dependency specification: the C-Dep of
// paper §IV-B, provided by the service designer alongside the service
// code.
type Spec struct {
	Commands []Command
	Deps     []Dep
}

// Class is the compiled placement class of a command.
type Class int

// Command placement classes.
const (
	// Independent commands go to one random group (parallel mode).
	Independent Class = iota + 1
	// Keyed commands go to the single group their key maps to.
	Keyed
	// Global commands go to every group (synchronous mode).
	Global
	// MultiKeyed commands go to the union of their keys' groups and
	// rendezvous across the owners of those keys.
	MultiKeyed
)

func (c Class) String() string {
	switch c {
	case Independent:
		return "independent"
	case Keyed:
		return "keyed"
	case Global:
		return "global"
	case MultiKeyed:
		return "multikey"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

type pairKey struct{ a, b command.ID }

func orderedPair(a, b command.ID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a: a, b: b}
}

// Compiled is the result of compiling a Spec for a given
// multiprogramming level: the C-G function plus pairwise conflict
// queries.
type Compiled struct {
	k         int
	classes   map[command.ID]Class
	keys      map[command.ID]KeyFunc
	keySets   map[command.ID]KeySetFunc
	deps      map[pairKey]bool // value: SameKey
	placement map[uint64]int
	routes    map[command.ID]Route
	all       command.Gamma
}

// Option configures compilation.
type Option interface {
	apply(*options)
}

type options struct {
	placement  map[uint64]int
	workerSets map[command.ID]command.Gamma
}

type placementOption map[uint64]int

func (p placementOption) apply(o *options) { o.placement = p }

type workerSetOption struct {
	cmd command.ID
	set command.Gamma
}

func (w workerSetOption) apply(o *options) {
	if o.workerSets == nil {
		o.workerSets = make(map[command.ID]command.Gamma)
	}
	o.workerSets[w.cmd] = w.set
}

// WithWorkerSet restricts the workers (equivalently, groups) that
// invocations of cmd may be routed to. The restriction lands in the
// compiled route table (Route.Workers), where both the index engine's
// placement and the client-side C-G function (Groups) honour it: a
// keyed command hashes its key over the restricted set, an independent
// command draws a random member. Commands linked by a same-key
// dependency must share a worker set, otherwise Compile fails (their
// invocations would be routed to disjoint destinations).
func WithWorkerSet(cmd command.ID, workers ...int) Option {
	return workerSetOption{cmd: cmd, set: command.GammaOf(workers...)}
}

// WithPlacement pins specific keys to specific groups, overriding the
// default key-to-group hash. This implements the paper's load-balancing
// hint: "if heavily accessed objects are known in advance, this
// information can be used when computing the C-G function so that such
// objects are assigned to distinct groups" (§IV-D).
func WithPlacement(keyToGroup map[uint64]int) Option {
	return placementOption(keyToGroup)
}

// Compile derives the C-G function for a multiprogramming level of k
// worker threads. It returns an error for inconsistent specifications
// (unknown command in a dep, SameKey dep without a key extractor,
// invalid k or placement).
func Compile(spec Spec, k int, opts ...Option) (*Compiled, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("cdep: multiprogramming level %d outside [1,64]", k)
	}
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	for key, g := range o.placement {
		if g < 0 || g >= k {
			return nil, fmt.Errorf("cdep: placement of key %d to group %d outside [0,%d)", key, g, k)
		}
	}
	for cmd, set := range o.workerSets {
		if set == 0 {
			return nil, fmt.Errorf("cdep: empty worker set for command %d", cmd)
		}
		if ws := set.Workers(); ws[len(ws)-1] >= k {
			return nil, fmt.Errorf("cdep: worker set %v of command %d outside [0,%d)", set, cmd, k)
		}
	}

	known := make(map[command.ID]bool, len(spec.Commands))
	keys := make(map[command.ID]KeyFunc, len(spec.Commands))
	keySets := make(map[command.ID]KeySetFunc)
	for _, c := range spec.Commands {
		if known[c.ID] {
			return nil, fmt.Errorf("cdep: duplicate command id %d (%s)", c.ID, c.Name)
		}
		known[c.ID] = true
		if c.Key != nil && c.KeySet != nil {
			return nil, fmt.Errorf("cdep: command %d (%s) declares both Key and KeySet", c.ID, c.Name)
		}
		if c.Key != nil {
			keys[c.ID] = c.Key
		}
		if c.KeySet != nil {
			keySets[c.ID] = c.KeySet
		}
	}

	for cmd := range o.workerSets {
		if !known[cmd] {
			return nil, fmt.Errorf("cdep: worker set for unknown command %d", cmd)
		}
	}

	setOf := func(cmd command.ID) command.Gamma {
		if ws, ok := o.workerSets[cmd]; ok {
			return ws
		}
		return command.AllWorkers(k)
	}

	deps := make(map[pairKey]bool, len(spec.Deps))
	hasKeyDep := make(map[command.ID]bool)
	for _, d := range spec.Deps {
		if !known[d.A] || !known[d.B] {
			return nil, fmt.Errorf("cdep: dep (%d,%d) references unknown command", d.A, d.B)
		}
		if d.SameKey && setOf(d.A) != setOf(d.B) {
			// Same-key invocations of A and B must hash their shared
			// key to a common destination; divergent sets would break
			// the C-G safety property.
			return nil, fmt.Errorf("cdep: same-key dep (%d,%d) with different worker sets %v and %v",
				d.A, d.B, setOf(d.A), setOf(d.B))
		}
		pk := orderedPair(d.A, d.B)
		if prev, ok := deps[pk]; ok && prev != d.SameKey {
			// A regardless-of-parameters dependency subsumes a same-key
			// one: keep the stronger.
			deps[pk] = false
		} else if !ok {
			deps[pk] = d.SameKey
		}
		if d.SameKey {
			if keys[d.A] == nil && keySets[d.A] == nil {
				return nil, fmt.Errorf("cdep: same-key dep (%d,%d) but command %d has no key extractor", d.A, d.B, d.A)
			}
			if keys[d.B] == nil && keySets[d.B] == nil {
				return nil, fmt.Errorf("cdep: same-key dep (%d,%d) but command %d has no key extractor", d.A, d.B, d.B)
			}
			hasKeyDep[d.A] = true
			hasKeyDep[d.B] = true
		}
	}

	// Classification. A non-SameKey dependency (A,B) requires
	// γ(A) ∩ γ(B) ≠ ∅ on every invocation pair, which we satisfy by
	// promoting one side of every such pair to Global (multicast to all
	// groups). Choosing which commands to promote is the paper's C-G
	// "optimization problem" (§IV-C); we solve it greedily: repeatedly
	// promote the command that participates in the most unsatisfied
	// always-conflict pairs, preferring non-keyed commands (a keyed
	// command's group follows from its key, so keeping it Keyed
	// preserves more concurrency). This reproduces both of the paper's
	// examples: set_state→all/get_state→random, and kvstore
	// insert/delete→all with read/update keyed.
	global := make(map[command.ID]bool)
	pairs := make([]pairKey, 0, len(deps))
	for pk, sameKey := range deps {
		if !sameKey {
			pairs = append(pairs, pk)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for {
		counts := make(map[command.ID]int)
		unsatisfied := 0
		for _, pk := range pairs {
			if global[pk.a] || global[pk.b] {
				continue
			}
			unsatisfied++
			counts[pk.a]++
			if pk.b != pk.a {
				counts[pk.b]++
			}
		}
		if unsatisfied == 0 {
			break
		}
		var (
			best      command.ID
			bestCount = -1
		)
		for _, c := range spec.Commands {
			n, ok := counts[c.ID]
			if !ok {
				continue
			}
			// Prefer higher coverage, then non-keyed, then lower id
			// (deterministic).
			better := n > bestCount ||
				(n == bestCount && hasKeyDep[best] && !hasKeyDep[c.ID])
			if better {
				best, bestCount = c.ID, n
			}
		}
		global[best] = true
	}

	classes := make(map[command.ID]Class, len(spec.Commands))
	for _, c := range spec.Commands {
		switch {
		case global[c.ID]:
			classes[c.ID] = Global
		case hasKeyDep[c.ID] && keySets[c.ID] != nil:
			classes[c.ID] = MultiKeyed
		case hasKeyDep[c.ID]:
			classes[c.ID] = Keyed
		default:
			classes[c.ID] = Independent
		}
	}

	// A placement pin routes every keyed invocation of its key to the
	// pinned group, so it must stay inside every keyed (and multi-key)
	// command's worker set — otherwise the pin would silently defeat the
	// WithWorkerSet restriction.
	for cmd, set := range o.workerSets {
		if classes[cmd] != Keyed && classes[cmd] != MultiKeyed {
			continue
		}
		for key, g := range o.placement {
			if !set.Has(g) {
				return nil, fmt.Errorf("cdep: placement of key %d to group %d outside command %d's worker set %v",
					key, g, cmd, set)
			}
		}
	}

	all := command.AllWorkers(k)
	return &Compiled{
		k:         k,
		classes:   classes,
		keys:      keys,
		keySets:   keySets,
		deps:      deps,
		placement: o.placement,
		routes:    compileRoutes(classes, deps, o.workerSets, all),
		all:       all,
	}, nil
}

// K returns the multiprogramming level the spec was compiled for.
func (c *Compiled) K() int { return c.k }

// Class returns the placement class of a command (0 for unknown ids).
func (c *Compiled) Class(cmd command.ID) Class { return c.classes[cmd] }

// GroupOfKey returns the group a key maps to, honouring placements.
func (c *Compiled) GroupOfKey(key uint64) int {
	if g, ok := c.placement[key]; ok {
		return g
	}
	return int(key % uint64(c.k))
}

// Groups is the C-G function (paper §IV-C): it maps a command invocation
// to its destination group set. It is driven by the compiled route
// table, so a WithWorkerSet restriction steers the client-side group
// choice exactly like it steers the index engine's placement: keyed
// commands hash their key over the route's worker set (a placement pin
// still wins), independent commands draw a random member of it. randN
// supplies randomness for Independent commands (called as randN(n)
// with n the size of the command's worker set); pass nil to pin them
// to the set's lowest member (useful for deterministic tests).
func (c *Compiled) Groups(cmd command.ID, input []byte, randN func(n int) int) command.Gamma {
	r, ok := c.routes[cmd]
	if !ok {
		// Unknown command: be safe, serialize.
		return c.all
	}
	switch r.Kind {
	case RouteKeyed:
		key, ok := c.keys[cmd](input)
		if !ok {
			// No key: the invocation potentially touches any object;
			// fall back to synchronous mode.
			return c.all
		}
		if g, ok := c.placement[key]; ok {
			return command.GammaOf(g)
		}
		return command.GammaOf(r.Workers.Member(key))
	case RouteMultiKey:
		keys, ok := c.KeySet(cmd, input)
		if !ok {
			// Undeterminable key set: synchronous mode.
			return c.all
		}
		// Union of the keys' groups: the multi-key γ. Each key maps
		// exactly where its single-key conflicts map (placement pin or
		// hash over the shared worker set), so every same-key dependent
		// invocation shares a group with this one.
		var gamma command.Gamma
		for _, key := range keys {
			if g, ok := c.placement[key]; ok {
				gamma |= command.GammaOf(g)
				continue
			}
			gamma |= command.GammaOf(r.Workers.Member(key))
		}
		return gamma
	case RouteFree:
		if randN == nil {
			return command.GammaOf(r.Workers.Min())
		}
		return command.GammaOf(r.Workers.Member(uint64(randN(r.Workers.Count()))))
	default:
		// Barrier: synchronous mode, every group.
		return c.all
	}
}

// Conflicts reports whether two concrete invocations depend on each
// other: they share a C-Dep entry, and — for same-key entries — their
// key sets intersect (single-key commands contribute singleton sets).
// This is the query the sP-SMR scheduler runs for every delivered
// command.
func (c *Compiled) Conflicts(cmdA command.ID, inputA []byte, cmdB command.ID, inputB []byte) bool {
	sameKey, ok := c.deps[orderedPair(cmdA, cmdB)]
	if !ok {
		return false
	}
	if !sameKey {
		return true
	}
	if c.keySets[cmdA] == nil && c.keySets[cmdB] == nil {
		// Single-key fast path: no set allocation on the per-command
		// hot paths (e.g. the lockstore's per-request conflict scan).
		keyA, okA := c.keys[cmdA](inputA)
		keyB, okB := c.keys[cmdB](inputB)
		if !okA || !okB {
			return true // keyless: conservatively conflicting
		}
		return keyA == keyB
	}
	keysA, okA := c.KeySet(cmdA, inputA)
	keysB, okB := c.KeySet(cmdB, inputB)
	if !okA || !okB {
		// Keyless invocation of a keyed command: conservatively
		// conflicting.
		return true
	}
	// Both sets are sorted: linear intersection.
	i, j := 0, 0
	for i < len(keysA) && j < len(keysB) {
		switch {
		case keysA[i] == keysB[j]:
			return true
		case keysA[i] < keysB[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// GlobalConflict reports whether cmd conflicts with every command
// regardless of parameters (compiled class Global).
func (c *Compiled) GlobalConflict(cmd command.ID) bool {
	return c.classes[cmd] == Global
}

// Dep reports whether command types a and b carry a C-Dep entry, and
// whether that entry is same-key. Callers that cache canonical key
// sets (the optimistic reconciler checks one command against a whole
// speculation window) combine it with their cached sets instead of
// paying Conflicts' per-call key extraction.
func (c *Compiled) Dep(a, b command.ID) (dep, sameKey bool) {
	sameKey, dep = c.deps[orderedPair(a, b)]
	return dep, sameKey
}

// Key extracts the object key of an invocation using the command's key
// extractor. ok is false when the command has no extractor or the
// invocation carries no key.
func (c *Compiled) Key(cmd command.ID, input []byte) (key uint64, ok bool) {
	kf := c.keys[cmd]
	if kf == nil {
		return 0, false
	}
	return kf(input)
}

// KeySet extracts the canonical (sorted, deduplicated) key set of an
// invocation: the multi-key extractor's output for MultiKeyed commands,
// a singleton for single-key commands. ok is false when the command has
// no extractor of either kind or the invocation's keys cannot be
// determined — callers must then serialize the invocation (synchronous
// mode). The schedulers rely on the canonical order: the index engine
// enqueues a multi-key command on its owners in sorted-key order, so
// every replica visits shards identically.
func (c *Compiled) KeySet(cmd command.ID, input []byte) ([]uint64, bool) {
	return c.AppendKeySet(nil, cmd, input)
}

// AppendKeySet is KeySet into a caller-owned buffer: it appends the
// canonical (sorted, deduplicated) key set of the invocation to dst and
// returns the extended slice, allocating only when dst lacks capacity.
// This is the index engine's admission-path variant — tokens carry
// small inline key buffers, so steady-state multi-key admission reuses
// them instead of paying KeySet's per-call copy. On ok == false dst is
// returned unchanged (len(dst) is restored even if the extractor ran).
func (c *Compiled) AppendKeySet(dst []uint64, cmd command.ID, input []byte) ([]uint64, bool) {
	base := len(dst)
	if ksf := c.keySets[cmd]; ksf != nil {
		keys, ok := ksf(input)
		if !ok || len(keys) == 0 {
			return dst[:base], false
		}
		dst = append(dst, keys...)
		out := dst[base:]
		// Insertion sort + in-place dedup: key sets are small (2-4
		// keys), so this beats sort.Slice without its closure overhead.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		w := 1
		for i := 1; i < len(out); i++ {
			if out[i] != out[w-1] {
				out[w] = out[i]
				w++
			}
		}
		return dst[:base+w], true
	}
	if kf := c.keys[cmd]; kf != nil {
		key, ok := kf(input)
		if !ok {
			return dst[:base], false
		}
		return append(dst, key), true
	}
	return dst[:base], false
}
