package cdep

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/command"
)

// Test command ids mirroring the paper's key-value store (§V-A).
const (
	cmdInsert command.ID = iota + 1
	cmdDelete
	cmdRead
	cmdUpdate
)

func keyFromInput(input []byte) (uint64, bool) {
	if len(input) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(input), true
}

// kvSpec is the paper's §V-A dependency structure: inserts and deletes
// depend on all commands; an update on key k depends on updates and
// reads on k (and on inserts and deletes, already covered).
func kvSpec() Spec {
	return Spec{
		Commands: []Command{
			{ID: cmdInsert, Name: "insert", Key: keyFromInput},
			{ID: cmdDelete, Name: "delete", Key: keyFromInput},
			{ID: cmdRead, Name: "read", Key: keyFromInput},
			{ID: cmdUpdate, Name: "update", Key: keyFromInput},
		},
		Deps: []Dep{
			{A: cmdInsert, B: cmdInsert}, {A: cmdInsert, B: cmdDelete},
			{A: cmdInsert, B: cmdRead}, {A: cmdInsert, B: cmdUpdate},
			{A: cmdDelete, B: cmdDelete}, {A: cmdDelete, B: cmdRead},
			{A: cmdDelete, B: cmdUpdate},
			{A: cmdUpdate, B: cmdUpdate, SameKey: true},
			{A: cmdUpdate, B: cmdRead, SameKey: true},
		},
	}
}

func keyInput(k uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, k)
}

func TestCompileKVClasses(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tests := []struct {
		cmd  command.ID
		want Class
	}{
		{cmd: cmdInsert, want: Global},
		{cmd: cmdDelete, want: Global},
		{cmd: cmdRead, want: Keyed},
		{cmd: cmdUpdate, want: Keyed},
	}
	for _, tt := range tests {
		if got := c.Class(tt.cmd); got != tt.want {
			t.Errorf("Class(%d) = %v, want %v", tt.cmd, got, tt.want)
		}
	}
}

func TestKVGroups(t *testing.T) {
	const k = 8
	c, err := Compile(kvSpec(), k)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Inserts go everywhere.
	if got := c.Groups(cmdInsert, keyInput(5), nil); got != command.AllWorkers(k) {
		t.Fatalf("insert γ = %v", got)
	}
	// Updates/reads on the same key share a singleton group.
	for key := uint64(0); key < 100; key++ {
		gu := c.Groups(cmdUpdate, keyInput(key), nil)
		gr := c.Groups(cmdRead, keyInput(key), nil)
		if gu != gr {
			t.Fatalf("key %d: update γ=%v read γ=%v", key, gu, gr)
		}
		if gu.Count() != 1 {
			t.Fatalf("key %d: γ=%v not singleton", key, gu)
		}
		if want := int(key % k); gu.Min() != want {
			t.Fatalf("key %d: group %d, want %d", key, gu.Min(), want)
		}
	}
}

// The paper's first C-G example: a coarse C-Dep where set_state depends
// on everything; get_state then goes to a random group, set_state to all
// groups.
func TestCoarseGetSetSpec(t *testing.T) {
	const (
		cmdGet command.ID = 1
		cmdSet command.ID = 2
	)
	spec := Spec{
		Commands: []Command{{ID: cmdGet, Name: "get_state"}, {ID: cmdSet, Name: "set_state"}},
		Deps: []Dep{
			{A: cmdSet, B: cmdSet},
			{A: cmdSet, B: cmdGet},
		},
	}
	const k = 4
	c, err := Compile(spec, k)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Class(cmdSet); got != Global {
		t.Fatalf("set class = %v, want Global", got)
	}
	if got := c.Class(cmdGet); got != Independent {
		t.Fatalf("get class = %v, want Independent", got)
	}
	rng := rand.New(rand.NewSource(1))
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		g := c.Groups(cmdGet, nil, rng.Intn)
		if g.Count() != 1 {
			t.Fatalf("get γ=%v not singleton", g)
		}
		seen[g.Min()] = true
	}
	if len(seen) != k {
		t.Fatalf("random gets hit %d of %d groups", len(seen), k)
	}
}

func TestPlacementOverride(t *testing.T) {
	const k = 4
	hot := map[uint64]int{100: 3, 101: 2}
	c, err := Compile(kvSpec(), k, WithPlacement(hot))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if g := c.Groups(cmdUpdate, keyInput(100), nil); g.Min() != 3 {
		t.Fatalf("key 100 → group %d, want 3", g.Min())
	}
	if g := c.Groups(cmdUpdate, keyInput(101), nil); g.Min() != 2 {
		t.Fatalf("key 101 → group %d, want 2", g.Min())
	}
	// Unplaced keys keep the modulo mapping.
	if g := c.Groups(cmdUpdate, keyInput(6), nil); g.Min() != 2 {
		t.Fatalf("key 6 → group %d, want 2", g.Min())
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := Compile(kvSpec(), 4, WithPlacement(map[uint64]int{1: 4})); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
	if _, err := Compile(kvSpec(), 4, WithPlacement(map[uint64]int{1: -1})); err == nil {
		t.Fatal("negative placement accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		k    int
	}{
		{
			name: "bad k low",
			spec: kvSpec(),
			k:    0,
		},
		{
			name: "bad k high",
			spec: kvSpec(),
			k:    65,
		},
		{
			name: "unknown dep command",
			spec: Spec{
				Commands: []Command{{ID: 1, Name: "a"}},
				Deps:     []Dep{{A: 1, B: 99}},
			},
			k: 2,
		},
		{
			name: "samekey without extractor",
			spec: Spec{
				Commands: []Command{{ID: 1, Name: "a"}, {ID: 2, Name: "b"}},
				Deps:     []Dep{{A: 1, B: 2, SameKey: true}},
			},
			k: 2,
		},
		{
			name: "duplicate command id",
			spec: Spec{
				Commands: []Command{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}},
			},
			k: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Compile(tt.spec, tt.k); err == nil {
				t.Fatal("Compile succeeded, want error")
			}
		})
	}
}

func TestConflicts(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	tests := []struct {
		name           string
		cmdA           command.ID
		keyA           uint64
		cmdB           command.ID
		keyB           uint64
		wantConflict   bool
		wantRegardless bool // conflict even with different keys
	}{
		{name: "insert vs read", cmdA: cmdInsert, keyA: 1, cmdB: cmdRead, keyB: 2, wantConflict: true, wantRegardless: true},
		{name: "insert vs insert", cmdA: cmdInsert, keyA: 1, cmdB: cmdInsert, keyB: 9, wantConflict: true, wantRegardless: true},
		{name: "update same key", cmdA: cmdUpdate, keyA: 7, cmdB: cmdUpdate, keyB: 7, wantConflict: true},
		{name: "update diff key", cmdA: cmdUpdate, keyA: 7, cmdB: cmdUpdate, keyB: 8, wantConflict: false},
		{name: "read vs update same key", cmdA: cmdRead, keyA: 3, cmdB: cmdUpdate, keyB: 3, wantConflict: true},
		{name: "read vs update diff key", cmdA: cmdRead, keyA: 3, cmdB: cmdUpdate, keyB: 4, wantConflict: false},
		{name: "read vs read same key", cmdA: cmdRead, keyA: 3, cmdB: cmdRead, keyB: 3, wantConflict: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := c.Conflicts(tt.cmdA, keyInput(tt.keyA), tt.cmdB, keyInput(tt.keyB))
			if got != tt.wantConflict {
				t.Fatalf("Conflicts = %v, want %v", got, tt.wantConflict)
			}
			// Symmetry.
			if rev := c.Conflicts(tt.cmdB, keyInput(tt.keyB), tt.cmdA, keyInput(tt.keyA)); rev != got {
				t.Fatalf("Conflicts not symmetric: %v vs %v", got, rev)
			}
		})
	}
}

func TestGlobalConflict(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !c.GlobalConflict(cmdInsert) || !c.GlobalConflict(cmdDelete) {
		t.Fatal("insert/delete should be global")
	}
	if c.GlobalConflict(cmdRead) || c.GlobalConflict(cmdUpdate) {
		t.Fatal("read/update should not be global")
	}
}

// Core safety property of the C-G function (paper §IV-C): any two
// dependent invocations are assigned at least one common group. Checked
// over random invocation pairs for several multiprogramming levels.
func TestDependentCommandsShareGroup(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 16} {
		c, err := Compile(kvSpec(), k)
		if err != nil {
			t.Fatalf("Compile k=%d: %v", k, err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		cmds := []command.ID{cmdInsert, cmdDelete, cmdRead, cmdUpdate}
		for i := 0; i < 2000; i++ {
			ca := cmds[rng.Intn(len(cmds))]
			cb := cmds[rng.Intn(len(cmds))]
			ia := keyInput(uint64(rng.Intn(50)))
			ib := keyInput(uint64(rng.Intn(50)))
			if !c.Conflicts(ca, ia, cb, ib) {
				continue
			}
			ga := c.Groups(ca, ia, rng.Intn)
			gb := c.Groups(cb, ib, rng.Intn)
			if ga&gb == 0 {
				t.Fatalf("k=%d: dependent (%d,%x) γ=%v and (%d,%x) γ=%v share no group",
					k, ca, ia, ga, cb, ib, gb)
			}
		}
	}
}

func TestKeyedVsKeyedRegardlessDep(t *testing.T) {
	// Two keyed commands that also conflict regardless of key must not
	// both stay keyed (their groups would diverge); the compiler
	// promotes them.
	spec := Spec{
		Commands: []Command{
			{ID: 1, Name: "a", Key: keyFromInput},
			{ID: 2, Name: "b", Key: keyFromInput},
		},
		Deps: []Dep{
			{A: 1, B: 1, SameKey: true},
			{A: 2, B: 2, SameKey: true},
			{A: 1, B: 2}, // always conflict
		},
	}
	c, err := Compile(spec, 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ia := keyInput(uint64(rng.Intn(100)))
		ib := keyInput(uint64(rng.Intn(100)))
		ga := c.Groups(1, ia, rng.Intn)
		gb := c.Groups(2, ib, rng.Intn)
		if ga&gb == 0 {
			t.Fatalf("always-conflicting pair got disjoint groups %v, %v", ga, gb)
		}
	}
}

func TestKeylessInvocationOfKeyedCommand(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// A malformed (short) input has no key: the command must fall back
	// to synchronous mode, and conflict conservatively.
	if g := c.Groups(cmdUpdate, []byte{1}, nil); g != command.AllWorkers(8) {
		t.Fatalf("keyless update γ = %v, want all", g)
	}
	if !c.Conflicts(cmdUpdate, []byte{1}, cmdUpdate, keyInput(9)) {
		t.Fatal("keyless update should conflict conservatively")
	}
}

func TestUnknownCommandIsSerialized(t *testing.T) {
	c, err := Compile(kvSpec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if g := c.Groups(99, nil, nil); g != command.AllWorkers(8) {
		t.Fatalf("unknown command γ = %v, want all", g)
	}
}

func TestDepSubsumption(t *testing.T) {
	// A regardless-of-parameters dep subsumes a same-key dep on the
	// same pair.
	spec := kvSpec()
	spec.Deps = append(spec.Deps, Dep{A: cmdUpdate, B: cmdRead}) // now regardless
	c, err := Compile(spec, 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !c.Conflicts(cmdUpdate, keyInput(1), cmdRead, keyInput(2)) {
		t.Fatal("subsumed dep should conflict regardless of key")
	}
}

func TestClassString(t *testing.T) {
	if Independent.String() != "independent" || Keyed.String() != "keyed" || Global.String() != "global" {
		t.Fatal("Class.String mismatch")
	}
	if Class(0).String() != "Class(0)" {
		t.Fatalf("zero class = %s", Class(0))
	}
}
