package netfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/lz4"
)

const t0 = int64(1_700_000_000_000_000_000)

func TestFSMkdirCreateWriteRead(t *testing.T) {
	fs := NewFS()
	if errno := fs.Mkdir("/docs", 0o755, t0); errno != OK {
		t.Fatalf("mkdir: %v", errno)
	}
	fd, errno := fs.Create("/docs/a.txt", 0o644, t0)
	if errno != OK {
		t.Fatalf("create: %v", errno)
	}
	n, errno := fs.Write(fd, 0, []byte("hello"), t0)
	if errno != OK || n != 5 {
		t.Fatalf("write: %v %d", errno, n)
	}
	data, errno := fs.Read(fd, 0, 100)
	if errno != OK || string(data) != "hello" {
		t.Fatalf("read: %v %q", errno, data)
	}
	// Partial read at offset.
	data, _ = fs.Read(fd, 1, 3)
	if string(data) != "ell" {
		t.Fatalf("offset read: %q", data)
	}
	// Read past EOF is empty.
	data, errno = fs.Read(fd, 100, 10)
	if errno != OK || len(data) != 0 {
		t.Fatalf("past-eof read: %v %q", errno, data)
	}
	if errno := fs.Release(fd); errno != OK {
		t.Fatalf("release: %v", errno)
	}
	if fs.OpenFDs() != 0 {
		t.Fatalf("open fds = %d", fs.OpenFDs())
	}
}

func TestFSWriteGrowsWithZeroFill(t *testing.T) {
	fs := NewFS()
	fd, _ := fs.Create("/f", 0o644, t0)
	if _, errno := fs.Write(fd, 4, []byte("tail"), t0); errno != OK {
		t.Fatalf("write: %v", errno)
	}
	data, _ := fs.Read(fd, 0, 100)
	want := append([]byte{0, 0, 0, 0}, []byte("tail")...)
	if !bytes.Equal(data, want) {
		t.Fatalf("data = %q", data)
	}
	st, _ := fs.Lstat("/f")
	if st.Size != 8 {
		t.Fatalf("size = %d", st.Size)
	}
}

func TestFSErrors(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mknod("/f", 0o644, t0)

	tests := []struct {
		name string
		got  Errno
		want Errno
	}{
		{name: "mkdir exists", got: fs.Mkdir("/d", 0o755, t0), want: ErrExist},
		{name: "mknod exists", got: fs.Mknod("/f", 0o644, t0), want: ErrExist},
		{name: "mkdir under file", got: fs.Mkdir("/f/x", 0o755, t0), want: ErrNotDir},
		{name: "unlink missing", got: fs.Unlink("/nope", t0), want: ErrNoEnt},
		{name: "unlink dir", got: fs.Unlink("/d", t0), want: ErrIsDir},
		{name: "rmdir file", got: fs.Rmdir("/f", t0), want: ErrNotDir},
		{name: "rmdir missing", got: fs.Rmdir("/nope", t0), want: ErrNoEnt},
		{name: "access missing", got: fs.Access("/nope"), want: ErrNoEnt},
		{name: "utimens missing", got: fs.Utimens("/nope", t0, t0), want: ErrNoEnt},
		{name: "release bad fd", got: fs.Release(99), want: ErrBadFd},
		{name: "releasedir bad fd", got: fs.Releasedir(99), want: ErrBadFd},
		{name: "bad path", got: fs.Access("relative"), want: ErrInval},
		{name: "dotdot path", got: fs.Access("/a/../b"), want: ErrInval},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s: got %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestFSRmdirNotEmpty(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mknod("/d/f", 0o644, t0)
	if errno := fs.Rmdir("/d", t0); errno != ErrNotEmpty {
		t.Fatalf("rmdir: %v", errno)
	}
	fs.Unlink("/d/f", t0)
	if errno := fs.Rmdir("/d", t0); errno != OK {
		t.Fatalf("rmdir after empty: %v", errno)
	}
}

func TestFSOpenDirAndFile(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mknod("/f", 0o644, t0)
	if _, errno := fs.Open("/d"); errno != ErrIsDir {
		t.Fatalf("open dir: %v", errno)
	}
	if _, errno := fs.Opendir("/f"); errno != ErrNotDir {
		t.Fatalf("opendir file: %v", errno)
	}
	fd, errno := fs.Opendir("/d")
	if errno != OK {
		t.Fatalf("opendir: %v", errno)
	}
	if errno := fs.Release(fd); errno != OK { // release works on any fd
		t.Fatalf("release dir fd: %v", errno)
	}
}

func TestFSReaddirSorted(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		fs.Mknod("/d/"+name, 0o644, t0)
	}
	names, errno := fs.Readdir("/d")
	if errno != OK {
		t.Fatalf("readdir: %v", errno)
	}
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestFSUnlinkReclaimsInode(t *testing.T) {
	fs := NewFS()
	before := fs.Inodes()
	fs.Mknod("/f", 0o644, t0)
	if fs.Inodes() != before+1 {
		t.Fatalf("inodes = %d", fs.Inodes())
	}
	fs.Unlink("/f", t0)
	if fs.Inodes() != before {
		t.Fatalf("inodes after unlink = %d", fs.Inodes())
	}
}

func TestFSLstat(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	st, errno := fs.Lstat("/d")
	if errno != OK || st.Mode&ModeDir == 0 {
		t.Fatalf("lstat dir: %v %+v", errno, st)
	}
	if st.Mtime != t0 {
		t.Fatalf("mtime = %d", st.Mtime)
	}
	fs.Utimens("/d", t0+1, t0+2)
	st, _ = fs.Lstat("/d")
	if st.Atime != t0+1 || st.Mtime != t0+2 {
		t.Fatalf("times = %d %d", st.Atime, st.Mtime)
	}
}

// Two FS instances fed the same operation sequence converge to the
// same state — the determinism replicas rely on, fd numbering
// included.
func TestFSDeterminism(t *testing.T) {
	run := func() (*FS, []uint64) {
		fs := NewFS()
		var fds []uint64
		fs.Mkdir("/a", 0o755, t0)
		fs.Mkdir("/b", 0o755, t0)
		for i := 0; i < 10; i++ {
			fd, _ := fs.Create(fmt.Sprintf("/a/f%d", i), 0o644, t0+int64(i))
			fds = append(fds, fd)
			fs.Write(fd, 0, []byte(fmt.Sprintf("content %d", i)), t0)
		}
		fs.Unlink("/a/f3", t0)
		fs.Rmdir("/b", t0)
		return fs, fds
	}
	fs1, fds1 := run()
	fs2, fds2 := run()
	if fs1.Inodes() != fs2.Inodes() || fs1.OpenFDs() != fs2.OpenFDs() {
		t.Fatal("fs state diverged")
	}
	for i := range fds1 {
		if fds1[i] != fds2[i] {
			t.Fatalf("fd allocation diverged: %v vs %v", fds1, fds2)
		}
	}
}

func TestServiceWireRoundTrip(t *testing.T) {
	svc := NewService()
	mk := svc.Execute(CmdMkdir, EncodeInput("/dir", encodeModeTime(0o755, t0)))
	raw, err := lz4.Unpack(mk)
	if err != nil || Errno(raw[0]) != OK {
		t.Fatalf("mkdir via wire: %v %v", err, raw)
	}
	// Malformed input yields EINVAL, packed.
	out := svc.Execute(CmdMkdir, []byte{1})
	raw, err = lz4.Unpack(out)
	if err != nil || Errno(raw[0]) != ErrInval {
		t.Fatalf("malformed: %v %v", err, raw)
	}
	// Unknown command.
	out = svc.Execute(200, EncodeInput("/x", nil))
	raw, _ = lz4.Unpack(out)
	if Errno(raw[0]) != ErrInval {
		t.Fatalf("unknown cmd: %v", raw)
	}
}

func TestKeyOfSamePathSameKey(t *testing.T) {
	a := EncodeInput("/same/path", []byte("args-a"))
	b := EncodeInput("/same/path", bytes.Repeat([]byte("other"), 100))
	ka, oka := KeyOf(a)
	kb, okb := KeyOf(b)
	if !oka || !okb || ka != kb {
		t.Fatalf("keys differ: %v/%v %v/%v", ka, oka, kb, okb)
	}
	kc, _ := KeyOf(EncodeInput("/other/path", nil))
	if kc == ka {
		t.Fatal("different paths hash equal (unlucky collision?)")
	}
	if _, ok := KeyOf([]byte{9}); ok {
		t.Fatal("short input produced a key")
	}
}

func TestSpecClasses(t *testing.T) {
	compiled, err := cdep.Compile(Spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	structural := []command.ID{
		CmdCreate, CmdMknod, CmdMkdir, CmdUnlink, CmdRmdir,
		CmdOpen, CmdUtimens, CmdRelease, CmdOpendir, CmdReleasedir,
	}
	for _, id := range structural {
		if compiled.Class(id) != cdep.Global {
			t.Errorf("cmd %d class = %v, want Global", id, compiled.Class(id))
		}
	}
	for _, id := range []command.ID{CmdAccess, CmdLstat, CmdRead, CmdWrite, CmdReaddir} {
		if compiled.Class(id) != cdep.Keyed {
			t.Errorf("cmd %d class = %v, want Keyed", id, compiled.Class(id))
		}
	}
	// Same path → same singleton group; different paths usually differ.
	ga := compiled.Groups(CmdRead, EncodeInput("/p1", nil), nil)
	gb := compiled.Groups(CmdWrite, EncodeInput("/p1", nil), nil)
	if ga != gb || ga.Count() != 1 {
		t.Fatalf("same-path groups: %v vs %v", ga, gb)
	}
}

// Random workload through the Service wire and a direct FS must agree.
func TestServiceMatchesDirectFS(t *testing.T) {
	svc := NewService()
	ref := NewFS()
	rng := rand.New(rand.NewSource(11))

	dirs := []string{"/d0", "/d1", "/d2"}
	for _, d := range dirs {
		svc.Execute(CmdMkdir, EncodeInput(d, encodeModeTime(0o755, t0)))
		ref.Mkdir(d, 0o755, t0)
	}
	var paths []string
	for i := 0; i < 40; i++ {
		paths = append(paths, fmt.Sprintf("%s/f%d", dirs[rng.Intn(len(dirs))], i))
	}
	for _, p := range paths {
		svc.Execute(CmdMknod, EncodeInput(p, encodeModeTime(0o644, t0)))
		ref.Mknod(p, 0o644, t0)
	}
	// Spot-check stats through the wire.
	for _, p := range paths[:10] {
		out := svc.Execute(CmdLstat, EncodeInput(p, nil))
		raw, err := lz4.Unpack(out)
		if err != nil || Errno(raw[0]) != OK {
			t.Fatalf("lstat %s: %v %v", p, err, raw)
		}
		if _, errno := ref.Lstat(p); errno != OK {
			t.Fatalf("ref lstat %s: %v", p, errno)
		}
	}
	if svc.FS().Inodes() != ref.Inodes() {
		t.Fatalf("inode count %d vs %d", svc.FS().Inodes(), ref.Inodes())
	}
}
