package netfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/lz4"
	"github.com/psmr/psmr/internal/mvstore"
)

const t0 = int64(1_700_000_000_000_000_000)

func TestFSMkdirCreateWriteRead(t *testing.T) {
	fs := NewFS()
	if errno := fs.Mkdir("/docs", 0o755, t0); errno != OK {
		t.Fatalf("mkdir: %v", errno)
	}
	fd, errno := fs.Create("/docs/a.txt", 0o644, t0)
	if errno != OK {
		t.Fatalf("create: %v", errno)
	}
	n, errno := fs.Write(fd, 0, []byte("hello"), t0)
	if errno != OK || n != 5 {
		t.Fatalf("write: %v %d", errno, n)
	}
	data, errno := fs.Read(fd, 0, 100)
	if errno != OK || string(data) != "hello" {
		t.Fatalf("read: %v %q", errno, data)
	}
	// Partial read at offset.
	data, _ = fs.Read(fd, 1, 3)
	if string(data) != "ell" {
		t.Fatalf("offset read: %q", data)
	}
	// Read past EOF is empty.
	data, errno = fs.Read(fd, 100, 10)
	if errno != OK || len(data) != 0 {
		t.Fatalf("past-eof read: %v %q", errno, data)
	}
	if errno := fs.Release(fd); errno != OK {
		t.Fatalf("release: %v", errno)
	}
	if fs.OpenFDs() != 0 {
		t.Fatalf("open fds = %d", fs.OpenFDs())
	}
}

func TestFSWriteGrowsWithZeroFill(t *testing.T) {
	fs := NewFS()
	fd, _ := fs.Create("/f", 0o644, t0)
	if _, errno := fs.Write(fd, 4, []byte("tail"), t0); errno != OK {
		t.Fatalf("write: %v", errno)
	}
	data, _ := fs.Read(fd, 0, 100)
	want := append([]byte{0, 0, 0, 0}, []byte("tail")...)
	if !bytes.Equal(data, want) {
		t.Fatalf("data = %q", data)
	}
	st, _ := fs.Lstat("/f")
	if st.Size != 8 {
		t.Fatalf("size = %d", st.Size)
	}
}

func TestFSErrors(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mknod("/f", 0o644, t0)

	tests := []struct {
		name string
		got  Errno
		want Errno
	}{
		{name: "mkdir exists", got: fs.Mkdir("/d", 0o755, t0), want: ErrExist},
		{name: "mknod exists", got: fs.Mknod("/f", 0o644, t0), want: ErrExist},
		{name: "mkdir under file", got: fs.Mkdir("/f/x", 0o755, t0), want: ErrNotDir},
		{name: "unlink missing", got: fs.Unlink("/nope", t0), want: ErrNoEnt},
		{name: "unlink dir", got: fs.Unlink("/d", t0), want: ErrIsDir},
		{name: "rmdir file", got: fs.Rmdir("/f", t0), want: ErrNotDir},
		{name: "rmdir missing", got: fs.Rmdir("/nope", t0), want: ErrNoEnt},
		{name: "access missing", got: fs.Access("/nope"), want: ErrNoEnt},
		{name: "utimens missing", got: fs.Utimens("/nope", t0, t0), want: ErrNoEnt},
		{name: "release bad fd", got: fs.Release(99), want: ErrBadFd},
		{name: "releasedir bad fd", got: fs.Releasedir(99), want: ErrBadFd},
		{name: "bad path", got: fs.Access("relative"), want: ErrInval},
		{name: "dotdot path", got: fs.Access("/a/../b"), want: ErrInval},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s: got %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestFSRmdirNotEmpty(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mknod("/d/f", 0o644, t0)
	if errno := fs.Rmdir("/d", t0); errno != ErrNotEmpty {
		t.Fatalf("rmdir: %v", errno)
	}
	fs.Unlink("/d/f", t0)
	if errno := fs.Rmdir("/d", t0); errno != OK {
		t.Fatalf("rmdir after empty: %v", errno)
	}
}

func TestFSOpenDirAndFile(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mknod("/f", 0o644, t0)
	if _, errno := fs.Open("/d"); errno != ErrIsDir {
		t.Fatalf("open dir: %v", errno)
	}
	if _, errno := fs.Opendir("/f"); errno != ErrNotDir {
		t.Fatalf("opendir file: %v", errno)
	}
	fd, errno := fs.Opendir("/d")
	if errno != OK {
		t.Fatalf("opendir: %v", errno)
	}
	if errno := fs.Release(fd); errno != OK { // release works on any fd
		t.Fatalf("release dir fd: %v", errno)
	}
}

func TestFSReaddirSorted(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		fs.Mknod("/d/"+name, 0o644, t0)
	}
	names, errno := fs.Readdir("/d")
	if errno != OK {
		t.Fatalf("readdir: %v", errno)
	}
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestFSUnlinkReclaimsInode(t *testing.T) {
	fs := NewFS()
	before := fs.Inodes()
	fs.Mknod("/f", 0o644, t0)
	if fs.Inodes() != before+1 {
		t.Fatalf("inodes = %d", fs.Inodes())
	}
	fs.Unlink("/f", t0)
	if fs.Inodes() != before {
		t.Fatalf("inodes after unlink = %d", fs.Inodes())
	}
}

func TestFSLstat(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	st, errno := fs.Lstat("/d")
	if errno != OK || st.Mode&ModeDir == 0 {
		t.Fatalf("lstat dir: %v %+v", errno, st)
	}
	if st.Mtime != t0 {
		t.Fatalf("mtime = %d", st.Mtime)
	}
	fs.Utimens("/d", t0+1, t0+2)
	st, _ = fs.Lstat("/d")
	if st.Atime != t0+1 || st.Mtime != t0+2 {
		t.Fatalf("times = %d %d", st.Atime, st.Mtime)
	}
}

// Two FS instances fed the same operation sequence converge to the
// same state — the determinism replicas rely on, fd numbering
// included.
func TestFSDeterminism(t *testing.T) {
	run := func() (*FS, []uint64) {
		fs := NewFS()
		var fds []uint64
		fs.Mkdir("/a", 0o755, t0)
		fs.Mkdir("/b", 0o755, t0)
		for i := 0; i < 10; i++ {
			fd, _ := fs.Create(fmt.Sprintf("/a/f%d", i), 0o644, t0+int64(i))
			fds = append(fds, fd)
			fs.Write(fd, 0, []byte(fmt.Sprintf("content %d", i)), t0)
		}
		fs.Unlink("/a/f3", t0)
		fs.Rmdir("/b", t0)
		return fs, fds
	}
	fs1, fds1 := run()
	fs2, fds2 := run()
	if fs1.Inodes() != fs2.Inodes() || fs1.OpenFDs() != fs2.OpenFDs() {
		t.Fatal("fs state diverged")
	}
	for i := range fds1 {
		if fds1[i] != fds2[i] {
			t.Fatalf("fd allocation diverged: %v vs %v", fds1, fds2)
		}
	}
}

func TestServiceWireRoundTrip(t *testing.T) {
	svc := NewService()
	mk := svc.Execute(CmdMkdir, EncodeInput("/dir", encodeModeTime(0o755, t0)))
	raw, err := lz4.Unpack(mk)
	if err != nil || Errno(raw[0]) != OK {
		t.Fatalf("mkdir via wire: %v %v", err, raw)
	}
	// Malformed input yields EINVAL, packed.
	out := svc.Execute(CmdMkdir, []byte{1})
	raw, err = lz4.Unpack(out)
	if err != nil || Errno(raw[0]) != ErrInval {
		t.Fatalf("malformed: %v %v", err, raw)
	}
	// Unknown command.
	out = svc.Execute(200, EncodeInput("/x", nil))
	raw, _ = lz4.Unpack(out)
	if Errno(raw[0]) != ErrInval {
		t.Fatalf("unknown cmd: %v", raw)
	}
}

func TestKeyOfSamePathSameKey(t *testing.T) {
	a := EncodeInput("/same/path", []byte("args-a"))
	b := EncodeInput("/same/path", bytes.Repeat([]byte("other"), 100))
	ka, oka := KeyOf(a)
	kb, okb := KeyOf(b)
	if !oka || !okb || ka != kb {
		t.Fatalf("keys differ: %v/%v %v/%v", ka, oka, kb, okb)
	}
	kc, _ := KeyOf(EncodeInput("/other/path", nil))
	if kc == ka {
		t.Fatal("different paths hash equal (unlucky collision?)")
	}
	if _, ok := KeyOf([]byte{9}); ok {
		t.Fatal("short input produced a key")
	}
}

// The key-set rewrite's acceptance bar: structural ops compile to
// RouteMultiKey over {path, parent}, fd-table and content writers stay
// single-keyed, reads are keyed read-only — and NOTHING routes as a
// barrier anymore (the paper's spec made ten of fifteen commands
// all-worker barriers).
func TestSpecClasses(t *testing.T) {
	compiled, err := cdep.Compile(Spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	structural := []command.ID{CmdCreate, CmdMknod, CmdMkdir, CmdUnlink, CmdRmdir}
	for _, id := range structural {
		if compiled.Class(id) != cdep.MultiKeyed {
			t.Errorf("cmd %d class = %v, want MultiKeyed", id, compiled.Class(id))
		}
		if r := compiled.Route(id); r.Kind != cdep.RouteMultiKey {
			t.Errorf("cmd %d route = %v, want multikey", id, r.Kind)
		}
	}
	for _, id := range []command.ID{
		CmdOpen, CmdUtimens, CmdRelease, CmdOpendir, CmdReleasedir, CmdWrite,
	} {
		if compiled.Class(id) != cdep.Keyed {
			t.Errorf("cmd %d class = %v, want Keyed", id, compiled.Class(id))
		}
		if compiled.Route(id).ReadOnly {
			t.Errorf("cmd %d marked read-only", id)
		}
	}
	for _, id := range []command.ID{CmdAccess, CmdLstat, CmdRead, CmdReaddir} {
		if compiled.Class(id) != cdep.Keyed {
			t.Errorf("cmd %d class = %v, want Keyed", id, compiled.Class(id))
		}
		if !compiled.Route(id).ReadOnly {
			t.Errorf("reader cmd %d not marked read-only", id)
		}
	}
	// No NetFS command may compile to a barrier route.
	for id := CmdCreate; id <= CmdReaddir; id++ {
		if r := compiled.Route(id); r.Kind == cdep.RouteBarrier {
			t.Errorf("cmd %d still routes as a barrier", id)
		}
	}
	// Same path → same singleton group; different paths usually differ.
	ga := compiled.Groups(CmdRead, EncodeInput("/p1", nil), nil)
	gb := compiled.Groups(CmdWrite, EncodeInput("/p1", nil), nil)
	if ga != gb || ga.Count() != 1 {
		t.Fatalf("same-path groups: %v vs %v", ga, gb)
	}
}

// Structural commands carry the key set {path, parent} and multicast to
// the union of both keys' groups; the file's per-path commands share a
// group with them through the path key.
func TestSpecStructuralKeySet(t *testing.T) {
	compiled, err := cdep.Compile(Spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in := EncodeInput("/dir/file", nil)
	keys, ok := compiled.KeySet(CmdCreate, in)
	if !ok || len(keys) != 2 {
		t.Fatalf("KeySet(create /dir/file) = %v, %v", keys, ok)
	}
	kPath, _ := KeyOf(in)
	kParent, _ := KeyOf(EncodeInput("/dir", nil))
	if !((keys[0] == kPath && keys[1] == kParent) || (keys[0] == kParent && keys[1] == kPath)) {
		t.Fatalf("KeySet = %v, want {path %d, parent %d}", keys, kPath, kParent)
	}
	// The multi-key γ covers the path's group AND the parent's group.
	gamma := compiled.Groups(CmdCreate, in, nil)
	gPath := compiled.Groups(CmdRead, in, nil)
	gParent := compiled.Groups(CmdReaddir, EncodeInput("/dir", nil), nil)
	if gamma&gPath == 0 || gamma&gParent == 0 {
		t.Fatalf("create γ=%v misses path γ=%v or parent γ=%v", gamma, gPath, gParent)
	}
	// Root-level paths have a root parent; the root itself is single-key.
	if keys, ok := compiled.KeySet(CmdMkdir, EncodeInput("/top", nil)); !ok || len(keys) != 2 {
		t.Fatalf("KeySet(mkdir /top) = %v, %v", keys, ok)
	}
	if keys, ok := compiled.KeySet(CmdMkdir, EncodeInput("/", nil)); !ok || len(keys) != 1 {
		t.Fatalf("KeySet(mkdir /) = %v, %v (root has no parent)", keys, ok)
	}
	// Conflict queries intersect key sets: create conflicts with reads
	// of the file AND of the parent dir, not with unrelated paths.
	if !compiled.Conflicts(CmdCreate, in, CmdReaddir, EncodeInput("/dir", nil)) {
		t.Fatal("create /dir/file does not conflict with readdir /dir")
	}
	if !compiled.Conflicts(CmdCreate, in, CmdLstat, in) {
		t.Fatal("create does not conflict with lstat of the same path")
	}
	if compiled.Conflicts(CmdCreate, in, CmdLstat, EncodeInput("/other/file", nil)) {
		t.Fatal("create conflicts with an unrelated path")
	}
	// Two structural ops under the same parent conflict through it.
	if !compiled.Conflicts(CmdCreate, in, CmdUnlink, EncodeInput("/dir/other", nil)) {
		t.Fatal("same-dir structural ops do not conflict")
	}
}

// Non-canonical spellings must be rejected, not aliased: the flat
// paths map and the scheduler's key extraction agree on one spelling
// per object, so "/a/" or "//b" creating ghost entries would desync
// them.
func TestFSRejectsNonCanonicalPaths(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/a", 0o755, t0)
	for _, path := range []string{"/a/", "//b", "/a//c", "/a/./c", "/a/../c"} {
		if errno := fs.Mknod(path, 0o644, t0); errno != ErrInval {
			t.Errorf("mknod %q = %v, want EINVAL", path, errno)
		}
		if errno := fs.Access(path); errno != ErrInval {
			t.Errorf("access %q = %v, want EINVAL", path, errno)
		}
	}
	if names, _ := fs.Readdir("/"); len(names) != 1 || names[0] != "a" {
		t.Fatalf("root entries = %v, want [a]", names)
	}
}

// A wire-supplied write offset near 2^64 must fail cleanly instead of
// wrapping the extent computation and panicking the replica.
func TestFSWriteOffsetOverflow(t *testing.T) {
	fs := NewFS()
	fd, _ := fs.Create("/f", 0o644, t0)
	if _, errno := fs.Write(fd, ^uint64(0), []byte("x"), t0); errno != ErrInval {
		t.Fatalf("overflowing write = %v, want EINVAL", errno)
	}
}

// ParentPath is pure string surgery shared by the extractor and the FS.
func TestParentPath(t *testing.T) {
	for path, want := range map[string]string{
		"/":        "",
		"":         "",
		"/a":       "/",
		"/a/b":     "/a",
		"/a/b/c":   "/a/b",
		"relative": "",
	} {
		if got := ParentPath(path); got != want {
			t.Errorf("ParentPath(%q) = %q, want %q", path, got, want)
		}
	}
}

// A write routed with a path that does not match the fd's real file
// must fail instead of racing another path's serialized history.
func TestServiceRejectsMismatchedFDPath(t *testing.T) {
	svc := NewService()
	svc.Execute(CmdMknod, EncodeInput("/a", encodeModeTime(0o644, t0)))
	svc.Execute(CmdMknod, EncodeInput("/b", encodeModeTime(0o644, t0)))
	out := svc.Execute(CmdOpen, EncodeInput("/a", nil))
	raw, err := lz4.Unpack(out)
	if err != nil || Errno(raw[0]) != OK {
		t.Fatalf("open: %v %v", err, raw)
	}
	fd := binary.LittleEndian.Uint64(raw[1:])

	args := make([]byte, 24)
	binary.LittleEndian.PutUint64(args, fd)
	binary.LittleEndian.PutUint64(args[16:], uint64(t0))
	args = append(args, 'x')
	// Declared path /b, fd belongs to /a: EBADF.
	raw, _ = lz4.Unpack(svc.Execute(CmdWrite, EncodeInput("/b", args)))
	if Errno(raw[0]) != ErrBadFd {
		t.Fatalf("mismatched write: %v, want EBADF", Errno(raw[0]))
	}
	// Declared path matches: OK.
	raw, _ = lz4.Unpack(svc.Execute(CmdWrite, EncodeInput("/a", args)))
	if Errno(raw[0]) != OK {
		t.Fatalf("matched write: %v", Errno(raw[0]))
	}
	// Release with an empty path cannot verify: EBADF.
	raw, _ = lz4.Unpack(svc.Execute(CmdRelease, EncodeInput("", encodeFD(fd))))
	if Errno(raw[0]) != ErrBadFd {
		t.Fatalf("empty-path release: %v, want EBADF", Errno(raw[0]))
	}
	raw, _ = lz4.Unpack(svc.Execute(CmdRelease, EncodeInput("/a", encodeFD(fd))))
	if Errno(raw[0]) != OK {
		t.Fatalf("release: %v", Errno(raw[0]))
	}
}

// Random workload through the Service wire and a direct FS must agree.
func TestServiceMatchesDirectFS(t *testing.T) {
	svc := NewService()
	ref := NewFS()
	rng := rand.New(rand.NewSource(11))

	dirs := []string{"/d0", "/d1", "/d2"}
	for _, d := range dirs {
		svc.Execute(CmdMkdir, EncodeInput(d, encodeModeTime(0o755, t0)))
		ref.Mkdir(d, 0o755, t0)
	}
	var paths []string
	for i := 0; i < 40; i++ {
		paths = append(paths, fmt.Sprintf("%s/f%d", dirs[rng.Intn(len(dirs))], i))
	}
	for _, p := range paths {
		svc.Execute(CmdMknod, EncodeInput(p, encodeModeTime(0o644, t0)))
		ref.Mknod(p, 0o644, t0)
	}
	// Spot-check stats through the wire.
	for _, p := range paths[:10] {
		out := svc.Execute(CmdLstat, EncodeInput(p, nil))
		raw, err := lz4.Unpack(out)
		if err != nil || Errno(raw[0]) != OK {
			t.Fatalf("lstat %s: %v %v", p, err, raw)
		}
		if _, errno := ref.Lstat(p); errno != OK {
			t.Fatalf("ref lstat %s: %v", p, errno)
		}
	}
	if svc.FS().Inodes() != ref.Inodes() {
		t.Fatalf("inode count %d vs %d", svc.FS().Inodes(), ref.Inodes())
	}
}

func TestFSSnapshotRestoreRoundTrip(t *testing.T) {
	const t0 = int64(1_700_000_000_000_000_000)
	fs := NewFS()
	fs.Mkdir("/d", 0o755, t0)
	fs.Mkdir("/d/sub", 0o700, t0+1)
	fd1, _ := fs.Create("/d/a", 0o644, t0+2)
	fs.Write(fd1, 0, []byte("hello world"), t0+3)
	fd2, _ := fs.Open("/d/a") // second descriptor on the same file
	fs.Utimens("/d/a", t0+4, t0+5)
	dirFd, _ := fs.Opendir("/d")
	// Orphan: open twice, unlink — both descriptors must share one
	// inode after restore.
	ofd1, _ := fs.Create("/d/gone", 0o644, t0+6)
	ofd2, _ := fs.Open("/d/gone")
	fs.Write(ofd1, 0, []byte("orphaned"), t0+7)
	if errno := fs.Unlink("/d/gone", t0+8); errno != OK {
		t.Fatalf("unlink: %v", errno)
	}
	// Recreate the path so orphan detection must distinguish inodes.
	fs.Mknod("/d/gone", 0o600, t0+9)

	snap := fs.Snapshot()
	restored := NewFS()
	restored.Mkdir("/junk", 0o755, t0) // must be discarded
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := restored.Fingerprint(), fs.Fingerprint(); got != want {
		t.Fatalf("restored fingerprint %x != source %x", got, want)
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Fatal("snapshot of restored FS differs from original snapshot")
	}
	// Live descriptors still work.
	if data, errno := restored.Read(fd2, 0, 5); errno != OK || string(data) != "hello" {
		t.Fatalf("read via restored fd: %q %v", data, errno)
	}
	if errno := restored.ReleasedirPath("/d", dirFd); errno != OK {
		t.Fatalf("releasedir via restored fd: %v", errno)
	}
	// The orphan's two descriptors must reference ONE inode number
	// (the unlinked file's), distinct from the recreated path's, and
	// releasing both must work.
	oe1, ok1 := restored.fds.Get(mvstore.Committed, ofd1)
	oe2, ok2 := restored.fds.Get(mvstore.Committed, ofd2)
	if !ok1 || !ok2 || oe1.ino != oe2.ino {
		t.Fatal("orphan descriptors no longer share an inode after restore")
	}
	if n := restored.lookup(mvstore.Committed, "/d/gone"); n == nil || oe1.ino == n.ino {
		t.Fatal("orphan descriptor aliases the recreated path's inode")
	}
	if errno := restored.ReleasePath("/d/gone", ofd1); errno != OK {
		t.Fatalf("release orphan fd1: %v", errno)
	}
	if errno := restored.ReleasePath("/d/gone", ofd2); errno != OK {
		t.Fatalf("release orphan fd2: %v", errno)
	}
	// Deterministic allocation survives: creating the same next path on
	// source and restored FS yields identical fds/inos.
	sfd, _ := fs.Create("/d/next", 0o644, t0+11)
	rfd, _ := restored.Create("/d/next", 0o644, t0+11)
	if sfd != rfd {
		t.Fatalf("post-restore allocation diverged: %x vs %x", sfd, rfd)
	}
}

func TestFSRestoreRejectsCorrupt(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d", 0o755, 1)
	fs.Create("/d/f", 0o644, 2)
	snap := fs.Snapshot()
	dst := NewFS()
	for _, bad := range [][]byte{nil, {0x7f}, snap[:len(snap)-2], append(append([]byte(nil), snap...), 0)} {
		if err := dst.Restore(bad); err == nil {
			t.Fatalf("Restore accepted corrupt snapshot of %d bytes", len(bad))
		}
	}
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("Restore after rejections: %v", err)
	}
	if dst.Fingerprint() != fs.Fingerprint() {
		t.Fatal("fingerprint mismatch after corrupt-then-good restore")
	}
}
