package netfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/lz4"
)

// Invoker abstracts the replicated client proxy NetFS calls go
// through.
type Invoker interface {
	Invoke(cmd command.ID, input []byte) ([]byte, error)
}

// Client is the NetFS file-system proxy (paper §VI-C): it turns typed
// file-system calls into compressed NetFS commands and tracks the
// fd→path mapping so fd-based calls (read/write/release) can still be
// routed by path.
type Client struct {
	inv     Invoker
	fdPaths map[uint64]string
}

// FsError is a non-OK NetFS status returned by a call.
type FsError struct {
	Op     string
	Path   string
	Status Errno
}

func (e *FsError) Error() string {
	return fmt.Sprintf("netfs %s %s: %s", e.Op, e.Path, e.Status)
}

// errShortResponse reports a malformed response payload.
var errShortResponse = errors.New("netfs: short response")

// NewClient wraps a replicated invoker into a NetFS client. The client
// is not safe for concurrent use (each client goroutine owns one, like
// a process owns its fd table view).
func NewClient(inv Invoker) *Client {
	return &Client{
		inv:     inv,
		fdPaths: make(map[uint64]string),
	}
}

// call invokes one command and unpacks the compressed response.
func (c *Client) call(op string, cmd command.ID, path string, args []byte) ([]byte, error) {
	out, err := c.inv.Invoke(cmd, EncodeInput(path, args))
	if err != nil {
		return nil, fmt.Errorf("netfs %s %s: %w", op, path, err)
	}
	raw, err := lz4.Unpack(out)
	if err != nil {
		return nil, fmt.Errorf("netfs %s %s: %w", op, path, err)
	}
	if len(raw) == 0 {
		return nil, errShortResponse
	}
	if Errno(raw[0]) != OK {
		return nil, &FsError{Op: op, Path: path, Status: Errno(raw[0])}
	}
	return raw[1:], nil
}

func encodeModeTime(mode uint32, mtime int64) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, mode)
	binary.LittleEndian.PutUint64(buf[4:], uint64(mtime))
	return buf
}

func encodeTime(t int64) []byte {
	return binary.LittleEndian.AppendUint64(nil, uint64(t))
}

func encodeFD(fd uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, fd)
}

// Create makes a new file and opens it.
func (c *Client) Create(path string, mode uint32, mtime int64) (fd uint64, err error) {
	out, err := c.call("create", CmdCreate, path, encodeModeTime(mode, mtime))
	if err != nil {
		return 0, err
	}
	if len(out) < 8 {
		return 0, errShortResponse
	}
	fd = binary.LittleEndian.Uint64(out)
	c.fdPaths[fd] = path
	return fd, nil
}

// Mknod makes a new empty file.
func (c *Client) Mknod(path string, mode uint32, mtime int64) error {
	_, err := c.call("mknod", CmdMknod, path, encodeModeTime(mode, mtime))
	return err
}

// Mkdir makes a directory.
func (c *Client) Mkdir(path string, mode uint32, mtime int64) error {
	_, err := c.call("mkdir", CmdMkdir, path, encodeModeTime(mode, mtime))
	return err
}

// Unlink removes a file.
func (c *Client) Unlink(path string, mtime int64) error {
	_, err := c.call("unlink", CmdUnlink, path, encodeTime(mtime))
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string, mtime int64) error {
	_, err := c.call("rmdir", CmdRmdir, path, encodeTime(mtime))
	return err
}

// Open opens an existing file.
func (c *Client) Open(path string) (fd uint64, err error) {
	out, err := c.call("open", CmdOpen, path, nil)
	if err != nil {
		return 0, err
	}
	if len(out) < 8 {
		return 0, errShortResponse
	}
	fd = binary.LittleEndian.Uint64(out)
	c.fdPaths[fd] = path
	return fd, nil
}

// Utimens sets a path's timestamps.
func (c *Client) Utimens(path string, atime, mtime int64) error {
	args := make([]byte, 16)
	binary.LittleEndian.PutUint64(args, uint64(atime))
	binary.LittleEndian.PutUint64(args[8:], uint64(mtime))
	_, err := c.call("utimens", CmdUtimens, path, args)
	return err
}

// Release closes a file descriptor.
func (c *Client) Release(fd uint64) error {
	path := c.fdPaths[fd]
	_, err := c.call("release", CmdRelease, path, encodeFD(fd))
	if err == nil {
		delete(c.fdPaths, fd)
	}
	return err
}

// Opendir opens a directory.
func (c *Client) Opendir(path string) (fd uint64, err error) {
	out, err := c.call("opendir", CmdOpendir, path, nil)
	if err != nil {
		return 0, err
	}
	if len(out) < 8 {
		return 0, errShortResponse
	}
	fd = binary.LittleEndian.Uint64(out)
	c.fdPaths[fd] = path
	return fd, nil
}

// Releasedir closes a directory descriptor.
func (c *Client) Releasedir(fd uint64) error {
	path := c.fdPaths[fd]
	_, err := c.call("releasedir", CmdReleasedir, path, encodeFD(fd))
	if err == nil {
		delete(c.fdPaths, fd)
	}
	return err
}

// Access checks that a path exists.
func (c *Client) Access(path string) error {
	_, err := c.call("access", CmdAccess, path, nil)
	return err
}

// Lstat returns a path's metadata.
func (c *Client) Lstat(path string) (Stat, error) {
	out, err := c.call("lstat", CmdLstat, path, nil)
	if err != nil {
		return Stat{}, err
	}
	if len(out) < 36 {
		return Stat{}, errShortResponse
	}
	return Stat{
		Ino:   binary.LittleEndian.Uint64(out),
		Mode:  binary.LittleEndian.Uint32(out[8:]),
		Size:  binary.LittleEndian.Uint64(out[12:]),
		Mtime: int64(binary.LittleEndian.Uint64(out[20:])),
		Atime: int64(binary.LittleEndian.Uint64(out[28:])),
	}, nil
}

// Read reads size bytes at offset from an open fd. The fd's path is
// attached for routing (same path → same destination group).
func (c *Client) Read(fd uint64, offset uint64, size uint32) ([]byte, error) {
	path := c.fdPaths[fd]
	args := make([]byte, 20)
	binary.LittleEndian.PutUint64(args, fd)
	binary.LittleEndian.PutUint64(args[8:], offset)
	binary.LittleEndian.PutUint32(args[16:], size)
	return c.call("read", CmdRead, path, args)
}

// Write writes data at offset through an open fd.
func (c *Client) Write(fd uint64, offset uint64, data []byte, mtime int64) (uint32, error) {
	path := c.fdPaths[fd]
	args := make([]byte, 24, 24+len(data))
	binary.LittleEndian.PutUint64(args, fd)
	binary.LittleEndian.PutUint64(args[8:], offset)
	binary.LittleEndian.PutUint64(args[16:], uint64(mtime))
	args = append(args, data...)
	out, err := c.call("write", CmdWrite, path, args)
	if err != nil {
		return 0, err
	}
	if len(out) < 4 {
		return 0, errShortResponse
	}
	return binary.LittleEndian.Uint32(out), nil
}

// Readdir lists a directory.
func (c *Client) Readdir(path string) ([]string, error) {
	out, err := c.call("readdir", CmdReaddir, path, nil)
	if err != nil {
		return nil, err
	}
	if len(out) < 4 {
		return nil, errShortResponse
	}
	count := int(binary.LittleEndian.Uint32(out))
	out = out[4:]
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(out) < 2 {
			return nil, errShortResponse
		}
		nl := int(binary.LittleEndian.Uint16(out))
		out = out[2:]
		if len(out) < nl {
			return nil, errShortResponse
		}
		names = append(names, string(out[:nl]))
		out = out[nl:]
	}
	return names, nil
}
