// Package netfs implements NetFS, the paper's replicated networked
// file system (§V-B, §VI-C): an in-memory inode file system driven by
// a FUSE-like command set, with lz4-compressed request/response
// payloads and per-path parallelism.
//
// Dependency structure (rewritten for key-set scheduling): structural
// calls — create, mknod, mkdir, unlink, rmdir — access exactly the
// named path and its parent directory, so they carry the key set
// {path, parent} (cdep.KeySetFunc) and serialize only against calls
// touching one of those two paths. Descriptor-table calls — open,
// opendir, release, releasedir — and utimens/write access a single
// path; access, lstat, read and readdir are per-path read-only. No
// NetFS call depends on all commands anymore: the paper's ten
// synchronous-mode barriers are demoted to (multi-)keyed routes.
//
// What makes the demotion sound:
//
//   - Flat-path resolution: an operation resolves its target by full
//     path, never by walking ancestor components, so its footprint is
//     exactly the declared key set. (Only empty directories and leaf
//     files can be removed, so a concurrent operation under a distinct
//     {path, parent} pair can never observe a half-removed subtree.)
//   - Deterministic allocation: inode and descriptor numbers derive
//     from (path, per-path sequence) instead of global counters, so
//     replicas executing independent calls in different interleavings
//     still allocate identical numbers. The per-path sequence is
//     bumped only by same-path calls, which every scheduler
//     serializes.
//   - Versioned state: the path table, descriptor table and
//     allocation sequences live behind multi-version stores
//     (internal/mvstore). Non-speculative execution addresses the
//     committed tip; optimistic execution lands writes as uncommitted
//     versions tagged with the command's speculation epoch, so a
//     rollback aborts just the epoch's versions — O(paths touched),
//     never a whole-state clone. The stores' internal locks replace
//     the old FS-wide mutex for map-structure safety; per-inode field
//     access needs no further locking because the schedulers
//     serialize same-key commands and Mutate hands each speculating
//     epoch its own deep copy of the inode it edits.
//   - Declared-path verification: fd-based calls (read, write,
//     release*) verify that the fd actually belongs to the path the
//     client declared for routing; a mismatch is EBADF. Without this a
//     misrouted fd operation could race another path's serialized
//     history and diverge replicas.
package netfs

import (
	"hash/fnv"
	"sort"
	"strings"

	"github.com/psmr/psmr/internal/mvstore"
)

// Errno is a NetFS error code (a small subset of POSIX).
type Errno byte

// NetFS error codes.
const (
	OK Errno = iota
	ErrNoEnt
	ErrExist
	ErrNotDir
	ErrIsDir
	ErrNotEmpty
	ErrBadFd
	ErrInval
)

func (e Errno) String() string {
	switch e {
	case OK:
		return "OK"
	case ErrNoEnt:
		return "ENOENT"
	case ErrExist:
		return "EEXIST"
	case ErrNotDir:
		return "ENOTDIR"
	case ErrIsDir:
		return "EISDIR"
	case ErrNotEmpty:
		return "ENOTEMPTY"
	case ErrBadFd:
		return "EBADF"
	case ErrInval:
		return "EINVAL"
	default:
		return "E?"
	}
}

// Mode bits (simplified).
const (
	// ModeDir marks directories.
	ModeDir uint32 = 1 << 31
)

// Stat describes an inode (the lstat response).
type Stat struct {
	Ino   uint64
	Mode  uint32
	Size  uint64
	Mtime int64 // unix nanoseconds, always client-supplied (determinism)
	Atime int64
}

// inode is one file or directory. Committed inodes are only mutated by
// committed execution (the schedulers serialize same-key commands);
// speculating epochs edit their own deep copies via mvstore.Mutate.
type inode struct {
	ino   uint64
	mode  uint32
	mtime int64
	atime int64
	data  []byte            // files
	kids  map[string]uint64 // directories: name → ino
	nlink int
}

func (n *inode) isDir() bool { return n.mode&ModeDir != 0 }

// cloneInode is the mvstore clone func of the path table: a
// speculating epoch's first mutation of an inode deep-copies it, so
// committed state and other epochs never observe the edit.
func cloneInode(n *inode) *inode {
	c := &inode{
		ino:   n.ino,
		mode:  n.mode,
		mtime: n.mtime,
		atime: n.atime,
		nlink: n.nlink,
	}
	if n.data != nil {
		c.data = append([]byte(nil), n.data...)
	}
	if n.kids != nil {
		c.kids = make(map[string]uint64, len(n.kids))
		for name, ino := range n.kids {
			c.kids[name] = ino
		}
	}
	return c
}

// fdEntry is one entry of the shared file-descriptor table. It names
// its inode by number, not pointer: fd-based calls re-resolve the
// declared path and verify the inode number still matches, so a
// descriptor whose file was unlinked (or unlinked and recreated) is
// EBADF, and copy-on-write inode versions never strand a stale
// pointer.
type fdEntry struct {
	path string
	dir  bool
	ino  uint64
}

// FS is the in-memory file system state. Its methods implement the
// deterministic core of every NetFS command; all inputs (including
// timestamps) come from the client so replicas stay identical.
//
// The exported methods execute against committed state; the *At
// variants take a speculation epoch and implement optimistic
// execution's versioned path (see the package doc).
type FS struct {
	// paths maps full canonical paths to live inodes (flat resolution).
	paths *mvstore.Store[string, *inode]
	// fds is the shared descriptor table.
	fds *mvstore.Store[uint64, fdEntry]
	// pathSeq is the per-path allocation sequence feeding deterministic
	// ino/fd numbers. Entries are never removed: a recreated path keeps
	// counting up, so numbers are never reused while an old descriptor
	// could still be live.
	pathSeq *mvstore.Store[string, uint64]
}

// NewFS creates a file system holding only the root directory.
func NewFS() *FS {
	fs := &FS{
		paths:   mvstore.New[string, *inode](mvstore.MapBase[string, *inode]{}, cloneInode),
		fds:     mvstore.New[uint64, fdEntry](mvstore.MapBase[uint64, fdEntry]{}, nil),
		pathSeq: mvstore.New[string, uint64](mvstore.MapBase[string, uint64]{}, nil),
	}
	fs.paths.Put(mvstore.Committed, "/", &inode{
		ino:   1,
		mode:  ModeDir | 0o755,
		kids:  make(map[string]uint64),
		nlink: 2,
	})
	return fs
}

// Commit promotes epoch e's uncommitted versions across all three
// stores into committed state.
func (fs *FS) Commit(e mvstore.Epoch) {
	fs.paths.Commit(e)
	fs.fds.Commit(e)
	fs.pathSeq.Commit(e)
}

// Abort drops epoch e's uncommitted versions across all three stores.
func (fs *FS) Abort(e mvstore.Epoch) {
	fs.paths.Abort(e)
	fs.fds.Abort(e)
	fs.pathSeq.Abort(e)
}

// Uncommitted reports the total uncommitted version count across the
// three stores.
func (fs *FS) Uncommitted() int {
	return fs.paths.Uncommitted() + fs.fds.Uncommitted() + fs.pathSeq.Uncommitted()
}

// splitPath validates a CANONICAL path ("/a/b/c") and returns its
// components. Non-canonical spellings — trailing or doubled slashes,
// "." or ".." components — are rejected rather than normalised: the
// flat paths map and the scheduler's key extraction (KeyOf hashes the
// raw wire path) must agree on one spelling per object, and rejecting
// the rest keeps them trivially consistent.
func splitPath(path string) ([]string, bool) {
	if path == "" || path[0] != '/' {
		return nil, false
	}
	if path == "/" {
		return nil, true
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, false
		}
	}
	return parts, true
}

// ParentPath returns the parent directory of a canonical path ("" for
// the root, which has none, and for non-canonical paths, which every
// call rejects as EINVAL). It is string surgery only — no state
// access — so the key-set extractor shares it.
func ParentPath(path string) string {
	if path == "" || path == "/" || path[0] != '/' {
		return ""
	}
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// pathHash hashes a canonical path (the object key of NetFS keys).
func pathHash(path string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	return h.Sum64()
}

// allocSeq bumps path's allocation sequence at epoch e. Callers hold
// the path's scheduler key, so the sequence each invocation observes
// is deterministic across replicas.
func (fs *FS) allocSeq(e mvstore.Epoch, path string) uint64 {
	seq, _ := fs.pathSeq.Get(e, path)
	seq++
	fs.pathSeq.Put(e, path, seq)
	return seq
}

// inoFor derives a deterministic inode number from (path, sequence).
// The high bit is set so derived numbers never collide with the root's
// ino 1.
func inoFor(path string, seq uint64) uint64 {
	return mixAlloc(pathHash(path)^(seq*0x9E3779B97F4A7C15)) | 1<<63
}

// fdFor derives a deterministic descriptor from (path, sequence); the
// distinct salt keeps fd and ino spaces independent.
func fdFor(path string, seq uint64) uint64 {
	return mixAlloc(pathHash(path)^(seq*0xC2B2AE3D27D4EB4F)) | 1<<62
}

// mixAlloc is a splitmix64-style finalizer.
func mixAlloc(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// lookup resolves a canonical path to its visible inode at epoch e by
// flat map lookup (never an ancestor walk — see the package doc).
func (fs *FS) lookup(e mvstore.Epoch, path string) *inode {
	n, _ := fs.paths.Get(e, path)
	return n
}

// resolve validates a path and resolves it at epoch e.
func (fs *FS) resolve(e mvstore.Epoch, path string) (*inode, Errno) {
	if _, ok := splitPath(path); !ok {
		return nil, ErrInval
	}
	n := fs.lookup(e, path)
	if n == nil {
		return nil, ErrNoEnt
	}
	return n, OK
}

// createNode allocates an inode under the parent of path. The caller
// holds the scheduler keys {path, parent}.
func (fs *FS) createNode(e mvstore.Epoch, path string, mode uint32, mtime int64) (*inode, Errno) {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return nil, ErrInval
	}
	name := parts[len(parts)-1]
	parent := fs.lookup(e, ParentPath(path))
	if parent == nil {
		return nil, ErrNoEnt
	}
	if !parent.isDir() {
		return nil, ErrNotDir
	}
	if fs.lookup(e, path) != nil {
		return nil, ErrExist
	}
	n := &inode{
		ino:   inoFor(path, fs.allocSeq(e, path)),
		mode:  mode,
		mtime: mtime,
		atime: mtime,
		nlink: 1,
	}
	if n.isDir() {
		n.kids = make(map[string]uint64)
		n.nlink = 2
	}
	// Version the parent for this epoch before editing it.
	p, _ := fs.paths.Mutate(e, ParentPath(path))
	if n.isDir() {
		p.nlink++
	}
	p.kids[name] = n.ino
	p.mtime = mtime
	fs.paths.Put(e, path, n)
	return n, OK
}

// MknodAt creates an empty file at epoch e.
func (fs *FS) MknodAt(e mvstore.Epoch, path string, mode uint32, mtime int64) Errno {
	_, errno := fs.createNode(e, path, mode&^ModeDir, mtime)
	return errno
}

// Mknod creates an empty file.
func (fs *FS) Mknod(path string, mode uint32, mtime int64) Errno {
	return fs.MknodAt(mvstore.Committed, path, mode, mtime)
}

// MkdirAt creates a directory at epoch e.
func (fs *FS) MkdirAt(e mvstore.Epoch, path string, mode uint32, mtime int64) Errno {
	_, errno := fs.createNode(e, path, mode|ModeDir, mtime)
	return errno
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string, mode uint32, mtime int64) Errno {
	return fs.MkdirAt(mvstore.Committed, path, mode, mtime)
}

// CreateAt makes a file and opens it at epoch e, returning the new fd.
func (fs *FS) CreateAt(e mvstore.Epoch, path string, mode uint32, mtime int64) (uint64, Errno) {
	n, errno := fs.createNode(e, path, mode&^ModeDir, mtime)
	if errno != OK {
		return 0, errno
	}
	return fs.allocFD(e, path, false, n.ino), OK
}

// Create makes a file and opens it, returning the new fd.
func (fs *FS) Create(path string, mode uint32, mtime int64) (uint64, Errno) {
	return fs.CreateAt(mvstore.Committed, path, mode, mtime)
}

// OpenAt opens an existing file at epoch e and returns an fd.
func (fs *FS) OpenAt(e mvstore.Epoch, path string) (uint64, Errno) {
	n, errno := fs.resolve(e, path)
	if errno != OK {
		return 0, errno
	}
	if n.isDir() {
		return 0, ErrIsDir
	}
	return fs.allocFD(e, path, false, n.ino), OK
}

// Open opens an existing file and returns an fd.
func (fs *FS) Open(path string) (uint64, Errno) {
	return fs.OpenAt(mvstore.Committed, path)
}

// OpendirAt opens a directory at epoch e and returns an fd.
func (fs *FS) OpendirAt(e mvstore.Epoch, path string) (uint64, Errno) {
	n, errno := fs.resolve(e, path)
	if errno != OK {
		return 0, errno
	}
	if !n.isDir() {
		return 0, ErrNotDir
	}
	return fs.allocFD(e, path, true, n.ino), OK
}

// Opendir opens a directory and returns an fd.
func (fs *FS) Opendir(path string) (uint64, Errno) {
	return fs.OpendirAt(mvstore.Committed, path)
}

func (fs *FS) allocFD(e mvstore.Epoch, path string, dir bool, ino uint64) uint64 {
	fd := fdFor(path, fs.allocSeq(e, path))
	fs.fds.Put(e, fd, fdEntry{path: path, dir: dir, ino: ino})
	return fd
}

// fdEntryFor reads the descriptor table at epoch e. wantPath, when
// non-empty, must match the path the descriptor was opened under — the
// declared-path verification that keeps fd-based commands inside their
// scheduler key.
func (fs *FS) fdEntryFor(e mvstore.Epoch, fd uint64, wantPath string) (fdEntry, Errno) {
	entry, ok := fs.fds.Get(e, fd)
	if !ok || (wantPath != "" && entry.path != wantPath) {
		return fdEntry{}, ErrBadFd
	}
	return entry, OK
}

// Release closes a file descriptor.
func (fs *FS) Release(fd uint64) Errno {
	return fs.ReleasePathAt(mvstore.Committed, "", fd)
}

// ReleasePath closes a descriptor, verifying the declared path when
// non-empty.
func (fs *FS) ReleasePath(path string, fd uint64) Errno {
	return fs.ReleasePathAt(mvstore.Committed, path, fd)
}

// ReleasePathAt closes a descriptor at epoch e.
func (fs *FS) ReleasePathAt(e mvstore.Epoch, path string, fd uint64) Errno {
	entry, ok := fs.fds.Get(e, fd)
	if !ok || (path != "" && entry.path != path) {
		return ErrBadFd
	}
	fs.fds.Delete(e, fd)
	return OK
}

// Releasedir closes a directory descriptor.
func (fs *FS) Releasedir(fd uint64) Errno {
	return fs.ReleasedirPathAt(mvstore.Committed, "", fd)
}

// ReleasedirPath closes a directory descriptor, verifying the declared
// path when non-empty.
func (fs *FS) ReleasedirPath(path string, fd uint64) Errno {
	return fs.ReleasedirPathAt(mvstore.Committed, path, fd)
}

// ReleasedirPathAt closes a directory descriptor at epoch e.
func (fs *FS) ReleasedirPathAt(e mvstore.Epoch, path string, fd uint64) Errno {
	entry, ok := fs.fds.Get(e, fd)
	if !ok || !entry.dir || (path != "" && entry.path != path) {
		return ErrBadFd
	}
	fs.fds.Delete(e, fd)
	return OK
}

// UnlinkAt removes a file at epoch e. The caller holds {path, parent}.
func (fs *FS) UnlinkAt(e mvstore.Epoch, path string, mtime int64) Errno {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return ErrInval
	}
	name := parts[len(parts)-1]
	parent := fs.lookup(e, ParentPath(path))
	n := fs.lookup(e, path)
	if parent == nil || (parent.isDir() && n == nil) {
		return ErrNoEnt
	}
	if !parent.isDir() {
		return ErrNotDir
	}
	if n.isDir() {
		return ErrIsDir
	}
	p, _ := fs.paths.Mutate(e, ParentPath(path))
	delete(p.kids, name)
	p.mtime = mtime
	m, _ := fs.paths.Mutate(e, path)
	m.nlink--
	if m.nlink <= 0 {
		fs.paths.Delete(e, path)
	}
	return OK
}

// Unlink removes a file.
func (fs *FS) Unlink(path string, mtime int64) Errno {
	return fs.UnlinkAt(mvstore.Committed, path, mtime)
}

// RmdirAt removes an empty directory at epoch e. The caller holds
// {path, parent}.
func (fs *FS) RmdirAt(e mvstore.Epoch, path string, mtime int64) Errno {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return ErrInval
	}
	name := parts[len(parts)-1]
	parent := fs.lookup(e, ParentPath(path))
	n := fs.lookup(e, path)
	if parent == nil || (parent.isDir() && n == nil) {
		return ErrNoEnt
	}
	if !parent.isDir() {
		return ErrNotDir
	}
	if !n.isDir() {
		return ErrNotDir
	}
	if len(n.kids) != 0 {
		return ErrNotEmpty
	}
	p, _ := fs.paths.Mutate(e, ParentPath(path))
	delete(p.kids, name)
	p.nlink--
	p.mtime = mtime
	fs.paths.Delete(e, path)
	return OK
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string, mtime int64) Errno {
	return fs.RmdirAt(mvstore.Committed, path, mtime)
}

// UtimensAt sets an inode's timestamps at epoch e.
func (fs *FS) UtimensAt(e mvstore.Epoch, path string, atime, mtime int64) Errno {
	if _, ok := splitPath(path); !ok {
		return ErrInval
	}
	n, ok := fs.paths.Mutate(e, path)
	if !ok {
		return ErrNoEnt
	}
	n.atime = atime
	n.mtime = mtime
	return OK
}

// Utimens sets an inode's timestamps.
func (fs *FS) Utimens(path string, atime, mtime int64) Errno {
	return fs.UtimensAt(mvstore.Committed, path, atime, mtime)
}

// AccessAt checks that a path exists at epoch e (permission checking
// is trivial in a single-user in-memory fs).
func (fs *FS) AccessAt(e mvstore.Epoch, path string) Errno {
	_, errno := fs.resolve(e, path)
	return errno
}

// Access checks that a path exists.
func (fs *FS) Access(path string) Errno {
	return fs.AccessAt(mvstore.Committed, path)
}

// LstatAt returns an inode's metadata at epoch e.
func (fs *FS) LstatAt(e mvstore.Epoch, path string) (Stat, Errno) {
	n, errno := fs.resolve(e, path)
	if errno != OK {
		return Stat{}, errno
	}
	return Stat{
		Ino:   n.ino,
		Mode:  n.mode,
		Size:  uint64(len(n.data)),
		Mtime: n.mtime,
		Atime: n.atime,
	}, OK
}

// Lstat returns an inode's metadata.
func (fs *FS) Lstat(path string) (Stat, Errno) {
	return fs.LstatAt(mvstore.Committed, path)
}

// fdInode resolves a descriptor's inode at epoch e by re-resolving its
// path and matching the inode number: a descriptor whose file was
// unlinked — or unlinked and recreated — no longer resolves and is
// EBADF, exactly like the old liveness (nlink) check.
func (fs *FS) fdInode(e mvstore.Epoch, entry fdEntry) *inode {
	n := fs.lookup(e, entry.path)
	if n == nil || n.ino != entry.ino {
		return nil
	}
	return n
}

// Read reads up to size bytes at offset through an open fd.
func (fs *FS) Read(fd uint64, offset uint64, size uint32) ([]byte, Errno) {
	return fs.ReadPathAt(mvstore.Committed, "", fd, offset, size)
}

// ReadPath is Read with declared-path verification (the wire path).
func (fs *FS) ReadPath(path string, fd uint64, offset uint64, size uint32) ([]byte, Errno) {
	return fs.ReadPathAt(mvstore.Committed, path, fd, offset, size)
}

// ReadPathAt reads through an open fd at epoch e.
func (fs *FS) ReadPathAt(e mvstore.Epoch, path string, fd uint64, offset uint64, size uint32) ([]byte, Errno) {
	entry, errno := fs.fdEntryFor(e, fd, path)
	if errno != OK || entry.dir {
		return nil, ErrBadFd
	}
	n := fs.fdInode(e, entry)
	if n == nil {
		return nil, ErrBadFd // unlinked while open
	}
	if offset >= uint64(len(n.data)) {
		return nil, OK
	}
	end := offset + uint64(size)
	if end > uint64(len(n.data)) {
		end = uint64(len(n.data))
	}
	return n.data[offset:end], OK
}

// Write writes data at offset through an open fd, growing the file
// (zero-filled) as needed.
func (fs *FS) Write(fd uint64, offset uint64, data []byte, mtime int64) (uint32, Errno) {
	return fs.WritePathAt(mvstore.Committed, "", fd, offset, data, mtime)
}

// WritePath is Write with declared-path verification (the wire path).
func (fs *FS) WritePath(path string, fd uint64, offset uint64, data []byte, mtime int64) (uint32, Errno) {
	return fs.WritePathAt(mvstore.Committed, path, fd, offset, data, mtime)
}

// WritePathAt writes through an open fd at epoch e.
func (fs *FS) WritePathAt(e mvstore.Epoch, path string, fd uint64, offset uint64, data []byte, mtime int64) (uint32, Errno) {
	entry, errno := fs.fdEntryFor(e, fd, path)
	if errno != OK || entry.dir {
		return 0, ErrBadFd
	}
	if fs.fdInode(e, entry) == nil {
		return 0, ErrBadFd
	}
	end := offset + uint64(len(data))
	if end < offset {
		return 0, ErrInval // offset+len overflow: no representable extent
	}
	n, _ := fs.paths.Mutate(e, entry.path)
	if end > uint64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[offset:end], data)
	n.mtime = mtime
	return uint32(len(data)), OK
}

// ReaddirAt lists a directory's entries at epoch e in sorted order.
func (fs *FS) ReaddirAt(e mvstore.Epoch, path string) ([]string, Errno) {
	n, errno := fs.resolve(e, path)
	if errno != OK {
		return nil, errno
	}
	if !n.isDir() {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, OK
}

// Readdir lists a directory's entries in sorted order.
func (fs *FS) Readdir(path string) ([]string, Errno) {
	return fs.ReaddirAt(mvstore.Committed, path)
}

// Fingerprint folds the whole committed file system — paths, inode
// metadata, file contents, directory entries, descriptor table,
// allocation sequences — into one value, for state-convergence checks
// in tests. Only call on a quiescent (fully reconciled) FS.
func (fs *FS) Fingerprint() uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211
	}
	mixU := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	pathInodes := make(map[string]*inode)
	fs.paths.RangeCommitted(func(p string, n *inode) bool {
		pathInodes[p] = n
		return true
	})
	paths := make([]string, 0, len(pathInodes))
	for p := range pathInodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		n := pathInodes[p]
		mix(p)
		mixU(n.ino)
		mixU(uint64(n.mode))
		mixU(uint64(n.mtime))
		mixU(uint64(n.atime))
		mixU(uint64(n.nlink))
		mixU(uint64(len(n.data)))
		for _, b := range n.data {
			h = (h ^ uint64(b)) * 1099511628211
		}
		kids := make([]string, 0, len(n.kids))
		for k := range n.kids {
			kids = append(kids, k)
		}
		sort.Strings(kids)
		for _, k := range kids {
			mix(k)
			mixU(n.kids[k])
		}
	}
	fdEntries := make(map[uint64]fdEntry)
	fs.fds.RangeCommitted(func(fd uint64, e fdEntry) bool {
		fdEntries[fd] = e
		return true
	})
	fds := make([]uint64, 0, len(fdEntries))
	for fd := range fdEntries {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i] < fds[j] })
	for _, fd := range fds {
		e := fdEntries[fd]
		mixU(fd)
		mix(e.path)
		mixU(e.ino)
	}
	seqs := make(map[string]uint64)
	fs.pathSeq.RangeCommitted(func(p string, seq uint64) bool {
		seqs[p] = seq
		return true
	})
	seqPaths := make([]string, 0, len(seqs))
	for p := range seqs {
		seqPaths = append(seqPaths, p)
	}
	sort.Strings(seqPaths)
	for _, p := range seqPaths {
		mix(p)
		mixU(seqs[p])
	}
	return h
}

// OpenFDs returns the number of committed open descriptors (for
// tests).
func (fs *FS) OpenFDs() int { return fs.fds.CommittedLen() }

// Inodes returns the number of committed live inodes (for tests):
// every live inode has exactly one paths entry.
func (fs *FS) Inodes() int { return fs.paths.CommittedLen() }
