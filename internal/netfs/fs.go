// Package netfs implements NetFS, the paper's replicated networked
// file system (§V-B, §VI-C): an in-memory inode file system driven by
// a FUSE-like command set, with lz4-compressed request/response
// payloads and per-path parallelism.
//
// Dependency structure (rewritten for key-set scheduling): structural
// calls — create, mknod, mkdir, unlink, rmdir — access exactly the
// named path and its parent directory, so they carry the key set
// {path, parent} (cdep.KeySetFunc) and serialize only against calls
// touching one of those two paths. Descriptor-table calls — open,
// opendir, release, releasedir — and utimens/write access a single
// path; access, lstat, read and readdir are per-path read-only. No
// NetFS call depends on all commands anymore: the paper's ten
// synchronous-mode barriers are demoted to (multi-)keyed routes.
//
// What makes the demotion sound:
//
//   - Flat-path resolution: an operation resolves its target by full
//     path, never by walking ancestor components, so its footprint is
//     exactly the declared key set. (Only empty directories and leaf
//     files can be removed, so a concurrent operation under a distinct
//     {path, parent} pair can never observe a half-removed subtree.)
//   - Deterministic allocation: inode and descriptor numbers derive
//     from (path, per-path sequence) instead of global counters, so
//     replicas executing independent calls in different interleavings
//     still allocate identical numbers. The per-path sequence is
//     bumped only by same-path calls, which every scheduler
//     serializes.
//   - Structure locking: the path/fd tables are guarded by one RWMutex
//     for map-structure safety; per-inode field access needs no lock
//     because the schedulers serialize same-key commands.
//   - Declared-path verification: fd-based calls (read, write,
//     release*) verify that the fd actually belongs to the path the
//     client declared for routing; a mismatch is EBADF. Without this a
//     misrouted fd operation could race another path's serialized
//     history and diverge replicas.
package netfs

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Errno is a NetFS error code (a small subset of POSIX).
type Errno byte

// NetFS error codes.
const (
	OK Errno = iota
	ErrNoEnt
	ErrExist
	ErrNotDir
	ErrIsDir
	ErrNotEmpty
	ErrBadFd
	ErrInval
)

func (e Errno) String() string {
	switch e {
	case OK:
		return "OK"
	case ErrNoEnt:
		return "ENOENT"
	case ErrExist:
		return "EEXIST"
	case ErrNotDir:
		return "ENOTDIR"
	case ErrIsDir:
		return "EISDIR"
	case ErrNotEmpty:
		return "ENOTEMPTY"
	case ErrBadFd:
		return "EBADF"
	case ErrInval:
		return "EINVAL"
	default:
		return "E?"
	}
}

// Mode bits (simplified).
const (
	// ModeDir marks directories.
	ModeDir uint32 = 1 << 31
)

// Stat describes an inode (the lstat response).
type Stat struct {
	Ino   uint64
	Mode  uint32
	Size  uint64
	Mtime int64 // unix nanoseconds, always client-supplied (determinism)
	Atime int64
}

// inode is one file or directory. Field access is serialized by the
// scheduler's key conflicts (same path, or parent for structural
// calls); only the FS-level maps need their own lock.
type inode struct {
	ino   uint64
	mode  uint32
	mtime int64
	atime int64
	data  []byte            // files
	kids  map[string]uint64 // directories: name → ino
	nlink int
}

func (n *inode) isDir() bool { return n.mode&ModeDir != 0 }

// fdEntry is one entry of the shared file-descriptor table. The table's
// map structure is guarded by FS.mu; an entry's inode is only touched
// by calls keyed on the entry's path.
type fdEntry struct {
	n    *inode
	path string
	dir  bool
}

// FS is the in-memory file system state. Its methods implement the
// deterministic core of every NetFS command; all inputs (including
// timestamps) come from the client so replicas stay identical.
type FS struct {
	mu sync.RWMutex
	// paths maps full canonical paths to live inodes (flat resolution).
	paths map[string]*inode
	// fds is the shared descriptor table.
	fds map[uint64]*fdEntry
	// pathSeq is the per-path allocation sequence feeding deterministic
	// ino/fd numbers. Entries are never removed: a recreated path keeps
	// counting up, so numbers are never reused while an old descriptor
	// could still be live.
	pathSeq map[string]uint64
}

// NewFS creates a file system holding only the root directory.
func NewFS() *FS {
	fs := &FS{
		paths:   make(map[string]*inode),
		fds:     make(map[uint64]*fdEntry),
		pathSeq: make(map[string]uint64),
	}
	fs.paths["/"] = &inode{
		ino:   1,
		mode:  ModeDir | 0o755,
		kids:  make(map[string]uint64),
		nlink: 2,
	}
	return fs
}

// splitPath validates a CANONICAL path ("/a/b/c") and returns its
// components. Non-canonical spellings — trailing or doubled slashes,
// "." or ".." components — are rejected rather than normalised: the
// flat paths map and the scheduler's key extraction (KeyOf hashes the
// raw wire path) must agree on one spelling per object, and rejecting
// the rest keeps them trivially consistent.
func splitPath(path string) ([]string, bool) {
	if path == "" || path[0] != '/' {
		return nil, false
	}
	if path == "/" {
		return nil, true
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, false
		}
	}
	return parts, true
}

// ParentPath returns the parent directory of a canonical path ("" for
// the root, which has none, and for non-canonical paths, which every
// call rejects as EINVAL). It is string surgery only — no state
// access — so the key-set extractor shares it.
func ParentPath(path string) string {
	if path == "" || path == "/" || path[0] != '/' {
		return ""
	}
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// pathHash hashes a canonical path (the object key of NetFS keys).
func pathHash(path string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	return h.Sum64()
}

// allocSeq bumps path's allocation sequence. Callers hold the path's
// scheduler key, so the sequence each invocation observes is
// deterministic across replicas.
func (fs *FS) allocSeq(path string) uint64 {
	fs.mu.Lock()
	seq := fs.pathSeq[path] + 1
	fs.pathSeq[path] = seq
	fs.mu.Unlock()
	return seq
}

// inoFor derives a deterministic inode number from (path, sequence).
// The high bit is set so derived numbers never collide with the root's
// ino 1.
func inoFor(path string, seq uint64) uint64 {
	return mixAlloc(pathHash(path)^(seq*0x9E3779B97F4A7C15)) | 1<<63
}

// fdFor derives a deterministic descriptor from (path, sequence); the
// distinct salt keeps fd and ino spaces independent.
func fdFor(path string, seq uint64) uint64 {
	return mixAlloc(pathHash(path)^(seq*0xC2B2AE3D27D4EB4F)) | 1<<62
}

// mixAlloc is a splitmix64-style finalizer.
func mixAlloc(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// lookup resolves a canonical path to its live inode by flat map
// lookup (never an ancestor walk — see the package doc).
func (fs *FS) lookup(path string) *inode {
	fs.mu.RLock()
	n := fs.paths[path]
	fs.mu.RUnlock()
	return n
}

// resolve validates a path and resolves it.
func (fs *FS) resolve(path string) (*inode, Errno) {
	if _, ok := splitPath(path); !ok {
		return nil, ErrInval
	}
	n := fs.lookup(path)
	if n == nil {
		return nil, ErrNoEnt
	}
	return n, OK
}

// createNode allocates an inode under the parent of path. The caller
// holds the scheduler keys {path, parent}.
func (fs *FS) createNode(path string, mode uint32, mtime int64) (*inode, Errno) {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return nil, ErrInval
	}
	name := parts[len(parts)-1]
	fs.mu.RLock()
	parent := fs.paths[ParentPath(path)]
	exists := fs.paths[path]
	fs.mu.RUnlock()
	if parent == nil {
		return nil, ErrNoEnt
	}
	if !parent.isDir() {
		return nil, ErrNotDir
	}
	if exists != nil {
		return nil, ErrExist
	}
	n := &inode{
		ino:   inoFor(path, fs.allocSeq(path)),
		mode:  mode,
		mtime: mtime,
		atime: mtime,
		nlink: 1,
	}
	if n.isDir() {
		n.kids = make(map[string]uint64)
		n.nlink = 2
		parent.nlink++
	}
	fs.mu.Lock()
	fs.paths[path] = n
	fs.mu.Unlock()
	parent.kids[name] = n.ino
	parent.mtime = mtime
	return n, OK
}

// Mknod creates an empty file.
func (fs *FS) Mknod(path string, mode uint32, mtime int64) Errno {
	_, errno := fs.createNode(path, mode&^ModeDir, mtime)
	return errno
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string, mode uint32, mtime int64) Errno {
	_, errno := fs.createNode(path, mode|ModeDir, mtime)
	return errno
}

// Create makes a file and opens it, returning the new fd.
func (fs *FS) Create(path string, mode uint32, mtime int64) (uint64, Errno) {
	n, errno := fs.createNode(path, mode&^ModeDir, mtime)
	if errno != OK {
		return 0, errno
	}
	return fs.allocFD(n, path, false), OK
}

// Open opens an existing file and returns an fd.
func (fs *FS) Open(path string) (uint64, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return 0, errno
	}
	if n.isDir() {
		return 0, ErrIsDir
	}
	return fs.allocFD(n, path, false), OK
}

// Opendir opens a directory and returns an fd.
func (fs *FS) Opendir(path string) (uint64, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return 0, errno
	}
	if !n.isDir() {
		return 0, ErrNotDir
	}
	return fs.allocFD(n, path, true), OK
}

func (fs *FS) allocFD(n *inode, path string, dir bool) uint64 {
	fd := fdFor(path, fs.allocSeq(path))
	fs.mu.Lock()
	fs.fds[fd] = &fdEntry{n: n, path: path, dir: dir}
	fs.mu.Unlock()
	return fd
}

// fdEntryFor reads the descriptor table. wantPath, when non-empty, must
// match the path the descriptor was opened under — the declared-path
// verification that keeps fd-based commands inside their scheduler key.
func (fs *FS) fdEntryFor(fd uint64, wantPath string) (*fdEntry, Errno) {
	fs.mu.RLock()
	e := fs.fds[fd]
	fs.mu.RUnlock()
	if e == nil || (wantPath != "" && e.path != wantPath) {
		return nil, ErrBadFd
	}
	return e, OK
}

// Release closes a file descriptor.
func (fs *FS) Release(fd uint64) Errno { return fs.ReleasePath("", fd) }

// ReleasePath closes a descriptor, verifying the declared path when
// non-empty.
func (fs *FS) ReleasePath(path string, fd uint64) Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e := fs.fds[fd]
	if e == nil || (path != "" && e.path != path) {
		return ErrBadFd
	}
	delete(fs.fds, fd)
	return OK
}

// Releasedir closes a directory descriptor.
func (fs *FS) Releasedir(fd uint64) Errno { return fs.ReleasedirPath("", fd) }

// ReleasedirPath closes a directory descriptor, verifying the declared
// path when non-empty.
func (fs *FS) ReleasedirPath(path string, fd uint64) Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e := fs.fds[fd]
	if e == nil || !e.dir || (path != "" && e.path != path) {
		return ErrBadFd
	}
	delete(fs.fds, fd)
	return OK
}

// Unlink removes a file. The caller holds {path, parent}.
func (fs *FS) Unlink(path string, mtime int64) Errno {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return ErrInval
	}
	name := parts[len(parts)-1]
	fs.mu.RLock()
	parent := fs.paths[ParentPath(path)]
	n := fs.paths[path]
	fs.mu.RUnlock()
	if parent == nil || (parent.isDir() && n == nil) {
		return ErrNoEnt
	}
	if !parent.isDir() {
		return ErrNotDir
	}
	if n.isDir() {
		return ErrIsDir
	}
	delete(parent.kids, name)
	parent.mtime = mtime
	n.nlink--
	if n.nlink <= 0 {
		fs.mu.Lock()
		delete(fs.paths, path)
		fs.mu.Unlock()
	}
	return OK
}

// Rmdir removes an empty directory. The caller holds {path, parent}.
func (fs *FS) Rmdir(path string, mtime int64) Errno {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return ErrInval
	}
	name := parts[len(parts)-1]
	fs.mu.RLock()
	parent := fs.paths[ParentPath(path)]
	n := fs.paths[path]
	fs.mu.RUnlock()
	if parent == nil || (parent.isDir() && n == nil) {
		return ErrNoEnt
	}
	if !parent.isDir() {
		return ErrNotDir
	}
	if !n.isDir() {
		return ErrNotDir
	}
	if len(n.kids) != 0 {
		return ErrNotEmpty
	}
	delete(parent.kids, name)
	parent.nlink--
	parent.mtime = mtime
	fs.mu.Lock()
	delete(fs.paths, path)
	fs.mu.Unlock()
	return OK
}

// Utimens sets an inode's timestamps.
func (fs *FS) Utimens(path string, atime, mtime int64) Errno {
	n, errno := fs.resolve(path)
	if errno != OK {
		return errno
	}
	n.atime = atime
	n.mtime = mtime
	return OK
}

// Access checks that a path exists (permission checking is trivial in
// a single-user in-memory fs).
func (fs *FS) Access(path string) Errno {
	_, errno := fs.resolve(path)
	return errno
}

// Lstat returns an inode's metadata.
func (fs *FS) Lstat(path string) (Stat, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return Stat{}, errno
	}
	return Stat{
		Ino:   n.ino,
		Mode:  n.mode,
		Size:  uint64(len(n.data)),
		Mtime: n.mtime,
		Atime: n.atime,
	}, OK
}

// Read reads up to size bytes at offset through an open fd.
func (fs *FS) Read(fd uint64, offset uint64, size uint32) ([]byte, Errno) {
	return fs.ReadPath("", fd, offset, size)
}

// ReadPath is Read with declared-path verification (the wire path).
func (fs *FS) ReadPath(path string, fd uint64, offset uint64, size uint32) ([]byte, Errno) {
	e, errno := fs.fdEntryFor(fd, path)
	if errno != OK || e.dir {
		return nil, ErrBadFd
	}
	n := e.n
	if n.nlink <= 0 {
		return nil, ErrBadFd // unlinked while open
	}
	if offset >= uint64(len(n.data)) {
		return nil, OK
	}
	end := offset + uint64(size)
	if end > uint64(len(n.data)) {
		end = uint64(len(n.data))
	}
	return n.data[offset:end], OK
}

// Write writes data at offset through an open fd, growing the file
// (zero-filled) as needed.
func (fs *FS) Write(fd uint64, offset uint64, data []byte, mtime int64) (uint32, Errno) {
	return fs.WritePath("", fd, offset, data, mtime)
}

// WritePath is Write with declared-path verification (the wire path).
func (fs *FS) WritePath(path string, fd uint64, offset uint64, data []byte, mtime int64) (uint32, Errno) {
	e, errno := fs.fdEntryFor(fd, path)
	if errno != OK || e.dir {
		return 0, ErrBadFd
	}
	n := e.n
	if n.nlink <= 0 {
		return 0, ErrBadFd
	}
	end := offset + uint64(len(data))
	if end < offset {
		return 0, ErrInval // offset+len overflow: no representable extent
	}
	if end > uint64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[offset:end], data)
	n.mtime = mtime
	return uint32(len(data)), OK
}

// Readdir lists a directory's entries in sorted order.
func (fs *FS) Readdir(path string) ([]string, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return nil, errno
	}
	if !n.isDir() {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, OK
}

// Clone returns a deep copy of the file system: inodes (including
// unlinked-but-open ones reachable only through the descriptor table),
// file contents, directory entries, the descriptor table and the
// allocation sequences. The copy shares no mutable state with the
// original. Call it only when the FS is quiescent under its service's
// concurrency contract (the optimistic executor drains the engine
// before cloning).
func (fs *FS) Clone() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	clone := &FS{
		paths:   make(map[string]*inode, len(fs.paths)),
		fds:     make(map[uint64]*fdEntry, len(fs.fds)),
		pathSeq: make(map[string]uint64, len(fs.pathSeq)),
	}
	copied := make(map[*inode]*inode, len(fs.paths))
	copyInode := func(n *inode) *inode {
		if c, ok := copied[n]; ok {
			return c
		}
		c := &inode{
			ino:   n.ino,
			mode:  n.mode,
			mtime: n.mtime,
			atime: n.atime,
			nlink: n.nlink,
		}
		if n.data != nil {
			c.data = append([]byte(nil), n.data...)
		}
		if n.kids != nil {
			c.kids = make(map[string]uint64, len(n.kids))
			for name, ino := range n.kids {
				c.kids[name] = ino
			}
		}
		copied[n] = c
		return c
	}
	for path, n := range fs.paths {
		clone.paths[path] = copyInode(n)
	}
	for fd, e := range fs.fds {
		// The entry's inode may be unlinked (reachable only here).
		clone.fds[fd] = &fdEntry{n: copyInode(e.n), path: e.path, dir: e.dir}
	}
	for path, seq := range fs.pathSeq {
		clone.pathSeq[path] = seq
	}
	return clone
}

// Fingerprint folds the whole file system — paths, inode metadata,
// file contents, directory entries, descriptor table, allocation
// sequences — into one value, for state-convergence checks in tests.
// Only call on a quiescent FS.
func (fs *FS) Fingerprint() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211
	}
	mixU := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	paths := make([]string, 0, len(fs.paths))
	for p := range fs.paths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		n := fs.paths[p]
		mix(p)
		mixU(n.ino)
		mixU(uint64(n.mode))
		mixU(uint64(n.mtime))
		mixU(uint64(n.atime))
		mixU(uint64(n.nlink))
		mixU(uint64(len(n.data)))
		for _, b := range n.data {
			h = (h ^ uint64(b)) * 1099511628211
		}
		kids := make([]string, 0, len(n.kids))
		for k := range n.kids {
			kids = append(kids, k)
		}
		sort.Strings(kids)
		for _, k := range kids {
			mix(k)
			mixU(n.kids[k])
		}
	}
	fds := make([]uint64, 0, len(fs.fds))
	for fd := range fs.fds {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i] < fds[j] })
	for _, fd := range fds {
		e := fs.fds[fd]
		mixU(fd)
		mix(e.path)
		mixU(e.n.ino)
	}
	seqPaths := make([]string, 0, len(fs.pathSeq))
	for p := range fs.pathSeq {
		seqPaths = append(seqPaths, p)
	}
	sort.Strings(seqPaths)
	for _, p := range seqPaths {
		mix(p)
		mixU(fs.pathSeq[p])
	}
	return h
}

// OpenFDs returns the number of open descriptors (for tests).
func (fs *FS) OpenFDs() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.fds)
}

// Inodes returns the number of live inodes (for tests): every live
// inode has exactly one paths entry.
func (fs *FS) Inodes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.paths)
}
