// Package netfs implements NetFS, the paper's replicated networked
// file system (§V-B, §VI-C): an in-memory inode file system driven by
// a FUSE-like command set, with lz4-compressed request/response
// payloads and per-path parallelism.
//
// Dependency structure (paper §V-B): calls that change the file-system
// tree or the shared file-descriptor table — create, mknod, mkdir,
// unlink, rmdir, open, utimens, release, opendir, releasedir — depend
// on all calls. access, lstat, read, write and readdir depend on those
// and on each other when they name the same path; on different paths
// they run in parallel.
package netfs

import (
	"sort"
	"strings"
)

// Errno is a NetFS error code (a small subset of POSIX).
type Errno byte

// NetFS error codes.
const (
	OK Errno = iota
	ErrNoEnt
	ErrExist
	ErrNotDir
	ErrIsDir
	ErrNotEmpty
	ErrBadFd
	ErrInval
)

func (e Errno) String() string {
	switch e {
	case OK:
		return "OK"
	case ErrNoEnt:
		return "ENOENT"
	case ErrExist:
		return "EEXIST"
	case ErrNotDir:
		return "ENOTDIR"
	case ErrIsDir:
		return "EISDIR"
	case ErrNotEmpty:
		return "ENOTEMPTY"
	case ErrBadFd:
		return "EBADF"
	case ErrInval:
		return "EINVAL"
	default:
		return "E?"
	}
}

// Mode bits (simplified).
const (
	// ModeDir marks directories.
	ModeDir uint32 = 1 << 31
)

// Stat describes an inode (the lstat response).
type Stat struct {
	Ino   uint64
	Mode  uint32
	Size  uint64
	Mtime int64 // unix nanoseconds, always client-supplied (determinism)
	Atime int64
}

// inode is one file or directory.
type inode struct {
	ino   uint64
	mode  uint32
	mtime int64
	atime int64
	data  []byte            // files
	kids  map[string]uint64 // directories: name → ino
	nlink int
}

func (n *inode) isDir() bool { return n.mode&ModeDir != 0 }

// fdEntry is one entry of the shared file-descriptor table. The table
// is read concurrently by per-path commands and mutated only by
// globally serialized commands (open/release and friends), matching
// the paper's synchronization argument for making those calls depend
// on everything.
type fdEntry struct {
	ino  uint64
	path string
	dir  bool
}

// FS is the in-memory file system state. Its methods implement the
// deterministic core of every NetFS command; all inputs (including
// timestamps) come from the client so replicas stay identical.
type FS struct {
	inodes  map[uint64]*inode
	nextIno uint64
	fds     map[uint64]*fdEntry
	nextFD  uint64
}

// NewFS creates a file system holding only the root directory.
func NewFS() *FS {
	fs := &FS{
		inodes:  make(map[uint64]*inode),
		fds:     make(map[uint64]*fdEntry),
		nextIno: 1,
		nextFD:  1,
	}
	fs.inodes[1] = &inode{
		ino:   1,
		mode:  ModeDir | 0o755,
		kids:  make(map[string]uint64),
		nlink: 2,
	}
	fs.nextIno = 2
	return fs
}

// splitPath normalises "/a/b/c" into its components.
func splitPath(path string) ([]string, bool) {
	if path == "" || path[0] != '/' {
		return nil, false
	}
	if path == "/" {
		return nil, true
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, false
		}
	}
	return parts, true
}

// resolve walks to the inode at path.
func (fs *FS) resolve(path string) (*inode, Errno) {
	parts, ok := splitPath(path)
	if !ok {
		return nil, ErrInval
	}
	cur := fs.inodes[1]
	for _, part := range parts {
		if !cur.isDir() {
			return nil, ErrNotDir
		}
		ino, ok := cur.kids[part]
		if !ok {
			return nil, ErrNoEnt
		}
		cur = fs.inodes[ino]
	}
	return cur, OK
}

// resolveParent walks to the parent directory of path and returns the
// final name component.
func (fs *FS) resolveParent(path string) (*inode, string, Errno) {
	parts, ok := splitPath(path)
	if !ok || len(parts) == 0 {
		return nil, "", ErrInval
	}
	cur := fs.inodes[1]
	for _, part := range parts[:len(parts)-1] {
		if !cur.isDir() {
			return nil, "", ErrNotDir
		}
		ino, ok := cur.kids[part]
		if !ok {
			return nil, "", ErrNoEnt
		}
		cur = fs.inodes[ino]
	}
	if !cur.isDir() {
		return nil, "", ErrNotDir
	}
	return cur, parts[len(parts)-1], OK
}

// createNode allocates an inode under the parent of path.
func (fs *FS) createNode(path string, mode uint32, mtime int64) (*inode, Errno) {
	parent, name, errno := fs.resolveParent(path)
	if errno != OK {
		return nil, errno
	}
	if _, exists := parent.kids[name]; exists {
		return nil, ErrExist
	}
	n := &inode{
		ino:   fs.nextIno,
		mode:  mode,
		mtime: mtime,
		atime: mtime,
		nlink: 1,
	}
	if n.isDir() {
		n.kids = make(map[string]uint64)
		n.nlink = 2
		parent.nlink++
	}
	fs.nextIno++
	fs.inodes[n.ino] = n
	parent.kids[name] = n.ino
	parent.mtime = mtime
	return n, OK
}

// Mknod creates an empty file.
func (fs *FS) Mknod(path string, mode uint32, mtime int64) Errno {
	_, errno := fs.createNode(path, mode&^ModeDir, mtime)
	return errno
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string, mode uint32, mtime int64) Errno {
	_, errno := fs.createNode(path, mode|ModeDir, mtime)
	return errno
}

// Create makes a file and opens it, returning the new fd.
func (fs *FS) Create(path string, mode uint32, mtime int64) (uint64, Errno) {
	n, errno := fs.createNode(path, mode&^ModeDir, mtime)
	if errno != OK {
		return 0, errno
	}
	return fs.allocFD(n, path, false), OK
}

// Open opens an existing file and returns an fd.
func (fs *FS) Open(path string) (uint64, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return 0, errno
	}
	if n.isDir() {
		return 0, ErrIsDir
	}
	return fs.allocFD(n, path, false), OK
}

// Opendir opens a directory and returns an fd.
func (fs *FS) Opendir(path string) (uint64, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return 0, errno
	}
	if !n.isDir() {
		return 0, ErrNotDir
	}
	return fs.allocFD(n, path, true), OK
}

func (fs *FS) allocFD(n *inode, path string, dir bool) uint64 {
	fd := fs.nextFD
	fs.nextFD++
	fs.fds[fd] = &fdEntry{ino: n.ino, path: path, dir: dir}
	return fd
}

// Release closes a file descriptor.
func (fs *FS) Release(fd uint64) Errno {
	if _, ok := fs.fds[fd]; !ok {
		return ErrBadFd
	}
	delete(fs.fds, fd)
	return OK
}

// Releasedir closes a directory descriptor.
func (fs *FS) Releasedir(fd uint64) Errno {
	e, ok := fs.fds[fd]
	if !ok || !e.dir {
		return ErrBadFd
	}
	delete(fs.fds, fd)
	return OK
}

// Unlink removes a file.
func (fs *FS) Unlink(path string, mtime int64) Errno {
	parent, name, errno := fs.resolveParent(path)
	if errno != OK {
		return errno
	}
	ino, ok := parent.kids[name]
	if !ok {
		return ErrNoEnt
	}
	n := fs.inodes[ino]
	if n.isDir() {
		return ErrIsDir
	}
	delete(parent.kids, name)
	parent.mtime = mtime
	n.nlink--
	if n.nlink <= 0 {
		delete(fs.inodes, ino)
	}
	return OK
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string, mtime int64) Errno {
	parent, name, errno := fs.resolveParent(path)
	if errno != OK {
		return errno
	}
	ino, ok := parent.kids[name]
	if !ok {
		return ErrNoEnt
	}
	n := fs.inodes[ino]
	if !n.isDir() {
		return ErrNotDir
	}
	if len(n.kids) != 0 {
		return ErrNotEmpty
	}
	delete(parent.kids, name)
	parent.nlink--
	parent.mtime = mtime
	delete(fs.inodes, ino)
	return OK
}

// Utimens sets an inode's timestamps.
func (fs *FS) Utimens(path string, atime, mtime int64) Errno {
	n, errno := fs.resolve(path)
	if errno != OK {
		return errno
	}
	n.atime = atime
	n.mtime = mtime
	return OK
}

// Access checks that a path exists (permission checking is trivial in
// a single-user in-memory fs).
func (fs *FS) Access(path string) Errno {
	_, errno := fs.resolve(path)
	return errno
}

// Lstat returns an inode's metadata.
func (fs *FS) Lstat(path string) (Stat, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return Stat{}, errno
	}
	return Stat{
		Ino:   n.ino,
		Mode:  n.mode,
		Size:  uint64(len(n.data)),
		Mtime: n.mtime,
		Atime: n.atime,
	}, OK
}

// Read reads up to size bytes at offset through an open fd.
func (fs *FS) Read(fd uint64, offset uint64, size uint32) ([]byte, Errno) {
	e, ok := fs.fds[fd]
	if !ok || e.dir {
		return nil, ErrBadFd
	}
	n, ok := fs.inodes[e.ino]
	if !ok {
		return nil, ErrBadFd
	}
	if offset >= uint64(len(n.data)) {
		return nil, OK
	}
	end := offset + uint64(size)
	if end > uint64(len(n.data)) {
		end = uint64(len(n.data))
	}
	return n.data[offset:end], OK
}

// Write writes data at offset through an open fd, growing the file
// (zero-filled) as needed.
func (fs *FS) Write(fd uint64, offset uint64, data []byte, mtime int64) (uint32, Errno) {
	e, ok := fs.fds[fd]
	if !ok || e.dir {
		return 0, ErrBadFd
	}
	n, ok := fs.inodes[e.ino]
	if !ok {
		return 0, ErrBadFd
	}
	end := offset + uint64(len(data))
	if end > uint64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[offset:end], data)
	n.mtime = mtime
	return uint32(len(data)), OK
}

// Readdir lists a directory's entries in sorted order.
func (fs *FS) Readdir(path string) ([]string, Errno) {
	n, errno := fs.resolve(path)
	if errno != OK {
		return nil, errno
	}
	if !n.isDir() {
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(n.kids))
	for name := range n.kids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, OK
}

// OpenFDs returns the number of open descriptors (for tests).
func (fs *FS) OpenFDs() int { return len(fs.fds) }

// Inodes returns the number of live inodes (for tests).
func (fs *FS) Inodes() int { return len(fs.inodes) }
