package netfs

import (
	"encoding/binary"
	"hash/fnv"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/lz4"
	"github.com/psmr/psmr/internal/mvstore"
)

// Command identifiers of the NetFS service (the paper's FUSE subset,
// §V-B).
const (
	CmdCreate command.ID = iota + 1
	CmdMknod
	CmdMkdir
	CmdUnlink
	CmdRmdir
	CmdOpen
	CmdUtimens
	CmdRelease
	CmdOpendir
	CmdReleasedir
	CmdAccess
	CmdLstat
	CmdRead
	CmdWrite
	CmdReaddir
)

// Input wire format: [2B path length][path][lz4-packed args]. The path
// prefix stays uncompressed so destination groups and scheduler
// conflicts can be derived without decompressing; the argument payload
// is compressed by the client proxy and decompressed by the executing
// worker thread, and responses travel compressed the other way —
// exactly the paper's compression path (§VI-C).

// EncodeInput builds a command input from a path and raw arguments.
func EncodeInput(path string, args []byte) []byte {
	buf := make([]byte, 0, 2+len(path)+5+lz4.CompressBound(len(args)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(path)))
	buf = append(buf, path...)
	return append(buf, lz4.Pack(args)...)
}

// DecodeInput splits a command input into its path and decompressed
// arguments.
func DecodeInput(input []byte) (path string, args []byte, ok bool) {
	if len(input) < 2 {
		return "", nil, false
	}
	pl := int(binary.LittleEndian.Uint16(input[:2]))
	if len(input) < 2+pl {
		return "", nil, false
	}
	path = string(input[2 : 2+pl])
	args, err := lz4.Unpack(input[2+pl:])
	if err != nil {
		return "", nil, false
	}
	return path, args, true
}

// KeyOf hashes the path prefix of a command input (the cdep.KeyFunc of
// every single-key NetFS command). Same path → same key → same group.
func KeyOf(input []byte) (uint64, bool) {
	if len(input) < 2 {
		return 0, false
	}
	pl := int(binary.LittleEndian.Uint16(input[:2]))
	if len(input) < 2+pl {
		return 0, false
	}
	h := fnv.New64a()
	_, _ = h.Write(input[2 : 2+pl])
	return h.Sum64(), true
}

// KeySetOf extracts the {path, parent-directory} key set of a
// structural command input (the cdep.KeySetFunc of create, mknod,
// mkdir, unlink and rmdir): those calls mutate the named inode AND the
// parent's entry list, and nothing else. The root has no parent, so
// operations naming "/" carry a singleton set. Like KeyOf, it reads
// only the uncompressed path prefix.
func KeySetOf(input []byte) ([]uint64, bool) {
	if len(input) < 2 {
		return nil, false
	}
	pl := int(binary.LittleEndian.Uint16(input[:2]))
	if len(input) < 2+pl {
		return nil, false
	}
	path := string(input[2 : 2+pl])
	keys := []uint64{pathHash(path)}
	if parent := ParentPath(path); parent != "" {
		keys = append(keys, pathHash(parent))
	}
	return keys, true
}

// Service adapts FS to command.Service, handling the compressed wire
// format. Compression work happens inside Execute, i.e. on the worker
// threads, matching where the paper accounts it.
type Service struct {
	fs *FS
}

// NewService creates a NetFS state machine.
func NewService() *Service {
	return &Service{fs: NewFS()}
}

// FS exposes the underlying file system (tests, direct inspection).
func (s *Service) FS() *FS { return s.fs }

var _ command.Service = (*Service)(nil)
var _ command.Versioned = (*Service)(nil)

// Execute implements command.Service.
func (s *Service) Execute(cmd command.ID, input []byte) []byte {
	return s.SpeculateAt(mvstore.Committed, cmd, input)
}

// SpeculateAt implements command.Versioned: the command executes
// against epoch e's view of the versioned file system, landing every
// mutation — inode edits, descriptor allocation, sequence bumps — as
// uncommitted versions. Abort(e) drops exactly those versions, so a
// rolled-back NetFS speculation costs O(paths it touched) instead of
// the old whole-state clone+replay.
func (s *Service) SpeculateAt(e mvstore.Epoch, cmd command.ID, input []byte) []byte {
	path, args, ok := DecodeInput(input)
	if !ok {
		return lz4.Pack([]byte{byte(ErrInval)})
	}
	return lz4.Pack(s.apply(e, cmd, path, args))
}

// Commit implements command.Versioned.
func (s *Service) Commit(e mvstore.Epoch) { s.fs.Commit(e) }

// Abort implements command.Versioned.
func (s *Service) Abort(e mvstore.Epoch) { s.fs.Abort(e) }

// Uncommitted implements command.Versioned.
func (s *Service) Uncommitted() int { return s.fs.Uncommitted() }

// apply runs one decompressed command at epoch e and builds the raw
// response.
func (s *Service) apply(e mvstore.Epoch, cmd command.ID, path string, args []byte) []byte {
	switch cmd {
	case CmdCreate:
		mode, mtime, ok := decodeModeTime(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		fd, errno := s.fs.CreateAt(e, path, mode, mtime)
		return appendFD(errno, fd)
	case CmdMknod:
		mode, mtime, ok := decodeModeTime(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		return []byte{byte(s.fs.MknodAt(e, path, mode, mtime))}
	case CmdMkdir:
		mode, mtime, ok := decodeModeTime(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		return []byte{byte(s.fs.MkdirAt(e, path, mode, mtime))}
	case CmdUnlink:
		mtime, ok := decodeTime(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		return []byte{byte(s.fs.UnlinkAt(e, path, mtime))}
	case CmdRmdir:
		mtime, ok := decodeTime(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		return []byte{byte(s.fs.RmdirAt(e, path, mtime))}
	case CmdOpen:
		fd, errno := s.fs.OpenAt(e, path)
		return appendFD(errno, fd)
	case CmdUtimens:
		if len(args) < 16 {
			return []byte{byte(ErrInval)}
		}
		atime := int64(binary.LittleEndian.Uint64(args[:8]))
		mtime := int64(binary.LittleEndian.Uint64(args[8:16]))
		return []byte{byte(s.fs.UtimensAt(e, path, atime, mtime))}
	case CmdRelease:
		fd, ok := decodeFD(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		if path == "" {
			// An empty declared path would bypass the fd-to-path
			// verification that keeps this call inside its scheduler
			// key; the descriptor cannot be valid.
			return []byte{byte(ErrBadFd)}
		}
		return []byte{byte(s.fs.ReleasePathAt(e, path, fd))}
	case CmdOpendir:
		fd, errno := s.fs.OpendirAt(e, path)
		return appendFD(errno, fd)
	case CmdReleasedir:
		fd, ok := decodeFD(args)
		if !ok {
			return []byte{byte(ErrInval)}
		}
		if path == "" {
			return []byte{byte(ErrBadFd)}
		}
		return []byte{byte(s.fs.ReleasedirPathAt(e, path, fd))}
	case CmdAccess:
		return []byte{byte(s.fs.AccessAt(e, path))}
	case CmdLstat:
		st, errno := s.fs.LstatAt(e, path)
		if errno != OK {
			return []byte{byte(errno)}
		}
		out := make([]byte, 1, 1+8+4+8+8+8)
		out[0] = byte(OK)
		out = binary.LittleEndian.AppendUint64(out, st.Ino)
		out = binary.LittleEndian.AppendUint32(out, st.Mode)
		out = binary.LittleEndian.AppendUint64(out, st.Size)
		out = binary.LittleEndian.AppendUint64(out, uint64(st.Mtime))
		out = binary.LittleEndian.AppendUint64(out, uint64(st.Atime))
		return out
	case CmdRead:
		if len(args) < 20 {
			return []byte{byte(ErrInval)}
		}
		if path == "" {
			return []byte{byte(ErrBadFd)}
		}
		fd := binary.LittleEndian.Uint64(args[:8])
		offset := binary.LittleEndian.Uint64(args[8:16])
		size := binary.LittleEndian.Uint32(args[16:20])
		data, errno := s.fs.ReadPathAt(e, path, fd, offset, size)
		if errno != OK {
			return []byte{byte(errno)}
		}
		out := make([]byte, 1+len(data))
		out[0] = byte(OK)
		copy(out[1:], data)
		return out
	case CmdWrite:
		if len(args) < 24 {
			return []byte{byte(ErrInval)}
		}
		if path == "" {
			return []byte{byte(ErrBadFd)}
		}
		fd := binary.LittleEndian.Uint64(args[:8])
		offset := binary.LittleEndian.Uint64(args[8:16])
		mtime := int64(binary.LittleEndian.Uint64(args[16:24]))
		n, errno := s.fs.WritePathAt(e, path, fd, offset, args[24:], mtime)
		if errno != OK {
			return []byte{byte(errno)}
		}
		out := make([]byte, 1, 5)
		out[0] = byte(OK)
		return binary.LittleEndian.AppendUint32(out, n)
	case CmdReaddir:
		names, errno := s.fs.ReaddirAt(e, path)
		if errno != OK {
			return []byte{byte(errno)}
		}
		out := make([]byte, 1, 16)
		out[0] = byte(OK)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(names)))
		for _, name := range names {
			out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
			out = append(out, name...)
		}
		return out
	default:
		return []byte{byte(ErrInval)}
	}
}

func appendFD(errno Errno, fd uint64) []byte {
	if errno != OK {
		return []byte{byte(errno)}
	}
	out := make([]byte, 1, 9)
	out[0] = byte(OK)
	return binary.LittleEndian.AppendUint64(out, fd)
}

func decodeModeTime(args []byte) (mode uint32, mtime int64, ok bool) {
	if len(args) < 12 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint32(args[:4]), int64(binary.LittleEndian.Uint64(args[4:12])), true
}

func decodeTime(args []byte) (int64, bool) {
	if len(args) < 8 {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(args[:8])), true
}

func decodeFD(args []byte) (uint64, bool) {
	if len(args) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(args[:8]), true
}

// Spec returns NetFS's C-Dep, rewritten from the paper's §V-B original
// around key-set scheduling: NO NetFS command depends on all commands
// anymore.
//
//   - Structural calls (create, mknod, mkdir, unlink, rmdir) key on the
//     SET {path, parent-dir} (KeySetOf): they mutate the named inode
//     and the parent's entry list, nothing else. They compile to
//     RouteMultiKey instead of the paper's synchronous mode.
//   - open, utimens, release, opendir, releasedir and write are
//     single-path writers (the descriptor table and inode content are
//     per-path deterministic, see fs.go).
//   - access, lstat, read and readdir are per-path read-only: they
//     conflict with same-path writers but not with each other, so the
//     engines' reader sets let them overlap.
//
// The only invocations left in synchronous mode are the truly
// unpredictable ones: inputs whose path cannot be parsed (the keyless
// fallback both engines and the client C-G already apply).
func Spec() cdep.Spec {
	structural := []command.ID{CmdCreate, CmdMknod, CmdMkdir, CmdUnlink, CmdRmdir}
	pathWriters := []command.ID{
		CmdOpen, CmdUtimens, CmdRelease, CmdOpendir, CmdReleasedir, CmdWrite,
	}
	readers := []command.ID{CmdAccess, CmdLstat, CmdRead, CmdReaddir}

	// Command order is fixed: the compiled classification must be
	// identical in every process of a deployment.
	ordered := []cdep.Command{
		{ID: CmdCreate, Name: "create", KeySet: KeySetOf},
		{ID: CmdMknod, Name: "mknod", KeySet: KeySetOf},
		{ID: CmdMkdir, Name: "mkdir", KeySet: KeySetOf},
		{ID: CmdUnlink, Name: "unlink", KeySet: KeySetOf},
		{ID: CmdRmdir, Name: "rmdir", KeySet: KeySetOf},
		{ID: CmdOpen, Name: "open", Key: KeyOf},
		{ID: CmdUtimens, Name: "utimens", Key: KeyOf},
		{ID: CmdRelease, Name: "release", Key: KeyOf},
		{ID: CmdOpendir, Name: "opendir", Key: KeyOf},
		{ID: CmdReleasedir, Name: "releasedir", Key: KeyOf},
		{ID: CmdAccess, Name: "access", Key: KeyOf},
		{ID: CmdLstat, Name: "lstat", Key: KeyOf},
		{ID: CmdRead, Name: "read", Key: KeyOf},
		{ID: CmdWrite, Name: "write", Key: KeyOf},
		{ID: CmdReaddir, Name: "readdir", Key: KeyOf},
	}
	var spec cdep.Spec
	spec.Commands = ordered
	// Every writer conflicts with every command touching an overlapping
	// key set (itself included); readers conflict only with writers.
	writers := append(append([]command.ID{}, structural...), pathWriters...)
	all := append(append([]command.ID{}, writers...), readers...)
	for i, w := range writers {
		for _, other := range all[i:] {
			spec.Deps = append(spec.Deps, cdep.Dep{A: w, B: other, SameKey: true})
		}
	}
	return spec
}
