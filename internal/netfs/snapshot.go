package netfs

// Checkpoint support: the whole FS — live inodes, unlinked-but-open
// inodes reachable only through the descriptor table, file contents,
// directory entries, the descriptor table itself and the per-path
// allocation sequences — serializes to one deterministic byte string.
// Everything the Fingerprint folds is covered, so a restored FS is
// fingerprint-identical to the snapshotted one, and replicas holding
// the same state produce byte-identical snapshots (paths, kids, fds
// and sequences are emitted in sorted order).

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/psmr/psmr/internal/command"
)

// fsSnapshotVersion tags the FS snapshot encoding.
const fsSnapshotVersion = 1

// Snapshot implements the state half of command.Snapshotter for the
// service. Only call on a quiescent FS.
func (fs *FS) Snapshot() []byte {
	fs.mu.RLock()
	defer fs.mu.RUnlock()

	buf := []byte{fsSnapshotVersion}
	putStr := func(s string) {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	putInode := func(n *inode) {
		buf = binary.LittleEndian.AppendUint64(buf, n.ino)
		buf = binary.LittleEndian.AppendUint32(buf, n.mode)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.mtime))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.atime))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.nlink))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.data)))
		buf = append(buf, n.data...)
		kids := make([]string, 0, len(n.kids))
		for name := range n.kids {
			kids = append(kids, name)
		}
		sort.Strings(kids)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(kids)))
		for _, name := range kids {
			putStr(name)
			buf = binary.LittleEndian.AppendUint64(buf, n.kids[name])
		}
	}

	// Live inodes, by path.
	paths := make([]string, 0, len(fs.paths))
	for p := range fs.paths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(paths)))
	for _, p := range paths {
		putStr(p)
		putInode(fs.paths[p])
	}

	// Orphan inodes: unlinked but still open, reachable only through
	// the descriptor table. Two descriptors may share one orphan, so
	// orphans are emitted once and referenced by index (sorted by ino;
	// inos derive from (path, sequence) hashes, so ties are vanishingly
	// unlikely and broken by size/mtime for determinism hygiene).
	orphanIdx := make(map[*inode]uint32)
	var orphans []*inode
	fdList := make([]uint64, 0, len(fs.fds))
	for fd, e := range fs.fds {
		fdList = append(fdList, fd)
		if fs.paths[e.path] != e.n {
			if _, seen := orphanIdx[e.n]; !seen {
				orphanIdx[e.n] = 0 // placeholder; assigned after sorting
				orphans = append(orphans, e.n)
			}
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		a, b := orphans[i], orphans[j]
		if a.ino != b.ino {
			return a.ino < b.ino
		}
		if len(a.data) != len(b.data) {
			return len(a.data) < len(b.data)
		}
		return a.mtime < b.mtime
	})
	for i, n := range orphans {
		orphanIdx[n] = uint32(i)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(orphans)))
	for _, n := range orphans {
		putInode(n)
	}

	// Descriptor table, by fd.
	sort.Slice(fdList, func(i, j int) bool { return fdList[i] < fdList[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fdList)))
	for _, fd := range fdList {
		e := fs.fds[fd]
		buf = binary.LittleEndian.AppendUint64(buf, fd)
		putStr(e.path)
		var flags byte
		if e.dir {
			flags |= 1
		}
		ref := uint32(0)
		if fs.paths[e.path] != e.n {
			flags |= 2 // orphan reference
			ref = orphanIdx[e.n]
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint32(buf, ref)
	}

	// Allocation sequences, by path.
	seqPaths := make([]string, 0, len(fs.pathSeq))
	for p := range fs.pathSeq {
		seqPaths = append(seqPaths, p)
	}
	sort.Strings(seqPaths)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seqPaths)))
	for _, p := range seqPaths {
		putStr(p)
		buf = binary.LittleEndian.AppendUint64(buf, fs.pathSeq[p])
	}
	return buf
}

// fsSnapshotReader decodes the snapshot stream.
type fsSnapshotReader struct {
	rest []byte
	err  error
}

func (r *fsSnapshotReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("netfs: truncated snapshot")
	}
	r.rest = nil
}

func (r *fsSnapshotReader) u16() uint16 {
	if len(r.rest) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.rest)
	r.rest = r.rest[2:]
	return v
}

func (r *fsSnapshotReader) u32() uint32 {
	if len(r.rest) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.rest)
	r.rest = r.rest[4:]
	return v
}

func (r *fsSnapshotReader) u64() uint64 {
	if len(r.rest) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.rest)
	r.rest = r.rest[8:]
	return v
}

func (r *fsSnapshotReader) str() string {
	n := int(r.u16())
	if len(r.rest) < n {
		r.fail()
		return ""
	}
	s := string(r.rest[:n])
	r.rest = r.rest[n:]
	return s
}

func (r *fsSnapshotReader) bytes(n int) []byte {
	if len(r.rest) < n {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.rest[:n]...)
	r.rest = r.rest[n:]
	return b
}

func (r *fsSnapshotReader) inode() *inode {
	n := &inode{
		ino:  r.u64(),
		mode: r.u32(),
	}
	n.mtime = int64(r.u64())
	n.atime = int64(r.u64())
	n.nlink = int(int32(r.u32()))
	n.data = r.bytes(int(r.u32()))
	kidCount := int(r.u32())
	if kidCount > 0 {
		n.kids = make(map[string]uint64, kidCount)
		for i := 0; i < kidCount; i++ {
			name := r.str()
			n.kids[name] = r.u64()
		}
	} else if n.isDir() {
		n.kids = make(map[string]uint64)
	}
	if len(n.data) == 0 {
		n.data = nil
	}
	return n
}

// Restore replaces the entire FS state with a snapshot's.
func (fs *FS) Restore(snap []byte) error {
	if len(snap) < 1 || snap[0] != fsSnapshotVersion {
		return fmt.Errorf("netfs: bad snapshot header")
	}
	r := &fsSnapshotReader{rest: snap[1:]}

	paths := make(map[string]*inode)
	for i, count := 0, int(r.u32()); i < count && r.err == nil; i++ {
		p := r.str()
		paths[p] = r.inode()
	}
	orphanCount := int(r.u32())
	orphans := make([]*inode, 0, orphanCount)
	for i := 0; i < orphanCount && r.err == nil; i++ {
		orphans = append(orphans, r.inode())
	}
	fds := make(map[uint64]*fdEntry)
	for i, count := 0, int(r.u32()); i < count && r.err == nil; i++ {
		fd := r.u64()
		path := r.str()
		if len(r.rest) < 1 {
			r.fail()
			break
		}
		flags := r.rest[0]
		r.rest = r.rest[1:]
		ref := r.u32()
		e := &fdEntry{path: path, dir: flags&1 != 0}
		if flags&2 != 0 {
			if int(ref) >= len(orphans) {
				return fmt.Errorf("netfs: snapshot fd %d references orphan %d/%d", fd, ref, len(orphans))
			}
			e.n = orphans[ref]
		} else {
			e.n = paths[path]
			if e.n == nil {
				return fmt.Errorf("netfs: snapshot fd %d references missing path %q", fd, path)
			}
		}
		fds[fd] = e
	}
	pathSeq := make(map[string]uint64)
	for i, count := 0, int(r.u32()); i < count && r.err == nil; i++ {
		p := r.str()
		pathSeq[p] = r.u64()
	}
	if r.err != nil {
		return r.err
	}
	if len(r.rest) != 0 {
		return fmt.Errorf("netfs: %d trailing snapshot bytes", len(r.rest))
	}
	fs.mu.Lock()
	fs.paths = paths
	fs.fds = fds
	fs.pathSeq = pathSeq
	fs.mu.Unlock()
	return nil
}

// Snapshot implements command.Snapshotter.
func (s *Service) Snapshot() []byte { return s.fs.Snapshot() }

// Restore implements command.Snapshotter.
func (s *Service) Restore(snap []byte) error { return s.fs.Restore(snap) }

var _ command.Snapshotter = (*Service)(nil)
