package netfs

// Checkpoint support: the committed FS — live inodes, file contents,
// directory entries, the descriptor table and the per-path allocation
// sequences — serializes to one deterministic byte string. Everything
// the Fingerprint folds is covered, so a restored FS is
// fingerprint-identical to the snapshotted one, and replicas holding
// the same state produce byte-identical snapshots (paths, kids, fds
// and sequences are emitted in sorted order).
//
// Version 2 (the mvstore refactor): descriptor records carry their
// inode NUMBER instead of a pointer reference, so the v1 orphan-inode
// section is gone — an unlinked-but-open descriptor simply no longer
// resolves (EBADF), matching execution semantics, and a snapshot never
// carries unreachable file contents. Snapshots read only committed
// versions (mvstore.RangeCommitted); uncommitted speculation is
// invisible by construction.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/mvstore"
)

// fsSnapshotVersion tags the FS snapshot encoding.
const fsSnapshotVersion = 2

// Snapshot implements the state half of command.Snapshotter for the
// service. Only call on a quiescent FS; only committed state is
// captured.
func (fs *FS) Snapshot() []byte {
	buf := []byte{fsSnapshotVersion}
	putStr := func(s string) {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	putInode := func(n *inode) {
		buf = binary.LittleEndian.AppendUint64(buf, n.ino)
		buf = binary.LittleEndian.AppendUint32(buf, n.mode)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.mtime))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.atime))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.nlink))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.data)))
		buf = append(buf, n.data...)
		kids := make([]string, 0, len(n.kids))
		for name := range n.kids {
			kids = append(kids, name)
		}
		sort.Strings(kids)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(kids)))
		for _, name := range kids {
			putStr(name)
			buf = binary.LittleEndian.AppendUint64(buf, n.kids[name])
		}
	}

	// Live inodes, by path.
	pathInodes := make(map[string]*inode)
	fs.paths.RangeCommitted(func(p string, n *inode) bool {
		pathInodes[p] = n
		return true
	})
	paths := make([]string, 0, len(pathInodes))
	for p := range pathInodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(paths)))
	for _, p := range paths {
		putStr(p)
		putInode(pathInodes[p])
	}

	// Descriptor table, by fd.
	fdEntries := make(map[uint64]fdEntry)
	fs.fds.RangeCommitted(func(fd uint64, e fdEntry) bool {
		fdEntries[fd] = e
		return true
	})
	fdList := make([]uint64, 0, len(fdEntries))
	for fd := range fdEntries {
		fdList = append(fdList, fd)
	}
	sort.Slice(fdList, func(i, j int) bool { return fdList[i] < fdList[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fdList)))
	for _, fd := range fdList {
		e := fdEntries[fd]
		buf = binary.LittleEndian.AppendUint64(buf, fd)
		putStr(e.path)
		var flags byte
		if e.dir {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, e.ino)
	}

	// Allocation sequences, by path.
	seqs := make(map[string]uint64)
	fs.pathSeq.RangeCommitted(func(p string, seq uint64) bool {
		seqs[p] = seq
		return true
	})
	seqPaths := make([]string, 0, len(seqs))
	for p := range seqs {
		seqPaths = append(seqPaths, p)
	}
	sort.Strings(seqPaths)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seqPaths)))
	for _, p := range seqPaths {
		putStr(p)
		buf = binary.LittleEndian.AppendUint64(buf, seqs[p])
	}
	return buf
}

// fsSnapshotReader decodes the snapshot stream.
type fsSnapshotReader struct {
	rest []byte
	err  error
}

func (r *fsSnapshotReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("netfs: truncated snapshot")
	}
	r.rest = nil
}

func (r *fsSnapshotReader) u16() uint16 {
	if len(r.rest) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.rest)
	r.rest = r.rest[2:]
	return v
}

func (r *fsSnapshotReader) u32() uint32 {
	if len(r.rest) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.rest)
	r.rest = r.rest[4:]
	return v
}

func (r *fsSnapshotReader) u64() uint64 {
	if len(r.rest) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.rest)
	r.rest = r.rest[8:]
	return v
}

func (r *fsSnapshotReader) str() string {
	n := int(r.u16())
	if len(r.rest) < n {
		r.fail()
		return ""
	}
	s := string(r.rest[:n])
	r.rest = r.rest[n:]
	return s
}

func (r *fsSnapshotReader) bytes(n int) []byte {
	if len(r.rest) < n {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.rest[:n]...)
	r.rest = r.rest[n:]
	return b
}

func (r *fsSnapshotReader) inode() *inode {
	n := &inode{
		ino:  r.u64(),
		mode: r.u32(),
	}
	n.mtime = int64(r.u64())
	n.atime = int64(r.u64())
	n.nlink = int(int32(r.u32()))
	n.data = r.bytes(int(r.u32()))
	kidCount := int(r.u32())
	if kidCount > 0 {
		n.kids = make(map[string]uint64, kidCount)
		for i := 0; i < kidCount; i++ {
			name := r.str()
			n.kids[name] = r.u64()
		}
	} else if n.isDir() {
		n.kids = make(map[string]uint64)
	}
	if len(n.data) == 0 {
		n.data = nil
	}
	return n
}

// Restore replaces the entire committed FS state with a snapshot's and
// drops any uncommitted versions.
func (fs *FS) Restore(snap []byte) error {
	if len(snap) < 1 || snap[0] != fsSnapshotVersion {
		return fmt.Errorf("netfs: bad snapshot header")
	}
	r := &fsSnapshotReader{rest: snap[1:]}

	paths := mvstore.MapBase[string, *inode]{}
	for i, count := 0, int(r.u32()); i < count && r.err == nil; i++ {
		p := r.str()
		paths[p] = r.inode()
	}
	fds := mvstore.MapBase[uint64, fdEntry]{}
	for i, count := 0, int(r.u32()); i < count && r.err == nil; i++ {
		fd := r.u64()
		path := r.str()
		if len(r.rest) < 1 {
			r.fail()
			break
		}
		flags := r.rest[0]
		r.rest = r.rest[1:]
		ino := r.u64()
		fds[fd] = fdEntry{path: path, dir: flags&1 != 0, ino: ino}
	}
	pathSeq := mvstore.MapBase[string, uint64]{}
	for i, count := 0, int(r.u32()); i < count && r.err == nil; i++ {
		p := r.str()
		pathSeq[p] = r.u64()
	}
	if r.err != nil {
		return r.err
	}
	if len(r.rest) != 0 {
		return fmt.Errorf("netfs: %d trailing snapshot bytes", len(r.rest))
	}
	fs.paths.Reset(paths)
	fs.fds.Reset(fds)
	fs.pathSeq.Reset(pathSeq)
	return nil
}

// Snapshot implements command.Snapshotter.
func (s *Service) Snapshot() []byte { return s.fs.Snapshot() }

// Restore implements command.Snapshotter.
func (s *Service) Restore(snap []byte) error { return s.fs.Restore(snap) }

var _ command.Snapshotter = (*Service)(nil)
