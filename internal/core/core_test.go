package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

// testDeployment is a hand-wired single-replica P-SMR deployment: k
// parallel groups plus one serial group (k > 1), each with its own
// acceptors and coordinator, one replica, and client proxies — the
// same wiring the top-level Cluster performs, assembled here so the
// package's replica and client are exercised directly.
type testDeployment struct {
	t       *testing.T
	net     *transport.MemNetwork
	groups  []multicast.GroupConfig
	replica *Replica
	cg      *cdep.Compiled
}

func startDeployment(t *testing.T, workers int, keys int) *testDeployment {
	t.Helper()
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })

	nGroups := workers
	if workers > 1 {
		nGroups = workers + 1 // serial group last
	}
	d := &testDeployment{t: t, net: net}
	const mergeWeight = 64
	for g := 0; g < nGroups; g++ {
		gid := uint32(g)
		accAddrs := make([]transport.Addr, 3)
		for i := range accAddrs {
			accAddrs[i] = transport.Addr(fmt.Sprintf("g%d/acc%d", g, i))
		}
		candAddrs := []transport.Addr{transport.Addr(fmt.Sprintf("g%d/coord0", g))}
		for i := range accAddrs {
			a, err := paxos.StartAcceptor(paxos.AcceptorConfig{
				GroupID: gid, ID: uint32(i), Addr: accAddrs[i], Transport: net,
			})
			if err != nil {
				t.Fatalf("StartAcceptor: %v", err)
			}
			t.Cleanup(func() { _ = a.Close() })
		}
		// Multi-stream merges stall without skip padding on idle groups.
		skip := time.Duration(0)
		if nGroups > 1 {
			skip = time.Millisecond
		}
		co, err := paxos.StartCoordinator(paxos.CoordinatorConfig{
			GroupID:      gid,
			CandidateIdx: 0,
			Candidates:   candAddrs,
			Acceptors:    accAddrs,
			Learners:     []transport.Addr{LearnerAddr(0, gid)},
			Transport:    net,
			SkipInterval: skip,
			SkipSlots:    mergeWeight,
		})
		if err != nil {
			t.Fatalf("StartCoordinator: %v", err)
		}
		t.Cleanup(func() { _ = co.Close() })
		d.groups = append(d.groups, multicast.GroupConfig{
			ID: gid, Coordinators: candAddrs, Acceptors: accAddrs,
		})
	}

	st := kvstore.New()
	st.Preload(keys)
	rep, err := StartReplica(ReplicaConfig{
		ReplicaID:   0,
		Workers:     workers,
		Service:     st,
		Groups:      d.groups,
		Transport:   net,
		MergeWeight: mergeWeight,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { _ = rep.Close() })
	d.replica = rep

	cg, err := cdep.Compile(kvstore.Spec(), workers)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	d.cg = cg
	return d
}

func (d *testDeployment) newClient(id uint64) *Client {
	d.t.Helper()
	c, err := NewClient(ClientConfig{
		ID:            id,
		Sender:        multicast.NewSender(d.net, d.groups),
		CG:            d.cg,
		Transport:     d.net,
		RetryInterval: 2 * time.Second,
		Seed:          int64(id),
	})
	if err != nil {
		d.t.Fatalf("NewClient: %v", err)
	}
	d.t.Cleanup(func() { _ = c.Close() })
	return c
}

// Parallel mode: keyed commands multicast to one group and execute on
// its worker; values must read back.
func TestClientInvokeParallelMode(t *testing.T) {
	d := startDeployment(t, 2, 100)
	c := d.newClient(1)

	for key := uint64(0); key < 8; key++ {
		value := []byte(fmt.Sprintf("value%03d", key))
		out, err := c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(key, value))
		if err != nil {
			t.Fatalf("update key %d: %v", key, err)
		}
		if out[0] != kvstore.OK {
			t.Fatalf("update key %d: code %d", key, out[0])
		}
	}
	for key := uint64(0); key < 8; key++ {
		out, err := c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key))
		if err != nil {
			t.Fatalf("read key %d: %v", key, err)
		}
		value, code := kvstore.DecodeReadOutput(out)
		if want := fmt.Sprintf("value%03d", key); code != kvstore.OK || string(value) != want {
			t.Fatalf("read key %d = %q code %d, want %q", key, value, code, want)
		}
	}
}

// Synchronous mode: inserts are Global, so they multicast to every
// group and rendezvous all workers (Algorithm 1 lines 14-26).
func TestClientInvokeSynchronousMode(t *testing.T) {
	d := startDeployment(t, 2, 10)
	c := d.newClient(1)

	out, err := c.Invoke(kvstore.CmdInsert, kvstore.EncodeKeyValue(500, []byte("inserted")))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if out[0] != kvstore.OK {
		t.Fatalf("insert code %d", out[0])
	}
	out, err = c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(500))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	value, code := kvstore.DecodeReadOutput(out)
	if code != kvstore.OK || string(value) != "inserted" {
		t.Fatalf("read back %q code %d", value, code)
	}
}

// Classic SMR is the k=1 degeneration: one group, one worker.
func TestSingleWorkerSMR(t *testing.T) {
	d := startDeployment(t, 1, 10)
	c := d.newClient(1)

	if out, err := c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(3, []byte("smr-val1"))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("update: %v %v", out, err)
	}
	out, err := c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(3))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if value, code := kvstore.DecodeReadOutput(out); code != kvstore.OK || string(value) != "smr-val1" {
		t.Fatalf("read back %q code %d", value, code)
	}
}

// Concurrent clients across keys: the window of outstanding calls the
// workload runner keeps in real benchmarks.
func TestConcurrentClients(t *testing.T) {
	d := startDeployment(t, 2, 64)
	const clients = 3
	done := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c := d.newClient(uint64(i + 1))
		go func(c *Client, base uint64) {
			for j := uint64(0); j < 20; j++ {
				key := (base*20 + j) % 64
				out, err := c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(key, []byte("cccccccc")))
				if err != nil {
					done <- err
					return
				}
				if out[0] != kvstore.OK {
					done <- fmt.Errorf("update key %d: code %d", key, out[0])
					return
				}
			}
			done <- nil
		}(c, uint64(i))
	}
	for i := 0; i < clients; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("timed out")
		}
	}
}

func TestClientSubmitAfterClose(t *testing.T) {
	d := startDeployment(t, 1, 10)
	c := d.newClient(9)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Submit(kvstore.CmdRead, kvstore.EncodeKey(1)); err != ErrClientClosed {
		t.Fatalf("Submit after close: %v, want ErrClientClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	// No replicas behind the group: the call can never complete.
	groups := []multicast.GroupConfig{{ID: 0, Coordinators: []transport.Addr{"void"}}}
	cg, err := cdep.Compile(kvstore.Spec(), 1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	c, err := NewClient(ClientConfig{
		ID:        1,
		Sender:    multicast.NewSender(net, groups),
		CG:        cg,
		Transport: net,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	call, err := c.Submit(kvstore.CmdRead, kvstore.EncodeKey(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() {
		_, err := call.Wait()
		waitErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-waitErr:
		if err != ErrClientClosed {
			t.Fatalf("Wait after close: %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait not unblocked by Close")
	}
}

func TestStartReplicaValidation(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	if _, err := StartReplica(ReplicaConfig{Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := StartReplica(ReplicaConfig{
		Workers:   2,
		Groups:    make([]multicast.GroupConfig, 5),
		Transport: net,
	}); err == nil {
		t.Fatal("wrong group count accepted")
	}
}
