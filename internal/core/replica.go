// Package core implements Parallel State-Machine Replication (P-SMR),
// the paper's contribution (§IV): client proxies that multicast each
// command to the groups computed by the C-G function, and server
// replicas whose worker threads deliver commands from multiple parallel
// streams and execute them in parallel mode (single destination) or
// synchronous mode (barrier across the destination workers,
// Algorithm 1).
//
// Classic SMR is the k=1 degeneration of this package: one worker, one
// group, sequential delivery and execution.
package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/checkpoint"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

// ReplicaConfig configures one P-SMR replica.
type ReplicaConfig struct {
	// ReplicaID distinguishes replicas (used in endpoint names).
	ReplicaID int
	// Workers is the multiprogramming level k: the number of worker
	// threads (paper §IV-C).
	Workers int
	// Service is the deterministic state machine all workers execute
	// against. With Workers > 1 the service must tolerate concurrent
	// execution of commands its C-Dep declares independent.
	Service command.Service
	// Groups are the multicast groups: either k parallel groups plus
	// one serial group (P-SMR), or exactly one group when Workers == 1
	// (classic SMR). With Subsets compiled, the layout is k worker
	// groups, then one group per subset (canonical table order), then
	// the serial group.
	Groups []multicast.GroupConfig
	// Subsets, when non-nil, declares the dedicated multi-worker subset
	// groups wired between the worker groups and the serial group. Each
	// worker additionally subscribes (in canonical order) to the subset
	// streams containing it; the deterministic merge restricted to any
	// common stream set is identical at every subscriber, so rendezvous
	// order is unaffected. Must match the clients' table.
	Subsets *cdep.SubsetTable
	// Transport carries all replica traffic.
	Transport transport.Transport
	// MergeWeight is the deterministic-merge weight: slots per stream
	// per round, one slot per command. It must match the coordinators'
	// SkipSlots. Default 256.
	MergeWeight int
	// DedupWindow bounds the per-client at-most-once table. Default 512.
	DedupWindow int
	// Checkpoint enables coordinated checkpoints. Supported for
	// SINGLE-GROUP deployments only (classic SMR and the degenerate
	// one-worker P-SMR): the lone worker snapshots inline at decided
	// batch boundaries, which is trivially a quiesce point. Multi-group
	// P-SMR would need vectored checkpoint positions plus merge-state
	// capture — an open item (see ROADMAP).
	Checkpoint checkpoint.Config
	// RecoverPeers bootstraps the replica from a live peer's checkpoint
	// plus decided suffix (requires Checkpoint enabled).
	RecoverPeers []transport.Addr
	// FetchTimeout bounds each peer fetch during recovery. Default 2s.
	FetchTimeout time.Duration
	// CPU optionally meters worker and learner busy time.
	CPU *bench.CPUMeter
	// Trace optionally stamps sampled commands at the learner-delivery
	// and execution stage boundaries (nil disables at zero cost).
	Trace *obs.Tracer
	// Journal optionally records learner/checkpoint events in the
	// flight recorder (nil disables at zero cost).
	Journal *obs.Journal
}

// Replica is a P-SMR server replica: k worker goroutines, each
// delivering from its own parallel group plus the shared serial group
// through a deterministic merge, executing against the shared service.
type Replica struct {
	cfg      ReplicaConfig
	learners []*paxos.Learner
	workers  []*worker
	ckpt     *checkpoint.Driver
	ckptSrv  *checkpoint.Server

	// Barrier channels for synchronous mode: sig[j][e] carries worker
	// j's "ready" signal to executor e; rel[e][j] carries the release
	// back (Algorithm 1 lines 18-26, Figure 2 signals (a) and (b)).
	sig [][]chan struct{}
	rel [][]chan struct{}

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// serialGroupIndex reports the index of the shared serial group, or -1
// when the deployment has no serial group (k parallel groups only).
// Subset groups sit between the worker groups and the serial group.
func serialGroupIndex(workers, subsets, groups int) int {
	if groups == workers+subsets+1 {
		return groups - 1
	}
	return -1
}

// StartReplica wires learners and launches the worker goroutines.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Workers < 1 || cfg.Workers > 64 {
		return nil, fmt.Errorf("core: %d workers outside [1,64]", cfg.Workers)
	}
	if s := cfg.Subsets.Count(); s > 0 {
		if len(cfg.Groups) != cfg.Workers+s+1 {
			return nil, fmt.Errorf("core: %d groups for %d workers + %d subsets (want k+S+1)",
				len(cfg.Groups), cfg.Workers, s)
		}
	} else if len(cfg.Groups) != cfg.Workers && len(cfg.Groups) != cfg.Workers+1 {
		return nil, fmt.Errorf("core: %d groups for %d workers (want k or k+1)",
			len(cfg.Groups), cfg.Workers)
	}
	if cfg.MergeWeight <= 0 {
		cfg.MergeWeight = 256
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	var snapper command.Snapshotter
	if cfg.Checkpoint.Enabled() {
		if len(cfg.Groups) != 1 {
			return nil, fmt.Errorf("core: checkpointing requires a single group (got %d); multi-group P-SMR checkpoint positions are an open item", len(cfg.Groups))
		}
		var ok bool
		if snapper, ok = cfg.Service.(command.Snapshotter); !ok {
			return nil, fmt.Errorf("core: checkpointing requires the service to implement command.Snapshotter, got %T", cfg.Service)
		}
	}
	var boot *checkpoint.Bootstrap
	if len(cfg.RecoverPeers) > 0 {
		var err error
		boot, err = checkpoint.Recover(cfg.Checkpoint, cfg.Transport, cfg.RecoverPeers,
			cfg.ReplicaID, cfg.FetchTimeout, cfg.Service)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	r := &Replica{
		cfg:  cfg,
		stop: make(chan struct{}),
	}
	k := cfg.Workers
	r.sig = makeBarrier(k)
	r.rel = makeBarrier(k)

	// One learner per group; the serial group's learner serves one
	// cursor per worker.
	for _, g := range cfg.Groups {
		addr := transport.Addr(fmt.Sprintf("r%d/g%d", cfg.ReplicaID, g.ID))
		l, err := paxos.StartLearner(paxos.LearnerConfig{
			GroupID:       g.ID,
			Addr:          addr,
			Transport:     cfg.Transport,
			Coordinators:  g.Coordinators,
			StartInstance: boot.Start(),
			CPU:           cfg.CPU.Role("learner"),
			Trace:         cfg.Trace,
			Journal:       cfg.Journal,
		})
		if err != nil {
			r.closeLearners()
			return nil, fmt.Errorf("core: start learner for group %d: %w", g.ID, err)
		}
		r.learners = append(r.learners, l)
	}
	if cfg.Checkpoint.Enabled() {
		learner := r.learners[0]
		gid := cfg.Groups[0].ID
		p, err := checkpoint.Wire(checkpoint.WireConfig{
			Config:    cfg.Checkpoint,
			ReplicaID: cfg.ReplicaID,
			Transport: cfg.Transport,
			Snapshot:  func() ([]byte, bool) { return snapper.Snapshot(), true },
			Floor:     learner.SetRetainFloor,
			Log:       learner,
			Replay: func(instance uint64, value []byte) {
				_ = cfg.Transport.Send(LearnerAddr(cfg.ReplicaID, gid), paxos.NewDecisionFrame(gid, instance, value))
			},
			Boot: boot,
		})
		if err != nil {
			r.closeLearners()
			return nil, fmt.Errorf("core: %w", err)
		}
		r.ckpt, r.ckptSrv = p.Driver, p.Server
	}

	serialIdx := serialGroupIndex(k, cfg.Subsets.Count(), len(cfg.Groups))
	for i := 0; i < k; i++ {
		// Subscription order is ascending group id at every worker: own
		// group (id i < k), then the subset groups containing this worker
		// (ids k..k+S-1, canonical order), then the serial group (last).
		// Identical ordering of the common streams at all subscribers is
		// what keeps the deterministic merge consistent.
		cursors := []*paxos.Cursor{r.learners[i].NewCursor()}
		for _, si := range cfg.Subsets.ForWorker(i) {
			cursors = append(cursors, r.learners[k+si].NewCursor())
		}
		if serialIdx >= 0 {
			cursors = append(cursors, r.learners[serialIdx].NewCursor())
		}
		w := &worker{
			r:      r,
			idx:    i,
			merger: multicast.NewMerger(cursors, cfg.MergeWeight),
			dedup:  dedup.NewTable(cfg.DedupWindow),
			cpu:    cfg.CPU.Role("worker"),
		}
		r.workers = append(r.workers, w)
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go w.run()
	}
	return r, nil
}

// LearnerAddr returns the address decisions must be pushed to for a
// group of this replica; the cluster wiring adds these to the group's
// coordinator learner list.
func LearnerAddr(replicaID int, groupID uint32) transport.Addr {
	return transport.Addr(fmt.Sprintf("r%d/g%d", replicaID, groupID))
}

// Close stops the replica: workers drain out and learners shut down.
// Close is idempotent.
func (r *Replica) Close() error {
	r.closeOnce.Do(func() {
		if r.ckptSrv != nil {
			_ = r.ckptSrv.Close()
		}
		close(r.stop)
		r.closeLearners()
	})
	r.wg.Wait()
	return nil
}

// CheckpointCounters returns the replica's checkpoint statistics
// (zero-valued when checkpointing is disabled).
func (r *Replica) CheckpointCounters() checkpoint.Counters {
	if r.ckpt == nil {
		return checkpoint.Counters{}
	}
	return r.ckpt.Counters()
}

// GapStalls sums the replica's learners' gap-stall transitions (the
// anomaly watcher's learner-stall signal).
func (r *Replica) GapStalls() uint64 {
	var total uint64
	for _, l := range r.learners {
		total += l.GapStalls()
	}
	return total
}

func (r *Replica) closeLearners() {
	for _, l := range r.learners {
		_ = l.Close()
	}
}

func makeBarrier(k int) [][]chan struct{} {
	chs := make([][]chan struct{}, k)
	for i := range chs {
		chs[i] = make([]chan struct{}, k)
		for j := range chs[i] {
			chs[i][j] = make(chan struct{}, 1)
		}
	}
	return chs
}

// worker is one replica thread t_i (Algorithm 1, lines 7-26).
type worker struct {
	r      *Replica
	idx    int
	merger *multicast.Merger
	dedup  *dedup.Table
	cpu    *bench.RoleMeter
}

func (w *worker) run() {
	defer w.r.wg.Done()
	for {
		item, ok := w.merger.Next()
		if !ok {
			return
		}
		if !w.step(item) {
			return
		}
		if w.r.ckpt != nil {
			// Single-group checkpointing: the lone worker IS the whole
			// execution engine, so the gap between two commands is a
			// quiesce point — snapshot inline at the decided batch
			// boundary. Every delivered item is counted (deterministic
			// across replicas: same stream, same count).
			w.r.ckpt.Tick(1)
			if item.Last && w.r.ckpt.Due() {
				w.r.cfg.Journal.Emit(obs.EvCheckpoint, uint64(w.r.cfg.ReplicaID), item.Instance+1)
				w.r.ckpt.Marker(item.Instance + 1)()
			}
		}
	}
}

// step handles one merged delivery; it reports false when the replica
// is stopping.
func (w *worker) step(item multicast.Item) bool {
	t0 := time.Now()
	req, _, err := command.DecodeRequest(item.Payload)
	if err != nil {
		w.cpu.Add(time.Since(t0))
		return true
	}
	if req.Gamma.Count() <= 1 {
		// Parallel mode: the command was multicast to this worker's
		// own group only (lines 10-13).
		w.executeAndReply(req)
		w.cpu.Add(time.Since(t0))
		return true
	}
	if !req.Gamma.Has(w.idx) {
		// Serial-group traffic destined to other workers.
		w.cpu.Add(time.Since(t0))
		return true
	}
	w.cpu.Add(time.Since(t0))
	return w.synchronousMode(req)
}

// synchronousMode runs Algorithm 1 lines 14-26 for one multi-
// destination command. It reports false when the replica is stopping.
func (w *worker) synchronousMode(req *command.Request) bool {
	e := req.Gamma.Min()
	if w.idx != e {
		// Signal the executor and pause until it has executed C
		// (lines 24-26).
		select {
		case w.r.sig[w.idx][e] <- struct{}{}:
		case <-w.r.stop:
			return false
		}
		select {
		case <-w.r.rel[e][w.idx]:
		case <-w.r.stop:
			return false
		}
		return true
	}
	// Executor: wait for every other destination worker (lines 18-19).
	for _, j := range req.Gamma.Workers() {
		if j == w.idx {
			continue
		}
		select {
		case <-w.r.sig[j][w.idx]:
		case <-w.r.stop:
			return false
		}
	}
	t0 := time.Now()
	w.executeAndReply(req) // lines 20-21
	w.cpu.Add(time.Since(t0))
	// Release the paused workers (lines 22-23).
	for _, j := range req.Gamma.Workers() {
		if j == w.idx {
			continue
		}
		select {
		case w.r.rel[w.idx][j] <- struct{}{}:
		case <-w.r.stop:
			return false
		}
	}
	return true
}

// executeAndReply applies the command (with at-most-once protection)
// and sends the response to the client proxy.
func (w *worker) executeAndReply(req *command.Request) {
	output, duplicate := w.dedup.Lookup(req.Client, req.Seq)
	if !duplicate {
		w.r.cfg.Trace.StampID(obs.StageExecStart, req.Client, req.Seq)
		output = w.r.cfg.Service.Execute(req.Cmd, req.Input)
		w.r.cfg.Trace.StampID(obs.StageExecEnd, req.Client, req.Seq)
		w.dedup.Record(req.Client, req.Seq, output)
	}
	if req.Reply == "" {
		return
	}
	resp := command.AppendResponse(nil, &command.Response{
		Client: req.Client,
		Seq:    req.Seq,
		Output: output,
	})
	_ = w.r.cfg.Transport.Send(req.Reply, resp)
}
