package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/transport"
)

// Client errors.
var (
	// ErrClientClosed is returned for calls issued against or pending
	// on a closed client proxy.
	ErrClientClosed = errors.New("core: client closed")
)

// ClientConfig configures a client proxy (paper §III/§IV-B: the proxy
// intercepts invocations, marshals them, multicasts them to the groups
// the C-G function selects, and returns the first replica response).
type ClientConfig struct {
	// ID must be unique among clients; it keys response matching and
	// the replicas' at-most-once tables.
	ID uint64
	// Sender multicasts requests. Its group list must be the same one
	// the replicas were wired with (k parallel groups [+ serial]).
	Sender *multicast.Sender
	// CG is the compiled Command-to-Groups function.
	CG *cdep.Compiled
	// Transport receives responses.
	Transport transport.Transport
	// ReplyAddr is the endpoint responses are sent to. Defaults to
	// "client/<ID>".
	ReplyAddr transport.Addr
	// RetryInterval is how long to wait for a response before
	// retransmitting (rotating the believed coordinator). Default 3s.
	RetryInterval time.Duration
	// Seed drives the random group choice for independent commands.
	Seed int64
	// Subsets, when non-nil, routes multi-worker commands whose γ
	// exactly matches a compiled subset onto that subset's dedicated
	// group instead of the shared serial group. Must be compiled from
	// the same configuration the replicas were wired with.
	Subsets *cdep.SubsetTable
}

// Client is a P-SMR client proxy. It is safe for concurrent use; a
// workload typically keeps a window of outstanding Submit calls.
type Client struct {
	cfg ClientConfig
	ep  transport.Endpoint

	mu      sync.Mutex
	rng     *rand.Rand
	seq     uint64
	pending map[uint64]*Call
	closed  bool

	done chan struct{}
}

// Call is one in-flight command invocation.
type Call struct {
	c     *Client
	seq   uint64
	group int
	frame []byte

	respCh chan []byte
}

// NewClient starts a client proxy and its response demultiplexer.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Sender == nil || cfg.CG == nil || cfg.Transport == nil {
		return nil, errors.New("core: client needs Sender, CG and Transport")
	}
	if cfg.ReplyAddr == "" {
		cfg.ReplyAddr = transport.Addr(fmt.Sprintf("client/%d", cfg.ID))
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 3 * time.Second
	}
	ep, err := cfg.Transport.Listen(cfg.ReplyAddr)
	if err != nil {
		return nil, fmt.Errorf("core: client listen: %w", err)
	}
	c := &Client{
		cfg:     cfg,
		ep:      ep,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID))),
		pending: make(map[uint64]*Call),
		done:    make(chan struct{}),
	}
	go c.demux()
	return c, nil
}

// Close stops the proxy and fails all pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()

	err := c.ep.Close()
	for _, call := range pending {
		close(call.respCh)
	}
	<-c.done
	return err
}

// Submit multicasts one command invocation and returns the in-flight
// call. The destination set γ is computed once and pinned, so
// retransmissions are idempotent even for randomly placed commands.
func (c *Client) Submit(cmd command.ID, input []byte) (*Call, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.seq++
	seq := c.seq
	gamma := c.cfg.CG.Groups(cmd, input, c.rng.Intn)
	call := &Call{
		c:      c,
		seq:    seq,
		group:  c.physicalGroup(gamma),
		respCh: make(chan []byte, 1),
	}
	call.frame = command.AppendRequest(nil, &command.Request{
		Client: c.cfg.ID,
		Seq:    seq,
		Cmd:    cmd,
		Gamma:  gamma,
		Input:  input,
		Reply:  c.cfg.ReplyAddr,
	})
	c.pending[seq] = call
	c.mu.Unlock()

	if err := c.cfg.Sender.Multicast(call.group, call.frame); err != nil {
		if errors.Is(err, multicast.ErrProxyDown) {
			// The whole proxy tier is unreachable: fail the submit with
			// the distinct error instead of letting it pend forever —
			// retransmission cannot reach a coordinator either.
			c.forget(seq)
			return nil, err
		}
		// Otherwise keep the call pending; Wait will retransmit.
		_ = err
	}
	return call, nil
}

// physicalGroup maps a destination set to the single multicast group
// carrying it: the worker's own group for singletons, a dedicated
// subset group for an exact compiled-subset match, and the shared
// serial group otherwise (the paper's prototype restriction, §VI-A,
// which the subset table relaxes). Group numbering is worker groups
// 0..k-1, subset groups k..k+S-1 (canonical table order), serial last.
func (c *Client) physicalGroup(gamma command.Gamma) int {
	total := c.cfg.Sender.Groups()
	workerGroups := total
	if total > 1 {
		workerGroups = total - c.cfg.Subsets.Count() - 1
	}
	if gamma.Count() == 1 && gamma.Min() < workerGroups {
		return gamma.Min()
	}
	if idx, ok := c.cfg.Subsets.Lookup(gamma); ok {
		return workerGroups + idx
	}
	return total - 1 // serial group is last
}

// Invoke submits a command and waits for its response.
func (c *Client) Invoke(cmd command.ID, input []byte) ([]byte, error) {
	call, err := c.Submit(cmd, input)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// Done returns the channel carrying the call's response; it is closed
// without a value if the client shuts down first. Prefer Wait unless
// selecting over many calls.
func (call *Call) Done() <-chan []byte { return call.respCh }

// Wait blocks for the response, retransmitting (and rotating the
// believed group coordinator) on every RetryInterval.
func (call *Call) Wait() ([]byte, error) {
	timer := time.NewTimer(call.c.cfg.RetryInterval)
	defer timer.Stop()
	for {
		select {
		case output, ok := <-call.respCh:
			if !ok {
				return nil, ErrClientClosed
			}
			call.c.forget(call.seq)
			return output, nil
		case <-timer.C:
			call.c.cfg.Sender.RotateLeader(call.group)
			_ = call.c.cfg.Sender.Multicast(call.group, call.frame)
			timer.Reset(call.c.cfg.RetryInterval)
		}
	}
}

func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// demux routes response frames to pending calls. Only the first
// response of a call is delivered (all replica responses are identical,
// paper §III); later duplicates are dropped.
func (c *Client) demux() {
	defer close(c.done)
	for frame := range c.ep.Recv() {
		resp, err := command.DecodeResponse(frame)
		if err != nil || resp.Client != c.cfg.ID {
			continue
		}
		c.mu.Lock()
		call, ok := c.pending[resp.Seq]
		if ok {
			// Leave the entry until Wait consumes it; extra responses
			// fall into the full-channel default below.
			select {
			case call.respCh <- resp.Output:
			default:
			}
		}
		c.mu.Unlock()
	}
}
