package proxy

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

// RelayConfig configures one decision-fan-out relay.
type RelayConfig struct {
	// Addr is the relay's listen address.
	Addr transport.Addr
	// Targets receive a copy of every frame the relay receives (the
	// group's learner endpoints).
	Targets []transport.Addr
	// Transport carries the relay's traffic.
	Transport transport.Transport
	// ID identifies the relay in flight-recorder events
	// (group<<32|stripe index).
	ID uint64
	// Journal optionally records forward events in the flight
	// recorder.
	Journal *obs.Journal
}

// Relay re-broadcasts every frame it receives to a fixed target set.
// Leaders stripe decision (and optimistic) pushes across a set of
// relays so their own per-decision send work is O(1) in the learner
// count; the relays carry the fan-out. Relays are content-blind: they
// never decode frames, so they add no serialization work to the path.
type Relay struct {
	cfg  RelayConfig
	ep   transport.Endpoint
	stop chan struct{}
	done chan struct{}

	// Staleness surface: forwarded frame count and the wall-clock nanos
	// of the last forward. A relay cannot report its own death, so the
	// cluster watchdog compares these against the leader's decide
	// activity to flag a silent stripe.
	forwarded   atomic.Uint64
	lastForward atomic.Int64
}

// StartRelay launches a relay listening on cfg.Addr.
func StartRelay(cfg RelayConfig) (*Relay, error) {
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("relay %s listen: %w", cfg.Addr, err)
	}
	r := &Relay{
		cfg:  cfg,
		ep:   ep,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// Close stops the relay and waits for its goroutine.
func (r *Relay) Close() error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	err := r.ep.Close()
	<-r.done
	return err
}

// Forwarded returns the number of frames the relay has re-broadcast.
// Safe to call concurrently, including on a closed relay.
func (r *Relay) Forwarded() uint64 { return r.forwarded.Load() }

// LastForward returns the time of the relay's most recent forward
// (zero time if it never forwarded). Safe to call concurrently,
// including on a closed relay.
func (r *Relay) LastForward() time.Time {
	ns := r.lastForward.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (r *Relay) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case frame, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			for _, t := range r.cfg.Targets {
				_ = r.cfg.Transport.Send(t, frame)
			}
			n := r.forwarded.Add(1)
			r.lastForward.Store(time.Now().UnixNano())
			r.cfg.Journal.Emit(obs.EvRelayForward, r.cfg.ID, n)
		}
	}
}
