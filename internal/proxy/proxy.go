// Package proxy implements the compartmentalized ordering-layer tiers
// of Whittaker et al., "Scaling Replicated State Machines with
// Compartmentalization", adapted to the multicast substrate:
//
//   - Proxy: a stateless proxy-proposer. Clients submit Propose frames
//     to any proxy; the proxy classifies them by group, accumulates
//     per-group batches (size and delay knobs) and forwards each sealed
//     batch to the group's believed leader as ONE ProposeBatch frame.
//     The leader's inbound admission work drops from one frame per
//     command to one frame per proxy batch, and the proxy tier scales
//     out by just adding proxies — they share no state. A per-proxy
//     recent-request window additionally sheds client retransmissions
//     of recently admitted requests before they cost the leader
//     anything; it is an optimization only — exactly-once semantics
//     remain the replicas' at-most-once cache's job.
//
//   - Relay: a decision fan-out stage. A leader configured with relays
//     stripes its decision (and optimistic) pushes across them instead
//     of broadcasting to every learner itself; each relay re-broadcasts
//     the frames it receives to all learners.
//
// Both roles are crash-stop and hold no durable state: a dead proxy
// surfaces to clients as a distinct submit error (the client library
// rotates to a surviving proxy), and a lost relay stripe is recovered
// by learner gap retransmission against the coordinator.
package proxy

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

// Config configures one proxy-proposer.
type Config struct {
	// Addr is the proxy's listen address.
	Addr transport.Addr
	// Groups are the multicast groups the proxy forwards to; a Propose
	// frame for an unknown group id is dropped.
	Groups []multicast.GroupConfig
	// Transport carries the proxy's traffic.
	Transport transport.Transport
	// BatchMax seals a group's batch when it holds this many commands.
	// Default 64.
	BatchMax int
	// Delay bounds how long a queued command may wait before its batch
	// is sealed regardless of size. Default 200µs.
	Delay time.Duration
	// DedupWindow sizes the proxy's recent-request window (rounded up
	// to a power of two): a direct-mapped cache of (client, seq) ids
	// that sheds client retransmissions before they reach the leader's
	// batch path. 0 selects the default (4096 ids); negative disables
	// shedding. Values too short to carry a request id bypass the
	// window untouched.
	DedupWindow int
	// CPU optionally meters the proxy's busy time.
	CPU *bench.RoleMeter
	// Trace optionally stamps sampled commands at the proxy-seal stage
	// boundary (and carries trace context across the wire: inbound
	// tags are absorbed, sealed batches are re-tagged).
	Trace *obs.Tracer
	// Journal optionally records seal/shed events in the flight
	// recorder.
	Journal *obs.Journal
}

func (c *Config) fillDefaults() {
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.Delay <= 0 {
		c.Delay = 200 * time.Microsecond
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 4096
	}
}

// Counters is a snapshot of one proxy's forwarding work.
type Counters struct {
	// Queued is the number of Propose frames admitted.
	Queued uint64
	// Batches is the number of sealed ProposeBatch frames forwarded.
	Batches uint64
	// Commands is the number of commands those batches carried.
	Commands uint64
	// Shed is the number of Propose frames dropped by the dedup window
	// as retransmissions of a recently admitted request.
	Shed uint64
}

// MeanBatch is the average commands per sealed batch; 0 when nothing
// was forwarded.
func (c Counters) MeanBatch() float64 {
	if c.Batches == 0 {
		return 0
	}
	return float64(c.Commands) / float64(c.Batches)
}

// groupBuf accumulates one group's pending commands. The items slice
// header is pooled (reset to items[:0] on seal) so steady-state
// admission performs no per-command allocation; the sealed frame is
// the single allocation per batch (it must be fresh — the transport
// retains sent frames).
type groupBuf struct {
	id    uint32
	items [][]byte
	// believed indexes the coordinator candidate the proxy currently
	// forwards to; rotated when a send fails.
	believed int
}

// dedupSlot is one entry of the direct-mapped recent-request window.
// The group is part of the identity: a multi-group command (subset
// routing) legitimately submits one Propose frame PER destination
// group with the same request id, and those copies must all pass. The
// used flag distinguishes an empty slot from the legal id (0, 0).
type dedupSlot struct {
	client, seq uint64
	group       uint32
	used        bool
}

// Proxy is one stateless proxy-proposer. See the package comment.
type Proxy struct {
	cfg  Config
	ep   transport.Endpoint
	bufs []groupBuf
	gidx map[uint32]int // group id -> bufs index
	// queuedTotal counts commands buffered across all groups, to arm
	// the delay timer only on the empty->non-empty transition.
	queuedTotal int
	timer       *time.Timer
	// dedup is the recent-request window (nil when disabled); accessed
	// only from the run goroutine, so it needs no lock.
	dedup     []dedupSlot
	dedupMask uint64

	queued   atomic.Uint64
	batches  atomic.Uint64
	commands atomic.Uint64
	shed     atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// Start launches a proxy listening on cfg.Addr.
func Start(cfg Config) (*Proxy, error) {
	p, err := newProxy(cfg)
	if err != nil {
		return nil, err
	}
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("proxy %s listen: %w", cfg.Addr, err)
	}
	p.ep = ep
	go p.run()
	return p, nil
}

// newProxy builds the proxy state without listening; benchmarks drive
// admit/sealAll directly against it.
func newProxy(cfg Config) (*Proxy, error) {
	cfg.fillDefaults()
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("proxy %s: no groups", cfg.Addr)
	}
	p := &Proxy{
		cfg:   cfg,
		bufs:  make([]groupBuf, len(cfg.Groups)),
		gidx:  make(map[uint32]int, len(cfg.Groups)),
		timer: time.NewTimer(time.Hour),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if !p.timer.Stop() {
		<-p.timer.C
	}
	for i, g := range cfg.Groups {
		p.bufs[i] = groupBuf{id: g.ID, items: make([][]byte, 0, cfg.BatchMax)}
		p.gidx[g.ID] = i
	}
	if cfg.DedupWindow > 0 {
		n := 1
		for n < cfg.DedupWindow {
			n <<= 1
		}
		p.dedup = make([]dedupSlot, n)
		p.dedupMask = uint64(n - 1)
	}
	return p, nil
}

// Close stops the proxy and waits for its goroutine.
func (p *Proxy) Close() error {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	err := p.ep.Close()
	<-p.done
	return err
}

// Counters returns a snapshot of the proxy's forwarding counters. Safe
// to call concurrently.
func (p *Proxy) Counters() Counters {
	return Counters{
		Queued:   p.queued.Load(),
		Batches:  p.batches.Load(),
		Commands: p.commands.Load(),
		Shed:     p.shed.Load(),
	}
}

func (p *Proxy) run() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case frame, ok := <-p.ep.Recv():
			if !ok {
				return
			}
			t0 := time.Now()
			p.admit(frame)
			p.cfg.CPU.Add(time.Since(t0))
		case <-p.timer.C:
			t0 := time.Now()
			p.sealAll()
			p.cfg.CPU.Add(time.Since(t0))
		}
	}
}

// admit classifies one client frame and buffers its value, sealing the
// group's batch at BatchMax. This is the hot path: ParsePropose does
// not allocate and the buffered value aliases the frame.
func (p *Proxy) admit(frame []byte) {
	// Fold a client-shipped trace tag (the submit stamp) into the
	// local tracer before the value is buffered; the tag is stripped
	// so it is not duplicated into the sealed batch.
	frame = p.cfg.Trace.AbsorbTags(frame)
	group, value, ok := paxos.ParsePropose(frame)
	if !ok {
		return
	}
	gi, ok := p.gidx[group]
	if !ok {
		return
	}
	if p.dedup != nil {
		if client, seq, idOK := command.PeekRequestID(value); idOK {
			slot := &p.dedup[dedupIndex(client, seq, group)&p.dedupMask]
			if slot.used && slot.client == client && slot.seq == seq && slot.group == group {
				// A retransmission of a request admitted within the
				// window: shed it, and CLEAR the slot so a further
				// retransmission of the same id passes through. That
				// keeps the window safe against false liveness loss —
				// if the first copy was lost downstream of the proxy,
				// the client's second retransmission still reaches the
				// replicas' at-most-once cache, which is the actual
				// correctness mechanism; the window only thins the
				// common duplicate storm.
				slot.used = false
				p.shed.Add(1)
				p.cfg.Journal.EmitID(obs.EvProxyShed, client, seq)
				return
			}
			*slot = dedupSlot{client: client, seq: seq, group: group, used: true}
		}
	}
	p.queued.Add(1)
	b := &p.bufs[gi]
	b.items = append(b.items, value)
	if p.queuedTotal == 0 {
		p.timer.Reset(p.cfg.Delay)
	}
	p.queuedTotal++
	if len(b.items) >= p.cfg.BatchMax {
		p.seal(gi)
	}
}

// dedupIndex mixes a per-group request id into a table index
// (splitmix64-style finalizer) so clients with adjacent ids spread
// across the window.
func dedupIndex(client, seq uint64, group uint32) uint64 {
	x := client*0x9e3779b97f4a7c15 + seq + uint64(group)<<56
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// sealAll flushes every non-empty group buffer (delay-timer path).
func (p *Proxy) sealAll() {
	for gi := range p.bufs {
		if len(p.bufs[gi].items) > 0 {
			p.seal(gi)
		}
	}
}

// seal forwards one group's pending commands as a single ProposeBatch
// frame and resets the pooled buffer. On a send failure it rotates
// through the group's remaining coordinator candidates (the batch is
// best-effort, like direct submission: client retransmission recovers
// anything lost).
func (p *Proxy) seal(gi int) {
	b := &p.bufs[gi]
	frame := paxos.NewProposeBatchFrame(b.id, b.items)
	n := len(b.items)
	for _, item := range b.items {
		p.cfg.Trace.Stamp(obs.StageProxySeal, item)
		// Re-tag the sealed batch with each sampled item's trace
		// context so the (possibly out-of-process) leader inherits the
		// submit/seal stamps; a no-op for unsampled items.
		frame = p.cfg.Trace.AppendTagForValue(frame, item)
	}
	p.cfg.Journal.Emit(obs.EvProxySeal, uint64(b.id), uint64(n))
	p.queuedTotal -= n
	for i := range b.items {
		b.items[i] = nil
	}
	b.items = b.items[:0]
	if p.queuedTotal > 0 {
		p.timer.Reset(p.cfg.Delay)
	} else {
		p.timer.Stop()
	}
	cands := p.cfg.Groups[gi].Coordinators
	for try := 0; try < len(cands); try++ {
		target := cands[b.believed%len(cands)]
		if p.cfg.Transport.Send(target, frame) == nil {
			break
		}
		b.believed++
	}
	p.batches.Add(1)
	p.commands.Add(uint64(n))
}
