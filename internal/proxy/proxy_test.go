package proxy

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

func recvBatch(t *testing.T, ep transport.Endpoint) (uint32, *paxos.Batch) {
	t.Helper()
	select {
	case frame := <-ep.Recv():
		g, b, ok := paxos.ParseProposeBatch(frame)
		if !ok {
			t.Fatalf("received frame is not a propose-batch")
		}
		return g, b
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for a sealed batch")
		return 0, nil
	}
}

// TestProxyBatchSeal: with a count threshold of 4, eight proposals
// yield exactly two sealed batches carrying the values in admission
// order.
func TestProxyBatchSeal(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	coord, err := net.Listen("g7/coord0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Start(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 7, Coordinators: []transport.Addr{"g7/coord0"}}},
		Transport: net,
		BatchMax:  4,
		Delay:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 8; i++ {
		if err := net.Send("proxy0", paxos.NewProposeFrame(7, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	for len(got) < 8 {
		g, b := recvBatch(t, coord)
		if g != 7 {
			t.Fatalf("batch for group %d, want 7", g)
		}
		if len(b.Items) != 4 {
			t.Fatalf("batch of %d items, want 4", len(b.Items))
		}
		got = append(got, b.Items...)
	}
	for i, v := range got {
		if len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("item %d = %v, want [%d]", i, v, i)
		}
	}
	c := p.Counters()
	if c.Queued != 8 || c.Batches != 2 || c.Commands != 8 {
		t.Fatalf("counters = %+v, want queued 8, batches 2, commands 8", c)
	}
	if mb := c.MeanBatch(); mb != 4 {
		t.Fatalf("mean batch = %v, want 4", mb)
	}
}

// TestProxyDelaySeal: a partial batch is sealed once the delay bound
// expires.
func TestProxyDelaySeal(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	coord, err := net.Listen("g0/coord0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Start(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 0, Coordinators: []transport.Addr{"g0/coord0"}}},
		Transport: net,
		BatchMax:  1000,
		Delay:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 3; i++ {
		if err := net.Send("proxy0", paxos.NewProposeFrame(0, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	_, b := recvBatch(t, coord)
	if len(b.Items) != 3 {
		t.Fatalf("delay-sealed batch of %d items, want 3", len(b.Items))
	}
}

// TestProxyCoordinatorFailover: when the believed coordinator is
// unreachable the proxy rotates to the next candidate for the same
// sealed batch.
func TestProxyCoordinatorFailover(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	standby, err := net.Listen("g0/coord1")
	if err != nil {
		t.Fatal(err)
	}
	// "g0/coord0" never listens: mem transport fails the send with
	// ErrNoRoute, which is the proxy's cue to rotate.
	p, err := Start(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 0, Coordinators: []transport.Addr{"g0/coord0", "g0/coord1"}}},
		Transport: net,
		BatchMax:  2,
		Delay:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 2; i++ {
		if err := net.Send("proxy0", paxos.NewProposeFrame(0, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	_, b := recvBatch(t, standby)
	if len(b.Items) != 2 {
		t.Fatalf("failover batch of %d items, want 2", len(b.Items))
	}
}

// TestProxyIgnoresForeignFrames: frames for unknown groups and
// non-propose frames are dropped without wedging the proxy.
func TestProxyIgnoresForeignFrames(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	coord, err := net.Listen("g0/coord0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Start(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 0, Coordinators: []transport.Addr{"g0/coord0"}}},
		Transport: net,
		BatchMax:  2,
		Delay:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_ = net.Send("proxy0", []byte{1, 2, 3})                       // garbage
	_ = net.Send("proxy0", paxos.NewProposeFrame(9, []byte("x"))) // unknown group
	_ = net.Send("proxy0", paxos.NewProposeFrame(0, []byte("a")))
	_ = net.Send("proxy0", paxos.NewProposeFrame(0, []byte("b")))
	_, b := recvBatch(t, coord)
	if len(b.Items) != 2 || !bytes.Equal(b.Items[0], []byte("a")) || !bytes.Equal(b.Items[1], []byte("b")) {
		t.Fatalf("batch = %v, want [a b]", b.Items)
	}
}

// TestRelayBroadcast: a relay re-broadcasts every inbound frame to all
// its targets, in order, without decoding.
func TestRelayBroadcast(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	var eps []transport.Endpoint
	for i := 0; i < 2; i++ {
		ep, err := net.Listen(transport.Addr(fmt.Sprintf("learner%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
	}
	r, err := StartRelay(RelayConfig{
		Addr:      "relay0",
		Targets:   []transport.Addr{"learner0", "learner1"},
		Transport: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 3; i++ {
		if err := net.Send("relay0", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ep := range eps {
		for i := 0; i < 3; i++ {
			select {
			case frame := <-ep.Recv():
				if len(frame) != 1 || frame[0] != byte(i) {
					t.Fatalf("target %s frame %d = %v", ep.Addr(), i, frame)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("target %s: timed out waiting for frame %d", ep.Addr(), i)
			}
		}
	}
}

// TestProxyPipeline runs the full compartmentalized ordering path at
// the paxos level: client frames -> proxy (sealed batches) ->
// coordinator -> acceptors -> striped relays -> learner. 100 commands
// must arrive decided, in admission order, and the coordinator must
// have admitted them in >= 4x fewer frames than commands.
func TestProxyPipeline(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	accAddrs := []transport.Addr{"g0/acc0", "g0/acc1", "g0/acc2"}
	for i, a := range accAddrs {
		acc, err := paxos.StartAcceptor(paxos.AcceptorConfig{GroupID: 0, ID: uint32(i), Addr: a, Transport: net})
		if err != nil {
			t.Fatal(err)
		}
		defer acc.Close()
	}

	relayAddrs := []transport.Addr{"g0/relay0", "g0/relay1"}
	for _, a := range relayAddrs {
		r, err := StartRelay(RelayConfig{Addr: a, Targets: []transport.Addr{"r0/g0"}, Transport: net})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
	}

	coordAddrs := []transport.Addr{"g0/coord0"}
	coord, err := paxos.StartCoordinator(paxos.CoordinatorConfig{
		GroupID:      0,
		CandidateIdx: 0,
		Candidates:   coordAddrs,
		Acceptors:    accAddrs,
		Learners:     []transport.Addr{"r0/g0"},
		Relays:       relayAddrs,
		Transport:    net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	learner, err := paxos.StartLearner(paxos.LearnerConfig{
		GroupID:      0,
		Addr:         "r0/g0",
		Transport:    net,
		Coordinators: coordAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()
	cursor := learner.NewCursor()

	p, err := Start(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 0, Coordinators: coordAddrs}},
		Transport: net,
		BatchMax:  25,
		Delay:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 100
	for i := 0; i < n; i++ {
		if err := net.Send("proxy0", paxos.NewProposeFrame(0, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}

	var got []byte
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		type res struct {
			b  *paxos.Batch
			ok bool
		}
		ch := make(chan res, 1)
		go func() {
			b, _, ok := cursor.Next()
			ch <- res{b, ok}
		}()
		select {
		case r := <-ch:
			if !r.ok {
				t.Fatalf("cursor closed after %d/%d commands", len(got), n)
			}
			if r.b.Skip {
				continue
			}
			for _, it := range r.b.Items {
				got = append(got, it[0])
			}
		case <-deadline:
			t.Fatalf("timed out after %d/%d commands", len(got), n)
		}
	}
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("decided[%d] = %d, want %d", i, got[i], i)
		}
	}
	c := coord.Counters()
	if c.InboundCommands != n {
		t.Fatalf("coordinator admitted %d commands, want %d", c.InboundCommands, n)
	}
	if fpc := c.FramesPerCommand(); fpc > 0.25 {
		t.Fatalf("frames per command = %v (frames %d), want <= 0.25", fpc, c.InboundFrames)
	}
}

// sinkTransport swallows sends; it isolates the proxy's own admission
// cost for the allocation assertions.
type sinkTransport struct{}

func (sinkTransport) Listen(addr transport.Addr) (transport.Endpoint, error) {
	return nil, transport.ErrClosed
}
func (sinkTransport) Send(to transport.Addr, frame []byte) error { return nil }
func (sinkTransport) Close() error                               { return nil }

// benchProxy builds a proxy plus one Propose frame carrying a real
// encoded request, and returns the offset of the request's Seq field
// within the frame: the benchmarks mutate it in place per iteration so
// every admitted command carries a fresh request id and the dedup
// window probes (and misses) exactly like live traffic.
func benchProxy(tb testing.TB) (p *Proxy, frame []byte, seqOff int) {
	tb.Helper()
	p, err := newProxy(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 0, Coordinators: []transport.Addr{"g0/coord0"}}},
		Transport: sinkTransport{},
		BatchMax:  64,
		Delay:     time.Hour,
	})
	if err != nil {
		tb.Fatal(err)
	}
	value := command.AppendRequest(nil, &command.Request{
		Client: 7, Seq: 1, Cmd: 1, Input: make([]byte, 16), Reply: "client0",
	})
	frame = paxos.NewProposeFrame(0, value)
	return p, frame, len(frame) - len(value) + 8
}

// TestProxySubmitAllocs pins the zero-alloc admission path: amortized
// over a full batch, sealing is the only allocation (the batch frame
// itself), well under 1/8 alloc per admitted command.
func TestProxySubmitAllocs(t *testing.T) {
	p, frame, seqOff := benchProxy(t)
	var seq uint64
	perBatch := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			seq++
			binary.LittleEndian.PutUint64(frame[seqOff:], seq)
			p.admit(frame)
		}
	})
	if perCmd := perBatch / 64; perCmd > 0.125 {
		t.Fatalf("proxy admission allocates %.3f allocs/command (%.1f per sealed batch), want <= 0.125", perCmd, perBatch)
	}
}

// BenchmarkProxySubmit measures the proxy admission hot path
// (parse + dedup probe + buffer + amortized seal) per command.
func BenchmarkProxySubmit(b *testing.B) {
	p, frame, seqOff := benchProxy(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(frame[seqOff:], uint64(i+1))
		p.admit(frame)
	}
	p.sealAll()
}

// proposeReq wraps an encoded request in a Propose frame for group 0.
func proposeReq(client, seq uint64) []byte {
	value := command.AppendRequest(nil, &command.Request{
		Client: client, Seq: seq, Cmd: 1, Input: make([]byte, 16), Reply: "client0",
	})
	return paxos.NewProposeFrame(0, value)
}

// TestProxyDedupWindowSheds forces a client double-submit through the
// proxy: the retransmission must be shed (never reach the sealed
// batch), the Shed counter must record it, and — because a shed clears
// its slot — a THIRD copy of the same request must pass through again,
// preserving liveness when the shed copy was the only one in flight.
func TestProxyDedupWindowSheds(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	coord, err := net.Listen("g0/coord0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Start(Config{
		Addr:      "proxy0",
		Groups:    []multicast.GroupConfig{{ID: 0, Coordinators: []transport.Addr{"g0/coord0"}}},
		Transport: net,
		BatchMax:  3,
		Delay:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	send := func(frame []byte) {
		t.Helper()
		if err := net.Send("proxy0", frame); err != nil {
			t.Fatal(err)
		}
	}
	send(proposeReq(1, 1))
	send(proposeReq(1, 1)) // retransmission: shed
	send(proposeReq(1, 2))
	send(proposeReq(2, 1))
	_, b := recvBatch(t, coord)
	if len(b.Items) != 3 {
		t.Fatalf("sealed batch of %d items, want 3 (dup shed)", len(b.Items))
	}
	ids := make([][2]uint64, len(b.Items))
	for i, it := range b.Items {
		c, s, ok := command.PeekRequestID(it)
		if !ok {
			t.Fatalf("item %d: not a request encoding", i)
		}
		ids[i] = [2]uint64{c, s}
	}
	want := [][2]uint64{{1, 1}, {1, 2}, {2, 1}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("batch ids = %v, want %v", ids, want)
		}
	}
	// The shed cleared (1,1)'s slot: a third copy passes through.
	send(proposeReq(1, 1))
	send(proposeReq(1, 3))
	send(proposeReq(1, 4))
	_, b = recvBatch(t, coord)
	if len(b.Items) != 3 {
		t.Fatalf("second batch of %d items, want 3 (post-shed copy readmitted)", len(b.Items))
	}
	if c, s, _ := command.PeekRequestID(b.Items[0]); c != 1 || s != 1 {
		t.Fatalf("readmitted id = (%d,%d), want (1,1)", c, s)
	}
	cnt := p.Counters()
	if cnt.Shed != 1 || cnt.Queued != 6 {
		t.Fatalf("counters = %+v, want Shed 1, Queued 6", cnt)
	}
}

// TestProxyDedupIsPerGroup: a multi-group command (subset routing)
// submits one Propose frame per destination group with the SAME
// request id; the dedup window must pass every group's copy.
func TestProxyDedupIsPerGroup(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	coord0, err := net.Listen("g0/coord0")
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := net.Listen("g1/coord0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Start(Config{
		Addr: "proxy0",
		Groups: []multicast.GroupConfig{
			{ID: 0, Coordinators: []transport.Addr{"g0/coord0"}},
			{ID: 1, Coordinators: []transport.Addr{"g1/coord0"}},
		},
		Transport: net,
		BatchMax:  1,
		Delay:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	value := command.AppendRequest(nil, &command.Request{
		Client: 1, Seq: 1, Cmd: 1, Input: make([]byte, 16), Reply: "client0",
	})
	for _, g := range []uint32{0, 1} {
		if err := net.Send("proxy0", paxos.NewProposeFrame(g, value)); err != nil {
			t.Fatal(err)
		}
	}
	for _, coord := range []transport.Endpoint{coord0, coord1} {
		_, b := recvBatch(t, coord)
		if len(b.Items) != 1 {
			t.Fatalf("%s batch of %d items, want 1", coord.Addr(), len(b.Items))
		}
	}
	if cnt := p.Counters(); cnt.Shed != 0 || cnt.Queued != 2 {
		t.Fatalf("counters = %+v, want Shed 0, Queued 2 (per-group copies both pass)", cnt)
	}
}
