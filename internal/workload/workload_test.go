package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
)

func TestUniformCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := Uniform{N: 10}
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := gen.Key(rng)
		if k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if c < draws/10-draws/50 || c > draws/10+draws/50 {
			t.Fatalf("key %d drawn %d times, want ~%d", k, c, draws/10)
		}
	}
}

// The Zipf sampler must reproduce the analytic rank probabilities
// p(r) = r^-s / H(n,s).
func TestZipfDistribution(t *testing.T) {
	for _, s := range []float64{0.5, 1.0, 1.5} {
		const n = 100
		z := NewZipf(s, n)
		rng := rand.New(rand.NewSource(7))
		const draws = 400000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			k := z.Key(rng)
			if k >= n {
				t.Fatalf("s=%v: key %d out of range", s, k)
			}
			counts[k]++
		}
		var hns float64
		for r := 1; r <= n; r++ {
			hns += math.Pow(float64(r), -s)
		}
		// Check the head ranks tightly and a tail rank loosely.
		for _, rank := range []int{1, 2, 3, 10, 50} {
			want := math.Pow(float64(rank), -s) / hns
			got := float64(counts[rank-1]) / draws
			if math.Abs(got-want) > 0.15*want+0.001 {
				t.Fatalf("s=%v rank %d: got %.5f, want %.5f", s, rank, got, want)
			}
		}
	}
}

func TestZipfExponentOneHeadHeaviness(t *testing.T) {
	// With s=1 over 1000 keys, rank 1 receives about 1/H(1000) ≈ 13.4%
	// of accesses — the skew driving the paper's Figure 7.
	z := NewZipf(1.0, 1000)
	rng := rand.New(rand.NewSource(3))
	const draws = 200000
	top := 0
	for i := 0; i < draws; i++ {
		if z.Key(rng) == 0 {
			top++
		}
	}
	frac := float64(top) / draws
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("rank-1 fraction = %.4f, want ≈ 0.134", frac)
	}
}

func TestZipfSingleKey(t *testing.T) {
	z := NewZipf(1.0, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if z.Key(rng) != 0 {
			t.Fatal("n=1 must always return key 0")
		}
	}
	// n=0 is normalised to 1 rather than panicking.
	z0 := NewZipf(1.0, 0)
	if z0.Key(rng) != 0 {
		t.Fatal("n=0 normalised sampler returned nonzero")
	}
}

func TestHotKeyGen(t *testing.T) {
	gen := Hot{N: 100, HotKey: 42, Fraction: 0.5}
	rng := rand.New(rand.NewSource(5))
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if gen.Key(rng) == 42 {
			hot++
		}
	}
	if hot < draws/2-draws/10 {
		t.Fatalf("hot key drawn %d of %d", hot, draws)
	}
}

func TestMixWeights(t *testing.T) {
	mix := NewMix(
		MixEntry{Weight: 3, Make: func(*rand.Rand) Op { return Op{Cmd: 1} }},
		MixEntry{Weight: 1, Make: func(*rand.Rand) Op { return Op{Cmd: 2} }},
		MixEntry{Weight: 0, Make: func(*rand.Rand) Op { return Op{Cmd: 3} }},
	)
	rng := rand.New(rand.NewSource(1))
	counts := make(map[command.ID]int)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[mix.Next(rng).Cmd]++
	}
	if counts[3] != 0 {
		t.Fatal("zero-weight entry drawn")
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestKVGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := Uniform{N: 50}

	op := KVReads(keys).Next(rng)
	if op.Cmd != kvstore.CmdRead || len(op.Input) != 8 {
		t.Fatalf("read op: %+v", op)
	}
	op = KVUpdates(keys).Next(rng)
	if op.Cmd != kvstore.CmdUpdate || len(op.Input) != 16 {
		t.Fatalf("update op: %+v", op)
	}
	seenInsert, seenDelete := false, false
	for i := 0; i < 100; i++ {
		op = KVInsertsDeletes(keys).Next(rng)
		switch op.Cmd {
		case kvstore.CmdInsert:
			seenInsert = true
		case kvstore.CmdDelete:
			seenDelete = true
		default:
			t.Fatalf("unexpected cmd %d", op.Cmd)
		}
	}
	if !seenInsert || !seenDelete {
		t.Fatal("insert/delete generator one-sided")
	}
}

func TestKVMixedDependentFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := KVMixed(Uniform{N: 100}, 10) // 10% dependent
	dep := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		op := gen.Next(rng)
		if op.Cmd == kvstore.CmdInsert || op.Cmd == kvstore.CmdDelete {
			dep++
		}
	}
	frac := float64(dep) / draws * 100
	if frac < 8.5 || frac > 11.5 {
		t.Fatalf("dependent fraction = %.2f%%, want ~10%%", frac)
	}
}

func TestKVReadUpdateSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := KVReadUpdate(Uniform{N: 100})
	reads := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if gen.Next(rng).Cmd == kvstore.CmdRead {
			reads++
		}
	}
	if reads < draws/2-draws/20 || reads > draws/2+draws/20 {
		t.Fatalf("reads = %d of %d, want ~half", reads, draws)
	}
}

// fakeInvoker counts invocations with a tiny artificial latency.
type fakeInvoker struct{ calls int64 }

func (f *fakeInvoker) Invoke(cmd command.ID, input []byte) ([]byte, error) {
	f.calls++
	return []byte{0}, nil
}

func TestRunnerMeasures(t *testing.T) {
	clients := []Invoker{&fakeInvoker{}, &fakeInvoker{}}
	ops, elapsed, hist := Run(RunnerConfig{
		Clients:  clients,
		Window:   1,
		Gen:      KVReads(Uniform{N: 10}),
		Duration: 100 * 1e6, // 100ms
		Warmup:   20 * 1e6,
	})
	if ops <= 0 {
		t.Fatal("no ops measured")
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if hist.Count() != ops {
		t.Fatalf("hist count %d != ops %d", hist.Count(), ops)
	}
}
