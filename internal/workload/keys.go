// Package workload drives the evaluation: key-selection distributions
// (uniform and Zipfian with exponent 1, as in paper §VII-G), command
// mixes, and closed-loop clients that keep a window of outstanding
// requests (the paper's clients use a window of 50, §VI-B).
package workload

import (
	"math"
	"math/rand"
)

// KeyGen draws keys from a key space.
type KeyGen interface {
	// Key draws the next key using the caller's rng (generators are
	// stateless and shareable; rngs are per goroutine).
	Key(rng *rand.Rand) uint64
}

// Uniform selects keys uniformly from [0, N).
type Uniform struct {
	// N is the key-space size.
	N uint64
}

// Key implements KeyGen.
func (u Uniform) Key(rng *rand.Rand) uint64 {
	return uint64(rng.Int63n(int64(u.N)))
}

// Zipf samples ranks from a Zipf distribution with arbitrary exponent
// s >= 0 over {0..n-1} (rank 0 most popular) using Hörmann &
// Derflinger's rejection-inversion method. Unlike math/rand's Zipf it
// supports s = 1, the exponent the paper uses.
type Zipf struct {
	n             uint64
	s             float64
	hx1, hn, sCut float64
}

// NewZipf builds a sampler over {0..n-1} with exponent s (s = 0 is
// uniform, s = 1 is the paper's skew).
func NewZipf(s float64, n uint64) *Zipf {
	if n == 0 {
		n = 1
	}
	z := &Zipf{n: n, s: s}
	z.hx1 = z.hIntegral(1.5) - 1
	z.hn = z.hIntegral(float64(n) + 0.5)
	z.sCut = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// Key implements KeyGen: it returns rank-1 in [0, n).
func (z *Zipf) Key(rng *rand.Rand) uint64 {
	for {
		u := z.hn + rng.Float64()*(z.hx1-z.hn)
		x := z.hIntegralInverse(u)
		k := math.Round(x)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sCut || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// h is the unnormalised density x^-s.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegral is ∫h: (x^(1-s)-1)/(1-s), with the logarithmic branch at
// s=1.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// hIntegralInverse inverts hIntegral.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a stable series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1/3.0)*(1+x*0.25))
}

// Hot deterministically concentrates a fraction of accesses on a
// single key (for targeted load-balancing tests).
type Hot struct {
	// N is the key-space size; HotKey receives Fraction of draws.
	N        uint64
	HotKey   uint64
	Fraction float64
}

// Key implements KeyGen.
func (h Hot) Key(rng *rand.Rand) uint64 {
	if rng.Float64() < h.Fraction {
		return h.HotKey
	}
	return uint64(rng.Int63n(int64(h.N)))
}
