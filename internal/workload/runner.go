package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
)

// Op is one generated command invocation.
type Op struct {
	Cmd   command.ID
	Input []byte
}

// Generator produces a stream of operations. Generators are shared
// across goroutines and must be stateless apart from the caller's rng.
type Generator interface {
	Next(rng *rand.Rand) Op
}

// MixEntry weights one operation maker inside a Mix.
type MixEntry struct {
	// Weight is the entry's relative frequency (parts per total).
	Weight int
	// Make builds one operation.
	Make func(rng *rand.Rand) Op
}

// Mix is a weighted mixture of operation makers.
type Mix struct {
	entries []MixEntry
	total   int
}

// NewMix builds a mixture; entries with non-positive weight are
// dropped.
func NewMix(entries ...MixEntry) *Mix {
	m := &Mix{}
	for _, e := range entries {
		if e.Weight > 0 {
			m.entries = append(m.entries, e)
			m.total += e.Weight
		}
	}
	return m
}

// Next implements Generator.
func (m *Mix) Next(rng *rand.Rand) Op {
	pick := rng.Intn(m.total)
	for _, e := range m.entries {
		pick -= e.Weight
		if pick < 0 {
			return e.Make(rng)
		}
	}
	return m.entries[len(m.entries)-1].Make(rng)
}

// KVReads generates read commands with the given key distribution.
func KVReads(keys KeyGen) Generator {
	return genFunc(func(rng *rand.Rand) Op {
		return Op{Cmd: kvstore.CmdRead, Input: kvstore.EncodeKey(keys.Key(rng))}
	})
}

// KVUpdates generates update commands with 8-byte values.
func KVUpdates(keys KeyGen) Generator {
	return genFunc(func(rng *rand.Rand) Op {
		value := make([]byte, 8)
		rng.Read(value)
		return Op{Cmd: kvstore.CmdUpdate, Input: kvstore.EncodeKeyValue(keys.Key(rng), value)}
	})
}

// KVInsertsDeletes alternates inserts and deletes (the paper's
// dependent-command workload, §VII-D), keeping the database size
// roughly stable.
func KVInsertsDeletes(keys KeyGen) Generator {
	return genFunc(func(rng *rand.Rand) Op {
		key := keys.Key(rng)
		if rng.Intn(2) == 0 {
			value := make([]byte, 8)
			rng.Read(value)
			return Op{Cmd: kvstore.CmdInsert, Input: kvstore.EncodeKeyValue(key, value)}
		}
		return Op{Cmd: kvstore.CmdDelete, Input: kvstore.EncodeKey(key)}
	})
}

// KVMixed generates the paper's mixed workload (§VII-F): dependentPct
// percent inserts+deletes, the rest reads.
func KVMixed(keys KeyGen, dependentPct float64) Generator {
	return genFunc(func(rng *rand.Rand) Op {
		if rng.Float64()*100 < dependentPct {
			return KVInsertsDeletes(keys).Next(rng)
		}
		return Op{Cmd: kvstore.CmdRead, Input: kvstore.EncodeKey(keys.Key(rng))}
	})
}

// KVReadUpdate generates the paper's skewed workload (§VII-G): 50%
// reads, 50% updates.
func KVReadUpdate(keys KeyGen) Generator {
	reads, updates := KVReads(keys), KVUpdates(keys)
	return genFunc(func(rng *rand.Rand) Op {
		if rng.Intn(2) == 0 {
			return reads.Next(rng)
		}
		return updates.Next(rng)
	})
}

// KVTransfers generates two-key transfer commands between distinct
// keys (the multi-key workload).
func KVTransfers(keys KeyGen) Generator {
	return genFunc(func(rng *rand.Rand) Op {
		from := keys.Key(rng)
		to := keys.Key(rng)
		if to == from {
			to = keys.Key(rng) // one redraw keeps self-transfers rare
		}
		return Op{Cmd: kvstore.CmdTransfer, Input: kvstore.EncodeTransfer(from, to, uint64(rng.Intn(100)))}
	})
}

// KVTransferMix generates the multi-key ablation workload: 50% two-key
// transfers, 50% reads. Under the barrier C-G every transfer is an
// all-worker barrier; under key-set C-Dep it holds only its two keys'
// owners.
func KVTransferMix(keys KeyGen) Generator {
	transfers, reads := KVTransfers(keys), KVReads(keys)
	return genFunc(func(rng *rand.Rand) Op {
		if rng.Intn(2) == 0 {
			return transfers.Next(rng)
		}
		return reads.Next(rng)
	})
}

// KVTransferShare generates the multi-key handoff ablation workload:
// transferPct percent two-key transfers between distinct uniformly
// drawn keys, the rest single-key updates. Unlike KVCollisionMix there
// is no hot set and no reads: every command is a keyed write, so the
// sweep isolates how the share of multi-key commands taxes the keyed
// admission path (parked owners vs deposit-and-continue handoff)
// rather than conflict density or reader concurrency.
func KVTransferShare(keys KeyGen, transferPct float64) Generator {
	transfers, updates := KVTransfers(keys), KVUpdates(keys)
	return genFunc(func(rng *rand.Rand) Op {
		if rng.Float64()*100 < transferPct {
			return transfers.Next(rng)
		}
		return updates.Next(rng)
	})
}

// KVCollisionMix generates the optimistic-execution ablation workload:
// collisionPct percent of operations are two-key transfers over a
// small hot key set (heavily conflicting — exactly the commands whose
// speculative order matters), the rest are reads over the full key
// space (conflict-free). At 0% the workload carries no conflicting
// pairs at all, so a speculation can never be contradicted and the
// optimistic hit rate measures pure stream fidelity.
func KVCollisionMix(keys KeyGen, collisionPct float64) Generator {
	return genFunc(func(rng *rand.Rand) Op {
		if rng.Float64()*100 < collisionPct {
			const hot = 16
			from := rng.Uint64() % hot
			to := rng.Uint64() % hot
			if to == from {
				to = (to + 1) % hot
			}
			return Op{Cmd: kvstore.CmdTransfer, Input: kvstore.EncodeTransfer(from, to, uint64(rng.Intn(3)))}
		}
		return Op{Cmd: kvstore.CmdRead, Input: kvstore.EncodeKey(keys.Key(rng))}
	})
}

type genFunc func(rng *rand.Rand) Op

func (f genFunc) Next(rng *rand.Rand) Op { return f(rng) }

// Invoker abstracts the client proxies (core.Client, direct.Client).
type Invoker interface {
	Invoke(cmd command.ID, input []byte) ([]byte, error)
}

// RunnerConfig drives a closed-loop measurement.
type RunnerConfig struct {
	// Clients are the per-client proxies; each runs Window outstanding
	// requests (the paper's window is 50).
	Clients []Invoker
	// Window is the per-client outstanding-request limit. Default 50.
	Window int
	// Gen produces each slot's operation stream.
	Gen Generator
	// Duration is the measured interval (after Warmup). Default 2s.
	Duration time.Duration
	// Warmup is discarded lead-in time. Default 200ms.
	Warmup time.Duration
	// Seed drives per-slot rngs.
	Seed int64
	// OnMeasureStart, if set, runs when the warmup ends (e.g. to reset
	// CPU meters).
	OnMeasureStart func()
}

// Run executes the workload and returns the operation count within the
// measured interval, the measured wall time and the latency histogram.
func Run(cfg RunnerConfig) (ops int64, elapsed time.Duration, hist *bench.Histogram) {
	if cfg.Window <= 0 {
		cfg.Window = 50
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 200 * time.Millisecond
	}
	hist = &bench.Histogram{}
	var (
		measuring atomic.Bool
		stopped   atomic.Bool
		count     atomic.Int64
		wg        sync.WaitGroup
	)
	for ci, client := range cfg.Clients {
		for s := 0; s < cfg.Window; s++ {
			wg.Add(1)
			go func(client Invoker, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for !stopped.Load() {
					op := cfg.Gen.Next(rng)
					start := time.Now()
					if _, err := client.Invoke(op.Cmd, op.Input); err != nil {
						return
					}
					if measuring.Load() {
						hist.Record(time.Since(start))
						count.Add(1)
					}
				}
			}(client, cfg.Seed^int64(ci*1024+s+1))
		}
	}
	time.Sleep(cfg.Warmup)
	if cfg.OnMeasureStart != nil {
		cfg.OnMeasureStart()
	}
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed = time.Since(start)
	stopped.Store(true)
	wg.Wait()
	return count.Load(), elapsed, hist
}
