package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func val(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}

func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree")
	}
	if tr.Update(1, val(1)) {
		t.Fatal("Update on empty tree")
	}
	checkTree(t, tr)
}

func TestInsertGet(t *testing.T) {
	tr := New(8)
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if !tr.Insert(i*7%n, val(i)) {
			t.Fatalf("Insert(%d) reported existing", i*7%n)
		}
	}
	checkTree(t, tr)
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		got, ok := tr.Get(i * 7 % n)
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%d) = %v, %v", i*7%n, got, ok)
		}
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New(8)
	if !tr.Insert(5, val(1)) {
		t.Fatal("first insert")
	}
	if tr.Insert(5, val(2)) {
		t.Fatal("second insert of same key reported new")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, _ := tr.Get(5)
	if !bytes.Equal(got, val(2)) {
		t.Fatalf("Get = %v", got)
	}
}

func TestUpdate(t *testing.T) {
	tr := New(8)
	tr.Insert(3, val(10))
	if !tr.Update(3, val(20)) {
		t.Fatal("Update existing failed")
	}
	got, _ := tr.Get(3)
	if !bytes.Equal(got, val(20)) {
		t.Fatalf("Get = %v", got)
	}
	if tr.Update(4, val(1)) {
		t.Fatal("Update missing succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteAscending(t *testing.T) {
	tr := New(6)
	const n = 500
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, val(i))
	}
	for i := uint64(0); i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missing", i)
		}
		if i%37 == 0 {
			checkTree(t, tr)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full delete", tr.Len())
	}
	checkTree(t, tr)
}

func TestDeleteDescending(t *testing.T) {
	tr := New(6)
	const n = 500
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, val(i))
	}
	for i := int(n) - 1; i >= 0; i-- {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) missing", i)
		}
		if i%41 == 0 {
			checkTree(t, tr)
		}
	}
	checkTree(t, tr)
}

func TestDeleteMissing(t *testing.T) {
	tr := New(8)
	for i := uint64(0); i < 100; i += 2 {
		tr.Insert(i, val(i))
	}
	for i := uint64(1); i < 100; i += 2 {
		if tr.Delete(i) {
			t.Fatalf("Delete(%d) reported present", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestAscend(t *testing.T) {
	tr := New(8)
	keys := []uint64{9, 3, 7, 1, 5}
	for _, k := range keys {
		tr.Insert(k, val(k))
	}
	var got []uint64
	tr.Ascend(func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend order %v, want %v", got, want)
		}
	}
	// Early termination.
	count := 0
	tr.Ascend(func(uint64, []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early-stop count = %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New(6)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, val(i))
	}
	var got []uint64
	tr.AscendRange(25, 31, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 6 || got[0] != 25 || got[5] != 30 {
		t.Fatalf("range = %v", got)
	}
	// Empty range.
	got = nil
	tr.AscendRange(200, 300, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

// Model-based random operation test: the tree must agree with a map
// reference under a long random mixed workload, with invariants intact
// throughout.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, order := range []int{4, 5, 8, 33, DefaultOrder} {
		t.Run(fmt.Sprintf("order%d", order), func(t *testing.T) {
			tr := New(order)
			model := make(map[uint64][]byte)
			rng := rand.New(rand.NewSource(int64(order)))
			const (
				ops      = 20000
				keySpace = 800
			)
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keySpace))
				switch rng.Intn(4) {
				case 0: // insert
					v := val(rng.Uint64())
					_, existed := model[k]
					if added := tr.Insert(k, v); added == existed {
						t.Fatalf("op %d: Insert(%d) added=%v, model existed=%v", i, k, added, existed)
					}
					model[k] = v
				case 1: // delete
					_, existed := model[k]
					if removed := tr.Delete(k); removed != existed {
						t.Fatalf("op %d: Delete(%d) removed=%v, model existed=%v", i, k, removed, existed)
					}
					delete(model, k)
				case 2: // update
					v := val(rng.Uint64())
					_, existed := model[k]
					if updated := tr.Update(k, v); updated != existed {
						t.Fatalf("op %d: Update(%d) = %v, model existed=%v", i, k, updated, existed)
					}
					if existed {
						model[k] = v
					}
				case 3: // get
					want, existed := model[k]
					got, ok := tr.Get(k)
					if ok != existed || (existed && !bytes.Equal(got, want)) {
						t.Fatalf("op %d: Get(%d) = %v,%v, want %v,%v", i, k, got, ok, want, existed)
					}
				}
				if i%2500 == 0 {
					checkTree(t, tr)
				}
			}
			checkTree(t, tr)
			if tr.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
			}
			// Full scan agreement.
			seen := 0
			tr.Ascend(func(k uint64, v []byte) bool {
				want, ok := model[k]
				if !ok || !bytes.Equal(v, want) {
					t.Fatalf("scan: key %d = %v, model %v,%v", k, v, want, ok)
				}
				seen++
				return true
			})
			if seen != len(model) {
				t.Fatalf("scan saw %d, model %d", seen, len(model))
			}
		})
	}
}

// Property-based: insert a random key set, then every key is readable
// and the scan is sorted.
func TestInsertedKeysReadableQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		tr := New(16)
		set := make(map[uint64]bool)
		for _, k := range keys {
			tr.Insert(k, val(k))
			set[k] = true
		}
		if tr.Len() != len(set) {
			return false
		}
		for k := range set {
			v, ok := tr.Get(k)
			if !ok || !bytes.Equal(v, val(k)) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: deleting half the keys leaves exactly the other half.
func TestDeleteHalfQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		tr := New(8)
		set := make(map[uint64]bool)
		for _, k := range keys {
			tr.Insert(k, val(k))
			set[k] = true
		}
		i := 0
		for k := range set {
			if i%2 == 0 {
				if !tr.Delete(k) {
					return false
				}
				delete(set, k)
			}
			i++
		}
		if tr.Len() != len(set) {
			return false
		}
		for k := range set {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("large tree in -short mode")
	}
	tr := New(DefaultOrder)
	const n = 200000
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(n)
	for _, k := range perm {
		tr.Insert(uint64(k), val(uint64(k)))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	checkTree(t, tr)
	for _, k := range perm[:n/2] {
		if !tr.Delete(uint64(k)) {
			t.Fatalf("Delete(%d)", k)
		}
	}
	checkTree(t, tr)
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMinimumOrderRaised(t *testing.T) {
	tr := New(1)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, val(i))
	}
	checkTree(t, tr)
}
