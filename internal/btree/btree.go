// Package btree implements the in-memory B+-tree backing the key-value
// store service (paper §V-A/§VI-B): 8-byte integer keys index byte
// values, entries live in linked leaves, and internal nodes hold
// separators only.
//
// Concurrency contract (matching the paper's execution model): the
// tree itself is unsynchronized. Get and Update touch only the leaf
// slot of their key, so invocations on different keys may run
// concurrently; Insert and Delete can restructure the tree and must be
// exclusive. P-SMR enforces exactly this through the key-value store's
// C-Dep (inserts/deletes depend on everything; reads/updates conflict
// per key); the lockstore baseline enforces it with a lock manager.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the default maximum number of entries per node.
const DefaultOrder = 64

// Tree is a B+-tree from uint64 keys to byte-slice values.
type Tree struct {
	root  *node
	size  int
	order int // max entries per node
}

type node struct {
	// keys holds entry keys in leaves, separator keys in internal
	// nodes (children[i] covers keys < keys[i]; children[len(keys)]
	// covers the rest).
	keys     []uint64
	values   [][]byte // leaves only, parallel to keys
	children []*node  // internal only, len(keys)+1
	next     *node    // leaf chain
}

func (n *node) leaf() bool { return n.children == nil }

// New creates an empty tree with the given order (maximum entries per
// node); order < 4 is raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{
		root:  &node{},
		order: order,
	}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// findLeaf descends to the leaf responsible for key.
func (t *Tree) findLeaf(key uint64) *node {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, key)]
	}
	return n
}

// childIndex returns the child slot covering key: the first separator
// strictly greater than key.
func childIndex(keys []uint64, key uint64) int {
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// entryIndex returns the position of key in a leaf and whether it is
// present.
func entryIndex(keys []uint64, key uint64) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
	return i, i < len(keys) && keys[i] == key
}

// Get returns the value stored under key.
func (t *Tree) Get(key uint64) ([]byte, bool) {
	leaf := t.findLeaf(key)
	if i, ok := entryIndex(leaf.keys, key); ok {
		return leaf.values[i], true
	}
	return nil, false
}

// Update replaces the value of an existing key; it reports false (and
// changes nothing) when the key is absent. Update never restructures
// the tree.
func (t *Tree) Update(key uint64, value []byte) bool {
	leaf := t.findLeaf(key)
	if i, ok := entryIndex(leaf.keys, key); ok {
		leaf.values[i] = value
		return true
	}
	return false
}

// Insert stores value under key, reporting whether the key is new
// (false means an existing value was overwritten).
func (t *Tree) Insert(key uint64, value []byte) bool {
	added, sep, right := t.insert(t.root, key, value)
	if right != nil {
		t.root = &node{
			keys:     []uint64{sep},
			children: []*node{t.root, right},
		}
	}
	if added {
		t.size++
	}
	return added
}

func (t *Tree) insert(n *node, key uint64, value []byte) (added bool, sep uint64, right *node) {
	if n.leaf() {
		i, ok := entryIndex(n.keys, key)
		if ok {
			n.values[i] = value
			return false, 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		if len(n.keys) > t.order {
			sep, right = t.splitLeaf(n)
			return true, sep, right
		}
		return true, 0, nil
	}
	idx := childIndex(n.keys, key)
	added, csep, cright := t.insert(n.children[idx], key, value)
	if cright != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = csep
		n.children = append(n.children, nil)
		copy(n.children[idx+2:], n.children[idx+1:])
		n.children[idx+1] = cright
		if len(n.keys) > t.order {
			sep, right = t.splitInternal(n)
			return added, sep, right
		}
	}
	return added, 0, nil
}

func (t *Tree) splitLeaf(n *node) (sep uint64, right *node) {
	mid := len(n.keys) / 2
	right = &node{
		keys:   append([]uint64(nil), n.keys[mid:]...),
		values: append([][]byte(nil), n.values[mid:]...),
		next:   n.next,
	}
	// Clear moved slots so the backing arrays release the values.
	for i := mid; i < len(n.values); i++ {
		n.values[i] = nil
	}
	n.keys = n.keys[:mid]
	n.values = n.values[:mid]
	n.next = right
	return right.keys[0], right
}

func (t *Tree) splitInternal(n *node) (sep uint64, right *node) {
	mid := len(n.keys) / 2
	sep = n.keys[mid]
	right = &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	for i := mid + 1; i < len(n.children); i++ {
		n.children[i] = nil
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key uint64) bool {
	removed := t.remove(t.root, key)
	if removed {
		t.size--
	}
	// Collapse a root that lost all separators.
	if !t.root.leaf() && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	return removed
}

func (t *Tree) minEntries() int { return t.order / 2 }

func (t *Tree) remove(n *node, key uint64) bool {
	if n.leaf() {
		i, ok := entryIndex(n.keys, key)
		if !ok {
			return false
		}
		copy(n.keys[i:], n.keys[i+1:])
		n.keys = n.keys[:len(n.keys)-1]
		copy(n.values[i:], n.values[i+1:])
		n.values[len(n.values)-1] = nil
		n.values = n.values[:len(n.values)-1]
		return true
	}
	idx := childIndex(n.keys, key)
	removed := t.remove(n.children[idx], key)
	if removed && len(n.children[idx].keys) < t.minEntries() {
		t.rebalance(n, idx)
	}
	return removed
}

// rebalance fixes the underfull child at idx by borrowing from a
// sibling or merging with one.
func (t *Tree) rebalance(parent *node, idx int) {
	child := parent.children[idx]

	// Borrow from the left sibling.
	if idx > 0 {
		left := parent.children[idx-1]
		if len(left.keys) > t.minEntries() {
			if child.leaf() {
				last := len(left.keys) - 1
				child.keys = prependKey(child.keys, left.keys[last])
				child.values = prependValue(child.values, left.values[last])
				left.values[last] = nil
				left.keys = left.keys[:last]
				left.values = left.values[:last]
				parent.keys[idx-1] = child.keys[0]
			} else {
				// Rotate through the parent separator.
				child.keys = prependKey(child.keys, parent.keys[idx-1])
				child.children = prependChild(child.children, left.children[len(left.children)-1])
				parent.keys[idx-1] = left.keys[len(left.keys)-1]
				left.children[len(left.children)-1] = nil
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}
	// Borrow from the right sibling.
	if idx < len(parent.children)-1 {
		right := parent.children[idx+1]
		if len(right.keys) > t.minEntries() {
			if child.leaf() {
				child.keys = append(child.keys, right.keys[0])
				child.values = append(child.values, right.values[0])
				copy(right.keys, right.keys[1:])
				right.keys = right.keys[:len(right.keys)-1]
				copy(right.values, right.values[1:])
				right.values[len(right.values)-1] = nil
				right.values = right.values[:len(right.values)-1]
				parent.keys[idx] = right.keys[0]
			} else {
				child.keys = append(child.keys, parent.keys[idx])
				child.children = append(child.children, right.children[0])
				parent.keys[idx] = right.keys[0]
				copy(right.keys, right.keys[1:])
				right.keys = right.keys[:len(right.keys)-1]
				copy(right.children, right.children[1:])
				right.children[len(right.children)-1] = nil
				right.children = right.children[:len(right.children)-1]
			}
			return
		}
	}
	// Merge with a sibling (into the left node of the pair).
	if idx > 0 {
		t.merge(parent, idx-1)
	} else {
		t.merge(parent, idx)
	}
}

// merge folds parent.children[i+1] into parent.children[i] and removes
// separator i.
func (t *Tree) merge(parent *node, i int) {
	left, right := parent.children[i], parent.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.values = append(left.values, right.values...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, parent.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	copy(parent.keys[i:], parent.keys[i+1:])
	parent.keys = parent.keys[:len(parent.keys)-1]
	copy(parent.children[i+1:], parent.children[i+2:])
	parent.children[len(parent.children)-1] = nil
	parent.children = parent.children[:len(parent.children)-1]
}

func prependKey(s []uint64, k uint64) []uint64 {
	s = append(s, 0)
	copy(s[1:], s)
	s[0] = k
	return s
}

func prependValue(s [][]byte, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[1:], s)
	s[0] = v
	return s
}

func prependChild(s []*node, c *node) []*node {
	s = append(s, nil)
	copy(s[1:], s)
	s[0] = c
	return s
}

// Ascend calls fn for every entry in ascending key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key uint64, value []byte) bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	for n != nil {
		for i, k := range n.keys {
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// AscendRange calls fn for entries with from <= key < to in ascending
// order until fn returns false.
func (t *Tree) AscendRange(from, to uint64, fn func(key uint64, value []byte) bool) {
	n := t.findLeaf(from)
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if k >= to {
				return
			}
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// CheckInvariants validates the structural invariants of the tree; it
// exists for tests and returns a description of the first violation.
func (t *Tree) CheckInvariants() error {
	depth := -1
	var prevKey uint64
	first := true
	var walk func(n *node, level int, min, max uint64, hasMin, hasMax bool) error
	walk = func(n *node, level int, min, max uint64, hasMin, hasMax bool) error {
		if len(n.keys) > t.order {
			return fmt.Errorf("node at level %d overfull: %d > %d", level, len(n.keys), t.order)
		}
		if n != t.root && len(n.keys) < t.minEntries() {
			return fmt.Errorf("node at level %d underfull: %d < %d", level, len(n.keys), t.minEntries())
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("keys out of order at level %d: %d >= %d", level, n.keys[i-1], n.keys[i])
			}
		}
		for _, k := range n.keys {
			if hasMin && k < min {
				return fmt.Errorf("key %d below subtree minimum %d", k, min)
			}
			if hasMax && k >= max {
				return fmt.Errorf("key %d at or above subtree maximum %d", k, max)
			}
		}
		if n.leaf() {
			if len(n.values) != len(n.keys) {
				return fmt.Errorf("leaf keys/values mismatch: %d vs %d", len(n.keys), len(n.values))
			}
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("leaves at different depths: %d vs %d", depth, level)
			}
			for _, k := range n.keys {
				if !first && k <= prevKey {
					return fmt.Errorf("leaf chain out of order: %d <= %d", k, prevKey)
				}
				prevKey, first = k, false
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("internal children/keys mismatch: %d vs %d", len(n.children), len(n.keys))
		}
		for i, c := range n.children {
			cmin, cmax := min, max
			cHasMin, cHasMax := hasMin, hasMax
			if i > 0 {
				cmin, cHasMin = n.keys[i-1], true
			}
			if i < len(n.keys) {
				cmax, cHasMax = n.keys[i], true
			}
			if err := walk(c, level+1, cmin, cmax, cHasMin, cHasMax); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, 0, 0, false, false); err != nil {
		return err
	}
	count := 0
	t.Ascend(func(uint64, []byte) bool { count++; return true })
	if count != t.size {
		return fmt.Errorf("size %d but %d entries reachable", t.size, count)
	}
	return nil
}
