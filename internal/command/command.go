// Package command defines the service abstraction shared by every
// replication technique in this repository (P-SMR, sP-SMR, SMR, no-rep,
// lockstore) plus the wire formats for client requests and responses.
//
// A replicated service is a deterministic state machine: Execute must
// depend only on the current state and the command, never on wall-clock
// time, randomness, or goroutine identity (paper §III).
package command

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"github.com/psmr/psmr/internal/mvstore"
	"github.com/psmr/psmr/internal/transport"
)

// ID identifies a command type of a service (e.g. kvstore read).
type ID uint16

// Service is a deterministic state machine. Implementations must be safe
// for the concurrency promised by their dependency specification: two
// commands declared independent may run concurrently on different worker
// threads, while dependent commands are never concurrent.
type Service interface {
	// Execute applies one command and returns its response payload.
	Execute(cmd ID, input []byte) []byte
}

// Versioned is a state machine whose state lives behind multi-version
// stores (internal/mvstore): speculative executions land their writes
// as uncommitted versions tagged with a speculation epoch, reads
// resolve through (newest uncommitted | committed tip), Commit
// promotes an epoch's versions into committed state and Abort drops
// them — in O(keys the epoch touched), independent of store size.
//
// Optimistic execution uses it to speculate on the unordered stream
// and roll back the minimal conflicting suffix when the decided order
// disagrees: the executor assigns each admitted command a fresh epoch,
// runs it via SpeculateAt, then Commits the epoch when the decided
// order confirms the speculation or Aborts it (newest-first across the
// tainted suffix) when it does not. Epoch mvstore.Committed executes
// directly against committed state — the non-speculative path.
//
// Callers guarantee conflict-serial execution: two commands touching
// the same key never run SpeculateAt concurrently, and Abort only runs
// on a quiesced machine, newest-epoch-first. See the mvstore package
// doc for why that makes the read rule and commit/abort sound.
type Versioned interface {
	Service
	// SpeculateAt applies cmd at epoch e and returns its output.
	// SpeculateAt(Committed, ...) must be equivalent to Execute.
	SpeculateAt(e mvstore.Epoch, cmd ID, input []byte) []byte
	// Commit promotes epoch e's uncommitted versions into the
	// committed state.
	Commit(e mvstore.Epoch)
	// Abort drops epoch e's uncommitted versions.
	Abort(e mvstore.Epoch)
	// Uncommitted reports the total number of uncommitted versions
	// across the service's stores (0 on a fully reconciled machine).
	Uncommitted() int
}

// Snapshotter is a state machine whose whole state can be serialized
// and restored. The checkpoint subsystem uses it for coordinated
// checkpoints (a snapshot taken while every worker thread is quiesced
// at one deterministic log position) and for replica recovery (a
// restarted or freshly added replica restores a peer's snapshot and
// replays the decided suffix).
//
// Snapshot is only called on a quiescent state machine and its
// encoding must be DETERMINISTIC: two replicas that applied the same
// command prefix must produce byte-identical snapshots, so a
// snapshot's hash doubles as a state fingerprint. Restore replaces the
// entire state with the snapshot's; a restored machine followed by the
// decided suffix must be indistinguishable from one that executed the
// whole log.
type Snapshotter interface {
	Service
	// Snapshot serializes the complete current state.
	Snapshot() []byte
	// Restore replaces the state with a previously taken snapshot.
	Restore(snap []byte) error
}

// Gamma is a destination set of worker threads encoded as a bitset:
// bit i set means worker/group i is a destination. The paper caps the
// multiprogramming level well below 64 (experiments use 8), so a single
// word suffices.
type Gamma uint64

// GammaOf builds a Gamma from worker indices.
func GammaOf(workers ...int) Gamma {
	var g Gamma
	for _, w := range workers {
		g |= 1 << uint(w)
	}
	return g
}

// AllWorkers returns the Gamma containing workers 0..k-1.
func AllWorkers(k int) Gamma {
	if k >= 64 {
		k = 64
	}
	return Gamma(1)<<uint(k) - 1
}

// Has reports whether worker i is a destination.
func (g Gamma) Has(i int) bool { return g&(1<<uint(i)) != 0 }

// Count returns the number of destination workers.
func (g Gamma) Count() int { return bits.OnesCount64(uint64(g)) }

// Min returns the lowest destination worker index; this is the thread
// the paper's Algorithm 1 picks deterministically to execute a
// synchronous-mode command (line 16). Min on the empty set returns -1.
func (g Gamma) Min() int {
	if g == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(g))
}

// Member returns the (idx mod Count)-th destination in ascending
// order, or -1 on the empty set. It maps key hashes and random draws
// onto arbitrary worker sets, which is how the compiled route table
// drives the client-side C-G function for restricted sets.
func (g Gamma) Member(idx uint64) int {
	c := g.Count()
	if c == 0 {
		return -1
	}
	v := uint64(g)
	for idx %= uint64(c); idx > 0; idx-- {
		v &= v - 1
	}
	return bits.TrailingZeros64(v)
}

// Workers returns the destination indices in ascending order.
func (g Gamma) Workers() []int {
	ws := make([]int, 0, g.Count())
	for v := uint64(g); v != 0; v &= v - 1 {
		ws = append(ws, bits.TrailingZeros64(v))
	}
	return ws
}

// String renders the bitset as {i,j,...}.
func (g Gamma) String() string {
	return fmt.Sprintf("γ%v", g.Workers())
}

// Request is the unit a client proxy multicasts: one command invocation.
// Client+Seq form the request id used for response matching and
// at-most-once execution.
type Request struct {
	Client uint64
	Seq    uint64
	Cmd    ID
	Gamma  Gamma
	Input  []byte
	Reply  transport.Addr
}

// Response carries a command's output back to the client proxy.
type Response struct {
	Client uint64
	Seq    uint64
	Output []byte
}

var (
	// ErrShortBuffer reports a truncated or corrupt encoding.
	ErrShortBuffer = errors.New("command: short buffer")
)

// AppendRequest appends the wire encoding of r to buf.
func AppendRequest(buf []byte, r *Request) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.Client)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.Cmd))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Gamma))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Input)))
	buf = append(buf, r.Input...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Reply)))
	buf = append(buf, r.Reply...)
	return buf
}

// EncodedRequestSize returns the encoded size of r without encoding it.
func EncodedRequestSize(r *Request) int {
	return 8 + 8 + 2 + 8 + 4 + len(r.Input) + 2 + len(r.Reply)
}

// PeekRequestID reads the request id (Client, Seq) off an encoded
// Request without decoding the rest of the frame. ok is false when buf
// is shorter than the minimum request encoding — callers treating
// arbitrary values (which may not be request encodings at all) should
// pass such values through untouched rather than treat them as ids.
func PeekRequestID(buf []byte) (client, seq uint64, ok bool) {
	if len(buf) < 30 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(buf[0:8]), binary.LittleEndian.Uint64(buf[8:16]), true
}

// DecodeRequest decodes one request from buf, returning the remainder.
// The decoded request aliases buf; callers that retain it must not
// modify the buffer.
func DecodeRequest(buf []byte) (*Request, []byte, error) {
	if len(buf) < 30 {
		return nil, nil, ErrShortBuffer
	}
	r := &Request{
		Client: binary.LittleEndian.Uint64(buf[0:8]),
		Seq:    binary.LittleEndian.Uint64(buf[8:16]),
		Cmd:    ID(binary.LittleEndian.Uint16(buf[16:18])),
		Gamma:  Gamma(binary.LittleEndian.Uint64(buf[18:26])),
	}
	inLen := int(binary.LittleEndian.Uint32(buf[26:30]))
	buf = buf[30:]
	if len(buf) < inLen+2 {
		return nil, nil, ErrShortBuffer
	}
	r.Input = buf[:inLen:inLen]
	buf = buf[inLen:]
	replyLen := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < replyLen {
		return nil, nil, ErrShortBuffer
	}
	r.Reply = transport.Addr(buf[:replyLen])
	return r, buf[replyLen:], nil
}

// AppendResponse appends the wire encoding of resp to buf.
func AppendResponse(buf []byte, resp *Response) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, resp.Client)
	buf = binary.LittleEndian.AppendUint64(buf, resp.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Output)))
	buf = append(buf, resp.Output...)
	return buf
}

// DecodeResponse decodes a response frame. The output aliases buf.
func DecodeResponse(buf []byte) (*Response, error) {
	if len(buf) < 20 {
		return nil, ErrShortBuffer
	}
	resp := &Response{
		Client: binary.LittleEndian.Uint64(buf[0:8]),
		Seq:    binary.LittleEndian.Uint64(buf[8:16]),
	}
	outLen := int(binary.LittleEndian.Uint32(buf[16:20]))
	if len(buf) < 20+outLen {
		return nil, ErrShortBuffer
	}
	resp.Output = buf[20 : 20+outLen : 20+outLen]
	return resp, nil
}
