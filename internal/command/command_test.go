package command

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/psmr/psmr/internal/transport"
)

func TestGammaOf(t *testing.T) {
	tests := []struct {
		name    string
		workers []int
		want    Gamma
	}{
		{name: "empty", workers: nil, want: 0},
		{name: "single", workers: []int{3}, want: 1 << 3},
		{name: "pair", workers: []int{0, 5}, want: 1 | 1<<5},
		{name: "dup", workers: []int{2, 2}, want: 1 << 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GammaOf(tt.workers...); got != tt.want {
				t.Fatalf("GammaOf(%v) = %b, want %b", tt.workers, got, tt.want)
			}
		})
	}
}

func TestAllWorkers(t *testing.T) {
	if got := AllWorkers(3); got != 0b111 {
		t.Fatalf("AllWorkers(3) = %b", got)
	}
	if got := AllWorkers(1); got != 0b1 {
		t.Fatalf("AllWorkers(1) = %b", got)
	}
	if got := AllWorkers(64); got != ^Gamma(0) {
		t.Fatalf("AllWorkers(64) = %b", got)
	}
}

func TestGammaProperties(t *testing.T) {
	g := GammaOf(1, 4, 7)
	if g.Count() != 3 {
		t.Fatalf("Count = %d", g.Count())
	}
	if g.Min() != 1 {
		t.Fatalf("Min = %d", g.Min())
	}
	if !g.Has(4) || g.Has(2) {
		t.Fatalf("Has wrong: %v", g)
	}
	if got := g.Workers(); !reflect.DeepEqual(got, []int{1, 4, 7}) {
		t.Fatalf("Workers = %v", got)
	}
	if Gamma(0).Min() != -1 {
		t.Fatal("empty Min != -1")
	}
}

func TestGammaMember(t *testing.T) {
	g := GammaOf(1, 4, 7)
	for idx, want := range map[uint64]int{0: 1, 1: 4, 2: 7, 3: 1, 4: 4, 100: 4} {
		if got := g.Member(idx); got != want {
			t.Fatalf("Member(%d) = %d, want %d", idx, got, want)
		}
	}
	if Gamma(0).Member(5) != -1 {
		t.Fatal("empty Member != -1")
	}
	// Full sets degenerate to idx mod k, matching the legacy C-G hash.
	full := AllWorkers(8)
	for idx := uint64(0); idx < 32; idx++ {
		if got, want := full.Member(idx), int(idx%8); got != want {
			t.Fatalf("full.Member(%d) = %d, want %d", idx, got, want)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Client: 42,
		Seq:    7,
		Cmd:    3,
		Gamma:  GammaOf(0, 2),
		Input:  []byte("payload bytes"),
		Reply:  transport.Addr("client/42"),
	}
	buf := AppendRequest(nil, req)
	if len(buf) != EncodedRequestSize(req) {
		t.Fatalf("encoded size %d, EncodedRequestSize %d", len(buf), EncodedRequestSize(req))
	}
	got, rest, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if got.Client != req.Client || got.Seq != req.Seq || got.Cmd != req.Cmd ||
		got.Gamma != req.Gamma || !bytes.Equal(got.Input, req.Input) || got.Reply != req.Reply {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
	}
}

func TestRequestRoundTripQuick(t *testing.T) {
	f := func(client, seq uint64, cmd uint16, gamma uint64, input []byte, reply string) bool {
		if len(reply) > 1000 {
			reply = reply[:1000]
		}
		req := &Request{
			Client: client, Seq: seq, Cmd: ID(cmd), Gamma: Gamma(gamma),
			Input: input, Reply: transport.Addr(reply),
		}
		buf := AppendRequest(nil, req)
		got, rest, err := DecodeRequest(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Client == req.Client && got.Seq == req.Seq && got.Cmd == req.Cmd &&
			got.Gamma == req.Gamma && bytes.Equal(got.Input, req.Input) && got.Reply == req.Reply
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestsConcatenated(t *testing.T) {
	// Batches concatenate encoded requests; decoding must walk them.
	var buf []byte
	var want []*Request
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		req := &Request{
			Client: rng.Uint64(),
			Seq:    uint64(i),
			Cmd:    ID(rng.Intn(16)),
			Gamma:  Gamma(rng.Uint64()),
			Input:  make([]byte, rng.Intn(64)),
			Reply:  transport.Addr("r"),
		}
		rng.Read(req.Input)
		want = append(want, req)
		buf = AppendRequest(buf, req)
	}
	rest := buf
	for i := 0; i < 50; i++ {
		var (
			got *Request
			err error
		)
		got, rest, err = DecodeRequest(rest)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.Seq != want[i].Seq || !bytes.Equal(got.Input, want[i].Input) {
			t.Fatalf("request %d mismatch", i)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
}

func TestDecodeRequestShort(t *testing.T) {
	req := &Request{Client: 1, Seq: 2, Cmd: 3, Input: []byte("abcdef"), Reply: "x"}
	buf := AppendRequest(nil, req)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRequest(buf[:cut]); err == nil {
			t.Fatalf("DecodeRequest on %d-byte prefix succeeded", cut)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{Client: 9, Seq: 100, Output: []byte{1, 2, 3}}
	buf := AppendResponse(nil, resp)
	got, err := DecodeResponse(buf)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if got.Client != resp.Client || got.Seq != resp.Seq || !bytes.Equal(got.Output, resp.Output) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, resp)
	}
}

func TestDecodeResponseShort(t *testing.T) {
	resp := &Response{Client: 9, Seq: 100, Output: []byte{1, 2, 3}}
	buf := AppendResponse(nil, resp)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeResponse(buf[:cut]); err == nil {
			t.Fatalf("DecodeResponse on %d-byte prefix succeeded", cut)
		}
	}
}

func TestEmptyResponseOutput(t *testing.T) {
	resp := &Response{Client: 1, Seq: 1}
	got, err := DecodeResponse(AppendResponse(nil, resp))
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if len(got.Output) != 0 {
		t.Fatalf("Output = %v, want empty", got.Output)
	}
}
