package lockstore

import (
	"sync"

	"github.com/psmr/psmr/internal/mvstore"
)

// lockMode is a shared or exclusive request.
type lockMode int

const (
	lockShared lockMode = iota + 1
	lockExclusive
)

// lockTable models Berkeley DB's lock region: every lock and unlock in
// the system passes through one shared structure guarded by a single
// region mutex, with per-lock waiter queues. This central pass — twice
// per object per operation (acquire and release), for multiple objects
// per operation (tree, page, record) — is the locking overhead the
// paper's BDB measurements show.
//
// Lock-owner records live in a versioned store like every other piece
// of service state in this repository; the lock region itself never
// speculates, so all access is at the committed epoch under the region
// mutex (mvstore's committed path adds one uncontended RWMutex pass —
// the BDB baseline's measured overhead stays the region mutex).
type lockTable struct {
	mu    sync.Mutex
	locks *mvstore.Store[uint64, *lockEntry]
}

type lockEntry struct {
	sharedHolders int
	exclusive     bool
	waiters       []*waiter
}

type waiter struct {
	mode  lockMode
	ready chan struct{}
}

func newLockTable() *lockTable {
	return &lockTable{locks: mvstore.New[uint64, *lockEntry](mvstore.MapBase[uint64, *lockEntry]{}, nil)}
}

// acquire blocks until the lock on id is granted in the given mode.
// Grants are FIFO with respect to conflicting waiters, like BDB's
// default conflict resolution.
func (t *lockTable) acquire(id uint64, mode lockMode) {
	t.mu.Lock()
	e, ok := t.locks.Get(mvstore.Committed, id)
	if !ok {
		e = &lockEntry{}
		t.locks.Put(mvstore.Committed, id, e)
	}
	if e.grantable(mode) && len(e.waiters) == 0 {
		e.grant(mode)
		t.mu.Unlock()
		return
	}
	w := &waiter{mode: mode, ready: make(chan struct{})}
	e.waiters = append(e.waiters, w)
	t.mu.Unlock()
	<-w.ready
}

// release drops one holder of id and grants whatever now fits.
func (t *lockTable) release(id uint64, mode lockMode) {
	t.mu.Lock()
	e, ok := t.locks.Get(mvstore.Committed, id)
	if !ok {
		t.mu.Unlock()
		return
	}
	if mode == lockExclusive {
		e.exclusive = false
	} else if e.sharedHolders > 0 {
		e.sharedHolders--
	}
	// Grant from the head of the queue: one exclusive waiter, or a run
	// of shared waiters.
	for len(e.waiters) > 0 {
		head := e.waiters[0]
		if !e.grantable(head.mode) {
			break
		}
		e.grant(head.mode)
		close(head.ready)
		e.waiters[0] = nil
		e.waiters = e.waiters[1:]
		if head.mode == lockExclusive {
			break
		}
	}
	if e.sharedHolders == 0 && !e.exclusive && len(e.waiters) == 0 {
		t.locks.Delete(mvstore.Committed, id)
	}
	t.mu.Unlock()
}

func (e *lockEntry) grantable(mode lockMode) bool {
	if mode == lockShared {
		return !e.exclusive
	}
	return !e.exclusive && e.sharedHolders == 0
}

func (e *lockEntry) grant(mode lockMode) {
	if mode == lockShared {
		e.sharedHolders++
	} else {
		e.exclusive = true
	}
}
