// Package lockstore implements the paper's "BDB" baseline (§VI-B): a
// single multithreaded server that synchronizes command execution with
// locks instead of a scheduler. Like the paper's Berkeley DB
// deployment, "there is no scheduler interposed between clients and
// server threads: each server thread receives requests through a
// separate socket, executes them, and responds to clients."
//
// Synchronization goes through a BDB-style central lock table (see
// locktable.go) and is generic over the service's C-Dep:
//
//   - Global commands (kvstore insert/delete — they restructure the
//     tree) take the structure lock exclusively.
//   - Keyed commands take the structure lock shared, their page lock
//     (key/64) shared, and their record lock shared or exclusive
//     depending on whether the command conflicts with its own kind.
//
// Lock order is always structure → page → record, so single-record
// commands cannot deadlock. Every acquire and release passes through
// the lock region's mutex — six central passes per keyed command —
// which reproduces BDB's qualitative behaviour in the paper's
// Figures 3-5: the lowest throughput of all techniques, with locking
// overhead that grows with thread count and contention.
package lockstore

import (
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
	"github.com/psmr/psmr/internal/transport"
)

// Lock identifier namespaces (high bits).
const (
	lockIDTree   = uint64(0)
	lockNSPage   = uint64(1) << 62
	lockNSRecord = uint64(2) << 62
	pageSpan     = 64 // records per page lock
)

// ServerConfig configures the lock-based server.
type ServerConfig struct {
	// AddrPrefix names the per-thread endpoints: "<prefix>/t<i>".
	// Default "lockstore".
	AddrPrefix string
	// Threads is the number of server threads, each with its own
	// endpoint ("socket").
	Threads int
	// Service is the state machine, shared by all threads and guarded
	// by the lock manager.
	Service command.Service
	// Spec is the service's C-Dep; it drives the locking discipline.
	Spec cdep.Spec
	// Transport carries all traffic.
	Transport transport.Transport
	// DedupWindow bounds the per-thread at-most-once table.
	DedupWindow int
	// CPU optionally meters thread busy time. Lock waits count as busy:
	// that occupancy is precisely the locking overhead the paper's CPU
	// panels show for BDB.
	CPU *bench.CPUMeter
}

// Server is a running lock-based store server.
type Server struct {
	cfg      ServerConfig
	compiled *cdep.Compiled
	locks    *lockTable

	eps []transport.Endpoint
	wg  sync.WaitGroup
}

// ThreadAddr returns the endpoint of server thread i.
func ThreadAddr(prefix string, i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("%s/t%d", prefix, i))
}

// StartServer launches the server threads.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.AddrPrefix == "" {
		cfg.AddrPrefix = "lockstore"
	}
	if cfg.Threads < 1 {
		return nil, fmt.Errorf("lockstore: %d threads", cfg.Threads)
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	compiled, err := cdep.Compile(cfg.Spec, 1)
	if err != nil {
		return nil, fmt.Errorf("lockstore: compile C-Dep: %w", err)
	}
	s := &Server{cfg: cfg, compiled: compiled, locks: newLockTable()}
	for i := 0; i < cfg.Threads; i++ {
		ep, err := cfg.Transport.Listen(ThreadAddr(cfg.AddrPrefix, i))
		if err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("lockstore: listen thread %d: %w", i, err)
		}
		s.eps = append(s.eps, ep)
	}
	for _, ep := range s.eps {
		s.wg.Add(1)
		go s.serve(ep)
	}
	return s, nil
}

// Close stops all server threads.
func (s *Server) Close() error {
	for _, ep := range s.eps {
		_ = ep.Close()
	}
	s.wg.Wait()
	return nil
}

// serve is one server thread: receive, lock, execute, respond.
func (s *Server) serve(ep transport.Endpoint) {
	defer s.wg.Done()
	cpu := s.cfg.CPU.Role("worker")
	table := dedup.NewTable(s.cfg.DedupWindow)
	for frame := range ep.Recv() {
		t0 := time.Now()
		req, _, err := command.DecodeRequest(frame)
		if err != nil {
			cpu.Add(time.Since(t0))
			continue
		}
		// Dedup is per thread; clients stick to one thread, so their
		// retransmissions land on the same table.
		output, dup := table.Lookup(req.Client, req.Seq)
		if !dup {
			output = s.execute(req)
			table.Record(req.Client, req.Seq, output)
		}
		if req.Reply != "" {
			resp := command.AppendResponse(nil, &command.Response{
				Client: req.Client,
				Seq:    req.Seq,
				Output: output,
			})
			_ = s.cfg.Transport.Send(req.Reply, resp)
		}
		cpu.Add(time.Since(t0))
	}
}

// errNoSnapshot reports a service without checkpoint support.
var errNoSnapshot = fmt.Errorf("lockstore: service does not implement command.Snapshotter")

// Snapshot serializes the underlying service state under the exclusive
// structure lock — the same lock every command passes through, so the
// snapshot observes a quiescent state machine even while server
// threads keep serving. It fails when the service is not a
// command.Snapshotter.
func (s *Server) Snapshot() ([]byte, error) {
	snap, ok := s.cfg.Service.(command.Snapshotter)
	if !ok {
		return nil, errNoSnapshot
	}
	s.locks.acquire(lockIDTree, lockExclusive)
	defer s.locks.release(lockIDTree, lockExclusive)
	return snap.Snapshot(), nil
}

// Restore replaces the service state with a snapshot's, under the
// exclusive structure lock.
func (s *Server) Restore(state []byte) error {
	snap, ok := s.cfg.Service.(command.Snapshotter)
	if !ok {
		return errNoSnapshot
	}
	s.locks.acquire(lockIDTree, lockExclusive)
	defer s.locks.release(lockIDTree, lockExclusive)
	return snap.Restore(state)
}

// execute applies one command under the locking discipline derived
// from its C-Dep class: structure → page → record, all through the
// central lock table.
func (s *Server) execute(req *command.Request) []byte {
	if s.compiled.GlobalConflict(req.Cmd) {
		s.locks.acquire(lockIDTree, lockExclusive)
		defer s.locks.release(lockIDTree, lockExclusive)
		return s.cfg.Service.Execute(req.Cmd, req.Input)
	}
	s.locks.acquire(lockIDTree, lockShared)
	defer s.locks.release(lockIDTree, lockShared)
	key, keyed := s.compiled.Key(req.Cmd, req.Input)
	if !keyed || s.compiled.Class(req.Cmd) != cdep.Keyed {
		return s.cfg.Service.Execute(req.Cmd, req.Input)
	}
	pageID := lockNSPage | (key / pageSpan)
	recordID := lockNSRecord | (key &^ (uint64(3) << 62))
	s.locks.acquire(pageID, lockShared)
	defer s.locks.release(pageID, lockShared)
	// Writers are commands that conflict with their own kind.
	mode := lockShared
	if s.compiled.Conflicts(req.Cmd, req.Input, req.Cmd, req.Input) {
		mode = lockExclusive
	}
	s.locks.acquire(recordID, mode)
	defer s.locks.release(recordID, mode)
	return s.cfg.Service.Execute(req.Cmd, req.Input)
}
