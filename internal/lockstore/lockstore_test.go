package lockstore

import (
	"sync"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/direct"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/transport"
)

func startStore(t *testing.T, threads int) (*Server, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	st := kvstore.New()
	st.Preload(1000)
	s, err := StartServer(ServerConfig{
		Threads:   threads,
		Service:   st,
		Spec:      kvstore.Spec(),
		Transport: net,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(); _ = net.Close() })
	return s, net
}

func newDirect(t *testing.T, net *transport.MemNetwork, id uint64, thread int) *direct.Client {
	t.Helper()
	c, err := direct.NewClient(direct.ClientConfig{
		ID:        id,
		Target:    ThreadAddr("lockstore", thread),
		Transport: net,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	_, net := startStore(t, 2)
	c := newDirect(t, net, 1, 0)

	out, err := c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(5))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, code := kvstore.DecodeReadOutput(out); code != kvstore.OK {
		t.Fatalf("preloaded read code %d", code)
	}
	if out, err = c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, []byte("newvalue"))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("update: %v %v", err, out)
	}
	out, _ = c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(5))
	value, _ := kvstore.DecodeReadOutput(out)
	if string(value) != "newvalue" {
		t.Fatalf("read after update: %q", value)
	}
	if out, err = c.Invoke(kvstore.CmdInsert, kvstore.EncodeKeyValue(5000, []byte("inserted"))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("insert: %v %v", err, out)
	}
	if out, err = c.Invoke(kvstore.CmdDelete, kvstore.EncodeKey(5000)); err != nil || out[0] != kvstore.OK {
		t.Fatalf("delete: %v %v", err, out)
	}
}

// Concurrent mixed workload across all threads: the lock discipline
// must keep the tree consistent (this is the data-race test; run with
// -race).
func TestConcurrentMixedWorkload(t *testing.T) {
	const threads = 4
	_, net := startStore(t, threads)

	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		c := newDirect(t, net, uint64(th+1), th)
		wg.Add(1)
		go func(c *direct.Client, th int) {
			defer wg.Done()
			const ops = 300
			for i := 0; i < ops; i++ {
				key := uint64((th*1000 + i) % 2000)
				switch i % 5 {
				case 0:
					if _, err := c.Invoke(kvstore.CmdInsert, kvstore.EncodeKeyValue(key+10000, []byte("xxxxxxxx"))); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				case 1:
					if _, err := c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(key%1000, []byte("yyyyyyyy"))); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				default:
					if _, err := c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key%1000)); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}(c, th)
	}
	wg.Wait()
}

func TestDedupPerThread(t *testing.T) {
	_, net := startStore(t, 2)
	c := newDirect(t, net, 7, 1)
	// Updates through the same thread with duplicated submissions: the
	// direct client retransmits on timeout; here just check a basic
	// invoke works through thread 1 (dedup behaviour is covered by the
	// dedup package tests).
	if _, err := c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(1, []byte("zzzzzzzz"))); err != nil {
		t.Fatalf("update via thread 1: %v", err)
	}
}

func TestLockTableSharedAndExclusive(t *testing.T) {
	lt := newLockTable()
	lt.acquire(1, lockShared)
	lt.acquire(1, lockShared) // second shared holder fine

	done := make(chan struct{})
	go func() {
		lt.acquire(1, lockExclusive) // blocks until both released
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("exclusive granted while shared held")
	case <-time.After(20 * time.Millisecond):
	}
	lt.release(1, lockShared)
	lt.release(1, lockShared)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("exclusive never granted")
	}
	lt.release(1, lockExclusive)
}

func TestLockTableFIFOFairness(t *testing.T) {
	lt := newLockTable()
	lt.acquire(9, lockExclusive)

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt.acquire(9, lockExclusive)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			lt.release(9, lockExclusive)
		}(i)
		time.Sleep(10 * time.Millisecond) // enqueue in index order
	}
	lt.release(9, lockExclusive)
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want FIFO [0 1 2]", order)
	}
}

func TestLockTableSharedRunGranted(t *testing.T) {
	lt := newLockTable()
	lt.acquire(5, lockExclusive)
	var granted sync.WaitGroup
	for i := 0; i < 4; i++ {
		granted.Add(1)
		go func() {
			lt.acquire(5, lockShared)
			granted.Done()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	lt.release(5, lockExclusive)
	done := make(chan struct{})
	go func() { granted.Wait(); close(done) }()
	select {
	case <-done: // all four shared waiters granted together
	case <-time.After(2 * time.Second):
		t.Fatal("shared run not granted after exclusive release")
	}
}

func TestServerValidation(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	if _, err := StartServer(ServerConfig{Threads: 0, Service: kvstore.New(), Spec: kvstore.Spec(), Transport: net}); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestSnapshotUnderLoad(t *testing.T) {
	s, net := startStore(t, 2)
	c := newDirect(t, net, 1, 0)
	for i := 0; i < 20; i++ {
		if _, err := c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(uint64(i), []byte("v"))); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// Snapshot through the exclusive structure lock while threads keep
	// serving, then restore into a fresh store and compare.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	dst := kvstore.New()
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := dst.Fingerprint(), s.cfg.Service.(*kvstore.Store).Fingerprint(); got != want {
		t.Fatalf("restored fingerprint %x != live %x", got, want)
	}
	if err := s.Restore(snap); err != nil {
		t.Fatalf("Server.Restore: %v", err)
	}
}
