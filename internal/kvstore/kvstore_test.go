package kvstore

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
)

func TestInsertReadUpdateDelete(t *testing.T) {
	s := New()

	// Read of a missing key errs.
	out := s.Execute(CmdRead, EncodeKey(5))
	if out[0] != ErrNotFound {
		t.Fatalf("read missing: %v", out)
	}
	// Insert then read.
	out = s.Execute(CmdInsert, EncodeKeyValue(5, []byte("12345678")))
	if out[0] != OK {
		t.Fatalf("insert: %v", out)
	}
	out = s.Execute(CmdRead, EncodeKey(5))
	value, code := DecodeReadOutput(out)
	if code != OK || !bytes.Equal(value, []byte("12345678")) {
		t.Fatalf("read: %v %q", code, value)
	}
	// Update then read.
	if out := s.Execute(CmdUpdate, EncodeKeyValue(5, []byte("abcdefgh"))); out[0] != OK {
		t.Fatalf("update: %v", out)
	}
	value, _ = DecodeReadOutput(s.Execute(CmdRead, EncodeKey(5)))
	if !bytes.Equal(value, []byte("abcdefgh")) {
		t.Fatalf("read after update: %q", value)
	}
	// Delete then read.
	if out := s.Execute(CmdDelete, EncodeKey(5)); out[0] != OK {
		t.Fatalf("delete: %v", out)
	}
	if out := s.Execute(CmdRead, EncodeKey(5)); out[0] != ErrNotFound {
		t.Fatalf("read after delete: %v", out)
	}
}

func TestErrorPaths(t *testing.T) {
	s := New()
	if out := s.Execute(CmdUpdate, EncodeKeyValue(9, []byte("x"))); out[0] != ErrNotFound {
		t.Fatalf("update missing: %v", out)
	}
	if out := s.Execute(CmdDelete, EncodeKey(9)); out[0] != ErrNotFound {
		t.Fatalf("delete missing: %v", out)
	}
	// Truncated inputs.
	for _, cmd := range []command.ID{CmdInsert, CmdDelete, CmdRead, CmdUpdate} {
		if out := s.Execute(cmd, []byte{1, 2}); out[0] != ErrNotFound {
			t.Fatalf("cmd %d short input: %v", cmd, out)
		}
	}
	// Unknown command.
	if out := s.Execute(99, EncodeKey(1)); out[0] != ErrNotFound {
		t.Fatalf("unknown cmd: %v", out)
	}
}

func TestPreload(t *testing.T) {
	s := New()
	s.Preload(1000)
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
	value, code := DecodeReadOutput(s.Execute(CmdRead, EncodeKey(999)))
	if code != OK || len(value) != 8 {
		t.Fatalf("preloaded read: %v %v", code, value)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a, b := New(), New()
	a.Preload(100)
	b.Preload(100)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical stores differ")
	}
	b.Execute(CmdUpdate, EncodeKeyValue(7, []byte("differen")))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("diverged stores match")
	}
}

func TestSpecCompiles(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		c, err := cdep.Compile(Spec(), k)
		if err != nil {
			t.Fatalf("Compile k=%d: %v", k, err)
		}
		if c.Class(CmdInsert) != cdep.Global || c.Class(CmdDelete) != cdep.Global {
			t.Fatal("insert/delete must be global")
		}
		if c.Class(CmdRead) != cdep.Keyed || c.Class(CmdUpdate) != cdep.Keyed {
			t.Fatal("read/update must be keyed")
		}
	}
}

func TestSpecConflictSemantics(t *testing.T) {
	c, err := cdep.Compile(Spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in5 := EncodeKeyValue(5, []byte("v"))
	in6 := EncodeKeyValue(6, []byte("v"))
	if !c.Conflicts(CmdUpdate, in5, CmdUpdate, in5) {
		t.Fatal("update/update same key must conflict")
	}
	if c.Conflicts(CmdUpdate, in5, CmdUpdate, in6) {
		t.Fatal("update/update different keys must not conflict")
	}
	if c.Conflicts(CmdRead, EncodeKey(5), CmdRead, EncodeKey(5)) {
		t.Fatal("read/read must not conflict")
	}
	if !c.Conflicts(CmdInsert, in5, CmdRead, EncodeKey(6)) {
		t.Fatal("insert must conflict with everything")
	}
}

// Sequential random workload against a model map.
func TestRandomAgainstModel(t *testing.T) {
	s := New()
	model := make(map[uint64][]byte)
	rng := rand.New(rand.NewSource(8))
	const ops = 30000
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(500))
		v := make([]byte, 8)
		rng.Read(v)
		switch rng.Intn(4) {
		case 0:
			s.Execute(CmdInsert, EncodeKeyValue(k, v))
			model[k] = v
		case 1:
			out := s.Execute(CmdDelete, EncodeKey(k))
			_, existed := model[k]
			if (out[0] == OK) != existed {
				t.Fatalf("op %d: delete(%d) = %v, existed %v", i, k, out[0], existed)
			}
			delete(model, k)
		case 2:
			out := s.Execute(CmdUpdate, EncodeKeyValue(k, v))
			_, existed := model[k]
			if (out[0] == OK) != existed {
				t.Fatalf("op %d: update(%d) = %v, existed %v", i, k, out[0], existed)
			}
			if existed {
				model[k] = v
			}
		case 3:
			value, code := DecodeReadOutput(s.Execute(CmdRead, EncodeKey(k)))
			want, existed := model[k]
			if (code == OK) != existed || (existed && !bytes.Equal(value, want)) {
				t.Fatalf("op %d: read(%d) = %v/%q, want %v/%q", i, k, code, value, existed, want)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
}

func TestTransfer(t *testing.T) {
	s := New()
	s.Preload(10) // key i → value i
	out := s.Execute(CmdTransfer, EncodeTransfer(7, 2, 5))
	if out[0] != OK {
		t.Fatalf("transfer: %v", out)
	}
	read := func(key uint64) uint64 {
		out := s.Execute(CmdRead, EncodeKey(key))
		value, code := DecodeReadOutput(out)
		if code != OK || len(value) < 8 {
			t.Fatalf("read %d: %v %v", key, code, value)
		}
		return binary.LittleEndian.Uint64(value)
	}
	if got := read(7); got != 2 { // 7 - 5
		t.Fatalf("from balance = %d, want 2", got)
	}
	if got := read(2); got != 7 { // 2 + 5
		t.Fatalf("to balance = %d, want 7", got)
	}
	// Self-transfer is a deterministic no-op.
	if out := s.Execute(CmdTransfer, EncodeTransfer(3, 3, 100)); out[0] != OK {
		t.Fatalf("self transfer: %v", out)
	}
	if got := read(3); got != 3 {
		t.Fatalf("self transfer changed balance to %d", got)
	}
	// Missing endpoints fail without mutating either side.
	if out := s.Execute(CmdTransfer, EncodeTransfer(7, 99, 1)); out[0] != ErrNotFound {
		t.Fatalf("transfer to missing key: %v", out)
	}
	if got := read(7); got != 2 {
		t.Fatalf("failed transfer mutated from balance: %d", got)
	}
	// Short input.
	if out := s.Execute(CmdTransfer, []byte{1, 2}); out[0] != ErrNotFound {
		t.Fatalf("short transfer input: %v", out)
	}
}

func TestTransferSpec(t *testing.T) {
	c, err := cdep.Compile(Spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Class(CmdTransfer); got != cdep.MultiKeyed {
		t.Fatalf("transfer class = %v, want MultiKeyed", got)
	}
	if got := c.Route(CmdTransfer).Kind; got != cdep.RouteMultiKey {
		t.Fatalf("transfer route = %v, want multikey", got)
	}
	// Insert/delete stay global, read/update keyed (TestSpecCompiles
	// covers this; re-assert here so the extension cannot silently
	// shift them).
	if c.Class(CmdInsert) != cdep.Global || c.Class(CmdUpdate) != cdep.Keyed {
		t.Fatal("transfer extension shifted existing classes")
	}
	xfer := EncodeTransfer(5, 11, 1)
	if keys, ok := c.KeySet(CmdTransfer, xfer); !ok || len(keys) != 2 || keys[0] != 5 || keys[1] != 11 {
		t.Fatalf("transfer key set = %v, %v", keys, ok)
	}
	if !c.Conflicts(CmdTransfer, xfer, CmdUpdate, EncodeKeyValue(11, []byte("v"))) {
		t.Fatal("transfer must conflict with update of an endpoint")
	}
	if c.Conflicts(CmdTransfer, xfer, CmdRead, EncodeKey(12)) {
		t.Fatal("transfer must not conflict with a disjoint read")
	}
	// γ is the union of both endpoints' groups.
	if g := c.Groups(CmdTransfer, xfer, nil); g != command.GammaOf(5, 3) {
		t.Fatalf("transfer γ = %v, want %v", g, command.GammaOf(5, 3))
	}
}

func TestMultiRead(t *testing.T) {
	s := New()
	s.Preload(10) // key i → value i
	out := s.Execute(CmdMultiRead, EncodeMultiRead(3, 7, 99))
	values, codes, ok := DecodeMultiReadOutput(out)
	if !ok || len(values) != 3 {
		t.Fatalf("multi-read output: %v %v %v", values, codes, ok)
	}
	for i, want := range []uint64{3, 7} {
		if codes[i] != OK || binary.LittleEndian.Uint64(values[i]) != want {
			t.Fatalf("key %d: code %d value %v", want, codes[i], values[i])
		}
	}
	if codes[2] != ErrNotFound || len(values[2]) != 0 {
		t.Fatalf("missing key 99: code %d value %v", codes[2], values[2])
	}
	// Malformed inputs fail deterministically.
	if out := s.Execute(CmdMultiRead, []byte{1}); out[0] != ErrNotFound {
		t.Fatalf("short input: %v", out)
	}
	if out := s.Execute(CmdMultiRead, EncodeMultiRead()); out[0] != ErrNotFound {
		t.Fatalf("empty key set: %v", out)
	}
	tooMany := make([]uint64, MaxMultiReadKeys+1)
	if out := s.Execute(CmdMultiRead, EncodeMultiRead(tooMany...)); out[0] != ErrNotFound {
		t.Fatalf("oversized key set: %v", out)
	}
}

func TestMultiReadSpec(t *testing.T) {
	c, err := cdep.Compile(Spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := c.Class(CmdMultiRead); got != cdep.MultiKeyed {
		t.Fatalf("multi-read class = %v, want MultiKeyed", got)
	}
	r := c.Route(CmdMultiRead)
	if r.Kind != cdep.RouteMultiKey || !r.ReadOnly {
		t.Fatalf("multi-read route = %v readonly=%v, want read-only multikey", r.Kind, r.ReadOnly)
	}
	// The snapshot must still interlock with same-key writers but not
	// with plain reads or disjoint keys.
	in := EncodeMultiRead(4, 9)
	if !c.Conflicts(CmdMultiRead, in, CmdUpdate, EncodeKeyValue(9, []byte("v"))) {
		t.Fatal("multi-read must conflict with update of a member key")
	}
	if !c.Conflicts(CmdMultiRead, in, CmdTransfer, EncodeTransfer(1, 4, 1)) {
		t.Fatal("multi-read must conflict with transfer touching a member key")
	}
	if c.Conflicts(CmdMultiRead, in, CmdRead, EncodeKey(4)) {
		t.Fatal("multi-read must not conflict with a same-key read")
	}
	if c.Conflicts(CmdMultiRead, in, CmdMultiRead, EncodeMultiRead(4, 9)) {
		t.Fatal("two snapshots must not conflict")
	}
	// Existing classes unchanged by the extension.
	if c.Class(CmdInsert) != cdep.Global || c.Class(CmdUpdate) != cdep.Keyed ||
		c.Route(CmdTransfer).ReadOnly {
		t.Fatal("multi-read extension shifted existing classes")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New()
	src.Preload(500)
	src.Execute(CmdUpdate, EncodeKeyValue(42, []byte("hello")))
	src.Execute(CmdDelete, EncodeKey(7))
	src.Execute(CmdInsert, EncodeKeyValue(9999, []byte("new")))
	src.Execute(CmdTransfer, EncodeTransfer(1, 2, 1))

	snap := src.Snapshot()
	dst := New()
	dst.Preload(3) // restore must discard pre-existing state
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d keys, want %d", dst.Len(), src.Len())
	}
	if dst.Fingerprint() != src.Fingerprint() {
		t.Fatalf("restored fingerprint %x != source %x", dst.Fingerprint(), src.Fingerprint())
	}
	// Determinism: same state, byte-identical snapshot (the checkpoint
	// key derives a fingerprint from these bytes).
	if !bytes.Equal(dst.Snapshot(), snap) {
		t.Fatal("snapshot of restored store differs from original snapshot")
	}
	// A restored store keeps executing.
	if out := dst.Execute(CmdRead, EncodeKey(42)); out[0] != OK || string(out[1:]) != "hello" {
		t.Fatalf("read after restore = %v", out)
	}
}

func TestSnapshotRestoreRejectsCorrupt(t *testing.T) {
	src := New()
	src.Preload(10)
	snap := src.Snapshot()
	dst := New()
	for _, bad := range [][]byte{nil, {0xff}, snap[:len(snap)-3], append(append([]byte(nil), snap...), 1)} {
		if err := dst.Restore(bad); err == nil {
			t.Fatalf("Restore accepted corrupt snapshot of %d bytes", len(bad))
		}
	}
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("Restore after rejections: %v", err)
	}
	if dst.Fingerprint() != src.Fingerprint() {
		t.Fatal("fingerprint mismatch after corrupt-then-good restore")
	}
}
