// Package kvstore implements the paper's key-value store service
// (§V-A/§VI-B): an in-memory B+-tree of 8-byte integer keys and 8-byte
// values with insert, delete, read, update and two-key transfer
// commands.
//
// The dependency structure follows the paper exactly: inserts and
// deletes may restructure the tree (splitting and joining cells), so
// they depend on all commands; an update on key k depends on updates
// and reads on k (and on inserts and deletes). Reads never conflict
// with reads. The transfer extension is a same-key dependency over the
// key SET {from, to} (cdep.KeySetFunc), so two-key transactions ride
// the keyed path instead of serializing globally.
package kvstore

import (
	"encoding/binary"

	"github.com/psmr/psmr/internal/btree"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
)

// Command identifiers of the key-value store service.
const (
	CmdInsert command.ID = iota + 1
	CmdDelete
	CmdRead
	CmdUpdate
	// CmdTransfer is the two-key transaction: it moves an amount from
	// one key's 8-byte counter value to another's. Its C-Dep entry is a
	// same-key dependency over the key SET {from, to}, so it rides the
	// keyed path (class MultiKeyed) instead of falling back to a global
	// barrier.
	CmdTransfer
)

// Error codes returned in the first output byte.
const (
	OK byte = iota
	ErrNotFound
)

// Store is the replicated key-value store state machine. It must be
// driven under the concurrency contract of its Spec: reads/updates on
// distinct keys may run concurrently, inserts/deletes run exclusively
// (P-SMR, sP-SMR and the lock-based baseline all guarantee this in
// their own way).
type Store struct {
	tree *btree.Tree
}

// New creates an empty store.
func New() *Store {
	return &Store{tree: btree.New(btree.DefaultOrder)}
}

// Preload fills the store with n sequential keys (0..n-1), each mapped
// to an 8-byte value, reproducing the paper's initial database of 10
// million keys (§VI-B).
func (s *Store) Preload(n int) {
	for i := 0; i < n; i++ {
		s.tree.Insert(uint64(i), encodeValue(uint64(i)))
	}
}

// Len returns the number of keys.
func (s *Store) Len() int { return s.tree.Len() }

// Fingerprint folds the whole database into one value (for replica
// convergence checks in tests). Only call on a quiescent store.
func (s *Store) Fingerprint() uint64 {
	var h uint64 = 14695981039346656037 // FNV-64 offset basis
	s.tree.Ascend(func(k uint64, v []byte) bool {
		h = fnvMix(h, k)
		for _, b := range v {
			h = (h ^ uint64(b)) * 1099511628211
		}
		return true
	})
	return h
}

func fnvMix(h, k uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (k & 0xff)) * 1099511628211
		k >>= 8
	}
	return h
}

// Execute implements command.Service.
func (s *Store) Execute(cmd command.ID, input []byte) []byte {
	switch cmd {
	case CmdInsert:
		key, value, ok := decodeKeyValue(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		s.tree.Insert(key, value)
		return []byte{OK}
	case CmdDelete:
		key, ok := decodeKey(input)
		if !ok || !s.tree.Delete(key) {
			return []byte{ErrNotFound}
		}
		return []byte{OK}
	case CmdRead:
		key, ok := decodeKey(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		value, found := s.tree.Get(key)
		if !found {
			return []byte{ErrNotFound}
		}
		out := make([]byte, 1+len(value))
		out[0] = OK
		copy(out[1:], value)
		return out
	case CmdUpdate:
		key, value, ok := decodeKeyValue(input)
		if !ok || !s.tree.Update(key, value) {
			return []byte{ErrNotFound}
		}
		return []byte{OK}
	case CmdTransfer:
		from, to, amount, ok := decodeTransfer(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		// The scheduler serializes this invocation against every
		// command touching from or to, so the two-step read-modify-
		// write is atomic under the service's concurrency contract.
		vf, okF := s.tree.Get(from)
		vt, okT := s.tree.Get(to)
		if !okF || !okT || len(vf) < 8 || len(vt) < 8 {
			return []byte{ErrNotFound}
		}
		if from == to {
			return []byte{OK} // self-transfer: balance unchanged
		}
		s.tree.Update(from, encodeValue(binary.LittleEndian.Uint64(vf)-amount))
		s.tree.Update(to, encodeValue(binary.LittleEndian.Uint64(vt)+amount))
		return []byte{OK}
	default:
		return []byte{ErrNotFound}
	}
}

var _ command.Service = (*Store)(nil)

// Spec returns the service's C-Dep (paper §V-A, extended): "inserts and
// deletes depend on all commands; an update on key k depends on other
// updates on k, on reads on k, and on inserts and deletes." A transfer
// over {from, to} depends on updates, reads and transfers touching
// either key (same-key over the key set) and on inserts and deletes.
func Spec() cdep.Spec {
	return cdep.Spec{
		Commands: []cdep.Command{
			{ID: CmdInsert, Name: "insert", Key: KeyOf},
			{ID: CmdDelete, Name: "delete", Key: KeyOf},
			{ID: CmdRead, Name: "read", Key: KeyOf},
			{ID: CmdUpdate, Name: "update", Key: KeyOf},
			{ID: CmdTransfer, Name: "transfer", KeySet: TransferKeysOf},
		},
		Deps: []cdep.Dep{
			{A: CmdInsert, B: CmdInsert}, {A: CmdInsert, B: CmdDelete},
			{A: CmdInsert, B: CmdRead}, {A: CmdInsert, B: CmdUpdate},
			{A: CmdDelete, B: CmdDelete}, {A: CmdDelete, B: CmdRead},
			{A: CmdDelete, B: CmdUpdate},
			{A: CmdInsert, B: CmdTransfer}, {A: CmdDelete, B: CmdTransfer},
			{A: CmdUpdate, B: CmdUpdate, SameKey: true},
			{A: CmdUpdate, B: CmdRead, SameKey: true},
			{A: CmdTransfer, B: CmdTransfer, SameKey: true},
			{A: CmdTransfer, B: CmdRead, SameKey: true},
			{A: CmdTransfer, B: CmdUpdate, SameKey: true},
		},
	}
}

// KeyOf extracts the key from a command input (the cdep.KeyFunc of
// every single-key kvstore command).
func KeyOf(input []byte) (uint64, bool) {
	return decodeKey(input)
}

// TransferKeysOf extracts the {from, to} key set of a transfer (the
// cdep.KeySetFunc of CmdTransfer).
func TransferKeysOf(input []byte) ([]uint64, bool) {
	if len(input) < 16 {
		return nil, false
	}
	return []uint64{
		binary.LittleEndian.Uint64(input[:8]),
		binary.LittleEndian.Uint64(input[8:16]),
	}, true
}

// EncodeKey builds the input of a read or delete.
func EncodeKey(key uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, key)
}

// EncodeKeyValue builds the input of an insert or update.
func EncodeKeyValue(key uint64, value []byte) []byte {
	buf := make([]byte, 8, 8+len(value))
	binary.LittleEndian.PutUint64(buf, key)
	return append(buf, value...)
}

// EncodeTransfer builds the input of a transfer: move amount from one
// key's counter to another's.
func EncodeTransfer(from, to, amount uint64) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf, from)
	binary.LittleEndian.PutUint64(buf[8:], to)
	binary.LittleEndian.PutUint64(buf[16:], amount)
	return buf
}

// DecodeReadOutput splits a read response into its error code and
// value.
func DecodeReadOutput(out []byte) (value []byte, code byte) {
	if len(out) == 0 {
		return nil, ErrNotFound
	}
	return out[1:], out[0]
}

func decodeKey(input []byte) (uint64, bool) {
	if len(input) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(input[:8]), true
}

func decodeKeyValue(input []byte) (uint64, []byte, bool) {
	if len(input) < 8 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(input[:8]), input[8:], true
}

func decodeTransfer(input []byte) (from, to, amount uint64, ok bool) {
	if len(input) < 24 {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(input[:8]),
		binary.LittleEndian.Uint64(input[8:16]),
		binary.LittleEndian.Uint64(input[16:24]), true
}

func encodeValue(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}
