// Package kvstore implements the paper's key-value store service
// (§V-A/§VI-B): an in-memory B+-tree of 8-byte integer keys and 8-byte
// values with insert, delete, read, update and two-key transfer
// commands.
//
// The dependency structure follows the paper exactly: inserts and
// deletes may restructure the tree (splitting and joining cells), so
// they depend on all commands; an update on key k depends on updates
// and reads on k (and on inserts and deletes). Reads never conflict
// with reads. The transfer extension is a same-key dependency over the
// key SET {from, to} (cdep.KeySetFunc), so two-key transactions ride
// the keyed path instead of serializing globally.
package kvstore

import (
	"encoding/binary"
	"fmt"

	"github.com/psmr/psmr/internal/btree"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/mvstore"
)

// Command identifiers of the key-value store service.
const (
	CmdInsert command.ID = iota + 1
	CmdDelete
	CmdRead
	CmdUpdate
	// CmdTransfer is the two-key transaction: it moves an amount from
	// one key's 8-byte counter value to another's. Its C-Dep entry is a
	// same-key dependency over the key SET {from, to}, so it rides the
	// keyed path (class MultiKeyed) instead of falling back to a global
	// barrier.
	CmdTransfer
	// CmdMultiRead is the snapshot read over a key set: it returns the
	// values of up to MaxMultiReadKeys keys as one atomic observation.
	// It is MultiKeyed like the transfer but READ-ONLY (no self-dep,
	// every same-key partner is a writer), so the schedulers latch each
	// key's reader set instead of rendezvousing the keys' owner workers
	// — concurrent snapshots over overlapping sets never serialize.
	CmdMultiRead
)

// MaxMultiReadKeys bounds one snapshot read's key set.
const MaxMultiReadKeys = 32

// Error codes returned in the first output byte.
const (
	OK byte = iota
	ErrNotFound
)

// Store is the replicated key-value store state machine. It must be
// driven under the concurrency contract of its Spec: reads/updates on
// distinct keys may run concurrently, inserts/deletes run exclusively
// (P-SMR, sP-SMR and the lock-based baseline all guarantee this in
// their own way).
type Store struct {
	tree *btree.Tree
	// mv overlays the tree with per-key version chains for optimistic
	// execution (command.Versioned). Non-speculative execution
	// addresses the tree directly and never touches the overlay, so
	// plain P-SMR/sP-SMR deployments keep the unsynchronized hot path.
	mv *mvstore.Store[uint64, []byte]
}

// treeBase adapts the B+-tree to mvstore.Base so committed versions
// promote straight into the tree.
type treeBase struct{ t *btree.Tree }

func (b treeBase) Get(k uint64) ([]byte, bool) { return b.t.Get(k) }
func (b treeBase) Put(k uint64, v []byte)      { b.t.Insert(k, v) }
func (b treeBase) Delete(k uint64) bool        { return b.t.Delete(k) }
func (b treeBase) Len() int                    { return b.t.Len() }
func (b treeBase) Range(fn func(k uint64, v []byte) bool) {
	b.t.Ascend(fn)
}

// New creates an empty store.
func New() *Store {
	t := btree.New(btree.DefaultOrder)
	return &Store{tree: t, mv: mvstore.New[uint64, []byte](treeBase{t}, nil)}
}

// Preload fills the store with n sequential keys (0..n-1), each mapped
// to an 8-byte value, reproducing the paper's initial database of 10
// million keys (§VI-B).
func (s *Store) Preload(n int) {
	for i := 0; i < n; i++ {
		s.tree.Insert(uint64(i), encodeValue(uint64(i)))
	}
}

// Len returns the number of keys.
func (s *Store) Len() int { return s.tree.Len() }

// Fingerprint folds the whole database into one value (for replica
// convergence checks in tests). Only call on a quiescent store.
func (s *Store) Fingerprint() uint64 {
	var h uint64 = 14695981039346656037 // FNV-64 offset basis
	s.tree.Ascend(func(k uint64, v []byte) bool {
		h = fnvMix(h, k)
		for _, b := range v {
			h = (h ^ uint64(b)) * 1099511628211
		}
		return true
	})
	return h
}

func fnvMix(h, k uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (k & 0xff)) * 1099511628211
		k >>= 8
	}
	return h
}

// Execute implements command.Service.
func (s *Store) Execute(cmd command.ID, input []byte) []byte {
	switch cmd {
	case CmdInsert:
		key, value, ok := decodeKeyValue(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		s.tree.Insert(key, value)
		return []byte{OK}
	case CmdDelete:
		key, ok := decodeKey(input)
		if !ok || !s.tree.Delete(key) {
			return []byte{ErrNotFound}
		}
		return []byte{OK}
	case CmdRead:
		key, ok := decodeKey(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		value, found := s.tree.Get(key)
		if !found {
			return []byte{ErrNotFound}
		}
		out := make([]byte, 1+len(value))
		out[0] = OK
		copy(out[1:], value)
		return out
	case CmdUpdate:
		key, value, ok := decodeKeyValue(input)
		if !ok || !s.tree.Update(key, value) {
			return []byte{ErrNotFound}
		}
		return []byte{OK}
	case CmdMultiRead:
		keys, ok := decodeMultiRead(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		// The scheduler holds every key's reader latch for the whole
		// invocation, so the values form one consistent snapshot.
		out := []byte{OK}
		for _, key := range keys {
			value, found := s.tree.Get(key)
			if !found {
				out = append(out, ErrNotFound)
				out = binary.LittleEndian.AppendUint32(out, 0)
				continue
			}
			out = append(out, OK)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(value)))
			out = append(out, value...)
		}
		return out
	case CmdTransfer:
		from, to, amount, ok := decodeTransfer(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		// The scheduler serializes this invocation against every
		// command touching from or to, so the two-step read-modify-
		// write is atomic under the service's concurrency contract.
		vf, okF := s.tree.Get(from)
		vt, okT := s.tree.Get(to)
		if !okF || !okT || len(vf) < 8 || len(vt) < 8 {
			return []byte{ErrNotFound}
		}
		if from == to {
			return []byte{OK} // self-transfer: balance unchanged
		}
		s.tree.Update(from, encodeValue(binary.LittleEndian.Uint64(vf)-amount))
		s.tree.Update(to, encodeValue(binary.LittleEndian.Uint64(vt)+amount))
		return []byte{OK}
	default:
		return []byte{ErrNotFound}
	}
}

var _ command.Service = (*Store)(nil)
var _ command.Versioned = (*Store)(nil)
var _ command.Snapshotter = (*Store)(nil)

// snapshotVersion tags the store's snapshot encoding.
const snapshotVersion = 1

// Snapshot implements command.Snapshotter: the whole tree in ascending
// key order, which is deterministic — replicas holding the same state
// produce byte-identical snapshots. Only call on a quiescent store.
func (s *Store) Snapshot() []byte {
	buf := make([]byte, 0, 1+8+16*s.tree.Len())
	buf = append(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.tree.Len()))
	s.tree.Ascend(func(k uint64, v []byte) bool {
		buf = binary.LittleEndian.AppendUint64(buf, k)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
		return true
	})
	return buf
}

// Restore implements command.Snapshotter: it replaces the store's
// contents with the snapshot's. The ascending insert order rebuilds
// the B+-tree deterministically.
func (s *Store) Restore(snap []byte) error {
	if len(snap) < 9 || snap[0] != snapshotVersion {
		return fmt.Errorf("kvstore: bad snapshot header")
	}
	count := binary.LittleEndian.Uint64(snap[1:9])
	rest := snap[9:]
	tree := btree.New(btree.DefaultOrder)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 12 {
			return fmt.Errorf("kvstore: truncated snapshot entry %d/%d", i, count)
		}
		key := binary.LittleEndian.Uint64(rest[:8])
		vl := int(binary.LittleEndian.Uint32(rest[8:12]))
		rest = rest[12:]
		if len(rest) < vl {
			return fmt.Errorf("kvstore: truncated snapshot value %d/%d", i, count)
		}
		tree.Insert(key, append([]byte(nil), rest[:vl]...))
		rest = rest[vl:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("kvstore: %d trailing snapshot bytes", len(rest))
	}
	s.tree = tree
	s.mv.Reset(treeBase{tree})
	return nil
}

// SpeculateAt implements command.Versioned: it applies cmd exactly
// like Execute but lands every write as an uncommitted version owned
// by epoch e, reading through (newest uncommitted | committed tip).
// Commit(e) then promotes the versions into the tree; Abort(e) drops
// them — either way in O(keys the command touched).
func (s *Store) SpeculateAt(e mvstore.Epoch, cmd command.ID, input []byte) []byte {
	if e == mvstore.Committed {
		return s.Execute(cmd, input)
	}
	switch cmd {
	case CmdInsert:
		key, value, ok := decodeKeyValue(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		s.mv.Put(e, key, value)
		return []byte{OK}
	case CmdDelete:
		key, ok := decodeKey(input)
		if !ok || !s.mv.Delete(e, key) {
			return []byte{ErrNotFound}
		}
		return []byte{OK}
	case CmdRead:
		key, ok := decodeKey(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		value, found := s.mv.Get(e, key)
		if !found {
			return []byte{ErrNotFound}
		}
		out := make([]byte, 1+len(value))
		out[0] = OK
		copy(out[1:], value)
		return out
	case CmdUpdate:
		key, value, ok := decodeKeyValue(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		if _, found := s.mv.Get(e, key); !found {
			return []byte{ErrNotFound}
		}
		s.mv.Put(e, key, value)
		return []byte{OK}
	case CmdMultiRead:
		keys, ok := decodeMultiRead(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		out := []byte{OK}
		for _, key := range keys {
			value, found := s.mv.Get(e, key)
			if !found {
				out = append(out, ErrNotFound)
				out = binary.LittleEndian.AppendUint32(out, 0)
				continue
			}
			out = append(out, OK)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(value)))
			out = append(out, value...)
		}
		return out
	case CmdTransfer:
		from, to, amount, ok := decodeTransfer(input)
		if !ok {
			return []byte{ErrNotFound}
		}
		vf, okF := s.mv.Get(e, from)
		vt, okT := s.mv.Get(e, to)
		if !okF || !okT || len(vf) < 8 || len(vt) < 8 {
			return []byte{ErrNotFound}
		}
		if from == to {
			return []byte{OK}
		}
		s.mv.Put(e, from, encodeValue(binary.LittleEndian.Uint64(vf)-amount))
		s.mv.Put(e, to, encodeValue(binary.LittleEndian.Uint64(vt)+amount))
		return []byte{OK}
	default:
		return []byte{ErrNotFound}
	}
}

// Commit implements command.Versioned: promote epoch e's versions into
// the B+-tree.
func (s *Store) Commit(e mvstore.Epoch) { s.mv.Commit(e) }

// Abort implements command.Versioned: drop epoch e's versions.
func (s *Store) Abort(e mvstore.Epoch) { s.mv.Abort(e) }

// Uncommitted implements command.Versioned.
func (s *Store) Uncommitted() int { return s.mv.Uncommitted() }

// Spec returns the service's C-Dep (paper §V-A, extended): "inserts and
// deletes depend on all commands; an update on key k depends on other
// updates on k, on reads on k, and on inserts and deletes." A transfer
// over {from, to} depends on updates, reads and transfers touching
// either key (same-key over the key set) and on inserts and deletes.
func Spec() cdep.Spec {
	return cdep.Spec{
		Commands: []cdep.Command{
			{ID: CmdInsert, Name: "insert", Key: KeyOf},
			{ID: CmdDelete, Name: "delete", Key: KeyOf},
			{ID: CmdRead, Name: "read", Key: KeyOf},
			{ID: CmdUpdate, Name: "update", Key: KeyOf},
			{ID: CmdTransfer, Name: "transfer", KeySet: TransferKeysOf},
			{ID: CmdMultiRead, Name: "mread", KeySet: MultiReadKeysOf},
		},
		Deps: []cdep.Dep{
			{A: CmdInsert, B: CmdInsert}, {A: CmdInsert, B: CmdDelete},
			{A: CmdInsert, B: CmdRead}, {A: CmdInsert, B: CmdUpdate},
			{A: CmdDelete, B: CmdDelete}, {A: CmdDelete, B: CmdRead},
			{A: CmdDelete, B: CmdUpdate},
			{A: CmdInsert, B: CmdTransfer}, {A: CmdDelete, B: CmdTransfer},
			{A: CmdInsert, B: CmdMultiRead}, {A: CmdDelete, B: CmdMultiRead},
			{A: CmdUpdate, B: CmdUpdate, SameKey: true},
			{A: CmdUpdate, B: CmdRead, SameKey: true},
			{A: CmdTransfer, B: CmdTransfer, SameKey: true},
			{A: CmdTransfer, B: CmdRead, SameKey: true},
			{A: CmdTransfer, B: CmdUpdate, SameKey: true},
			// The snapshot read conflicts with same-key writers only:
			// no self-dep and no dep on CmdRead, so it compiles to a
			// READ-ONLY multi-key route.
			{A: CmdMultiRead, B: CmdUpdate, SameKey: true},
			{A: CmdMultiRead, B: CmdTransfer, SameKey: true},
		},
	}
}

// KeyOf extracts the key from a command input (the cdep.KeyFunc of
// every single-key kvstore command).
func KeyOf(input []byte) (uint64, bool) {
	return decodeKey(input)
}

// TransferKeysOf extracts the {from, to} key set of a transfer (the
// cdep.KeySetFunc of CmdTransfer).
func TransferKeysOf(input []byte) ([]uint64, bool) {
	if len(input) < 16 {
		return nil, false
	}
	return []uint64{
		binary.LittleEndian.Uint64(input[:8]),
		binary.LittleEndian.Uint64(input[8:16]),
	}, true
}

// MultiReadKeysOf extracts the key set of a snapshot read (the
// cdep.KeySetFunc of CmdMultiRead).
func MultiReadKeysOf(input []byte) ([]uint64, bool) {
	return decodeMultiRead(input)
}

// EncodeMultiRead builds the input of a snapshot read over a key set.
func EncodeMultiRead(keys ...uint64) []byte {
	buf := make([]byte, 0, 2+8*len(keys))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(keys)))
	for _, key := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, key)
	}
	return buf
}

// DecodeMultiReadOutput splits a snapshot-read response into per-key
// (value, code) pairs, in the key order of the request input.
func DecodeMultiReadOutput(out []byte) (values [][]byte, codes []byte, ok bool) {
	if len(out) == 0 || out[0] != OK {
		return nil, nil, false
	}
	rest := out[1:]
	for len(rest) > 0 {
		if len(rest) < 5 {
			return nil, nil, false
		}
		code := rest[0]
		vl := int(binary.LittleEndian.Uint32(rest[1:5]))
		rest = rest[5:]
		if len(rest) < vl {
			return nil, nil, false
		}
		codes = append(codes, code)
		values = append(values, rest[:vl:vl])
		rest = rest[vl:]
	}
	return values, codes, true
}

// EncodeKey builds the input of a read or delete.
func EncodeKey(key uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, key)
}

// EncodeKeyValue builds the input of an insert or update.
func EncodeKeyValue(key uint64, value []byte) []byte {
	buf := make([]byte, 8, 8+len(value))
	binary.LittleEndian.PutUint64(buf, key)
	return append(buf, value...)
}

// EncodeTransfer builds the input of a transfer: move amount from one
// key's counter to another's.
func EncodeTransfer(from, to, amount uint64) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf, from)
	binary.LittleEndian.PutUint64(buf[8:], to)
	binary.LittleEndian.PutUint64(buf[16:], amount)
	return buf
}

// DecodeReadOutput splits a read response into its error code and
// value.
func DecodeReadOutput(out []byte) (value []byte, code byte) {
	if len(out) == 0 {
		return nil, ErrNotFound
	}
	return out[1:], out[0]
}

func decodeKey(input []byte) (uint64, bool) {
	if len(input) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(input[:8]), true
}

func decodeKeyValue(input []byte) (uint64, []byte, bool) {
	if len(input) < 8 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(input[:8]), input[8:], true
}

func decodeMultiRead(input []byte) ([]uint64, bool) {
	if len(input) < 2 {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint16(input[:2]))
	if count == 0 || count > MaxMultiReadKeys || len(input) < 2+8*count {
		return nil, false
	}
	keys := make([]uint64, count)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(input[2+8*i:])
	}
	return keys, true
}

func decodeTransfer(input []byte) (from, to, amount uint64, ok bool) {
	if len(input) < 24 {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(input[:8]),
		binary.LittleEndian.Uint64(input[8:16]),
		binary.LittleEndian.Uint64(input[16:24]), true
}

func encodeValue(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}
