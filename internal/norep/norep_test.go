package norep

import (
	"sync"
	"testing"

	"github.com/psmr/psmr/internal/direct"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/transport"
)

func startNoRep(t *testing.T, workers int) *transport.MemNetwork {
	t.Helper()
	net := transport.NewMemNetwork(1)
	st := kvstore.New()
	st.Preload(1000)
	s, err := StartServer(ServerConfig{
		Workers:   workers,
		Service:   st,
		Spec:      kvstore.Spec(),
		Transport: net,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(); _ = net.Close() })
	return net
}

func newClient(t *testing.T, net *transport.MemNetwork, id uint64) *direct.Client {
	t.Helper()
	c, err := direct.NewClient(direct.ClientConfig{
		ID:        id,
		Target:    "norep/server",
		Transport: net,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	net := startNoRep(t, 2)
	c := newClient(t, net, 1)

	out, err := c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(7))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if _, code := kvstore.DecodeReadOutput(out); code != kvstore.OK {
		t.Fatalf("read code %d", code)
	}
	if out, err = c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(7, []byte("abcdefgh"))); err != nil || out[0] != kvstore.OK {
		t.Fatalf("update: %v %v", err, out)
	}
	out, _ = c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(7))
	value, _ := kvstore.DecodeReadOutput(out)
	if string(value) != "abcdefgh" {
		t.Fatalf("read back %q", value)
	}
}

func TestConcurrentClients(t *testing.T) {
	net := startNoRep(t, 4)
	var wg sync.WaitGroup
	for id := uint64(1); id <= 6; id++ {
		c := newClient(t, net, id)
		wg.Add(1)
		go func(c *direct.Client, id uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := (id*100 + uint64(i)) % 1000
				var err error
				if i%4 == 0 {
					_, err = c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(key, []byte("vvvvvvvv")))
				} else if i%31 == 0 {
					_, err = c.Invoke(kvstore.CmdInsert, kvstore.EncodeKeyValue(2000+key, []byte("iiiiiiii")))
				} else {
					_, err = c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key))
				}
				if err != nil {
					t.Errorf("client %d op %d: %v", id, i, err)
					return
				}
			}
		}(c, id)
	}
	wg.Wait()
}

func TestServerValidation(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	if _, err := StartServer(ServerConfig{Workers: 0, Service: kvstore.New(), Spec: kvstore.Spec(), Transport: net}); err == nil {
		t.Fatal("zero workers accepted")
	}
}
