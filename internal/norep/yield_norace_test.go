//go:build !race

package norep

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/direct"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// Regression test for the 1-core no-rep/index convoy artifact (p50≈0
// with rare 50-300ms tail stalls): with the default admission yield,
// a starved-core direct path must keep worst-case latency bounded.
// The file is excluded from race builds — the race detector's
// scheduling perturbation makes wall-clock bounds meaningless there.
func TestDirectPathYieldBoundsTailLatency(t *testing.T) {
	prev := runtime.GOMAXPROCS(1) // reproduce the 1-core convoy setup
	defer runtime.GOMAXPROCS(prev)

	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	st := kvstore.New()
	st.Preload(4096)
	s, err := StartServer(ServerConfig{
		Workers:   4,
		Service:   st,
		Spec:      kvstore.Spec(),
		Transport: net,
		Scheduler: sched.KindIndex,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	const (
		clients   = 4
		opsPerCli = 1500
	)
	var (
		mu    sync.Mutex
		worst time.Duration
		wg    sync.WaitGroup
	)
	for id := uint64(1); id <= clients; id++ {
		c, err := direct.NewClient(direct.ClientConfig{
			ID: id, Target: "norep/server", Transport: net,
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		t.Cleanup(func() { _ = c.Close() })
		wg.Add(1)
		go func(c *direct.Client, id uint64) {
			defer wg.Done()
			var localWorst time.Duration
			for i := 0; i < opsPerCli; i++ {
				key := (id*7919 + uint64(i)) % 4096
				start := time.Now()
				var err error
				if i%2 == 0 {
					_, err = c.Invoke(kvstore.CmdRead, kvstore.EncodeKey(key))
				} else {
					_, err = c.Invoke(kvstore.CmdUpdate, kvstore.EncodeKeyValue(key, []byte("yyyyyyyy")))
				}
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if d := time.Since(start); d > localWorst {
					localWorst = d
				}
			}
			mu.Lock()
			if localWorst > worst {
				worst = localWorst
			}
			mu.Unlock()
		}(c, id)
	}
	wg.Wait()
	// The artifact's stalls reach 50-300ms; the paced path should stay
	// in the low-millisecond range, so 250ms separates the two regimes
	// with plenty of margin over CI noise.
	if worst > 250*time.Millisecond {
		t.Fatalf("worst direct-path latency %v exceeds the 250ms convoy bound", worst)
	}
}
