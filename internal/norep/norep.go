// Package norep implements the paper's non-replicated baseline
// (§VI-B): a single multi-threaded server directly connected to
// clients, with the same scheduler-worker architecture as sP-SMR but
// no ordering protocol underneath. It isolates the cost of the
// scheduler from the cost of atomic multicast — the paper observes
// no-rep's throughput slightly above sP-SMR's for exactly this reason.
package norep

import (
	"fmt"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// ServerConfig configures the non-replicated server.
type ServerConfig struct {
	// Addr is the endpoint clients send requests to.
	Addr transport.Addr
	// Workers is the execution pool size (scheduler thread excluded).
	Workers int
	// Service is the state machine.
	Service command.Service
	// Spec is the service's C-Dep for conflict queries.
	Spec cdep.Spec
	// Transport carries all traffic.
	Transport transport.Transport
	// Scheduler selects the scheduling engine (scan or index-based).
	Scheduler sched.SchedulerKind
	// QueueBound sizes the scheduler hand-off channel.
	QueueBound int
	// DedupWindow bounds the at-most-once table.
	DedupWindow int
	// CPU optionally meters scheduler and worker busy time.
	CPU *bench.CPUMeter
}

// Server is a running no-rep server.
type Server struct {
	ep        transport.Endpoint
	scheduler sched.Engine
	done      chan struct{}
}

// StartServer launches the server.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "norep/server"
	}
	compiled, err := cdep.Compile(cfg.Spec, max(cfg.Workers, 1))
	if err != nil {
		return nil, fmt.Errorf("norep: compile C-Dep: %w", err)
	}
	scheduler, err := sched.StartEngine(sched.Config{
		Kind:        cfg.Scheduler,
		Workers:     cfg.Workers,
		Service:     cfg.Service,
		Compiled:    compiled,
		Transport:   cfg.Transport,
		QueueBound:  cfg.QueueBound,
		DedupWindow: cfg.DedupWindow,
		CPU:         cfg.CPU,
	})
	if err != nil {
		return nil, fmt.Errorf("norep: start scheduler: %w", err)
	}
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		_ = scheduler.Close()
		return nil, fmt.Errorf("norep: listen: %w", err)
	}
	s := &Server{
		ep:        ep,
		scheduler: scheduler,
		done:      make(chan struct{}),
	}
	go s.serve()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.ep.Close()
	<-s.done
	_ = s.scheduler.Close()
	return err
}

// serve feeds inbound requests to the scheduler in arrival order.
func (s *Server) serve() {
	defer close(s.done)
	for frame := range s.ep.Recv() {
		req, _, err := command.DecodeRequest(frame)
		if err != nil {
			continue
		}
		if !s.scheduler.Submit(req) {
			return
		}
	}
}
