// Package norep implements the paper's non-replicated baseline
// (§VI-B): a single multi-threaded server directly connected to
// clients, with the same scheduler-worker architecture as sP-SMR but
// no ordering protocol underneath. It isolates the cost of the
// scheduler from the cost of atomic multicast — the paper observes
// no-rep's throughput slightly above sP-SMR's for exactly this reason.
package norep

import (
	"fmt"
	"runtime"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// ServerConfig configures the non-replicated server.
type ServerConfig struct {
	// Addr is the endpoint clients send requests to.
	Addr transport.Addr
	// Workers is the execution pool size (scheduler thread excluded).
	Workers int
	// Service is the state machine.
	Service command.Service
	// Spec is the service's C-Dep for conflict queries.
	Spec cdep.Spec
	// Transport carries all traffic.
	Transport transport.Transport
	// Scheduler selects the scheduling engine (scan or index-based).
	Scheduler sched.SchedulerKind
	// QueueBound sizes the scheduler hand-off channel.
	QueueBound int
	// DedupWindow bounds the at-most-once table.
	DedupWindow int
	// AdmitBatch caps how many already-arrived requests the server
	// drains into one SubmitBatch. Default 64. There is no ordered
	// batch stream here, so the server forms admission bursts
	// opportunistically: whatever is queued on the endpoint goes down
	// in one engine call.
	AdmitBatch int
	// Tuning carries the batch-first pipeline knobs; the zero value
	// enables batched admission, reader sets and work stealing.
	Tuning sched.Tuning
	// CPU optionally meters scheduler and worker busy time.
	CPU *bench.CPUMeter
}

// Server is a running no-rep server.
type Server struct {
	ep         transport.Endpoint
	scheduler  sched.Engine
	admitBatch int
	perCmd     bool
	yieldEvery int // admission yield period; 0 disables
	done       chan struct{}
}

// StartServer launches the server.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "norep/server"
	}
	compiled, err := cdep.Compile(cfg.Spec, max(cfg.Workers, 1))
	if err != nil {
		return nil, fmt.Errorf("norep: compile C-Dep: %w", err)
	}
	if cfg.AdmitBatch <= 0 {
		cfg.AdmitBatch = 64
	}
	scheduler, err := sched.StartEngine(sched.Config{
		Kind:        cfg.Scheduler,
		Workers:     cfg.Workers,
		Service:     cfg.Service,
		Compiled:    compiled,
		Transport:   cfg.Transport,
		QueueBound:  cfg.QueueBound,
		DedupWindow: cfg.DedupWindow,
		CPU:         cfg.CPU,
		Tuning:      cfg.Tuning,
	})
	if err != nil {
		return nil, fmt.Errorf("norep: start scheduler: %w", err)
	}
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		_ = scheduler.Close()
		return nil, fmt.Errorf("norep: listen: %w", err)
	}
	yieldEvery := cfg.Tuning.AdmitYieldEvery
	if yieldEvery <= 0 {
		yieldEvery = 64
	}
	if cfg.Tuning.NoAdmitYield {
		yieldEvery = 0
	}
	s := &Server{
		ep:         ep,
		scheduler:  scheduler,
		admitBatch: cfg.AdmitBatch,
		perCmd:     cfg.Tuning.NoBatchAdmit,
		yieldEvery: yieldEvery,
		done:       make(chan struct{}),
	}
	go s.serve()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.ep.Close()
	<-s.done
	_ = s.scheduler.Close()
	return err
}

// serve feeds inbound requests to the scheduler in arrival order. It
// blocks for the first frame of a burst, then drains whatever else has
// already arrived (up to AdmitBatch) into one SubmitBatch, so the
// engine pays its admission synchronization once per burst. Under low
// load every burst is a single command; under high load the bursts
// grow toward AdmitBatch by themselves.
//
// Unlike the sP-SMR pump, nothing paces this loop: with fewer cores
// than runnable goroutines the admission loop can stay hot while the
// workers starve behind it, convoying completions into rare long
// stalls (the 1-core p50≈0 / 50-300ms-tail artifact). Yielding every
// Tuning.AdmitYieldEvery admitted commands hands the core to the
// workers at a bounded cadence.
func (s *Server) serve() {
	defer close(s.done)
	recv := s.ep.Recv()
	admitted := 0
	maybeYield := func(n int) {
		if s.yieldEvery == 0 {
			return
		}
		admitted += n
		if admitted >= s.yieldEvery {
			admitted = 0
			runtime.Gosched()
		}
	}
	for frame := range recv {
		if s.perCmd {
			req, _, err := command.DecodeRequest(frame)
			if err != nil {
				continue
			}
			if !s.scheduler.Submit(req) {
				return
			}
			maybeYield(1)
			continue
		}
		reqs := make([]*command.Request, 0, s.admitBatch)
		if req, _, err := command.DecodeRequest(frame); err == nil {
			reqs = append(reqs, req)
		}
	drain:
		for len(reqs) < s.admitBatch {
			select {
			case more, ok := <-recv:
				if !ok {
					break drain
				}
				if req, _, err := command.DecodeRequest(more); err == nil {
					reqs = append(reqs, req)
				}
			default:
				break drain
			}
		}
		if len(reqs) == 0 {
			continue
		}
		if !s.scheduler.SubmitBatch(reqs) {
			return
		}
		maybeYield(len(reqs))
	}
}
