package optimistic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
	"github.com/psmr/psmr/internal/mvstore"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// ExecutorConfig configures a speculative executor.
type ExecutorConfig struct {
	// Workers is the execution pool size.
	Workers int
	// Service must implement command.Versioned: every execution —
	// speculative or decided-path — runs at a speculation epoch whose
	// writes land as uncommitted versions; order-confirmation commits
	// the epoch and a rollback aborts it, in O(keys touched).
	Service command.Service
	// Compiled answers conflict queries (from the service's C-Dep).
	Compiled *cdep.Compiled
	// Transport sends client responses (at confirmation time only).
	Transport transport.Transport
	// Scheduler selects the engine speculation is scheduled through.
	Scheduler sched.SchedulerKind
	// Tuning carries the engine pipeline knobs.
	Tuning sched.Tuning
	// QueueBound sizes the scan engine's hand-off channel.
	QueueBound int
	// DedupWindow bounds the per-client confirmed-output cache.
	// Default 512.
	DedupWindow int
	// MaxSpeculations bounds the unconfirmed speculation window.
	// Default 65536.
	MaxSpeculations int
	// GhostEvictAfter withdraws an unconfirmed speculation once this
	// many decided commands have been reconciled since it was admitted
	// — it was optimistically delivered but never decided (a preempted
	// leader's proposal), and its uncommitted versions would otherwise
	// shadow the committed state for every later speculative read.
	// Eviction is always SAFE (a prematurely evicted speculation simply
	// re-executes as a miss when its decision does arrive), so the
	// bound only trades hit rate against how long a ghost's effects may
	// stay visible to speculation. Default 4096.
	GhostEvictAfter int
	// ReSpeculate re-admits commands withdrawn by a rollback as fresh
	// speculations against the repaired state, instead of leaving them
	// to execute as decided-path misses. With O(touched-keys) aborts a
	// withdrawn command's decision usually has NOT arrived yet (the
	// rollback was triggered by a DIFFERENT command's decide), so there
	// is still time to win the race again. Ghost evictions never
	// re-speculate: a ghost was withdrawn for not being decided, and
	// re-admitting it would undo the eviction forever.
	ReSpeculate bool
	// CPU optionally meters the executor's roles.
	CPU *bench.CPUMeter
	// Trace optionally stamps sampled commands at the
	// confirmation/rollback stage boundaries (and, through the engine,
	// at admission and execution).
	Trace *obs.Tracer
	// Journal optionally records rollback/ghost-eviction events in the
	// flight recorder.
	Journal *obs.Journal
}

// requestID identifies a command invocation.
type requestID struct{ client, seq uint64 }

// entry is one command in the speculation pipeline: admitted to the
// engine, executed (recorded in the speculation log), and eventually
// confirmed by the decided stream or rolled back. Conflict metadata
// (class, canonical key set) is computed ONCE at admission: the
// reconciler compares each decided command against the whole
// speculation window, so per-comparison key extraction would dominate
// the reconcile path.
type entry struct {
	req       *command.Request // original request (Reply intact)
	engineReq *command.Request // Reply-stripped copy admitted to the engine
	output    []byte
	epoch     mvstore.Epoch // speculation epoch its writes landed under
	committed bool          // admitted from the decided stream (miss path)
	executed  bool
	confirmed bool
	done      chan struct{} // closed once executed

	global bool     // compiled class Global: conflicts with everything
	keys   []uint64 // canonical key set (nil when keysOK is false)
	keysOK bool     // key set determinable (false → conservative)

	// logPos is the entry's position in execution-completion order
	// (assigned when the entry is appended to the log); withdrawn marks
	// entries a rollback or ghost eviction removed from the window.
	// Together they let the key index answer "does an unconfirmed
	// conflicting entry precede e?" without scanning the log.
	logPos    uint64
	withdrawn bool

	// admittedAt is the reconciled-decided-command count at admission;
	// an unconfirmed entry left behind by more than GhostEvictAfter
	// decided commands is a ghost and gets withdrawn.
	admittedAt uint64
}

// Executor speculates commands through a sched engine and reconciles
// them against the decided order. Speculate and Commit MUST be called
// from one goroutine (the replica's driver): the engine's admission
// contract and every log-order invariant assume a single serial
// admission stream.
type Executor struct {
	cfg    ExecutorConfig
	engine sched.Engine
	ver    command.Versioned // the service, epoch-addressed

	mu        sync.Mutex
	cond      *sync.Cond // signalled on every hook completion
	admitted  int64      // engine admissions
	executed  int64      // hook completions (drain: executed == admitted)
	epochSeq  mvstore.Epoch
	log       []*entry // execution-completion order
	logSeq    uint64   // next logPos to assign
	doneInLog int      // confirmed entries still in log (compaction)
	byID      map[requestID]*entry

	// pendingReSpec holds rollback-withdrawn requests awaiting
	// re-admission; flushed (engine submission) only after x.mu is
	// released, like every other admission path.
	pendingReSpec []*command.Request

	// Key-indexed speculation window: executed-but-unconfirmed entries
	// bucketed by canonical key, plus the "wild" list of entries that
	// conflict regardless of keys (Global class or undeterminable key
	// set). The reconciler's per-decided-command mismatch check scans
	// only the decided command's own key buckets (plus wild) instead of
	// the whole window — O(conflicting entries) instead of O(window),
	// which is what keeps reconciliation linear during recovery from a
	// large ghost backlog. Buckets are pruned lazily (confirmed and
	// withdrawn entries drop out as they are encountered).
	byKey        map[uint64][]*entry
	wild         []*entry
	confirmed    *dedup.Table // confirmed outputs (decided retransmissions)
	decidedCount uint64       // reconciled decided commands (ghost aging)
	lastEvictChk uint64       // decidedCount at the last ghost scan
	closed       bool

	reconCPU *bench.RoleMeter

	speculated   atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	rollbacks    atomic.Uint64
	rolledBack   atomic.Uint64
	maxDepth     atomic.Uint64
	ghostEvicted atomic.Uint64
	reSpeculated atomic.Uint64
}

// Counters is a snapshot of the executor's speculation statistics.
type Counters struct {
	// Speculated counts commands admitted from the optimistic stream.
	Speculated uint64
	// Hits counts decided commands confirmed straight from their
	// speculative execution (reply released without executing on the
	// decided path).
	Hits uint64
	// Misses counts decided commands that had to execute on the
	// decided path: never speculated, or withdrawn by a rollback.
	Misses uint64
	// Rollbacks counts rollback events (decided/optimistic order
	// mismatches on conflicting commands).
	Rollbacks uint64
	// RolledBack counts speculative executions withdrawn across all
	// rollbacks (the summed rollback depth).
	RolledBack uint64
	// MaxRollbackDepth is the largest single rollback.
	MaxRollbackDepth uint64
	// GhostEvictions counts speculations withdrawn by age — values
	// that were optimistically delivered but never decided (a
	// preempted leader's proposals) and conflicted with nothing that
	// would have rolled them back sooner.
	GhostEvictions uint64
	// ReSpeculations counts rollback-withdrawn commands re-admitted as
	// fresh speculations against the repaired state (ReSpeculate on).
	ReSpeculations uint64
}

// Add folds another snapshot into c (aggregation across replicas):
// counts sum, MaxRollbackDepth takes the maximum.
func (c *Counters) Add(o Counters) {
	c.Speculated += o.Speculated
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Rollbacks += o.Rollbacks
	c.RolledBack += o.RolledBack
	c.GhostEvictions += o.GhostEvictions
	c.ReSpeculations += o.ReSpeculations
	if o.MaxRollbackDepth > c.MaxRollbackDepth {
		c.MaxRollbackDepth = o.MaxRollbackDepth
	}
}

// Decided returns the number of reconciled decided commands.
func (c Counters) Decided() uint64 { return c.Hits + c.Misses }

// HitRate returns the fraction of decided commands served from
// speculation.
func (c Counters) HitRate() float64 {
	if c.Decided() == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Decided())
}

func (c Counters) String() string {
	return fmt.Sprintf("hit-rate %.1f%% (%d/%d), rollbacks %d (depth sum %d, max %d), ghosts evicted %d, re-speculated %d",
		100*c.HitRate(), c.Hits, c.Decided(), c.Rollbacks, c.RolledBack, c.MaxRollbackDepth, c.GhostEvictions, c.ReSpeculations)
}

// StartExecutor launches the engine and the speculation bookkeeping.
func StartExecutor(cfg ExecutorConfig) (*Executor, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	if cfg.MaxSpeculations <= 0 {
		cfg.MaxSpeculations = 1 << 16
	}
	if cfg.GhostEvictAfter <= 0 {
		cfg.GhostEvictAfter = 4096
	}
	if cfg.Compiled == nil {
		return nil, fmt.Errorf("optimistic: Compiled is required")
	}
	x := &Executor{
		cfg:       cfg,
		epochSeq:  mvstore.Committed + 1, // 0 is the committed epoch, never assigned
		byID:      make(map[requestID]*entry),
		byKey:     make(map[uint64][]*entry),
		confirmed: dedup.NewTable(cfg.DedupWindow),
		reconCPU:  cfg.CPU.Role("scheduler"),
	}
	x.cond = sync.NewCond(&x.mu)
	ver, ok := cfg.Service.(command.Versioned)
	if !ok {
		return nil, fmt.Errorf("optimistic: service %T does not implement command.Versioned", cfg.Service)
	}
	x.ver = ver
	engine, err := sched.StartEngine(sched.Config{
		Kind:       cfg.Scheduler,
		Workers:    cfg.Workers,
		Exec:       x.execute,
		Compiled:   cfg.Compiled,
		Transport:  cfg.Transport,
		QueueBound: cfg.QueueBound,
		CPU:        cfg.CPU,
		Trace:      cfg.Trace,
		Journal:    cfg.Journal,
		Tuning:     cfg.Tuning,
	})
	if err != nil {
		return nil, fmt.Errorf("optimistic: start engine: %w", err)
	}
	x.engine = engine
	return x, nil
}

// Close stops the engine. The caller must have stopped feeding
// Speculate/Commit first (the replica closes its learner before this).
func (x *Executor) Close() error {
	x.mu.Lock()
	x.closed = true
	x.cond.Broadcast()
	x.mu.Unlock()
	return x.engine.Close()
}

// Counters returns a snapshot of the speculation statistics.
func (x *Executor) Counters() Counters {
	return Counters{
		Speculated:       x.speculated.Load(),
		Hits:             x.hits.Load(),
		Misses:           x.misses.Load(),
		Rollbacks:        x.rollbacks.Load(),
		RolledBack:       x.rolledBack.Load(),
		MaxRollbackDepth: x.maxDepth.Load(),
		GhostEvictions:   x.ghostEvicted.Load(),
		ReSpeculations:   x.reSpeculated.Load(),
	}
}

// Speculate admits one optimistically delivered batch for speculative
// execution. Duplicates (already speculated or already confirmed) are
// dropped; admission stops while the unconfirmed window is full.
func (x *Executor) Speculate(reqs []*command.Request) {
	var admit []*command.Request
	x.mu.Lock()
	for _, req := range reqs {
		id := requestID{client: req.Client, seq: req.Seq}
		if _, dup := x.byID[id]; dup {
			continue
		}
		if _, dup := x.confirmed.Lookup(req.Client, req.Seq); dup {
			continue
		}
		if len(x.byID) >= x.cfg.MaxSpeculations {
			// Window full (e.g. ghost speculations after repeated
			// fail-overs): degrade to decided-path execution rather
			// than grow without bound.
			break
		}
		e := x.newEntry(req, false)
		x.byID[id] = e
		x.admitted++
		admit = append(admit, e.engineReq)
	}
	x.mu.Unlock()
	if len(admit) == 0 {
		return
	}
	x.speculated.Add(uint64(len(admit)))
	x.engine.SubmitBatch(admit)
}

// Commit reconciles one decided batch, in final order. It blocks until
// every command in the batch has been confirmed and answered.
//
// Commands the batch decides that were never speculated (misses) are
// admitted through the engine in ONE batch up front, so independent
// misses execute in parallel across the worker pool while the
// confirmation walk below proceeds in decided order — without this the
// decided path would execute one command per driver round-trip.
func (x *Executor) Commit(reqs []*command.Request) {
	var admit []*command.Request
	x.mu.Lock()
	for _, req := range reqs {
		id := requestID{client: req.Client, seq: req.Seq}
		if _, dup := x.byID[id]; dup {
			continue
		}
		if _, dup := x.confirmed.Lookup(req.Client, req.Seq); dup {
			continue
		}
		e := x.newEntry(req, true)
		x.byID[id] = e
		x.admitted++
		admit = append(admit, e.engineReq)
	}
	x.mu.Unlock()
	if len(admit) > 0 && !x.engine.SubmitBatch(admit) {
		return // engine stopping; the replica is shutting down
	}
	for _, req := range reqs {
		x.commitOne(req)
	}
	x.mu.Lock()
	x.evictGhostsLocked()
	x.mu.Unlock()
}

func (x *Executor) newEntry(req *command.Request, committed bool) *entry {
	stripped := *req
	stripped.Reply = "" // the engine must never answer a speculation
	e := &entry{
		req:       req,
		engineReq: &stripped,
		committed: committed,
		done:      make(chan struct{}),
	}
	e.global = x.cfg.Compiled.Class(req.Cmd) == cdep.Global
	if !e.global {
		e.keys, e.keysOK = x.cfg.Compiled.KeySet(req.Cmd, req.Input)
	}
	// Caller holds x.mu. Every entry — speculative or decided-path —
	// executes at its own fresh epoch, so confirmation commits exactly
	// its writes and withdrawal aborts exactly its writes.
	e.epoch = x.epochSeq
	x.epochSeq++
	e.admittedAt = x.decidedCount
	return e
}

// execute is the engine's execution hook: it runs one admitted command
// against the speculative state and appends the completion to the
// speculation log. The engine guarantees conflicting commands are
// never concurrent and execute in admission order, so the log's
// conflicting-pair order equals admission order.
func (x *Executor) execute(req *command.Request) []byte {
	x.mu.Lock()
	e := x.byID[requestID{client: req.Client, seq: req.Seq}]
	x.mu.Unlock()
	out := x.ver.SpeculateAt(e.epoch, req.Cmd, req.Input)
	x.mu.Lock()
	e.output = out
	e.executed = true
	e.logPos = x.logSeq
	x.logSeq++
	x.log = append(x.log, e)
	// Key index: wild entries (Global class or undeterminable key set)
	// conflict with everything; the rest bucket under each touched key.
	if e.global || !e.keysOK {
		x.wild = append(x.wild, e)
	} else {
		for _, k := range e.keys {
			x.byKey[k] = append(x.byKey[k], e)
		}
	}
	x.executed++
	x.cond.Broadcast()
	x.mu.Unlock()
	close(e.done)
	return out
}

// pruneScan drops dead (confirmed or withdrawn) entries from a bucket
// in place and reports whether a live entry precedes e in execution
// order and passes match (nil = always conflicts).
func pruneScan(bucket *[]*entry, e *entry, match func(*entry) bool) bool {
	kept := (*bucket)[:0]
	found := false
	for _, o := range *bucket {
		if o.confirmed || o.withdrawn {
			continue
		}
		kept = append(kept, o)
		if !found && e != nil && o != e && o.logPos < e.logPos && (match == nil || match(o)) {
			found = true
		}
	}
	for i := len(kept); i < len(*bucket); i++ {
		(*bucket)[i] = nil
	}
	*bucket = kept
	return found
}

// conflictingPredecessorLocked is the reconciler's mismatch check:
// does an UNCONFIRMED entry precede e in the speculation log and
// conflict with it? It reads the key index — e's own key buckets plus
// the wild list — so the cost is O(entries actually conflicting with
// e), not O(unconfirmed window); a large ghost backlog (recovery, a
// preempted leader's stream) no longer makes every decided command pay
// a full-window scan. Called with x.mu held.
func (x *Executor) conflictingPredecessorLocked(e *entry) bool {
	// Wild entries conflict with everything, e included.
	if pruneScan(&x.wild, e, nil) {
		return true
	}
	if e.global || !e.keysOK {
		// e conflicts with everything: any unconfirmed predecessor
		// counts. The log front scan is bounded by the compaction
		// window (confirmed entries are dropped every 256 confirms).
		for _, o := range x.log {
			if o.logPos >= e.logPos {
				break
			}
			if !o.confirmed {
				return true
			}
		}
		return false
	}
	found := false
	for _, k := range e.keys {
		bucket := x.byKey[k]
		if len(bucket) == 0 {
			continue
		}
		// Every bucket member shares key k with e, so a declared
		// dependency between the command types is a conflict (same-key
		// or not).
		if pruneScan(&bucket, e, func(o *entry) bool {
			dep, _ := x.cfg.Compiled.Dep(o.req.Cmd, e.req.Cmd)
			return dep
		}) {
			found = true
		}
		if len(bucket) == 0 {
			delete(x.byKey, k)
		} else {
			x.byKey[k] = bucket
		}
		if found {
			return true
		}
	}
	return false
}

// commitOne reconciles one decided command (see the package doc's
// HIT/MISS/MISMATCH taxonomy).
func (x *Executor) commitOne(req *command.Request) {
	id := requestID{client: req.Client, seq: req.Seq}
	x.mu.Lock()
	if out, dup := x.confirmed.Lookup(req.Client, req.Seq); dup {
		// Decided-stream retransmission of an already-confirmed
		// command: answer from the cache (at-most-once).
		x.mu.Unlock()
		x.respond(req, out)
		return
	}
	e, speculated := x.byID[id]
	if !speculated {
		// MISS: never speculated. Admit through the engine so it
		// serializes behind every conflicting speculation already
		// admitted — executing it here directly would race a
		// conflicting speculative execution in flight on a worker.
		e = x.newEntry(req, true)
		x.byID[id] = e
		x.admitted++
	}
	closed := x.closed
	x.mu.Unlock()
	if !speculated {
		if !x.engine.SubmitBatch([]*command.Request{e.engineReq}) {
			return // engine stopping; the replica is shutting down
		}
	}
	if closed {
		return
	}
	<-e.done

	t0 := time.Now()
	x.mu.Lock()
	// MISMATCH check: an unconfirmed log entry BEFORE e that conflicts
	// with it executed ahead of e, but the decided order wants e first.
	// The log is complete for this check without draining: the engine
	// executes conflicting commands in admission order, so every
	// conflicting command admitted before e has already executed (and
	// been logged) by the time e's execution completed. The check runs
	// off the key index (e's buckets + the wild list), so its cost
	// scales with e's actual conflicts, not the window size.
	mismatch := x.conflictingPredecessorLocked(e)
	if !mismatch {
		x.confirmLocked(e)
		x.mu.Unlock()
		x.cfg.Trace.StampID(obs.StageConfirm, e.req.Client, e.req.Seq)
		x.respond(e.req, e.output)
		if e.committed {
			x.misses.Add(1)
		} else {
			x.hits.Add(1)
		}
		x.reconCPU.Add(time.Since(t0))
		return
	}
	x.rollbackLocked(e, req)
	x.mu.Unlock()
	x.reconCPU.Add(time.Since(t0))
	// Re-admit the rollback's collateral withdrawals (outside x.mu: the
	// engine submission could block on a full queue while its workers
	// wait on the executor lock).
	x.flushReSpec()
}

// rollbackLocked withdraws the minimal conflicting suffix and
// re-executes the decided command in final order. Called with x.mu
// held; e is the decided command's (mis-ordered) speculative entry.
func (x *Executor) rollbackLocked(e *entry, req *command.Request) {
	// Drain the engine: every admitted command must have executed
	// before epochs are aborted, or an in-flight speculative execution
	// could observe a half-withdrawn prefix. No new admissions can
	// arrive — the driver goroutine is right here.
	for x.executed < x.admitted && !x.closed {
		x.cond.Wait()
	}
	if x.closed {
		return
	}

	// Tainted set: e itself, every unconfirmed entry before e
	// conflicting with e, closed transitively forward over entries
	// conflicting with an already-tainted one (they observed tainted
	// state). Entries after e conflicting only with e's REDONE state
	// are picked up by the same closure through e.
	posE := -1
	for i, o := range x.log {
		if o == e {
			posE = i
			break
		}
	}
	var tainted []*entry
	taintedSet := make(map[*entry]bool)
	for i, o := range x.log {
		if o.confirmed {
			continue
		}
		t := false
		switch {
		case o == e:
			t = true
		case i < posE && x.conflicts(o, e):
			t = true
		default:
			for _, d := range tainted {
				if x.conflicts(o, d) {
					t = true
					break
				}
			}
		}
		if t {
			tainted = append(tainted, o)
			taintedSet[o] = true
		}
	}

	x.withdrawLocked(tainted, taintedSet)

	// Queue the collateral withdrawals (everything tainted except the
	// decided command itself, which confirms right below) for
	// re-speculation against the repaired state: their own decisions
	// have not arrived, so a fresh speculation can still win.
	if x.cfg.ReSpeculate {
		for _, o := range tainted {
			if o != e && !o.committed {
				x.pendingReSpec = append(x.pendingReSpec, o.req)
			}
		}
	}

	// Re-execute e in final order — at the committed epoch, on a
	// drained engine, so its writes apply directly — and confirm it.
	out := x.ver.Execute(req.Cmd, req.Input)
	e.output = out
	e.confirmed = true
	delete(x.byID, requestID{client: req.Client, seq: req.Seq})
	x.confirmed.Record(req.Client, req.Seq, out)
	x.decidedCount++

	depth := uint64(len(tainted))
	x.rollbacks.Add(1)
	x.rolledBack.Add(depth)
	x.cfg.Journal.Emit(obs.EvRollback, uint64(x.decidedCount), depth)
	for {
		max := x.maxDepth.Load()
		if depth <= max || x.maxDepth.CompareAndSwap(max, depth) {
			break
		}
	}
	x.misses.Add(1)
	x.cfg.Trace.StampID(obs.StageRollback, e.req.Client, e.req.Seq)
	x.cfg.Trace.StampID(obs.StageConfirm, e.req.Client, e.req.Seq)
	x.respond(e.req, out)
}

// withdrawLocked removes a tainted suffix from the speculative state by
// aborting each tainted entry's epoch, newest-first — each abort drops
// only that epoch's uncommitted versions, O(keys the command touched),
// and peeling from the newest end keeps every abort at its chains'
// tops. Surviving speculations' versions are untouched (they conflict
// with nothing tainted, so they share no chains). Called with x.mu held
// and the engine drained. Withdrawn entries re-execute when (if) their
// own decisions arrive.
func (x *Executor) withdrawLocked(tainted []*entry, taintedSet map[*entry]bool) {
	for i := len(tainted) - 1; i >= 0; i-- {
		x.ver.Abort(tainted[i].epoch)
	}
	kept := x.log[:0]
	for _, o := range x.log {
		if taintedSet[o] {
			// withdrawn flags the entry dead for the key index's lazy
			// pruning (a re-decided withdrawal re-executes as a NEW
			// entry with its own log position).
			o.withdrawn = true
			delete(x.byID, requestID{client: o.req.Client, seq: o.req.Seq})
			continue
		}
		kept = append(kept, o)
	}
	for i := len(kept); i < len(x.log); i++ {
		x.log[i] = nil
	}
	x.log = kept
}

// evictGhostsLocked withdraws unconfirmed speculations that the
// decided stream has left behind by more than GhostEvictAfter
// commands: they were optimistically delivered but never decided, and
// since they conflict with nothing decided (a conflicting decided
// command would have rolled them back already), nothing else would
// ever withdraw their effects from the speculative state. The closure
// over later conflicting speculations keeps the withdrawal consistent,
// exactly like a rollback. Called with x.mu held; cheap unless the
// quick age scan finds a ghost.
func (x *Executor) evictGhostsLocked() {
	horizon := uint64(x.cfg.GhostEvictAfter)
	cadence := uint64(256)
	if h := horizon / 2; h > 0 && h < cadence {
		cadence = h
	}
	if x.decidedCount-x.lastEvictChk < cadence {
		return
	}
	x.lastEvictChk = x.decidedCount
	if x.decidedCount < horizon {
		return
	}
	evictBefore := x.decidedCount - horizon
	// Age scan over the whole unconfirmed window (byID, not just the
	// log): a ghost still queued in the engine has not executed yet
	// and would be invisible to a log-only scan — the drain below
	// flushes it into the log before the closure is computed.
	stale := false
	for _, o := range x.byID {
		if !o.confirmed && o.admittedAt < evictBefore {
			stale = true
			break
		}
	}
	if !stale {
		return
	}
	// Drain so no in-flight speculative execution observes a
	// half-withdrawn prefix; the driver goroutine is the caller, so no
	// new admissions can arrive.
	for x.executed < x.admitted && !x.closed {
		x.cond.Wait()
	}
	if x.closed {
		return
	}
	var tainted []*entry
	taintedSet := make(map[*entry]bool)
	for _, o := range x.log {
		if o.confirmed {
			continue
		}
		t := o.admittedAt < evictBefore
		if !t {
			for _, d := range tainted {
				if x.conflicts(o, d) {
					t = true
					break
				}
			}
		}
		if t {
			tainted = append(tainted, o)
			taintedSet[o] = true
		}
	}
	x.withdrawLocked(tainted, taintedSet)
	x.ghostEvicted.Add(uint64(len(tainted)))
	if len(tainted) > 0 {
		x.cfg.Journal.Emit(obs.EvGhostEvict, uint64(len(tainted)), 0)
	}
}

// ConfirmedSnapshot serializes the ORDER-CONFIRMED service state — the
// exact state a non-speculative replica would hold after the decided
// prefix reconciled so far — so that a ghost (an optimistically
// delivered, never-decided value) can never leak into a checkpoint.
// The caller must be the replica's driver goroutine, between decided
// batches (every miss-path admission is then confirmed).
//
// With versioned state this needs no quiesce at all: speculative
// writes live as uncommitted versions, the service's Snapshot reads
// only committed versions, and only the driver — the goroutine right
// here — ever commits an epoch. In-flight speculations keep executing
// through the snapshot and the speculation window survives it intact.
//
// ok is false when the service is no command.Snapshotter or the
// executor is shutting down.
func (x *Executor) ConfirmedSnapshot() ([]byte, bool) {
	snap, isSnap := x.cfg.Service.(command.Snapshotter)
	if !isSnap {
		return nil, false
	}
	x.mu.Lock()
	closed := x.closed
	x.mu.Unlock()
	if closed {
		return nil, false
	}
	return snap.Snapshot(), true
}

// flushReSpec re-admits rollback-withdrawn commands as fresh
// speculations (fresh entries, fresh epochs) against the repaired
// state. Runs on the driver goroutine with x.mu NOT held at engine
// submission, exactly like Speculate. A command whose decision arrived
// while it sat in the queue is dropped by the dedup checks and simply
// stays a miss.
func (x *Executor) flushReSpec() {
	x.mu.Lock()
	pending := x.pendingReSpec
	x.pendingReSpec = nil
	var admit []*command.Request
	for _, req := range pending {
		id := requestID{client: req.Client, seq: req.Seq}
		if _, dup := x.byID[id]; dup {
			continue
		}
		if _, dup := x.confirmed.Lookup(req.Client, req.Seq); dup {
			continue
		}
		if len(x.byID) >= x.cfg.MaxSpeculations {
			break
		}
		e := x.newEntry(req, false)
		x.byID[id] = e
		x.admitted++
		admit = append(admit, e.engineReq)
	}
	x.mu.Unlock()
	if len(admit) == 0 {
		return
	}
	x.reSpeculated.Add(uint64(len(admit)))
	x.engine.SubmitBatch(admit)
}

// confirmLocked marks an executed entry order-confirmed: it leaves the
// speculation window and its output becomes the at-most-once record.
func (x *Executor) confirmLocked(e *entry) {
	// Promote the entry's uncommitted versions into the committed
	// state. Safe under x.mu with workers in flight: conflicting
	// commands are engine-serialized, so nothing concurrently touches
	// e's chains, and the mismatch check just established that every
	// conflicting predecessor has been resolved — e's versions sit at
	// the bottom of their chains.
	x.ver.Commit(e.epoch)
	e.confirmed = true
	delete(x.byID, requestID{client: e.req.Client, seq: e.req.Seq})
	x.confirmed.Record(e.req.Client, e.req.Seq, e.output)
	x.decidedCount++
	x.doneInLog++
	if x.doneInLog >= 256 {
		// Compact: drop confirmed entries from the log (order among the
		// survivors is preserved, which is all the invariants need).
		kept := x.log[:0]
		for _, o := range x.log {
			if o.confirmed {
				continue
			}
			kept = append(kept, o)
		}
		for i := len(kept); i < len(x.log); i++ {
			x.log[i] = nil
		}
		x.log = kept
		x.doneInLog = 0
		// Sweep the key index too: lazy pruning only reaps buckets the
		// reconciler touches, so cold keys would otherwise pin their
		// dead entries forever.
		for k, bucket := range x.byKey {
			pruneScan(&bucket, nil, nil)
			if len(bucket) == 0 {
				delete(x.byKey, k)
			} else {
				x.byKey[k] = bucket
			}
		}
		pruneScan(&x.wild, nil, nil)
	}
}

// conflicts reports whether two admitted invocations depend on each
// other under the service's C-Dep, treating Global classes as
// conflicting with everything (the engines serialize them as barriers
// even without a declared dependency). It works entirely off the
// metadata cached at admission — a dep-map lookup plus a sorted-set
// intersection — because the reconciler runs it once per (decided
// command, window entry) pair. The relation is a subset of what the
// engine serializes, which is what makes the speculation log's
// conflicting-pair order trustworthy.
func (x *Executor) conflicts(a, b *entry) bool {
	if a.global || b.global {
		return true
	}
	dep, sameKey := x.cfg.Compiled.Dep(a.req.Cmd, b.req.Cmd)
	if !dep {
		return false
	}
	if !sameKey {
		return true
	}
	if !a.keysOK || !b.keysOK {
		// Undeterminable key set: conservatively conflicting (the
		// engines serialize such invocations as barriers).
		return true
	}
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] == b.keys[j]:
			return true
		case a.keys[i] < b.keys[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// respond sends a confirmed command's response to the client proxy
// (the shared engine helper, so the wire format cannot drift).
func (x *Executor) respond(req *command.Request, output []byte) {
	sched.Respond(x.cfg.Transport, req, output)
}
