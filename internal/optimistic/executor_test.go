package optimistic

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/netfs"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// startKV builds an executor over a preloaded kvstore (a
// command.Versioned service) on the given engine.
func startKV(t *testing.T, kind sched.SchedulerKind, workers, keys int) (*Executor, *kvstore.Store, *transport.MemNetwork) {
	t.Helper()
	st := kvstore.New()
	st.Preload(keys)
	compiled, err := cdep.Compile(kvstore.Spec(), workers)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:   workers,
		Service:   st,
		Compiled:  compiled,
		Transport: net,
		Scheduler: kind,
	})
	if err != nil {
		t.Fatalf("StartExecutor: %v", err)
	}
	t.Cleanup(func() { _ = x.Close() })
	return x, st, net
}

// req builds one kvstore request. Client/seq double as the request id.
func req(client, seq uint64, cmd command.ID, input []byte) *command.Request {
	return &command.Request{Client: client, Seq: seq, Cmd: cmd, Input: input}
}

func val(v uint64) []byte { return binary.LittleEndian.AppendUint64(nil, v) }

func readKey(t *testing.T, st *kvstore.Store, key uint64) uint64 {
	t.Helper()
	out := st.Execute(kvstore.CmdRead, kvstore.EncodeKey(key))
	value, code := kvstore.DecodeReadOutput(out)
	if code != kvstore.OK || len(value) < 8 {
		t.Fatalf("read %d: code %d", key, code)
	}
	return binary.LittleEndian.Uint64(value)
}

// Speculation that matches the decided order confirms without
// executing anything on the decided path: 100% hit rate, no rollbacks.
func TestHitPathConfirmsSpeculation(t *testing.T) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			x, st, _ := startKV(t, kind, 4, 64)
			var batch []*command.Request
			for i := uint64(0); i < 16; i++ {
				batch = append(batch, req(1, i+1, kvstore.CmdUpdate,
					kvstore.EncodeKeyValue(i%8, val(100+i))))
			}
			x.Speculate(batch)
			x.Commit(batch) // decided order == optimistic order
			c := x.Counters()
			if c.Hits != 16 || c.Misses != 0 || c.Rollbacks != 0 {
				t.Fatalf("counters = %+v, want 16 hits", c)
			}
			// Last update per key wins: key k holds 100+k+8.
			for k := uint64(0); k < 8; k++ {
				if got := readKey(t, st, k); got != 100+k+8 {
					t.Fatalf("key %d = %d, want %d", k, got, 100+k+8)
				}
			}
		})
	}
}

// A decided command that was never speculated executes on the decided
// path (miss), serialized behind conflicting speculations.
func TestMissExecutesOnDecidedPath(t *testing.T) {
	x, st, _ := startKV(t, sched.KindIndex, 4, 64)
	spec := []*command.Request{req(1, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(3, val(111)))}
	x.Speculate(spec)
	missed := req(2, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(3, val(222)))
	x.Commit(spec)                             // hit
	x.Commit([]*command.Request{missed})       // miss, after the hit
	c := x.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Rollbacks != 0 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss", c)
	}
	if got := readKey(t, st, 3); got != 222 {
		t.Fatalf("key 3 = %d, want 222 (decided-path execution lost)", got)
	}
}

// When the decided order disagrees with the speculation order on a
// conflicting pair, the conflicting suffix rolls back and re-executes
// in final order; non-conflicting speculations survive.
func TestMismatchRollsBackConflictingSuffix(t *testing.T) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			x, st, _ := startKV(t, kind, 4, 64)
			a := req(1, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, val(111)))
			b := req(2, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, val(222)))
			other := req(3, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(9, val(999)))
			// Speculate a before b; decide b before a.
			x.Speculate([]*command.Request{a, other})
			x.Commit([]*command.Request{}) // no-op
			x.Speculate([]*command.Request{b})
			x.Commit([]*command.Request{b, a, other})
			c := x.Counters()
			if c.Rollbacks == 0 {
				t.Fatalf("counters = %+v, want at least one rollback", c)
			}
			// Final order b then a: key 5 ends at 111.
			if got := readKey(t, st, 5); got != 111 {
				t.Fatalf("key 5 = %d, want 111 (decided order b,a)", got)
			}
			if got := readKey(t, st, 9); got != 999 {
				t.Fatalf("key 9 = %d, want 999 (non-conflicting speculation lost)", got)
			}
		})
	}
}

// A speculated command whose value is never decided (a ghost) is
// withdrawn by the first conflicting decided command and leaves no
// trace in the state.
func TestNeverDecidedSpeculationRolledBack(t *testing.T) {
	x, st, _ := startKV(t, sched.KindIndex, 2, 64)
	ghost := req(7, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(4, val(777)))
	x.Speculate([]*command.Request{ghost})
	real := req(8, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(4, val(888)))
	x.Commit([]*command.Request{real})
	if got := readKey(t, st, 4); got != 888 {
		t.Fatalf("key 4 = %d, want 888 (ghost effect visible)", got)
	}
	c := x.Counters()
	if c.Rollbacks != 1 || c.RolledBack < 1 {
		t.Fatalf("counters = %+v, want one rollback withdrawing the ghost", c)
	}
}

// Transfers exercise multi-key speculation: conservation holds through
// hits and rollbacks, and the final balances equal the decided order's.
func TestTransferSpeculationConservesAndMatchesDecidedOrder(t *testing.T) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			const keys = 16
			x, st, _ := startKV(t, kind, 4, keys)
			rng := rand.New(rand.NewSource(42))
			var ops []*command.Request
			for i := uint64(1); i <= 60; i++ {
				from, to := rng.Uint64()%keys, rng.Uint64()%keys
				ops = append(ops, req(1, i, kvstore.CmdTransfer,
					kvstore.EncodeTransfer(from, to, rng.Uint64()%5)))
			}
			// Speculate in a perturbed order: swap adjacent pairs.
			perturbed := append([]*command.Request(nil), ops...)
			for i := 0; i+1 < len(perturbed); i += 2 {
				perturbed[i], perturbed[i+1] = perturbed[i+1], perturbed[i]
			}
			x.Speculate(perturbed)
			x.Commit(ops)

			// Reference: decided order executed serially.
			ref := kvstore.New()
			ref.Preload(keys)
			for _, op := range ops {
				ref.Execute(op.Cmd, op.Input)
			}
			if st.Fingerprint() != ref.Fingerprint() {
				t.Fatalf("state diverged from decided order (rollbacks=%d)", x.Counters().Rollbacks)
			}
			if c := x.Counters(); c.Rollbacks == 0 {
				t.Fatalf("perturbed speculation produced no rollbacks: %+v", c)
			}
		})
	}
}

// Decided-stream retransmissions are answered from the confirmed cache
// and never re-executed.
func TestDecidedRetransmissionAnsweredOnce(t *testing.T) {
	x, st, net := startKV(t, sched.KindIndex, 2, 64)
	reply, err := net.Listen("cli")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	r := req(1, 1, kvstore.CmdTransfer, kvstore.EncodeTransfer(1, 2, 1))
	r.Reply = "cli"
	x.Speculate([]*command.Request{r})
	x.Commit([]*command.Request{r, r}) // decided twice (client retransmission)
	for i := 0; i < 2; i++ {
		select {
		case frame := <-reply.Recv():
			resp, err := command.DecodeResponse(frame)
			if err != nil || resp.Seq != 1 || resp.Output[0] != kvstore.OK {
				t.Fatalf("response %d: %v %+v", i, err, resp)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("missing response %d", i)
		}
	}
	// Executed once: 1 moved exactly once.
	if got := readKey(t, st, 1); got != 0 {
		t.Fatalf("key 1 = %d, want 0 (transfer executed %s)", got, "twice?")
	}
	c := x.Counters()
	if c.Decided() != 1 {
		t.Fatalf("counters = %+v, want 1 decided command", c)
	}
}

// The versioned netfs: speculation lands as uncommitted versions over
// the flat-path stores, rollback aborts just the tainted epochs, and
// the decided order's state matches a serial reference execution byte
// for byte.
func TestVersionedNetFS(t *testing.T) {
	svc := netfs.NewService()
	const t0 = int64(1_700_000_000_000_000_000)
	svc.FS().Mkdir("/d", 0o755, t0)
	compiled, err := cdep.Compile(netfs.Spec(), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:   4,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
		Scheduler: sched.KindIndex,
	})
	if err != nil {
		t.Fatalf("StartExecutor: %v", err)
	}
	t.Cleanup(func() { _ = x.Close() })

	modeTime := func(mode uint32) []byte {
		buf := make([]byte, 12)
		binary.LittleEndian.PutUint32(buf, mode)
		binary.LittleEndian.PutUint64(buf[4:], uint64(t0))
		return buf
	}
	var ops []*command.Request
	for i := uint64(1); i <= 20; i++ {
		path := fmt.Sprintf("/d/f%d", i%5)
		cmd := netfs.CmdMknod
		input := netfs.EncodeInput(path, modeTime(0o644))
		if i%3 == 0 {
			cmd = netfs.CmdUnlink
			input = netfs.EncodeInput(path, binary.LittleEndian.AppendUint64(nil, uint64(t0)))
		}
		ops = append(ops, req(1, i, cmd, input))
	}
	perturbed := append([]*command.Request(nil), ops...)
	for i := 0; i+1 < len(perturbed); i += 2 {
		perturbed[i], perturbed[i+1] = perturbed[i+1], perturbed[i]
	}
	x.Speculate(perturbed)
	x.Commit(ops)

	ref := netfs.NewService()
	ref.FS().Mkdir("/d", 0o755, t0)
	for _, op := range ops {
		ref.Execute(op.Cmd, op.Input)
	}
	// The committed versions are the replica's authoritative state.
	if got, want := svc.FS().Fingerprint(), ref.FS().Fingerprint(); got != want {
		t.Fatalf("committed state %x != reference %x (rollbacks=%d)", got, want, x.Counters().Rollbacks)
	}
	if c := x.Counters(); c.Rollbacks == 0 {
		t.Fatalf("perturbed netfs speculation produced no rollbacks: %+v", c)
	}
}

// Randomized cross-engine determinism: a mixed workload (updates,
// transfers, snapshot reads, reads, occasional global inserts) with a
// perturbed optimistic order must land every engine and strategy on
// the decided order's exact state.
func TestRandomizedDeterminismAcrossEngines(t *testing.T) {
	const (
		keys = 24
		n    = 400
	)
	rng := rand.New(rand.NewSource(99))
	var ops []*command.Request
	for i := uint64(1); i <= n; i++ {
		k := rng.Uint64() % keys
		switch rng.Intn(10) {
		case 0, 1, 2:
			ops = append(ops, req(1, i, kvstore.CmdUpdate,
				kvstore.EncodeKeyValue(k, val(rng.Uint64()))))
		case 3, 4, 5:
			ops = append(ops, req(1, i, kvstore.CmdTransfer,
				kvstore.EncodeTransfer(k, rng.Uint64()%keys, rng.Uint64()%3)))
		case 6:
			ops = append(ops, req(1, i, kvstore.CmdMultiRead,
				kvstore.EncodeMultiRead(k, rng.Uint64()%keys)))
		case 7:
			ops = append(ops, req(1, i, kvstore.CmdInsert,
				kvstore.EncodeKeyValue(keys+i, val(i))))
		default:
			ops = append(ops, req(1, i, kvstore.CmdRead, kvstore.EncodeKey(k)))
		}
	}
	// Perturbation: rotate windows of 3.
	perturbed := append([]*command.Request(nil), ops...)
	for i := 0; i+2 < len(perturbed); i += 3 {
		perturbed[i], perturbed[i+1], perturbed[i+2] = perturbed[i+2], perturbed[i], perturbed[i+1]
	}

	ref := kvstore.New()
	ref.Preload(keys)
	for _, op := range ops {
		ref.Execute(op.Cmd, op.Input)
	}
	want := ref.Fingerprint()

	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			x, st, _ := startKV(t, kind, 4, keys)
			// Interleave speculation and commits the way a real replica
			// would: speculate ahead in chunks, commit behind.
			chunk := 25
			for off := 0; off < n; off += chunk {
				end := off + chunk
				if end > n {
					end = n
				}
				x.Speculate(perturbed[off:end])
				if off > 0 {
					x.Commit(ops[off-chunk : off])
				}
			}
			x.Commit(ops[n-chunk:])
			if got := st.Fingerprint(); got != want {
				t.Fatalf("fingerprint %x != reference %x (counters %+v)", got, want, x.Counters())
			}
			c := x.Counters()
			if c.Decided() != n {
				t.Fatalf("decided = %d, want %d", c.Decided(), n)
			}
		})
	}
}

// A ghost that conflicts with NOTHING decided is still withdrawn once
// enough decided commands pass it by: its uncommitted versions must
// not linger in the speculative state (they would otherwise shadow the
// committed tip for every later speculative read of those keys).
func TestGhostEvictedByAge(t *testing.T) {
	st := kvstore.New()
	st.Preload(64)
	compiled, err := cdep.Compile(kvstore.Spec(), 2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:         2,
		Service:         st,
		Compiled:        compiled,
		Transport:       net,
		Scheduler:       sched.KindIndex,
		GhostEvictAfter: 8,
	})
	if err != nil {
		t.Fatalf("StartExecutor: %v", err)
	}
	t.Cleanup(func() { _ = x.Close() })

	// Ghost: speculated update on key 5, never decided, conflicting
	// with nothing that follows.
	x.Speculate([]*command.Request{req(99, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, val(777)))})
	// Decide 20 commands on OTHER keys, one batch each (each Commit
	// runs an eviction pass).
	for i := uint64(1); i <= 20; i++ {
		x.Commit([]*command.Request{req(1, i, kvstore.CmdUpdate,
			kvstore.EncodeKeyValue(10+i%8, val(i)))})
	}
	if got := readKey(t, st, 5); got != 5 {
		t.Fatalf("key 5 = %d, want preloaded 5 (ghost effect lingers)", got)
	}
	c := x.Counters()
	if c.GhostEvictions != 1 {
		t.Fatalf("counters = %+v, want 1 ghost eviction", c)
	}
	// If the ghost's value IS decided later after all, it re-executes
	// as a miss — eviction never costs correctness.
	x.Commit([]*command.Request{req(99, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, val(777)))})
	if got := readKey(t, st, 5); got != 777 {
		t.Fatalf("key 5 = %d, want 777 after late decide", got)
	}
}

// A never-decided MULTI-KEY ghost (a transfer touching two keys) must
// leave zero uncommitted versions behind once evicted: the eviction
// aborts the ghost's epoch, which drops its version on every key it
// touched atomically. Regression for the versioned-store refactor —
// a partial drop would leave one key's chain shadowing the committed
// tip forever.
func TestGhostEvictionDropsAllVersions(t *testing.T) {
	st := kvstore.New()
	st.Preload(64)
	compiled, err := cdep.Compile(kvstore.Spec(), 2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:         2,
		Service:         st,
		Compiled:        compiled,
		Transport:       net,
		Scheduler:       sched.KindIndex,
		GhostEvictAfter: 8,
	})
	if err != nil {
		t.Fatalf("StartExecutor: %v", err)
	}
	t.Cleanup(func() { _ = x.Close() })

	// Multi-key ghosts: transfers between keys 5 and 6, never decided.
	x.Speculate([]*command.Request{
		req(99, 1, kvstore.CmdTransfer, kvstore.EncodeTransfer(5, 6, 2)),
		req(99, 2, kvstore.CmdTransfer, kvstore.EncodeTransfer(6, 5, 1)),
	})
	x.waitDrained()
	if st.Uncommitted() == 0 {
		t.Fatal("speculated transfers left no uncommitted versions (test is vacuous)")
	}
	// Age the ghosts out with decided traffic on disjoint keys.
	for i := uint64(1); i <= 20; i++ {
		x.Commit([]*command.Request{req(1, i, kvstore.CmdUpdate,
			kvstore.EncodeKeyValue(20+i%8, val(i)))})
	}
	c := x.Counters()
	if c.GhostEvictions != 2 {
		t.Fatalf("counters = %+v, want 2 ghost evictions", c)
	}
	if n := st.Uncommitted(); n != 0 {
		t.Fatalf("%d uncommitted versions survive the eviction (ghost versions leak)", n)
	}
	if got := readKey(t, st, 5); got != 5 {
		t.Fatalf("key 5 = %d, want preloaded 5", got)
	}
	if got := readKey(t, st, 6); got != 6 {
		t.Fatalf("key 6 = %d, want preloaded 6", got)
	}
}

// With ReSpeculate on, a command withdrawn as rollback COLLATERAL
// (its own decision had not arrived) is re-admitted as a fresh
// speculation against the repaired state and confirms as a HIT when
// its decision does arrive — instead of degrading to a decided-path
// miss.
func TestReSpeculationTurnsCollateralIntoHit(t *testing.T) {
	st := kvstore.New()
	st.Preload(64)
	compiled, err := cdep.Compile(kvstore.Spec(), 2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:     2,
		Service:     st,
		Compiled:    compiled,
		Transport:   net,
		Scheduler:   sched.KindIndex,
		ReSpeculate: true,
	})
	if err != nil {
		t.Fatalf("StartExecutor: %v", err)
	}
	t.Cleanup(func() { _ = x.Close() })

	a := req(1, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, val(111)))
	b := req(2, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(5, val(222)))
	// Speculate a before b; decide b before a. Reconciling b rolls a
	// back as collateral; ReSpeculate re-admits a against the repaired
	// state, so a's own decide finds a fresh valid speculation.
	x.Speculate([]*command.Request{a})
	x.Speculate([]*command.Request{b})
	x.Commit([]*command.Request{b, a})
	c := x.Counters()
	if c.Rollbacks != 1 || c.ReSpeculations != 1 {
		t.Fatalf("counters = %+v, want 1 rollback and 1 re-speculation", c)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters = %+v, want the re-speculated command to confirm as the only hit", c)
	}
	// Final order b then a: key 5 ends at a's value.
	if got := readKey(t, st, 5); got != 111 {
		t.Fatalf("key 5 = %d, want 111 (decided order b,a)", got)
	}
	if n := st.Uncommitted(); n != 0 {
		t.Fatalf("%d uncommitted versions remain after full confirmation", n)
	}
}

// ConfirmedSnapshot must capture ONLY order-confirmed state: an
// unconfirmed speculation's effects are uncommitted versions the
// snapshot never reads — the speculation window survives intact and
// still confirms as hits.
func TestConfirmedSnapshotExcludesSpeculation(t *testing.T) {
	x, st, _ := startKV(t, sched.KindIndex, 2, 16)

	confirmed := []*command.Request{req(1, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(1, val(100)))}
	x.Speculate(confirmed)
	x.Commit(confirmed)
	want := st.Fingerprint()

	// Unconfirmed speculation mutates the in-place state...
	spec := []*command.Request{
		req(1, 2, kvstore.CmdUpdate, kvstore.EncodeKeyValue(2, val(222))),
		req(1, 3, kvstore.CmdTransfer, kvstore.EncodeTransfer(3, 4, 1)),
	}
	x.Speculate(spec)
	x.waitDrained()

	// ...but the snapshot must equal the confirmed-only state.
	snap, ok := x.ConfirmedSnapshot()
	if !ok {
		t.Fatal("ConfirmedSnapshot unavailable")
	}
	probe := kvstore.New()
	if err := probe.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := probe.Fingerprint(); got != want {
		t.Fatalf("snapshot fingerprint %x != confirmed state %x (speculation leaked into the checkpoint)", got, want)
	}

	// The window survived: the speculations confirm as hits.
	x.Commit(spec)
	c := x.Counters()
	if c.Hits != 3 || c.Rollbacks != 0 {
		t.Fatalf("counters = %+v, want 3 hits after a mid-window snapshot", c)
	}
	if got := readKey(t, st, 2); got != 222 {
		t.Fatalf("key 2 = %d, want 222 (speculative effects lost by the snapshot quiesce)", got)
	}
}

// ConfirmedSnapshot on netfs reads committed versions only, with
// speculation in flight.
func TestConfirmedSnapshotNetFS(t *testing.T) {
	svc := netfs.NewService()
	compiled, err := cdep.Compile(netfs.Spec(), 2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers: 2, Service: svc, Compiled: compiled, Transport: net,
		Scheduler: sched.KindIndex,
	})
	if err != nil {
		t.Fatalf("StartExecutor: %v", err)
	}
	t.Cleanup(func() { _ = x.Close() })

	mk := req(1, 1, netfs.CmdMkdir, netfs.EncodeInput("/d", binary.LittleEndian.AppendUint64(binary.LittleEndian.AppendUint32(nil, 0o755), 42)))
	x.Speculate([]*command.Request{mk})
	x.waitDrained()
	// Unconfirmed: the committed copy (and thus the snapshot) must not
	// hold /d yet.
	snap, ok := x.ConfirmedSnapshot()
	if !ok {
		t.Fatal("ConfirmedSnapshot unavailable")
	}
	probe := netfs.NewFS()
	if err := probe.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if probe.Access("/d") == netfs.OK {
		t.Fatal("unconfirmed speculative mkdir leaked into the snapshot")
	}
	x.Commit([]*command.Request{mk})
	snap, _ = x.ConfirmedSnapshot()
	if err := probe.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if probe.Access("/d") != netfs.OK {
		t.Fatal("confirmed mkdir missing from the snapshot")
	}
}

// The key-indexed window keeps reconciliation cost proportional to a
// decided command's OWN conflicts: with a large unconfirmed ghost
// backlog on disjoint keys, confirming unrelated commands must not
// scan the backlog (the old check was O(window) per decided command).
func TestKeyIndexSkipsUnrelatedBacklog(t *testing.T) {
	x, st, _ := startKV(t, sched.KindIndex, 2, 4096)
	// 1000 unconfirmed ghosts on keys 1000..1999.
	var ghosts []*command.Request
	for i := uint64(0); i < 1000; i++ {
		ghosts = append(ghosts, req(9, i+1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(1000+i, val(i))))
	}
	x.Speculate(ghosts)
	x.waitDrained()

	// Confirm 500 commands on disjoint keys; each mismatch check must
	// touch only its own (empty) bucket.
	var live []*command.Request
	for i := uint64(0); i < 500; i++ {
		live = append(live, req(1, i+1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(i%100, val(i))))
	}
	x.Speculate(live)
	start := time.Now()
	x.Commit(live)
	elapsed := time.Since(start)
	c := x.Counters()
	if c.Hits != 500 || c.Rollbacks != 0 {
		t.Fatalf("counters = %+v, want 500 hits, 0 rollbacks", c)
	}
	// Functional guard, not a benchmark: 500 confirmations against a
	// 1000-entry unrelated backlog finish quickly; the old O(window)
	// walk did 500k conflict checks here.
	if elapsed > 5*time.Second {
		t.Fatalf("500 confirmations took %v against an unrelated backlog", elapsed)
	}
	// A decided command that DOES conflict with a ghost still rolls it
	// back through the index.
	conflicting := req(2, 1, kvstore.CmdUpdate, kvstore.EncodeKeyValue(1000, val(7)))
	x.Commit([]*command.Request{conflicting})
	c = x.Counters()
	if c.Rollbacks != 1 {
		t.Fatalf("conflicting decided command did not roll the ghost back: %+v", c)
	}
	if got := readKey(t, st, 1000); got != 7 {
		t.Fatalf("key 1000 = %d, want 7", got)
	}
}
