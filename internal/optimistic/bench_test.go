package optimistic

// BenchmarkOptimistic* measure the REPLY latency at decision time — the
// quantity optimistic execution improves: when the decided order
// arrives, a hit releases a stored output (the execution already
// happened while consensus was in flight), while the decided path
// still has to schedule and execute the command. Run at 0% collision
// (distinct-key updates), so speculation is never contradicted and the
// hit rate is the stream-fidelity ceiling.

import (
	"fmt"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

const benchBatch = 64

func startKVBench(b testing.TB, kind sched.SchedulerKind) *Executor {
	b.Helper()
	st := kvstore.New()
	st.Preload(benchBatch)
	compiled, err := cdep.Compile(kvstore.Spec(), 4)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	b.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:   4,
		Service:   st,
		Compiled:  compiled,
		Transport: net,
		Scheduler: kind,
	})
	if err != nil {
		b.Fatalf("StartExecutor: %v", err)
	}
	b.Cleanup(func() { _ = x.Close() })
	return x
}

// benchBatchReqs builds one decided batch of distinct-key updates
// (zero conflicting pairs → 0% collision).
func benchBatchReqs(iter int) []*command.Request {
	reqs := make([]*command.Request, benchBatch)
	for j := range reqs {
		seq := uint64(iter)*benchBatch + uint64(j) + 1
		reqs[j] = &command.Request{
			Client: 1,
			Seq:    seq,
			Cmd:    kvstore.CmdUpdate,
			Input:  kvstore.EncodeKeyValue(uint64(j), kvstore.EncodeKey(seq)),
		}
	}
	return reqs
}

// timeCommit measures one Commit call.
func timeCommit(x *Executor, batch []*command.Request) int64 {
	start := time.Now()
	x.Commit(batch)
	return time.Since(start).Nanoseconds()
}

// waitDrained parks until every admitted command has executed
// (benchmark-only helper: the real reconciler never needs a drain on
// the hit path).
func (x *Executor) waitDrained() {
	x.mu.Lock()
	for x.executed < x.admitted {
		x.cond.Wait()
	}
	x.mu.Unlock()
}

// BenchmarkOptimisticHitReplyLatency times Commit over batches whose
// commands were already speculated and executed — the optimistic hit
// path a replica takes when the decision confirms its speculation.
func BenchmarkOptimisticHitReplyLatency(b *testing.B) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		b.Run(kind.String(), func(b *testing.B) {
			x := startKVBench(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batch := benchBatchReqs(i)
				x.Speculate(batch)
				x.waitDrained() // speculation finished while "consensus ran"
				b.StartTimer()
				x.Commit(batch)
			}
			b.StopTimer()
			c := x.Counters()
			if hr := c.HitRate(); hr < 0.9 {
				b.Fatalf("hit rate %.3f < 0.90 (%v)", hr, c)
			}
			b.ReportMetric(100*c.HitRate(), "hit%")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchBatch), "ns/cmd")
		})
	}
}

// BenchmarkOptimisticDecidedReplyLatency times Commit over batches
// that were never speculated — the decided path a plain replica (or a
// complete optimistic miss) takes: schedule, execute, then reply.
func BenchmarkOptimisticDecidedReplyLatency(b *testing.B) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		b.Run(kind.String(), func(b *testing.B) {
			x := startKVBench(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Commit(benchBatchReqs(i))
			}
			b.StopTimer()
			c := x.Counters()
			if c.Hits != 0 {
				b.Fatalf("decided-path benchmark recorded hits: %v", c)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchBatch), "ns/cmd")
		})
	}
}

// The acceptance guard behind the two benchmarks: at 0% collision the
// optimistic hit path must answer a decided command strictly faster
// than the decided path executes it, with a hit rate >= 90%.
func TestOptimisticHitLatencyBelowDecided(t *testing.T) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			const rounds = 50
			hit := startKVBench(t, kind)
			var hitElapsed, decElapsed int64
			for i := 0; i < rounds; i++ {
				batch := benchBatchReqs(i)
				hit.Speculate(batch)
				hit.waitDrained()
				hitElapsed += timeCommit(hit, batch)
			}
			dec := startKVBench(t, kind)
			for i := 0; i < rounds; i++ {
				decElapsed += timeCommit(dec, benchBatchReqs(i))
			}
			c := hit.Counters()
			if hr := c.HitRate(); hr < 0.9 {
				t.Fatalf("hit rate %.3f < 0.90 (%v)", hr, c)
			}
			if hitElapsed >= decElapsed {
				t.Fatalf("hit path %dns not below decided path %dns", hitElapsed, decElapsed)
			}
			t.Logf("%s: hit %dns vs decided %dns per %d commands (%.1fx), hit rate %.1f%%",
				kind, hitElapsed, decElapsed, rounds*benchBatch,
				float64(decElapsed)/float64(hitElapsed), 100*c.HitRate())
		})
	}
}

// startGhostBacklog builds the ghost-backlog fixture: an executor
// whose speculation window holds `ghosts` unrelated never-decided
// commands — with the versioned stores, each also pins one uncommitted
// version in the service. Eviction is disabled so the backlog stays a
// stable fixture.
func startGhostBacklog(b testing.TB, ghosts int) *Executor {
	b.Helper()
	st := kvstore.New()
	st.Preload(benchBatch + ghosts + 1)
	compiled, err := cdep.Compile(kvstore.Spec(), 4)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	net := transport.NewMemNetwork(1)
	b.Cleanup(func() { _ = net.Close() })
	x, err := StartExecutor(ExecutorConfig{
		Workers:         4,
		Service:         st,
		Compiled:        compiled,
		Transport:       net,
		Scheduler:       sched.KindIndex,
		GhostEvictAfter: 1 << 30,
	})
	if err != nil {
		b.Fatalf("StartExecutor: %v", err)
	}
	b.Cleanup(func() { _ = x.Close() })
	var backlog []*command.Request
	for i := 0; i < ghosts; i++ {
		backlog = append(backlog, &command.Request{
			Client: 9, Seq: uint64(i + 1), Cmd: kvstore.CmdUpdate,
			Input: kvstore.EncodeKeyValue(uint64(benchBatch+i), kvstore.EncodeKey(1)),
		})
	}
	x.Speculate(backlog)
	x.waitDrained()
	return x
}

// BenchmarkReconcileGhostBacklog measures the per-decided-command
// reconcile cost while a large UNRELATED unconfirmed backlog sits in
// the speculation window — the ghost-backlog recovery scenario. Two
// mechanisms have to stay O(own keys) for the cost to be flat: the
// key-indexed window bounds the mismatch check to the command's own
// conflict set (the pre-index reconciler paid a full O(window) scan
// here), and the mvstore version chains bound confirm/commit to the
// epoch's own journal while the backlog's 4096 uncommitted versions
// sit in the same stores (the undo-record model it replaced kept the
// backlog's undo closures alive but was equally indifferent; a
// clone-based model would have re-cloned the whole state).
func BenchmarkReconcileGhostBacklog(b *testing.B) {
	for _, ghosts := range []int{0, 1024, 4096} {
		b.Run(fmt.Sprintf("backlog=%d", ghosts), func(b *testing.B) {
			x := startGhostBacklog(b, ghosts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := benchBatchReqs(i)
				x.Speculate(batch)
				x.waitDrained()
				x.Commit(batch)
			}
			b.StopTimer()
			if c := x.Counters(); c.Rollbacks != 0 {
				b.Fatalf("unexpected rollbacks against a disjoint backlog: %+v", c)
			}
		})
	}
}

// TestReconcileFlatAcrossGhostBacklog is the acceptance guard behind
// BenchmarkReconcileGhostBacklog on the versioned stores: the
// speculate+reconcile cost of a disjoint decided batch with a
// 4096-ghost backlog (4096 uncommitted versions pinned in the store)
// must stay within a small constant factor of the empty-window cost.
// An O(window) reconcile or O(uncommitted) commit would blow the bound
// by ~64x; measurement is best-of-rounds totals so scheduler noise
// cannot fake a regression.
func TestReconcileFlatAcrossGhostBacklog(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	const rounds, perRound = 5, 30
	measure := func(ghosts int) int64 {
		x := startGhostBacklog(t, ghosts)
		if ghosts > 0 && x.ver.Uncommitted() == 0 {
			t.Fatalf("backlog fixture pinned no uncommitted versions")
		}
		iter := 0
		best := int64(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			var total int64
			for i := 0; i < perRound; i++ {
				batch := benchBatchReqs(iter)
				iter++
				start := time.Now()
				x.Speculate(batch)
				x.waitDrained()
				x.Commit(batch)
				total += time.Since(start).Nanoseconds()
			}
			if total < best {
				best = total
			}
		}
		if c := x.Counters(); c.Rollbacks != 0 {
			t.Fatalf("unexpected rollbacks against a disjoint backlog: %+v", c)
		}
		return best
	}
	empty := measure(0)
	loaded := measure(4096)
	ratio := float64(loaded) / float64(empty)
	t.Logf("reconcile cost: empty window %dns, 4096-ghost backlog %dns (%.2fx)", empty, loaded, ratio)
	if ratio > 4 {
		t.Fatalf("reconcile cost grew %.2fx with a 4096-ghost backlog (want <= 4x): O(own-keys) reconcile regressed", ratio)
	}
}
