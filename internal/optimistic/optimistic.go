// Package optimistic implements optimistic parallel state-machine
// replication (Marandi & Pedone, "Optimistic Parallel State-Machine
// Replication"): replicas execute commands SPECULATIVELY on the
// coordinators' optimistic (pre-consensus) stream and reconcile when
// the decided order arrives, hiding ordering latency behind execution
// in the common case where both orders agree.
//
// The subsystem is layered over the existing machinery:
//
//   - paxos.Coordinator (Optimistic: true) pushes every proposal to the
//     learners BEFORE phase 2 runs on it; paxos.Learner retains that
//     best-effort stream next to the decided log.
//   - A Replica drives ONE goroutine over both streams
//     (Learner.NextEither): optimistic batches are admitted into an
//     Executor for speculation, decided batches reconcile.
//   - The Executor speculates through a regular sched engine (scan or
//     index) via the engine's Exec hook, so speculative execution gets
//     the same conflict-respecting parallel scheduling as normal
//     execution: conflicting commands serialize in admission order,
//     independent ones run on all workers.
//
// # State-machine requirements
//
// Speculation mutates service state before consensus confirms the
// order, so the service must implement command.Versioned: its state
// lives behind multi-version stores (internal/mvstore), every
// execution runs at a speculation epoch whose writes land as
// uncommitted versions, confirmation commits the epoch (pointer flip
// into the committed tip) and rollback aborts it (version drop). Both
// resolutions cost O(keys the command touched) — no per-command undo
// records, no whole-state clone-and-replay. Because a withdrawn
// command's versions vanish without touching anything else, commands
// rolled back as rollback collateral can immediately RE-SPECULATE
// against the repaired state (the ReSpeculate knob) instead of waiting
// to execute as decided-path misses.
//
// # Reconciliation and the safety argument
//
// The speculation log records completed speculative executions in
// completion order. Because the engine serializes CONFLICTING commands
// in admission order and the Executor's conflict relation (C-Dep
// key-set intersection, cdep.Compiled.Conflicts, with Global classes
// conflicting with everything) is a subset of what the engine
// serializes, the log's relative order of any conflicting pair equals
// the optimistic admission order — and only conflicting-pair order
// affects state (independent commands commute by the C-Dep contract).
//
// When the decided stream delivers command c:
//
//   - HIT: c was speculated and no UNCONFIRMED log entry preceding c
//     conflicts with it. Then every conflicting predecessor of c was
//     already confirmed in decided order, so c's speculative execution
//     observed exactly the state the decided order prescribes; its
//     stored output is released to the client. Commands decided after
//     c that conflict with it were speculated after it (or not yet),
//     so their order matches too.
//   - MISS: c was never speculated (lost or late optimistic frame). It
//     is admitted through the same engine — serializing behind every
//     conflicting speculation already admitted — executed, and checked
//     exactly like a hit.
//   - MISMATCH: some unconfirmed speculation e preceding c in the log
//     conflicts with c: speculation executed e before c but the
//     decided order wants c first. The Executor drains the engine,
//     computes the tainted suffix — c itself plus every unconfirmed
//     entry conflicting with c before c's position, closed
//     transitively over later entries conflicting with a tainted one —
//     rolls exactly those back (reverse execution order; non-tainted
//     entries commute with every tainted one, so they may stay), then
//     re-executes c in final order. Withdrawn speculations re-execute
//     when their own decisions arrive — or, with ReSpeculate, are
//     immediately re-admitted as fresh speculations against the
//     repaired state.
//
// Speculation never escapes: replies are withheld until the speculated
// command is order-confirmed (hit or re-execution), so a client can
// never observe state that consensus has not sanctioned — a rolled-back
// speculation was invisible outside the replica. Duplicate optimistic
// deliveries are dropped by request id, and decided-stream
// retransmissions are answered from the confirmed-output cache. A
// never-decided speculation (a "ghost": a preempted leader's proposal
// that lost consensus) is withdrawn by the first conflicting decided
// command's rollback; a ghost that conflicts with nothing decided
// would otherwise pin its uncommitted versions in the speculative
// state indefinitely — shadowing the committed tip for every later
// speculative read of those keys — so the executor additionally
// evicts (aborts) any
// unconfirmed speculation once GhostEvictAfter decided commands have
// passed it by. Eviction is always safe: if the value is decided after
// all, it simply re-executes as a miss. The MaxSpeculations window cap
// backstops admission itself — when full, the replica stops
// speculating and degrades to sP-SMR behavior, never to inconsistency.
//
// Hit-rate, rollback-count and rollback-depth counters are exposed via
// Executor.Counters / Replica.Counters and surfaced by
// `psmr-bench -exp optimistic` and `make optimistic-ablation`.
package optimistic

import (
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/checkpoint"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// ReplicaConfig configures one optimistic sP-SMR replica.
type ReplicaConfig struct {
	// ReplicaID distinguishes replicas (used in endpoint names).
	ReplicaID int
	// Workers is the execution pool size.
	Workers int
	// Service is the deterministic state machine; it must implement
	// command.Versioned (see the package doc).
	Service command.Service
	// Spec is the service's C-Dep, used for conflict queries.
	Spec cdep.Spec
	// Group is the single multicast group ordering all commands; its
	// coordinators must run with Optimistic enabled for speculation to
	// see any traffic (without it the replica degrades to decided-path
	// execution).
	Group multicast.GroupConfig
	// Transport carries replica traffic.
	Transport transport.Transport
	// Scheduler selects the scheduling engine speculation runs through.
	Scheduler sched.SchedulerKind
	// Tuning carries the engine pipeline knobs (reader sets, stealing).
	Tuning sched.Tuning
	// QueueBound sizes the scan engine's hand-off channel.
	QueueBound int
	// DedupWindow bounds the per-client confirmed-output cache.
	DedupWindow int
	// MaxSpeculations bounds the unconfirmed speculation window;
	// admission stops speculating (commands execute on the decided
	// path instead) while the window is full. Default 65536.
	MaxSpeculations int
	// GhostEvictAfter withdraws an unconfirmed speculation once this
	// many decided commands passed it by (see ExecutorConfig).
	// Default 4096.
	GhostEvictAfter int
	// ReSpeculate re-admits rollback-withdrawn commands as fresh
	// speculations against the repaired state (see ExecutorConfig).
	ReSpeculate bool
	// ReorderEvery, when positive, swaps every Nth optimistic batch
	// with its successor before speculating — a test/ablation knob that
	// forces optimistic/decided divergence, which a single stable
	// leader never produces on its own.
	ReorderEvery int
	// Checkpoint enables coordinated checkpoints. Snapshots read only
	// COMMITTED versions (Executor.ConfirmedSnapshot), which is exactly
	// the order-confirmed state — no quiesce, and ghosts can never leak
	// into a checkpoint. The service must additionally implement
	// command.Snapshotter.
	Checkpoint checkpoint.Config
	// RecoverPeers bootstraps the replica from a live peer's checkpoint
	// plus decided suffix (requires Checkpoint enabled).
	RecoverPeers []transport.Addr
	// FetchTimeout bounds each peer fetch during recovery. Default 2s.
	FetchTimeout time.Duration
	// CPU optionally meters reconciler and worker busy time.
	CPU *bench.CPUMeter
	// Trace optionally stamps sampled commands at the learner-delivery,
	// engine, confirmation and rollback stage boundaries.
	Trace *obs.Tracer
	// Journal optionally records learner/engine/rollback/checkpoint
	// events in the flight recorder.
	Journal *obs.Journal
}

// Replica is an optimistic sP-SMR replica: one learner retaining both
// streams, one driver goroutine interleaving speculation and
// reconciliation, and the speculative Executor with its worker pool.
type Replica struct {
	learner  *paxos.Learner
	executor *Executor
	ckpt     *checkpoint.Driver
	ckptSrv  *checkpoint.Server

	// Reorder-knob state (driver goroutine only).
	reorderEvery int
	sinceSwap    int
	held         []*command.Request

	journal   *obs.Journal
	replicaID int
	done      chan struct{}
	closeOnce sync.Once
}

// LearnerAddr names the replica's learner endpoint for cluster wiring
// (same scheme as the other replica kinds).
func LearnerAddr(replicaID int, groupID uint32) transport.Addr {
	return transport.Addr(fmt.Sprintf("r%d/g%d", replicaID, groupID))
}

// StartReplica wires the learner, the executor and the driver. With
// RecoverPeers set it first bootstraps the service from a live peer's
// checkpoint (restoring BEFORE any speculation is admitted) and
// replays the decided suffix.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	compiled, err := cdep.Compile(cfg.Spec, workers)
	if err != nil {
		return nil, fmt.Errorf("optimistic: compile C-Dep: %w", err)
	}
	if cfg.Checkpoint.Enabled() {
		if _, ok := cfg.Service.(command.Snapshotter); !ok {
			return nil, fmt.Errorf("optimistic: checkpointing requires the service to implement command.Snapshotter, got %T", cfg.Service)
		}
	}
	var boot *checkpoint.Bootstrap
	if len(cfg.RecoverPeers) > 0 {
		var err error
		boot, err = checkpoint.Recover(cfg.Checkpoint, cfg.Transport, cfg.RecoverPeers,
			cfg.ReplicaID, cfg.FetchTimeout, cfg.Service)
		if err != nil {
			return nil, fmt.Errorf("optimistic: %w", err)
		}
	}
	executor, err := StartExecutor(ExecutorConfig{
		Workers:         workers,
		Service:         cfg.Service,
		Compiled:        compiled,
		Transport:       cfg.Transport,
		Scheduler:       cfg.Scheduler,
		Tuning:          cfg.Tuning,
		QueueBound:      cfg.QueueBound,
		DedupWindow:     cfg.DedupWindow,
		MaxSpeculations: cfg.MaxSpeculations,
		GhostEvictAfter: cfg.GhostEvictAfter,
		ReSpeculate:     cfg.ReSpeculate,
		CPU:             cfg.CPU,
		Trace:           cfg.Trace,
		Journal:         cfg.Journal,
	})
	if err != nil {
		return nil, fmt.Errorf("optimistic: start executor: %w", err)
	}
	learner, err := paxos.StartLearner(paxos.LearnerConfig{
		GroupID:       cfg.Group.ID,
		Addr:          LearnerAddr(cfg.ReplicaID, cfg.Group.ID),
		Transport:     cfg.Transport,
		Coordinators:  cfg.Group.Coordinators,
		Optimistic:    true,
		StartInstance: boot.Start(),
		CPU:           cfg.CPU.Role("learner"),
		Trace:         cfg.Trace,
		Journal:       cfg.Journal,
	})
	if err != nil {
		_ = executor.Close()
		return nil, fmt.Errorf("optimistic: start learner: %w", err)
	}
	r := &Replica{
		learner:      learner,
		executor:     executor,
		reorderEvery: cfg.ReorderEvery,
		journal:      cfg.Journal,
		replicaID:    cfg.ReplicaID,
		done:         make(chan struct{}),
	}
	if cfg.Checkpoint.Enabled() {
		gid := cfg.Group.ID
		p, err := checkpoint.Wire(checkpoint.WireConfig{
			Config:    cfg.Checkpoint,
			ReplicaID: cfg.ReplicaID,
			Transport: cfg.Transport,
			Snapshot:  executor.ConfirmedSnapshot,
			Floor:     learner.SetRetainFloor,
			Log:       learner,
			Replay: func(instance uint64, value []byte) {
				_ = cfg.Transport.Send(LearnerAddr(cfg.ReplicaID, gid), paxos.NewDecisionFrame(gid, instance, value))
			},
			Boot: boot,
		})
		if err != nil {
			_ = learner.Close()
			_ = executor.Close()
			return nil, fmt.Errorf("optimistic: %w", err)
		}
		r.ckpt, r.ckptSrv = p.Driver, p.Server
	}
	go r.drive()
	return r, nil
}

// CheckpointCounters returns the replica's checkpoint statistics
// (zero-valued when checkpointing is disabled).
func (r *Replica) CheckpointCounters() checkpoint.Counters {
	if r.ckpt == nil {
		return checkpoint.Counters{}
	}
	return r.ckpt.Counters()
}

// Counters returns the replica's speculation counters.
func (r *Replica) Counters() Counters { return r.executor.Counters() }

// GapStalls reports the learner's gap-stall transitions (the anomaly
// watcher's learner-stall signal).
func (r *Replica) GapStalls() uint64 { return r.learner.GapStalls() }

// SchedStats reports the underlying engine's work-stealing counters
// (zeros for the scan engine, which does not steal).
func (r *Replica) SchedStats() (stolen uint64, raided int64) {
	return sched.EngineStats(r.executor.engine)
}

// Close stops the replica and waits for all goroutines. Close is
// idempotent.
func (r *Replica) Close() error {
	var err error
	r.closeOnce.Do(func() {
		if r.ckptSrv != nil {
			_ = r.ckptSrv.Close()
		}
		err = r.learner.Close()
		<-r.done
		_ = r.executor.Close()
	})
	return err
}

// drive is the replica's single delivery loop: ONE goroutine owns both
// cursors, so engine admissions (speculative and decided-path) happen
// in one well-defined serial order — the property every reconciliation
// invariant rests on. Decided batches take priority (NextEither) so
// the speculation window stays short, but before each reconcile the
// optimistic BACKLOG is drained into the executor: admission is
// non-blocking, and it puts the about-to-be-decided commands onto the
// worker pool so they execute in parallel while the reconciliation
// walk confirms them in decided order. Without the drain, a driver
// that falls behind the decided stream would starve speculation
// entirely (optimistic batches would rot until already confirmed).
func (r *Replica) drive() {
	defer close(r.done)
	dec := r.learner.NewCursor()
	opt := r.learner.NewOptCursor()
	for {
		b, instance, decided, ok := r.learner.NextEither(dec, opt)
		if !ok {
			return
		}
		if !decided {
			r.speculate(b)
			continue
		}
		for {
			ob, ready := opt.TryNext()
			if !ready {
				break
			}
			r.speculate(ob)
		}
		if b.Skip {
			continue
		}
		if reqs := decodeBatch(b); len(reqs) > 0 {
			r.executor.Commit(reqs)
			if r.ckpt != nil {
				// Coordinated checkpoint at the decided batch boundary:
				// ConfirmedSnapshot reads only committed versions, so
				// the marker runs right here on the driver instead of
				// riding an engine barrier — same deterministic decided
				// position (instance+1), confirmed state only.
				r.ckpt.Tick(len(reqs))
				if r.ckpt.Due() {
					r.journal.Emit(obs.EvCheckpoint, uint64(r.replicaID), instance+1)
					r.ckpt.Marker(instance + 1)()
				}
			}
		}
	}
}

// speculate admits one optimistic batch, applying the ReorderEvery
// perturbation knob (hold every Nth batch back one slot).
func (r *Replica) speculate(b *paxos.Batch) {
	if b.Skip {
		return
	}
	reqs := decodeBatch(b)
	if len(reqs) == 0 {
		return
	}
	if r.reorderEvery > 0 {
		if r.held != nil {
			held := r.held
			r.held = nil
			r.executor.Speculate(reqs)
			r.executor.Speculate(held)
			return
		}
		if r.sinceSwap++; r.sinceSwap >= r.reorderEvery {
			r.sinceSwap = 0
			r.held = reqs
			return
		}
	}
	r.executor.Speculate(reqs)
}

// decodeBatch decodes a batch's items, skipping corrupt entries (the
// same tolerance as the other delivery pumps).
func decodeBatch(b *paxos.Batch) []*command.Request {
	reqs := make([]*command.Request, 0, len(b.Items))
	for _, item := range b.Items {
		req, _, err := command.DecodeRequest(item)
		if err != nil {
			continue
		}
		reqs = append(reqs, req)
	}
	return reqs
}
