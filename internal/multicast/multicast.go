// Package multicast implements the atomic multicast library of paper
// §VI-A: the abstraction of multicast groups built by composing
// parallel, independent Paxos instance sequences — one per group — plus
// a deterministic merge at the receivers.
//
// A message is addressed to a single group (exactly like the paper's
// prototype). Receivers that subscribe to several groups consume them
// through a Merger, which interleaves the groups' decision sequences by
// weighted round-robin. Because the interleaving is a pure function of
// the per-group sequences — never of arrival timing — every receiver
// with the same subscription set delivers the same merged order, which
// is the property P-SMR's correctness argument relies on (§IV-E).
//
// Idle or slow groups would stall the merge, so group coordinators pad
// their sequences with skip batches up to the merge weight per skip
// interval (the Multi-Ring Paxos mechanism, reference [9] of the
// paper). The merger consumes and discards skips.
package multicast

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

// ErrProxyDown reports that a multicast could not be handed to any
// configured proxy: every proxy send failed. It is distinct from the
// best-effort nil of a successful (but possibly lost) send so clients
// can fail fast — and retry elsewhere — when the whole proxy tier is
// unreachable.
var ErrProxyDown = errors.New("multicast: no proxy reachable")

// GroupConfig names the endpoints of one multicast group.
type GroupConfig struct {
	// ID is the group's Paxos group id (unique across the deployment).
	ID uint32
	// Coordinators are the group's coordinator candidates in take-over
	// order.
	Coordinators []transport.Addr
	// Acceptors are the group's acceptors.
	Acceptors []transport.Addr
}

// Sender multicasts payloads to groups. It is safe for concurrent use.
// Sending is best-effort (like the underlying transport); end-to-end
// retry lives in the client proxy, which also calls RotateLeader when
// responses stop arriving.
type Sender struct {
	tr       transport.Transport
	groups   []GroupConfig
	believed []atomic.Int32 // believed leader per group

	// Proxy tier (optional): when set, proposals go to a proxy instead
	// of a coordinator; the proxy batches and forwards them. curProxy
	// tracks the proxy currently in use.
	proxies  []transport.Addr
	curProxy atomic.Uint32

	// trace optionally stamps sampled payloads at the submit stage.
	trace *obs.Tracer
}

// NewSender builds a sender over the given groups. Group g in Multicast
// refers to groups[g].
func NewSender(tr transport.Transport, groups []GroupConfig) *Sender {
	return &Sender{
		tr:       tr,
		groups:   groups,
		believed: make([]atomic.Int32, len(groups)),
	}
}

// UseProxies routes all subsequent multicasts through the proxy tier:
// each proposal is sent to one proxy (rotating to a survivor when a
// send fails) instead of directly to a group coordinator. Call before
// the sender is shared across goroutines.
func (s *Sender) UseProxies(proxies []transport.Addr) {
	s.proxies = proxies
}

// SetTracer attaches a pipeline tracer: every multicast payload (an
// encoded request) is stamped at the submit stage. Call before the
// sender is shared across goroutines.
func (s *Sender) SetTracer(t *obs.Tracer) { s.trace = t }

// Groups returns the number of configured groups.
func (s *Sender) Groups() int { return len(s.groups) }

// Multicast proposes payload for total ordering within group g. With a
// proxy tier configured it tries every proxy (starting from the one
// last known good) before giving up with ErrProxyDown; without one the
// send goes straight to the group's believed coordinator.
func (s *Sender) Multicast(g int, payload []byte) error {
	if g < 0 || g >= len(s.groups) {
		return fmt.Errorf("multicast: group %d outside [0,%d)", g, len(s.groups))
	}
	grp := &s.groups[g]
	// Submit-stage stamp: first-write-wins in the tracer, so the
	// retransmission path keeps the original submit time.
	s.trace.Stamp(obs.StageSubmit, payload)
	frame := paxos.NewProposeFrame(grp.ID, payload)
	// Ship the submit stamp on the wire so out-of-process proxies and
	// coordinators fold this hop into the same trace (no-op when the
	// request is not sampled).
	frame = s.trace.AppendTagForValue(frame, payload)
	if n := len(s.proxies); n > 0 {
		start := s.curProxy.Load()
		var lastErr error
		for i := 0; i < n; i++ {
			idx := int((start + uint32(i)) % uint32(n))
			if err := s.tr.Send(s.proxies[idx], frame); err == nil {
				if i > 0 {
					s.curProxy.Store(uint32(idx))
				}
				return nil
			} else {
				lastErr = err
			}
		}
		return fmt.Errorf("%w: %v", ErrProxyDown, lastErr)
	}
	leader := int(s.believed[g].Load()) % len(grp.Coordinators)
	return s.tr.Send(grp.Coordinators[leader], frame)
}

// RotateLeader switches the believed leader of group g to the next
// candidate; client proxies call it when requests time out. With a
// proxy tier it also rotates the proxy in use, covering the case of a
// proxy that accepts frames but no longer forwards them.
func (s *Sender) RotateLeader(g int) {
	if g < 0 || g >= len(s.groups) {
		return
	}
	s.believed[g].Add(1)
	if len(s.proxies) > 0 {
		s.curProxy.Add(1)
	}
}

// Item is one delivered payload with its provenance, used by receivers
// and tests.
type Item struct {
	// Payload is the multicast message.
	Payload []byte
	// Stream is the index (within the merger's subscription list) of
	// the group the payload arrived on.
	Stream int
	// Instance is the Paxos instance of the batch that carried it.
	Instance uint64
	// Last marks the final payload of its batch — the consensus-log
	// position boundary coordinated checkpoints snapshot at.
	Last bool
}

// Merger deterministically interleaves the decision streams of several
// groups: up to Weight slots from stream 0, then up to Weight from
// stream 1, and so on, cyclically. One slot is one command — not one
// batch — so a large batch spans turns and a busy stream cannot hold
// the merge for longer than Weight commands; this bounds how stale a
// worker's view of the shared serial group can get, which in turn
// bounds synchronous-mode rendezvous latency. Skip batches consume
// SkipSlots slots and deliver nothing; an empty batch (a recovery
// hole-filler) consumes one slot.
//
// Merger is not safe for concurrent use: each worker owns one.
type Merger struct {
	cursors []*paxos.Cursor
	weight  uint32

	cur     int      // current stream
	quota   uint32   // slots left in the current stream's turn
	carry   []uint32 // per-stream leftover skip slots
	pending [][]Item // per-stream items of partially consumed batches
}

// NewMerger builds a merger over cursors (one per subscribed group, in
// a fixed order that must be identical at every replica — use ascending
// group id). weight is the number of command slots per stream per
// round and must match the coordinators' skip slot rate.
func NewMerger(cursors []*paxos.Cursor, weight int) *Merger {
	if weight < 1 {
		weight = 1
	}
	return &Merger{
		cursors: cursors,
		weight:  uint32(weight),
		quota:   uint32(weight),
		carry:   make([]uint32, len(cursors)),
		pending: make([][]Item, len(cursors)),
	}
}

// Next blocks until the next payload in merged order is available. ok
// is false once any subscribed stream closes.
func (m *Merger) Next() (Item, bool) {
	for {
		if m.quota == 0 {
			m.quota = m.weight
			m.cur = (m.cur + 1) % len(m.cursors)
		}
		// Deliver queued items of the current stream first.
		if q := m.pending[m.cur]; len(q) > 0 {
			it := q[0]
			q[0] = Item{}
			m.pending[m.cur] = q[1:]
			m.quota--
			return it, true
		}
		// Consume leftover skip slots.
		if m.carry[m.cur] > 0 {
			used := m.carry[m.cur]
			if used > m.quota {
				used = m.quota
			}
			m.carry[m.cur] -= used
			m.quota -= used
			continue
		}
		b, instance, ok := m.cursors[m.cur].Next()
		if !ok {
			return Item{}, false
		}
		if b.Skip {
			slots := b.SkipSlots
			if slots == 0 {
				slots = 1
			}
			m.carry[m.cur] += slots
			continue
		}
		if len(b.Items) == 0 {
			// Recovery hole-filler: costs one slot so a stream of them
			// cannot capture the merge.
			if m.quota > 0 {
				m.quota--
			}
			continue
		}
		items := make([]Item, len(b.Items))
		for i, payload := range b.Items {
			items[i] = Item{Payload: payload, Stream: m.cur, Instance: instance}
		}
		items[len(items)-1].Last = true
		m.pending[m.cur] = items
	}
}
