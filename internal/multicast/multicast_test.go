package multicast

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

// newInjectedLearner starts a learner whose decisions the test injects
// directly (no coordinator), giving full control over stream contents
// and arrival order.
func newInjectedLearner(t *testing.T, net *transport.MemNetwork, group uint32, addr transport.Addr) *paxos.Learner {
	t.Helper()
	l, err := paxos.StartLearner(paxos.LearnerConfig{
		GroupID:    group,
		Addr:       addr,
		Transport:  net,
		GapTimeout: time.Hour, // no retransmission source in these tests
	})
	if err != nil {
		t.Fatalf("StartLearner: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

func inject(t *testing.T, net *transport.MemNetwork, addr transport.Addr, group uint32, instance uint64, b *paxos.Batch) {
	t.Helper()
	if err := net.Send(addr, paxos.NewDecisionFrame(group, instance, paxos.EncodeBatch(b))); err != nil {
		t.Fatalf("inject: %v", err)
	}
}

func normalBatch(items ...string) *paxos.Batch {
	b := &paxos.Batch{}
	for _, s := range items {
		b.Items = append(b.Items, []byte(s))
	}
	return b
}

func skipBatch(slots uint32) *paxos.Batch {
	return &paxos.Batch{Skip: true, SkipSlots: slots}
}

// collect reads n items from the merger with a timeout.
func collect(t *testing.T, m *Merger, n int) []Item {
	t.Helper()
	out := make(chan []Item, 1)
	go func() {
		items := make([]Item, 0, n)
		for len(items) < n {
			it, ok := m.Next()
			if !ok {
				break
			}
			items = append(items, it)
		}
		out <- items
	}()
	select {
	case items := <-out:
		if len(items) != n {
			t.Fatalf("collected %d of %d items", len(items), n)
		}
		return items
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out collecting %d items", n)
		return nil
	}
}

func TestMergerSingleStream(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	l := newInjectedLearner(t, net, 1, "l1")

	for i := uint64(0); i < 5; i++ {
		inject(t, net, "l1", 1, i, normalBatch(fmt.Sprintf("v%d", i)))
	}
	m := NewMerger([]*paxos.Cursor{l.NewCursor()}, 4)
	items := collect(t, m, 5)
	for i, it := range items {
		if want := fmt.Sprintf("v%d", i); string(it.Payload) != want {
			t.Fatalf("item %d = %q, want %q", i, it.Payload, want)
		}
		if it.Stream != 0 {
			t.Fatalf("stream = %d", it.Stream)
		}
	}
}

func TestMergerRoundRobinWeight(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	la := newInjectedLearner(t, net, 1, "la")
	lb := newInjectedLearner(t, net, 2, "lb")

	// Stream A: a0..a5 (one item per batch); stream B: b0..b5.
	for i := uint64(0); i < 6; i++ {
		inject(t, net, "la", 1, i, normalBatch(fmt.Sprintf("a%d", i)))
		inject(t, net, "lb", 2, i, normalBatch(fmt.Sprintf("b%d", i)))
	}
	m := NewMerger([]*paxos.Cursor{la.NewCursor(), lb.NewCursor()}, 2)
	items := collect(t, m, 12)
	var got []string
	for _, it := range items {
		got = append(got, string(it.Payload))
	}
	want := []string{"a0", "a1", "b0", "b1", "a2", "a3", "b2", "b3", "a4", "a5", "b4", "b5"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestMergerSkipAdvancesIdleStream(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	la := newInjectedLearner(t, net, 1, "la")
	lb := newInjectedLearner(t, net, 2, "lb")

	// Stream A busy; stream B only skips (covering a full round each).
	const w = 4
	for i := uint64(0); i < 8; i++ {
		inject(t, net, "la", 1, i, normalBatch(fmt.Sprintf("a%d", i)))
	}
	inject(t, net, "lb", 2, 0, skipBatch(w))
	inject(t, net, "lb", 2, 1, skipBatch(w))
	m := NewMerger([]*paxos.Cursor{la.NewCursor(), lb.NewCursor()}, w)
	items := collect(t, m, 8)
	for i, it := range items {
		if want := fmt.Sprintf("a%d", i); string(it.Payload) != want {
			t.Fatalf("item %d = %q, want %q", i, it.Payload, want)
		}
	}
}

func TestMergerSkipCarryAcrossRounds(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	la := newInjectedLearner(t, net, 1, "la")
	lb := newInjectedLearner(t, net, 2, "lb")

	// One big skip on B covers three full rounds (weight 2 → 6 slots).
	inject(t, net, "lb", 2, 0, skipBatch(6))
	for i := uint64(0); i < 6; i++ {
		inject(t, net, "la", 1, i, normalBatch(fmt.Sprintf("a%d", i)))
	}
	m := NewMerger([]*paxos.Cursor{la.NewCursor(), lb.NewCursor()}, 2)
	items := collect(t, m, 6)
	for i, it := range items {
		if want := fmt.Sprintf("a%d", i); string(it.Payload) != want {
			t.Fatalf("item %d = %q, want %q", i, it.Payload, want)
		}
	}
}

// The core correctness property: the merged order is a pure function of
// the per-stream contents, independent of arrival timing. Two mergers
// fed the same streams with different interleavings and delays must
// produce identical output.
func TestMergerDeterministicAcrossArrivalOrders(t *testing.T) {
	type injected struct {
		group    uint32
		instance uint64
		batch    *paxos.Batch
	}
	rng := rand.New(rand.NewSource(99))
	// Build random stream contents: 3 groups, 40 batches each.
	const (
		groups  = 3
		batches = 40
		weight  = 3
	)
	var all []injected
	itemCount := 0
	for g := uint32(1); g <= groups; g++ {
		for i := uint64(0); i < batches; i++ {
			var b *paxos.Batch
			if rng.Intn(3) == 0 {
				b = skipBatch(uint32(1 + rng.Intn(2*weight)))
			} else {
				n := 1 + rng.Intn(3)
				for j := 0; j < n; j++ {
					s := fmt.Sprintf("g%d-i%d-%d", g, i, j)
					if b == nil {
						b = normalBatch(s)
					} else {
						b.Items = append(b.Items, []byte(s))
					}
				}
				itemCount += n
			}
			all = append(all, injected{group: g, instance: i, batch: b})
		}
	}
	// Trailer skips on every stream stand in for the live skip padding
	// a real coordinator emits: without them a finite stream exhausts
	// its slots mid-round and the (intentionally blocking) merge waits
	// forever.
	for g := uint32(1); g <= groups; g++ {
		for i := uint64(batches); i < batches+100; i++ {
			all = append(all, injected{group: g, instance: i, batch: skipBatch(weight)})
		}
	}

	run := func(seed int64) []string {
		net := transport.NewMemNetwork(seed)
		defer net.Close()
		var cursors []*paxos.Cursor
		addrs := make(map[uint32]transport.Addr)
		for g := uint32(1); g <= groups; g++ {
			addr := transport.Addr(fmt.Sprintf("l%d-%d", g, seed))
			l := newInjectedLearner(t, net, g, addr)
			addrs[g] = addr
			cursors = append(cursors, l.NewCursor())
		}
		// Shuffle arrival order across groups (per-group instance order
		// preserved by the learner's reordering anyway).
		shuffled := make([]injected, len(all))
		copy(shuffled, all)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		go func() {
			for _, in := range shuffled {
				_ = net.Send(addrs[in.group], paxos.NewDecisionFrame(in.group, in.instance, paxos.EncodeBatch(in.batch)))
				if r.Intn(4) == 0 {
					time.Sleep(time.Microsecond)
				}
			}
		}()
		m := NewMerger(cursors, weight)
		items := collect(t, m, itemCount)
		out := make([]string, len(items))
		for i, it := range items {
			out[i] = string(it.Payload)
		}
		return out
	}

	a := run(1)
	b := run(2)
	c := run(3)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("merge diverges at %d: %q / %q / %q", i, a[i], b[i], c[i])
		}
	}
}

func TestMergerStreamProvenance(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	la := newInjectedLearner(t, net, 1, "la")
	lb := newInjectedLearner(t, net, 2, "lb")

	inject(t, net, "la", 1, 0, normalBatch("a"))
	inject(t, net, "lb", 2, 0, normalBatch("b"))
	m := NewMerger([]*paxos.Cursor{la.NewCursor(), lb.NewCursor()}, 1)
	items := collect(t, m, 2)
	if items[0].Stream != 0 || string(items[0].Payload) != "a" {
		t.Fatalf("first item %+v", items[0])
	}
	if items[1].Stream != 1 || string(items[1].Payload) != "b" {
		t.Fatalf("second item %+v", items[1])
	}
}

func TestMergerClosesWithStream(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	l := newInjectedLearner(t, net, 1, "l1")
	m := NewMerger([]*paxos.Cursor{l.NewCursor()}, 2)

	done := make(chan bool, 1)
	go func() {
		_, ok := m.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	_ = l.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned ok after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("merger not unblocked by learner close")
	}
}

func TestSenderMulticastReachesCoordinator(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	ep, err := net.Listen("coord0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	s := NewSender(net, []GroupConfig{{ID: 7, Coordinators: []transport.Addr{"coord0", "coord1"}}})
	if s.Groups() != 1 {
		t.Fatalf("Groups = %d", s.Groups())
	}
	if err := s.Multicast(0, []byte("payload")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	select {
	case frame := <-ep.Recv():
		if len(frame) == 0 {
			t.Fatal("empty frame")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no frame at coordinator")
	}
}

func TestSenderRotateLeader(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	ep0, err := net.Listen("c0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ep1, err := net.Listen("c1")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	s := NewSender(net, []GroupConfig{{ID: 1, Coordinators: []transport.Addr{"c0", "c1"}}})
	if err := s.Multicast(0, []byte("x")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	<-ep0.Recv()
	s.RotateLeader(0)
	if err := s.Multicast(0, []byte("y")); err != nil {
		t.Fatalf("Multicast after rotate: %v", err)
	}
	select {
	case <-ep1.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("rotated multicast did not reach second candidate")
	}
}

func TestSenderBadGroup(t *testing.T) {
	s := NewSender(transport.NewMemNetwork(1), nil)
	if err := s.Multicast(0, []byte("x")); err == nil {
		t.Fatal("Multicast to missing group succeeded")
	}
	s.RotateLeader(5) // must not panic
}

// End-to-end: two full Paxos groups with skip padding, two replicas
// merging both; identical delivery.
func TestEndToEndTwoGroupsTwoReplicas(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	const (
		nGroups   = 2
		nReplicas = 2
		weight    = 8
	)
	groups := make([]GroupConfig, nGroups)
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	learnerAddrs := make([][]transport.Addr, nGroups) // [group][replica]
	for g := 0; g < nGroups; g++ {
		coord := transport.Addr(fmt.Sprintf("g%d/coord", g))
		accs := make([]transport.Addr, 3)
		for i := range accs {
			accs[i] = transport.Addr(fmt.Sprintf("g%d/acc%d", g, i))
			a, err := paxos.StartAcceptor(paxos.AcceptorConfig{
				GroupID: uint32(g), ID: uint32(i), Addr: accs[i], Transport: net,
			})
			if err != nil {
				t.Fatalf("StartAcceptor: %v", err)
			}
			closers = append(closers, func() { _ = a.Close() })
		}
		learnerAddrs[g] = make([]transport.Addr, nReplicas)
		for r := 0; r < nReplicas; r++ {
			learnerAddrs[g][r] = transport.Addr(fmt.Sprintf("g%d/r%d", g, r))
		}
		c, err := paxos.StartCoordinator(paxos.CoordinatorConfig{
			GroupID:      uint32(g),
			CandidateIdx: 0,
			Candidates:   []transport.Addr{coord},
			Acceptors:    accs,
			Learners:     learnerAddrs[g],
			Transport:    net,
			SkipInterval: time.Millisecond,
			SkipSlots:    weight,
		})
		if err != nil {
			t.Fatalf("StartCoordinator: %v", err)
		}
		closers = append(closers, func() { _ = c.Close() })
		groups[g] = GroupConfig{ID: uint32(g), Coordinators: []transport.Addr{coord}, Acceptors: accs}
	}

	mergers := make([]*Merger, nReplicas)
	for r := 0; r < nReplicas; r++ {
		var cursors []*paxos.Cursor
		for g := 0; g < nGroups; g++ {
			l, err := paxos.StartLearner(paxos.LearnerConfig{
				GroupID:      uint32(g),
				Addr:         learnerAddrs[g][r],
				Transport:    net,
				Coordinators: groups[g].Coordinators,
			})
			if err != nil {
				t.Fatalf("StartLearner: %v", err)
			}
			closers = append(closers, func() { _ = l.Close() })
			cursors = append(cursors, l.NewCursor())
		}
		mergers[r] = NewMerger(cursors, weight)
	}

	sender := NewSender(net, groups)
	const n = 400
	go func() {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < n; i++ {
			_ = sender.Multicast(rng.Intn(nGroups), []byte(fmt.Sprintf("m%04d", i)))
		}
	}()

	seq0 := collect(t, mergers[0], n)
	seq1 := collect(t, mergers[1], n)
	for i := range seq0 {
		if string(seq0[i].Payload) != string(seq1[i].Payload) {
			t.Fatalf("replicas diverge at %d: %q vs %q", i, seq0[i].Payload, seq1[i].Payload)
		}
	}
}
