package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges emit one
// sample each; histograms emit a summary (quantiles + _sum + _count),
// in seconds, which is what dashboards expect for latency series.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	typed := map[string]bool{}
	for _, s := range snap {
		if !typed[s.Name] {
			typed[s.Name] = true
			kind := "gauge"
			switch s.Kind {
			case KindCounter:
				kind = "counter"
			case KindHistogram:
				kind = "summary"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, kind)
		}
		switch s.Kind {
		case KindHistogram:
			writeSummary(w, s)
		default:
			fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels, ""), promFloat(s.Value))
		}
	}
}

// writeSummary emits one histogram as a Prometheus summary in seconds.
func writeSummary(w io.Writer, s Sample) {
	if s.Count > 0 {
		for _, q := range [...]struct {
			q  string
			us float64
		}{{"0.5", s.P50Us}, {"0.99", s.P99Us}, {"1", s.MaxUs}} {
			fmt.Fprintf(w, "%s%s %s\n", s.Name,
				promLabels(s.Labels, `quantile="`+q.q+`"`), promFloat(q.us/1e6))
		}
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels, ""),
		promFloat(s.SumUs/1e6))
	fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, ""), s.Count)
}

// promLabels joins a pre-rendered label string with one extra label
// into the braced form, or returns "" when both are empty.
func promLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// promFloat renders a float without the scientific notation that trips
// some scrapers on counters.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Handler serves the registry at GET /metrics (Prometheus text).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry's flattened snapshot as the
// expvar variable "psmr" (rendered by /debug/vars alongside the
// runtime's memstats). Publishing is process-global and idempotent;
// the first registry wins, which matches the one-cluster-per-process
// shape of the daemon.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("psmr", expvar.Func(func() any { return r.Flatten() }))
	})
}

// ServeMux builds the observability HTTP mux: /metrics (Prometheus
// text), /debug/vars (expvar) and /debug/pprof (the runtime
// profiles). No external dependencies — everything is stdlib plus the
// registry's own text writer.
func ServeMux(r *Registry) *http.ServeMux {
	r.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		io.WriteString(w, "psmr observability endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n")
	})
	return mux
}

// StageBreakdown renders the per-stage latency table psmr-bench
// prints: one row per crossed stage boundary with count, p50, p99 and
// max, followed by the end-to-end row. Empty when nothing folded.
func (t *Tracer) StageBreakdown() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "    %-16s %10s %10s %10s %10s\n", "stage", "count", "p50", "p99", "max")
	any := false
	for _, s := range Stages() {
		h := t.stageHist[s]
		if h.Count() == 0 {
			continue
		}
		any = true
		fmt.Fprintf(&b, "    %-16s %10d %10v %10v %10v\n", s.String(), h.Count(),
			h.Quantile(0.50), h.Quantile(0.99), h.Max())
	}
	if h := t.totalHist; h.Count() > 0 {
		any = true
		fmt.Fprintf(&b, "    %-16s %10d %10v %10v %10v\n", "total", h.Count(),
			h.Quantile(0.50), h.Quantile(0.99), h.Max())
	}
	if !any {
		return ""
	}
	return b.String()
}
