package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/command"
)

// --- wire trace-context tags -------------------------------------------

func TestWireTagRoundTrip(t *testing.T) {
	frame := []byte("a propose frame body")
	tag := WireTag{Client: 7, Seq: 42}
	tag.Stages = 1<<StageSubmit | 1<<StageProxySeal | 1<<StageDecided
	tag.Durations[StageSubmit] = 0
	tag.Durations[StageProxySeal] = 1500
	tag.Durations[StageDecided] = 90_000

	tagged := AppendWireTag(append([]byte(nil), frame...), tag)
	if len(tagged) <= len(frame) {
		t.Fatal("tag not appended")
	}
	got, rest, ok := SplitWireTag(tagged)
	if !ok {
		t.Fatal("tag not detected")
	}
	if string(rest) != string(frame) {
		t.Fatalf("rest = %q, want original frame", rest)
	}
	if got.Client != 7 || got.Seq != 42 || got.Stages != tag.Stages {
		t.Fatalf("tag = %+v, want %+v", got, tag)
	}
	for i := 0; i < NumStages; i++ {
		if got.Durations[i] != tag.Durations[i] {
			t.Fatalf("duration[%d] = %d, want %d", i, got.Durations[i], tag.Durations[i])
		}
	}
}

func TestWireTagEmptyBitmapNotAppended(t *testing.T) {
	frame := []byte("frame")
	if out := AppendWireTag(frame, WireTag{Client: 1, Seq: 2}); len(out) != len(frame) {
		t.Fatal("empty-bitmap tag was appended")
	}
	if out := AppendWireTag(frame, WireTag{Stages: 1 << NumStages}); len(out) != len(frame) {
		t.Fatal("overflow-bitmap tag was appended")
	}
}

func TestSplitWireTagRejectsCorruptAndLegacy(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"short":      {wireMagic0, wireMagic1},
		"no magic":   []byte("plain frame with no trailer at all......"),
		"zero tail":  append(make([]byte, 40), 0, 0, 0, 0), // legacy frame: zero entry count
		"bad bitmap": AppendWireTag(nil, WireTag{Stages: 1 << StageSubmit})[:0],
	}
	// A structurally valid trailer whose bitmap says 3 durations but
	// whose length field claims only the fixed ctx.
	bad := AppendWireTag([]byte("frame"), WireTag{Stages: 1<<StageSubmit | 1<<StageDecided,
		Durations: [NumStages]int64{}})
	bad[len(bad)-4] = 0
	bad[len(bad)-3] = wireCtxFixed
	cases["length/bitmap mismatch"] = bad

	for name, frame := range cases {
		if _, rest, ok := SplitWireTag(frame); ok {
			t.Fatalf("%s: tag detected on invalid frame", name)
		} else if len(rest) != len(frame) {
			t.Fatalf("%s: rest mutated", name)
		}
	}
}

func TestAppendTagRequiresLiveSampledSlot(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	frame := []byte("frame")
	// No stamps yet: nothing to ship.
	if out := tr.AppendTag(frame, 3, 9); len(out) != len(frame) {
		t.Fatal("tag appended with no in-flight trace")
	}
	tr.StampID(StageSubmit, 3, 9)
	out := tr.AppendTag(frame, 3, 9)
	if len(out) == len(frame) {
		t.Fatal("tag not appended for live trace")
	}
	tag, _, ok := SplitWireTag(out)
	if !ok || tag.Client != 3 || tag.Seq != 9 || tag.Stages&(1<<StageSubmit) == 0 {
		t.Fatalf("shipped tag = %+v ok=%v", tag, ok)
	}
	// Nil tracer is a strict no-op.
	var nilT *Tracer
	if out := nilT.AppendTag(frame, 3, 9); len(out) != len(frame) {
		t.Fatal("nil tracer appended a tag")
	}
}

func TestAbsorbTagCrossProcessFold(t *testing.T) {
	// Process A (client + ordering): stamps early stages and ships them.
	a := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	a.StampID(StageSubmit, 5, 1)
	time.Sleep(2 * time.Millisecond)
	a.StampID(StageDecided, 5, 1)
	frame := a.AppendTag([]byte("decision"), 5, 1)

	// Process B (replica): absorbs the tag, runs execution, folds.
	b := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	rest := b.AbsorbTags(frame)
	if string(rest) != "decision" {
		t.Fatalf("rest = %q", rest)
	}
	b.StampID(StageExecStart, 5, 1)
	b.StampID(StageExecEnd, 5, 1)
	if _, folded, _, _ := b.Counts(); folded != 1 {
		t.Fatalf("folded = %d, want 1", folded)
	}
	// The cross-process trace is complete: the decided→exec histogram
	// folded on B includes A's stages, and the shipped submit→decided
	// gap survives (≥ the 2ms slept on A).
	for _, st := range []Stage{StageDecided, StageExecEnd} {
		if got := b.StageHistogram(st).Count(); got != 1 {
			t.Fatalf("stage %v count = %d, want 1", st, got)
		}
	}
	if d := b.StageHistogram(StageDecided).Mean(); d < 2*time.Millisecond {
		t.Fatalf("submit→decided delta = %v, want ≥ 2ms (shipped duration lost)", d)
	}
	if got := b.TotalHistogram().Count(); got != 1 {
		t.Fatalf("total count = %d, want 1", got)
	}
}

func TestAbsorbTagSampledOutStripsTag(t *testing.T) {
	a := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	a.StampID(StageSubmit, 5, 1)
	frame := a.AppendTag([]byte("frame"), 5, 1)

	// Find an id the 1024-divisor peer does NOT sample, tag it on A...
	b := NewTracer(TracerConfig{Sample: 1024, Final: StageExecEnd})
	if b.SampledID(5, 1) {
		t.Skip("id 5/1 happens to be sampled at 1/1024")
	}
	rest := b.AbsorbTags(frame)
	if string(rest) != "frame" {
		t.Fatalf("sampled-out absorb kept the tag: %q", rest)
	}
	if sampled, _, _, _ := b.Counts(); sampled != 0 {
		t.Fatal("sampled-out absorb claimed a slot")
	}
}

func TestAbsorbTagsStacked(t *testing.T) {
	a := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	a.StampID(StageSubmit, 1, 1)
	a.StampID(StageSubmit, 1, 2)
	frame := []byte("batch")
	frame = a.AppendTag(frame, 1, 1)
	frame = a.AppendTag(frame, 1, 2)

	b := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	rest := b.AbsorbTags(frame)
	if string(rest) != "batch" {
		t.Fatalf("rest = %q", rest)
	}
	for _, seq := range []uint64{1, 2} {
		b.StampID(StageExecEnd, 1, seq)
	}
	if _, folded, _, _ := b.Counts(); folded != 2 {
		t.Fatalf("folded = %d, want 2 (both stacked tags absorbed)", folded)
	}
}

func TestAppendTagForValue(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	item := command.AppendRequest(nil, &command.Request{
		Client: 11, Seq: 3, Cmd: 1, Input: []byte("x"), Reply: "cl/11",
	})
	tr.Stamp(StageSubmit, item)
	out := tr.AppendTagForValue([]byte("frame"), item)
	tag, _, ok := SplitWireTag(out)
	if !ok || tag.Client != 11 || tag.Seq != 3 {
		t.Fatalf("tag = %+v ok=%v", tag, ok)
	}
	// Non-request values leave the frame alone.
	if out := tr.AppendTagForValue([]byte("frame"), []byte("junk")); len(out) != len("frame") {
		t.Fatal("tag appended for non-request value")
	}
}

// --- journal -----------------------------------------------------------

func TestJournalEmitAndSnapshot(t *testing.T) {
	j := NewJournal(JournalConfig{Events: 64})
	j.Emit(EvLeaderFlush, 10, 2048)
	j.Emit(EvDecide, 0, 17)
	j.Emit(EvRelaySilent, 1, 0)
	evs := j.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot = %d events, want 3", len(evs))
	}
	kinds := map[EventKind]bool{}
	for i, e := range evs {
		kinds[e.Kind] = true
		if i > 0 && evs[i-1].TS > e.TS {
			t.Fatal("snapshot not time-ordered")
		}
		if e.String() == "" || e.Kind.String() == "unknown" {
			t.Fatalf("unrenderable event %+v", e)
		}
	}
	for _, k := range []EventKind{EvLeaderFlush, EvDecide, EvRelaySilent} {
		if !kinds[k] {
			t.Fatalf("kind %v missing from snapshot", k)
		}
	}
	if j.Emitted() != 3 {
		t.Fatalf("emitted = %d, want 3", j.Emitted())
	}
}

func TestJournalWrapsDropOldest(t *testing.T) {
	j := NewJournal(JournalConfig{Events: 64})
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		j.Emit(EvDecide, i, i)
	}
	if j.Emitted() != n {
		t.Fatalf("emitted = %d, want %d", j.Emitted(), n)
	}
	evs := j.Snapshot()
	if len(evs) == 0 || len(evs) > j.Capacity() {
		t.Fatalf("snapshot = %d events, want (0,%d]", len(evs), j.Capacity())
	}
}

func TestJournalEmitIDSampling(t *testing.T) {
	j := NewJournal(JournalConfig{Events: 4096, Sample: 1024})
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		j.EmitID(EvProxyShed, 1, i)
	}
	got := j.Emitted()
	if got == 0 || got > n/1024*8 {
		t.Fatalf("emitted = %d, want ≈ %d (1/1024 sampled)", got, n/1024)
	}
	// Emit is never sampled (control-plane events always land).
	before := j.Emitted()
	j.Emit(EvRelaySilent, 0, 0)
	if j.Emitted() != before+1 {
		t.Fatal("Emit was sampled out")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(EvDecide, 1, 2)
	j.EmitID(EvProxyShed, 1, 2)
	j.stageEvent(StageSubmit, 1, 2)
	if j.Snapshot() != nil || j.Capacity() != 0 || j.Emitted() != 0 {
		t.Fatal("nil journal not inert")
	}
	j.Register(NewRegistry())
}

func TestTracerRoutesStageEventsToJournal(t *testing.T) {
	j := NewJournal(JournalConfig{Events: 256})
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	tr.AttachJournal(j)
	tr.StampID(StageSubmit, 2, 7)
	tr.StampID(StageSubmit, 2, 7) // duplicate: first-write-wins, no second event
	tr.StampID(StageExecEnd, 2, 7)
	var stages []Stage
	for _, e := range j.Snapshot() {
		if e.Kind == EvStage && e.Arg1 == 2 && e.Arg2 == 7 {
			stages = append(stages, Stage(e.Aux))
		}
	}
	if len(stages) != 2 || stages[0] != StageSubmit || stages[1] != StageExecEnd {
		t.Fatalf("journaled stages = %v, want [submit exec_end]", stages)
	}
}

// --- flight recorder ---------------------------------------------------

func TestFlightTriggerCooldownAndDump(t *testing.T) {
	j := NewJournal(JournalConfig{Events: 64})
	j.Emit(EvRelaySilent, 0, 0)
	reg := NewRegistry()
	reg.Counter("some_total", "").Add(3)
	f := NewFlight(FlightConfig{Registry: reg, Journal: j, Cooldown: time.Hour})

	b1 := f.Trigger("relay dead")
	if b1 == nil {
		t.Fatal("first trigger suppressed")
	}
	if f.Trigger("relay dead") != nil {
		t.Fatal("cooldown did not suppress re-trigger")
	}
	if f.Trigger("different reason") == nil {
		t.Fatal("cooldown is per-reason; different reason suppressed")
	}
	// Operator dumps ignore the cooldown entirely.
	if f.Dump("relay dead") == nil {
		t.Fatal("Dump was suppressed by cooldown")
	}
	if f.Triggered() != 3 {
		t.Fatalf("triggered = %d, want 3", f.Triggered())
	}
	if len(f.Bundles()) != 3 {
		t.Fatalf("bundles = %d, want 3", len(f.Bundles()))
	}
	// The bundle carries the journal snapshot and the registry.
	if len(b1.Events) == 0 {
		t.Fatal("bundle has no journal events")
	}
	found := false
	for _, s := range b1.Metrics {
		if s.Name == "some_total" && s.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("bundle metrics missing some_total=3")
	}
	// Each dump lands an EvDump marker in the journal for the NEXT
	// bundle to see (black-box chaining).
	last := f.Bundles()[2]
	sawDump := false
	for _, e := range last.Events {
		if e.Kind == EvDump {
			sawDump = true
		}
	}
	if !sawDump {
		t.Fatal("later bundle does not show the earlier dump event")
	}
}

func TestFlightKeepBound(t *testing.T) {
	f := NewFlight(FlightConfig{Keep: 2, Cooldown: time.Nanosecond})
	for i := 0; i < 5; i++ {
		if f.Dump("again") == nil {
			t.Fatal("dump failed")
		}
	}
	bs := f.Bundles()
	if len(bs) != 2 {
		t.Fatalf("bundles = %d, want 2 (oldest dropped)", len(bs))
	}
	if bs[0].Seq != 4 || bs[1].Seq != 5 {
		t.Fatalf("kept seqs = %d,%d, want 4,5", bs[0].Seq, bs[1].Seq)
	}
}

func TestFlightWriteText(t *testing.T) {
	j := NewJournal(JournalConfig{Events: 64})
	j.Emit(EvRelaySilent, 2, 1)
	reg := NewRegistry()
	reg.Counter("ordering_relay_silent", "").Add(1)
	f := NewFlight(FlightConfig{Registry: reg, Journal: j})
	f.Trigger("relay g2/1 silent")

	var sb strings.Builder
	f.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"flight bundle 1",
		"relay g2/1 silent",
		"relay_silent group=2 relay=1",
		"ordering_relay_silent",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}

	var nilF *Flight
	sb.Reset()
	nilF.WriteText(&sb)
	if !strings.Contains(sb.String(), "disabled") {
		t.Fatal("nil flight WriteText silent")
	}
	if nilF.Trigger("x") != nil || nilF.Dump("x") != nil || nilF.Bundles() != nil {
		t.Fatal("nil flight not inert")
	}
}

// --- prometheus exactness ----------------------------------------------

func TestPrometheusSummaryExactSum(t *testing.T) {
	var h bench.Histogram
	h.Record(1500 * time.Microsecond)
	h.Record(2500 * time.Microsecond)
	h.Record(250 * time.Microsecond)
	if got, want := h.Sum(), int64(4250*time.Microsecond); got != want {
		t.Fatalf("Sum = %d ns, want %d", got, want)
	}
	r := NewRegistry()
	r.Histogram("stage_us", "", &h)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	// _sum must be the exact observation total in seconds, not a
	// mean×count reconstruction from bucket midpoints.
	if !strings.Contains(out, "stage_us_sum 0.00425") {
		t.Fatalf("prometheus output missing exact _sum:\n%s", out)
	}
	if !strings.Contains(out, "stage_us_count 3") {
		t.Fatalf("prometheus output missing _count:\n%s", out)
	}
	// The snapshot carries the exact sum for JSON consumers.
	for _, s := range r.Snapshot() {
		if s.Name == "stage_us" && s.SumUs != 4250 {
			t.Fatalf("SumUs = %v, want 4250", s.SumUs)
		}
	}
}

// --- the flight-gate alloc benchmark -----------------------------------

// BenchmarkJournalEmitSampledOut is half of `make flight-gate`: a
// per-command journal emit that loses the sampling coin flip must cost
// zero allocations (it is on the proxy admission and stage-stamp hot
// paths).
func BenchmarkJournalEmitSampledOut(b *testing.B) {
	j := NewJournal(JournalConfig{Events: 4096, Sample: 1 << 30})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.EmitID(EvProxyShed, 1, uint64(i)<<1) // even ids: hash spread, mostly sampled out
	}
}
