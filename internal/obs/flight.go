package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is the anomaly-triggered dump side of the flight recorder:
// when a watchdog fires (silent relay stripe, rollback storm, learner
// gap stall) — or an operator asks via /debug/flight or SIGQUIT — it
// snapshots the event journal, the recent-trace ring and the full
// metrics registry into a timestamped diagnostic bundle. Bundles are
// retained in a small ring so the state surrounding the FIRST
// occurrence survives later occurrences; a per-reason cooldown keeps a
// recurring anomaly from churning the ring.
type Flight struct {
	cfg       FlightConfig
	triggered atomic.Uint64

	mu       sync.Mutex
	bundles  []Bundle
	lastFire map[string]time.Time
}

// FlightConfig configures a Flight recorder. Any of the sources may be
// nil; the bundle simply omits that section.
type FlightConfig struct {
	Registry *Registry
	Tracer   *Tracer
	Journal  *Journal
	// Keep bounds retained bundles (oldest dropped). 0 selects the
	// default (8).
	Keep int
	// Cooldown suppresses re-triggers of the SAME reason within the
	// window (on-demand dumps are never suppressed). 0 selects the
	// default (5s).
	Cooldown time.Duration
}

// Bundle is one diagnostic dump: everything the process knew at the
// moment a trigger fired.
type Bundle struct {
	// Seq numbers bundles from 1 in trigger order.
	Seq    uint64
	Time   time.Time
	Reason string
	// Events is the journal snapshot, oldest first.
	Events []Event
	// Recent is the recently folded trace ring, newest last.
	Recent []Record
	// Metrics is the full registry snapshot.
	Metrics []Sample
}

const (
	defaultFlightKeep     = 8
	defaultFlightCooldown = 5 * time.Second
)

// NewFlight creates a flight recorder. Callers that want dumps off
// keep a nil *Flight (every method is a no-op on nil).
func NewFlight(cfg FlightConfig) *Flight {
	if cfg.Keep <= 0 {
		cfg.Keep = defaultFlightKeep
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = defaultFlightCooldown
	}
	return &Flight{cfg: cfg, lastFire: make(map[string]time.Time)}
}

// Trigger cuts a diagnostic bundle for reason, unless the same reason
// fired within the cooldown window (then it returns nil). Safe from
// any goroutine; no-op on nil.
func (f *Flight) Trigger(reason string) *Bundle {
	return f.trigger(reason, true)
}

// Dump cuts a bundle unconditionally (operator-initiated: /debug/
// flight, SIGQUIT) — no cooldown, the human asking IS the rate limit.
func (f *Flight) Dump(reason string) *Bundle {
	return f.trigger(reason, false)
}

func (f *Flight) trigger(reason string, cooldown bool) *Bundle {
	if f == nil {
		return nil
	}
	now := time.Now()
	f.mu.Lock()
	if cooldown {
		if last, ok := f.lastFire[reason]; ok && now.Sub(last) < f.cfg.Cooldown {
			f.mu.Unlock()
			return nil
		}
	}
	f.lastFire[reason] = now
	f.mu.Unlock()

	// Snapshot outside the lock: the journal/registry walks are the
	// expensive part and must not serialize concurrent triggers.
	b := Bundle{
		Seq:     f.triggered.Add(1),
		Time:    now,
		Reason:  reason,
		Events:  f.cfg.Journal.Snapshot(),
		Recent:  f.cfg.Tracer.Recent(),
		Metrics: f.cfg.Registry.Snapshot(),
	}
	// The dump itself is journal-worthy: later bundles show when
	// earlier ones were cut.
	f.cfg.Journal.Emit(EvDump, b.Seq, 0)

	f.mu.Lock()
	f.bundles = append(f.bundles, b)
	if len(f.bundles) > f.cfg.Keep {
		f.bundles = f.bundles[len(f.bundles)-f.cfg.Keep:]
	}
	f.mu.Unlock()
	return &b
}

// Triggered returns how many bundles were ever cut.
func (f *Flight) Triggered() uint64 {
	if f == nil {
		return 0
	}
	return f.triggered.Load()
}

// Bundles returns the retained bundles, oldest first.
func (f *Flight) Bundles() []Bundle {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Bundle, len(f.bundles))
	copy(out, f.bundles)
	return out
}

// WriteText renders every retained bundle as human-readable text.
func (f *Flight) WriteText(w io.Writer) {
	if f == nil {
		fmt.Fprintln(w, "flight recorder disabled")
		return
	}
	bundles := f.Bundles()
	if len(bundles) == 0 {
		fmt.Fprintln(w, "no flight bundles (no anomaly triggered; GET /debug/flight?dump=1 for an on-demand dump)")
		return
	}
	for i := range bundles {
		bundles[i].WriteText(w)
	}
}

// WriteText renders one bundle as human-readable text.
func (b *Bundle) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== flight bundle %d — %s — reason: %s\n",
		b.Seq, b.Time.Format(time.RFC3339Nano), b.Reason)
	fmt.Fprintf(w, "-- journal (%d events, oldest first)\n", len(b.Events))
	for _, e := range b.Events {
		fmt.Fprintf(w, "  %12s  %s\n", e.TS.Round(time.Microsecond), e)
	}
	fmt.Fprintf(w, "-- recent traces (%d, newest last)\n", len(b.Recent))
	for _, r := range b.Recent {
		fmt.Fprintf(w, "  client=%d seq=%d", r.Client, r.Seq)
		for i, ts := range r.TS {
			if ts != 0 {
				fmt.Fprintf(w, " %s=%s", Stage(i), time.Duration(ts).Round(time.Microsecond))
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "-- metrics (%d samples)\n", len(b.Metrics))
	for _, s := range b.Metrics {
		name := s.Name
		if s.Labels != "" {
			name += "{" + s.Labels + "}"
		}
		if s.Kind == KindHistogram {
			fmt.Fprintf(w, "  %s count=%d mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus\n",
				name, s.Count, s.MeanUs, s.P50Us, s.P99Us, s.MaxUs)
			continue
		}
		fmt.Fprintf(w, "  %s %v\n", name, s.Value)
	}
}

// Handler serves the retained bundles as text on GET; `?dump=1` cuts
// an on-demand bundle first. Mounted at /debug/flight by psmr-kvd's
// metrics listener.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("dump") != "" {
			f.Dump("on-demand /debug/flight")
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		f.WriteText(w)
	})
}

// Register adds the dump counter to a registry.
func (f *Flight) Register(r *Registry) {
	if f == nil || r == nil {
		return
	}
	r.FuncCounter("flight_bundles_total", "", f.Triggered)
}
