// Package obs is the unified observability layer for the replication
// stack: a metrics registry (typed atomic counters, gauges and
// log-bucketed histograms registered by name+labels), sampled
// pipeline-stage tracing, and live exposition (Prometheus text,
// expvar, pprof) — all with zero allocations on the hot paths.
//
// # Design
//
// Instruments come in two flavours. Owned instruments (Counter, Gauge)
// are plain atomics handed to the component that increments them; the
// registry only keeps a pointer for scraping. Func-backed instruments
// (FuncCounter, FuncGauge) wrap an existing concurrent-safe surface —
// the proxy/coordinator/checkpoint counter structs, CPUMeter roles,
// relay last-forward stamps — so migrating a counter into the registry
// never touches the loop that maintains it. Histograms reuse
// bench.Histogram (640 atomic log buckets, 1µs..~17min), which is
// already safe for concurrent recording.
//
// Scrapes (Snapshot, WritePrometheus, Flatten) read every instrument
// through atomic loads or the registered callback; they never take a
// lock a hot path also takes, so exposition cannot stall workers.
//
// # Sampling and overhead (the tracing argument)
//
// Pipeline tracing stamps a command at up to ten stage boundaries. At
// the default 1/1024 sampling a non-sampled command pays exactly one
// request-id peek (two unaligned loads), one multiply-xor hash and one
// modulo per boundary — low single-digit nanoseconds, no shared-cache
// traffic, no allocation — which is why sampled tracing is required to
// stay within 3% of tracing-off throughput (enforced by `make verify`).
// A sampled command additionally performs one CAS claim and one atomic
// store per boundary on a private slot-table line. Folding a completed
// trace into the per-stage histograms takes a mutex, but folds happen
// at the sampling rate (~throughput/1024), so contention is noise.
// Tracing every command (TraceSample=1) is supported for debugging and
// measured by `make obs-ablation`; it is priced accordingly.
//
// # Flight recorder (the black-box argument)
//
// Journal is the always-on black box: a fixed-size, striped, lock-free
// ring of structured events (four atomic words each) fed by every tier
// — proxy seal/shed, leader flush, decide, relay forward, learner
// gap/ooo, scheduler steal/handoff, rollback/evict, checkpoint
// barriers, watchdog transitions — plus an EvStage event per sampled
// stage crossing via the attached Tracer. The ring drops oldest on
// wrap: when an anomaly fires, the most recent history is the part
// worth keeping, and a hard size bound is what lets the recorder stay
// on in production without ever becoming the outage itself. Emit is
// allocation-free; per-command events are sampled out by the same
// deterministic request-id hash as tracing (EmitID returns after one
// hash when sampled out — 0 allocs/op, gated by `make flight-gate`).
//
// Flight is the dump side: anomaly triggers (silent relay stripe,
// rollback storm, learner gap stall) — or /debug/flight and SIGQUIT —
// snapshot the journal, the recent-trace ring and the registry into a
// timestamped Bundle, so the question "what was the system doing when
// the watchdog fired" has an answer without reproducing the failure.
//
// # Wire trace context
//
// Tracer stamps survive process boundaries through a compact tag
// appended to carrier frames (client submit, ProposeBatch, decision/
// optimistic relay frames): request id + stage bitmap + one duration
// per stamped stage, durations relative to the trace's origin so
// per-process clock skew cancels (the stamping process folds its
// stage deltas locally and ships only durations). Receivers absorb
// the tag into their own slot table first-write-wins and strip it;
// processes without a tracer parse tagged frames unchanged, because
// every frame codec reads by explicit lengths and ignores trailing
// bytes. See wire.go for the exact layout and validation rules.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/psmr/psmr/internal/bench"
)

// Kind distinguishes the instrument families in a snapshot.
type Kind int

// The instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil Counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil Counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value. A nil Counter reads zero.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Safe on a nil Gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Load returns the current value. A nil Gauge reads zero.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric is one registered instrument.
type metric struct {
	name   string
	labels string // pre-rendered `key="value",...` (no braces), may be empty
	kind   Kind
	read   func() float64   // counter/gauge value
	hist   *bench.Histogram // histogram only
}

// Registry holds the registered instruments. All methods are safe on a
// nil Registry (registration is dropped, snapshots are empty), so
// observability stays optional everywhere it is threaded.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(m metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// Counter creates and registers an owned counter.
func (r *Registry) Counter(name, labels string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, labels: labels, kind: KindCounter,
		read: func() float64 { return float64(c.Load()) }})
	return c
}

// Gauge creates and registers an owned gauge.
func (r *Registry) Gauge(name, labels string) *Gauge {
	g := &Gauge{}
	r.register(metric{name: name, labels: labels, kind: KindGauge,
		read: func() float64 { return float64(g.Load()) }})
	return g
}

// FuncCounter registers a callback-backed counter over an existing
// concurrent-safe surface. fn must be safe to call at any time.
func (r *Registry) FuncCounter(name, labels string, fn func() uint64) {
	r.register(metric{name: name, labels: labels, kind: KindCounter,
		read: func() float64 { return float64(fn()) }})
}

// FuncGauge registers a callback-backed gauge. fn must be safe to call
// at any time.
func (r *Registry) FuncGauge(name, labels string, fn func() float64) {
	r.register(metric{name: name, labels: labels, kind: KindGauge, read: fn})
}

// Histogram registers an existing bench.Histogram (which is already
// safe for concurrent recording) under a name.
func (r *Registry) Histogram(name, labels string, h *bench.Histogram) {
	if h == nil {
		return
	}
	r.register(metric{name: name, labels: labels, kind: KindHistogram, hist: h})
}

// Sample is one instrument's value in a snapshot. Histogram samples
// carry the summary fields instead of Value.
type Sample struct {
	Name   string
	Labels string
	Kind   Kind
	Value  float64 // counter/gauge

	// Histogram summary (KindHistogram only). SumUs is the exact sum
	// of observations (not mean×count reconstruction), so Prometheus
	// `_sum`/`_count` rate math is faithful.
	Count               int64
	SumUs               float64
	MeanUs              float64
	P50Us, P99Us, MaxUs float64
}

// Snapshot reads every instrument once and returns the samples sorted
// by name then labels — one coherent view of the whole stack.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind}
		if m.kind == KindHistogram {
			s.Count = m.hist.Count()
			if s.Count > 0 {
				s.SumUs = float64(m.hist.Sum()) / 1e3
				s.MeanUs = float64(m.hist.Mean().Microseconds())
				s.P50Us = float64(m.hist.Quantile(0.50).Microseconds())
				s.P99Us = float64(m.hist.Quantile(0.99).Microseconds())
				s.MaxUs = float64(m.hist.Max().Microseconds())
			}
		} else {
			s.Value = m.read()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Flatten renders a snapshot as a flat name→value map (histograms
// expand to _count/_mean_us/_p50_us/_p99_us/_max_us), the shape the
// benchmark harness embeds in its JSON Extra maps.
func (r *Registry) Flatten() map[string]float64 {
	snap := r.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for _, s := range snap {
		key := s.Name
		if s.Labels != "" {
			key += "{" + s.Labels + "}"
		}
		if s.Kind == KindHistogram {
			out[key+"_count"] = float64(s.Count)
			if s.Count > 0 {
				out[key+"_mean_us"] = s.MeanUs
				out[key+"_p50_us"] = s.P50Us
				out[key+"_p99_us"] = s.P99Us
				out[key+"_max_us"] = s.MaxUs
			}
			continue
		}
		out[key] = s.Value
	}
	return out
}
