package obs

import (
	"encoding/binary"
	"math/bits"
	"time"

	"github.com/psmr/psmr/internal/command"
)

// Wire-level trace-context propagation (Dapper-style): a sampled
// command's trace must survive process boundaries, so the stamping
// process folds its per-stage timestamps into origin-relative DURATIONS
// and ships them as a compact tag appended to the carrying frame. The
// receiving process reconstructs the stamps against its own clock
// (durations are clock-skew-free; only the network hop between the last
// shipped stamp and the absorb point is folded out), so every stage a
// command crossed — client submit, proxy seal, leader admit, decide,
// delivery, execution, confirmation — lands in ONE trace even when
// client, proxies, coordinators and replicas are separate OS processes.
//
// Tag layout, appended after the complete frame:
//
//	frame || ctx || ctxLen(u16 BE) || 0xB7 0x5C
//	ctx = client(u64 LE) || seq(u64 LE) || stageBits(u16 LE)
//	      || one u64 LE duration (ns since trace origin) per set stage
//	      bit, ascending stage order
//
// The tag is strictly a trailer: every frame codec in the stack reads
// its payload by explicit lengths and ignores trailing bytes, so tagged
// frames parse identically everywhere, including processes that predate
// (or disabled) tracing. False positives are impossible on the frame
// types that carry tags: untagged Propose/ProposeBatch/Decision/
// Optimistic frames all end in a zero u32 entry count, which can never
// match the nonzero magic bytes; SplitWireTag additionally validates
// the stage bitmap range and the exact bitmap↔length correspondence.
const (
	wireMagic0 = 0xB7
	wireMagic1 = 0x5C
	// wireCtxFixed is the fixed ctx prefix: client + seq + stage bitmap.
	wireCtxFixed = 8 + 8 + 2
	// wireTrailer is the non-ctx suffix: ctxLen + the two magic bytes.
	wireTrailer = 2 + 2
)

// WireTag is the decoded trace-context tag of one frame: the request
// identity plus the origin-relative durations of every stage the
// stamping process saw.
type WireTag struct {
	Client, Seq uint64
	// Stages is the stage bitmap: bit i set means Durations[i] is
	// valid.
	Stages uint16
	// Durations are nanoseconds since the trace's origin (its first
	// stamp); only entries whose Stages bit is set are meaningful.
	Durations [NumStages]int64
}

// AppendWireTag appends tag to frame and returns the extended slice.
// Tags with an empty stage bitmap are not appended (nothing to ship).
func AppendWireTag(frame []byte, tag WireTag) []byte {
	if tag.Stages == 0 || tag.Stages >= 1<<NumStages {
		return frame
	}
	ctxLen := wireCtxFixed + 8*bits.OnesCount16(tag.Stages)
	out := frame
	out = binary.LittleEndian.AppendUint64(out, tag.Client)
	out = binary.LittleEndian.AppendUint64(out, tag.Seq)
	out = binary.LittleEndian.AppendUint16(out, tag.Stages)
	for i := 0; i < NumStages; i++ {
		if tag.Stages&(1<<uint(i)) != 0 {
			out = binary.LittleEndian.AppendUint64(out, uint64(tag.Durations[i]))
		}
	}
	out = binary.BigEndian.AppendUint16(out, uint16(ctxLen))
	return append(out, wireMagic0, wireMagic1)
}

// SplitWireTag detects and strips a trace-context tag: it returns the
// decoded tag and the frame without its trailer, or ok=false (frame
// returned unchanged as rest) when no structurally valid tag is
// present.
func SplitWireTag(frame []byte) (tag WireTag, rest []byte, ok bool) {
	n := len(frame)
	if n < wireCtxFixed+wireTrailer {
		return WireTag{}, frame, false
	}
	if frame[n-2] != wireMagic0 || frame[n-1] != wireMagic1 {
		return WireTag{}, frame, false
	}
	ctxLen := int(binary.BigEndian.Uint16(frame[n-4 : n-2]))
	if ctxLen < wireCtxFixed || ctxLen+wireTrailer > n {
		return WireTag{}, frame, false
	}
	ctx := frame[n-wireTrailer-ctxLen : n-wireTrailer]
	stages := binary.LittleEndian.Uint16(ctx[16:18])
	if stages == 0 || stages >= 1<<NumStages {
		return WireTag{}, frame, false
	}
	if ctxLen != wireCtxFixed+8*bits.OnesCount16(stages) {
		return WireTag{}, frame, false
	}
	tag = WireTag{
		Client: binary.LittleEndian.Uint64(ctx[0:8]),
		Seq:    binary.LittleEndian.Uint64(ctx[8:16]),
		Stages: stages,
	}
	off := wireCtxFixed
	for i := 0; i < NumStages; i++ {
		if stages&(1<<uint(i)) != 0 {
			tag.Durations[i] = int64(binary.LittleEndian.Uint64(ctx[off : off+8]))
			off += 8
		}
	}
	return tag, frame[:n-wireTrailer-ctxLen], true
}

// SampledID reports whether the request id is selected by the tracer's
// deterministic sampling. False on a nil tracer.
func (t *Tracer) SampledID(client, seq uint64) bool {
	if t == nil {
		return false
	}
	h := traceHash(client, seq)
	return t.sample <= 1 || h%t.sample == 0
}

// AppendTag appends the trace-context tag of a sampled in-flight trace
// to frame and returns the (possibly extended) slice. Non-sampled ids,
// traces with no local stamps, and nil tracers return frame unchanged.
//
// The slot read races with concurrent stamping and (rarely) slot
// reuse; a torn read can at worst ship a stray duration, which the
// receiver's first-write-wins seeding bounds to one bogus stamp on a
// diagnostics-grade path.
func (t *Tracer) AppendTag(frame []byte, client, seq uint64) []byte {
	if t == nil {
		return frame
	}
	h := traceHash(client, seq)
	if t.sample > 1 && h%t.sample != 0 {
		return frame
	}
	key := h | 1
	s := &t.slots[(h>>1)&t.slotMask]
	if s.key.Load() != key {
		return frame
	}
	origin := s.origin.Load()
	tag := WireTag{Client: client, Seq: seq}
	for i := range s.ts {
		ts := s.ts[i].Load()
		if ts == 0 || ts < origin {
			continue
		}
		tag.Stages |= 1 << uint(i)
		tag.Durations[i] = ts - origin
	}
	if tag.Stages == 0 {
		return frame
	}
	return AppendWireTag(frame, tag)
}

// AppendTagForValue tags frame with the trace context of the request
// encoded in value (a frame payload or batch item starting with an
// encoded command.Request). Non-request values return frame unchanged.
func (t *Tracer) AppendTagForValue(frame, value []byte) []byte {
	if t == nil {
		return frame
	}
	client, seq, ok := command.PeekRequestID(value)
	if !ok {
		return frame
	}
	return t.AppendTag(frame, client, seq)
}

// AbsorbTag detects a trace-context tag on frame, merges the shipped
// stamps into the local tracer, and returns the frame with the tag
// stripped. Frames without a valid tag (and all frames on a nil
// tracer) are returned unchanged — the tag parses as ignorable
// trailing bytes everywhere, so absorbing is an optimization of
// fidelity, never a requirement of correctness.
//
// Reconstruction: the shipped durations are origin-relative, so the
// absorber anchors the NEWEST shipped stamp at its own "now" and seeds
// earlier stamps behind it (first-write-wins, like direct stamping).
// Durations between shipped stamps are exact; the network hop between
// the last remote stamp and this absorb collapses to zero — the
// unavoidable price of not assuming synchronized clocks.
func (t *Tracer) AbsorbTag(frame []byte) []byte {
	if t == nil {
		return frame
	}
	tag, rest, ok := SplitWireTag(frame)
	if !ok {
		return frame
	}
	h := traceHash(tag.Client, tag.Seq)
	if t.sample > 1 && h%t.sample != 0 {
		// A peer with a different sampling divisor tagged this frame;
		// strip the tag but keep the local table consistent with local
		// sampling.
		return rest
	}
	now := int64(time.Since(t.base))
	s, fresh := t.claimSlot(h|1, now)
	if s == nil {
		return rest
	}
	if fresh {
		// Anchor the trace's origin so the newest shipped stamp maps to
		// the absorb instant; clamp to 1 so a reconstructed stamp can
		// never collide with the 0 "never crossed" sentinel.
		var maxD int64
		for i := range tag.Durations {
			if tag.Stages&(1<<uint(i)) != 0 && tag.Durations[i] > maxD {
				maxD = tag.Durations[i]
			}
		}
		origin := now - maxD
		if origin < 1 {
			origin = 1
		}
		s.origin.Store(origin)
	}
	origin := s.origin.Load()
	for i := range tag.Durations {
		if tag.Stages&(1<<uint(i)) == 0 || tag.Durations[i] < 0 {
			continue
		}
		s.ts[i].CompareAndSwap(0, origin+tag.Durations[i])
	}
	return rest
}

// AbsorbTags absorbs every stacked trace-context tag on frame (batch
// frames carry one tag per sampled command) and returns the frame
// with all of them stripped. Nil-tracer and untagged frames return
// unchanged.
func (t *Tracer) AbsorbTags(frame []byte) []byte {
	for {
		out := t.AbsorbTag(frame)
		if len(out) == len(frame) {
			return out
		}
		frame = out
	}
}
