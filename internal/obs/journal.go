package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Journal is the flight recorder's black box: a fixed-size, lock-free,
// structured event log that is always on and always bounded. Emitters
// write four atomic words per event (timestamp, kind+aux, two args)
// into striped ring segments; when a stripe wraps, the oldest events
// are overwritten (drop-oldest — under an anomaly the most recent
// history is the valuable part, and a bounded ring is the only way an
// always-on recorder can never become the outage). Emit never blocks,
// never allocates, and is a no-op on a nil *Journal, so every
// instrumentation point can call it unconditionally.
//
// Striping: events hash to one of a fixed set of stripes by their
// payload, each with its own ring cursor on a private cache line, so
// concurrent emitters from different pipeline tiers don't serialize on
// one counter. The cost is that Snapshot must merge-sort stripes by
// timestamp — fine, snapshots are anomaly-frequency.
//
// Consistency: an event's words are published timestamp-last (and the
// timestamp is cleared first on overwrite), so a concurrent Snapshot
// observing a nonzero timestamp almost always reads a complete event.
// A reader racing a wrap can still see a torn event (timestamp from
// one event, args from the next); this is accepted — the journal is
// diagnostics, not accounting, and per-word atomics keep the race
// detector clean without a lock on the emit path.
type Journal struct {
	base      time.Time
	sample    uint64
	perStripe uint64
	stripes   [journalStripes]journalStripe
	words     []atomic.Uint64
	emitted   atomic.Uint64
}

type journalStripe struct {
	cur atomic.Uint64
	_   [7]uint64 // pad to a cache line: stripe cursors must not false-share
}

const (
	journalStripes       = 8
	defaultJournalEvents = 4096
	eventWords           = 4
)

// EventKind names one flight-recorder event type.
type EventKind uint8

// The flight-recorder event kinds.
const (
	// EvStage is a sampled command crossing a pipeline-stage boundary
	// (aux = Stage, args = client, seq). Emitted by the Tracer.
	EvStage EventKind = iota + 1
	// EvProxySeal is a proxy sealing a batch (args = group, commands).
	EvProxySeal
	// EvProxyShed is a proxy shedding a duplicate client frame
	// (args = client, seq).
	EvProxyShed
	// EvLeaderFlush is the leader flushing a proposal batch
	// (args = commands, bytes).
	EvLeaderFlush
	// EvDecide is consensus reached on an instance (args = group,
	// instance).
	EvDecide
	// EvRelayForward is a delivery relay forwarding a decision frame
	// (args = group<<32|relay, forwarded-so-far).
	EvRelayForward
	// EvLearnerGap is a learner stalled on a delivery gap
	// (args = frontier, buffered out-of-order instances).
	EvLearnerGap
	// EvLearnerOOO is a learner buffering an out-of-order instance
	// (args = instance, frontier).
	EvLearnerOOO
	// EvSchedSteal is a worker stealing keyed work (args = thief,
	// commands moved).
	EvSchedSteal
	// EvSchedHandoff is a multi-key handoff executing on the last
	// depositor (args = worker, keys).
	EvSchedHandoff
	// EvRollback is the optimistic executor rolling back a
	// misspeculation (args = instance, collateral).
	EvRollback
	// EvGhostEvict is the optimistic executor evicting ghost
	// speculations (args = evicted, 0).
	EvGhostEvict
	// EvCheckpoint is a replica taking a checkpoint barrier
	// (args = replica, barrier instance).
	EvCheckpoint
	// EvRelaySilent is the watchdog flagging a silent delivery stripe
	// (args = group, relay).
	EvRelaySilent
	// EvDump is the flight recorder cutting a diagnostic bundle
	// (args = bundle seq, 0).
	EvDump

	numEventKinds = int(EvDump) + 1
)

var eventKindNames = [numEventKinds]string{
	EvStage:        "stage",
	EvProxySeal:    "proxy_seal",
	EvProxyShed:    "proxy_shed",
	EvLeaderFlush:  "leader_flush",
	EvDecide:       "decide",
	EvRelayForward: "relay_forward",
	EvLearnerGap:   "learner_gap_stall",
	EvLearnerOOO:   "learner_ooo",
	EvSchedSteal:   "sched_steal",
	EvSchedHandoff: "sched_mk_handoff",
	EvRollback:     "opt_rollback",
	EvGhostEvict:   "ghost_evict",
	EvCheckpoint:   "checkpoint_barrier",
	EvRelaySilent:  "relay_silent",
	EvDump:         "flight_dump",
}

func (k EventKind) String() string {
	if int(k) < numEventKinds && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "unknown"
}

// JournalConfig configures a Journal.
type JournalConfig struct {
	// Events bounds the total retained events across all stripes
	// (rounded up so each stripe is a power-of-two ring). 0 selects
	// the default (4096, ~128 KiB).
	Events int
	// Sample is the divisor EmitID applies to per-command events,
	// with the tracer's deterministic request-id hash so journal and
	// trace sampling agree. 0 or 1 keeps every per-command event.
	Sample int
}

// NewJournal creates a journal. Callers that want the flight recorder
// off keep a nil *Journal instead (every method is a no-op on nil).
func NewJournal(cfg JournalConfig) *Journal {
	events := cfg.Events
	if events <= 0 {
		events = defaultJournalEvents
	}
	per := 1
	for per*journalStripes < events {
		per <<= 1
	}
	j := &Journal{
		base:      time.Now(),
		perStripe: uint64(per),
		words:     make([]atomic.Uint64, journalStripes*per*eventWords),
	}
	if cfg.Sample > 1 {
		j.sample = uint64(cfg.Sample)
	}
	return j
}

// Capacity returns the number of events the journal retains.
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return int(j.perStripe) * journalStripes
}

// Emitted returns the total events ever recorded (retained or
// overwritten).
func (j *Journal) Emitted() uint64 {
	if j == nil {
		return 0
	}
	return j.emitted.Load()
}

// Emit records an event unconditionally. Lock- and allocation-free;
// no-op on nil. Use for low-frequency control-plane events (flushes,
// gaps, rollbacks, watchdog transitions); per-command data-plane
// events go through EmitID so sampling bounds their cost.
func (j *Journal) Emit(kind EventKind, arg1, arg2 uint64) {
	if j == nil {
		return
	}
	j.record(kind, 0, arg1, arg2)
}

// EmitID records a per-command event, subject to the journal's
// sampling divisor over the deterministic request-id hash (the same
// hash the tracer samples with, so journal events line up with traced
// commands). Lock- and allocation-free; sampled-out calls return
// after the hash. No-op on nil.
func (j *Journal) EmitID(kind EventKind, client, seq uint64) {
	if j == nil {
		return
	}
	if j.sample > 1 && traceHash(client, seq)%j.sample != 0 {
		return
	}
	j.record(kind, 0, client, seq)
}

// stageEvent records a pipeline-stage crossing (called by an attached
// Tracer, which already applied its own sampling).
func (j *Journal) stageEvent(stage Stage, client, seq uint64) {
	if j == nil {
		return
	}
	j.record(EvStage, uint64(stage), client, seq)
}

func (j *Journal) record(kind EventKind, aux, arg1, arg2 uint64) {
	ts := uint64(time.Since(j.base)) | 1 // nonzero: 0 marks an empty slot
	// Stripe by payload so concurrent emitters of different events
	// spread; same-payload repeats share a stripe, which is fine at
	// control-plane frequency.
	h := (arg1 ^ arg2<<17 ^ aux<<7 ^ uint64(kind)) * 0x9e3779b97f4a7c15
	si := (h >> 32) & (journalStripes - 1)
	st := &j.stripes[si]
	i := st.cur.Add(1) - 1
	w := (si*j.perStripe + i&(j.perStripe-1)) * eventWords
	j.words[w].Store(0) // clear first: readers skip half-written slots
	j.words[w+1].Store(uint64(kind)<<56 | aux&(1<<56-1))
	j.words[w+2].Store(arg1)
	j.words[w+3].Store(arg2)
	j.words[w].Store(ts) // publish last
	j.emitted.Add(1)
}

// Event is one decoded flight-recorder event.
type Event struct {
	// TS is the emit instant relative to the journal's creation.
	TS time.Duration
	// Time is the absolute emit instant.
	Time time.Time
	Kind EventKind
	// Aux is kind-specific small payload (the Stage for EvStage).
	Aux        uint64
	Arg1, Arg2 uint64
}

// String renders the event's payload with kind-appropriate field
// names.
func (e Event) String() string {
	switch e.Kind {
	case EvStage:
		return fmt.Sprintf("stage %s client=%d seq=%d", Stage(e.Aux), e.Arg1, e.Arg2)
	case EvProxySeal:
		return fmt.Sprintf("proxy_seal group=%d commands=%d", e.Arg1, e.Arg2)
	case EvProxyShed:
		return fmt.Sprintf("proxy_shed client=%d seq=%d", e.Arg1, e.Arg2)
	case EvLeaderFlush:
		return fmt.Sprintf("leader_flush commands=%d bytes=%d", e.Arg1, e.Arg2)
	case EvDecide:
		return fmt.Sprintf("decide group=%d instance=%d", e.Arg1, e.Arg2)
	case EvRelayForward:
		return fmt.Sprintf("relay_forward group=%d relay=%d forwarded=%d",
			e.Arg1>>32, e.Arg1&0xffffffff, e.Arg2)
	case EvLearnerGap:
		return fmt.Sprintf("learner_gap_stall frontier=%d buffered=%d", e.Arg1, e.Arg2)
	case EvLearnerOOO:
		return fmt.Sprintf("learner_ooo instance=%d frontier=%d", e.Arg1, e.Arg2)
	case EvSchedSteal:
		return fmt.Sprintf("sched_steal thief=%d moved=%d", e.Arg1, e.Arg2)
	case EvSchedHandoff:
		return fmt.Sprintf("sched_mk_handoff worker=%d keys=%d", e.Arg1, e.Arg2)
	case EvRollback:
		return fmt.Sprintf("opt_rollback instance=%d collateral=%d", e.Arg1, e.Arg2)
	case EvGhostEvict:
		return fmt.Sprintf("ghost_evict evicted=%d", e.Arg1)
	case EvCheckpoint:
		return fmt.Sprintf("checkpoint_barrier replica=%d instance=%d", e.Arg1, e.Arg2)
	case EvRelaySilent:
		return fmt.Sprintf("relay_silent group=%d relay=%d", e.Arg1, e.Arg2)
	case EvDump:
		return fmt.Sprintf("flight_dump bundle=%d", e.Arg1)
	}
	return fmt.Sprintf("%s aux=%d arg1=%d arg2=%d", e.Kind, e.Aux, e.Arg1, e.Arg2)
}

// Snapshot decodes the retained events, oldest first. Concurrent with
// emitters; see the type comment for the (accepted) torn-event race.
// Nil on a nil journal.
func (j *Journal) Snapshot() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, 0, 256)
	for si := uint64(0); si < journalStripes; si++ {
		for i := uint64(0); i < j.perStripe; i++ {
			w := (si*j.perStripe + i) * eventWords
			ts := j.words[w].Load()
			if ts == 0 {
				continue
			}
			kw := j.words[w+1].Load()
			out = append(out, Event{
				TS:   time.Duration(ts),
				Time: j.base.Add(time.Duration(ts)),
				Kind: EventKind(kw >> 56),
				Aux:  kw & (1<<56 - 1),
				Arg1: j.words[w+2].Load(),
				Arg2: j.words[w+3].Load(),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// Register adds the journal's bookkeeping to a registry under the
// flight_* namespace.
func (j *Journal) Register(r *Registry) {
	if j == nil || r == nil {
		return
	}
	r.FuncCounter("flight_journal_emitted_total", "", j.Emitted)
	r.FuncGauge("flight_journal_capacity_events", "", func() float64 {
		return float64(j.Capacity())
	})
}
