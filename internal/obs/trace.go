package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/command"
)

// Stage names one pipeline boundary a command crosses on its way from
// client submit to confirmed execution. Stages are stamped in pipeline
// order, but a given deployment only crosses a subset (no proxy tier →
// no StageProxySeal; plain execution → no StageConfirm/StageRollback).
type Stage uint8

// The pipeline-stage boundaries, in pipeline order.
const (
	// StageSubmit is the client-side multicast of the request.
	StageSubmit Stage = iota
	// StageProxySeal is the proxy-proposer sealing the request into a
	// forwarded batch (proxied deployments only).
	StageProxySeal
	// StageLeaderAdmit is the group leader admitting the request into
	// its current proposal batch.
	StageLeaderAdmit
	// StageDecided is consensus reached on the instance carrying the
	// request.
	StageDecided
	// StageLearnerDeliver is the replica's learner appending the
	// request's batch to the ordered log.
	StageLearnerDeliver
	// StageEngineAdmit is the scheduling engine admitting the request
	// into its dependency structure.
	StageEngineAdmit
	// StageExecStart and StageExecEnd bracket the service execution.
	StageExecStart
	StageExecEnd
	// StageConfirm is the optimistic executor order-confirming a
	// speculation (optimistic deployments only).
	StageConfirm
	// StageRollback is the optimistic executor withdrawing the request
	// as rollback collateral (optimistic deployments only).
	StageRollback

	// NumStages is the number of stage boundaries.
	NumStages = int(StageRollback) + 1
)

var stageNames = [NumStages]string{
	"submit", "proxy_seal", "leader_admit", "decided", "learner_deliver",
	"engine_admit", "exec_start", "exec_end", "confirm", "rollback",
}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns every stage in pipeline order (for iteration in
// exposition code).
func Stages() [NumStages]Stage {
	var out [NumStages]Stage
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Record is one completed (folded) trace: the request identity plus
// the per-stage timestamps in nanoseconds since the tracer's base
// instant; 0 means the stage was never crossed.
type Record struct {
	Client, Seq uint64
	TS          [NumStages]int64
}

// traceSlot is one direct-mapped slot of the in-flight table. key is
// the claimed trace's nonzero id hash (0 = free); claim is the claim
// time, used to steal slots abandoned by commands that never reached
// the final stage (lost proposals, ghosts); origin is the local
// instant (ns since base) that maps to the trace's time zero — the
// reference point wire tags ship their durations against (see
// wire.go).
type traceSlot struct {
	key    atomic.Uint64
	claim  atomic.Int64
	origin atomic.Int64
	ts     [NumStages]atomic.Int64
}

const (
	defaultTraceSample = 1024
	defaultTraceSlots  = 1024
	traceRingSize      = 256
	// slotEvictAfter steals a slot whose trace never folded (the
	// command was lost or superseded); generous against any real
	// pipeline latency.
	slotEvictAfter = 5 * time.Second
)

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Sample traces one in every Sample commands, chosen by a
	// deterministic hash of the request id so every component agrees
	// without coordination. 0 selects the default (1024); 1 traces
	// every command.
	Sample int
	// Final is the stage whose stamp completes a trace and folds it
	// into the histograms (StageExecEnd for plain execution,
	// StageConfirm for optimistic).
	Final Stage
	// Slots sizes the in-flight slot table (rounded up to a power of
	// two). 0 selects the default (1024).
	Slots int
}

// Tracer stamps sampled commands at pipeline-stage boundaries and
// folds completed traces into per-stage latency histograms plus a
// recent-trace ring. All Stamp methods are safe for concurrent use
// from every component, allocation-free, and no-ops on a nil Tracer.
//
// Stamps are first-write-wins per (trace, stage): retransmissions and
// duplicate stamping by peer replicas keep the earliest timestamp, so
// each stage's histogram measures the first time the pipeline crossed
// that boundary for the command.
type Tracer struct {
	sample   uint64
	final    Stage
	base     time.Time
	slots    []traceSlot
	slotMask uint64

	// journal, when attached, receives an EvStage flight-recorder
	// event for every first crossing of a stage by a sampled command.
	journal *Journal

	sampled    atomic.Uint64
	folded     atomic.Uint64
	collisions atomic.Uint64
	evicted    atomic.Uint64

	mu        sync.Mutex
	stageHist [NumStages]*bench.Histogram
	totalHist *bench.Histogram
	ring      [traceRingSize]Record
	ringN     uint64
}

// EffectiveSample normalizes a user-facing sample knob to the divisor
// NewTracer applies: <=0 selects the default (1024), 1 keeps every
// command. Lets the journal sample per-command events at the exact
// rate the tracer will use so the two stay in agreement.
func EffectiveSample(sample int) int {
	if sample <= 0 {
		return defaultTraceSample
	}
	return sample
}

// NewTracer creates a tracer. Callers that want tracing off should
// keep a nil *Tracer instead (every method is a no-op on nil).
func NewTracer(cfg TracerConfig) *Tracer {
	sample := cfg.Sample
	if sample <= 0 {
		sample = defaultTraceSample
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = defaultTraceSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	t := &Tracer{
		sample:   uint64(sample),
		final:    cfg.Final,
		base:     time.Now(),
		slots:    make([]traceSlot, n),
		slotMask: uint64(n - 1),
	}
	for i := range t.stageHist {
		t.stageHist[i] = &bench.Histogram{}
	}
	t.totalHist = &bench.Histogram{}
	return t
}

// traceHash mixes a request id into the sampling/placement hash
// (splitmix64-style finalizer, same family as the schedulers' key
// mixers).
func traceHash(client, seq uint64) uint64 {
	x := client*0x9e3779b97f4a7c15 + seq
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// Stamp records the stage boundary for the request encoded in value
// (any frame or batch item starting with an encoded command.Request).
// Non-request values and non-sampled requests return after the id
// peek. Allocation-free; no-op on nil.
func (t *Tracer) Stamp(stage Stage, value []byte) {
	if t == nil {
		return
	}
	client, seq, ok := command.PeekRequestID(value)
	if !ok {
		return
	}
	t.StampID(stage, client, seq)
}

// StampID records the stage boundary for an already-decoded request
// identity. Allocation-free; no-op on nil.
func (t *Tracer) StampID(stage Stage, client, seq uint64) {
	if t == nil {
		return
	}
	h := traceHash(client, seq)
	if t.sample > 1 && h%t.sample != 0 {
		return
	}
	now := int64(time.Since(t.base))
	s, fresh := t.claimSlot(h|1, now)
	if s == nil {
		return
	}
	if fresh {
		// This process saw the trace first: its first stamp is the
		// trace's local time zero (what wire tags ship durations
		// against).
		s.origin.Store(now)
	}
	if s.ts[stage].CompareAndSwap(0, now) {
		t.journal.stageEvent(stage, client, seq)
	}
	if stage == t.final {
		t.fold(s, h|1, client, seq)
	}
}

// claimSlot finds or claims the in-flight slot for the trace keyed by
// key (a nonzero id hash; 0 marks a free slot). fresh reports whether
// this call claimed (or stole) the slot rather than matching an
// existing claim; nil means the mapped slot is held by a live
// different trace and the caller must drop its stamp.
func (t *Tracer) claimSlot(key uint64, now int64) (s *traceSlot, fresh bool) {
	s = &t.slots[(key>>1)&t.slotMask]
	for {
		k := s.key.Load()
		if k == key {
			return s, false
		}
		if k == 0 {
			if s.key.CompareAndSwap(0, key) {
				s.claim.Store(now)
				t.sampled.Add(1)
				return s, true
			}
			continue
		}
		// Occupied by a different trace. Steal the slot if its owner
		// plainly never folded (lost command); otherwise drop this
		// stamp — the collision counter surfaces undersized tables.
		if now-s.claim.Load() > int64(slotEvictAfter) {
			if s.key.CompareAndSwap(k, key) {
				for i := range s.ts {
					s.ts[i].Store(0)
				}
				s.claim.Store(now)
				t.evicted.Add(1)
				return s, true
			}
			continue
		}
		t.collisions.Add(1)
		return nil, false
	}
}

// AttachJournal routes an EvStage flight-recorder event to j for every
// first crossing of a stage by a sampled command. Call before the
// tracer is shared; safe to leave unattached (and on a nil tracer).
func (t *Tracer) AttachJournal(j *Journal) {
	if t == nil {
		return
	}
	t.journal = j
}

// fold completes a trace: snapshot the stamps, free the slot for
// reuse, and record the per-stage deltas. Runs at the sampling rate,
// so the mutex is uncontended in any sane configuration.
func (t *Tracer) fold(s *traceSlot, key uint64, client, seq uint64) {
	rec := Record{Client: client, Seq: seq}
	for i := range rec.TS {
		rec.TS[i] = s.ts[i].Load()
	}
	for i := range s.ts {
		s.ts[i].Store(0)
	}
	s.key.CompareAndSwap(key, 0)

	t.mu.Lock()
	prev := int64(0)
	for i := 0; i < NumStages; i++ {
		ts := rec.TS[i]
		if ts == 0 {
			continue
		}
		if prev != 0 && ts >= prev {
			t.stageHist[i].Record(time.Duration(ts - prev))
		}
		prev = ts
	}
	// End-to-end only when the trace saw the client submit; fragment
	// traces (a peer replica re-claiming a folded slot) still feed the
	// per-stage deltas above but would fake a tiny total.
	if first, last := rec.TS[StageSubmit], rec.TS[t.final]; first != 0 && last >= first {
		t.totalHist.Record(time.Duration(last - first))
	}
	t.ring[t.ringN%traceRingSize] = rec
	t.ringN++
	t.mu.Unlock()
	t.folded.Add(1)
}

// StageHistogram returns the latency histogram of one stage boundary
// (time since the previous crossed boundary). Nil on a nil tracer.
func (t *Tracer) StageHistogram(s Stage) *bench.Histogram {
	if t == nil || int(s) >= NumStages {
		return nil
	}
	return t.stageHist[s]
}

// TotalHistogram returns the end-to-end (submit→final) histogram.
func (t *Tracer) TotalHistogram() *bench.Histogram {
	if t == nil {
		return nil
	}
	return t.totalHist
}

// SampleRate returns the configured sampling divisor (1 = every
// command; 0 on a nil tracer).
func (t *Tracer) SampleRate() uint64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Counts reports how many traces were claimed, folded, dropped on
// slot collision and reclaimed from abandoned slots.
func (t *Tracer) Counts() (sampled, folded, collisions, evicted uint64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.sampled.Load(), t.folded.Load(), t.collisions.Load(), t.evicted.Load()
}

// Recent returns the most recently folded traces, newest last.
func (t *Tracer) Recent() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.ringN
	count := uint64(traceRingSize)
	if n < count {
		count = n
	}
	out := make([]Record, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.ring[i%traceRingSize])
	}
	return out
}

// Register adds the tracer's histograms and bookkeeping counters to a
// registry under the trace_* namespace.
func (t *Tracer) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	for _, s := range Stages() {
		r.Histogram("trace_stage_seconds", `stage="`+s.String()+`"`, t.stageHist[s])
	}
	r.Histogram("trace_total_seconds", "", t.totalHist)
	r.FuncCounter("trace_sampled_total", "", func() uint64 { return t.sampled.Load() })
	r.FuncCounter("trace_folded_total", "", func() uint64 { return t.folded.Load() })
	r.FuncCounter("trace_collisions_total", "", func() uint64 { return t.collisions.Load() })
	r.FuncCounter("trace_evicted_total", "", func() uint64 { return t.evicted.Load() })
	r.FuncGauge("trace_sample_rate", "", func() float64 { return float64(t.sample) })
}
