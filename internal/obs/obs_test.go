package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/command"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", `tier="proxy"`)
	c.Add(3)
	c.Inc()
	g := r.Gauge("depth", "")
	g.Set(-7)
	r.FuncCounter("live_total", "", func() uint64 { return 42 })
	r.FuncGauge("live_gauge", "", func() float64 { return 1.5 })

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot size = %d, want 4", len(snap))
	}
	// Sorted by name: depth, live_gauge, live_total, requests_total.
	for i, want := range []string{"depth", "live_gauge", "live_total", "requests_total"} {
		if snap[i].Name != want {
			t.Fatalf("snap[%d].Name = %q, want %q", i, snap[i].Name, want)
		}
	}
	flat := r.Flatten()
	if flat[`requests_total{tier="proxy"}`] != 4 {
		t.Fatalf("counter = %v, want 4", flat[`requests_total{tier="proxy"}`])
	}
	if flat["depth"] != -7 || flat["live_total"] != 42 || flat["live_gauge"] != 1.5 {
		t.Fatalf("flatten = %v", flat)
	}
}

func TestRegistryHistogramSummary(t *testing.T) {
	r := NewRegistry()
	var h bench.Histogram
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)
	r.Histogram("lat_seconds", `stage="exec"`, &h)

	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindHistogram {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Count != 2 || snap[0].MeanUs != 2000 {
		t.Fatalf("count=%d mean=%v, want 2/2000", snap[0].Count, snap[0].MeanUs)
	}
	flat := r.Flatten()
	if flat[`lat_seconds{stage="exec"}_count`] != 2 {
		t.Fatalf("flatten = %v", flat)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc() // registration dropped, counter still usable
	r.FuncCounter("y", "", func() uint64 { return 1 })
	if r.Snapshot() != nil || r.Flatten() != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
	var nilC *Counter
	nilC.Add(1)
	var nilG *Gauge
	nilG.Set(1)
	if nilC.Load() != 0 || nilG.Load() != 0 {
		t.Fatal("nil instruments not zero")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", `proxy="0"`).Add(5)
	var h bench.Histogram
	h.Record(2 * time.Millisecond)
	r.Histogram("lat_seconds", "", &h)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{proxy="0"} 5`,
		"# TYPE lat_seconds summary",
		`lat_seconds{quantile="0.5"}`,
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// stampAll walks one request through the plain-execution pipeline.
func stampAll(tr *Tracer, client, seq uint64) {
	for _, st := range []Stage{StageSubmit, StageLeaderAdmit, StageDecided,
		StageLearnerDeliver, StageEngineAdmit, StageExecStart, StageExecEnd} {
		tr.StampID(st, client, seq)
	}
}

func TestTracerFoldsEveryCommand(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	const n = 100
	for i := uint64(0); i < n; i++ {
		stampAll(tr, 1, i)
	}
	sampled, folded, collisions, _ := tr.Counts()
	if sampled != n || folded != n {
		t.Fatalf("sampled=%d folded=%d, want %d/%d", sampled, folded, n, n)
	}
	if collisions != 0 {
		t.Fatalf("collisions = %d", collisions)
	}
	if got := tr.TotalHistogram().Count(); got != n {
		t.Fatalf("total count = %d, want %d", got, n)
	}
	// Every stage after submit records one delta per trace.
	for _, st := range []Stage{StageLeaderAdmit, StageDecided, StageExecEnd} {
		if got := tr.StageHistogram(st).Count(); got != n {
			t.Fatalf("stage %v count = %d, want %d", st, got, n)
		}
	}
	// Skipped stages stay empty.
	if got := tr.StageHistogram(StageProxySeal).Count(); got != 0 {
		t.Fatalf("proxy_seal count = %d, want 0", got)
	}
	if recent := tr.Recent(); len(recent) != n {
		t.Fatalf("recent = %d records, want %d", len(recent), n)
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 64, Final: StageExecEnd})
	const n = 64 * 256
	for i := uint64(0); i < n; i++ {
		stampAll(tr, 7, i)
	}
	sampled, folded, _, _ := tr.Counts()
	if sampled == 0 {
		t.Fatal("nothing sampled")
	}
	// Hash-based selection: expect ~n/64 with generous slack.
	if sampled < n/64/4 || sampled > n/64*4 {
		t.Fatalf("sampled = %d, want ≈ %d", sampled, n/64)
	}
	if folded != sampled {
		t.Fatalf("folded=%d != sampled=%d", folded, sampled)
	}
	// Determinism: a second identical pass selects the same commands.
	for i := uint64(0); i < n; i++ {
		stampAll(tr, 7, i)
	}
	sampled2, _, _, _ := tr.Counts()
	if sampled2 != 2*sampled {
		t.Fatalf("second pass sampled %d, want %d", sampled2-sampled, sampled)
	}
}

func TestTracerCollisionDrops(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd, Slots: 1})
	// Claim the only slot but never reach the final stage...
	tr.StampID(StageSubmit, 1, 1)
	// ...then stamp different commands: they must drop, not corrupt.
	for i := uint64(2); i < 10; i++ {
		tr.StampID(StageSubmit, 1, i)
	}
	_, _, collisions, _ := tr.Counts()
	if collisions == 0 {
		t.Fatal("expected slot collisions")
	}
	// The parked trace still folds once its final stage lands.
	tr.StampID(StageExecEnd, 1, 1)
	if _, folded, _, _ := tr.Counts(); folded != 1 {
		t.Fatalf("folded = %d, want 1", folded)
	}
}

func TestTracerStampPeeksEncodedRequest(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	buf := command.AppendRequest(nil, &command.Request{
		Client: 9, Seq: 4, Cmd: 1, Input: []byte("abc"), Reply: "cl/9",
	})
	tr.Stamp(StageSubmit, buf)
	tr.Stamp(StageExecEnd, buf)
	if _, folded, _, _ := tr.Counts(); folded != 1 {
		t.Fatalf("folded = %d, want 1", folded)
	}
	tr.Stamp(StageSubmit, []byte("short")) // non-request: ignored
}

func TestTracerConcurrentStamping(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				stampAll(tr, uint64(w+1), i)
			}
		}(w)
	}
	wg.Wait()
	_, folded, _, _ := tr.Counts()
	if folded != 8*500 {
		t.Fatalf("folded = %d, want %d", folded, 8*500)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.StampID(StageSubmit, 1, 1)
	tr.Stamp(StageSubmit, nil)
	if tr.StageHistogram(StageSubmit) != nil || tr.TotalHistogram() != nil {
		t.Fatal("nil tracer histograms not nil")
	}
	if tr.SampleRate() != 0 || tr.Recent() != nil || tr.StageBreakdown() != "" {
		t.Fatal("nil tracer accessors not empty")
	}
	s, f, c, e := tr.Counts()
	if s|f|c|e != 0 {
		t.Fatal("nil tracer counts not zero")
	}
	tr.Register(NewRegistry()) // no-op
}

func TestStageBreakdownAndRegister(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, Final: StageExecEnd})
	if tr.StageBreakdown() != "" {
		t.Fatal("breakdown not empty before any fold")
	}
	stampAll(tr, 3, 1)
	table := tr.StageBreakdown()
	for _, want := range []string{"leader_admit", "exec_end", "total"} {
		if !strings.Contains(table, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, table)
		}
	}
	r := NewRegistry()
	tr.Register(r)
	flat := r.Flatten()
	if flat["trace_folded_total"] != 1 || flat["trace_sample_rate"] != 1 {
		t.Fatalf("registered trace metrics = %v", flat)
	}
	if flat[`trace_stage_seconds{stage="decided"}_count`] != 1 {
		t.Fatalf("stage histogram not registered: %v", flat)
	}
}

func TestStageStringAndKinds(t *testing.T) {
	if StageSubmit.String() != "submit" || StageRollback.String() != "rollback" {
		t.Fatal("stage names")
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage name")
	}
	if KindCounter.String() != "counter" || KindHistogram.String() != "histogram" {
		t.Fatal("kind names")
	}
}
