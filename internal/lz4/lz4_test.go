package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	compressed := CompressBlock(nil, src)
	got, err := DecompressBlock(nil, compressed, len(src)+1)
	if err != nil {
		t.Fatalf("DecompressBlock: %v (src %d bytes, compressed %d)", err, len(src), len(compressed))
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(got))
	}
}

func TestRoundTripBasic(t *testing.T) {
	tests := []struct {
		name string
		src  []byte
	}{
		{name: "empty", src: nil},
		{name: "one byte", src: []byte("x")},
		{name: "short", src: []byte("hello world")},
		{name: "repetitive", src: bytes.Repeat([]byte("abcd"), 1000)},
		{name: "single run", src: bytes.Repeat([]byte{7}, 5000)},
		{name: "text", src: []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100))},
		{name: "boundary 12", src: []byte("0123456789ab")},
		{name: "boundary 13", src: []byte("0123456789abc")},
		{name: "boundary 15 literals", src: []byte("abcdefghijklmno")},
		{name: "boundary 16 literals", src: []byte("abcdefghijklmnop")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			roundTrip(t, tt.src)
		})
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 4096)
	compressed := CompressBlock(nil, src)
	if len(compressed) >= len(src)/10 {
		t.Fatalf("repetitive data compressed to %d of %d bytes", len(compressed), len(src))
	}
}

func TestIncompressibleWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 100000)
	rng.Read(src)
	compressed := CompressBlock(nil, src)
	if len(compressed) > CompressBound(len(src)) {
		t.Fatalf("compressed %d exceeds bound %d", len(compressed), CompressBound(len(src)))
	}
	roundTrip(t, src)
}

func TestRoundTripRandomStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := [][]byte{
		[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta"),
		[]byte("/usr/share/data/"), []byte("0000000000000000"),
	}
	for trial := 0; trial < 50; trial++ {
		var src []byte
		n := rng.Intn(20000)
		for len(src) < n {
			src = append(src, words[rng.Intn(len(words))]...)
			if rng.Intn(4) == 0 {
				src = append(src, byte(rng.Intn(256)))
			}
		}
		roundTrip(t, src)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(src []byte) bool {
		compressed := CompressBlock(nil, src)
		got, err := DecompressBlock(nil, compressed, len(src)+1)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripLongMatches(t *testing.T) {
	// Match lengths crossing the 15 (token nibble) and 255 (length
	// byte) extension boundaries.
	for _, matchLen := range []int{4, 14, 15, 16, 18, 19, 20, 254, 255, 256, 270, 527, 1000} {
		src := append([]byte("0123456789abcdef"), bytes.Repeat([]byte("Z"), matchLen)...)
		src = append(src, []byte("0123456789abcdef")...)
		roundTrip(t, src)
	}
}

func TestRoundTripLongLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, litLen := range []int{14, 15, 16, 254, 255, 256, 270, 1000} {
		src := make([]byte, litLen)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestOverlappingMatch(t *testing.T) {
	// Offset 1 with long match: the classic RLE-via-overlap encoding.
	src := append([]byte("start"), bytes.Repeat([]byte{'r'}, 300)...)
	src = append(src, []byte("end..")...)
	roundTrip(t, src)
}

func TestDecompressCorruptInputs(t *testing.T) {
	valid := CompressBlock(nil, bytes.Repeat([]byte("abcd"), 100))
	// Every truncation must fail cleanly, never panic.
	for cut := 0; cut < len(valid); cut++ {
		if out, err := DecompressBlock(nil, valid[:cut], 1<<20); err == nil && len(out) == 400 {
			t.Fatalf("truncated block at %d decompressed fully", cut)
		}
	}
	// Random corruption must not panic (errors are acceptable and
	// expected; some corruptions still decode, which is fine).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		corrupt := append([]byte(nil), valid...)
		corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		_, _ = DecompressBlock(nil, corrupt, 1<<20)
	}
}

func TestDecompressSizeLimit(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 10000)
	compressed := CompressBlock(nil, src)
	if _, err := DecompressBlock(nil, compressed, 100); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecompressBadOffset(t *testing.T) {
	// token: 1 literal, match len 4; literal 'A'; offset 9 with only 1
	// byte of history.
	bad := []byte{0x10, 'A', 9, 0}
	if _, err := DecompressBlock(nil, bad, 1<<20); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// Zero offset is invalid.
	bad = []byte{0x10, 'A', 0, 0}
	if _, err := DecompressBlock(nil, bad, 1<<20); err != ErrCorrupt {
		t.Fatalf("zero offset err = %v, want ErrCorrupt", err)
	}
}

func TestPackUnpack(t *testing.T) {
	tests := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte("compress me "), 500),
		randomBytes(10000, 3),
	}
	for _, src := range tests {
		frame := Pack(src)
		got, err := Unpack(frame)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("pack round trip mismatch (%d bytes)", len(src))
		}
	}
}

func TestPackChoosesRawForIncompressible(t *testing.T) {
	src := randomBytes(5000, 7)
	frame := Pack(src)
	if frame[0] != 0 {
		t.Fatal("incompressible data not stored raw")
	}
	if len(frame) != 5+len(src) {
		t.Fatalf("raw frame size %d", len(frame))
	}
}

func TestPackChoosesCompressedForRedundant(t *testing.T) {
	src := bytes.Repeat([]byte("redundant!"), 1000)
	frame := Pack(src)
	if frame[0] != 1 {
		t.Fatal("redundant data not compressed")
	}
	if len(frame) >= len(src) {
		t.Fatalf("compressed frame size %d >= source %d", len(frame), len(src))
	}
}

func TestUnpackErrors(t *testing.T) {
	if _, err := Unpack([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, err := Unpack([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// Raw frame with wrong length.
	if _, err := Unpack([]byte{0, 5, 0, 0, 0, 'x'}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCompressionAsymmetry(t *testing.T) {
	// The paper explains NetFS read-vs-write latency by compression
	// being slower than decompression; verify the codec preserves that
	// property on a representative payload.
	src := bytes.Repeat([]byte("file content block 0123456789. "), 2048)
	compressed := CompressBlock(nil, src)

	const iters = 200
	tCompress := benchmarkNs(iters, func() {
		CompressBlock(make([]byte, 0, CompressBound(len(src))), src)
	})
	tDecompress := benchmarkNs(iters, func() {
		_, _ = DecompressBlock(make([]byte, 0, len(src)), compressed, len(src))
	})
	if tDecompress >= tCompress {
		t.Logf("warning: decompression (%d ns) not faster than compression (%d ns)", tDecompress, tCompress)
	}
}

func benchmarkNs(iters int, fn func()) int64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}
