// Package lz4 implements the LZ4 block format (compression and
// decompression) from scratch. The paper's NetFS compresses every
// request and response with lz4 (§VI-C); reproducing the codec rather
// than substituting a stdlib format keeps the cost model — fast
// decompression, slower compression — that the paper uses to explain
// the latency difference between NetFS reads and writes (§VII-H).
//
// Format reference: the LZ4 block specification. Each sequence is a
// token (literal-length nibble, match-length nibble), extended lengths
// as 255-runs, literals, a 2-byte little-endian match offset, and the
// extended match length. Matches are at least 4 bytes; the final
// sequence is literals only.
package lz4

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Compression/decompression errors.
var (
	// ErrCorrupt reports an invalid compressed block.
	ErrCorrupt = errors.New("lz4: corrupt block")
	// ErrTooLarge reports a block whose decompressed size exceeds the
	// caller's limit.
	ErrTooLarge = errors.New("lz4: decompressed size exceeds limit")
)

const (
	minMatch        = 4
	maxOffset       = 65535
	hashLog         = 16
	hashShift       = 64 - hashLog
	lastLiterals    = 5  // spec: last 5 bytes are always literals
	mfLimit         = 12 // spec: no match may start within 12 bytes of the end
	skipStrengthLog = 6  // acceleration for incompressible data
)

// CompressBound returns the maximum compressed size of an n-byte input
// (the spec's worst-case expansion).
func CompressBound(n int) int {
	return n + n/255 + 16
}

// hash4 hashes a 4-byte sequence (read as a little-endian u64 prefix)
// into the match table.
func hash4(u uint64) uint32 {
	return uint32((u * 2654435761) >> hashShift & (1<<hashLog - 1))
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// tablePool recycles the 256 KB match tables across CompressBlock
// calls: allocating (and zeroing) one per block dominated the cost of
// compressing small payloads and put every NetFS reply on the GC's
// books. Pooled tables are NOT cleared between uses — candidate
// positions are validated against the current block instead (see the
// cand checks below), so stale entries are at worst missed matches
// that the 4-byte equality test rejects.
var tablePool = sync.Pool{
	New: func() any { return new([1 << hashLog]int32) },
}

// CompressBlock compresses src into the LZ4 block format, appending to
// dst (which may be nil). Incompressible input expands by at most
// CompressBound; callers that need a raw fallback use Pack.
func CompressBlock(dst, src []byte) []byte {
	table := tablePool.Get().(*[1 << hashLog]int32) // position+1 of last occurrence
	defer tablePool.Put(table)
	n := len(src)
	if n == 0 {
		return append(dst, 0)
	}
	anchor := 0
	pos := 0
	searchTries := 1 << skipStrengthLog

	if n >= mfLimit {
		limit := n - mfLimit
		for pos <= limit {
			u := load32(src, pos)
			h := hash4(uint64(u))
			cand := int(table[h]) - 1
			table[h] = int32(pos + 1)
			// cand >= pos rejects stale pool entries pointing past the
			// current scan position (a match source must be strictly
			// earlier); together with the window and content checks this
			// makes uncleared tables safe.
			if cand < 0 || cand >= pos || pos-cand > maxOffset || load32(src, cand) != u {
				step := searchTries >> skipStrengthLog
				searchTries++
				pos += step
				continue
			}
			searchTries = 1 << skipStrengthLog
			// Extend the match backward over pending literals.
			for pos > anchor && cand > 0 && src[pos-1] == src[cand-1] {
				pos--
				cand--
			}
			// Extend forward; the match may run at most to n-lastLiterals.
			matchLen := minMatch
			maxLen := n - lastLiterals - pos
			for matchLen < maxLen && src[pos+matchLen] == src[cand+matchLen] {
				matchLen++
			}
			if matchLen < minMatch {
				// Cannot happen (u32 equality gives 4), defensive only.
				pos++
				continue
			}
			dst = emitSequence(dst, src[anchor:pos], pos-cand, matchLen)
			pos += matchLen
			anchor = pos
			if pos <= limit {
				table[hash4(uint64(load32(src, pos-2)))] = int32(pos - 1)
			}
		}
	}
	// Final literals.
	return emitLastLiterals(dst, src[anchor:])
}

// emitSequence writes one token + literals + offset + extended match
// length.
func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	mlCode := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlCode >= 15 {
		token |= 15
	} else {
		token |= byte(mlCode)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLength(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if mlCode >= 15 {
		dst = appendLength(dst, mlCode-15)
	}
	return dst
}

func emitLastLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= 15 {
		dst = append(dst, 15<<4)
		dst = appendLength(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

// appendLength writes the 255-run length extension.
func appendLength(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// DecompressBlock decompresses an LZ4 block, appending to dst. maxSize
// bounds the decompressed size (protection against decompression
// bombs); pass <= 0 for 64 MiB.
func DecompressBlock(dst, src []byte, maxSize int) ([]byte, error) {
	if maxSize <= 0 {
		maxSize = 64 << 20
	}
	base := len(dst)
	i := 0
	for {
		if i >= len(src) {
			return nil, ErrCorrupt
		}
		token := src[i]
		i++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = readLength(src, i, litLen)
			if err != nil {
				return nil, err
			}
		}
		if litLen > 0 {
			if i+litLen > len(src) {
				return nil, ErrCorrupt
			}
			if len(dst)-base+litLen > maxSize {
				return nil, ErrTooLarge
			}
			dst = append(dst, src[i:i+litLen]...)
			i += litLen
		}
		if i == len(src) {
			// Final sequence: literals only.
			return dst, nil
		}
		// Match.
		if i+2 > len(src) {
			return nil, ErrCorrupt
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(dst)-base {
			return nil, ErrCorrupt
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			matchLen, i, err = readLength(src, i, matchLen)
			if err != nil {
				return nil, err
			}
		}
		matchLen += minMatch
		if len(dst)-base+matchLen > maxSize {
			return nil, ErrTooLarge
		}
		// Overlap-safe copy (offset may be smaller than matchLen).
		start := len(dst) - offset
		for j := 0; j < matchLen; j++ {
			dst = append(dst, dst[start+j])
		}
	}
}

func readLength(src []byte, i, base int) (length, next int, err error) {
	length = base
	for {
		if i >= len(src) {
			return 0, 0, ErrCorrupt
		}
		b := src[i]
		i++
		length += int(b)
		if b != 255 {
			return length, i, nil
		}
	}
}

// Pack frames src for transmission: a 1-byte flag (0 raw, 1 lz4), the
// 4-byte little-endian original length, then the payload — compressed
// only when that actually saves space. This is the framing NetFS puts
// around every request and response.
func Pack(src []byte) []byte {
	compressed := CompressBlock(make([]byte, 0, CompressBound(len(src))), src)
	if len(compressed) < len(src) {
		out := make([]byte, 0, 5+len(compressed))
		out = append(out, 1)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
		return append(out, compressed...)
	}
	out := make([]byte, 0, 5+len(src))
	out = append(out, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	return append(out, src...)
}

// Unpack reverses Pack.
func Unpack(frame []byte) ([]byte, error) {
	if len(frame) < 5 {
		return nil, ErrCorrupt
	}
	size := int(binary.LittleEndian.Uint32(frame[1:5]))
	payload := frame[5:]
	switch frame[0] {
	case 0:
		if len(payload) != size {
			return nil, ErrCorrupt
		}
		return payload, nil
	case 1:
		out, err := DecompressBlock(make([]byte, 0, size), payload, size)
		if err != nil {
			return nil, err
		}
		if len(out) != size {
			return nil, ErrCorrupt
		}
		return out, nil
	default:
		return nil, ErrCorrupt
	}
}
