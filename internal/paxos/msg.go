// Package paxos implements the consensus substrate of the multicast
// library: one sequence of Multi-Paxos instances per multicast group
// (paper §VI-A). Each group has a coordinator (with standby candidates
// for fail-over), a set of acceptors (the experiments use 3, tolerating
// one acceptor failure), and learners that receive decisions in
// instance order.
//
// Values are opaque byte slices; the coordinator batches proposals into
// batch values of up to BatchMaxBytes (8 KB in the paper) and order is
// established on batches. Idle coordinators can emit "skip" batches so
// that downstream deterministic merges never stall on a silent group
// (the Multi-Ring Paxos mechanism).
package paxos

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/psmr/psmr/internal/transport"
)

// Ballot numbers a round of leadership. It encodes the candidate index
// in the low 16 bits so that distinct candidates never collide:
// ballot = round<<16 | candidateIdx, round >= 1. Zero means "no ballot".
type Ballot uint64

// MakeBallot builds a ballot for a candidate in a given round.
func MakeBallot(round uint64, candidateIdx int) Ballot {
	return Ballot(round<<16 | uint64(candidateIdx)&0xffff)
}

// Candidate returns the candidate index encoded in the ballot.
func (b Ballot) Candidate() int { return int(b & 0xffff) }

// Round returns the leadership round encoded in the ballot.
func (b Ballot) Round() uint64 { return uint64(b) >> 16 }

func (b Ballot) String() string {
	return fmt.Sprintf("b%d.%d", b.Round(), b.Candidate())
}

// msgType discriminates protocol messages.
type msgType uint8

const (
	msgPropose msgType = iota + 1
	msgPhase1a
	msgPhase1b
	msgPhase2a
	msgPhase2b
	msgNack
	msgDecision
	msgLearnReq
	msgHeartbeat
	// msgOptimistic carries a leader's proposal to the learners BEFORE
	// phase 2 completes (optimistic atomic broadcast à la "Optimistic
	// Parallel State-Machine Replication", Marandi & Pedone): Instance
	// is the leader's optimistic sequence number (NOT a consensus
	// instance), Ballot scopes the sequence to one leadership term.
	// The stream is best-effort — duplicated, reordered or never-decided
	// optimistic values are permitted and must never affect the decided
	// log.
	msgOptimistic
	// msgProposeBatch carries a proxy-sealed batch of client proposals
	// in one frame (the compartmentalized proxy-proposer tier): Value is
	// a batchKindNormal batch encoding whose items are the individual
	// proposal values, in the proxy's admission order. The leader
	// unpacks the items into its current consensus batch, so its
	// inbound work drops from one frame per command to one frame per
	// proxy batch while slot accounting, optimistic delivery and skip
	// suppression keep operating per command.
	msgProposeBatch
)

func (t msgType) String() string {
	switch t {
	case msgPropose:
		return "propose"
	case msgPhase1a:
		return "phase1a"
	case msgPhase1b:
		return "phase1b"
	case msgPhase2a:
		return "phase2a"
	case msgPhase2b:
		return "phase2b"
	case msgNack:
		return "nack"
	case msgDecision:
		return "decision"
	case msgLearnReq:
		return "learnreq"
	case msgHeartbeat:
		return "heartbeat"
	case msgOptimistic:
		return "optimistic"
	case msgProposeBatch:
		return "proposebatch"
	default:
		return fmt.Sprintf("msgType(%d)", uint8(t))
	}
}

// acceptedEntry is one accepted (instance, ballot, value) triple
// reported in a phase 1b message.
type acceptedEntry struct {
	Instance uint64
	Ballot   Ballot
	Value    []byte
}

// message is the single wire structure for all protocol messages; the
// type selects which fields are meaningful.
type message struct {
	Type     msgType
	Group    uint32
	Ballot   Ballot
	Instance uint64 // or fromInstance for phase1a/learnreq
	Instance2
	Acceptor uint32
	Flags    uint8
	Addr     transport.Addr // reply-to address
	Value    []byte
	Entries  []acceptedEntry // phase1b only
}

// Instance2 is a second instance field (learnreq "to", heartbeat
// "nextInstance"). Named type only to document intent in the struct.
type Instance2 = struct{ To uint64 }

// Flags.
const flagForwarded uint8 = 1 // propose already forwarded once

// errBadMessage reports a corrupt or truncated frame.
var errBadMessage = errors.New("paxos: bad message")

// NewDecisionFrame builds a Decision frame for a learner. It exists for
// tests and tools that need to inject a decided value directly into a
// learner without running a coordinator.
func NewDecisionFrame(group uint32, instance uint64, value []byte) []byte {
	return encodeMessage(&message{
		Type:     msgDecision,
		Group:    group,
		Instance: instance,
		Value:    value,
	})
}

// NewOptimisticFrame builds an Optimistic frame for a learner: the
// value a leader holding ballot proposes as its optSeq-th optimistic
// delivery. It exists for tests that exercise the optimistic stream
// (duplication, reordering, never-decided values) without a
// coordinator.
func NewOptimisticFrame(group uint32, ballot Ballot, optSeq uint64, value []byte) []byte {
	return encodeMessage(&message{
		Type:     msgOptimistic,
		Group:    group,
		Ballot:   ballot,
		Instance: optSeq,
		Value:    value,
	})
}

// ParsePropose reads the group id and proposal value out of a Propose
// frame without allocating; the value aliases the frame. It is the
// proxy tier's admission parser: a proxy classifies each client frame
// by group and re-frames the values as a ProposeBatch, so this path
// must stay allocation-free.
func ParsePropose(frame []byte) (group uint32, value []byte, ok bool) {
	if len(frame) < 36 || msgType(frame[0]) != msgPropose {
		return 0, nil, false
	}
	group = binary.LittleEndian.Uint32(frame[1:5])
	addrLen := int(binary.LittleEndian.Uint16(frame[34:36]))
	rest := frame[36:]
	if len(rest) < addrLen+4 {
		return 0, nil, false
	}
	rest = rest[addrLen:]
	valLen := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) < valLen {
		return 0, nil, false
	}
	return group, rest[:valLen:valLen], true
}

// NewProposeBatchFrame builds a ProposeBatch frame carrying items (the
// values of individual Propose frames) in admission order. The message
// Value is a batchKindNormal batch encoding, fused into the frame
// encode so a proxy seals a batch with exactly one allocation.
// Decoding via decodeMessage + DecodeBatch yields the items back.
func NewProposeBatchFrame(group uint32, items [][]byte) []byte {
	valSize := 1 + 4
	for _, it := range items {
		valSize += 4 + len(it)
	}
	buf := make([]byte, 0, 36+valSize+4)
	buf = append(buf, byte(msgProposeBatch))
	buf = binary.LittleEndian.AppendUint32(buf, group)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // ballot
	buf = binary.LittleEndian.AppendUint64(buf, 0) // instance
	buf = binary.LittleEndian.AppendUint64(buf, 0) // to
	buf = binary.LittleEndian.AppendUint32(buf, 0) // acceptor
	buf = append(buf, 0)                           // flags
	buf = binary.LittleEndian.AppendUint16(buf, 0) // addrLen
	buf = binary.LittleEndian.AppendUint32(buf, uint32(valSize))
	buf = append(buf, batchKindNormal)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(items)))
	for _, it := range items {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(it)))
		buf = append(buf, it...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, 0) // entryCount
	return buf
}

// ParseProposeBatch decodes a ProposeBatch frame back into its group
// id and batch (the inverse of NewProposeBatchFrame); item slices alias
// the frame. Used by tests and tools inspecting proxy output.
func ParseProposeBatch(frame []byte) (group uint32, batch *Batch, ok bool) {
	m, err := decodeMessage(frame)
	if err != nil || m.Type != msgProposeBatch {
		return 0, nil, false
	}
	b, err := DecodeBatch(m.Value)
	if err != nil {
		return 0, nil, false
	}
	return m.Group, b, true
}

// encodeMessage renders m as a frame.
func encodeMessage(m *message) []byte {
	size := 1 + 4 + 8 + 8 + 8 + 4 + 1 + 2 + len(m.Addr) + 4 + len(m.Value) + 4
	for _, e := range m.Entries {
		size += 8 + 8 + 4 + len(e.Value)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, m.Group)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Ballot))
	buf = binary.LittleEndian.AppendUint64(buf, m.Instance)
	buf = binary.LittleEndian.AppendUint64(buf, m.To)
	buf = binary.LittleEndian.AppendUint32(buf, m.Acceptor)
	buf = append(buf, m.Flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Addr)))
	buf = append(buf, m.Addr...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Value)))
	buf = append(buf, m.Value...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.Instance)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Ballot))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Value)))
		buf = append(buf, e.Value...)
	}
	return buf
}

// decodeMessage parses a frame. Byte slices in the result alias the
// frame.
func decodeMessage(frame []byte) (*message, error) {
	if len(frame) < 36 {
		return nil, errBadMessage
	}
	m := &message{Type: msgType(frame[0])}
	m.Group = binary.LittleEndian.Uint32(frame[1:5])
	m.Ballot = Ballot(binary.LittleEndian.Uint64(frame[5:13]))
	m.Instance = binary.LittleEndian.Uint64(frame[13:21])
	m.To = binary.LittleEndian.Uint64(frame[21:29])
	m.Acceptor = binary.LittleEndian.Uint32(frame[29:33])
	m.Flags = frame[33]
	addrLen := int(binary.LittleEndian.Uint16(frame[34:36]))
	rest := frame[36:]
	if len(rest) < addrLen+4 {
		return nil, errBadMessage
	}
	m.Addr = transport.Addr(rest[:addrLen])
	rest = rest[addrLen:]
	valLen := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) < valLen+4 {
		return nil, errBadMessage
	}
	m.Value = rest[:valLen:valLen]
	rest = rest[valLen:]
	entryCount := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if entryCount > 0 {
		m.Entries = make([]acceptedEntry, 0, entryCount)
		for i := 0; i < entryCount; i++ {
			if len(rest) < 20 {
				return nil, errBadMessage
			}
			e := acceptedEntry{
				Instance: binary.LittleEndian.Uint64(rest[:8]),
				Ballot:   Ballot(binary.LittleEndian.Uint64(rest[8:16])),
			}
			vl := int(binary.LittleEndian.Uint32(rest[16:20]))
			rest = rest[20:]
			if len(rest) < vl {
				return nil, errBadMessage
			}
			e.Value = rest[:vl:vl]
			rest = rest[vl:]
			m.Entries = append(m.Entries, e)
		}
	}
	return m, nil
}
