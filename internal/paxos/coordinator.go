package paxos

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

// CoordinatorConfig configures one coordinator candidate of one group.
type CoordinatorConfig struct {
	GroupID uint32
	// CandidateIdx is this candidate's position in Candidates. The
	// candidate at index 0 assumes leadership on startup; others take
	// over (in order) when heartbeats stop.
	CandidateIdx int
	// Candidates are the coordinator endpoints in take-over order.
	Candidates []transport.Addr
	// Acceptors are the group's acceptor endpoints.
	Acceptors []transport.Addr
	// Learners receive Decision pushes. Coordinator candidates should
	// also be listed here (the constructor adds them automatically) so
	// standbys can serve retransmission after a fail-over.
	Learners []transport.Addr
	// Relays, when non-empty, compartmentalize the decision broadcast:
	// instead of sending every decision to every learner itself, the
	// leader stripes decisions across the relays (instance mod relay
	// count) and each relay re-broadcasts to all learners. The leader's
	// per-decision send work becomes O(1) regardless of learner count.
	// Learners re-sequence the cross-stripe arrivals through their
	// out-of-order buffer, so decided order is unaffected; gap
	// retransmission still flows learner -> coordinator directly.
	Relays []transport.Addr
	// Transport carries the coordinator's traffic.
	Transport transport.Transport

	// BatchMaxBytes flushes a batch when its payload reaches this size.
	// Default 8192, the paper's 8 KB (§VI-A).
	BatchMaxBytes int
	// FlushInterval bounds how long a non-empty batch may wait before
	// being proposed. Default 200µs.
	FlushInterval time.Duration
	// SkipInterval, when positive, makes the leader pad the group's
	// sequence with skip batches so the group produces at least
	// SkipSlots merge slots per interval even when idle or slow
	// (Multi-Ring Paxos's rate matching). Deterministic merges over
	// multiple groups stall without it. Default 0 (disabled).
	SkipInterval time.Duration
	// SkipSlots is the target number of merge slots (one slot = one
	// command) per SkipInterval; it must equal the merge weight used
	// by receivers. Default 256.
	SkipSlots uint32
	// HeartbeatInterval is the leader's heartbeat period. Default 20ms.
	HeartbeatInterval time.Duration
	// TakeoverTimeout is how long a standby waits without heartbeats
	// before attempting to lead; it is scaled by the candidate's
	// distance from the believed leader to avoid duels. Default 250ms.
	TakeoverTimeout time.Duration
	// Optimistic makes the leader push every flushed batch to the
	// learners BEFORE running phase 2 on it (optimistic atomic
	// broadcast): learners gain an unordered best-effort stream that
	// usually predicts the decided order, letting replicas execute
	// speculatively while consensus is still in flight. Decisions are
	// pushed exactly as without it; the optimistic stream is purely
	// additive.
	Optimistic bool
	// Window bounds the number of in-flight (proposed, undecided)
	// instances. Default 64.
	Window int
	// RetainDecisions bounds the retransmission log. Default 16384.
	RetainDecisions int
	// CPU optionally meters the coordinator's busy time.
	CPU *bench.RoleMeter
	// Trace optionally stamps sampled commands at the leader-admit and
	// decided stage boundaries (and carries trace context across the
	// wire: inbound proposal tags are absorbed, outbound decision/
	// optimistic frames are re-tagged).
	Trace *obs.Tracer
	// Journal optionally records flush/decide events in the flight
	// recorder.
	Journal *obs.Journal
}

func (c *CoordinatorConfig) fillDefaults() {
	if c.BatchMaxBytes <= 0 {
		c.BatchMaxBytes = 8192
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.SkipSlots == 0 {
		c.SkipSlots = 256
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.TakeoverTimeout <= 0 {
		c.TakeoverTimeout = 250 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.RetainDecisions <= 0 {
		c.RetainDecisions = 16384
	}
}

type pendingInstance struct {
	value []byte
	acks  map[uint32]bool
}

// ProtoAddr derives the protocol (priority) endpoint address of a
// coordinator candidate from its public proposal address. Acceptor
// replies and heartbeats use this endpoint so that floods of client
// proposals can never delay consensus completions or fail-over
// detection.
func ProtoAddr(candidate transport.Addr) transport.Addr {
	return candidate + "!proto"
}

// Coordinator is a group's proposer/leader role: it batches client
// proposals, runs Paxos phase 2 (phase 1 on ballot changes), pushes
// decisions to learners, serves retransmission requests, and
// participates in leader fail-over.
//
// It listens on two endpoints: the public one (client proposals,
// retransmission requests, decision gossip) and a protocol one
// (acceptor replies, heartbeats) that the event loop drains with
// priority.
type Coordinator struct {
	cfg     CoordinatorConfig
	ep      transport.Endpoint
	protoEP transport.Endpoint

	// Leadership state (goroutine-confined to run()).
	leader         bool
	preparing      bool
	ballot         Ballot
	highestSeen    Ballot
	believedLeader int
	lastHeartbeat  time.Time

	// Phase 1 state.
	p1Acks    map[uint32]bool
	p1Entries map[uint64]acceptedEntry

	// Instance state.
	nextInstance uint64
	pending      map[uint64]*pendingInstance
	backlog      [][]byte // encoded batch values awaiting window space

	// Current batch being accumulated.
	curItems [][]byte
	curBytes int

	// Decision log for learner retransmission.
	decisions  map[uint64][]byte
	frontier   uint64 // all instances < frontier are in decisions (until trimmed)
	trimBelow  uint64
	sinceSweep int
	// slotsSinceTick counts merge slots produced by real batches since
	// the last skip tick; the tick pads the difference to SkipSlots.
	slotsSinceTick uint32
	// optSeq numbers this leader's optimistic deliveries within its
	// current ballot (Optimistic only).
	optSeq uint64

	flushTimer *time.Timer
	stop       chan struct{}
	done       chan struct{}

	// statusCh serves Status() queries without data races.
	statusCh chan chan Status

	// Inbound admission counters (atomics: read concurrently by
	// Counters()). A proxy tier shows up here as frames-per-command
	// falling below 1. decided counts decision pushes, the activity
	// signal the relay-staleness watchdog compares stripes against.
	inFrames   atomic.Uint64
	inCommands atomic.Uint64
	decided    atomic.Uint64
}

// CoordinatorCounters reports a coordinator's inbound admission work:
// how many proposal frames it received versus how many commands those
// frames carried. Direct client submission costs one frame per
// command; a proxy tier amortizes one frame over a whole proxy batch.
type CoordinatorCounters struct {
	InboundFrames   uint64
	InboundCommands uint64
	// Decided counts the decision pushes this coordinator performed as
	// leader (0 on a standby).
	Decided uint64
}

// FramesPerCommand is the admission cost ratio; 0 when no commands
// were admitted.
func (c CoordinatorCounters) FramesPerCommand() float64 {
	if c.InboundCommands == 0 {
		return 0
	}
	return float64(c.InboundFrames) / float64(c.InboundCommands)
}

// Counters returns the coordinator's admission counters. Safe to call
// concurrently with the event loop.
func (c *Coordinator) Counters() CoordinatorCounters {
	return CoordinatorCounters{
		InboundFrames:   c.inFrames.Load(),
		InboundCommands: c.inCommands.Load(),
		Decided:         c.decided.Load(),
	}
}

// Status is a snapshot of coordinator state, for tests and monitoring.
type Status struct {
	Leader       bool
	Ballot       Ballot
	NextInstance uint64
	Pending      int
	Backlog      int
}

// StartCoordinator launches a coordinator candidate.
func StartCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg.fillDefaults()
	if cfg.CandidateIdx < 0 || cfg.CandidateIdx >= len(cfg.Candidates) {
		return nil, fmt.Errorf("coordinator: candidate index %d outside candidates[%d]",
			cfg.CandidateIdx, len(cfg.Candidates))
	}
	ep, err := cfg.Transport.Listen(cfg.Candidates[cfg.CandidateIdx])
	if err != nil {
		return nil, fmt.Errorf("coordinator %d/%d listen: %w", cfg.GroupID, cfg.CandidateIdx, err)
	}
	protoEP, err := cfg.Transport.Listen(ProtoAddr(cfg.Candidates[cfg.CandidateIdx]))
	if err != nil {
		_ = ep.Close()
		return nil, fmt.Errorf("coordinator %d/%d listen proto: %w", cfg.GroupID, cfg.CandidateIdx, err)
	}
	c := &Coordinator{
		cfg:            cfg,
		ep:             ep,
		protoEP:        protoEP,
		pending:        make(map[uint64]*pendingInstance),
		decisions:      make(map[uint64][]byte),
		believedLeader: 0,
		lastHeartbeat:  time.Now(),
		flushTimer:     time.NewTimer(time.Hour),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		statusCh:       make(chan chan Status),
	}
	if !c.flushTimer.Stop() {
		<-c.flushTimer.C
	}
	go c.run()
	return c, nil
}

// Close stops the coordinator and waits for its goroutine.
func (c *Coordinator) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	err := c.ep.Close()
	_ = c.protoEP.Close()
	<-c.done
	return err
}

// Status returns a consistent snapshot of the coordinator's state.
func (c *Coordinator) Status() Status {
	reply := make(chan Status, 1)
	select {
	case c.statusCh <- reply:
		return <-reply
	case <-c.done:
		return Status{}
	}
}

func (c *Coordinator) run() {
	defer close(c.done)

	hbTicker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer hbTicker.Stop()

	var skipC <-chan time.Time
	if c.cfg.SkipInterval > 0 {
		skipTicker := time.NewTicker(c.cfg.SkipInterval)
		defer skipTicker.Stop()
		skipC = skipTicker.C
	}

	// Candidate 0 leads from the start; standbys wait for silence.
	if c.cfg.CandidateIdx == 0 {
		c.startPhase1()
	}

	for {
		// Protocol traffic (acceptor replies, heartbeats) is drained
		// with priority so client-proposal floods cannot delay
		// consensus completion or fail-over detection.
		select {
		case frame, ok := <-c.protoEP.Recv():
			if !ok {
				return
			}
			t0 := time.Now()
			c.handle(frame)
			c.cfg.CPU.Add(time.Since(t0))
			continue
		default:
		}
		select {
		case <-c.stop:
			return
		case reply := <-c.statusCh:
			reply <- Status{
				Leader:       c.leader,
				Ballot:       c.ballot,
				NextInstance: c.nextInstance,
				Pending:      len(c.pending),
				Backlog:      len(c.backlog),
			}
		case frame, ok := <-c.protoEP.Recv():
			if !ok {
				return
			}
			t0 := time.Now()
			c.handle(frame)
			c.cfg.CPU.Add(time.Since(t0))
		case frame, ok := <-c.ep.Recv():
			if !ok {
				return
			}
			t0 := time.Now()
			c.handle(frame)
			c.cfg.CPU.Add(time.Since(t0))
		case <-c.flushTimer.C:
			t0 := time.Now()
			c.flush()
			c.cfg.CPU.Add(time.Since(t0))
		case <-skipC:
			t0 := time.Now()
			c.skipTick()
			c.cfg.CPU.Add(time.Since(t0))
		case <-hbTicker.C:
			t0 := time.Now()
			c.heartbeatTick()
			c.cfg.CPU.Add(time.Since(t0))
		}
	}
}

func (c *Coordinator) handle(frame []byte) {
	// Fold wire-shipped trace tags into the local tracer before
	// decoding. Only proposal/decision frames carry tags; gating on
	// the type byte keeps every other message off the magic-byte scan.
	if len(frame) > 0 {
		switch msgType(frame[0]) {
		case msgPropose, msgProposeBatch, msgDecision:
			frame = c.cfg.Trace.AbsorbTags(frame)
		}
	}
	m, err := decodeMessage(frame)
	if err != nil || m.Group != c.cfg.GroupID {
		return
	}
	switch m.Type {
	case msgPropose:
		c.handlePropose(m)
	case msgProposeBatch:
		c.handleProposeBatch(m)
	case msgPhase1b:
		c.handlePhase1b(m)
	case msgPhase2b:
		c.handlePhase2b(m)
	case msgNack:
		c.handleNack(m)
	case msgDecision:
		c.storeDecision(m.Instance, m.Value)
	case msgLearnReq:
		c.handleLearnReq(m)
	case msgHeartbeat:
		c.handleHeartbeat(m)
	default:
	}
}

func (c *Coordinator) handlePropose(m *message) {
	if !c.leader && !c.preparing {
		// Forward once to the believed leader; afterwards the value is
		// dropped and client-level retransmission recovers it.
		if m.Flags&flagForwarded != 0 {
			return
		}
		target := c.cfg.Candidates[c.believedLeader%len(c.cfg.Candidates)]
		if target == c.cfg.Candidates[c.cfg.CandidateIdx] {
			return
		}
		fwd := *m
		fwd.Flags |= flagForwarded
		_ = c.cfg.Transport.Send(target, encodeMessage(&fwd))
		return
	}
	// Leaders (and candidates mid-phase-1) buffer the value.
	c.inFrames.Add(1)
	c.inCommands.Add(1)
	c.admit(m.Value)
}

// handleProposeBatch admits a proxy-sealed batch: the frame's value is
// a batch encoding whose items are individual proposal values. The
// leader unpacks it into the current consensus batch, so admission
// cost per command shrinks to decode-plus-append while flush
// thresholds, slot accounting (per command, in flush), optimistic
// delivery and skip suppression behave exactly as if the commands had
// arrived one frame each.
func (c *Coordinator) handleProposeBatch(m *message) {
	if !c.leader && !c.preparing {
		if m.Flags&flagForwarded != 0 {
			return
		}
		target := c.cfg.Candidates[c.believedLeader%len(c.cfg.Candidates)]
		if target == c.cfg.Candidates[c.cfg.CandidateIdx] {
			return
		}
		fwd := *m
		fwd.Flags |= flagForwarded
		_ = c.cfg.Transport.Send(target, encodeMessage(&fwd))
		return
	}
	b, err := DecodeBatch(m.Value)
	if err != nil || b.Skip {
		return
	}
	c.inFrames.Add(1)
	c.inCommands.Add(uint64(len(b.Items)))
	for _, item := range b.Items {
		c.admit(item)
	}
}

// admit buffers one proposal value into the current batch, flushing on
// the size threshold.
func (c *Coordinator) admit(value []byte) {
	c.cfg.Trace.Stamp(obs.StageLeaderAdmit, value)
	if len(c.curItems) == 0 {
		c.flushTimer.Reset(c.cfg.FlushInterval)
	}
	c.curItems = append(c.curItems, value)
	c.curBytes += len(value)
	if c.curBytes >= c.cfg.BatchMaxBytes {
		c.flush()
	}
}

// flush encodes the current batch and proposes it (or backlogs it when
// the window is full).
func (c *Coordinator) flush() {
	if len(c.curItems) == 0 {
		return
	}
	value := EncodeBatch(&Batch{Items: c.curItems})
	c.cfg.Journal.Emit(obs.EvLeaderFlush, uint64(len(c.curItems)), uint64(c.curBytes))
	// One merge slot per command (not per batch): slot accounting must
	// match the receivers' command-granular merge.
	c.slotsSinceTick += uint32(len(c.curItems))
	c.curItems = nil
	c.curBytes = 0
	c.flushTimer.Stop()
	c.proposeValue(value)
}

func (c *Coordinator) proposeValue(value []byte) {
	if !c.leader {
		c.backlog = append(c.backlog, value)
		return
	}
	if len(c.pending) >= c.cfg.Window {
		c.backlog = append(c.backlog, value)
		return
	}
	inst := c.nextInstance
	c.nextInstance++
	c.pending[inst] = &pendingInstance{value: value, acks: make(map[uint32]bool, len(c.cfg.Acceptors))}
	// Optimistic delivery: push the value to the learners BEFORE phase 2
	// runs on it. Emitting at instance-assignment time means the
	// optimistic sequence is exactly the leader's proposal order
	// (backlogged values included), so under a stable leader the
	// optimistic stream predicts the decided order. Skip batches carry
	// no commands and are not announced.
	if c.cfg.Optimistic && len(value) > 0 && value[0] == batchKindNormal {
		m := &message{
			Type:     msgOptimistic,
			Group:    c.cfg.GroupID,
			Ballot:   c.ballot,
			Instance: c.optSeq,
			Value:    value,
		}
		frame := encodeMessage(m)
		frame = appendBatchTags(c.cfg.Trace, frame, value)
		if n := len(c.cfg.Relays); n > 0 {
			_ = c.cfg.Transport.Send(c.cfg.Relays[c.optSeq%uint64(n)], frame)
		} else {
			for _, l := range c.cfg.Learners {
				_ = c.cfg.Transport.Send(l, frame)
			}
		}
		c.optSeq++
	}
	c.sendPhase2a(inst, value)
}

func (c *Coordinator) sendPhase2a(inst uint64, value []byte) {
	m := &message{
		Type:     msgPhase2a,
		Group:    c.cfg.GroupID,
		Ballot:   c.ballot,
		Instance: inst,
		Addr:     ProtoAddr(c.cfg.Candidates[c.cfg.CandidateIdx]),
		Value:    value,
	}
	frame := encodeMessage(m)
	for _, acc := range c.cfg.Acceptors {
		_ = c.cfg.Transport.Send(acc, frame)
	}
}

func (c *Coordinator) handlePhase2b(m *message) {
	if !c.leader || m.Ballot != c.ballot {
		return
	}
	p, ok := c.pending[m.Instance]
	if !ok {
		return
	}
	p.acks[m.Acceptor] = true
	if len(p.acks) < c.quorum() {
		return
	}
	delete(c.pending, m.Instance)
	c.decide(m.Instance, p.value)
	c.drainBacklog()
}

func (c *Coordinator) decide(inst uint64, value []byte) {
	if tr := c.cfg.Trace; tr != nil {
		WalkBatchItems(value, func(item []byte) { tr.Stamp(obs.StageDecided, item) })
	}
	c.decided.Add(1)
	c.cfg.Journal.Emit(obs.EvDecide, uint64(c.cfg.GroupID), inst)
	c.storeDecision(inst, value)
	m := &message{
		Type:     msgDecision,
		Group:    c.cfg.GroupID,
		Instance: inst,
		Value:    value,
	}
	frame := encodeMessage(m)
	frame = appendBatchTags(c.cfg.Trace, frame, value)
	// Striped fan-out: with relays configured the leader hands each
	// decision to exactly one relay, which re-broadcasts to all
	// learners. Learners tolerate the resulting cross-stripe reordering
	// (out-of-order buffer) and recover a lost stripe through gap
	// retransmission against the coordinator.
	if n := len(c.cfg.Relays); n > 0 {
		_ = c.cfg.Transport.Send(c.cfg.Relays[inst%uint64(n)], frame)
		return
	}
	for _, l := range c.cfg.Learners {
		_ = c.cfg.Transport.Send(l, frame)
	}
}

// appendBatchTags appends the trace-context tag of every sampled
// command in the batch-encoded value to frame, so decision/optimistic
// frames carry the accumulated stamps to out-of-process learners. A
// no-op with a nil tracer or when nothing in the batch is sampled.
func appendBatchTags(tr *obs.Tracer, frame, value []byte) []byte {
	if tr == nil {
		return frame
	}
	WalkBatchItems(value, func(item []byte) {
		frame = tr.AppendTagForValue(frame, item)
	})
	return frame
}

func (c *Coordinator) storeDecision(inst uint64, value []byte) {
	if inst < c.trimBelow {
		return
	}
	if _, ok := c.decisions[inst]; ok {
		return
	}
	c.decisions[inst] = value
	for {
		if _, ok := c.decisions[c.frontier]; !ok {
			break
		}
		c.frontier++
	}
	if c.nextInstance < c.frontier {
		c.nextInstance = c.frontier
	}
	// Amortised sweep of entries older than the retention window.
	c.sinceSweep++
	if c.sinceSweep >= 1024 {
		c.sinceSweep = 0
		if c.frontier > uint64(c.cfg.RetainDecisions) {
			newTrim := c.frontier - uint64(c.cfg.RetainDecisions)
			if newTrim > c.trimBelow {
				for inst := range c.decisions {
					if inst < newTrim {
						delete(c.decisions, inst)
					}
				}
				c.trimBelow = newTrim
			}
		}
	}
}

func (c *Coordinator) drainBacklog() {
	for len(c.backlog) > 0 && len(c.pending) < c.cfg.Window && c.leader {
		value := c.backlog[0]
		c.backlog[0] = nil
		c.backlog = c.backlog[1:]
		if len(c.backlog) == 0 {
			c.backlog = nil
		}
		c.proposeValue(value)
	}
}

func (c *Coordinator) handleNack(m *message) {
	if m.Ballot > c.highestSeen {
		c.highestSeen = m.Ballot
	}
	if (c.leader || c.preparing) && m.Ballot > c.ballot {
		// Deposed: another candidate holds a higher ballot.
		c.leader = false
		c.preparing = false
		c.believedLeader = m.Ballot.Candidate()
		c.lastHeartbeat = time.Now()
	}
}

func (c *Coordinator) handleHeartbeat(m *message) {
	if m.Ballot > c.highestSeen {
		c.highestSeen = m.Ballot
	}
	if m.Ballot >= c.ballot {
		c.lastHeartbeat = time.Now()
		c.believedLeader = m.Ballot.Candidate()
		if (c.leader || c.preparing) && m.Ballot > c.ballot {
			c.leader = false
			c.preparing = false
		}
	}
}

func (c *Coordinator) handleLearnReq(m *message) {
	const maxResend = 1024
	to := m.To
	if to >= m.Instance+maxResend {
		to = m.Instance + maxResend - 1
	}
	for inst := m.Instance; inst <= to; inst++ {
		value, ok := c.decisions[inst]
		if !ok {
			continue
		}
		_ = c.cfg.Transport.Send(m.Addr, encodeMessage(&message{
			Type:     msgDecision,
			Group:    c.cfg.GroupID,
			Instance: inst,
			Value:    value,
		}))
	}
}

// skipTick pads the group's slot rate: if fewer than SkipSlots merge
// slots were produced by real traffic since the last tick, a skip batch
// covers the deficit. Busy groups (or groups with queued work) produce
// slots on their own and are not padded.
func (c *Coordinator) skipTick() {
	produced := c.slotsSinceTick
	c.slotsSinceTick = 0
	if !c.leader || len(c.backlog) > 0 || len(c.pending) >= c.cfg.Window {
		return
	}
	if produced >= c.cfg.SkipSlots {
		return
	}
	// Flush any half-built batch first so its commands are not delayed
	// behind the skip.
	c.flush()
	value := EncodeBatch(&Batch{Skip: true, SkipSlots: c.cfg.SkipSlots - produced})
	c.proposeValue(value)
}

func (c *Coordinator) heartbeatTick() {
	if c.leader {
		m := &message{
			Type:     msgHeartbeat,
			Group:    c.cfg.GroupID,
			Ballot:   c.ballot,
			Instance: c.nextInstance,
		}
		frame := encodeMessage(m)
		for i, cand := range c.cfg.Candidates {
			if i == c.cfg.CandidateIdx {
				continue
			}
			_ = c.cfg.Transport.Send(ProtoAddr(cand), frame)
		}
		return
	}
	if c.preparing || len(c.cfg.Candidates) == 1 {
		return
	}
	// Standby: take over when the leader has been silent for the
	// timeout, scaled by this candidate's distance from the believed
	// leader so closer standbys move first.
	n := len(c.cfg.Candidates)
	dist := (c.cfg.CandidateIdx - c.believedLeader + n) % n
	if dist == 0 {
		dist = n
	}
	timeout := c.cfg.TakeoverTimeout * time.Duration(dist)
	if time.Since(c.lastHeartbeat) >= timeout {
		c.startPhase1()
	}
}

func (c *Coordinator) startPhase1() {
	round := c.highestSeen.Round() + 1
	if r := c.ballot.Round() + 1; r > round {
		round = r
	}
	c.ballot = MakeBallot(round, c.cfg.CandidateIdx)
	c.highestSeen = c.ballot
	c.preparing = true
	c.leader = false
	c.p1Acks = make(map[uint32]bool, len(c.cfg.Acceptors))
	c.p1Entries = make(map[uint64]acceptedEntry)
	m := &message{
		Type:     msgPhase1a,
		Group:    c.cfg.GroupID,
		Ballot:   c.ballot,
		Instance: c.frontier, // learn everything at or past our decided frontier
		Addr:     ProtoAddr(c.cfg.Candidates[c.cfg.CandidateIdx]),
	}
	frame := encodeMessage(m)
	for _, acc := range c.cfg.Acceptors {
		_ = c.cfg.Transport.Send(acc, frame)
	}
}

func (c *Coordinator) handlePhase1b(m *message) {
	if !c.preparing || m.Ballot != c.ballot {
		return
	}
	if c.p1Acks[m.Acceptor] {
		return
	}
	c.p1Acks[m.Acceptor] = true
	for _, e := range m.Entries {
		cur, ok := c.p1Entries[e.Instance]
		if !ok || e.Ballot > cur.Ballot {
			c.p1Entries[e.Instance] = e
		}
	}
	if len(c.p1Acks) < c.quorum() {
		return
	}
	// Quorum promised: become leader and complete in-flight instances.
	c.preparing = false
	c.leader = true
	c.believedLeader = c.cfg.CandidateIdx
	c.pending = make(map[uint64]*pendingInstance)

	insts := make([]uint64, 0, len(c.p1Entries))
	for inst := range c.p1Entries {
		if inst >= c.frontier {
			insts = append(insts, inst)
		}
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	c.nextInstance = c.frontier
	for _, inst := range insts {
		if inst+1 > c.nextInstance {
			c.nextInstance = inst + 1
		}
	}
	for _, inst := range insts {
		e := c.p1Entries[inst]
		c.pending[inst] = &pendingInstance{value: e.Value, acks: make(map[uint32]bool, len(c.cfg.Acceptors))}
		c.sendPhase2a(inst, e.Value)
	}
	// Fill holes left between re-proposed instances with empty batches
	// so learners do not stall forever on gaps.
	have := make(map[uint64]bool, len(insts))
	for _, inst := range insts {
		have[inst] = true
	}
	for inst := c.frontier; inst < c.nextInstance; inst++ {
		if have[inst] {
			continue
		}
		if _, decided := c.decisions[inst]; decided {
			continue
		}
		value := EncodeBatch(&Batch{Items: nil})
		c.pending[inst] = &pendingInstance{value: value, acks: make(map[uint32]bool, len(c.cfg.Acceptors))}
		c.sendPhase2a(inst, value)
	}
	c.p1Entries = nil
	c.p1Acks = nil
	c.drainBacklog()
}

func (c *Coordinator) quorum() int { return len(c.cfg.Acceptors)/2 + 1 }

// NewProposeFrame builds the frame a proposer (the multicast sender)
// sends to a coordinator candidate to order one value in a group.
func NewProposeFrame(group uint32, value []byte) []byte {
	return encodeMessage(&message{
		Type:  msgPropose,
		Group: group,
		Value: value,
	})
}
