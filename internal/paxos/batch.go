package paxos

import (
	"encoding/binary"
	"errors"
)

// Batch is the unit of consensus: a coordinator groups proposals into
// batches of up to BatchMaxBytes and order is established on batches
// (paper §VI-A). A skip batch carries no payload; it only advances the
// group's sequence so deterministic merges over multiple groups never
// stall behind an idle group (Multi-Ring Paxos).
type Batch struct {
	// Skip marks an idle-group filler batch.
	Skip bool
	// SkipSlots is the number of logical merge slots the skip covers
	// (>= 1). Only meaningful when Skip is true.
	SkipSlots uint32
	// Items are the proposed values, in proposal order. Only meaningful
	// when Skip is false.
	Items [][]byte
}

const (
	batchKindNormal byte = 0
	batchKindSkip   byte = 1
)

// errBadBatch reports a corrupt batch encoding.
var errBadBatch = errors.New("paxos: bad batch encoding")

// EncodeBatch renders a batch as a consensus value.
func EncodeBatch(b *Batch) []byte {
	if b.Skip {
		buf := make([]byte, 5)
		buf[0] = batchKindSkip
		binary.LittleEndian.PutUint32(buf[1:], b.SkipSlots)
		return buf
	}
	size := 1 + 4
	for _, item := range b.Items {
		size += 4 + len(item)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchKindNormal)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Items)))
	for _, item := range b.Items {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(item)))
		buf = append(buf, item...)
	}
	return buf
}

// WalkBatchItems calls fn for each item of an encoded normal batch
// without allocating (items alias buf). Skip batches and corrupt
// encodings walk zero items. Instrumentation paths that only need to
// peek at each item (e.g. pipeline-stage stamping on the decide path)
// use this instead of DecodeBatch, which allocates the item slice.
func WalkBatchItems(buf []byte, fn func(item []byte)) {
	if len(buf) < 5 || buf[0] != batchKindNormal {
		return
	}
	count := int(binary.LittleEndian.Uint32(buf[1:5]))
	rest := buf[5:]
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return
		}
		l := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < l {
			return
		}
		fn(rest[:l:l])
		rest = rest[l:]
	}
}

// DecodeBatch parses a consensus value into a batch. Item slices alias
// the input buffer.
func DecodeBatch(buf []byte) (*Batch, error) {
	if len(buf) < 1 {
		return nil, errBadBatch
	}
	switch buf[0] {
	case batchKindSkip:
		if len(buf) < 5 {
			return nil, errBadBatch
		}
		slots := binary.LittleEndian.Uint32(buf[1:5])
		if slots == 0 {
			slots = 1
		}
		return &Batch{Skip: true, SkipSlots: slots}, nil
	case batchKindNormal:
		if len(buf) < 5 {
			return nil, errBadBatch
		}
		count := int(binary.LittleEndian.Uint32(buf[1:5]))
		rest := buf[5:]
		items := make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			if len(rest) < 4 {
				return nil, errBadBatch
			}
			l := int(binary.LittleEndian.Uint32(rest[:4]))
			rest = rest[4:]
			if len(rest) < l {
				return nil, errBadBatch
			}
			items = append(items, rest[:l:l])
			rest = rest[l:]
		}
		return &Batch{Items: items}, nil
	default:
		return nil, errBadBatch
	}
}
