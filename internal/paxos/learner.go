package paxos

import (
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/transport"
)

// LearnerConfig configures a group learner.
type LearnerConfig struct {
	GroupID uint32
	// Addr is the endpoint decisions are pushed to.
	Addr transport.Addr
	// Transport carries the learner's traffic.
	Transport transport.Transport
	// Coordinators are the group's coordinator candidates, asked to
	// retransmit missing decisions when a gap stalls delivery.
	Coordinators []transport.Addr
	// GapTimeout is how long the frontier may stall (with later
	// decisions present) before requesting retransmission. Default
	// 50ms.
	GapTimeout time.Duration
	// TrimThreshold controls how much delivered log is retained before
	// compaction. Default 4096 batches.
	TrimThreshold int
	// CPU optionally meters the learner's busy time.
	CPU *bench.RoleMeter
}

// Learner receives a group's decisions and exposes them as an ordered
// log of batches. Multiple Cursors can read the log independently; this
// is how every worker thread of a replica consumes the shared g_all
// group without a central dispatcher.
type Learner struct {
	cfg LearnerConfig
	ep  transport.Endpoint

	mu       sync.Mutex
	cond     *sync.Cond
	log      []*Batch // decided batches [base, base+len)
	base     uint64   // instance id of log[0]
	frontier uint64   // next instance to extend the log with
	ooo      map[uint64][]byte
	cursors  []*Cursor
	closed   bool

	lastFrontier uint64
	done         chan struct{}
	stopGap      chan struct{}
}

// StartLearner launches a learner; it runs until Close.
func StartLearner(cfg LearnerConfig) (*Learner, error) {
	if cfg.GapTimeout <= 0 {
		cfg.GapTimeout = 50 * time.Millisecond
	}
	if cfg.TrimThreshold <= 0 {
		cfg.TrimThreshold = 4096
	}
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("learner %d listen: %w", cfg.GroupID, err)
	}
	l := &Learner{
		cfg:     cfg,
		ep:      ep,
		ooo:     make(map[uint64][]byte),
		done:    make(chan struct{}),
		stopGap: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	go l.gapLoop()
	return l, nil
}

// Close stops the learner, unblocks all cursors, and waits for its
// goroutines.
func (l *Learner) Close() error {
	err := l.ep.Close()
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.stopGap)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	<-l.done
	return err
}

// Frontier returns the next undecided instance (for tests).
func (l *Learner) Frontier() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frontier
}

// NewCursor returns an independent reader positioned at the oldest
// retained batch.
func (l *Learner) NewCursor() *Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := &Cursor{l: l, pos: l.base}
	l.cursors = append(l.cursors, c)
	return c
}

func (l *Learner) run() {
	defer close(l.done)
	for frame := range l.ep.Recv() {
		stop := l.cfg.CPU.Busy()
		l.handle(frame)
		stop()
	}
}

func (l *Learner) handle(frame []byte) {
	m, err := decodeMessage(frame)
	if err != nil || m.Group != l.cfg.GroupID || m.Type != msgDecision {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if m.Instance < l.frontier {
		return // duplicate
	}
	if m.Instance > l.frontier {
		if _, ok := l.ooo[m.Instance]; !ok {
			l.ooo[m.Instance] = m.Value
		}
		return
	}
	l.appendLocked(m.Value)
	for {
		v, ok := l.ooo[l.frontier]
		if !ok {
			break
		}
		delete(l.ooo, l.frontier)
		l.appendLocked(v)
	}
	l.cond.Broadcast()
}

// appendLocked decodes and appends the decision at the frontier.
func (l *Learner) appendLocked(value []byte) {
	b, err := DecodeBatch(value)
	if err != nil {
		// A corrupt decided value cannot be skipped (every learner
		// must deliver the same sequence), but it also cannot occur
		// without memory corruption: deliver an empty batch to keep
		// the stream moving and the replicas aligned.
		b = &Batch{}
	}
	l.log = append(l.log, b)
	l.frontier++
}

// gapLoop requests retransmission when the frontier stalls while later
// decisions are already present (a lost Decision frame).
func (l *Learner) gapLoop() {
	ticker := time.NewTicker(l.cfg.GapTimeout)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopGap:
			return
		case <-ticker.C:
		}
		l.mu.Lock()
		stalled := l.frontier == l.lastFrontier && len(l.ooo) > 0
		l.lastFrontier = l.frontier
		var from, to uint64
		if stalled {
			from = l.frontier
			to = from
			for inst := range l.ooo {
				if inst > to {
					to = inst
				}
			}
		}
		l.mu.Unlock()
		if !stalled {
			continue
		}
		m := &message{
			Type:     msgLearnReq,
			Group:    l.cfg.GroupID,
			Instance: from,
			Instance2: Instance2{
				To: to,
			},
			Addr: l.cfg.Addr,
		}
		frame := encodeMessage(m)
		for _, coord := range l.cfg.Coordinators {
			_ = l.cfg.Transport.Send(coord, frame)
		}
	}
}

// trimLocked drops delivered log entries once every cursor has passed
// them.
func (l *Learner) trimLocked() {
	min := l.frontier
	for _, c := range l.cursors {
		if c.pos < min {
			min = c.pos
		}
	}
	if min-l.base < uint64(l.cfg.TrimThreshold) {
		return
	}
	drop := min - l.base
	// Copy the tail so the dropped prefix becomes collectable.
	rest := make([]*Batch, len(l.log)-int(drop))
	copy(rest, l.log[drop:])
	l.log = rest
	l.base = min
}

// Cursor is an independent ordered reader over a learner's log.
type Cursor struct {
	l   *Learner
	pos uint64
}

// Next blocks until the next batch is decided and returns it along with
// its instance id. ok is false after the learner closes and the cursor
// has drained every retained batch.
func (c *Cursor) Next() (b *Batch, instance uint64, ok bool) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for c.pos >= l.frontier && !l.closed {
		l.cond.Wait()
	}
	if c.pos >= l.frontier {
		return nil, 0, false
	}
	b = l.log[c.pos-l.base]
	instance = c.pos
	c.pos++
	l.trimLocked()
	return b, instance, true
}

// TryNext is the non-blocking variant of Next; ready reports whether a
// batch was available.
func (c *Cursor) TryNext() (b *Batch, instance uint64, ready bool) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.pos >= l.frontier {
		return nil, 0, false
	}
	b = l.log[c.pos-l.base]
	instance = c.pos
	c.pos++
	l.trimLocked()
	return b, instance, true
}
