package paxos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

// LearnerConfig configures a group learner.
type LearnerConfig struct {
	GroupID uint32
	// Addr is the endpoint decisions are pushed to.
	Addr transport.Addr
	// Transport carries the learner's traffic.
	Transport transport.Transport
	// Coordinators are the group's coordinator candidates, asked to
	// retransmit missing decisions when a gap stalls delivery.
	Coordinators []transport.Addr
	// GapTimeout is how long the frontier may stall (with later
	// decisions present) before requesting retransmission. Default
	// 50ms.
	GapTimeout time.Duration
	// TrimThreshold controls how much delivered log is retained before
	// compaction. Default 4096 batches. With a retain floor set
	// (SetRetainFloor — the checkpoint subsystem's stable-checkpoint
	// position) the threshold stops DRIVING the trim and becomes a cap:
	// the log below min(slowest cursor, floor) is dropped in small
	// chunks as the floor advances, and memory is bounded by the
	// checkpoint interval instead of the fixed count.
	TrimThreshold int
	// StartInstance positions the log: the learner joins the sequence
	// at this instance, ignoring earlier decisions. A replica recovering
	// from a checkpoint resumes delivery at the checkpoint's next
	// instance and replays only the decided suffix.
	StartInstance uint64
	// Optimistic retains the coordinators' optimistic (pre-consensus)
	// stream alongside the decided log, readable through OptCursor.
	// The stream is best-effort: values are delivered in arrival order,
	// duplicates (per leader ballot and optimistic sequence) are
	// dropped, and nothing in it ever affects the decided log — a
	// reordered, duplicated or never-decided optimistic value is the
	// speculation layer's problem, not consensus's.
	Optimistic bool
	// CPU optionally meters the learner's busy time.
	CPU *bench.RoleMeter
	// Trace optionally stamps sampled commands at the learner-delivery
	// stage boundary (decided stream only; the optimistic stream is
	// pre-consensus and not a pipeline boundary), and absorbs wire-
	// shipped trace tags off inbound decision/optimistic frames.
	Trace *obs.Tracer
	// Journal optionally records gap/out-of-order events in the flight
	// recorder.
	Journal *obs.Journal
}

// Learner receives a group's decisions and exposes them as an ordered
// log of batches. Multiple Cursors can read the log independently; this
// is how every worker thread of a replica consumes the shared g_all
// group without a central dispatcher.
type Learner struct {
	cfg LearnerConfig
	ep  transport.Endpoint

	mu       sync.Mutex
	cond     *sync.Cond
	log      []*Batch // decided batches [base, base+len)
	base     uint64   // instance id of log[0]
	frontier uint64   // next instance to extend the log with
	ooo      map[uint64][]byte
	cursors  []*Cursor
	closed   bool

	// Checkpoint-gated retention (SetRetainFloor): batches at or above
	// floor are retained for peer catch-up even after every cursor has
	// passed them; batches below may go as soon as the cursors allow.
	floorSet bool
	floor    uint64

	// Optimistic stream (cfg.Optimistic only): batches in arrival
	// order, trimmed as optimistic cursors pass. optSeen drops
	// duplicate (ballot, optSeq) frames.
	optLog     []*Batch
	optBase    uint64 // arrival id of optLog[0]
	optNext    uint64 // next arrival id to append
	optSeen    map[optID]struct{}
	optCursors []*OptCursor

	lastFrontier uint64
	gapStalls    atomic.Uint64
	done         chan struct{}
	stopGap      chan struct{}
}

// optID identifies one optimistic delivery: a leader term plus the
// term's optimistic sequence number.
type optID struct {
	ballot Ballot
	seq    uint64
}

// StartLearner launches a learner; it runs until Close.
func StartLearner(cfg LearnerConfig) (*Learner, error) {
	if cfg.GapTimeout <= 0 {
		cfg.GapTimeout = 50 * time.Millisecond
	}
	if cfg.TrimThreshold <= 0 {
		cfg.TrimThreshold = 4096
	}
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("learner %d listen: %w", cfg.GroupID, err)
	}
	l := &Learner{
		cfg:      cfg,
		ep:       ep,
		base:     cfg.StartInstance,
		frontier: cfg.StartInstance,
		ooo:      make(map[uint64][]byte),
		done:     make(chan struct{}),
		stopGap:  make(chan struct{}),
	}
	l.lastFrontier = cfg.StartInstance
	if cfg.Optimistic {
		l.optSeen = make(map[optID]struct{})
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	go l.gapLoop()
	return l, nil
}

// Close stops the learner, unblocks all cursors, and waits for its
// goroutines.
func (l *Learner) Close() error {
	err := l.ep.Close()
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.stopGap)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	<-l.done
	return err
}

// Frontier returns the next undecided instance (for tests).
func (l *Learner) Frontier() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.frontier
}

// GapStalls counts the gap-loop ticks that found delivery stalled
// behind a hole (later decisions buffered, frontier unmoved). The
// cluster anomaly watcher treats a growing count as a dump trigger.
// Safe to call concurrently.
func (l *Learner) GapStalls() uint64 { return l.gapStalls.Load() }

// NewCursor returns an independent reader positioned at the oldest
// retained batch.
func (l *Learner) NewCursor() *Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := &Cursor{l: l, pos: l.base}
	l.cursors = append(l.cursors, c)
	return c
}

func (l *Learner) run() {
	defer close(l.done)
	for frame := range l.ep.Recv() {
		t0 := time.Now()
		l.handle(frame)
		l.cfg.CPU.Add(time.Since(t0))
	}
}

func (l *Learner) handle(frame []byte) {
	// Fold wire-shipped trace tags (decision/optimistic frames only)
	// into the local tracer before decoding.
	if len(frame) > 0 {
		switch msgType(frame[0]) {
		case msgDecision, msgOptimistic:
			frame = l.cfg.Trace.AbsorbTags(frame)
		}
	}
	m, err := decodeMessage(frame)
	if err != nil || m.Group != l.cfg.GroupID {
		return
	}
	if m.Type == msgOptimistic {
		l.handleOptimistic(m)
		return
	}
	if m.Type != msgDecision {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if m.Instance < l.frontier {
		return // duplicate
	}
	if m.Instance > l.frontier {
		if _, ok := l.ooo[m.Instance]; !ok {
			l.ooo[m.Instance] = m.Value
			l.cfg.Journal.Emit(obs.EvLearnerOOO, m.Instance, l.frontier)
		}
		return
	}
	l.appendLocked(m.Value)
	for {
		v, ok := l.ooo[l.frontier]
		if !ok {
			break
		}
		delete(l.ooo, l.frontier)
		l.appendLocked(v)
	}
	l.cond.Broadcast()
}

// appendLocked decodes and appends the decision at the frontier.
func (l *Learner) appendLocked(value []byte) {
	b, err := DecodeBatch(value)
	if err != nil {
		// A corrupt decided value cannot be skipped (every learner
		// must deliver the same sequence), but it also cannot occur
		// without memory corruption: deliver an empty batch to keep
		// the stream moving and the replicas aligned.
		b = &Batch{}
	}
	if tr := l.cfg.Trace; tr != nil && !b.Skip {
		for _, item := range b.Items {
			tr.Stamp(obs.StageLearnerDeliver, item)
		}
	}
	l.log = append(l.log, b)
	l.frontier++
}

// handleOptimistic appends one optimistic (pre-consensus) value to the
// optimistic stream. The decided log is never touched: a duplicated,
// reordered or never-decided optimistic value can at worst mislead the
// speculation layer, which reconciles against the decided stream
// anyway.
func (l *Learner) handleOptimistic(m *message) {
	if !l.cfg.Optimistic {
		return
	}
	b, err := DecodeBatch(m.Value)
	if err != nil || b.Skip || len(b.Items) == 0 {
		return
	}
	id := optID{ballot: m.Ballot, seq: m.Instance}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.optSeen[id]; dup {
		return
	}
	if len(l.optSeen) >= 8192 {
		// The dedup window is best-effort (duplicates only arise from
		// network-level replays, and the speculation layer dedups by
		// request id anyway): reset rather than grow without bound.
		l.optSeen = make(map[optID]struct{})
	}
	l.optSeen[id] = struct{}{}
	l.optLog = append(l.optLog, b)
	l.optNext++
	l.cond.Broadcast()
}

// trimOptLocked drops optimistic batches every optimistic cursor has
// passed.
func (l *Learner) trimOptLocked() {
	min := l.optNext
	for _, c := range l.optCursors {
		if c.pos < min {
			min = c.pos
		}
	}
	if min-l.optBase < uint64(l.cfg.TrimThreshold) {
		return
	}
	drop := min - l.optBase
	rest := make([]*Batch, len(l.optLog)-int(drop))
	copy(rest, l.optLog[drop:])
	l.optLog = rest
	l.optBase = min
}

// gapLoop requests retransmission when the frontier stalls while later
// decisions are already present (a lost Decision frame).
func (l *Learner) gapLoop() {
	ticker := time.NewTicker(l.cfg.GapTimeout)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopGap:
			return
		case <-ticker.C:
		}
		l.mu.Lock()
		stalled := l.frontier == l.lastFrontier && len(l.ooo) > 0
		l.lastFrontier = l.frontier
		var from, to uint64
		if stalled {
			from = l.frontier
			to = from
			for inst := range l.ooo {
				if inst > to {
					to = inst
				}
			}
		}
		l.mu.Unlock()
		if !stalled {
			continue
		}
		l.gapStalls.Add(1)
		l.cfg.Journal.Emit(obs.EvLearnerGap, from, to-from)
		m := &message{
			Type:     msgLearnReq,
			Group:    l.cfg.GroupID,
			Instance: from,
			Instance2: Instance2{
				To: to,
			},
			Addr: l.cfg.Addr,
		}
		frame := encodeMessage(m)
		for _, coord := range l.cfg.Coordinators {
			_ = l.cfg.Transport.Send(coord, frame)
		}
	}
}

// trimChunk amortises floor-gated trims: the prefix copy runs once per
// chunk of passed batches, not once per delivery.
const trimChunk = 64

// trimLocked drops delivered log entries below the low-water mark: the
// slowest registered cursor, further clamped to the retain floor (the
// stable checkpoint) when one is set. Without a floor the fixed
// TrimThreshold count drives compaction (the pre-checkpoint behavior);
// with one, the floor is the driver — batches at or above it are kept
// for peer catch-up regardless of cursor progress, batches below it go
// as soon as every cursor has passed, in trimChunk steps (or
// immediately once the threshold cap is hit).
func (l *Learner) trimLocked() {
	low := l.frontier
	for _, c := range l.cursors {
		if c.pos < low {
			low = c.pos
		}
	}
	if l.floorSet && l.floor < low {
		low = l.floor
	}
	drop := low - l.base
	if drop == 0 {
		return
	}
	if l.floorSet {
		if drop < trimChunk && l.frontier-l.base < uint64(l.cfg.TrimThreshold) {
			return
		}
	} else if drop < uint64(l.cfg.TrimThreshold) {
		return
	}
	// Copy the tail so the dropped prefix becomes collectable.
	rest := make([]*Batch, len(l.log)-int(drop))
	copy(rest, l.log[drop:])
	l.log = rest
	l.base = low
}

// SetRetainFloor enables checkpoint-gated retention and (monotonically)
// advances the floor: decided batches at or above inst stay retained
// for peer catch-up even after every cursor passed them, batches below
// become trimmable immediately. The checkpoint subsystem calls it with
// 0 at replica start (retain everything until the first checkpoint)
// and with the stable checkpoint's next instance after each snapshot.
func (l *Learner) SetRetainFloor(inst uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.floorSet = true
	if inst > l.floor {
		l.floor = inst
	}
	l.trimLocked()
}

// Base returns the oldest retained instance (tests, diagnostics).
func (l *Learner) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// RetainedLen returns the number of retained decided batches (tests,
// diagnostics — the learner-memory bound the retention policy enforces).
func (l *Learner) RetainedLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.log)
}

// RetainedValues re-encodes the retained decided batches from
// instance `from` on, for peer catch-up: start is the first returned
// instance (> from when the prefix was already trimmed — the caller
// then detects the hole and retries against a newer checkpoint).
// Only the pointer copy runs under the learner lock; the encoding of
// a possibly checkpoint-interval-sized suffix happens outside it, so
// serving a recovering peer never stalls live delivery.
func (l *Learner) RetainedValues(from uint64) (values [][]byte, start uint64) {
	l.mu.Lock()
	start = from
	if start < l.base {
		start = l.base
	}
	if start >= l.frontier {
		l.mu.Unlock()
		return nil, start
	}
	batches := make([]*Batch, l.frontier-start)
	copy(batches, l.log[start-l.base:l.frontier-l.base])
	l.mu.Unlock()
	// Decided batches are immutable once appended; encode lock-free.
	values = make([][]byte, len(batches))
	for i, b := range batches {
		values[i] = EncodeBatch(b)
	}
	return values, start
}

// Cursor is an independent ordered reader over a learner's log.
type Cursor struct {
	l   *Learner
	pos uint64
}

// Next blocks until the next batch is decided and returns it along with
// its instance id. ok is false after the learner closes and the cursor
// has drained every retained batch.
func (c *Cursor) Next() (b *Batch, instance uint64, ok bool) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for c.pos >= l.frontier && !l.closed {
		l.cond.Wait()
	}
	if c.pos >= l.frontier {
		return nil, 0, false
	}
	b = l.log[c.pos-l.base]
	instance = c.pos
	c.pos++
	l.trimLocked()
	return b, instance, true
}

// TryNext is the non-blocking variant of Next; ready reports whether a
// batch was available.
func (c *Cursor) TryNext() (b *Batch, instance uint64, ready bool) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.pos >= l.frontier {
		return nil, 0, false
	}
	b = l.log[c.pos-l.base]
	instance = c.pos
	c.pos++
	l.trimLocked()
	return b, instance, true
}

// NewOptCursor returns an independent reader over the optimistic
// stream, positioned at the oldest retained optimistic batch. Requires
// LearnerConfig.Optimistic.
func (l *Learner) NewOptCursor() *OptCursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := &OptCursor{l: l, pos: l.optBase}
	l.optCursors = append(l.optCursors, c)
	return c
}

// OptCursor is an independent reader over a learner's optimistic
// (pre-consensus) stream, in arrival order.
type OptCursor struct {
	l   *Learner
	pos uint64
}

// Next blocks until the next optimistic batch arrives; ok is false
// once the learner closes and the cursor has drained the stream.
func (c *OptCursor) Next() (b *Batch, ok bool) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for c.pos >= l.optNext && !l.closed {
		l.cond.Wait()
	}
	if c.pos >= l.optNext {
		return nil, false
	}
	b = l.optLog[c.pos-l.optBase]
	c.pos++
	l.trimOptLocked()
	return b, true
}

// TryNext is the non-blocking variant of Next.
func (c *OptCursor) TryNext() (b *Batch, ready bool) {
	l := c.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.pos >= l.optNext {
		return nil, false
	}
	b = l.optLog[c.pos-l.optBase]
	c.pos++
	l.trimOptLocked()
	return b, true
}

// NextEither blocks until the decided cursor or the optimistic cursor
// has a batch and returns one, preferring the decided stream (the
// speculation layer reconciles before it speculates further, keeping
// its speculation window short). ok is false once the learner closes
// and BOTH cursors have drained their retained batches. This is the
// single-consumer hand-off the optimistic replica's driver loop runs
// on: one goroutine owns both cursors, so admission and reconciliation
// interleave in one well-defined order.
func (l *Learner) NextEither(dc *Cursor, oc *OptCursor) (b *Batch, instance uint64, decided bool, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if dc.pos < l.frontier {
			b = l.log[dc.pos-l.base]
			instance = dc.pos
			dc.pos++
			l.trimLocked()
			return b, instance, true, true
		}
		if oc.pos < l.optNext {
			b = l.optLog[oc.pos-l.optBase]
			oc.pos++
			l.trimOptLocked()
			return b, 0, false, true
		}
		if l.closed {
			return nil, 0, false, false
		}
		l.cond.Wait()
	}
}
