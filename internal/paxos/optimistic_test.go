package paxos

// Tests for optimistic delivery: the leader pushes proposals to the
// learners before phase 2 completes, the learner retains them as a
// best-effort stream next to the decided log, and NOTHING in that
// stream — duplicates, reorderings, values that are never decided —
// may affect the decided sequence.

import (
	"fmt"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/transport"
)

// startBareLearner starts a learner with no coordinators behind it, so
// tests can inject decision and optimistic frames directly.
func startBareLearner(t *testing.T, optimistic bool) (*Learner, *transport.MemNetwork) {
	t.Helper()
	net := newTestNet(t, 1)
	l, err := StartLearner(LearnerConfig{
		GroupID:    1,
		Addr:       "lone-learner",
		Transport:  net,
		GapTimeout: time.Hour, // no coordinators to ask
		Optimistic: optimistic,
	})
	if err != nil {
		t.Fatalf("StartLearner: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, net
}

func batchValue(items ...string) []byte {
	b := &Batch{}
	for _, it := range items {
		b.Items = append(b.Items, []byte(it))
	}
	return EncodeBatch(b)
}

func collectOptItems(t *testing.T, cur *OptCursor, n int) []string {
	t.Helper()
	var items []string
	deadline := time.Now().Add(5 * time.Second)
	for len(items) < n {
		if b, ready := cur.TryNext(); ready {
			for _, it := range b.Items {
				items = append(items, string(it))
			}
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of %d optimistic items (%v)", len(items), n, items)
		}
		time.Sleep(time.Millisecond)
	}
	return items
}

// Under a stable leader the optimistic stream delivers every proposed
// value, in proposal order, without waiting for consensus — and the
// decided stream stays byte-identical to it.
func TestOptimisticStreamMatchesDecided(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{optimistic: true})

	dec := g.learners[0].NewCursor()
	opt := g.learners[0].NewOptCursor()
	const n = 50
	for i := 0; i < n; i++ {
		g.propose([]byte(fmt.Sprintf("v%03d", i)))
	}
	optItems := collectOptItems(t, opt, n)
	decItems := collectItems(t, dec, n)
	for i := range optItems {
		if optItems[i] != string(decItems[i]) {
			t.Fatalf("optimistic[%d] = %q, decided %q", i, optItems[i], decItems[i])
		}
	}
}

// Duplicate optimistic frames (same ballot and optimistic sequence)
// are dropped; distinct sequences with equal payloads are kept. The
// decided log never changes.
func TestOptimisticDuplicatesDropped(t *testing.T) {
	l, net := startBareLearner(t, true)
	cur := l.NewOptCursor()

	ballot := MakeBallot(1, 0)
	send := func(frame []byte) {
		if err := net.Send("lone-learner", frame); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	send(NewOptimisticFrame(1, ballot, 0, batchValue("a")))
	send(NewOptimisticFrame(1, ballot, 0, batchValue("a"))) // replayed frame
	send(NewOptimisticFrame(1, ballot, 1, batchValue("b")))
	send(NewOptimisticFrame(1, ballot, 2, batchValue("a"))) // same payload, new seq

	items := collectOptItems(t, cur, 3)
	if items[0] != "a" || items[1] != "b" || items[2] != "a" {
		t.Fatalf("optimistic items = %v", items)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ready := cur.TryNext(); ready {
		t.Fatal("duplicate optimistic frame delivered")
	}
	if got := l.Frontier(); got != 0 {
		t.Fatalf("optimistic frames advanced the decided frontier to %d", got)
	}
}

// Reordered and never-decided optimistic values leave the decided
// stream exactly equal to the decisions: the optimistic stream is
// delivered in arrival order, the decided one in instance order.
func TestOptimisticReorderAndNeverDecidedDoNotCorruptDecided(t *testing.T) {
	l, net := startBareLearner(t, true)
	dec := l.NewCursor()
	opt := l.NewOptCursor()

	ballot := MakeBallot(1, 0)
	send := func(frame []byte) {
		if err := net.Send("lone-learner", frame); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Optimistic arrivals out of proposal order, including one value
	// ("ghost") that will never be decided (a preempted leader's
	// proposal).
	send(NewOptimisticFrame(1, ballot, 1, batchValue("second")))
	send(NewOptimisticFrame(1, ballot, 0, batchValue("first")))
	send(NewOptimisticFrame(1, ballot, 2, batchValue("ghost")))
	// Decisions in instance order, without the ghost.
	send(NewDecisionFrame(1, 0, batchValue("first")))
	send(NewDecisionFrame(1, 1, batchValue("second")))

	optItems := collectOptItems(t, opt, 3)
	if optItems[0] != "second" || optItems[1] != "first" || optItems[2] != "ghost" {
		t.Fatalf("optimistic arrival order = %v", optItems)
	}
	decItems := collectItems(t, dec, 2)
	if string(decItems[0]) != "first" || string(decItems[1]) != "second" {
		t.Fatalf("decided order = %q", decItems)
	}
	if got := l.Frontier(); got != 2 {
		t.Fatalf("frontier = %d, want 2 (ghost decided?)", got)
	}
}

// A learner without Optimistic ignores optimistic frames entirely.
func TestOptimisticDisabledIgnoresFrames(t *testing.T) {
	l, net := startBareLearner(t, false)
	if err := net.Send("lone-learner", NewOptimisticFrame(1, MakeBallot(1, 0), 0, batchValue("x"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// A decision still lands; the optimistic frame went nowhere.
	if err := net.Send("lone-learner", NewDecisionFrame(1, 0, batchValue("y"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	dec := l.NewCursor()
	items := collectItems(t, dec, 1)
	if string(items[0]) != "y" {
		t.Fatalf("decided = %q", items[0])
	}
	l.mu.Lock()
	optNext := l.optNext
	l.mu.Unlock()
	if optNext != 0 {
		t.Fatalf("disabled learner stored %d optimistic batches", optNext)
	}
}

// NextEither prefers the decided stream and drains both before
// reporting closure.
func TestNextEitherPrefersDecided(t *testing.T) {
	l, net := startBareLearner(t, true)
	dec := l.NewCursor()
	opt := l.NewOptCursor()

	ballot := MakeBallot(1, 0)
	if err := net.Send("lone-learner", NewOptimisticFrame(1, ballot, 0, batchValue("opt"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := net.Send("lone-learner", NewDecisionFrame(1, 0, batchValue("dec"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// Wait until both streams hold their batch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		ready := l.frontier == 1 && l.optNext == 1
		l.mu.Unlock()
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("streams never filled")
		}
		time.Sleep(time.Millisecond)
	}
	b, instance, decided, ok := l.NextEither(dec, opt)
	if !ok || !decided || instance != 0 || string(b.Items[0]) != "dec" {
		t.Fatalf("first NextEither = %v @%d decided=%v ok=%v", b, instance, decided, ok)
	}
	b, _, decided, ok = l.NextEither(dec, opt)
	if !ok || decided || string(b.Items[0]) != "opt" {
		t.Fatalf("second NextEither = %v decided=%v ok=%v", b, decided, ok)
	}
	_ = l.Close()
	if _, _, _, ok := l.NextEither(dec, opt); ok {
		t.Fatal("NextEither after close and drain reported ok")
	}
}
