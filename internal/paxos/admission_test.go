package paxos

import (
	"testing"
	"time"

	"github.com/psmr/psmr/internal/transport"
)

// admissionSink swallows all coordinator sends so the benchmarks time
// only the submit path (decode + batch buffering + flush encode).
type admissionSink struct{}

func (admissionSink) Listen(addr transport.Addr) (transport.Endpoint, error) {
	return nil, transport.ErrClosed
}
func (admissionSink) Send(to transport.Addr, frame []byte) error { return nil }
func (admissionSink) Close() error                               { return nil }

// newAdmissionCoordinator builds a leader coordinator whose event loop
// is NOT running: the benchmark drives handle() directly, exactly the
// per-frame work the run() loop performs.
func newAdmissionCoordinator() *Coordinator {
	cfg := CoordinatorConfig{
		GroupID:      0,
		CandidateIdx: 0,
		Candidates:   []transport.Addr{"g0/coord0"},
		Acceptors:    []transport.Addr{"g0/acc0", "g0/acc1", "g0/acc2"},
		Learners:     []transport.Addr{"r0/g0"},
		Transport:    admissionSink{},
	}
	cfg.fillDefaults()
	cfg.Window = 1 << 30 // never backlog: keep the measured path uniform
	c := &Coordinator{
		cfg:        cfg,
		pending:    make(map[uint64]*pendingInstance),
		decisions:  make(map[uint64][]byte),
		flushTimer: time.NewTimer(time.Hour),
		leader:     true,
		ballot:     MakeBallot(1, 0),
	}
	if !c.flushTimer.Stop() {
		<-c.flushTimer.C
	}
	return c
}

// resetAdmission bounds the undecided-instance state the unacked
// benchmark coordinator accumulates; identical for both variants.
func resetAdmission(c *Coordinator, i int) {
	if i&8191 == 0 && len(c.pending) > 0 {
		c.pending = make(map[uint64]*pendingInstance)
	}
}

const admissionPayload = 64

// proxyBatchItems is the proxy seal size the proxied benchmarks and
// the CPU-ratio test assume.
const proxyBatchItems = 64

func admissionProposeFrame() []byte {
	return NewProposeFrame(0, make([]byte, admissionPayload))
}

func admissionBatchFrame() []byte {
	items := make([][]byte, proxyBatchItems)
	for i := range items {
		items[i] = make([]byte, admissionPayload)
	}
	return NewProposeBatchFrame(0, items)
}

// BenchmarkCoordinatorSubmitDirect measures the leader's per-command
// submit-path cost with direct client submission: one Propose frame
// per command. ns/op is per command.
func BenchmarkCoordinatorSubmitDirect(b *testing.B) {
	c := newAdmissionCoordinator()
	frame := admissionProposeFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.handle(frame)
		resetAdmission(c, i)
	}
}

// BenchmarkCoordinatorSubmitProxied measures the same per-command cost
// when commands arrive pre-batched by a proxy (one ProposeBatch frame
// per proxyBatchItems commands). ns/op is per command, like the direct
// variant.
func BenchmarkCoordinatorSubmitProxied(b *testing.B) {
	c := newAdmissionCoordinator()
	frame := admissionBatchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += proxyBatchItems {
		c.handle(frame)
		resetAdmission(c, i)
	}
}

// TestProxyAdmissionCPUSpeedup pins the perf claim: proxy batching
// must cut the coordinator's per-command submit-path CPU versus
// direct submission (the observed ratio is ~1.6-1.9x — one frame
// decode amortized over 64 commands; 1.3x is the regression floor).
// The variants are measured in interleaved pairs and the cleanest
// pair wins: on a shared 1-core box the background noise level shifts
// between multi-second windows (the proxied side's longer handle()
// calls absorb preemption disproportionately), so comparing a direct
// run against a proxied run from a different window flakes while a
// back-to-back pair shares its conditions.
func TestProxyAdmissionCPUSpeedup(t *testing.T) {
	if benchRaceEnabled {
		t.Skip("timing ratios are meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	measure := func(bench func(*testing.B)) float64 {
		r := testing.Benchmark(bench)
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	var bestRatio, bestD, bestP float64
	for i := 0; i < 4; i++ {
		dns := measure(BenchmarkCoordinatorSubmitDirect)
		pns := measure(BenchmarkCoordinatorSubmitProxied)
		if dns <= 0 || pns <= 0 {
			continue
		}
		if ratio := dns / pns; ratio > bestRatio {
			bestRatio, bestD, bestP = ratio, dns, pns
		}
	}
	if bestRatio == 0 {
		t.Fatal("degenerate timings in every round")
	}
	t.Logf("submit path: direct %.1f ns/cmd, proxied %.1f ns/cmd, speedup %.2fx", bestD, bestP, bestRatio)
	if bestRatio < 1.3 {
		t.Fatalf("proxied submit path speedup %.2fx, want >= 1.3x", bestRatio)
	}
}

// TestProposeBatchAdmission checks the batch-of-batches unpack at
// instance assignment: a ProposeBatch admits exactly its items, in
// order, with frame/command counters reflecting the amortization, and
// slot accounting (skip suppression's input) counting per command.
func TestProposeBatchAdmission(t *testing.T) {
	c := newAdmissionCoordinator()
	items := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	c.handle(NewProposeBatchFrame(0, items))
	if got := len(c.curItems); got != 3 {
		t.Fatalf("admitted %d items, want 3", got)
	}
	for i, want := range []string{"a", "bb", "ccc"} {
		if string(c.curItems[i]) != want {
			t.Fatalf("item %d = %q, want %q", i, c.curItems[i], want)
		}
	}
	cnt := c.Counters()
	if cnt.InboundFrames != 1 || cnt.InboundCommands != 3 {
		t.Fatalf("counters = %+v, want 1 frame / 3 commands", cnt)
	}
	c.flush()
	if c.slotsSinceTick != 3 {
		t.Fatalf("slotsSinceTick = %d after flush, want 3 (one per command)", c.slotsSinceTick)
	}
	// A direct propose costs one frame per command.
	c.handle(NewProposeFrame(0, []byte("d")))
	cnt = c.Counters()
	if cnt.InboundFrames != 2 || cnt.InboundCommands != 4 {
		t.Fatalf("counters = %+v, want 2 frames / 4 commands", cnt)
	}
	if fpc := cnt.FramesPerCommand(); fpc != 0.5 {
		t.Fatalf("frames per command = %v, want 0.5", fpc)
	}
}

// TestProposeBatchRoundTrip pins the fused single-allocation encoder
// against the generic decode path.
func TestProposeBatchRoundTrip(t *testing.T) {
	items := [][]byte{{}, []byte("x"), make([]byte, 300)}
	frame := NewProposeBatchFrame(42, items)
	m, err := decodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgProposeBatch || m.Group != 42 {
		t.Fatalf("decoded type %v group %d", m.Type, m.Group)
	}
	b, err := DecodeBatch(m.Value)
	if err != nil {
		t.Fatal(err)
	}
	if b.Skip || len(b.Items) != len(items) {
		t.Fatalf("decoded batch %+v", b)
	}
	for i := range items {
		if string(b.Items[i]) != string(items[i]) {
			t.Fatalf("item %d mismatch", i)
		}
	}
	g, pb, ok := ParseProposeBatch(frame)
	if !ok || g != 42 || len(pb.Items) != 3 {
		t.Fatalf("ParseProposeBatch = %d, %+v, %v", g, pb, ok)
	}
}

// TestParseProposeAllocFree pins the proxy admission parser: correct
// extraction and zero allocations.
func TestParseProposeAllocFree(t *testing.T) {
	frame := NewProposeFrame(7, []byte("hello"))
	g, v, ok := ParsePropose(frame)
	if !ok || g != 7 || string(v) != "hello" {
		t.Fatalf("ParsePropose = %d, %q, %v", g, v, ok)
	}
	if _, _, ok := ParsePropose([]byte{1, 2}); ok {
		t.Fatal("ParsePropose accepted a truncated frame")
	}
	if _, _, ok := ParsePropose(NewProposeBatchFrame(0, [][]byte{[]byte("x"), []byte("y")})); ok {
		t.Fatal("ParsePropose accepted a propose-batch frame")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _ = ParsePropose(frame)
	})
	if allocs != 0 {
		t.Fatalf("ParsePropose allocates %.1f/op, want 0", allocs)
	}
}
