package paxos

// Checkpoint-gated log retention: with a retain floor set the learner
// trims on the low-water mark min(slowest cursor, stable checkpoint)
// instead of the blind TrimThreshold count — batches at or above the
// floor survive for peer catch-up even after every cursor passed them,
// batches below go promptly, and memory is bounded by the checkpoint
// interval.

import (
	"fmt"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/transport"
)

// startRetentionLearner starts a bare learner with a small trim
// threshold and feeds it n decided instances.
func startRetentionLearner(t *testing.T, threshold int, start uint64) (*Learner, *transport.MemNetwork) {
	t.Helper()
	net := newTestNet(t, 1)
	l, err := StartLearner(LearnerConfig{
		GroupID:       1,
		Addr:          "retention-learner",
		Transport:     net,
		GapTimeout:    time.Hour,
		TrimThreshold: threshold,
		StartInstance: start,
	})
	if err != nil {
		t.Fatalf("StartLearner: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, net
}

func feedDecisions(t *testing.T, net *transport.MemNetwork, l *Learner, from, to uint64) {
	t.Helper()
	for inst := from; inst < to; inst++ {
		frame := NewDecisionFrame(1, inst, batchValue(fmt.Sprintf("v%05d", inst)))
		if err := net.Send(l.cfg.Addr, frame); err != nil {
			t.Fatalf("inject decision %d: %v", inst, err)
		}
	}
	waitFor(t, func() bool { return l.Frontier() >= to },
		func() string { return fmt.Sprintf("frontier %d, want %d", l.Frontier(), to) })
}

func waitFor(t *testing.T, cond func() bool, desc func() string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %s", desc())
		}
		time.Sleep(time.Millisecond)
	}
}

// drain consumes every available batch on the cursor.
func drain(c *Cursor) {
	for {
		if _, _, ready := c.TryNext(); !ready {
			return
		}
	}
}

// Without a floor the threshold count still drives trimming (the
// pre-checkpoint behavior is unchanged).
func TestRetentionWithoutFloorUsesThreshold(t *testing.T) {
	const threshold = 32
	l, net := startRetentionLearner(t, threshold, 0)
	cur := l.NewCursor()
	feedDecisions(t, net, l, 0, 3*threshold)
	drain(cur)
	if base := l.Base(); base == 0 {
		t.Fatal("threshold-driven trim never ran")
	}
	if retained := l.RetainedLen(); retained >= 3*threshold {
		t.Fatalf("retained %d batches, want < %d", retained, 3*threshold)
	}
}

// With the floor pinned at 0 the learner must retain EVERYTHING past
// the floor — even once every cursor has passed it and the count is
// far beyond the threshold — because a recovering peer needs the
// suffix above the stable checkpoint.
func TestRetentionFloorPinsLog(t *testing.T) {
	const threshold = 32
	l, net := startRetentionLearner(t, threshold, 0)
	l.SetRetainFloor(0)
	cur := l.NewCursor()
	feedDecisions(t, net, l, 0, 4*threshold)
	drain(cur)
	if base := l.Base(); base != 0 {
		t.Fatalf("base advanced to %d past a pinned floor", base)
	}
	values, start := l.RetainedValues(0)
	if start != 0 || len(values) != 4*threshold {
		t.Fatalf("RetainedValues(0) = %d values from %d, want %d from 0", len(values), start, 4*threshold)
	}
	// The retained values round-trip: a peer replays them as decided
	// frames.
	b, err := DecodeBatch(values[17])
	if err != nil || len(b.Items) != 1 || string(b.Items[0]) != "v00017" {
		t.Fatalf("retained value 17 corrupt: %v %v", err, b)
	}
}

// Advancing the floor trims below it; the count cap never outruns the
// floor; and a regressing floor call is ignored (monotonic).
func TestRetentionFloorDrivesTrim(t *testing.T) {
	const threshold = 32
	l, net := startRetentionLearner(t, threshold, 0)
	l.SetRetainFloor(0)
	cur := l.NewCursor()
	const total = 10 * threshold
	feedDecisions(t, net, l, 0, total)
	drain(cur)

	// Floor advances in checkpoint-interval steps: retained memory must
	// track frontier-floor, not total history.
	for _, floor := range []uint64{100, 200, 300} {
		l.SetRetainFloor(floor)
		if base := l.Base(); base != floor {
			t.Fatalf("after SetRetainFloor(%d): base = %d, want %d (floor drives the trim)", floor, base, floor)
		}
		if retained := l.RetainedLen(); retained != total-int(floor) {
			t.Fatalf("after SetRetainFloor(%d): retained %d, want %d", floor, retained, total-int(floor))
		}
	}
	// Monotonic: a stale lower floor cannot resurrect anything or move
	// the floor back.
	l.SetRetainFloor(100)
	if base := l.Base(); base != 300 {
		t.Fatalf("regressing floor moved base to %d", base)
	}
	// Catch-up below the floor is gone, above it intact.
	values, start := l.RetainedValues(0)
	if start != 300 || len(values) != total-300 {
		t.Fatalf("RetainedValues(0) = %d values from %d, want %d from 300", len(values), start, total-300)
	}
}

// A slow cursor holds the low-water mark below the floor: retention
// respects min(slowest cursor, floor).
func TestRetentionSlowestCursorHolds(t *testing.T) {
	const threshold = 16
	l, net := startRetentionLearner(t, threshold, 0)
	l.SetRetainFloor(0)
	slow := l.NewCursor()
	fast := l.NewCursor()
	feedDecisions(t, net, l, 0, 8*threshold)
	drain(fast)
	// Slow cursor at 10; floor far ahead: base must stop at 10.
	for i := 0; i < 10; i++ {
		slow.TryNext()
	}
	l.SetRetainFloor(100)
	if base := l.Base(); base != 10 {
		t.Fatalf("base = %d, want 10 (slowest cursor must hold retention)", base)
	}
	drain(slow)
	l.SetRetainFloor(100) // re-trigger after the cursor caught up
	if base := l.Base(); base != 100 {
		t.Fatalf("base = %d, want 100 after the slow cursor caught up", base)
	}
}

// StartInstance positions a recovering learner at the checkpoint
// boundary: earlier decisions are ignored, later ones deliver.
func TestStartInstanceSkipsPrefix(t *testing.T) {
	l, net := startRetentionLearner(t, 0, 50)
	cur := l.NewCursor()
	// The pre-checkpoint prefix must be ignored even if retransmitted.
	feedDecisions(t, net, l, 40, 60)
	b, inst, ok := cur.Next()
	if !ok || inst != 50 || len(b.Items) != 1 || string(b.Items[0]) != "v00050" {
		t.Fatalf("first delivery = %v @%d ok=%v, want v00050 @50", b, inst, ok)
	}
}
