package paxos

import (
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/transport"
)

// AcceptorConfig configures one acceptor of one group.
type AcceptorConfig struct {
	GroupID uint32
	// ID is this acceptor's index within the group (0-based).
	ID uint32
	// Addr is the endpoint the acceptor listens on.
	Addr transport.Addr
	// Transport carries the acceptor's traffic.
	Transport transport.Transport
	// CPU optionally meters the acceptor's busy time.
	CPU *bench.RoleMeter
}

// Acceptor is the durable voting role of Paxos. It maintains a single
// promised ballot covering all instances (Multi-Paxos) and a map of
// accepted (instance, ballot, value) triples. State is kept in memory;
// log truncation is out of scope (see DESIGN.md).
type Acceptor struct {
	cfg AcceptorConfig
	ep  transport.Endpoint

	mu       sync.Mutex
	promised Ballot
	accepted map[uint64]acceptedEntry

	done chan struct{}
}

// StartAcceptor launches an acceptor; it runs until Close.
func StartAcceptor(cfg AcceptorConfig) (*Acceptor, error) {
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("acceptor %d/%d listen: %w", cfg.GroupID, cfg.ID, err)
	}
	a := &Acceptor{
		cfg:      cfg,
		ep:       ep,
		accepted: make(map[uint64]acceptedEntry),
		done:     make(chan struct{}),
	}
	go a.run()
	return a, nil
}

// Close stops the acceptor and waits for its goroutine to exit.
func (a *Acceptor) Close() error {
	err := a.ep.Close()
	<-a.done
	return err
}

// Promised returns the current promised ballot (for tests).
func (a *Acceptor) Promised() Ballot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.promised
}

// AcceptedCount returns the number of accepted instances (for tests).
func (a *Acceptor) AcceptedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.accepted)
}

func (a *Acceptor) run() {
	defer close(a.done)
	for frame := range a.ep.Recv() {
		t0 := time.Now()
		a.handle(frame)
		a.cfg.CPU.Add(time.Since(t0))
	}
}

func (a *Acceptor) handle(frame []byte) {
	m, err := decodeMessage(frame)
	if err != nil || m.Group != a.cfg.GroupID {
		return
	}
	switch m.Type {
	case msgPhase1a:
		a.handlePhase1a(m)
	case msgPhase2a:
		a.handlePhase2a(m)
	default:
		// Acceptors ignore everything else.
	}
}

func (a *Acceptor) handlePhase1a(m *message) {
	a.mu.Lock()
	if m.Ballot <= a.promised {
		promised := a.promised
		a.mu.Unlock()
		a.send(m.Addr, &message{
			Type:   msgNack,
			Group:  a.cfg.GroupID,
			Ballot: promised,
		})
		return
	}
	a.promised = m.Ballot
	// Report accepted values from the requested instance onward so the
	// new coordinator can complete in-flight instances.
	var entries []acceptedEntry
	for inst, e := range a.accepted {
		if inst >= m.Instance {
			entries = append(entries, acceptedEntry{Instance: inst, Ballot: e.Ballot, Value: e.Value})
		}
	}
	a.mu.Unlock()
	a.send(m.Addr, &message{
		Type:     msgPhase1b,
		Group:    a.cfg.GroupID,
		Ballot:   m.Ballot,
		Acceptor: a.cfg.ID,
		Entries:  entries,
	})
}

func (a *Acceptor) handlePhase2a(m *message) {
	a.mu.Lock()
	if m.Ballot < a.promised {
		promised := a.promised
		a.mu.Unlock()
		a.send(m.Addr, &message{
			Type:   msgNack,
			Group:  a.cfg.GroupID,
			Ballot: promised,
		})
		return
	}
	a.promised = m.Ballot
	a.accepted[m.Instance] = acceptedEntry{Instance: m.Instance, Ballot: m.Ballot, Value: m.Value}
	a.mu.Unlock()
	a.send(m.Addr, &message{
		Type:     msgPhase2b,
		Group:    a.cfg.GroupID,
		Ballot:   m.Ballot,
		Instance: m.Instance,
		Acceptor: a.cfg.ID,
	})
}

func (a *Acceptor) send(to transport.Addr, m *message) {
	if to == "" {
		return
	}
	// Best effort: the coordinator retries through protocol timeouts.
	_ = a.cfg.Transport.Send(to, encodeMessage(m))
}
