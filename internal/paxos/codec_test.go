package paxos

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBallot(t *testing.T) {
	b := MakeBallot(7, 3)
	if b.Round() != 7 || b.Candidate() != 3 {
		t.Fatalf("ballot round/candidate = %d/%d", b.Round(), b.Candidate())
	}
	if MakeBallot(1, 0) <= 0 {
		t.Fatal("round-1 ballot should be positive")
	}
	// Higher rounds dominate regardless of candidate.
	if MakeBallot(2, 0) <= MakeBallot(1, 9) {
		t.Fatal("round ordering broken")
	}
	// Same round, different candidates are distinct and ordered.
	if MakeBallot(1, 1) <= MakeBallot(1, 0) {
		t.Fatal("candidate ordering broken")
	}
	if b.String() != "b7.3" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &message{
		Type:     msgPhase2a,
		Group:    9,
		Ballot:   MakeBallot(4, 1),
		Instance: 77,
		Instance2: Instance2{
			To: 99,
		},
		Acceptor: 2,
		Flags:    flagForwarded,
		Addr:     "node/coord0",
		Value:    []byte("batch bytes"),
	}
	got, err := decodeMessage(encodeMessage(m))
	if err != nil {
		t.Fatalf("decodeMessage: %v", err)
	}
	if got.Type != m.Type || got.Group != m.Group || got.Ballot != m.Ballot ||
		got.Instance != m.Instance || got.To != m.To || got.Acceptor != m.Acceptor ||
		got.Flags != m.Flags || got.Addr != m.Addr || !bytes.Equal(got.Value, m.Value) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMessageWithEntriesRoundTrip(t *testing.T) {
	m := &message{
		Type:   msgPhase1b,
		Group:  1,
		Ballot: MakeBallot(2, 0),
		Entries: []acceptedEntry{
			{Instance: 3, Ballot: MakeBallot(1, 0), Value: []byte("v3")},
			{Instance: 9, Ballot: MakeBallot(2, 1), Value: nil},
			{Instance: 10, Ballot: MakeBallot(1, 1), Value: []byte("")},
		},
	}
	got, err := decodeMessage(encodeMessage(m))
	if err != nil {
		t.Fatalf("decodeMessage: %v", err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i, e := range got.Entries {
		want := m.Entries[i]
		if e.Instance != want.Instance || e.Ballot != want.Ballot || !bytes.Equal(e.Value, want.Value) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, want)
		}
	}
}

func TestMessageDecodeShort(t *testing.T) {
	m := &message{Type: msgDecision, Group: 1, Instance: 5, Value: []byte("abc")}
	frame := encodeMessage(m)
	for cut := 0; cut < len(frame); cut++ {
		if _, err := decodeMessage(frame[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestMessageQuick(t *testing.T) {
	f := func(typ uint8, group uint32, ballot, inst, to uint64, acc uint32, flags uint8, addr string, value []byte) bool {
		if len(addr) > 500 {
			addr = addr[:500]
		}
		m := &message{
			Type: msgType(typ), Group: group, Ballot: Ballot(ballot),
			Instance: inst, Instance2: Instance2{To: to},
			Acceptor: acc, Flags: flags,
			Addr: transportAddr(addr), Value: value,
		}
		got, err := decodeMessage(encodeMessage(m))
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.Group == m.Group && got.Ballot == m.Ballot &&
			got.Instance == m.Instance && got.To == m.To && got.Acceptor == m.Acceptor &&
			got.Flags == m.Flags && got.Addr == m.Addr && bytes.Equal(got.Value, m.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{Items: [][]byte{[]byte("one"), nil, []byte("three")}}
	got, err := DecodeBatch(EncodeBatch(b))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if got.Skip {
		t.Fatal("normal batch decoded as skip")
	}
	if len(got.Items) != 3 {
		t.Fatalf("items = %d", len(got.Items))
	}
	for i := range b.Items {
		if !bytes.Equal(got.Items[i], b.Items[i]) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestSkipBatchRoundTrip(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(&Batch{Skip: true, SkipSlots: 64}))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !got.Skip || got.SkipSlots != 64 {
		t.Fatalf("skip round trip: %+v", got)
	}
	// Zero slots normalises to one so merges always advance.
	got, err = DecodeBatch(EncodeBatch(&Batch{Skip: true, SkipSlots: 0}))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if got.SkipSlots != 1 {
		t.Fatalf("zero slots → %d, want 1", got.SkipSlots)
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("nil decode succeeded")
	}
	if _, err := DecodeBatch([]byte{99}); err == nil {
		t.Fatal("unknown kind decode succeeded")
	}
	b := EncodeBatch(&Batch{Items: [][]byte{[]byte("payload")}})
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeBatch(b[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestBatchQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := rng.Intn(20)
		items := make([][]byte, n)
		for j := range items {
			items[j] = make([]byte, rng.Intn(100))
			rng.Read(items[j])
		}
		got, err := DecodeBatch(EncodeBatch(&Batch{Items: items}))
		if err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		if len(got.Items) != n {
			t.Fatalf("items = %d, want %d", len(got.Items), n)
		}
		for j := range items {
			if !bytes.Equal(got.Items[j], items[j]) {
				t.Fatalf("item %d mismatch", j)
			}
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	types := []msgType{msgPropose, msgPhase1a, msgPhase1b, msgPhase2a,
		msgPhase2b, msgNack, msgDecision, msgLearnReq, msgHeartbeat}
	seen := make(map[string]bool)
	for _, typ := range types {
		s := typ.String()
		if seen[s] {
			t.Fatalf("duplicate string %q", s)
		}
		seen[s] = true
	}
	if msgType(200).String() == "" {
		t.Fatal("unknown type has empty string")
	}
}
