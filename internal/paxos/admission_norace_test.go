//go:build !race

package paxos

// benchRaceEnabled skips timing-ratio assertions under the race
// detector, whose instrumentation skews the admission-path costs being
// compared.
const benchRaceEnabled = false
