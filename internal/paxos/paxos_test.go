package paxos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/transport"
)

func transportAddr(s string) transport.Addr { return transport.Addr(s) }

// newTestNet creates the in-process network and registers its shutdown
// via t.Cleanup BEFORE startGroup registers the group's. Cleanups run
// LIFO, so the group's components close first and the network last —
// sends issued by lingering goroutines after that point get an error
// (ErrClosed/ErrNoRoute) instead of racing a half-torn-down harness.
func newTestNet(t *testing.T, seed int64) *transport.MemNetwork {
	t.Helper()
	net := transport.NewMemNetwork(seed)
	t.Cleanup(func() { _ = net.Close() })
	return net
}

// testGroup wires one Paxos group on an in-process network.
type testGroup struct {
	t         *testing.T
	net       *transport.MemNetwork
	group     uint32
	acceptors []*Acceptor
	coords    []*Coordinator
	learners  []*Learner
	candAddrs []transport.Addr
	closeOnce sync.Once
}

type groupOptions struct {
	candidates int
	learners   int
	acceptors  int
	skip       time.Duration
	takeover   time.Duration
	heartbeat  time.Duration
	optimistic bool
}

func startGroup(t *testing.T, net *transport.MemNetwork, opts groupOptions) *testGroup {
	t.Helper()
	if opts.candidates == 0 {
		opts.candidates = 1
	}
	if opts.learners == 0 {
		opts.learners = 1
	}
	if opts.acceptors == 0 {
		opts.acceptors = 3
	}
	g := &testGroup{t: t, net: net, group: 1}

	accAddrs := make([]transport.Addr, opts.acceptors)
	for i := range accAddrs {
		accAddrs[i] = transport.Addr(fmt.Sprintf("acc%d", i))
	}
	candAddrs := make([]transport.Addr, opts.candidates)
	for i := range candAddrs {
		candAddrs[i] = transport.Addr(fmt.Sprintf("coord%d", i))
	}
	g.candAddrs = candAddrs
	learnerAddrs := make([]transport.Addr, opts.learners)
	for i := range learnerAddrs {
		learnerAddrs[i] = transport.Addr(fmt.Sprintf("learner%d", i))
	}
	// Standby coordinators learn decisions too (for retransmission and
	// frontier tracking after fail-over).
	pushTargets := append(append([]transport.Addr{}, learnerAddrs...), candAddrs...)

	for i := range accAddrs {
		a, err := StartAcceptor(AcceptorConfig{
			GroupID: g.group, ID: uint32(i), Addr: accAddrs[i], Transport: net,
		})
		if err != nil {
			t.Fatalf("StartAcceptor: %v", err)
		}
		g.acceptors = append(g.acceptors, a)
	}
	for i := range candAddrs {
		c, err := StartCoordinator(CoordinatorConfig{
			GroupID:           g.group,
			CandidateIdx:      i,
			Candidates:        candAddrs,
			Acceptors:         accAddrs,
			Learners:          pushTargets,
			Transport:         net,
			SkipInterval:      opts.skip,
			TakeoverTimeout:   opts.takeover,
			HeartbeatInterval: opts.heartbeat,
			Optimistic:        opts.optimistic,
		})
		if err != nil {
			t.Fatalf("StartCoordinator: %v", err)
		}
		g.coords = append(g.coords, c)
	}
	for i := range learnerAddrs {
		l, err := StartLearner(LearnerConfig{
			GroupID:      g.group,
			Addr:         learnerAddrs[i],
			Transport:    net,
			Coordinators: candAddrs,
			GapTimeout:   20 * time.Millisecond,
			Optimistic:   opts.optimistic,
		})
		if err != nil {
			t.Fatalf("StartLearner: %v", err)
		}
		g.learners = append(g.learners, l)
	}
	t.Cleanup(g.close)
	return g
}

func (g *testGroup) close() {
	g.closeOnce.Do(func() {
		for _, l := range g.learners {
			_ = l.Close()
		}
		for _, c := range g.coords {
			_ = c.Close()
		}
		for _, a := range g.acceptors {
			_ = a.Close()
		}
	})
}

func (g *testGroup) propose(value []byte) {
	g.proposeTo(0, value)
}

func (g *testGroup) proposeTo(candidate int, value []byte) {
	if err := g.tryPropose(candidate, value); err != nil {
		g.t.Fatalf("propose: %v", err)
	}
}

// tryPropose is the send path for goroutines that may outlive the test
// body (load generators): it reports the send error instead of calling
// t.Fatalf, which would panic the whole package run if it fired after
// the test completed ("Fail in goroutine after Test... has completed").
func (g *testGroup) tryPropose(candidate int, value []byte) error {
	return g.net.Send(g.candAddrs[candidate], NewProposeFrame(g.group, value))
}

// collectItems reads batches from a cursor until n items arrive. The
// collector goroutine never fails the test itself; on timeout it is
// left blocked in cur.Next and unblocks when the cleanup closes the
// learner. The mutex keeps the timeout path's progress report from
// racing the collector's appends.
func collectItems(t *testing.T, cur *Cursor, n int) [][]byte {
	t.Helper()
	var (
		mu    sync.Mutex
		items [][]byte
	)
	got := make(chan struct{})
	go func() {
		defer close(got)
		for {
			mu.Lock()
			have := len(items)
			mu.Unlock()
			if have >= n {
				return
			}
			b, _, ok := cur.Next()
			if !ok {
				return
			}
			if b.Skip {
				continue
			}
			mu.Lock()
			items = append(items, b.Items...)
			mu.Unlock()
		}
	}()
	select {
	case <-got:
		mu.Lock()
		defer mu.Unlock()
		return items
	case <-time.After(10 * time.Second):
		mu.Lock()
		have := len(items)
		mu.Unlock()
		t.Fatalf("timed out: collected %d of %d items", have, n)
		return nil
	}
}

func TestSingleValueDecided(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	g.propose([]byte("hello"))
	items := collectItems(t, cur, 1)
	if string(items[0]) != "hello" {
		t.Fatalf("decided %q", items[0])
	}
}

func TestManyValuesOrderedAndComplete(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	const n = 5000
	go func() {
		for i := 0; i < n; i++ {
			if g.tryPropose(0, []byte(fmt.Sprintf("v%05d", i))) != nil {
				return // network gone: the test is tearing down
			}
		}
	}()
	items := collectItems(t, cur, n)
	if len(items) != n {
		t.Fatalf("got %d items, want %d", len(items), n)
	}
	// Proposals from a single proposer over an ordered link must be
	// decided in proposal order.
	for i, item := range items {
		if want := fmt.Sprintf("v%05d", i); string(item) != want {
			t.Fatalf("item %d = %q, want %q", i, item, want)
		}
	}
}

func TestTwoLearnersSameSequence(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{learners: 2})

	cur0 := g.learners[0].NewCursor()
	cur1 := g.learners[1].NewCursor()
	const n = 1000
	go func() {
		for i := 0; i < n; i++ {
			if g.tryPropose(0, []byte(fmt.Sprintf("v%04d", i))) != nil {
				return // network gone: the test is tearing down
			}
		}
	}()
	items0 := collectItems(t, cur0, n)
	items1 := collectItems(t, cur1, n)
	if len(items0) != len(items1) {
		t.Fatalf("learner item counts differ: %d vs %d", len(items0), len(items1))
	}
	for i := range items0 {
		if string(items0[i]) != string(items1[i]) {
			t.Fatalf("learners diverge at %d: %q vs %q", i, items0[i], items1[i])
		}
	}
}

func TestToleratesOneAcceptorFailure(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	g.propose([]byte("before"))
	collectItems(t, cur, 1)

	// Crash one of three acceptors: quorum 2 still reachable.
	net.Drop("acc2")
	const n = 200
	for i := 0; i < n; i++ {
		g.propose([]byte(fmt.Sprintf("after%03d", i)))
	}
	items := collectItems(t, cur, n)
	if len(items) != n {
		t.Fatalf("got %d items after acceptor crash, want %d", len(items), n)
	}
}

func TestLostDecisionRecoveredByLearnReq(t *testing.T) {
	net := newTestNet(t, 3)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	// Drop decision pushes from the coordinator to the learner for a
	// while: the learner must catch up via LearnReq once traffic
	// resumes.
	net.SetFault("", "learner0", transport.Fault{DropProb: 0.7})
	const n = 500
	for i := 0; i < n; i++ {
		g.propose([]byte(fmt.Sprintf("v%04d", i)))
	}
	time.Sleep(50 * time.Millisecond)
	net.SetFault("", "learner0", transport.Fault{})
	// One more proposal creates an out-of-order decision beyond any
	// hole, triggering gap recovery.
	g.propose([]byte("tail"))
	items := collectItems(t, cur, n+1)
	if string(items[n]) != "tail" {
		t.Fatalf("last item %q, want tail", items[n])
	}
}

func TestCoordinatorFailover(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{
		candidates: 2,
		takeover:   100 * time.Millisecond,
		heartbeat:  10 * time.Millisecond,
	})

	cur := g.learners[0].NewCursor()
	g.propose([]byte("pre"))
	collectItems(t, cur, 1)

	// Kill the leader.
	_ = g.coords[0].Close()
	net.Drop(g.candAddrs[0])

	// Wait for the standby to take over.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g.coords[1].Status().Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never became leader")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Propose through the new leader.
	const n = 100
	for i := 0; i < n; i++ {
		g.proposeTo(1, []byte(fmt.Sprintf("post%03d", i)))
	}
	items := collectItems(t, cur, n)
	if len(items) != n {
		t.Fatalf("got %d items after failover, want %d", len(items), n)
	}
}

func TestProposalForwardedToLeader(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{
		candidates: 2,
		heartbeat:  10 * time.Millisecond,
	})

	// Give the standby time to learn the leader via heartbeats.
	time.Sleep(50 * time.Millisecond)
	cur := g.learners[0].NewCursor()
	// Propose to the standby: it must forward to candidate 0.
	g.proposeTo(1, []byte("forwarded"))
	items := collectItems(t, cur, 1)
	if string(items[0]) != "forwarded" {
		t.Fatalf("got %q", items[0])
	}
}

func TestSkipBatchesEmittedWhenIdle(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{skip: 5 * time.Millisecond})

	cur := g.learners[0].NewCursor()
	deadline := time.After(5 * time.Second)
	type result struct {
		b  *Batch
		ok bool
	}
	ch := make(chan result, 1)
	go func() {
		b, _, ok := cur.Next()
		ch <- result{b: b, ok: ok}
	}()
	select {
	case r := <-ch:
		if !r.ok || !r.b.Skip {
			t.Fatalf("first idle batch = %+v", r.b)
		}
		if r.b.SkipSlots == 0 {
			t.Fatal("skip slots must be >= 1")
		}
	case <-deadline:
		t.Fatal("no skip batch emitted while idle")
	}
}

func TestSkipSuppressedUnderLoad(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{skip: time.Millisecond})

	cur := g.learners[0].NewCursor()
	// Keep the group busy; count skips among the first batches.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				// Exit on send error instead of t.Fatalf: this goroutine
				// races test teardown by design.
				if g.tryPropose(0, []byte("x")) != nil {
					return
				}
			}
		}
	}()
	var batches, skips int
	deadline := time.Now().Add(3 * time.Second)
	for batches < 500 && time.Now().Before(deadline) {
		b, _, ok := cur.Next()
		if !ok {
			break
		}
		batches++
		if b.Skip {
			skips++
		}
	}
	if batches < 500 {
		t.Fatalf("only %d batches", batches)
	}
	// Padding emits at most one skip per tick, so under sustained load
	// real batches must dominate the sequence.
	if skips > batches/2 {
		t.Fatalf("%d skips among %d batches under load", skips, batches)
	}
}

func TestLearnerCursorsIndependent(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur1 := g.learners[0].NewCursor()
	cur2 := g.learners[0].NewCursor()
	const n = 100
	for i := 0; i < n; i++ {
		g.propose([]byte(fmt.Sprintf("v%03d", i)))
	}
	a := collectItems(t, cur1, n)
	b := collectItems(t, cur2, n)
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("cursors diverge at %d", i)
		}
	}
}

func TestLearnerCloseUnblocksCursor(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, _, ok := cur.Next(); !ok {
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	_ = g.learners[0].Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cursor not unblocked by learner close")
	}
}

func TestTryNext(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	if _, _, ready := cur.TryNext(); ready {
		t.Fatal("TryNext ready on empty log")
	}
	g.propose([]byte("x"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, _, ready := cur.TryNext(); ready {
			if b.Skip || len(b.Items) != 1 {
				t.Fatalf("unexpected batch %+v", b)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("TryNext never became ready")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatchingUnderBurst(t *testing.T) {
	net := newTestNet(t, 1)
	g := startGroup(t, net, groupOptions{})

	cur := g.learners[0].NewCursor()
	// A burst of small proposals should be coalesced into far fewer
	// batches than proposals.
	const n = 2000
	for i := 0; i < n; i++ {
		g.propose([]byte("abcdefgh"))
	}
	var batches, items int
	for items < n {
		b, _, ok := cur.Next()
		if !ok {
			t.Fatal("cursor closed early")
		}
		if b.Skip {
			continue
		}
		batches++
		items += len(b.Items)
	}
	if items != n {
		t.Fatalf("items = %d, want %d", items, n)
	}
	if batches >= n/2 {
		t.Fatalf("batching ineffective: %d batches for %d proposals", batches, n)
	}
}

func TestAcceptorNackOnLowerBallot(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	a, err := StartAcceptor(AcceptorConfig{GroupID: 1, ID: 0, Addr: "acc", Transport: net})
	if err != nil {
		t.Fatalf("StartAcceptor: %v", err)
	}
	defer a.Close()

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}

	// Promise a high ballot.
	high := MakeBallot(10, 0)
	_ = net.Send("acc", encodeMessage(&message{
		Type: msgPhase1a, Group: 1, Ballot: high, Addr: "probe",
	}))
	m := recvMsg(t, reply)
	if m.Type != msgPhase1b || m.Ballot != high {
		t.Fatalf("got %v %v", m.Type, m.Ballot)
	}

	// A lower phase2a must be nacked with the promised ballot.
	_ = net.Send("acc", encodeMessage(&message{
		Type: msgPhase2a, Group: 1, Ballot: MakeBallot(5, 0), Instance: 0,
		Addr: "probe", Value: []byte("v"),
	}))
	m = recvMsg(t, reply)
	if m.Type != msgNack || m.Ballot != high {
		t.Fatalf("got %v %v, want nack %v", m.Type, m.Ballot, high)
	}

	// A lower phase1a must also be nacked.
	_ = net.Send("acc", encodeMessage(&message{
		Type: msgPhase1a, Group: 1, Ballot: MakeBallot(7, 0), Addr: "probe",
	}))
	m = recvMsg(t, reply)
	if m.Type != msgNack {
		t.Fatalf("got %v, want nack", m.Type)
	}
}

func TestAcceptorReportsAcceptedOnPhase1(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	a, err := StartAcceptor(AcceptorConfig{GroupID: 1, ID: 0, Addr: "acc", Transport: net})
	if err != nil {
		t.Fatalf("StartAcceptor: %v", err)
	}
	defer a.Close()

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	b1 := MakeBallot(1, 0)
	for inst := uint64(0); inst < 3; inst++ {
		_ = net.Send("acc", encodeMessage(&message{
			Type: msgPhase2a, Group: 1, Ballot: b1, Instance: inst,
			Addr: "probe", Value: []byte(fmt.Sprintf("v%d", inst)),
		}))
		recvMsg(t, reply)
	}
	// New ballot's phase 1 must report instances >= 1.
	b2 := MakeBallot(2, 1)
	_ = net.Send("acc", encodeMessage(&message{
		Type: msgPhase1a, Group: 1, Ballot: b2, Instance: 1, Addr: "probe",
	}))
	m := recvMsg(t, reply)
	if m.Type != msgPhase1b {
		t.Fatalf("got %v", m.Type)
	}
	if len(m.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (instances 1,2)", len(m.Entries))
	}
	for _, e := range m.Entries {
		if e.Instance < 1 || e.Instance > 2 {
			t.Fatalf("unexpected instance %d", e.Instance)
		}
		if want := fmt.Sprintf("v%d", e.Instance); string(e.Value) != want {
			t.Fatalf("entry %d value %q", e.Instance, e.Value)
		}
	}
}

func recvMsg(t *testing.T, ep transport.Endpoint) *message {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		m, err := decodeMessage(frame)
		if err != nil {
			t.Fatalf("decodeMessage: %v", err)
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return nil
	}
}
