package mvstore

import (
	"fmt"
	"sync"
	"testing"
)

func newMapStore() *Store[uint64, []byte] {
	return New[uint64, []byte](MapBase[uint64, []byte]{}, nil)
}

func TestCommittedEpochAddressesBase(t *testing.T) {
	s := newMapStore()
	s.Put(Committed, 1, []byte("a"))
	if v, ok := s.Get(Committed, 1); !ok || string(v) != "a" {
		t.Fatalf("committed get = %q %v", v, ok)
	}
	if s.Uncommitted() != 0 {
		t.Fatalf("committed put created versions: %d", s.Uncommitted())
	}
	if !s.Delete(Committed, 1) {
		t.Fatal("committed delete missed")
	}
	if _, ok := s.Get(Committed, 1); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestSpeculativeReadThroughAndCommit(t *testing.T) {
	s := newMapStore()
	s.Put(Committed, 1, []byte("base"))

	const e Epoch = 7
	// Read-through: epoch sees committed state it hasn't written.
	if v, ok := s.Get(e, 1); !ok || string(v) != "base" {
		t.Fatalf("read-through = %q %v", v, ok)
	}
	s.Put(e, 1, []byte("spec"))
	s.Put(e, 2, []byte("new"))
	if v, _ := s.Get(e, 1); string(v) != "spec" {
		t.Fatalf("own write not visible: %q", v)
	}
	// Committed view unchanged until commit.
	if v, _ := s.Get(Committed, 1); string(v) != "base" {
		t.Fatalf("committed view leaked: %q", v)
	}
	if _, ok := s.Get(Committed, 2); ok {
		t.Fatal("uncommitted insert visible at committed epoch")
	}
	if s.Uncommitted() != 2 {
		t.Fatalf("uncommitted = %d, want 2", s.Uncommitted())
	}

	s.Commit(e)
	if s.Uncommitted() != 0 || s.LiveEpochs() != 0 {
		t.Fatalf("commit left versions: %d / %d", s.Uncommitted(), s.LiveEpochs())
	}
	if v, _ := s.Get(Committed, 1); string(v) != "spec" {
		t.Fatalf("commit did not promote: %q", v)
	}
	if v, ok := s.Get(Committed, 2); !ok || string(v) != "new" {
		t.Fatalf("commit did not promote insert: %q %v", v, ok)
	}
}

func TestAbortDropsOnlyOwnVersions(t *testing.T) {
	s := newMapStore()
	s.Put(Committed, 1, []byte("base"))

	s.Put(1, 1, []byte("e1"))
	s.Put(2, 1, []byte("e2")) // stacked above e1
	s.Put(2, 9, []byte("e2-only"))

	s.Abort(2)
	if v, ok := s.Get(3, 1); !ok || string(v) != "e1" {
		t.Fatalf("after abort(2) top = %q %v, want e1", v, ok)
	}
	if _, ok := s.Get(3, 9); ok {
		t.Fatal("aborted insert still visible")
	}
	s.Abort(1)
	if v, _ := s.Get(3, 1); string(v) != "base" {
		t.Fatalf("after abort(1) = %q, want base", v)
	}
	if s.Uncommitted() != 0 {
		t.Fatalf("uncommitted = %d, want 0", s.Uncommitted())
	}
}

func TestTombstoneSemantics(t *testing.T) {
	s := newMapStore()
	s.Put(Committed, 1, []byte("base"))

	if !s.Delete(5, 1) {
		t.Fatal("speculative delete of visible key reported miss")
	}
	if _, ok := s.Get(5, 1); ok {
		t.Fatal("tombstoned key visible to its epoch")
	}
	if v, ok := s.Get(Committed, 1); !ok || string(v) != "base" {
		t.Fatalf("committed key gone before commit: %q %v", v, ok)
	}
	if s.Delete(5, 1) {
		t.Fatal("double delete reported hit")
	}
	// Mutate on a tombstone misses.
	if _, ok := s.Mutate(6, 1); ok {
		t.Fatal("mutate through tombstone succeeded")
	}
	s.Commit(5)
	if _, ok := s.Get(Committed, 1); ok {
		t.Fatal("commit did not apply delete")
	}
}

func TestMutateClonesVisibleVersion(t *testing.T) {
	clone := func(v []byte) []byte { return append([]byte(nil), v...) }
	s := New[uint64, []byte](MapBase[uint64, []byte]{}, clone)
	s.Put(Committed, 1, []byte("base"))

	v, ok := s.Mutate(3, 1)
	if !ok {
		t.Fatal("mutate missed committed key")
	}
	v[0] = 'X'
	if got, _ := s.Get(Committed, 1); string(got) != "base" {
		t.Fatalf("mutate aliased committed value: %q", got)
	}
	if got, _ := s.Get(3, 1); string(got) != "Xase" {
		t.Fatalf("mutated version lost: %q", got)
	}
	// Second Mutate by the same epoch returns the SAME version, no
	// new chain entry.
	if s.Uncommitted() != 1 {
		t.Fatalf("uncommitted = %d, want 1", s.Uncommitted())
	}
	v2, _ := s.Mutate(3, 1)
	v2[1] = 'Y'
	if got, _ := s.Get(3, 1); string(got) != "XYse" {
		t.Fatalf("in-place remutation lost: %q", got)
	}
	if s.Uncommitted() != 1 {
		t.Fatalf("remutation grew chain: %d", s.Uncommitted())
	}
}

func TestSameEpochWritesCollapse(t *testing.T) {
	s := newMapStore()
	for i := 0; i < 10; i++ {
		s.Put(4, 1, []byte{byte(i)})
	}
	if s.Uncommitted() != 1 {
		t.Fatalf("same-epoch writes kept %d versions, want 1", s.Uncommitted())
	}
	s.Commit(4)
	if v, _ := s.Get(Committed, 1); v[0] != 9 {
		t.Fatalf("last write lost: %v", v)
	}
}

func TestRangeCommittedIgnoresSpeculation(t *testing.T) {
	s := newMapStore()
	s.Put(Committed, 1, []byte("a"))
	s.Put(Committed, 2, []byte("b"))
	s.Put(9, 2, []byte("spec"))
	s.Put(9, 3, []byte("ghost"))
	s.Delete(9, 1)

	seen := map[uint64]string{}
	s.RangeCommitted(func(k uint64, v []byte) bool {
		seen[k] = string(v)
		return true
	})
	want := map[uint64]string{1: "a", 2: "b"}
	if len(seen) != len(want) || seen[1] != "a" || seen[2] != "b" {
		t.Fatalf("committed range = %v, want %v", seen, want)
	}
	if s.CommittedLen() != 2 {
		t.Fatalf("committed len = %d", s.CommittedLen())
	}
}

// Out-of-order resolution must not corrupt chains: the implementation
// searches for the epoch's version rather than assuming its position.
func TestInterleavedCommitAbortSearchesChain(t *testing.T) {
	s := newMapStore()
	s.Put(Committed, 1, []byte("base"))
	s.Put(1, 1, []byte("e1"))
	s.Put(2, 1, []byte("e2"))
	s.Put(3, 1, []byte("e3"))

	s.Abort(2) // middle of the chain
	s.Commit(1)
	if v, _ := s.Get(Committed, 1); string(v) != "e1" {
		t.Fatalf("committed = %q, want e1", v)
	}
	if v, _ := s.Get(4, 1); string(v) != "e3" {
		t.Fatalf("surviving top = %q, want e3", v)
	}
	s.Commit(3)
	if v, _ := s.Get(Committed, 1); string(v) != "e3" {
		t.Fatalf("committed = %q, want e3", v)
	}
	if s.Uncommitted() != 0 || s.LiveEpochs() != 0 {
		t.Fatalf("residue: %d versions, %d epochs", s.Uncommitted(), s.LiveEpochs())
	}
}

func TestConcurrentEpochsDisjointKeys(t *testing.T) {
	s := newMapStore()
	const epochs = 16
	var wg sync.WaitGroup
	for e := 1; e <= epochs; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			ep := Epoch(e)
			for k := 0; k < 32; k++ {
				key := uint64(e*1000 + k)
				s.Put(ep, key, []byte(fmt.Sprintf("v%d", e)))
				if v, ok := s.Get(ep, key); !ok || string(v) != fmt.Sprintf("v%d", e) {
					panic("own write lost")
				}
			}
			if e%2 == 0 {
				s.Commit(ep)
			} else {
				s.Abort(ep)
			}
		}(e)
	}
	wg.Wait()
	if s.Uncommitted() != 0 {
		t.Fatalf("uncommitted residue: %d", s.Uncommitted())
	}
	if got, want := s.CommittedLen(), epochs/2*32; got != want {
		t.Fatalf("committed len = %d, want %d", got, want)
	}
}

func TestResetDropsOverlay(t *testing.T) {
	s := newMapStore()
	s.Put(7, 1, []byte("spec"))
	nb := MapBase[uint64, []byte]{42: []byte("restored")}
	s.Reset(nb)
	if s.Uncommitted() != 0 {
		t.Fatal("reset kept versions")
	}
	if v, ok := s.Get(Committed, 42); !ok || string(v) != "restored" {
		t.Fatalf("reset base lost: %q %v", v, ok)
	}
}
