// Package mvstore implements a generic multi-version state layer for
// optimistic (speculative) execution.
//
// A Store[K,V] wraps a committed base store (any structure exposing
// the Base interface: a map, a btree, ...) with per-key version
// chains. Speculative writes land as uncommitted versions tagged with
// a speculation Epoch; reads resolve through the newest uncommitted
// version, else the committed tip; Commit(epoch) promotes the epoch's
// versions into the base (a pointer flip per key); Abort(epoch) drops
// them. Both Commit and Abort walk only the keys the epoch touched —
// the store keeps a per-epoch journal — so rollback cost is
// O(touched keys), independent of the size of the committed state.
//
// # Safety argument
//
// The correctness of the (top-of-chain | committed tip) read rule and
// of per-key promotion relies on two invariants the optimistic
// executor provides:
//
//  1. Conflict-serial execution. Two commands that touch the same key
//     conflict, and the scheduling engine executes conflicting
//     commands serially in admission order. Therefore the versions in
//     one key's chain were appended in a serial order consistent with
//     the speculative admission order, and at most one epoch is
//     actively writing a given key at any instant. A speculating
//     command reading "newest version" observes exactly the state its
//     serial predecessors produced — which is also the only state it
//     could observe in any equivalent serial execution.
//
//  2. Prefix-ordered resolution. The reconciler confirms or aborts
//     epochs so that when Commit(e) runs, every conflicting
//     predecessor of e has already been committed or aborted: e's
//     versions sit at the BOTTOM of their chains, directly above the
//     committed tip, so promoting them preserves the chain's serial
//     history. Symmetrically, aborts run newest-first (the executor
//     withdraws a tainted suffix in reverse execution order), so
//     Abort(e) removes versions from the TOP of their chains and the
//     surviving prefix below stays intact. Both operations are
//     implemented as a search over the (short) chain rather than
//     assuming the position, so a violation degrades to a different
//     serial order, never to a corrupted chain.
//
// Epoch 0 (Committed) addresses the base directly and is the
// non-speculative fast path: when no speculation is configured the
// overlay stays empty and reads/writes do not take the version lock,
// preserving the engines' lock-free committed hot path.
//
// The model follows the multi-version state cache of Octopus-style
// two-phase execution (speculate against versioned state, validate,
// then flip) and the read/write-set discipline CBASE brought to SMR;
// see PAPERS.md for what was adopted versus deviated from.
package mvstore

import "sync"

// Epoch tags a speculation. Epoch 0 is the committed state itself;
// speculative executions use the monotonically increasing epochs the
// optimistic executor assigns per admitted command.
type Epoch uint64

// Committed is the epoch of the committed state: operations at this
// epoch bypass the version overlay and address the base directly.
const Committed Epoch = 0

// Base is the committed store underneath a Store's version overlay.
// Implementations need no internal synchronization beyond what their
// non-speculative callers already provide; the Store serializes its
// own access to the base.
type Base[K comparable, V any] interface {
	Get(k K) (V, bool)
	Put(k K, v V)
	Delete(k K) bool
	Len() int
	// Range calls fn for every committed entry until fn returns
	// false. Iteration order is implementation-defined.
	Range(fn func(k K, v V) bool)
}

// version is one uncommitted entry in a key's chain. A tombstone
// records a speculative delete.
type version[V any] struct {
	epoch     Epoch
	value     V
	tombstone bool
}

// chain holds a key's uncommitted versions, oldest first. The
// committed tip lives in the base, below the chain.
type chain[V any] struct {
	versions []version[V]
}

func (c *chain[V]) top() *version[V] {
	if len(c.versions) == 0 {
		return nil
	}
	return &c.versions[len(c.versions)-1]
}

// Store is a multi-version overlay over a committed Base.
//
// Concurrency: speculative operations (epoch != Committed) and the
// commit/abort/snapshot paths synchronize on one RWMutex, because a
// Commit can restructure the base (e.g. a btree insert) while workers
// read other keys speculatively. Operations at the Committed epoch
// take the read lock only when uncommitted versions exist, keeping
// the non-optimistic deployment's hot path unchanged (overlay empty
// ⇒ no contention beyond one atomic-free counter check under RLock).
type Store[K comparable, V any] struct {
	mu     sync.RWMutex
	base   Base[K, V]
	clone  func(V) V // nil ⇒ values are safe to share (value types / immutable)
	chains map[K]*chain[V]
	// journal remembers which keys each live epoch touched, in touch
	// order, making Commit/Abort O(touched keys).
	journal map[Epoch][]K
}

// New builds a Store over base. clone, when non-nil, deep-copies a
// value before a Mutate hands it to the caller for in-place editing;
// pass nil when values are immutable or copied by assignment.
func New[K comparable, V any](base Base[K, V], clone func(V) V) *Store[K, V] {
	return &Store[K, V]{
		base:    base,
		clone:   clone,
		chains:  make(map[K]*chain[V]),
		journal: make(map[Epoch][]K),
	}
}

// Base returns the committed base store. Callers touching it directly
// must hold no speculative state for the affected keys (it is meant
// for preload/restore paths).
func (s *Store[K, V]) Base() Base[K, V] { return s.base }

// Reset drops every uncommitted version and re-points the store at
// base (used by Restore paths that rebuild committed state wholesale).
func (s *Store[K, V]) Reset(base Base[K, V]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.base = base
	s.chains = make(map[K]*chain[V])
	s.journal = make(map[Epoch][]K)
}

// Get resolves k at epoch e: the newest uncommitted version if any,
// else the committed tip. A tombstone reads as absent.
func (s *Store[K, V]) Get(e Epoch, k K) (V, bool) {
	if e == Committed {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.base.Get(k)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.chains[k]; ok {
		if v := c.top(); v != nil {
			if v.tombstone {
				var zero V
				return zero, false
			}
			return v.value, true
		}
	}
	return s.base.Get(k)
}

// Put writes v for k. At the Committed epoch it writes the base
// directly; otherwise it lands as an uncommitted version owned by e.
func (s *Store[K, V]) Put(e Epoch, k K, v V) {
	if e == Committed {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.base.Put(k, v)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(e, k, version[V]{epoch: e, value: v})
}

// Delete removes k at epoch e. Speculative deletes land as
// tombstones; the committed entry is untouched until Commit. The
// boolean reports whether k was visible at e before the delete.
func (s *Store[K, V]) Delete(e Epoch, k K) bool {
	if e == Committed {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.base.Delete(k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	visible := false
	if c, ok := s.chains[k]; ok && c.top() != nil {
		visible = !c.top().tombstone
	} else if _, ok := s.base.Get(k); ok {
		visible = true
	}
	if !visible {
		return false
	}
	s.appendLocked(e, k, version[V]{epoch: e, tombstone: true})
	return true
}

// Mutate returns a value for k at epoch e that the caller may edit in
// place, installing it as e's uncommitted version first if the
// visible version is not already owned by e. Returns (zero, false)
// when k is not visible at e. For pointer-shaped values the configured
// clone func keeps committed state (and other epochs' versions)
// isolated from the edit.
func (s *Store[K, V]) Mutate(e Epoch, k K) (V, bool) {
	if e == Committed {
		// Committed mutation edits the base value directly; for
		// pointer values that is the pre-mvstore behavior.
		s.mu.Lock()
		defer s.mu.Unlock()
		v, ok := s.base.Get(k)
		return v, ok
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chains[k]; ok {
		if top := c.top(); top != nil {
			if top.tombstone {
				var zero V
				return zero, false
			}
			if top.epoch == e {
				return top.value, true
			}
			nv := top.value
			if s.clone != nil {
				nv = s.clone(nv)
			}
			s.appendLocked(e, k, version[V]{epoch: e, value: nv})
			return nv, true
		}
	}
	v, ok := s.base.Get(k)
	if !ok {
		var zero V
		return zero, false
	}
	if s.clone != nil {
		v = s.clone(v)
	}
	s.appendLocked(e, k, version[V]{epoch: e, value: v})
	return v, true
}

func (s *Store[K, V]) appendLocked(e Epoch, k K, v version[V]) {
	c, ok := s.chains[k]
	if !ok {
		c = &chain[V]{}
		s.chains[k] = c
	}
	// Collapse consecutive writes by the same epoch to one version.
	if top := c.top(); top != nil && top.epoch == e {
		*top = v
		return
	}
	c.versions = append(c.versions, v)
	s.journal[e] = append(s.journal[e], k)
}

// Commit promotes epoch e's versions into the committed base and
// forgets the epoch. Cost is O(keys e touched). Committing an epoch
// with no versions is a no-op.
func (s *Store[K, V]) Commit(e Epoch) {
	if e == Committed {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.journal[e] {
		c := s.chains[k]
		if c == nil {
			continue
		}
		for i, v := range c.versions {
			if v.epoch != e {
				continue
			}
			// Promote to the base. With prefix-ordered resolution i
			// is 0; the search keeps the chain coherent regardless.
			if v.tombstone {
				s.base.Delete(k)
			} else {
				s.base.Put(k, v.value)
			}
			c.versions = append(c.versions[:i], c.versions[i+1:]...)
			break
		}
		if len(c.versions) == 0 {
			delete(s.chains, k)
		}
	}
	delete(s.journal, e)
}

// Abort drops epoch e's versions without touching the committed base.
// Cost is O(keys e touched). Aborting an unknown epoch is a no-op.
func (s *Store[K, V]) Abort(e Epoch) {
	if e == Committed {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := s.journal[e]
	// Newest-touched first: with reverse-order withdrawal the epoch's
	// versions are at their chains' tops.
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		c := s.chains[k]
		if c == nil {
			continue
		}
		for j := len(c.versions) - 1; j >= 0; j-- {
			if c.versions[j].epoch == e {
				c.versions = append(c.versions[:j], c.versions[j+1:]...)
				break
			}
		}
		if len(c.versions) == 0 {
			delete(s.chains, k)
		}
	}
	delete(s.journal, e)
}

// Uncommitted reports the number of uncommitted versions across all
// chains (tombstones included).
func (s *Store[K, V]) Uncommitted() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, c := range s.chains {
		n += len(c.versions)
	}
	return n
}

// LiveEpochs reports the number of epochs with journaled writes.
func (s *Store[K, V]) LiveEpochs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.journal)
}

// RangeCommitted iterates the committed base only — uncommitted
// versions are invisible. Snapshots and fingerprints use this to
// observe exactly the confirmed state.
func (s *Store[K, V]) RangeCommitted(fn func(k K, v V) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.base.Range(fn)
}

// CommittedLen reports the committed base's entry count.
func (s *Store[K, V]) CommittedLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base.Len()
}

// MapBase is a Base backed by a plain map, the fit for flat-keyed
// stores (netfs path/fd tables, lockstore owner records).
type MapBase[K comparable, V any] map[K]V

func (m MapBase[K, V]) Get(k K) (V, bool) { v, ok := m[k]; return v, ok }
func (m MapBase[K, V]) Put(k K, v V)      { m[k] = v }
func (m MapBase[K, V]) Delete(k K) bool {
	_, ok := m[k]
	delete(m, k)
	return ok
}
func (m MapBase[K, V]) Len() int { return len(m) }
func (m MapBase[K, V]) Range(fn func(k K, v V) bool) {
	for k, v := range m {
		if !fn(k, v) {
			return
		}
	}
}
