package experiment

import (
	"fmt"
	"io"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/workload"
)

// Scale globally sizes the experiments: database keys, client count,
// and measurement duration. The benchmarks use a small scale; the
// cmd/psmr-bench harness defaults to a larger one.
type Scale struct {
	Keys     int
	Clients  int
	Window   int
	Duration time.Duration
	Warmup   time.Duration
}

// DefaultScale is the harness's full-scale configuration.
func DefaultScale() Scale {
	return Scale{
		Keys:     1_000_000,
		Clients:  8,
		Window:   50,
		Duration: 4 * time.Second,
		Warmup:   500 * time.Millisecond,
	}
}

// QuickScale keeps runs short (benchmarks, smoke tests) while still
// offering enough outstanding requests (clients × window) to reach
// each technique's peak throughput, which is what the paper reports.
func QuickScale() Scale {
	return Scale{
		Keys:     50_000,
		Clients:  12,
		Window:   50,
		Duration: 1500 * time.Millisecond,
		Warmup:   300 * time.Millisecond,
	}
}

func (s Scale) kvSetup(t Technique, threads int) KVSetup {
	return KVSetup{
		Technique: t,
		Threads:   threads,
		Keys:      s.Keys,
		Clients:   s.Clients,
		Window:    s.Window,
		Duration:  s.Duration,
		Warmup:    s.Warmup,
	}
}

// Fig3Setups returns the independent-command comparison (paper
// Figure 3): read-only workload at each technique's peak thread count
// (§VII-C: 8 for P-SMR, 2 for sP-SMR and no-rep, 1 for SMR, 6 for BDB).
func Fig3Setups(scale Scale) []KVSetup {
	mk := func(t Technique, threads int) KVSetup {
		setup := scale.kvSetup(t, threads)
		setup.Gen = workload.KVReads
		return setup
	}
	return []KVSetup{
		mk(NoRep, 2),
		mk(SMR, 1),
		mk(SPSMR, 2),
		mk(PSMR, 8),
		mk(BDB, 6),
	}
}

// Fig4Setups returns the dependent-command comparison (paper
// Figure 4): insert/delete-only workload, 1 thread everywhere except
// BDB's 4 (§VII-D).
func Fig4Setups(scale Scale) []KVSetup {
	mk := func(t Technique, threads int) KVSetup {
		setup := scale.kvSetup(t, threads)
		setup.Gen = workload.KVInsertsDeletes
		return setup
	}
	return []KVSetup{
		mk(NoRep, 1),
		mk(SMR, 1),
		mk(SPSMR, 1),
		mk(PSMR, 1),
		mk(BDB, 4),
	}
}

// Fig5Point is one point of the scalability sweep.
type Fig5Point struct {
	Technique Technique
	Threads   int
	Dependent bool
}

// Fig5Points returns the scalability sweep (paper Figure 5): threads
// 1..8 for each multithreaded technique, independent and dependent
// workloads.
func Fig5Points() []Fig5Point {
	threads := []int{1, 2, 4, 6, 8}
	techniques := []Technique{NoRep, SPSMR, PSMR, BDB}
	var points []Fig5Point
	for _, dep := range []bool{false, true} {
		for _, tech := range techniques {
			for _, th := range threads {
				points = append(points, Fig5Point{Technique: tech, Threads: th, Dependent: dep})
			}
		}
	}
	return points
}

// RunFig5Point measures one scalability point.
func RunFig5Point(scale Scale, p Fig5Point) (*bench.Result, error) {
	setup := scale.kvSetup(p.Technique, p.Threads)
	if p.Dependent {
		setup.Gen = workload.KVInsertsDeletes
	} else {
		setup.Gen = workload.KVReads
	}
	return RunKV(setup)
}

// Fig6Percentages is the paper's dependent-command mix sweep (log
// scale x-axis of Figure 6).
func Fig6Percentages() []float64 {
	return []float64{0.001, 0.01, 0.1, 1, 10}
}

// RunFig6Point measures P-SMR (8 workers) or SMR under a mixed
// workload with the given percentage of dependent commands.
func RunFig6Point(scale Scale, t Technique, dependentPct float64) (*bench.Result, error) {
	threads := 1
	if t == PSMR {
		threads = 8
	}
	setup := scale.kvSetup(t, threads)
	setup.Gen = func(keys workload.KeyGen) workload.Generator {
		return workload.KVMixed(keys, dependentPct)
	}
	res, err := RunKV(setup)
	if err != nil {
		return nil, err
	}
	res.Extra = map[string]float64{"dependent_pct": dependentPct}
	return res, nil
}

// RunFig7Point measures the skewed workload (paper Figure 7): 50%
// reads / 50% updates with uniform or Zipf(1) key selection, P-SMR vs
// sP-SMR across thread counts.
func RunFig7Point(scale Scale, t Technique, threads int, zipfian bool) (*bench.Result, error) {
	setup := scale.kvSetup(t, threads)
	if zipfian {
		setup.KeyGen = workload.NewZipf(1.0, uint64(setup.Keys))
	}
	setup.Gen = workload.KVReadUpdate
	res, err := RunKV(setup)
	if err != nil {
		return nil, err
	}
	dist := "uniform"
	if zipfian {
		dist = "zipf"
	}
	if res.Extra == nil {
		res.Extra = map[string]float64{}
	}
	res.Technique = fmt.Sprintf("%s/%s", t, dist)
	return res, nil
}

// RunFig8Point measures NetFS reads or writes for one technique
// (paper Figure 8; SMR, sP-SMR and P-SMR with 8 path ranges).
func RunFig8Point(scale Scale, t Technique, write bool) (*bench.Result, error) {
	setup := NetFSSetup{
		Technique: t,
		Threads:   8,
		Files:     256,
		FileSize:  64 * 1024,
		Write:     write,
		IOSize:    1024,
		Clients:   scale.Clients,
		Window:    scale.Window,
		Duration:  scale.Duration,
		Warmup:    scale.Warmup,
	}
	return RunNetFS(setup)
}

// SchedAblationSetups returns the scan-vs-index scheduler ablation:
// sP-SMR and no-rep at the given worker count under the update-heavy
// kvstore workload (every command keyed, none independent — the
// workload that keeps the scan scheduler's conflict bookkeeping
// busiest). The scan rows reproduce the paper's scheduler bottleneck;
// the index rows measure the early scheduler that removes it.
func SchedAblationSetups(scale Scale, threads int) []KVSetup {
	mk := func(t Technique, kind psmr.SchedulerKind) KVSetup {
		setup := scale.kvSetup(t, threads)
		setup.Gen = workload.KVUpdates
		setup.Scheduler = kind
		return setup
	}
	return []KVSetup{
		mk(SPSMR, psmr.SchedScan),
		mk(SPSMR, psmr.SchedIndex),
		mk(NoRep, psmr.SchedScan),
		mk(NoRep, psmr.SchedIndex),
	}
}

// AdmitAblationSetups returns the batch-first admission ablation:
// sP-SMR on the index engine under the 50/50 read/update kvstore
// workload, sweeping single-vs-batch admission × reader sets on/off ×
// work stealing on/off. Reads exercise the reader sets (the workload
// has no independent commands, so stealing only matters when the other
// knobs skew queues); the all-on row is the production pipeline, the
// all-off row is the pre-batch engine.
func AdmitAblationSetups(scale Scale, threads int) []KVSetup {
	var setups []KVSetup
	for _, single := range []bool{true, false} {
		for _, nors := range []bool{true, false} {
			for _, nosteal := range []bool{true, false} {
				setup := scale.kvSetup(SPSMR, threads)
				setup.Gen = workload.KVReadUpdate
				setup.Scheduler = psmr.SchedIndex
				setup.Tuning = psmr.SchedTuning{
					NoBatchAdmit: single,
					NoReaderSets: nors,
					NoSteal:      nosteal,
				}
				setup.TagTuning = true
				setups = append(setups, setup)
			}
		}
	}
	return setups
}

// SchedFastAblationSetups returns the scheduler raw-speed ablation:
// sP-SMR on the index engine under all-write workloads with 0/10/50%
// two-key transfers, sweeping the multi-key owner protocol — parked
// rendezvous (Tuning.NoMKHandoff, the pre-handoff engine) vs
// deposit-and-continue handoff (default). At each token the park rows
// idle every owner but the executor; the handoff rows keep those
// owners draining unrelated keyed work, which is where the raw-speed
// tier's throughput claim lives. The 0% column is the control: with no
// multi-key commands the two protocols must be statistically
// indistinguishable.
func SchedFastAblationSetups(scale Scale, threads int) []KVSetup {
	var setups []KVSetup
	for _, park := range []bool{true, false} {
		for _, pct := range []float64{0, 10, 50} {
			p := pct
			setup := scale.kvSetup(SPSMR, threads)
			setup.Gen = func(keys workload.KeyGen) workload.Generator {
				return workload.KVTransferShare(keys, p)
			}
			setup.Scheduler = psmr.SchedIndex
			setup.Tuning = psmr.SchedTuning{NoMKHandoff: park}
			setup.TagTuning = true
			setup.Tag = fmt.Sprintf("xfer=%g%%", p)
			setups = append(setups, setup)
		}
	}
	return setups
}

// BarrierTransferSpec returns the multi-key ablation's baseline C-Dep:
// the kvstore spec with the transfer declared always-conflicting with
// itself, which is what a single-object C-G forces on a multi-object
// command — the compiler promotes it to Global and every transfer
// becomes an all-worker barrier.
func BarrierTransferSpec() cdep.Spec {
	spec := kvstore.Spec()
	spec.Deps = append(spec.Deps, cdep.Dep{A: kvstore.CmdTransfer, B: kvstore.CmdTransfer})
	return spec
}

// MultiKeyAblationSetups returns the barrier-vs-multikey ablation:
// sP-SMR under the 50/50 transfer/read kvstore workload, sweeping the
// C-G treatment of the two-key transfer (barrier baseline vs key-set
// routing) across both scheduling engines. The barrier rows reproduce
// the synchronous-mode serialization a single-key C-G forces on
// multi-object commands; the multikey rows measure the owner-
// rendezvous fast path that replaces it.
func MultiKeyAblationSetups(scale Scale, threads int) []KVSetup {
	barrierSpec := BarrierTransferSpec()
	var setups []KVSetup
	for _, barrier := range []bool{true, false} {
		for _, kind := range []psmr.SchedulerKind{psmr.SchedScan, psmr.SchedIndex} {
			setup := scale.kvSetup(SPSMR, threads)
			setup.Gen = workload.KVTransferMix
			setup.Scheduler = kind
			if barrier {
				setup.Spec = &barrierSpec
				setup.Tag = "barrier-cg"
			} else {
				setup.Tag = "multikey-cg"
			}
			setups = append(setups, setup)
		}
	}
	return setups
}

// OptimisticAblationSetups returns the optimistic-execution ablation:
// sP-SMR with speculation off/on × scan/index engines × collision
// rates (percentage of hot-set two-key transfers in the workload; the
// rest are conflict-free reads). The off rows are the decided-path
// baseline; the on rows additionally report hit-rate and rollback
// counters in Result.Extra. Under a stable leader the optimistic and
// decided orders agree, so rollbacks stay near zero even at high
// collision rates — the collision sweep measures what the speculation
// machinery COSTS when conflicts are dense, while OptimisticReorder
// (tests) exercises what rollback costs when orders diverge.
func OptimisticAblationSetups(scale Scale, threads int) []KVSetup {
	var setups []KVSetup
	for _, collision := range []float64{0, 10, 50} {
		for _, kind := range []psmr.SchedulerKind{psmr.SchedScan, psmr.SchedIndex} {
			for _, opt := range []bool{false, true} {
				pct := collision
				setup := scale.kvSetup(SPSMR, threads)
				setup.Gen = func(keys workload.KeyGen) workload.Generator {
					return workload.KVCollisionMix(keys, pct)
				}
				setup.Scheduler = kind
				setup.Optimistic = opt
				setup.Tag = fmt.Sprintf("col=%g%%", pct)
				setups = append(setups, setup)
			}
		}
	}
	return setups
}

// RollbackAblationSetups returns the rollback-model ablation: sP-SMR
// under collision-mix workloads (0/10/50% hot-set two-key transfers)
// with speculation off (the decided-path baseline every speculative
// row must beat), speculation on with forced optimistic/decided
// reordering (every rollback goes through the mvstore epoch-abort
// path — O(touched keys), not O(state) clone-replay), and the same
// plus re-speculation (rollback collateral re-admitted against the
// repaired state). The rows report hit-rate, rollback and
// re-speculation counters in Result.Extra; psmr-bench additionally
// writes them to BENCH_rollback.json. The netfs side of the rollback
// story — abort cost flat in store size — is the root
// BenchmarkRollbackDepth microbench, which a throughput sweep cannot
// show.
func RollbackAblationSetups(scale Scale, threads int) []KVSetup {
	rows := []struct {
		opt     bool
		reorder int
		reSpec  bool
	}{
		{opt: false},
		{opt: true, reorder: 2},
		{opt: true, reorder: 2, reSpec: true},
	}
	var setups []KVSetup
	for _, collision := range []float64{0, 10, 50} {
		for _, row := range rows {
			pct := collision
			setup := scale.kvSetup(SPSMR, threads)
			setup.Gen = func(keys workload.KeyGen) workload.Generator {
				return workload.KVCollisionMix(keys, pct)
			}
			setup.Scheduler = psmr.SchedIndex
			setup.Optimistic = row.opt
			setup.OptimisticReorder = row.reorder
			setup.ReSpeculate = row.reSpec
			setup.Tag = fmt.Sprintf("col=%g%%", pct)
			setups = append(setups, setup)
		}
	}
	return setups
}

// CheckpointAblationSetups returns the checkpoint-interval sweep:
// sP-SMR under the 50/50 read/update kvstore workload with coordinated
// checkpoints off / every 1k / 8k / 64k decided commands, on both
// scheduling engines. The interval trades learner memory (retention is
// bounded by the interval) against the quiesce pause the global-
// barrier snapshot imposes — the rows report throughput plus the
// measured pause and snapshot size so the cost of crash-recoverability
// is quantified rather than guessed.
func CheckpointAblationSetups(scale Scale, threads int) []KVSetup {
	var setups []KVSetup
	for _, kind := range []psmr.SchedulerKind{psmr.SchedScan, psmr.SchedIndex} {
		for _, interval := range []int{0, 1_000, 8_000, 64_000} {
			setup := scale.kvSetup(SPSMR, threads)
			setup.Gen = workload.KVReadUpdate
			setup.Scheduler = kind
			setup.CheckpointInterval = interval
			if interval == 0 {
				setup.Tag = "ckpt=off"
			} else {
				setup.Tag = fmt.Sprintf("ckpt=%dk", interval/1000)
			}
			setups = append(setups, setup)
		}
	}
	return setups
}

// CompartmentAblationSetups returns the compartmentalized-ordering
// ablation: sP-SMR on the index engine under the 50/50 read/update
// kvstore workload, sweeping the proxy-proposer tier (0/1/2/4 ingress
// proxies) crossed with learner fan-out off/on (2 delivery stripes per
// group). The p=0,fan=0 row is the direct-submission baseline; proxy
// rows additionally report the leader's frames-per-command compression
// and per-proxy batch fill in Result.Extra, which is where the
// ordering-layer claim (batching relieves the leader's ingress, relays
// relieve its egress) is measured rather than guessed.
func CompartmentAblationSetups(scale Scale, threads int) []KVSetup {
	var setups []KVSetup
	for _, fanout := range []int{0, 2} {
		for _, proxies := range []int{0, 1, 2, 4} {
			setup := scale.kvSetup(SPSMR, threads)
			setup.Gen = workload.KVReadUpdate
			setup.Scheduler = psmr.SchedIndex
			setup.Proxies = proxies
			setup.Fanout = fanout
			setups = append(setups, setup)
		}
	}
	return setups
}

// ObsAblationSetups returns the observability-overhead ablation:
// sP-SMR under the 50/50 read/update kvstore workload with
// pipeline-stage tracing off / sampled 1-in-1024 / on every command,
// crossed with the scan and index engines. The off column is the
// baseline the ≤3% sampled-overhead claim is gated against; the
// trace=all column bounds the worst case (it is expected to cost
// real throughput — that is why sampling exists).
func ObsAblationSetups(scale Scale, threads int) []KVSetup {
	var setups []KVSetup
	for _, kind := range []psmr.SchedulerKind{psmr.SchedScan, psmr.SchedIndex} {
		for _, trace := range []struct {
			sample int
			tag    string
		}{
			{sample: -1, tag: "trace=off"},
			{sample: 0, tag: "trace=1/1024"},
			{sample: 1, tag: "trace=all"},
		} {
			setup := scale.kvSetup(SPSMR, threads)
			setup.Gen = workload.KVReadUpdate
			setup.Scheduler = kind
			setup.TraceSample = trace.sample
			setup.EmbedObs = trace.sample >= 0
			setup.Tag = trace.tag
			setups = append(setups, setup)
		}
	}
	return setups
}

// ObsGateSetup returns one row of the sampled-overhead gate: the
// sP-SMR/index 50/50 read/update kv workload at the given trace
// sampling (-1 off, 0 the 1/1024 default) — the e2e configuration the
// make-verify ≤3% assertion measures.
func ObsGateSetup(scale Scale, threads, traceSample int) KVSetup {
	setup := scale.kvSetup(SPSMR, threads)
	setup.Gen = workload.KVReadUpdate
	setup.Scheduler = psmr.SchedIndex
	setup.TraceSample = traceSample
	return setup
}

// FlightGateSetup returns one side of the flight-recorder overhead
// gate: the same sP-SMR/index e2e workload as the obs gate with the
// black-box journal on (the default) or off (JournalEvents: -1).
// Tracing runs at the 1/1024 default on both sides so the journal-on
// row exercises the real emit path (stage events plus component
// events), isolating the journal's marginal cost.
func FlightGateSetup(scale Scale, threads int, journalOff bool) KVSetup {
	setup := scale.kvSetup(SPSMR, threads)
	setup.Gen = workload.KVReadUpdate
	setup.Scheduler = psmr.SchedIndex
	setup.JournalOff = journalOff
	return setup
}

// PrintTable1 prints the paper's Table I (delivery/execution
// parallelism matrix), the structural summary of the three SMR
// variants.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I — degrees of parallelism in state-machine replication")
	fmt.Fprintf(w, "%-12s %-12s %-12s\n", "command...", "delivery", "execution")
	fmt.Fprintf(w, "%-12s %-12s %-12s\n", "SMR", "sequential", "sequential")
	fmt.Fprintf(w, "%-12s %-12s %-12s\n", "sP-SMR", "sequential", "parallel")
	fmt.Fprintf(w, "%-12s %-12s %-12s\n", "P-SMR", "parallel", "parallel")
	fmt.Fprintln(w, "SMR runs 1 delivery stream / 1 executor; sP-SMR 1 stream + scheduler")
	fmt.Fprintln(w, "+ worker pool; P-SMR k+1 streams merged pairwise into k executors.")
}
