package experiment

import (
	"fmt"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/workload"
)

// AblationSetup extends KVSetup with the protocol knobs the ablation
// benchmarks sweep (DESIGN.md §7).
type AblationSetup struct {
	KVSetup
	// MergeWeight overrides the deterministic merge weight / skip slot
	// rate.
	MergeWeight int
	// SkipInterval overrides the skip padding period.
	SkipInterval time.Duration
	// BatchMaxBytes overrides the consensus batch limit.
	BatchMaxBytes int
	// CoarseCG swaps the keyed kvstore C-Dep for the paper's coarse
	// variant (§IV-C): every state-modifying command goes to all
	// groups, reads to a random group.
	CoarseCG bool
}

// KVAblationSetup builds a default ablation setup at this scale.
func (s Scale) KVAblationSetup(t Technique, threads int) AblationSetup {
	setup := s.kvSetup(t, threads)
	setup.Gen = workload.KVReadUpdate
	return AblationSetup{KVSetup: setup}
}

// coarseKVSpec is the paper's first C-G example transplanted to the
// key-value store: inserts, deletes and updates depend on everything
// regardless of keys; reads are independent (random group).
func coarseKVSpec() cdep.Spec {
	spec := cdep.Spec{
		Commands: []cdep.Command{
			{ID: kvstore.CmdInsert, Name: "insert", Key: kvstore.KeyOf},
			{ID: kvstore.CmdDelete, Name: "delete", Key: kvstore.KeyOf},
			{ID: kvstore.CmdRead, Name: "read", Key: kvstore.KeyOf},
			{ID: kvstore.CmdUpdate, Name: "update", Key: kvstore.KeyOf},
		},
	}
	writers := []command.ID{kvstore.CmdInsert, kvstore.CmdDelete, kvstore.CmdUpdate}
	all := append(append([]command.ID{}, writers...), kvstore.CmdRead)
	for _, w := range writers {
		for _, other := range all {
			spec.Deps = append(spec.Deps, cdep.Dep{A: w, B: other})
		}
	}
	return spec
}

// RunKVAblation measures one ablation point (replicated modes only).
func RunKVAblation(setup AblationSetup) (*bench.Result, error) {
	setup.fillDefaults()
	mode := psmr.ModePSMR
	switch setup.Technique {
	case PSMR:
	case SPSMR:
		mode = psmr.ModeSPSMR
	case SMR:
		mode = psmr.ModeSMR
	default:
		return nil, fmt.Errorf("ablation supports replicated modes, got %v", setup.Technique)
	}
	spec := kvstore.Spec()
	if setup.CoarseCG {
		spec = coarseKVSpec()
	}
	cpu := bench.NewCPUMeter()
	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:     mode,
		Workers:  setup.Threads,
		Replicas: 2,
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(setup.Keys)
			return st
		},
		Spec:          spec,
		MergeWeight:   setup.MergeWeight,
		SkipInterval:  setup.SkipInterval,
		BatchMaxBytes: setup.BatchMaxBytes,
		CPU:           cpu,
	})
	if err != nil {
		return nil, fmt.Errorf("start ablation cluster: %w", err)
	}
	defer cluster.Close()

	invokers := make([]workload.Invoker, 0, setup.Clients)
	for i := 0; i < setup.Clients; i++ {
		c, err := cluster.NewClient()
		if err != nil {
			return nil, err
		}
		invokers = append(invokers, c)
	}
	ops, elapsed, hist := workload.Run(workload.RunnerConfig{
		Clients:        invokers,
		Window:         setup.Window,
		Gen:            setup.Gen(setup.KeyGen),
		Duration:       setup.Duration,
		Warmup:         setup.Warmup,
		Seed:           3,
		OnMeasureStart: cpu.Reset,
	})
	byRole, _ := cpu.Usage()
	return &bench.Result{
		Technique:  setup.Technique.String(),
		Threads:    setup.Threads,
		Ops:        ops,
		Elapsed:    elapsed,
		Latency:    hist,
		CPUPercent: serverCPU(byRole, 2),
		CPUByRole:  byRole,
	}, nil
}
