package experiment

import (
	"strings"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/workload"
)

// tinyScale keeps smoke tests fast.
func tinyScale() Scale {
	return Scale{
		Keys:     2_000,
		Clients:  2,
		Window:   8,
		Duration: 250 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
	}
}

func TestRunKVAllTechniques(t *testing.T) {
	for _, tech := range []Technique{PSMR, SPSMR, SMR, NoRep, BDB} {
		t.Run(tech.String(), func(t *testing.T) {
			setup := tinyScale().kvSetup(tech, 2)
			res, err := RunKV(setup)
			if err != nil {
				t.Fatalf("RunKV: %v", err)
			}
			if res.Ops <= 0 {
				t.Fatal("no operations measured")
			}
			if res.Latency.Count() != res.Ops {
				t.Fatalf("latency count %d != ops %d", res.Latency.Count(), res.Ops)
			}
			if res.Technique != tech.String() {
				t.Fatalf("technique = %q", res.Technique)
			}
		})
	}
}

func TestRunKVDependentWorkload(t *testing.T) {
	setup := tinyScale().kvSetup(PSMR, 2)
	setup.Gen = workload.KVInsertsDeletes
	res, err := RunKV(setup)
	if err != nil {
		t.Fatalf("RunKV: %v", err)
	}
	if res.Ops <= 0 {
		t.Fatal("no operations measured")
	}
}

func TestRunNetFSReadAndWrite(t *testing.T) {
	for _, write := range []bool{false, true} {
		setup := NetFSSetup{
			Technique: PSMR,
			Threads:   4,
			Files:     32,
			FileSize:  8 * 1024,
			Write:     write,
			IOSize:    1024,
			Clients:   2,
			Window:    8,
			Duration:  250 * time.Millisecond,
			Warmup:    100 * time.Millisecond,
		}
		res, err := RunNetFS(setup)
		if err != nil {
			t.Fatalf("RunNetFS(write=%v): %v", write, err)
		}
		if res.Ops <= 0 {
			t.Fatalf("no operations measured (write=%v)", write)
		}
	}
}

func TestRunKVAblationCoarse(t *testing.T) {
	setup := tinyScale().KVAblationSetup(PSMR, 2)
	setup.CoarseCG = true
	res, err := RunKVAblation(setup)
	if err != nil {
		t.Fatalf("RunKVAblation: %v", err)
	}
	if res.Ops <= 0 {
		t.Fatal("no operations measured")
	}
}

func TestUnknownTechniqueRejected(t *testing.T) {
	setup := tinyScale().kvSetup(Technique(99), 1)
	if _, err := RunKV(setup); err == nil {
		t.Fatal("unknown technique accepted")
	}
	nf := NetFSSetup{Technique: BDB}
	if _, err := RunNetFS(nf); err == nil {
		t.Fatal("netfs with BDB accepted")
	}
}

func TestPrintTable1(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb)
	out := sb.String()
	for _, want := range []string{"SMR", "sP-SMR", "P-SMR", "sequential", "parallel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFigSetupsWellFormed(t *testing.T) {
	scale := tinyScale()
	if got := len(Fig3Setups(scale)); got != 5 {
		t.Fatalf("Fig3Setups = %d entries", got)
	}
	if got := len(Fig4Setups(scale)); got != 5 {
		t.Fatalf("Fig4Setups = %d entries", got)
	}
	if got := len(Fig5Points()); got != 40 {
		t.Fatalf("Fig5Points = %d", got)
	}
	if got := len(Fig6Percentages()); got != 5 {
		t.Fatalf("Fig6Percentages = %d", got)
	}
}

func TestRunKVWithCheckpoints(t *testing.T) {
	setup := tinyScale().kvSetup(SPSMR, 2)
	setup.Gen = workload.KVReadUpdate
	setup.CheckpointInterval = 200
	setup.Tag = "ckpt=200"
	res, err := RunKV(setup)
	if err != nil {
		t.Fatalf("RunKV: %v", err)
	}
	if res.Ops <= 0 {
		t.Fatal("no operations measured")
	}
	if res.Extra == nil || res.Extra["ckpt_count"] < 1 {
		t.Fatalf("checkpoint columns missing: %+v", res.Extra)
	}
	if res.Extra["ckpt_bytes"] <= 0 {
		t.Fatalf("snapshot size column missing: %+v", res.Extra)
	}
}

func TestCheckpointAblationSetupsWellFormed(t *testing.T) {
	setups := CheckpointAblationSetups(tinyScale(), 2)
	if len(setups) != 8 {
		t.Fatalf("%d setups, want 8 (2 engines x 4 intervals)", len(setups))
	}
	seenOff := 0
	for _, s := range setups {
		if s.Technique != SPSMR {
			t.Fatalf("unexpected technique %v", s.Technique)
		}
		if s.CheckpointInterval == 0 {
			seenOff++
			if !strings.Contains(s.Tag, "off") {
				t.Fatalf("off row mis-tagged: %q", s.Tag)
			}
		}
	}
	if seenOff != 2 {
		t.Fatalf("%d off rows, want 2", seenOff)
	}
}
