// Package experiment assembles the deployments and workloads of the
// paper's evaluation (§VII): one function per figure, shared between
// the testing.B benchmarks (bench_test.go) and the full-scale harness
// (cmd/psmr-bench). Every technique runs on its own in-process network
// with its own CPU meter; the harness reports throughput in Kcps, mean
// latency, a latency CDF and per-role CPU usage — the four panels the
// paper plots.
package experiment

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/direct"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/lockstore"
	"github.com/psmr/psmr/internal/netfs"
	"github.com/psmr/psmr/internal/norep"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
	"github.com/psmr/psmr/internal/workload"
)

// Technique identifies one of the compared systems (paper §VI-B).
type Technique int

// The five techniques of the key-value store comparison.
const (
	PSMR Technique = iota + 1
	SPSMR
	SMR
	NoRep
	BDB // the lock-based store baseline
)

func (t Technique) String() string {
	switch t {
	case PSMR:
		return "P-SMR"
	case SPSMR:
		return "sP-SMR"
	case SMR:
		return "SMR"
	case NoRep:
		return "no-rep"
	case BDB:
		return "BDB"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// KVSetup parameterises one key-value store measurement.
type KVSetup struct {
	Technique Technique
	// Threads is the worker/thread count (the paper's x-axis in
	// Figures 5 and 7; scheduler excluded for sP-SMR/no-rep).
	Threads int
	// Keys preloads the database (the paper uses 10M).
	Keys int
	// Clients and Window form the closed loop (the paper's window is 50).
	Clients int
	Window  int
	// Gen builds the per-setup operation generator from the preloaded
	// key space.
	Gen func(keys workload.KeyGen) workload.Generator
	// KeyGen overrides the default uniform key selection.
	KeyGen workload.KeyGen
	// Spec overrides the kvstore C-Dep (nil keeps kvstore.Spec()); the
	// multi-key ablation swaps in its barrier-C-G baseline here.
	Spec *cdep.Spec
	// Tag is appended to the reported technique name.
	Tag string
	// Scheduler selects the scheduling engine on the sP-SMR and no-rep
	// paths (scan reproduces the paper's bottleneck; index removes it).
	Scheduler psmr.SchedulerKind
	// Tuning switches the batch-first pipeline optimisations off for
	// ablation (batched admission, reader sets, work stealing).
	Tuning psmr.SchedTuning
	// Optimistic enables optimistic (speculative) execution on the
	// sP-SMR path; the result's Extra map then carries the measured
	// hit rate and rollback counters.
	Optimistic bool
	// OptimisticReorder is the optimistic-stream perturbation knob
	// (swap every Nth optimistic batch), for rollback-path ablations.
	OptimisticReorder int
	// ReSpeculate re-admits rollback collateral as fresh speculations
	// (requires Optimistic); the result's Extra map then carries the
	// re-speculation counter.
	ReSpeculate bool
	// CheckpointInterval enables coordinated checkpoints every N
	// decided commands (0 = off); the result's Extra map then carries
	// checkpoint count, quiesce-pause and snapshot-size columns.
	CheckpointInterval int
	// Proxies inserts a proxy-proposer tier of N stateless ingress
	// proxies between clients and the coordinators (0 = direct
	// submission); the result's Extra map then carries the per-proxy
	// queue/batch counters and the leader's frames-per-command ratio.
	Proxies int
	// ProxyBatch and ProxyDelay are the proxy sealing knobs (items per
	// batch; max delay before a partial batch seals).
	ProxyBatch int
	ProxyDelay time.Duration
	// Fanout stripes decided-value delivery across N relay processes
	// per group instead of the coordinator broadcasting serially
	// (0 = direct broadcast).
	Fanout int
	// TraceSample sets the cluster's pipeline-stage trace sampling
	// (0 = the 1/1024 default, 1 = every command, -1 = off). When a
	// tracer runs, the result carries the per-stage breakdown table
	// and the per-stage latency columns in Extra.
	TraceSample int
	// EmbedObs additionally folds the cluster's full metrics-registry
	// snapshot into the result's Extra map (one reg_-prefixed column
	// per sample) — the obs ablation's JSON rows.
	EmbedObs bool
	// JournalOff disables the always-on flight-recorder journal
	// (JournalEvents: -1), the baseline side of the flight gate.
	JournalOff bool
	// TagTuning appends the tuning label to the reported technique
	// name (used by the admission ablation).
	TagTuning bool
	// Duration/Warmup control the measurement interval.
	Duration time.Duration
	Warmup   time.Duration
	// Placement optionally pins hot keys to groups (P-SMR C-G hint).
	Placement map[uint64]int
}

func (s *KVSetup) fillDefaults() {
	if s.Threads <= 0 {
		s.Threads = 1
	}
	if s.Keys <= 0 {
		s.Keys = 100_000
	}
	if s.Clients <= 0 {
		s.Clients = 6
	}
	if s.Window <= 0 {
		s.Window = 50
	}
	if s.Duration <= 0 {
		s.Duration = 2 * time.Second
	}
	if s.Warmup <= 0 {
		s.Warmup = 300 * time.Millisecond
	}
	if s.KeyGen == nil {
		s.KeyGen = workload.Uniform{N: uint64(s.Keys)}
	}
	if s.Gen == nil {
		s.Gen = workload.KVReads
	}
}

// journalEvents maps the JournalOff knob to the cluster config value
// (0 = default journal on, -1 = off).
func journalEvents(off bool) int {
	if off {
		return -1
	}
	return 0
}

// RunKV measures one technique under one key-value workload.
func RunKV(setup KVSetup) (*bench.Result, error) {
	setup.fillDefaults()
	cpu := bench.NewCPUMeter()
	newStore := func() command.Service {
		st := kvstore.New()
		st.Preload(setup.Keys)
		return st
	}
	spec := kvstore.Spec()
	if setup.Spec != nil {
		spec = *setup.Spec
	}

	var (
		invokers      []workload.Invoker
		servers       int
		cleanup       func()
		optCounters   func() []psmr.OptimisticCounters
		ckptCounters  func() []psmr.CheckpointCounters
		orderCounters func() psmr.OrderingCounters
		tracer        func() *obs.Tracer
		registry      func() *obs.Registry
	)
	switch setup.Technique {
	case PSMR, SPSMR, SMR:
		mode := psmr.ModePSMR
		switch setup.Technique {
		case SPSMR:
			mode = psmr.ModeSPSMR
		case SMR:
			mode = psmr.ModeSMR
		}
		cluster, err := psmr.StartCluster(psmr.Config{
			Mode:              mode,
			Workers:           setup.Threads,
			Replicas:          2,
			NewService:        newStore,
			Spec:              spec,
			Placement:         setup.Placement,
			Scheduler:         setup.Scheduler,
			SchedTuning:       setup.Tuning,
			Optimistic:            setup.Optimistic,
			OptimisticReorder:     setup.OptimisticReorder,
			OptimisticReSpeculate: setup.ReSpeculate,
			Checkpoint:        psmr.CheckpointConfig{Interval: setup.CheckpointInterval},
			Proxies:           setup.Proxies,
			ProxyBatch:        setup.ProxyBatch,
			ProxyDelay:        setup.ProxyDelay,
			FanoutDegree:      setup.Fanout,
			CPU:               cpu,
			TraceSample:       setup.TraceSample,
			JournalEvents:     journalEvents(setup.JournalOff),
		})
		if err != nil {
			return nil, fmt.Errorf("start %v cluster: %w", setup.Technique, err)
		}
		cleanup = func() { _ = cluster.Close() }
		servers = 2
		optCounters = cluster.OptimisticCounters
		ckptCounters = cluster.CheckpointCounters
		orderCounters = cluster.OrderingCounters
		tracer = cluster.Tracer
		registry = cluster.Registry
		for i := 0; i < setup.Clients; i++ {
			c, err := cluster.NewClient()
			if err != nil {
				cleanup()
				return nil, err
			}
			invokers = append(invokers, c)
		}
	case NoRep:
		net := transport.NewMemNetwork(1)
		server, err := norep.StartServer(norep.ServerConfig{
			Addr:      "norep/server",
			Workers:   setup.Threads,
			Service:   newStore(),
			Spec:      spec,
			Transport: net,
			Scheduler: setup.Scheduler,
			Tuning:    setup.Tuning,
			CPU:       cpu,
		})
		if err != nil {
			return nil, fmt.Errorf("start no-rep: %w", err)
		}
		cleanup = func() { _ = server.Close(); _ = net.Close() }
		servers = 1
		for i := 0; i < setup.Clients; i++ {
			c, err := direct.NewClient(direct.ClientConfig{
				ID:        uint64(i + 1),
				Target:    "norep/server",
				Transport: net,
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			invokers = append(invokers, c)
		}
	case BDB:
		net := transport.NewMemNetwork(1)
		server, err := lockstore.StartServer(lockstore.ServerConfig{
			Threads:   setup.Threads,
			Service:   newStore(),
			Spec:      kvstore.Spec(),
			Transport: net,
			CPU:       cpu,
		})
		if err != nil {
			return nil, fmt.Errorf("start lockstore: %w", err)
		}
		cleanup = func() { _ = server.Close(); _ = net.Close() }
		servers = 1
		for i := 0; i < setup.Clients; i++ {
			// Clients stick to one server thread, round-robin.
			c, err := direct.NewClient(direct.ClientConfig{
				ID:        uint64(i + 1),
				Target:    lockstore.ThreadAddr("lockstore", i%setup.Threads),
				Transport: net,
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			invokers = append(invokers, c)
		}
	default:
		return nil, fmt.Errorf("unknown technique %v", setup.Technique)
	}
	defer cleanup()

	ops, elapsed, hist := workload.Run(workload.RunnerConfig{
		Clients:        invokers,
		Window:         setup.Window,
		Gen:            setup.Gen(setup.KeyGen),
		Duration:       setup.Duration,
		Warmup:         setup.Warmup,
		Seed:           7,
		OnMeasureStart: cpu.Reset,
	})
	byRole, _ := cpu.Usage()
	tech := setup.Technique.String()
	if setup.Scheduler == psmr.SchedIndex {
		tech += "/index"
	}
	if setup.Optimistic {
		tech += "+opt"
	}
	if setup.ReSpeculate {
		tech += "+respec"
	}
	if setup.TagTuning {
		tech += " " + setup.Tuning.Label()
	}
	if setup.Proxies > 0 {
		tech += fmt.Sprintf(" p=%d", setup.Proxies)
	}
	if setup.Fanout > 0 {
		tech += fmt.Sprintf(" fan=%d", setup.Fanout)
	}
	if setup.Tag != "" {
		tech += " " + setup.Tag
	}
	res := &bench.Result{
		Technique:  tech,
		Threads:    setup.Threads,
		Ops:        ops,
		Elapsed:    elapsed,
		Latency:    hist,
		CPUPercent: serverCPU(byRole, servers),
		CPUByRole:  byRole,
	}
	if setup.CheckpointInterval > 0 && ckptCounters != nil {
		// Checkpoint pause and snapshot-size columns: counts sum across
		// replicas, pauses and sizes report the worst replica.
		var agg psmr.CheckpointCounters
		for _, c := range ckptCounters() {
			agg.Add(c)
		}
		res.Extra = map[string]float64{
			"ckpt_count":         float64(agg.Checkpoints),
			"ckpt_pause_mean_us": float64(agg.MeanPause().Microseconds()),
			"ckpt_pause_max_us":  float64(agg.MaxPause().Microseconds()),
			"ckpt_bytes":         float64(agg.LastBytes),
		}
	}
	if setup.Optimistic && optCounters != nil {
		// Aggregate speculation statistics across replicas into the
		// figure output.
		var agg psmr.OptimisticCounters
		for _, c := range optCounters() {
			agg.Add(c)
		}
		if res.Extra == nil {
			res.Extra = map[string]float64{}
		}
		for k, v := range map[string]float64{
			"opt_hit_rate":     agg.HitRate(),
			"opt_hits":         float64(agg.Hits),
			"opt_misses":       float64(agg.Misses),
			"opt_rollbacks":    float64(agg.Rollbacks),
			"opt_rolled_back":  float64(agg.RolledBack),
			"opt_max_rb_depth": float64(agg.MaxRollbackDepth),
			"opt_ghosts":       float64(agg.GhostEvictions),
			"opt_respecs":      float64(agg.ReSpeculations),
		} {
			res.Extra[k] = v
		}
	}
	if (setup.Proxies > 0 || setup.Fanout > 0) && orderCounters != nil {
		// Ordering-layer columns: how much the proxy tier compresses the
		// leader's ingress (frames per command) and how the proxies'
		// batches filled.
		oc := orderCounters()
		var queued, batches uint64
		for _, p := range oc.Proxies {
			queued += p.Queued
			batches += p.Batches
		}
		if res.Extra == nil {
			res.Extra = map[string]float64{}
		}
		res.Extra["proxy_queued"] = float64(queued)
		res.Extra["proxy_batches"] = float64(batches)
		if batches > 0 {
			res.Extra["proxy_mean_batch"] = float64(queued) / float64(batches)
		}
		res.Extra["leader_frames"] = float64(oc.Leader.InboundFrames)
		res.Extra["leader_cmds"] = float64(oc.Leader.InboundCommands)
		res.Extra["leader_frames_per_cmd"] = oc.Leader.FramesPerCommand()
	}
	if tracer != nil {
		if tr := tracer(); tr != nil {
			// Per-stage latency columns plus the printable breakdown
			// table; the cluster is still live (cleanup is deferred),
			// so the histograms include every fold up to now.
			res.Breakdown = tr.StageBreakdown()
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			for _, st := range obs.Stages() {
				h := tr.StageHistogram(st)
				if h == nil || h.Count() == 0 {
					continue
				}
				key := "trace_" + st.String()
				res.Extra[key+"_count"] = float64(h.Count())
				res.Extra[key+"_mean_us"] = float64(h.Mean().Microseconds())
				res.Extra[key+"_p99_us"] = float64(h.Quantile(0.99).Microseconds())
			}
			if th := tr.TotalHistogram(); th != nil && th.Count() > 0 {
				res.Extra["trace_total_count"] = float64(th.Count())
				res.Extra["trace_total_mean_us"] = float64(th.Mean().Microseconds())
				res.Extra["trace_total_p99_us"] = float64(th.Quantile(0.99).Microseconds())
			}
			sampled, folded, _, _ := tr.Counts()
			res.Extra["trace_sampled"] = float64(sampled)
			res.Extra["trace_folded"] = float64(folded)
		}
	}
	if setup.EmbedObs && registry != nil {
		if reg := registry(); reg != nil {
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			for k, v := range reg.Flatten() {
				res.Extra["reg_"+k] = v
			}
		}
	}
	return res, nil
}

// serverCPU aggregates the roles running on a server node (the paper's
// CPU panels measure the servers): execution threads, scheduler, and
// delivery, averaged per server.
func serverCPU(byRole map[string]float64, servers int) float64 {
	if servers <= 0 {
		servers = 1
	}
	total := byRole["worker"] + byRole["scheduler"] + byRole["learner"]
	return total / float64(servers)
}

// NetFSSetup parameterises one NetFS measurement (paper §VII-H).
type NetFSSetup struct {
	Technique Technique // PSMR, SPSMR or SMR
	// Threads is the worker count; the paper uses 8 path ranges.
	Threads int
	// Files is the number of preloaded files, spread over directories.
	Files int
	// FileSize is each file's initial size in bytes.
	FileSize int
	// Write selects the write-only experiment (reads otherwise).
	Write bool
	// IOSize is the bytes per read/write (paper: 1024).
	IOSize int
	// Clients and Window form the closed loop.
	Clients  int
	Window   int
	Duration time.Duration
	Warmup   time.Duration
}

func (s *NetFSSetup) fillDefaults() {
	if s.Threads <= 0 {
		s.Threads = 8
	}
	if s.Files <= 0 {
		s.Files = 512
	}
	if s.FileSize <= 0 {
		s.FileSize = 64 * 1024
	}
	if s.IOSize <= 0 {
		s.IOSize = 1024
	}
	if s.Clients <= 0 {
		s.Clients = 6
	}
	if s.Window <= 0 {
		s.Window = 50
	}
	if s.Duration <= 0 {
		s.Duration = 2 * time.Second
	}
	if s.Warmup <= 0 {
		s.Warmup = 300 * time.Millisecond
	}
}

// netfsPath returns the canonical path of preloaded file i.
func netfsPath(i int) string {
	return fmt.Sprintf("/data%d/file%d", i%8, i)
}

// RunNetFS measures one technique under the NetFS read or write
// workload.
func RunNetFS(setup NetFSSetup) (*bench.Result, error) {
	setup.fillDefaults()
	cpu := bench.NewCPUMeter()

	const t0 = int64(1_700_000_000_000_000_000)
	newService := func() command.Service {
		svc := netfs.NewService()
		fs := svc.FS()
		for d := 0; d < 8; d++ {
			fs.Mkdir(fmt.Sprintf("/data%d", d), 0o755, t0)
		}
		content := make([]byte, setup.FileSize)
		for i := range content {
			content[i] = byte(i * 31)
		}
		for i := 0; i < setup.Files; i++ {
			path := netfsPath(i)
			fd, _ := fs.Create(path, 0o644, t0)
			fs.Write(fd, 0, content, t0)
			fs.Release(fd)
		}
		return svc
	}

	mode := psmr.ModePSMR
	switch setup.Technique {
	case SPSMR:
		mode = psmr.ModeSPSMR
	case SMR:
		mode = psmr.ModeSMR
	case PSMR:
	default:
		return nil, fmt.Errorf("netfs experiment supports P-SMR/sP-SMR/SMR, got %v", setup.Technique)
	}
	threads := setup.Threads
	if mode == psmr.ModeSMR {
		threads = 1
	}
	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:       mode,
		Workers:    threads,
		Replicas:   2,
		NewService: newService,
		Spec:       netfs.Spec(),
		CPU:        cpu,
	})
	if err != nil {
		return nil, fmt.Errorf("start %v netfs cluster: %w", setup.Technique, err)
	}
	defer cluster.Close()

	// Each client opens every 16th file through the replicated path so
	// all replicas agree on the fd table, then reads/writes at random
	// offsets through those fds.
	var clients []*clientFilesAlias
	for i := 0; i < setup.Clients; i++ {
		inv, err := cluster.NewClient()
		if err != nil {
			return nil, err
		}
		cf := &clientFilesAlias{fs: netfs.NewClient(inv)}
		for f := i; f < setup.Files; f += 16 {
			fd, err := cf.fs.Open(netfsPath(f))
			if err != nil {
				return nil, fmt.Errorf("open %s: %w", netfsPath(f), err)
			}
			cf.fds = append(cf.fds, fd)
		}
		clients = append(clients, cf)
	}

	invokers := make([]workload.Invoker, len(clients))
	for i, cf := range clients {
		invokers[i] = &netfsInvoker{setup: &setup, files: cf}
	}
	ops, elapsed, hist := workload.Run(workload.RunnerConfig{
		Clients:        invokers,
		Window:         setup.Window,
		Gen:            netfsOpGen{},
		Duration:       setup.Duration,
		Warmup:         setup.Warmup,
		Seed:           13,
		OnMeasureStart: cpu.Reset,
	})
	byRole, _ := cpu.Usage()
	return &bench.Result{
		Technique:  setup.Technique.String(),
		Threads:    threads,
		Ops:        ops,
		Elapsed:    elapsed,
		Latency:    hist,
		CPUPercent: serverCPU(byRole, 2),
		CPUByRole:  byRole,
	}, nil
}

// netfsOpGen produces an 8-byte random selector per op; the invoker
// turns it into one read or write call (the runner's Generator/Invoker
// split is keyed to the KV wire, while NetFS calls go through the
// typed client).
type netfsOpGen struct{}

func (netfsOpGen) Next(rng *rand.Rand) workload.Op {
	sel := make([]byte, 8)
	binary.LittleEndian.PutUint64(sel, rng.Uint64())
	return workload.Op{Input: sel}
}

// netfsInvoker adapts one NetFS client to the workload runner: each
// Invoke performs one IOSize-byte read or write on a random open fd at
// a random offset. The fd set is frozen before the workload starts, so
// the concurrent Read/Write calls only ever read the client's fd→path
// map — safe without locking.
type netfsInvoker struct {
	setup *NetFSSetup
	files *clientFilesAlias
}

type clientFilesAlias = struct {
	fs  *netfs.Client
	fds []uint64
}

func (n *netfsInvoker) Invoke(_ command.ID, input []byte) ([]byte, error) {
	sel := uint64(0)
	if len(input) >= 8 {
		sel = binary.LittleEndian.Uint64(input)
	}
	fd := n.files.fds[sel%uint64(len(n.files.fds))]
	offset := sel % uint64(n.setup.FileSize-n.setup.IOSize)
	if n.setup.Write {
		buf := make([]byte, n.setup.IOSize)
		for i := range buf {
			buf[i] = byte(int(sel) + i)
		}
		_, err := n.files.fs.Write(fd, offset, buf, 1_700_000_000_000_000_001)
		return nil, err
	}
	_, err := n.files.fs.Read(fd, offset, uint32(n.setup.IOSize))
	return nil, err
}
