package checkpoint

// Replica state transfer: one request/response pair over the ordinary
// transport. A recovering replica asks any live peer for its newest
// checkpoint plus the decided suffix the peer's learner retains above
// it; the stable-checkpoint retain floor guarantees the suffix starts
// at (or below) the checkpoint instance, so snapshot + suffix is a
// complete replica state. Holes between the fetched suffix and the
// live stream are healed by the learner's gap-retransmission
// machinery, so the transfer itself can stay a single round trip.

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/psmr/psmr/internal/transport"
)

// Wire message kinds.
const (
	msgFetchReq  byte = 1
	msgFetchResp byte = 2
)

// ServerAddr names replica r's state-transfer endpoint.
func ServerAddr(replicaID int) transport.Addr {
	return transport.Addr(fmt.Sprintf("r%d/ckpt", replicaID))
}

// fetchAddr names the transient endpoint a recovering replica fetches
// through.
func fetchAddr(replicaID int) transport.Addr {
	return transport.Addr(fmt.Sprintf("r%d/ckpt-fetch", replicaID))
}

// LogSource serves the retained decided suffix (implemented by
// *paxos.Learner; the indirection keeps this package consensus-
// agnostic).
type LogSource interface {
	// RetainedValues returns the re-encoded decided batches from
	// instance `from` on; start is the first returned instance.
	RetainedValues(from uint64) (values [][]byte, start uint64)
}

// ServerConfig configures a replica's state-transfer endpoint.
type ServerConfig struct {
	// Addr is the endpoint peers fetch from (ServerAddr).
	Addr transport.Addr
	// Transport carries the catch-up messages.
	Transport transport.Transport
	// Store holds the replica's checkpoints.
	Store *Store
	// Log serves the decided suffix above the stable checkpoint.
	Log LogSource
}

// Server answers peer catch-up requests with the newest checkpoint and
// the retained decided suffix.
type Server struct {
	cfg  ServerConfig
	ep   transport.Endpoint
	done chan struct{}
}

// StartServer launches the state-transfer endpoint.
func StartServer(cfg ServerConfig) (*Server, error) {
	ep, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ep: ep, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error {
	err := s.ep.Close()
	<-s.done
	return err
}

func (s *Server) serve() {
	defer close(s.done)
	for frame := range s.ep.Recv() {
		reply, ok := decodeFetchReq(frame)
		if !ok {
			continue
		}
		_ = s.cfg.Transport.Send(reply, s.buildResponse())
	}
}

// buildResponse assembles checkpoint + suffix. Without a checkpoint
// yet, the suffix alone (from the learner's base, which the enabled
// retain floor pins at the start instance) is the complete answer.
// The two reads are not atomic — a checkpoint landing in between can
// advance the retain floor and trim the log past the checkpoint just
// read, leaving a hole the recovering peer could never heal (the gap
// machinery only covers what coordinators still retain) — so a torn
// pair is re-read against the newer checkpoint.
func (s *Server) buildResponse() []byte {
	var (
		cp     Checkpoint
		has    bool
		values [][]byte
		start  uint64
	)
	for attempt := 0; ; attempt++ {
		cp, has = s.cfg.Store.Latest()
		values, start = nil, cp.Instance
		if s.cfg.Log != nil {
			values, start = s.cfg.Log.RetainedValues(cp.Instance)
		}
		if start <= cp.Instance || attempt >= 3 {
			break
		}
		// start > cp.Instance means the log was trimmed past the
		// checkpoint we read, which only the floor of a NEWER stable
		// checkpoint can cause: retry and serve that one.
	}
	buf := []byte{msgFetchResp}
	if has {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, cp.Instance)
	buf = binary.LittleEndian.AppendUint64(buf, cp.Commands)
	buf = binary.LittleEndian.AppendUint64(buf, cp.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cp.State)))
	buf = append(buf, cp.State...)
	buf = binary.LittleEndian.AppendUint64(buf, start)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(values)))
	for _, v := range values {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func encodeFetchReq(reply transport.Addr) []byte {
	buf := []byte{msgFetchReq}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(reply)))
	return append(buf, reply...)
}

func decodeFetchReq(frame []byte) (reply transport.Addr, ok bool) {
	if len(frame) < 3 || frame[0] != msgFetchReq {
		return "", false
	}
	n := int(binary.LittleEndian.Uint16(frame[1:3]))
	if len(frame) < 3+n {
		return "", false
	}
	return transport.Addr(frame[3 : 3+n]), true
}

// FetchResult is one peer's catch-up answer.
type FetchResult struct {
	// Checkpoint is the peer's newest checkpoint; nil when the peer has
	// not checkpointed yet (recovery then replays the suffix from its
	// start).
	Checkpoint *Checkpoint
	// Suffix holds the decided batch values from SuffixStart on.
	Suffix      [][]byte
	SuffixStart uint64
}

func decodeFetchResp(frame []byte) (*FetchResult, bool) {
	if len(frame) < 2+8+8+8+4 || frame[0] != msgFetchResp {
		return nil, false
	}
	has := frame[1] == 1
	cp := Checkpoint{
		Instance:    binary.LittleEndian.Uint64(frame[2:10]),
		Commands:    binary.LittleEndian.Uint64(frame[10:18]),
		Fingerprint: binary.LittleEndian.Uint64(frame[18:26]),
	}
	stateLen := int(binary.LittleEndian.Uint32(frame[26:30]))
	rest := frame[30:]
	if len(rest) < stateLen+12 {
		return nil, false
	}
	cp.State = append([]byte(nil), rest[:stateLen]...)
	rest = rest[stateLen:]
	res := &FetchResult{SuffixStart: binary.LittleEndian.Uint64(rest[:8])}
	count := int(binary.LittleEndian.Uint32(rest[8:12]))
	rest = rest[12:]
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return nil, false
		}
		l := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if len(rest) < l {
			return nil, false
		}
		res.Suffix = append(res.Suffix, append([]byte(nil), rest[:l]...))
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, false
	}
	if has {
		if cp.Fingerprint != Fingerprint(cp.State) {
			return nil, false // corrupt transfer
		}
		if res.SuffixStart > cp.Instance {
			// Torn snapshot/suffix pair (see buildResponse): restoring
			// it would leave an unhealable hole — reject, so Fetch
			// falls through to the next peer.
			return nil, false
		}
		res.Checkpoint = &cp
	}
	return res, true
}

// Fetch asks the peers, in order, for their newest checkpoint and
// decided suffix, returning the first answer within timeout per peer.
// replicaID names the transient reply endpoint.
func Fetch(tr transport.Transport, peers []transport.Addr, replicaID int, timeout time.Duration) (*FetchResult, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ep, err := tr.Listen(fetchAddr(replicaID))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listen fetch endpoint: %w", err)
	}
	defer ep.Close()
	req := encodeFetchReq(ep.Addr())
	var lastErr error
	for _, peer := range peers {
		if err := tr.Send(peer, req); err != nil {
			lastErr = fmt.Errorf("checkpoint: fetch from %s: %w", peer, err)
			continue
		}
		timer := time.NewTimer(timeout)
		select {
		case frame, ok := <-ep.Recv():
			timer.Stop()
			if !ok {
				return nil, transport.ErrClosed
			}
			if res, ok := decodeFetchResp(frame); ok {
				return res, nil
			}
			lastErr = fmt.Errorf("checkpoint: corrupt fetch response from %s", peer)
		case <-timer.C:
			lastErr = fmt.Errorf("checkpoint: fetch from %s timed out", peer)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("checkpoint: no peers to fetch from")
	}
	return nil, lastErr
}
