package checkpoint

import (
	"fmt"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/transport"
)

func TestStoreRetainsNewest(t *testing.T) {
	s := NewStore(2)
	if _, ok := s.Latest(); ok || s.Stable() != 0 {
		t.Fatal("empty store claims a checkpoint")
	}
	for i := uint64(1); i <= 5; i++ {
		state := []byte{byte(i)}
		s.Put(Checkpoint{Instance: i * 10, Commands: i * 100, Fingerprint: Fingerprint(state), State: state})
	}
	if s.Len() != 2 {
		t.Fatalf("retained %d checkpoints, want 2", s.Len())
	}
	cp, ok := s.Latest()
	if !ok || cp.Instance != 50 || cp.Commands != 500 {
		t.Fatalf("latest = %+v ok=%v, want instance 50", cp, ok)
	}
	if s.Stable() != 50 {
		t.Fatalf("stable = %d, want 50", s.Stable())
	}
	// Stale positions (a recovery seed racing a fresh marker) are
	// ignored.
	s.Put(Checkpoint{Instance: 40})
	if cp, _ := s.Latest(); cp.Instance != 50 {
		t.Fatalf("stale Put replaced the newest checkpoint: %d", cp.Instance)
	}
}

func TestDriverIntervalAndCounters(t *testing.T) {
	store := NewStore(2)
	var stable []uint64
	snapCount := 0
	d := NewDriver(Config{Interval: 100}, store,
		func() ([]byte, bool) { snapCount++; return []byte{byte(snapCount)}, true },
		func(inst uint64) { stable = append(stable, inst) })

	d.Tick(99)
	if d.Due() {
		t.Fatal("due before the interval boundary")
	}
	d.Tick(1)
	if !d.Due() {
		t.Fatal("not due at the interval boundary")
	}
	d.Marker(7)()
	if d.Due() {
		t.Fatal("still due after taking the marker")
	}
	// A burst crossing several boundaries yields ONE checkpoint and
	// re-arms past the burst.
	d.Tick(350)
	if !d.Due() {
		t.Fatal("not due after a multi-interval burst")
	}
	d.Marker(42)()
	if d.Due() {
		t.Fatal("due immediately after a burst marker")
	}
	d.Tick(99)
	if d.Due() {
		t.Fatal("burst re-arm boundary too low")
	}
	d.Tick(1)
	if !d.Due() {
		t.Fatal("burst re-arm boundary too high")
	}

	if snapCount != 2 {
		t.Fatalf("%d snapshots, want 2", snapCount)
	}
	cp, _ := store.Latest()
	if cp.Instance != 42 || cp.Commands != 450 || cp.Fingerprint != Fingerprint(cp.State) {
		t.Fatalf("latest checkpoint %+v inconsistent", cp)
	}
	if len(stable) != 2 || stable[0] != 7 || stable[1] != 42 {
		t.Fatalf("stable notifications %v, want [7 42]", stable)
	}
	c := d.Counters()
	if c.Checkpoints != 2 || c.LastBytes != 1 || c.TotalPauseNs == 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestDriverRecordRestore(t *testing.T) {
	d := NewDriver(Config{Interval: 100}, NewStore(1),
		func() ([]byte, bool) { return nil, true }, nil)
	d.RecordRestore(&Checkpoint{Instance: 9, Commands: 250})
	// Intervals keep their global-stream positions: the next boundary
	// after 250 is 350.
	d.Tick(99)
	if d.Due() {
		t.Fatal("due before the re-seeded boundary")
	}
	d.Tick(1)
	if !d.Due() {
		t.Fatal("not due at the re-seeded boundary")
	}
	c := d.Counters()
	if c.Restores != 1 || c.RestoredCommands != 250 {
		t.Fatalf("restore counters %+v", c)
	}
}

// fakeLog serves a synthetic retained suffix.
type fakeLog struct {
	base   uint64
	values [][]byte
}

func (f *fakeLog) RetainedValues(from uint64) ([][]byte, uint64) {
	start := from
	if start < f.base {
		start = f.base
	}
	end := f.base + uint64(len(f.values))
	if start >= end {
		return nil, start
	}
	return f.values[start-f.base:], start
}

func TestFetchServeRoundTrip(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()

	store := NewStore(2)
	state := []byte("state-at-30")
	store.Put(Checkpoint{Instance: 30, Commands: 123, Fingerprint: Fingerprint(state), State: state})
	log := &fakeLog{base: 28}
	for i := 0; i < 7; i++ {
		log.values = append(log.values, []byte(fmt.Sprintf("batch%02d", 28+i)))
	}
	srv, err := StartServer(ServerConfig{
		Addr: ServerAddr(0), Transport: net, Store: store, Log: log,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Close()

	// A dead peer first: Fetch must fall through to the live one.
	res, err := Fetch(net, []transport.Addr{ServerAddr(9), ServerAddr(0)}, 1, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Checkpoint == nil || res.Checkpoint.Instance != 30 || string(res.Checkpoint.State) != "state-at-30" {
		t.Fatalf("fetched checkpoint %+v", res.Checkpoint)
	}
	if res.Checkpoint.Commands != 123 {
		t.Fatalf("fetched commands %d, want 123", res.Checkpoint.Commands)
	}
	// The suffix starts at the checkpoint instance (not the log base).
	if res.SuffixStart != 30 || len(res.Suffix) != 5 || string(res.Suffix[0]) != "batch30" {
		t.Fatalf("suffix %d values from %d (first %q), want 5 from 30",
			len(res.Suffix), res.SuffixStart, res.Suffix[0])
	}
}

func TestFetchWithoutCheckpoint(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	log := &fakeLog{values: [][]byte{[]byte("b0"), []byte("b1")}}
	srv, err := StartServer(ServerConfig{
		Addr: ServerAddr(0), Transport: net, Store: NewStore(1), Log: log,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Close()
	res, err := Fetch(net, []transport.Addr{ServerAddr(0)}, 1, time.Second)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.Checkpoint != nil {
		t.Fatalf("peer without checkpoints returned one: %+v", res.Checkpoint)
	}
	if res.SuffixStart != 0 || len(res.Suffix) != 2 {
		t.Fatalf("suffix %d from %d, want 2 from 0", len(res.Suffix), res.SuffixStart)
	}
}

func TestFetchNoPeers(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	if _, err := Fetch(net, nil, 1, 50*time.Millisecond); err == nil {
		t.Fatal("Fetch with no peers succeeded")
	}
	if _, err := Fetch(net, []transport.Addr{"nowhere"}, 1, 50*time.Millisecond); err == nil {
		t.Fatal("Fetch from a dead peer succeeded")
	}
}
