package checkpoint

// Replica-side assembly shared by every replica kind (sP-SMR,
// optimistic, single-group core): the recovery fetch that must happen
// BEFORE the learner starts, and the plumbing — store, driver, retain
// floor, state-transfer server, decided-suffix replay — wired up once
// the learner is listening. Keeping it here means a transfer-protocol
// fix lands in one place instead of three StartReplica functions.

import (
	"fmt"
	"time"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// Bootstrap is the outcome of a recovery fetch: everything a
// restarting replica needs before and after starting its learner.
type Bootstrap struct {
	// Restored is the peer checkpoint the service was restored from
	// (nil when the peer had none — suffix-only recovery).
	Restored *Checkpoint
	// Suffix holds the peer's retained decided batch values from
	// SuffixStart on, to replay through the local learner.
	Suffix      [][]byte
	SuffixStart uint64
}

// Start returns the learner start instance: the restored checkpoint's
// position, or 0. Nil-safe (fresh start).
func (b *Bootstrap) Start() uint64 {
	if b == nil || b.Restored == nil {
		return 0
	}
	return b.Restored.Instance
}

// Recover bootstraps a restarting replica's service from live peers:
// fetch the newest checkpoint plus decided suffix, restore the
// service. Call it BEFORE starting the learner (and, for optimistic
// replicas, before any speculation is admitted).
func Recover(cfg Config, tr transport.Transport, peers []transport.Addr, replicaID int,
	timeout time.Duration, svc command.Service) (*Bootstrap, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("checkpoint: recovery requires checkpointing enabled")
	}
	res, err := Fetch(tr, peers, replicaID, timeout)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: recover replica %d: %w", replicaID, err)
	}
	boot := &Bootstrap{Suffix: res.Suffix, SuffixStart: res.SuffixStart}
	if res.Checkpoint != nil {
		snap, ok := svc.(command.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("checkpoint: service %T cannot restore a snapshot", svc)
		}
		if err := snap.Restore(res.Checkpoint.State); err != nil {
			return nil, fmt.Errorf("checkpoint: restore snapshot at %d: %w", res.Checkpoint.Instance, err)
		}
		boot.Restored = res.Checkpoint
	}
	return boot, nil
}

// WireConfig assembles one replica's checkpoint plumbing (Wire).
type WireConfig struct {
	Config    Config
	ReplicaID int
	Transport transport.Transport
	// Snapshot serializes the service at the quiesce point (false =
	// shutting down).
	Snapshot func() ([]byte, bool)
	// Floor is the learner's retain-floor setter.
	Floor func(uint64)
	// Log serves the retained decided suffix to fetching peers.
	Log LogSource
	// Replay injects one fetched decided value into the local learner
	// (a paxos decision frame to our own endpoint).
	Replay func(instance uint64, value []byte)
	// Boot is the recovery outcome; nil on a fresh start.
	Boot *Bootstrap
}

// Plumbing is a replica's running checkpoint machinery.
type Plumbing struct {
	Driver *Driver
	Server *Server
}

// Wire builds the store (seeded from the bootstrap), the driver, the
// retain floor, the state-transfer server, and replays the fetched
// suffix. Call it after the learner is listening.
func Wire(cfg WireConfig) (*Plumbing, error) {
	store := NewStore(cfg.Config.Retain)
	driver := NewDriver(cfg.Config, store, cfg.Snapshot, cfg.Floor)
	// Retain everything from our start until the first checkpoint
	// makes an earlier prefix reconstructible.
	cfg.Floor(cfg.Boot.Start())
	if cfg.Boot != nil && cfg.Boot.Restored != nil {
		// Seed the store so this replica can serve peers in turn.
		store.Put(*cfg.Boot.Restored)
		driver.RecordRestore(cfg.Boot.Restored)
		cfg.Floor(cfg.Boot.Restored.Instance)
	}
	srv, err := StartServer(ServerConfig{
		Addr:      ServerAddr(cfg.ReplicaID),
		Transport: cfg.Transport,
		Store:     store,
		Log:       cfg.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: start server: %w", err)
	}
	if cfg.Boot != nil {
		// Replay the fetched decided suffix through the normal delivery
		// path: frames land on our own learner in instance order;
		// anything beyond the live frontier is deduplicated and holes
		// to the live stream heal via gap retransmission.
		for i, value := range cfg.Boot.Suffix {
			cfg.Replay(cfg.Boot.SuffixStart+uint64(i), value)
		}
	}
	return &Plumbing{Driver: driver, Server: srv}, nil
}
