// Package checkpoint implements coordinated checkpoints, stable-log
// truncation and replica state transfer for the parallel replicas:
// the subsystem that lets a replica crash, restart, and rejoin — or a
// fresh replica join — without replaying the whole history.
//
// # Why checkpoints must ride a barrier
//
// The paper's correctness argument (§III-§IV) assumes replicas execute
// forever; a snapshot of a PARALLEL replica is only meaningful at a
// point where every worker thread agrees on the log prefix it has
// applied. The subsystem therefore never stops the world from outside:
// every Interval decided commands the delivery pump injects a quiesce
// marker (sched.Engine.SubmitMarker) into the SAME ordered admission
// stream the commands ride. The marker is a global-barrier token — all
// workers rendezvous at it exactly like at a Global command — so when
// the snapshot closure runs, every command decided before the marker
// has executed and nothing decided after it has started. Because every
// replica counts the same decided stream with the same interval, all
// replicas snapshot at the SAME log position, and because service
// snapshots are deterministic (command.Snapshotter), replicas holding
// the same prefix produce byte-identical snapshots — the checkpoint is
// keyed by (instance, fingerprint) and the fingerprint doubles as a
// cross-replica state check.
//
// Under optimistic execution the engine barrier is not sufficient: the
// speculative overlay may contain effects of commands consensus has
// not sanctioned. But speculative writes live as UNCOMMITTED versions
// in the service's multi-version stores (internal/mvstore), and
// Snapshot reads only committed versions — by construction exactly the
// order-confirmed prefix — so the optimistic executor snapshots
// without any quiesce at all, and a ghost (an optimistically
// delivered, never-decided value) can never leak into a snapshot.
//
// # Stable checkpoints and log truncation
//
// A checkpoint at instance I makes the decided log below I dead weight:
// recovery restores the snapshot and replays only [I, frontier). The
// paxos learner therefore gates trimming on the low-water mark
// min(slowest cursor, stable checkpoint) — SetRetainFloor — instead of
// the blind TrimThreshold count, so learner memory is bounded by the
// checkpoint interval and the retained suffix is always sufficient to
// catch a peer up from the newest snapshot.
//
// # Recovery and state transfer
//
// A restarted (or freshly added) replica fetches the newest checkpoint
// plus the retained decided suffix from any live peer (Fetch / Server,
// new catch-up messages over the ordinary transport), restores the
// service, seeds its own checkpoint store (so it can serve peers in
// turn), starts its learner AT the checkpoint instance and replays the
// suffix through the normal delivery path. Holes between the fetched
// suffix and the live stream are healed by the learner's existing
// gap-retransmission machinery. The at-most-once dedup window is NOT
// part of the snapshot: it is already per-replica best-effort (bounded
// by the dedup window on every replica), and a recovered replica
// simply behaves like one whose window rolled over.
package checkpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config enables and sizes coordinated checkpoints.
type Config struct {
	// Interval is the number of decided commands between checkpoints;
	// zero (or negative) disables the subsystem.
	Interval int
	// Retain is how many checkpoints the in-memory store keeps
	// (recovery always serves the newest; older ones are kept briefly
	// so an in-flight fetch is not invalidated by a concurrent
	// checkpoint). Default 2.
	Retain int
}

// Enabled reports whether checkpointing is on.
func (c Config) Enabled() bool { return c.Interval > 0 }

func (c Config) withDefaults() Config {
	if c.Retain <= 0 {
		c.Retain = 2
	}
	return c
}

// Checkpoint is one coordinated snapshot of a replica's service state.
type Checkpoint struct {
	// Instance is the checkpoint's log position: the next decided
	// instance to apply after restoring State. Everything below it is
	// folded into the snapshot.
	Instance uint64
	// Commands is the number of decided commands folded into State
	// (diagnostics and recovery accounting).
	Commands uint64
	// Fingerprint is Fingerprint(State): replicas snapshotting the same
	// prefix must agree on it byte for byte.
	Fingerprint uint64
	// State is the service snapshot (command.Snapshotter encoding).
	State []byte
}

// Fingerprint folds a snapshot into the checkpoint key's fingerprint
// half (FNV-1a over the deterministic snapshot bytes).
func Fingerprint(state []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range state {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// Store retains a replica's newest checkpoints, keyed by (instance,
// fingerprint). It is safe for concurrent use (the snapshot closure
// writes from a worker thread, the state-transfer server reads from
// its own goroutine).
type Store struct {
	mu     sync.Mutex
	retain int
	cps    []Checkpoint // ascending instance order
}

// NewStore creates a checkpoint store keeping the newest retain
// checkpoints (minimum 1).
func NewStore(retain int) *Store {
	if retain < 1 {
		retain = 1
	}
	return &Store{retain: retain}
}

// Put records a checkpoint, dropping the oldest beyond the retention
// count. Stale positions (at or below the newest stored instance) are
// ignored — recovery seeds the store with a fetched checkpoint and a
// concurrent marker may already have produced a newer one.
func (s *Store) Put(cp Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.cps); n > 0 && cp.Instance <= s.cps[n-1].Instance {
		return
	}
	s.cps = append(s.cps, cp)
	if len(s.cps) > s.retain {
		drop := len(s.cps) - s.retain
		rest := make([]Checkpoint, s.retain)
		copy(rest, s.cps[drop:])
		s.cps = rest
	}
}

// Latest returns the newest checkpoint.
func (s *Store) Latest() (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cps) == 0 {
		return Checkpoint{}, false
	}
	return s.cps[len(s.cps)-1], true
}

// Stable returns the newest checkpoint's instance — the learner's
// retain floor — or 0 when no checkpoint exists yet.
func (s *Store) Stable() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cps) == 0 {
		return 0
	}
	return s.cps[len(s.cps)-1].Instance
}

// Len returns the number of retained checkpoints (tests).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cps)
}

// Counters is a snapshot of one replica's checkpoint statistics.
type Counters struct {
	// Checkpoints taken since start.
	Checkpoints uint64
	// LastBytes / MaxBytes size the snapshots.
	LastBytes uint64
	MaxBytes  uint64
	// LastPauseNs / MaxPauseNs / TotalPauseNs measure the quiesce
	// pause: the time the worker pool stood still while the snapshot
	// was taken (the cost `psmr-bench -exp checkpoint` sweeps).
	LastPauseNs  uint64
	MaxPauseNs   uint64
	TotalPauseNs uint64
	// Restores counts recoveries (snapshot restore + suffix replay)
	// this replica performed at start; RestoredCommands is the decided
	// command count folded into the restored snapshot.
	Restores         uint64
	RestoredCommands uint64
}

// MeanPause returns the average quiesce pause.
func (c Counters) MeanPause() time.Duration {
	if c.Checkpoints == 0 {
		return 0
	}
	return time.Duration(c.TotalPauseNs / c.Checkpoints)
}

// MaxPause returns the longest quiesce pause.
func (c Counters) MaxPause() time.Duration { return time.Duration(c.MaxPauseNs) }

// Add folds another replica's counters into c: counts sum, maxima take
// the max, LastBytes keeps the largest last snapshot.
func (c *Counters) Add(o Counters) {
	c.Checkpoints += o.Checkpoints
	c.TotalPauseNs += o.TotalPauseNs
	c.Restores += o.Restores
	c.RestoredCommands += o.RestoredCommands
	if o.LastBytes > c.LastBytes {
		c.LastBytes = o.LastBytes
	}
	if o.MaxBytes > c.MaxBytes {
		c.MaxBytes = o.MaxBytes
	}
	if o.LastPauseNs > c.LastPauseNs {
		c.LastPauseNs = o.LastPauseNs
	}
	if o.MaxPauseNs > c.MaxPauseNs {
		c.MaxPauseNs = o.MaxPauseNs
	}
}

func (c Counters) String() string {
	return fmt.Sprintf("checkpoints %d (last %dB, pause mean %v max %v), restores %d (%d cmds restored)",
		c.Checkpoints, c.LastBytes, c.MeanPause().Round(time.Microsecond),
		c.MaxPause().Round(time.Microsecond), c.Restores, c.RestoredCommands)
}

// Driver is one replica's checkpoint state: it counts the decided
// command stream, decides when a checkpoint is due, and builds the
// quiesce-marker closures that take the snapshots. Tick/Due/Marker are
// called from the replica's single delivery goroutine; the returned
// marker closure runs on a worker thread (engine barrier) or on the
// delivery goroutine itself (optimistic quiesce), so the counters are
// atomics.
type Driver struct {
	cfg      Config
	store    *Store
	snapshot func() ([]byte, bool) // quiesced-state snapshot; false = unavailable
	onStable func(instance uint64) // typically paxos.Learner.SetRetainFloor

	commands uint64 // decided commands applied (delivery goroutine only)
	nextAt   uint64 // threshold for the next checkpoint

	checkpoints  atomic.Uint64
	lastBytes    atomic.Uint64
	maxBytes     atomic.Uint64
	lastPauseNs  atomic.Uint64
	maxPauseNs   atomic.Uint64
	totalPauseNs atomic.Uint64
	restores     atomic.Uint64
	restoredCmds atomic.Uint64
}

// NewDriver builds a replica's checkpoint driver. snapshot serializes
// the service at the quiesce point (returning false when the replica
// is shutting down); onStable, when non-nil, is told each new stable
// checkpoint instance.
func NewDriver(cfg Config, store *Store, snapshot func() ([]byte, bool), onStable func(uint64)) *Driver {
	cfg = cfg.withDefaults()
	return &Driver{
		cfg:      cfg,
		store:    store,
		snapshot: snapshot,
		onStable: onStable,
		nextAt:   uint64(cfg.Interval),
	}
}

// Store returns the driver's checkpoint store.
func (d *Driver) Store() *Store { return d.store }

// Tick records n decided commands applied by the delivery pump.
func (d *Driver) Tick(n int) {
	if n > 0 {
		d.commands += uint64(n)
	}
}

// Due reports that a checkpoint interval boundary has been crossed;
// the caller takes it at its next quiesce point via Marker.
func (d *Driver) Due() bool { return d.commands >= d.nextAt }

// Marker arms the next interval and returns the quiesce closure for a
// checkpoint at log position nextInstance (the next decided instance
// to apply after the snapshot). Submit it on the engine's barrier
// (sched.Engine.SubmitMarker) or run it at an equivalent quiesce
// point.
func (d *Driver) Marker(nextInstance uint64) func() {
	commands := d.commands
	// Re-arm a full interval past the marker: a burst that crossed
	// several boundaries yields one checkpoint, evenly spaced onwards
	// (still deterministic — every replica counts the same stream).
	d.nextAt = commands + uint64(d.cfg.Interval)
	return func() {
		t0 := time.Now()
		state, ok := d.snapshot()
		if !ok {
			return
		}
		pause := time.Since(t0)
		d.store.Put(Checkpoint{
			Instance:    nextInstance,
			Commands:    commands,
			Fingerprint: Fingerprint(state),
			State:       state,
		})
		d.checkpoints.Add(1)
		d.lastBytes.Store(uint64(len(state)))
		maxU64(&d.maxBytes, uint64(len(state)))
		d.lastPauseNs.Store(uint64(pause))
		maxU64(&d.maxPauseNs, uint64(pause))
		d.totalPauseNs.Add(uint64(pause))
		if d.onStable != nil {
			d.onStable(nextInstance)
		}
	}
}

// RecordRestore seeds the driver after a recovery: the command count
// resumes at the restored checkpoint's (so intervals keep their
// positions in the global stream) and the restore is counted.
func (d *Driver) RecordRestore(cp *Checkpoint) {
	d.commands = cp.Commands
	d.nextAt = cp.Commands + uint64(d.cfg.Interval)
	d.restores.Add(1)
	d.restoredCmds.Add(cp.Commands)
}

// Counters returns a snapshot of the checkpoint statistics.
func (d *Driver) Counters() Counters {
	return Counters{
		Checkpoints:      d.checkpoints.Load(),
		LastBytes:        d.lastBytes.Load(),
		MaxBytes:         d.maxBytes.Load(),
		LastPauseNs:      d.lastPauseNs.Load(),
		MaxPauseNs:       d.maxPauseNs.Load(),
		TotalPauseNs:     d.totalPauseNs.Load(),
		Restores:         d.restores.Load(),
		RestoredCommands: d.restoredCmds.Load(),
	}
}

func maxU64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
