package spsmr

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// testReplica wires one Paxos group and one sP-SMR replica over an
// in-process network; requests are injected by proposing encoded
// frames straight to the group coordinator, responses are collected on
// a probe endpoint.
type testReplica struct {
	net     *transport.MemNetwork
	group   multicast.GroupConfig
	replica *Replica
	probe   transport.Endpoint
}

func startTestReplica(t *testing.T, kind sched.SchedulerKind, workers int, svc command.Service) *testReplica {
	t.Helper()
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })

	const gid = 1
	accAddrs := make([]transport.Addr, 3)
	for i := range accAddrs {
		accAddrs[i] = transport.Addr(fmt.Sprintf("acc%d", i))
	}
	candAddrs := []transport.Addr{"coord0"}
	for i := range accAddrs {
		a, err := paxos.StartAcceptor(paxos.AcceptorConfig{
			GroupID: gid, ID: uint32(i), Addr: accAddrs[i], Transport: net,
		})
		if err != nil {
			t.Fatalf("StartAcceptor: %v", err)
		}
		t.Cleanup(func() { _ = a.Close() })
	}
	co, err := paxos.StartCoordinator(paxos.CoordinatorConfig{
		GroupID:      gid,
		CandidateIdx: 0,
		Candidates:   candAddrs,
		Acceptors:    accAddrs,
		Learners:     []transport.Addr{LearnerAddr(0, gid)},
		Transport:    net,
	})
	if err != nil {
		t.Fatalf("StartCoordinator: %v", err)
	}
	t.Cleanup(func() { _ = co.Close() })

	group := multicast.GroupConfig{ID: gid, Coordinators: candAddrs, Acceptors: accAddrs}
	rep, err := StartReplica(ReplicaConfig{
		ReplicaID: 0,
		Workers:   workers,
		Service:   svc,
		Spec:      kvstore.Spec(),
		Group:     group,
		Transport: net,
		Scheduler: kind,
	})
	if err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { _ = rep.Close() })

	probe, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	return &testReplica{net: net, group: group, replica: rep, probe: probe}
}

// submit proposes one encoded request to the group coordinator.
func (r *testReplica) submit(t *testing.T, req *command.Request) {
	t.Helper()
	req.Reply = "probe"
	frame := paxos.NewProposeFrame(r.group.ID, command.AppendRequest(nil, req))
	if err := r.net.Send(r.group.Coordinators[0], frame); err != nil {
		t.Fatalf("propose: %v", err)
	}
}

func (r *testReplica) recvResponse(t *testing.T) *command.Response {
	t.Helper()
	select {
	case frame := <-r.probe.Recv():
		resp, err := command.DecodeResponse(frame)
		if err != nil {
			t.Fatalf("DecodeResponse: %v", err)
		}
		return resp
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for response")
		return nil
	}
}

// Both engines must drive the full delivery path: ordered stream in,
// executed commands and responses out, global commands included.
func TestReplicaExecutesOrderedStream(t *testing.T) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			st := kvstore.New()
			st.Preload(100)
			r := startTestReplica(t, kind, 4, st)

			// Keyed update, then read it back.
			r.submit(t, &command.Request{
				Client: 1, Seq: 1, Cmd: kvstore.CmdUpdate,
				Input: kvstore.EncodeKeyValue(7, []byte("abcdefgh")),
			})
			if resp := r.recvResponse(t); resp.Seq != 1 || resp.Output[0] != kvstore.OK {
				t.Fatalf("update response %+v", resp)
			}
			r.submit(t, &command.Request{
				Client: 1, Seq: 2, Cmd: kvstore.CmdRead, Input: kvstore.EncodeKey(7),
			})
			resp := r.recvResponse(t)
			value, code := kvstore.DecodeReadOutput(resp.Output)
			if code != kvstore.OK || string(value) != "abcdefgh" {
				t.Fatalf("read back %q code %d", value, code)
			}

			// Global command (insert) through the barrier path, then read.
			r.submit(t, &command.Request{
				Client: 1, Seq: 3, Cmd: kvstore.CmdInsert,
				Input: kvstore.EncodeKeyValue(1000, []byte("inserted")),
			})
			if resp := r.recvResponse(t); resp.Seq != 3 || resp.Output[0] != kvstore.OK {
				t.Fatalf("insert response %+v", resp)
			}
			r.submit(t, &command.Request{
				Client: 1, Seq: 4, Cmd: kvstore.CmdRead, Input: kvstore.EncodeKey(1000),
			})
			resp = r.recvResponse(t)
			value, code = kvstore.DecodeReadOutput(resp.Output)
			if code != kvstore.OK || string(value) != "inserted" {
				t.Fatalf("read back %q code %d", value, code)
			}
		})
	}
}

// A retransmitted request must be answered again but executed once.
func TestReplicaAtMostOnce(t *testing.T) {
	for _, kind := range []sched.SchedulerKind{sched.KindScan, sched.KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			svc := &countingStore{Store: kvstore.New()}
			svc.Preload(10)
			r := startTestReplica(t, kind, 2, svc)

			req := &command.Request{
				Client: 3, Seq: 1, Cmd: kvstore.CmdUpdate,
				Input: kvstore.EncodeKeyValue(1, []byte("xxxxxxxx")),
			}
			r.submit(t, req)
			first := r.recvResponse(t)
			retry := *req
			r.submit(t, &retry)
			second := r.recvResponse(t)
			if first.Output[0] != kvstore.OK || second.Output[0] != kvstore.OK {
				t.Fatalf("responses %v / %v", first.Output, second.Output)
			}
			svc.mu.Lock()
			got := svc.updates
			svc.mu.Unlock()
			if got != 1 {
				t.Fatalf("update executed %d times, want 1", got)
			}
		})
	}
}

func TestReplicaCloseIdempotent(t *testing.T) {
	st := kvstore.New()
	r := startTestReplica(t, sched.KindScan, 1, st)
	if err := r.replica.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.replica.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestLearnerAddrFormat(t *testing.T) {
	if got := LearnerAddr(2, 5); got != "r2/g5" {
		t.Fatalf("LearnerAddr = %q", got)
	}
}

// countingStore counts update executions under a lock (workers may run
// concurrently).
type countingStore struct {
	*kvstore.Store
	mu      sync.Mutex
	updates int
}

func (c *countingStore) Execute(cmd command.ID, input []byte) []byte {
	if cmd == kvstore.CmdUpdate {
		c.mu.Lock()
		c.updates++
		c.mu.Unlock()
	}
	return c.Store.Execute(cmd, input)
}
