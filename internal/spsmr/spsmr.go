// Package spsmr implements semi-parallel state-machine replication
// (sP-SMR, paper §III and §VI): commands are totally ordered in a
// single multicast group and delivered as one sequential stream to a
// scheduler thread, which dispatches independent commands to a pool of
// worker threads and serializes dependent ones. This is the
// CBASE-style architecture [Kotla & Dahlin, DSN'04] that the paper
// positions P-SMR against: execution is parallel, but delivery and
// scheduling run through a single, bottleneck-prone component.
//
// The scheduling engine itself lives in internal/sched and is shared
// with the no-rep baseline; this package adds the ordered delivery
// path (learner + delivery pump).
package spsmr

import (
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/checkpoint"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/sched"
	"github.com/psmr/psmr/internal/transport"
)

// ReplicaConfig configures one sP-SMR replica.
type ReplicaConfig struct {
	// ReplicaID distinguishes replicas (used in endpoint names).
	ReplicaID int
	// Workers is the size of the execution pool (the scheduler thread
	// is extra, matching how the paper counts threads).
	Workers int
	// Service is the deterministic state machine.
	Service command.Service
	// Spec is the service's C-Dep, used for conflict queries.
	Spec cdep.Spec
	// Group is the single multicast group ordering all commands.
	Group multicast.GroupConfig
	// Transport carries replica traffic.
	Transport transport.Transport
	// Scheduler selects the scheduling engine: the scan scheduler
	// (default, the paper's bottleneck) or the index-based early
	// scheduler.
	Scheduler sched.SchedulerKind
	// Tuning carries the batch-first pipeline knobs (batched admission,
	// reader sets, work stealing); the zero value enables everything.
	Tuning sched.Tuning
	// QueueBound sizes the scheduler-to-workers hand-off channel.
	QueueBound int
	// DedupWindow bounds the per-client at-most-once table.
	DedupWindow int
	// Checkpoint enables coordinated checkpoints: every Interval
	// decided commands the delivery pump injects a quiesce marker that
	// rides the engine's global barrier, snapshots the service
	// (command.Snapshotter required), stores it keyed by (instance,
	// fingerprint), and advances the learner's retain floor. The
	// replica also serves peer catch-up at checkpoint.ServerAddr.
	// Checkpointed pumps always use batched admission (markers are
	// ordered on the batch path).
	Checkpoint checkpoint.Config
	// RecoverPeers, when non-empty (requires Checkpoint enabled),
	// bootstraps the replica from a live peer: fetch the newest
	// snapshot plus decided suffix, restore, start delivery at the
	// checkpoint instance and replay.
	RecoverPeers []transport.Addr
	// FetchTimeout bounds each peer fetch during recovery. Default 2s.
	FetchTimeout time.Duration
	// CPU optionally meters scheduler and worker busy time.
	CPU *bench.CPUMeter
	// Trace optionally stamps sampled commands at the learner-delivery,
	// engine-admission and execution stage boundaries.
	Trace *obs.Tracer
	// Journal optionally records learner/engine/checkpoint events in
	// the flight recorder.
	Journal *obs.Journal
}

// Replica is an sP-SMR replica: one learner, one delivery pump feeding
// the single scheduler, and a pool of worker goroutines — plus, with
// checkpointing enabled, a checkpoint driver and the peer catch-up
// server.
type Replica struct {
	learner   *paxos.Learner
	scheduler sched.Engine
	perCmd    bool // deliver one Submit per command (ablation)
	ckpt      *checkpoint.Driver
	ckptSrv   *checkpoint.Server
	journal   *obs.Journal
	replicaID int
	done      chan struct{}
	closeOnce sync.Once
}

// LearnerAddr names the replica's learner endpoint for cluster wiring.
func LearnerAddr(replicaID int, groupID uint32) transport.Addr {
	return transport.Addr(fmt.Sprintf("r%d/g%d", replicaID, groupID))
}

// StartReplica wires the learner and launches the scheduling engine.
// With RecoverPeers set it first bootstraps the service from a live
// peer's checkpoint and replays the decided suffix.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	compiled, err := cdep.Compile(cfg.Spec, max(cfg.Workers, 1))
	if err != nil {
		return nil, fmt.Errorf("spsmr: compile C-Dep: %w", err)
	}
	var snapper command.Snapshotter
	if cfg.Checkpoint.Enabled() {
		var ok bool
		if snapper, ok = cfg.Service.(command.Snapshotter); !ok {
			return nil, fmt.Errorf("spsmr: checkpointing requires the service to implement command.Snapshotter, got %T", cfg.Service)
		}
	}
	var boot *checkpoint.Bootstrap
	if len(cfg.RecoverPeers) > 0 {
		var err error
		boot, err = checkpoint.Recover(cfg.Checkpoint, cfg.Transport, cfg.RecoverPeers,
			cfg.ReplicaID, cfg.FetchTimeout, cfg.Service)
		if err != nil {
			return nil, fmt.Errorf("spsmr: %w", err)
		}
	}
	scheduler, err := sched.StartEngine(sched.Config{
		Kind:        cfg.Scheduler,
		Workers:     cfg.Workers,
		Service:     cfg.Service,
		Compiled:    compiled,
		Transport:   cfg.Transport,
		QueueBound:  cfg.QueueBound,
		DedupWindow: cfg.DedupWindow,
		CPU:         cfg.CPU,
		Trace:       cfg.Trace,
		Journal:     cfg.Journal,
		Tuning:      cfg.Tuning,
	})
	if err != nil {
		return nil, fmt.Errorf("spsmr: start scheduler: %w", err)
	}
	learner, err := paxos.StartLearner(paxos.LearnerConfig{
		GroupID:       cfg.Group.ID,
		Addr:          LearnerAddr(cfg.ReplicaID, cfg.Group.ID),
		Transport:     cfg.Transport,
		Coordinators:  cfg.Group.Coordinators,
		StartInstance: boot.Start(),
		CPU:           cfg.CPU.Role("learner"),
		Trace:         cfg.Trace,
		Journal:       cfg.Journal,
	})
	if err != nil {
		_ = scheduler.Close()
		return nil, fmt.Errorf("spsmr: start learner: %w", err)
	}
	r := &Replica{
		learner:   learner,
		scheduler: scheduler,
		journal:   cfg.Journal,
		replicaID: cfg.ReplicaID,
		perCmd:    cfg.Tuning.NoBatchAdmit,
		done:      make(chan struct{}),
	}
	if cfg.Checkpoint.Enabled() {
		// Markers ride the batch admission path; the per-command
		// ablation knob is overridden while checkpointing.
		r.perCmd = false
		p, err := checkpoint.Wire(checkpoint.WireConfig{
			Config:    cfg.Checkpoint,
			ReplicaID: cfg.ReplicaID,
			Transport: cfg.Transport,
			Snapshot:  func() ([]byte, bool) { return snapper.Snapshot(), true },
			Floor:     learner.SetRetainFloor,
			Log:       learner,
			Replay:    replayTo(cfg.Transport, LearnerAddr(cfg.ReplicaID, cfg.Group.ID), cfg.Group.ID),
			Boot:      boot,
		})
		if err != nil {
			_ = learner.Close()
			_ = scheduler.Close()
			return nil, fmt.Errorf("spsmr: %w", err)
		}
		r.ckpt, r.ckptSrv = p.Driver, p.Server
	}
	go r.deliver()
	return r, nil
}

// replayTo injects fetched decided values into a learner endpoint as
// ordinary decision frames.
func replayTo(tr transport.Transport, addr transport.Addr, groupID uint32) func(uint64, []byte) {
	return func(instance uint64, value []byte) {
		_ = tr.Send(addr, paxos.NewDecisionFrame(groupID, instance, value))
	}
}

// SchedStats reports the engine's work-stealing counters (zeros for
// the scan engine, which does not steal).
func (r *Replica) SchedStats() (stolen uint64, raided int64) {
	return sched.EngineStats(r.scheduler)
}

// GapStalls reports the learner's gap-stall transitions (the anomaly
// watcher's learner-stall signal).
func (r *Replica) GapStalls() uint64 { return r.learner.GapStalls() }

// CheckpointCounters returns the replica's checkpoint statistics
// (zero-valued when checkpointing is disabled).
func (r *Replica) CheckpointCounters() checkpoint.Counters {
	if r.ckpt == nil {
		return checkpoint.Counters{}
	}
	return r.ckpt.Counters()
}

// Close stops the replica and waits for all goroutines. Close is
// idempotent.
func (r *Replica) Close() error {
	var err error
	r.closeOnce.Do(func() {
		if r.ckptSrv != nil {
			_ = r.ckptSrv.Close()
		}
		err = r.learner.Close()
		<-r.done
		_ = r.scheduler.Close()
	})
	return err
}

// deliver is the delivery pump: it turns the ordered batch stream into
// the scheduler's sequential admission stream (the defining property
// of sP-SMR). Whole decided batches are handed to the engine so it
// acquires its shard and ingress locks once per burst instead of once
// per command; NoBatchAdmit falls back to one Submit per command (the
// ablation baseline).
func (r *Replica) deliver() {
	defer close(r.done)
	cursor := r.learner.NewCursor()
	for {
		batch, instance, ok := cursor.Next()
		if !ok {
			return
		}
		if batch.Skip {
			continue
		}
		if r.perCmd {
			for _, item := range batch.Items {
				req, _, err := command.DecodeRequest(item)
				if err != nil {
					continue
				}
				if !r.scheduler.Submit(req) {
					return
				}
			}
			continue
		}
		reqs := make([]*command.Request, 0, len(batch.Items))
		for _, item := range batch.Items {
			req, _, err := command.DecodeRequest(item)
			if err != nil {
				continue
			}
			reqs = append(reqs, req)
		}
		if len(reqs) == 0 {
			continue
		}
		if !r.scheduler.SubmitBatch(reqs) {
			return
		}
		if r.ckpt != nil {
			// Coordinated checkpoint: the marker rides the engine's
			// global barrier right after this batch, so every replica
			// snapshots at the same decided position (instance+1).
			r.ckpt.Tick(len(reqs))
			if r.ckpt.Due() {
				r.journal.Emit(obs.EvCheckpoint, uint64(r.replicaID), instance+1)
				if !r.scheduler.SubmitMarker(r.ckpt.Marker(instance + 1)) {
					return
				}
			}
		}
	}
}
