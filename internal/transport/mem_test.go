package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, ep Endpoint) []byte {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed while waiting for frame")
		}
		return frame
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

func expectNone(t *testing.T, ep Endpoint, wait time.Duration) {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if ok {
			t.Fatalf("unexpected frame %q", frame)
		}
	case <-time.After(wait):
	}
}

func TestMemSendRecv(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	ep, err := n.Listen("a")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if got := ep.Addr(); got != "a" {
		t.Fatalf("Addr = %q, want %q", got, "a")
	}
	if err := n.Send("a", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := string(recvOne(t, ep)); got != "hello" {
		t.Fatalf("recv = %q, want %q", got, "hello")
	}
}

func TestMemOrderingPerLink(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	ep, err := n.Listen("dst")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	const count = 1000
	for i := 0; i < count; i++ {
		if err := n.SendFrom("src", "dst", []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		frame := recvOne(t, ep)
		got := int(frame[0]) | int(frame[1])<<8
		if got != i {
			t.Fatalf("frame %d out of order: got %d", i, got)
		}
	}
}

func TestMemDuplicateListen(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := n.Listen("a"); err != ErrDuplicateAddr {
		t.Fatalf("second Listen err = %v, want ErrDuplicateAddr", err)
	}
}

func TestMemNoRoute(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	if err := n.Send("missing", []byte("x")); err != ErrNoRoute {
		t.Fatalf("Send err = %v, want ErrNoRoute", err)
	}
}

func TestMemPartition(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	ep, err := n.Listen("b")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.SetFault("a", "b", Fault{Partitioned: true})
	if err := n.SendFrom("a", "b", []byte("dropped")); err != nil {
		t.Fatalf("SendFrom: %v", err)
	}
	expectNone(t, ep, 50*time.Millisecond)

	// Healing the partition restores delivery.
	n.SetFault("a", "b", Fault{})
	if err := n.SendFrom("a", "b", []byte("ok")); err != nil {
		t.Fatalf("SendFrom after heal: %v", err)
	}
	if got := string(recvOne(t, ep)); got != "ok" {
		t.Fatalf("recv = %q, want %q", got, "ok")
	}
}

func TestMemDropProbability(t *testing.T) {
	n := NewMemNetwork(42)
	defer n.Close()

	ep, err := n.Listen("b")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.SetFault("a", "b", Fault{DropProb: 0.5})
	const sent = 2000
	for i := 0; i < sent; i++ {
		if err := n.SendFrom("a", "b", []byte{1}); err != nil {
			t.Fatalf("SendFrom: %v", err)
		}
	}
	n.SetFault("a", "b", Fault{})
	if err := n.SendFrom("a", "b", []byte("end")); err != nil {
		t.Fatalf("SendFrom end: %v", err)
	}
	received := 0
	for {
		frame := recvOne(t, ep)
		if string(frame) == "end" {
			break
		}
		received++
	}
	if received < sent/3 || received > 2*sent/3 {
		t.Fatalf("received %d of %d with 50%% drop, outside [1/3, 2/3]", received, sent)
	}
}

func TestMemDuplication(t *testing.T) {
	n := NewMemNetwork(7)
	defer n.Close()

	ep, err := n.Listen("b")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.SetFault("a", "b", Fault{DupProb: 1.0})
	if err := n.SendFrom("a", "b", []byte("x")); err != nil {
		t.Fatalf("SendFrom: %v", err)
	}
	if got := string(recvOne(t, ep)); got != "x" {
		t.Fatalf("first copy = %q", got)
	}
	if got := string(recvOne(t, ep)); got != "x" {
		t.Fatalf("second copy = %q", got)
	}
}

func TestMemDelay(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	ep, err := n.Listen("b")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.SetFault("a", "b", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := n.SendFrom("a", "b", []byte("late")); err != nil {
		t.Fatalf("SendFrom: %v", err)
	}
	recvOne(t, ep)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 25ms", elapsed)
	}
}

func TestMemDropEndpointSimulatesCrash(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	if _, err := n.Listen("victim"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.Drop("victim")
	if err := n.Send("victim", []byte("x")); err != ErrNoRoute {
		t.Fatalf("Send to crashed err = %v, want ErrNoRoute", err)
	}
	// The address can be reused (process restart).
	if _, err := n.Listen("victim"); err != nil {
		t.Fatalf("re-Listen: %v", err)
	}
}

func TestMemEndpointClose(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	ep, err := n.Listen("a")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := <-ep.Recv(); ok {
		t.Fatal("Recv channel open after Close")
	}
	// Double close is safe.
	if err := ep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMemCloseUnblocksReceivers(t *testing.T) {
	n := NewMemNetwork(1)
	ep, err := n.Listen("a")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ep.Recv()
	}()
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("receiver not unblocked by Close")
	}
	if err := n.Send("a", []byte("x")); err != ErrClosed {
		t.Fatalf("Send after Close err = %v, want ErrClosed", err)
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	n := NewMemNetwork(1)
	defer n.Close()

	ep, err := n.Listen("sink")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	const (
		senders = 16
		perSend = 500
	)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			from := Addr(fmt.Sprintf("src%d", id))
			for i := 0; i < perSend; i++ {
				if err := n.SendFrom(from, "sink", []byte{byte(id)}); err != nil {
					t.Errorf("SendFrom: %v", err)
					return
				}
			}
		}(s)
	}
	counts := make(map[byte]int)
	for i := 0; i < senders*perSend; i++ {
		counts[recvOne(t, ep)[0]]++
	}
	wg.Wait()
	for id, c := range counts {
		if c != perSend {
			t.Fatalf("sender %d delivered %d frames, want %d", id, c, perSend)
		}
	}
}
