package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
)

// maxFrameSize bounds a single frame on the wire (16 MiB). On the read
// side a larger length prefix indicates a corrupt stream and kills the
// connection; on the send side an oversized frame is rejected with
// ErrFrameTooLarge before any bytes are written, so the connection
// stays usable.
const maxFrameSize = 16 << 20

// MaxFrameSize is the TCP transport's wire limit for a single frame
// (including the logical-name header).
const MaxFrameSize = maxFrameSize

// TCPNode is the Transport of one process in a TCP deployment. A node
// listens on a single host:port and multiplexes any number of logical
// endpoints over it. Addresses have the form "host:port/logical".
//
// Frames are length-prefixed: 4-byte big-endian total length, 2-byte
// logical-name length, logical name, payload. Outbound connections are
// cached per remote host:port and re-dialled on demand after failures.
type TCPNode struct {
	listener net.Listener
	hostPort string

	mu        sync.Mutex
	endpoints map[string]*tcpEndpoint // keyed by logical name
	conns     map[string]*tcpConn     // keyed by remote host:port
	inbound   map[net.Conn]struct{}   // accepted connections
	closed    bool

	wg sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCPNode starts a node listening on the given host:port. Use ":0" to
// pick a free port; the effective address is available via HostPort.
func NewTCPNode(listen string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("tcp listen: %w", err)
	}
	n := &TCPNode{
		listener:  ln,
		hostPort:  ln.Addr().String(),
		endpoints: make(map[string]*tcpEndpoint),
		conns:     make(map[string]*tcpConn),
		inbound:   make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// HostPort returns the host:port this node listens on.
func (n *TCPNode) HostPort() string { return n.hostPort }

// Addr builds a full address for a logical endpoint on this node.
func (n *TCPNode) Addr(logical string) Addr {
	return Addr(n.hostPort + "/" + logical)
}

// Listen implements Transport. The address must name this node
// ("host:port/logical" with a matching host:port) or be a bare logical
// name, in which case it is resolved against this node.
func (n *TCPNode) Listen(addr Addr) (Endpoint, error) {
	hostPort, logical, err := splitTCPAddr(addr)
	if err != nil {
		return nil, err
	}
	if hostPort == "" {
		hostPort = n.hostPort
	}
	if hostPort != n.hostPort {
		return nil, fmt.Errorf("listen on %q: node is %q: %w", addr, n.hostPort, ErrNoRoute)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[logical]; ok {
		return nil, ErrDuplicateAddr
	}
	ep := &tcpEndpoint{
		node:    n,
		addr:    Addr(hostPort + "/" + logical),
		logical: logical,
		queue:   newFrameQueue(),
	}
	n.endpoints[logical] = ep
	return ep, nil
}

// Send implements Transport.
func (n *TCPNode) Send(to Addr, frame []byte) error {
	hostPort, logical, err := splitTCPAddr(to)
	if err != nil {
		return err
	}
	if hostPort == "" || hostPort == n.hostPort {
		return n.deliverLocal(logical, frame)
	}
	return n.sendRemote(hostPort, logical, frame)
}

func (n *TCPNode) deliverLocal(logical string, frame []byte) error {
	n.mu.Lock()
	ep, ok := n.endpoints[logical]
	n.mu.Unlock()
	if !ok {
		return ErrNoRoute
	}
	if !ep.queue.push(frame) {
		return ErrClosed
	}
	return nil
}

func (n *TCPNode) sendRemote(hostPort, logical string, frame []byte) error {
	if 2+len(logical)+len(frame) > maxFrameSize {
		// Reject before writing: a frame this large would make the
		// receiver's readLoop kill the connection as corrupt.
		return fmt.Errorf("tcp send to %s: frame %d bytes: %w", hostPort, len(frame), ErrFrameTooLarge)
	}
	tc, err := n.getConn(hostPort)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 6+len(logical)+len(frame))
	buf = binary.BigEndian.AppendUint32(buf, uint32(2+len(logical)+len(frame)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(logical)))
	buf = append(buf, logical...)
	buf = append(buf, frame...)

	tc.mu.Lock()
	_, werr := tc.conn.Write(buf)
	tc.mu.Unlock()
	if werr != nil {
		n.dropConn(hostPort, tc)
		return fmt.Errorf("tcp send to %s: %w", hostPort, werr)
	}
	return nil
}

func (n *TCPNode) getConn(hostPort string) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if tc, ok := n.conns[hostPort]; ok {
		n.mu.Unlock()
		return tc, nil
	}
	n.mu.Unlock()

	conn, err := net.Dial("tcp", hostPort)
	if err != nil {
		return nil, fmt.Errorf("tcp dial %s: %w", hostPort, err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		_ = conn.Close()
		return nil, ErrClosed
	}
	if tc, ok := n.conns[hostPort]; ok {
		// Lost the race; keep the existing connection.
		_ = conn.Close()
		return tc, nil
	}
	tc := &tcpConn{conn: conn}
	n.conns[hostPort] = tc
	return tc, nil
}

func (n *TCPNode) dropConn(hostPort string, tc *tcpConn) {
	n.mu.Lock()
	if n.conns[hostPort] == tc {
		delete(n.conns, hostPort)
	}
	n.mu.Unlock()
	_ = tc.conn.Close()
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*tcpEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.endpoints = make(map[string]*tcpEndpoint)
	conns := n.conns
	n.conns = make(map[string]*tcpConn)
	inbound := n.inbound
	n.inbound = make(map[net.Conn]struct{})
	n.mu.Unlock()

	_ = n.listener.Close()
	for _, tc := range conns {
		_ = tc.conn.Close()
	}
	for conn := range inbound {
		_ = conn.Close()
	}
	n.wg.Wait()
	for _, ep := range eps {
		ep.queue.close()
	}
	return nil
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
		_ = conn.Close()
	}()
	var header [4]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:])
		if size < 2 || size > maxFrameSize {
			return
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		nameLen := int(binary.BigEndian.Uint16(body[:2]))
		if 2+nameLen > len(body) {
			return
		}
		logical := string(body[2 : 2+nameLen])
		frame := body[2+nameLen:]
		// Frames for unknown endpoints are dropped, like loss.
		_ = n.deliverLocal(logical, frame)
	}
}

var _ Transport = (*TCPNode)(nil)

type tcpEndpoint struct {
	node    *TCPNode
	addr    Addr
	logical string
	queue   *frameQueue

	closeOnce sync.Once
}

func (e *tcpEndpoint) Addr() Addr          { return e.addr }
func (e *tcpEndpoint) Recv() <-chan []byte { return e.queue.out }

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.node.mu.Lock()
		if e.node.endpoints[e.logical] == e {
			delete(e.node.endpoints, e.logical)
		}
		e.node.mu.Unlock()
		e.queue.close()
	})
	return nil
}

var _ Endpoint = (*tcpEndpoint)(nil)

// splitTCPAddr splits "host:port/logical" into its parts. Logical
// names may themselves contain slashes ("g0/coord0"), so the host:port
// prefix is recognised by its colon: an address whose first segment
// has no colon is a bare logical name on this node.
func splitTCPAddr(addr Addr) (hostPort, logical string, err error) {
	s := string(addr)
	i := strings.IndexByte(s, '/')
	if i < 0 || !strings.Contains(s[:i], ":") {
		return "", s, nil
	}
	hostPort, logical = s[:i], s[i+1:]
	if logical == "" {
		return "", "", errors.New("transport: empty logical name in " + s)
	}
	return hostPort, logical, nil
}
