package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Fault describes the failure behaviour of a directed link in the
// in-process network. The zero value is a perfect link.
type Fault struct {
	// DropProb is the probability in [0,1] that a frame is silently
	// dropped.
	DropProb float64
	// DupProb is the probability in [0,1] that a frame is delivered
	// twice.
	DupProb float64
	// Delay delays every frame on the link by a fixed duration.
	// Delayed frames may be reordered relative to undelayed traffic on
	// other links but stay ordered within the link.
	Delay time.Duration
	// Partitioned drops every frame on the link.
	Partitioned bool
}

// MemNetwork is an in-process simulated network. Endpoints are goroutine
// mailboxes; Send never blocks (each endpoint has an unbounded inbound
// queue). Per-link faults can be injected for tests.
//
// The send path takes the network lock in read mode (routing tables
// change rarely, traffic is constant), so concurrent senders do not
// serialize on the network itself.
//
// The zero value is not usable; create networks with NewMemNetwork.
type MemNetwork struct {
	mu        sync.RWMutex
	rngMu     sync.Mutex // guards rng (only taken on faulty links)
	endpoints map[Addr]*memEndpoint
	faults    map[linkKey]Fault
	defFault  Fault
	rng       *rand.Rand
	closed    bool
	delayWG   sync.WaitGroup
}

type linkKey struct {
	from, to Addr
}

// NewMemNetwork creates an empty in-process network. The seed drives the
// fault-injection randomness so failure tests are reproducible.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		endpoints: make(map[Addr]*memEndpoint),
		faults:    make(map[linkKey]Fault),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Listen implements Transport.
func (n *MemNetwork) Listen(addr Addr) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, ErrDuplicateAddr
	}
	ep := &memEndpoint{net: n, addr: addr, queue: newFrameQueue()}
	n.endpoints[addr] = ep
	return ep, nil
}

// Send implements Transport. Frames to unknown addresses are dropped
// (returning ErrNoRoute) because a crashed process's mailbox disappears;
// protocols must treat this like loss.
func (n *MemNetwork) Send(to Addr, frame []byte) error {
	return n.send("", to, frame)
}

// SendFrom is like Send but attributes the frame to a source address so
// that per-link faults apply. Endpoints returned by Listen use it
// implicitly through their Sender view.
func (n *MemNetwork) SendFrom(from, to Addr, frame []byte) error {
	return n.send(from, to, frame)
}

func (n *MemNetwork) send(from, to Addr, frame []byte) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	ep, ok := n.endpoints[to]
	if !ok {
		n.mu.RUnlock()
		return ErrNoRoute
	}
	fault, hasLink := n.faults[linkKey{from: from, to: to}]
	if !hasLink {
		fault = n.defFault
	}
	drop := fault.Partitioned
	dup := false
	if !drop && (fault.DropProb > 0 || fault.DupProb > 0) {
		n.rngMu.Lock()
		if fault.DropProb > 0 {
			drop = n.rng.Float64() < fault.DropProb
		}
		if !drop && fault.DupProb > 0 {
			dup = n.rng.Float64() < fault.DupProb
		}
		n.rngMu.Unlock()
	}
	delay := fault.Delay
	if !drop && delay > 0 {
		n.delayWG.Add(1)
	}
	n.mu.RUnlock()

	if drop {
		return nil
	}
	if delay > 0 {
		go func() {
			defer n.delayWG.Done()
			time.Sleep(delay)
			ep.queue.push(frame)
			if dup {
				ep.queue.push(frame)
			}
		}()
		return nil
	}
	ep.queue.push(frame)
	if dup {
		ep.queue.push(frame)
	}
	return nil
}

// SetFault installs a fault on the directed link from -> to. Faults only
// apply to frames sent with a known source (SendFrom or endpoint
// senders). Passing the zero Fault restores a perfect link.
func (n *MemNetwork) SetFault(from, to Addr, f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == (Fault{}) {
		delete(n.faults, linkKey{from: from, to: to})
		return
	}
	n.faults[linkKey{from: from, to: to}] = f
}

// SetDefaultFault installs a fault applied to every link without an
// explicit per-link fault, including frames sent without a source.
func (n *MemNetwork) SetDefaultFault(f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defFault = f
}

// Drop unregisters the endpoint at addr, simulating a process crash: its
// mailbox vanishes and in-flight frames to it are lost.
func (n *MemNetwork) Drop(addr Addr) {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	if ok {
		delete(n.endpoints, addr)
	}
	n.mu.Unlock()
	if ok {
		ep.queue.close()
	}
}

// Close implements Transport.
func (n *MemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.endpoints = make(map[Addr]*memEndpoint)
	n.mu.Unlock()

	n.delayWG.Wait()
	for _, ep := range eps {
		ep.queue.close()
	}
	return nil
}

var _ Transport = (*MemNetwork)(nil)

type memEndpoint struct {
	net   *MemNetwork
	addr  Addr
	queue *frameQueue

	closeOnce sync.Once
}

func (e *memEndpoint) Addr() Addr          { return e.addr }
func (e *memEndpoint) Recv() <-chan []byte { return e.queue.out }

func (e *memEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.net.mu.Lock()
		if e.net.endpoints[e.addr] == e {
			delete(e.net.endpoints, e.addr)
		}
		e.net.mu.Unlock()
		e.queue.close()
	})
	return nil
}

var _ Endpoint = (*memEndpoint)(nil)
