// Trace-context tags ride transport frames as opaque trailing bytes:
// the transport must deliver a tagged frame bit-exactly (TCP framing
// and the in-memory network alike), reject oversized tagged frames the
// same way it rejects oversized payloads, and pass legacy untagged
// frames through a tag-aware receiver unchanged. This is the wire half
// of the cross-process tracing contract; the tag codec itself is
// tested in internal/obs.
package transport_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

func tagged(t *testing.T, frame []byte) []byte {
	t.Helper()
	tag := obs.WireTag{Client: 3, Seq: 99}
	tag.Stages = 1<<obs.StageSubmit | 1<<obs.StageProxySeal
	tag.Durations[obs.StageProxySeal] = 12_345
	out := obs.AppendWireTag(append([]byte(nil), frame...), tag)
	if len(out) == len(frame) {
		t.Fatal("tag not appended")
	}
	return out
}

func recvFrame(t *testing.T, ep transport.Endpoint) []byte {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed while waiting for frame")
		}
		return frame
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

func checkTagRoundTrip(t *testing.T, sent, got []byte, body []byte) {
	t.Helper()
	if !bytes.Equal(got, sent) {
		t.Fatalf("tagged frame mutated in flight: got %d bytes, want %d", len(got), len(sent))
	}
	tag, rest, ok := obs.SplitWireTag(got)
	if !ok {
		t.Fatal("tag lost in flight")
	}
	if tag.Client != 3 || tag.Seq != 99 || tag.Durations[obs.StageProxySeal] != 12_345 {
		t.Fatalf("tag corrupted: %+v", tag)
	}
	if !bytes.Equal(rest, body) {
		t.Fatalf("frame body corrupted: %q", rest)
	}
}

func TestMemTaggedFrameRoundTrip(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	ep, err := net.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	body := []byte("propose body")
	sent := tagged(t, body)
	if err := net.Send("svc", sent); err != nil {
		t.Fatalf("Send: %v", err)
	}
	checkTagRoundTrip(t, sent, recvFrame(t, ep), body)
}

func TestTCPTaggedFrameRoundTrip(t *testing.T) {
	// Two nodes: same-node sends take the deliverLocal shortcut, so a
	// remote pair is what actually exercises the wire encode/decode.
	a, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	defer a.Close()
	b, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	defer b.Close()
	ep, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	body := bytes.Repeat([]byte("x"), 10_000)
	sent := tagged(t, body)
	if err := a.Send(b.Addr("svc"), sent); err != nil {
		t.Fatalf("Send: %v", err)
	}
	checkTagRoundTrip(t, sent, recvFrame(t, ep), body)
}

func TestTCPOversizedTaggedFrameRejected(t *testing.T) {
	a, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	defer a.Close()
	b, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	defer b.Close()
	if _, err := b.Listen("svc"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	// A frame at the limit grows past it once tagged: the transport
	// must reject it cleanly, not truncate the tag.
	frame := tagged(t, make([]byte, transport.MaxFrameSize-10))
	if len(frame) <= transport.MaxFrameSize {
		t.Fatalf("tagged frame is %d bytes, want > %d", len(frame), transport.MaxFrameSize)
	}
	err = a.Send(b.Addr("svc"), frame)
	if !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("oversized tagged send error = %v, want ErrFrameTooLarge", err)
	}
}

func TestLegacyUntaggedFrameUnchanged(t *testing.T) {
	// A tag-aware receiver must treat untagged traffic as a no-op:
	// AbsorbTags on a frame that never carried a tag returns it intact
	// (the zero entry-count tail of the real codecs can never alias the
	// tag magic).
	net := transport.NewMemNetwork(1)
	defer net.Close()
	ep, err := net.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	legacy := append(bytes.Repeat([]byte{0xB7}, 32), 0, 0, 0, 0)
	if err := net.Send("svc", legacy); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := recvFrame(t, ep)
	tr := obs.NewTracer(obs.TracerConfig{Sample: 1, Final: obs.StageExecEnd})
	if out := tr.AbsorbTags(got); !bytes.Equal(out, legacy) {
		t.Fatalf("legacy frame mutated by AbsorbTags: %x", out)
	}
	if sampled, _, _, _ := tr.Counts(); sampled != 0 {
		t.Fatal("legacy frame claimed a trace slot")
	}
}
