package transport

import "sync"

// frameQueue is an unbounded MPSC queue of frames. Senders never block,
// which prevents protocol deadlocks where two components send to each
// other through bounded channels. The consumer side is exposed as a
// channel fed by a pump goroutine so that receivers can select over it.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames [][]byte
	closed bool

	out  chan []byte
	stop chan struct{} // closed by close(), unblocks the pump
	done chan struct{} // closed by the pump on exit
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{
		// A buffered output channel amortises scheduler wake-ups under
		// load; the queue behind it is still unbounded.
		out:  make(chan []byte, 512),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	go q.pump()
	return q
}

// push enqueues one frame. It reports false if the queue is closed.
func (q *frameQueue) push(frame []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.frames = append(q.frames, frame)
	q.cond.Signal()
	return true
}

// close stops the queue, discards pending frames, closes the output
// channel, and waits for the pump goroutine to exit.
func (q *frameQueue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.stop)
		q.cond.Signal()
	}
	q.mu.Unlock()
	<-q.done
}

// pump moves frames from the internal slice to the output channel.
func (q *frameQueue) pump() {
	defer close(q.done)
	defer close(q.out)
	for {
		q.mu.Lock()
		for len(q.frames) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		frame := q.frames[0]
		q.frames[0] = nil
		q.frames = q.frames[1:]
		// Release the backing array once drained so a burst does not
		// pin memory forever.
		if len(q.frames) == 0 && cap(q.frames) > 1024 {
			q.frames = nil
		}
		q.mu.Unlock()

		select {
		case q.out <- frame:
		case <-q.stop:
			return
		}
	}
}
