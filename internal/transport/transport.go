// Package transport provides the message-passing substrate used by every
// protocol in this repository: an in-process simulated network with fault
// injection (used by tests, benchmarks and the in-process cluster) and a
// TCP transport with length-prefixed frames (used by the cmd/ daemons).
//
// All protocols are written against the Transport/Endpoint interfaces and
// never assume reliable or ordered delivery beyond what the implementation
// documents: frames may be dropped, delayed or duplicated by a faulty
// in-process network, and TCP connections may fail. Protocol correctness
// under loss is the job of the protocol (retransmission in Paxos and in
// the client proxies), not of the transport.
package transport

import "errors"

// Addr identifies a logical endpoint. The in-process network treats the
// address as an opaque key. The TCP transport expects the form
// "host:port/logical", where host:port names the owning process and
// logical names the endpoint within it.
type Addr string

// Errors returned by transports.
var (
	// ErrClosed is returned when sending through or listening on a
	// transport that has been closed.
	ErrClosed = errors.New("transport: closed")
	// ErrDuplicateAddr is returned by Listen when the address is taken.
	ErrDuplicateAddr = errors.New("transport: address already in use")
	// ErrNoRoute is returned when the destination cannot be resolved.
	ErrNoRoute = errors.New("transport: no route to address")
	// ErrFrameTooLarge is returned by Send when a frame exceeds the
	// transport's wire limit (see MaxFrameSize); nothing is written and
	// the connection remains usable.
	ErrFrameTooLarge = errors.New("transport: frame exceeds wire limit")
)

// Transport sends frames between logical endpoints.
//
// Send is asynchronous and best-effort: a nil error means the frame was
// accepted for delivery, not that it arrived. Implementations must be
// safe for concurrent use.
type Transport interface {
	// Listen registers a logical endpoint and returns it. The endpoint
	// receives every frame addressed to addr from that point on.
	Listen(addr Addr) (Endpoint, error)
	// Send enqueues one frame for delivery to the endpoint listening on
	// the destination address. The caller retains ownership of nothing:
	// the frame must not be modified after Send returns.
	Send(to Addr, frame []byte) error
	// Close releases the transport and closes all endpoints created
	// through it.
	Close() error
}

// Endpoint is a registered receiver of frames.
type Endpoint interface {
	// Addr returns the address this endpoint is listening on.
	Addr() Addr
	// Recv returns the channel of inbound frames. The channel is closed
	// when the endpoint is closed.
	Recv() <-chan []byte
	// Close unregisters the endpoint and closes its receive channel.
	Close() error
}
