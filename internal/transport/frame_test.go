package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// recvFrame waits for one frame on ep or fails the test.
func recvFrame(t *testing.T, ep Endpoint) []byte {
	t.Helper()
	select {
	case frame, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed while waiting for a frame")
		}
		return frame
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a frame")
		return nil
	}
}

// TestTCPFrameRoundTrip sends frames of awkward sizes (empty, 1 byte,
// odd, 64 KiB) across a real TCP connection and checks byte-identical
// delivery in order, including logical names containing slashes.
func TestTCPFrameRoundTrip(t *testing.T) {
	a, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ep, err := b.Listen("g0/coord0")
	if err != nil {
		t.Fatal(err)
	}

	sizes := []int{0, 1, 7, 1024, 64 << 10}
	var want [][]byte
	for i, size := range sizes {
		frame := make([]byte, size)
		for j := range frame {
			frame[j] = byte(i + j)
		}
		want = append(want, frame)
		if err := a.Send(b.Addr("g0/coord0"), frame); err != nil {
			t.Fatalf("send %d bytes: %v", size, err)
		}
	}
	for i, w := range want {
		got := recvFrame(t, ep)
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d: got %d bytes, want %d (content mismatch)", i, len(got), len(w))
		}
	}
	if got := ep.Addr(); got != b.Addr("g0/coord0") {
		t.Fatalf("endpoint addr = %q, want %q", got, b.Addr("g0/coord0"))
	}
}

// TestTCPOversizedFrameRejected pins the 16 MiB wire limit: the sender
// rejects an oversized frame with ErrFrameTooLarge WITHOUT writing it,
// and the connection stays usable for subsequent frames.
func TestTCPOversizedFrameRejected(t *testing.T) {
	a, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ep, err := b.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}

	// Prime the connection so the oversized send exercises an
	// established conn, not the dial path.
	if err := a.Send(b.Addr("sink"), []byte("before")); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, ep); string(got) != "before" {
		t.Fatalf("primer frame = %q", got)
	}

	huge := make([]byte, MaxFrameSize) // + logical name + length field > limit
	err = a.Send(b.Addr("sink"), huge)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized send error = %v, want ErrFrameTooLarge", err)
	}

	// A frame at exactly the limit is fine; the connection survived.
	okSize := MaxFrameSize - 2 - len("sink")
	atLimit := make([]byte, okSize)
	atLimit[0], atLimit[okSize-1] = 0xAB, 0xCD
	if err := a.Send(b.Addr("sink"), atLimit); err != nil {
		t.Fatalf("at-limit send: %v", err)
	}
	got := recvFrame(t, ep)
	if len(got) != okSize || got[0] != 0xAB || got[okSize-1] != 0xCD {
		t.Fatalf("at-limit frame corrupted: %d bytes", len(got))
	}
}

// TestTCPCloseDuringSend hammers Send from several goroutines while the
// node closes: no panics, and sends eventually fail with ErrClosed (or
// a connection error from the teardown race) instead of hanging.
func TestTCPCloseDuringSend(t *testing.T) {
	a, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Listen("sink"); err != nil {
		t.Fatal(err)
	}

	to := b.Addr("sink")
	frame := make([]byte, 512)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				if err := a.Send(to, frame); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					// Teardown can also surface as a raw write error on
					// an already-dialled conn; the NEXT attempt must see
					// the closed transport.
					if err2 := a.Send(to, frame); errors.Is(err2, ErrClosed) {
						return
					}
				}
			}
		}()
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let the senders reach steady state
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("senders did not observe the closed transport")
	}
	// Close is idempotent and sends after close fail immediately.
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := a.Send(to, frame); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
}

// TestMemCloseDuringSend is the in-process analogue: concurrent sends
// racing endpoint teardown either succeed or fail cleanly, never panic.
func TestMemCloseDuringSend(t *testing.T) {
	net := NewMemNetwork(1)
	defer net.Close()
	ep, err := net.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				if err := net.Send("sink", []byte("x")); err != nil {
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := ep.Close(); err != nil {
		t.Fatalf("endpoint close: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("senders did not observe the closed endpoint")
	}
}
