package transport

import (
	"bytes"
	"testing"
	"time"
)

func newTestNode(t *testing.T) *TCPNode {
	t.Helper()
	n, err := NewTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPNode: %v", err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestTCPLocalDelivery(t *testing.T) {
	n := newTestNode(t)
	ep, err := n.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := n.Send(n.Addr("svc"), []byte("local")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := string(recvOne(t, ep)); got != "local" {
		t.Fatalf("recv = %q", got)
	}
}

func TestTCPRemoteDelivery(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	ep, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 100_000)
	if err := a.Send(b.Addr("svc"), payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := recvOne(t, ep)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestTCPManyFramesOrdered(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	ep, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	const count = 2000
	for i := 0; i < count; i++ {
		frame := []byte{byte(i), byte(i >> 8)}
		if err := a.Send(b.Addr("svc"), frame); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		frame := recvOne(t, ep)
		if got := int(frame[0]) | int(frame[1])<<8; got != i {
			t.Fatalf("frame %d out of order: got %d", i, got)
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	epA, err := a.Listen("svc")
	if err != nil {
		t.Fatalf("Listen a: %v", err)
	}
	epB, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen b: %v", err)
	}
	if err := a.Send(b.Addr("svc"), []byte("ping")); err != nil {
		t.Fatalf("Send ping: %v", err)
	}
	if got := string(recvOne(t, epB)); got != "ping" {
		t.Fatalf("b recv = %q", got)
	}
	if err := b.Send(a.Addr("svc"), []byte("pong")); err != nil {
		t.Fatalf("Send pong: %v", err)
	}
	if got := string(recvOne(t, epA)); got != "pong" {
		t.Fatalf("a recv = %q", got)
	}
}

func TestTCPUnknownLogicalDropped(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)

	// Nothing listening on "ghost": the frame must be silently dropped
	// without killing the connection.
	if err := a.Send(b.Addr("ghost"), []byte("lost")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ep, err := b.Listen("svc")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := a.Send(b.Addr("svc"), []byte("ok")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := string(recvOne(t, ep)); got != "ok" {
		t.Fatalf("recv = %q", got)
	}
}

func TestTCPSendToDeadNode(t *testing.T) {
	a := newTestNode(t)
	b := newTestNode(t)
	addr := b.Addr("svc")
	if err := b.Close(); err != nil {
		t.Fatalf("Close b: %v", err)
	}
	// Dial fails or the write eventually errors; either way Send must
	// not hang and should eventually report a problem.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(addr, []byte("x")); err != nil {
			return
		}
	}
	t.Fatal("Send to dead node never returned an error")
}

func TestTCPListenWrongHost(t *testing.T) {
	a := newTestNode(t)
	if _, err := a.Listen("1.2.3.4:9/svc"); err == nil {
		t.Fatal("Listen on foreign host:port succeeded, want error")
	}
}

func TestSplitTCPAddr(t *testing.T) {
	tests := []struct {
		give         Addr
		wantHostPort string
		wantLogical  string
		wantErr      bool
	}{
		{give: "127.0.0.1:80/a", wantHostPort: "127.0.0.1:80", wantLogical: "a"},
		{give: "bare", wantHostPort: "", wantLogical: "bare"},
		{give: "g0/coord0", wantHostPort: "", wantLogical: "g0/coord0"},
		{give: "h:1/a/b", wantHostPort: "h:1", wantLogical: "a/b"},
		{give: "h:1/", wantErr: true},
	}
	for _, tt := range tests {
		hostPort, logical, err := splitTCPAddr(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("splitTCPAddr(%q): no error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("splitTCPAddr(%q): %v", tt.give, err)
			continue
		}
		if hostPort != tt.wantHostPort || logical != tt.wantLogical {
			t.Errorf("splitTCPAddr(%q) = (%q, %q), want (%q, %q)",
				tt.give, hostPort, logical, tt.wantHostPort, tt.wantLogical)
		}
	}
}
