// Package bench provides the measurement machinery used by the
// evaluation harness: latency histograms with CDF extraction, throughput
// accounting, and busy-time CPU metering per component role.
//
// The CPU meter reproduces what the paper's CPU panels show (Figures 3
// and 4): each component loop (worker, scheduler, coordinator, acceptor)
// accrues the wall time it spends processing, excluding time blocked on
// channels. The harness reports Σbusy/wall × 100 per role, so "the
// scheduler is CPU-bound" appears as the scheduler role pinned near 100%.
package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CPUMeter accumulates busy time for a set of named roles. It is safe
// for concurrent use; the per-role counters are atomics.
type CPUMeter struct {
	mu    sync.Mutex
	roles map[string]*atomic.Int64
	start time.Time
}

// NewCPUMeter creates a meter; the observation window starts now.
func NewCPUMeter() *CPUMeter {
	return &CPUMeter{
		roles: make(map[string]*atomic.Int64),
		start: time.Now(),
	}
}

// Role returns the busy-time counter for a role, creating it on first
// use. Components hold on to the returned RoleMeter; Busy/Done pairs are
// a few nanoseconds of overhead. Role on a nil meter returns a nil
// RoleMeter, whose methods are no-ops, so metering is always optional.
func (m *CPUMeter) Role(name string) *RoleMeter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.roles[name]
	if !ok {
		c = new(atomic.Int64)
		m.roles[name] = c
	}
	return &RoleMeter{busy: c}
}

// Reset restarts the observation window and zeroes all counters.
func (m *CPUMeter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.roles {
		c.Store(0)
	}
	m.start = time.Now()
}

// Snapshot returns the accumulated busy time per role plus the start
// of the observation window. The map lock is held only while the role
// pointers are copied — the atomic counters are read outside it — so
// scraping never contends with Role registration, let alone the
// worker loops.
func (m *CPUMeter) Snapshot() (busy map[string]time.Duration, since time.Time) {
	if m == nil {
		return nil, time.Time{}
	}
	m.mu.Lock()
	counters := make(map[string]*atomic.Int64, len(m.roles))
	for name, c := range m.roles {
		counters[name] = c
	}
	since = m.start
	m.mu.Unlock()

	busy = make(map[string]time.Duration, len(counters))
	for name, c := range counters {
		busy[name] = time.Duration(c.Load())
	}
	return busy, since
}

// Usage returns per-role CPU usage as a percentage of one core
// (100 = one core fully busy, 400 = four cores' worth) plus the total.
func (m *CPUMeter) Usage() (perRole map[string]float64, total float64) {
	busy, since := m.Snapshot()
	wall := time.Since(since).Seconds()
	if wall <= 0 {
		wall = math.SmallestNonzeroFloat64
	}
	perRole = make(map[string]float64, len(busy))
	for name, d := range busy {
		pct := d.Seconds() / wall * 100
		perRole[name] = pct
		total += pct
	}
	return perRole, total
}

// RoleMeter accrues busy time for one role.
type RoleMeter struct {
	busy *atomic.Int64
}

// Add accrues a pre-measured busy duration. The canonical metering
// pattern is an explicit start/Add pair around the processing block
// (t0 := time.Now(); ...; meter.Add(time.Since(t0))) — a closure-based
// Busy()/stop() API used to exist but cost one allocation per loop
// iteration on hot paths.
func (r *RoleMeter) Add(d time.Duration) {
	if r == nil {
		return
	}
	r.busy.Add(int64(d))
}

// Histogram is a log-bucketed latency histogram covering 1µs..~17min
// with ~4% relative resolution. It is safe for concurrent recording.
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	maxNs   atomic.Int64
}

const (
	// 64 major powers-of-two ranges × 16 minor divisions.
	minorBits   = 4
	minorCount  = 1 << minorBits
	majorCount  = 40
	bucketCount = majorCount * minorCount
)

// bucketIndex maps a duration to a bucket. Sub-microsecond values land
// in bucket 0.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < minorCount {
		if us < 0 {
			us = 0
		}
		return int(us)
	}
	major := 63 - leadingZeros64(uint64(us))
	minor := (us >> (uint(major) - minorBits)) - minorCount
	idx := int(major-minorBits+1)*minorCount + int(minor)
	if idx >= bucketCount {
		return bucketCount - 1
	}
	return idx
}

// bucketValue returns the representative duration of a bucket (its lower
// bound).
func bucketValue(idx int) time.Duration {
	major := idx / minorCount
	minor := idx % minorCount
	if major == 0 {
		return time.Duration(minor) * time.Microsecond
	}
	us := (int64(minorCount) + int64(minor)) << (uint(major) - 1)
	return time.Duration(us) * time.Microsecond
}

func leadingZeros64(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of all observations in nanoseconds (the
// Prometheus summary `_sum` series, which must not be a mean×count
// reconstruction).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile returns the latency at quantile q in [0,1].
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen int64
	for i := 0; i < bucketCount; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			return bucketValue(i)
		}
	}
	return h.Max()
}

// CDFPoint is one point of a cumulative latency distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns the cumulative distribution over the populated buckets.
func (h *Histogram) CDF() []CDFPoint {
	n := h.count.Load()
	if n == 0 {
		return nil
	}
	var (
		points []CDFPoint
		seen   int64
	)
	for i := 0; i < bucketCount; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		points = append(points, CDFPoint{
			Latency:  bucketValue(i),
			Fraction: float64(seen) / float64(n),
		})
	}
	return points
}

// Merge adds the contents of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < bucketCount; i++ {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur := h.maxNs.Load()
		om := other.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Result summarises one benchmark run of one technique.
type Result struct {
	Technique  string
	Threads    int
	Ops        int64
	Elapsed    time.Duration
	Latency    *Histogram
	CPUPercent float64            // total across roles
	CPUByRole  map[string]float64 // per role
	Extra      map[string]float64 // experiment-specific values
	Breakdown  string             // per-stage latency table (tracing on)
}

// Kcps returns throughput in kilo-commands per second, the paper's unit.
func (r *Result) Kcps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1000
}

// String renders a single result line.
func (r *Result) String() string {
	mean := time.Duration(0)
	p99 := time.Duration(0)
	if r.Latency != nil {
		mean = r.Latency.Mean()
		p99 = r.Latency.Quantile(0.99)
	}
	return fmt.Sprintf("%-10s thr=%d  %9.1f Kcps  mean=%8s  p99=%8s  cpu=%6.1f%%",
		r.Technique, r.Threads, r.Kcps(), mean.Round(time.Microsecond), p99.Round(time.Microsecond), r.CPUPercent)
}

// Table formats a set of results with a normalised throughput column
// relative to the named baseline technique (matching the paper's "N X"
// annotations).
func Table(results []*Result, baseline string) string {
	var base float64
	for _, r := range results {
		if r.Technique == baseline {
			base = r.Kcps()
		}
	}
	out := fmt.Sprintf("%-10s %8s %12s %10s %12s %12s %10s\n",
		"technique", "threads", "Kcps", "vs "+baseline, "mean lat", "p99 lat", "cpu%")
	for _, r := range results {
		norm := math.NaN()
		if base > 0 {
			norm = r.Kcps() / base
		}
		mean, p99 := time.Duration(0), time.Duration(0)
		if r.Latency != nil {
			mean = r.Latency.Mean()
			p99 = r.Latency.Quantile(0.99)
		}
		out += fmt.Sprintf("%-10s %8d %12.1f %9.2fX %12s %12s %10.1f\n",
			r.Technique, r.Threads, r.Kcps(), norm,
			mean.Round(time.Microsecond), p99.Round(time.Microsecond), r.CPUPercent)
	}
	return out
}

// SortedRoles returns role names ordered for stable printing.
func SortedRoles(byRole map[string]float64) []string {
	names := make([]string, 0, len(byRole))
	for name := range byRole {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
