package bench

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		3 * time.Millisecond,
	} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 µs: quantiles should land within the bucket
	// resolution (~6%).
	for us := 1; us <= 1000; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	tests := []struct {
		q    float64
		want time.Duration
	}{
		{q: 0.10, want: 100 * time.Microsecond},
		{q: 0.50, want: 500 * time.Microsecond},
		{q: 0.90, want: 900 * time.Microsecond},
		{q: 0.99, want: 990 * time.Microsecond},
	}
	for _, tt := range tests {
		got := h.Quantile(tt.q)
		lo := time.Duration(float64(tt.want) * 0.85)
		hi := time.Duration(float64(tt.want) * 1.10)
		if got < lo || got > hi {
			t.Errorf("Quantile(%.2f) = %v, want ≈ %v", tt.q, got, tt.want)
		}
	}
}

func TestHistogramCDFMonotonic(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Intn(50_000_000)))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prevLat, prevFrac := time.Duration(-1), 0.0
	for _, p := range cdf {
		if p.Latency <= prevLat {
			t.Fatalf("CDF latencies not increasing: %v after %v", p.Latency, prevLat)
		}
		if p.Fraction < prevFrac {
			t.Fatalf("CDF fractions not monotone: %v after %v", p.Fraction, prevFrac)
		}
		prevLat, prevFrac = p.Latency, p.Fraction
	}
	if last := cdf[len(cdf)-1].Fraction; last < 0.999 {
		t.Fatalf("CDF does not reach 1: %v", last)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Mean() != 3*time.Millisecond {
		t.Fatalf("merged mean = %v", a.Mean())
	}
	if a.Max() != 5*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestBucketRoundTripMonotonic(t *testing.T) {
	// bucketValue(bucketIndex(d)) must never exceed d, and indexes
	// must be monotone in d.
	prev := -1
	for us := int64(0); us < 1_000_000; us += 37 {
		d := time.Duration(us) * time.Microsecond
		idx := bucketIndex(d)
		if idx < prev {
			t.Fatalf("bucket index decreased at %v", d)
		}
		prev = idx
		if bv := bucketValue(idx); bv > d {
			t.Fatalf("bucketValue(%d) = %v > %v", idx, bv, d)
		}
	}
}

func TestCPUMeterBusyFraction(t *testing.T) {
	m := NewCPUMeter()
	role := m.Role("worker")
	t0 := time.Now()
	time.Sleep(50 * time.Millisecond)
	role.Add(time.Since(t0))
	time.Sleep(50 * time.Millisecond)
	byRole, total := m.Usage()
	// ~50ms busy of ~100ms wall ≈ 50%; allow slack.
	if byRole["worker"] < 25 || byRole["worker"] > 75 {
		t.Fatalf("worker busy = %.1f%%, want ≈ 50%%", byRole["worker"])
	}
	if total != byRole["worker"] {
		t.Fatalf("total %v != worker %v", total, byRole["worker"])
	}
}

func TestCPUMeterReset(t *testing.T) {
	m := NewCPUMeter()
	role := m.Role("x")
	role.Add(time.Second)
	m.Reset()
	time.Sleep(10 * time.Millisecond)
	byRole, _ := m.Usage()
	if byRole["x"] > 1 {
		t.Fatalf("busy after reset = %.2f%%", byRole["x"])
	}
}

func TestNilMeterSafe(t *testing.T) {
	var m *CPUMeter
	role := m.Role("anything")
	role.Add(time.Millisecond) // must not panic
	if busy, _ := m.Snapshot(); busy != nil {
		t.Fatal("nil meter Snapshot not empty")
	}
}

func TestResultKcpsAndString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	r := &Result{Technique: "P-SMR", Threads: 8, Ops: 100_000, Elapsed: time.Second, Latency: &h}
	if got := r.Kcps(); got != 100 {
		t.Fatalf("Kcps = %v", got)
	}
	if s := r.String(); !strings.Contains(s, "P-SMR") {
		t.Fatalf("String = %q", s)
	}
	zero := &Result{}
	if zero.Kcps() != 0 {
		t.Fatal("zero result Kcps != 0")
	}
}

func TestTableNormalisation(t *testing.T) {
	mk := func(name string, kcps float64) *Result {
		return &Result{
			Technique: name,
			Threads:   1,
			Ops:       int64(kcps * 1000),
			Elapsed:   time.Second,
		}
	}
	table := Table([]*Result{mk("SMR", 100), mk("P-SMR", 315)}, "SMR")
	if !strings.Contains(table, "3.15X") {
		t.Fatalf("normalisation missing:\n%s", table)
	}
	if !strings.Contains(table, "1.00X") {
		t.Fatalf("baseline row missing:\n%s", table)
	}
}

func TestSortedRoles(t *testing.T) {
	roles := SortedRoles(map[string]float64{"worker": 1, "acceptor": 2, "scheduler": 3})
	if len(roles) != 3 || roles[0] != "acceptor" || roles[1] != "scheduler" || roles[2] != "worker" {
		t.Fatalf("SortedRoles = %v", roles)
	}
}
