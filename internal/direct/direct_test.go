package direct

import (
	"testing"
	"time"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// echoServer answers every request with its input.
func echoServer(t *testing.T, net *transport.MemNetwork, addr transport.Addr) {
	t.Helper()
	ep, err := net.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for frame := range ep.Recv() {
			req, _, err := command.DecodeRequest(frame)
			if err != nil {
				continue
			}
			resp := command.AppendResponse(nil, &command.Response{
				Client: req.Client, Seq: req.Seq, Output: req.Input,
			})
			_ = net.Send(req.Reply, resp)
		}
	}()
	t.Cleanup(func() { _ = ep.Close(); <-done })
}

func TestInvokeEcho(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	echoServer(t, net, "srv")
	c, err := NewClient(ClientConfig{ID: 1, Target: "srv", Transport: net})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	out, err := c.Invoke(9, []byte("ping"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(out) != "ping" {
		t.Fatalf("out = %q", out)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	net := transport.NewMemNetwork(5)
	defer net.Close()
	echoServer(t, net, "srv")
	c, err := NewClient(ClientConfig{
		ID: 2, Target: "srv", Transport: net,
		RetryInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	// Drop the first transmissions, then heal.
	net.SetFault("", "srv", transport.Fault{Partitioned: true})
	call, err := c.Submit(1, []byte("retry me"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	net.SetFault("", "srv", transport.Fault{})
	out, err := call.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if string(out) != "retry me" {
		t.Fatalf("out = %q", out)
	}
}

func TestCloseFailsPending(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	// No server: the call can never complete.
	c, err := NewClient(ClientConfig{ID: 3, Target: "void", Transport: net})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	call, err := c.Submit(1, []byte("x"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := call.Wait()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Wait err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait not unblocked by Close")
	}
	if _, err := c.Submit(2, nil); err != ErrClosed {
		t.Fatalf("Submit after close err = %v", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
