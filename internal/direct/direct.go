// Package direct implements the client side of the non-replicated
// baselines (no-rep and the lock-based store): requests go straight to
// a single server endpoint, with the same request/response wire format
// and retransmission discipline as the replicated client proxies.
package direct

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// ErrClosed is returned for calls issued against or pending on a
// closed client.
var ErrClosed = errors.New("direct: client closed")

// ClientConfig configures a direct client.
type ClientConfig struct {
	// ID must be unique among clients of the same server.
	ID uint64
	// Target is the server endpoint requests are sent to (for the
	// lock-based store, the per-thread endpoint this client sticks to).
	Target transport.Addr
	// Transport carries traffic.
	Transport transport.Transport
	// ReplyAddr is the response endpoint. Defaults to "direct/<ID>".
	ReplyAddr transport.Addr
	// RetryInterval is the retransmission period. Default 3s.
	RetryInterval time.Duration
}

// Client is a direct (unreplicated) client.
type Client struct {
	cfg ClientConfig
	ep  transport.Endpoint

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*Call
	closed  bool

	done chan struct{}
}

// Call is one in-flight invocation.
type Call struct {
	c      *Client
	seq    uint64
	frame  []byte
	respCh chan []byte
}

// NewClient starts a direct client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Target == "" || cfg.Transport == nil {
		return nil, errors.New("direct: client needs Target and Transport")
	}
	if cfg.ReplyAddr == "" {
		cfg.ReplyAddr = transport.Addr(fmt.Sprintf("direct/%d", cfg.ID))
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 3 * time.Second
	}
	ep, err := cfg.Transport.Listen(cfg.ReplyAddr)
	if err != nil {
		return nil, fmt.Errorf("direct: listen: %w", err)
	}
	c := &Client{
		cfg:     cfg,
		ep:      ep,
		pending: make(map[uint64]*Call),
		done:    make(chan struct{}),
	}
	go c.demux()
	return c, nil
}

// Close stops the client and fails pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()

	err := c.ep.Close()
	for _, call := range pending {
		close(call.respCh)
	}
	<-c.done
	return err
}

// Submit sends one request.
func (c *Client) Submit(cmd command.ID, input []byte) (*Call, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	seq := c.seq
	call := &Call{
		c:      c,
		seq:    seq,
		respCh: make(chan []byte, 1),
	}
	call.frame = command.AppendRequest(nil, &command.Request{
		Client: c.cfg.ID,
		Seq:    seq,
		Cmd:    cmd,
		Input:  input,
		Reply:  c.cfg.ReplyAddr,
	})
	c.pending[seq] = call
	c.mu.Unlock()

	_ = c.cfg.Transport.Send(c.cfg.Target, call.frame)
	return call, nil
}

// Invoke sends a request and waits for the response.
func (c *Client) Invoke(cmd command.ID, input []byte) ([]byte, error) {
	call, err := c.Submit(cmd, input)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// Wait blocks for the response, retransmitting periodically.
func (call *Call) Wait() ([]byte, error) {
	timer := time.NewTimer(call.c.cfg.RetryInterval)
	defer timer.Stop()
	for {
		select {
		case output, ok := <-call.respCh:
			if !ok {
				return nil, ErrClosed
			}
			call.c.forget(call.seq)
			return output, nil
		case <-timer.C:
			_ = call.c.cfg.Transport.Send(call.c.cfg.Target, call.frame)
			timer.Reset(call.c.cfg.RetryInterval)
		}
	}
}

func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

func (c *Client) demux() {
	defer close(c.done)
	for frame := range c.ep.Recv() {
		resp, err := command.DecodeResponse(frame)
		if err != nil || resp.Client != c.cfg.ID {
			continue
		}
		c.mu.Lock()
		if call, ok := c.pending[resp.Seq]; ok {
			select {
			case call.respCh <- resp.Output:
			default:
			}
		}
		c.mu.Unlock()
	}
}
