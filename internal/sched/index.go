package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
	"github.com/psmr/psmr/internal/obs"
)

// IndexScheduler is the index-based early scheduling engine, combining
// two techniques from the literature on parallel state-machine
// replication schedulers:
//
//   - Early scheduling (Alchieri, Dotti, Pedone): the mapping from
//     command classes to worker sets is compiled once from the C-Dep
//     (cdep.Compiled.Route), so admission performs no conflict
//     reasoning — it just routes.
//   - Index-based scheduling (Wu et al.): a hash-sharded per-key
//     conflict index maps each key with live commands to the worker
//     currently serving it, so a keyed command enqueues in O(1) behind
//     exactly the commands it conflicts with — never a scan over the
//     live set.
//
// Commands flow straight from the delivery thread into per-worker
// ingress queues; there is no scheduler thread to saturate a core (the
// bottleneck the paper measures for sP-SMR in Figures 3, 5 and 7).
// The execution pipeline is batch-first:
//
//   - SubmitBatch admits one decided batch at a time: every touched
//     key shard is locked once per burst and every target worker's
//     ingress deque is pushed once per burst, instead of once per
//     command.
//   - Same-key write chains land on one worker's FIFO while any of
//     them is live, so they execute in admission order. Same-key
//     READ-ONLY commands (cdep.Route.ReadOnly) instead join a per-key
//     reader set: each reader is routed independently (least-loaded)
//     and waits only for the completion gate of the last admitted
//     writer, while the next writer waits for the reader set admitted
//     since the previous writer to drain — the same reader concurrency
//     the scan engine's live-set tracking provides, without a
//     scheduler thread.
//   - Keys with no live commands are (re)assigned to the least-loaded
//     worker (ties break to the lowest worker id), which is what
//     balances skewed workloads.
//   - An idle worker steals a bounded batch of non-keyed work from the
//     longest ingress queue. Keyed chains never migrate (the per-key
//     FIFO is the conflict order) and nothing is taken at or past a
//     pending barrier or multi-key token, so stealing cannot reorder
//     dependent commands.
//   - Global (barrier) commands are enqueued on every worker's queue;
//     workers rendezvous at the token, the compiled set's minimum
//     member executes alone, then releases the rest — exactly the
//     paper's "wait for the worker threads to finish their ongoing
//     work" semantics.
//   - MULTI-KEY commands (cdep.RouteMultiKey) acquire every touched
//     key like a 2PL lock point over the per-key FIFOs: admission
//     places the command as the new last writer of every key (in
//     sorted-key order) and enqueues ONE token on every distinct owner
//     queue. The default protocol is a deposit-and-continue handoff:
//     the token carries an atomic countdown initialized to the number
//     of distinct owners, and an owner popping the token DEPOSITS
//     (decrements) and keeps draining the unrelated work queued behind
//     it — no owner parks. The LAST depositor becomes the executor: it
//     waits for the touched keys' sealed reader sets and for the
//     completion gates of any predecessor multi-key tokens on shared
//     keys, executes once, and closes the token's pre-allocated
//     completion gate, releasing the successors of every touched key.
//
//     Safety argument. (a) Per-key FIFO: an owner deposits only after
//     popping everything admitted before the token on that queue, and
//     single-key commands execute inline at pop — so when the last
//     owner deposits, every EARLIER same-key command has completed,
//     except predecessor multi-key tokens (for which popped does not
//     imply completed); those are covered by explicit completion-gate
//     waits latched at admission. Every LATER same-key command — the
//     next writer, readers, successor tokens — latches this token's
//     completion gate at admission and cannot start before it closes.
//     The last deposit is therefore exactly the 2PL lock point the
//     parking rendezvous implemented, and the serialization order is
//     identical: same command set, same per-key order, one execution.
//     (b) No deadlock: tokens are fully enqueued under the serialized
//     admission path before admission continues, so they appear on all
//     queues in ONE global admission order, and every wait edge (FIFO
//     predecessor, writer gate, sealed reader group, predecessor token
//     gate) points to an earlier-admitted command — the wait graph is
//     acyclic. (c) The parking rendezvous is retained behind
//     Tuning.NoMKHandoff as the ablation baseline; the two modes are
//     byte-identical on any input stream (asserted by the root
//     determinism e2e).
//
// The admission and completion hot paths are allocation-free at steady
// state (asserted by TestAdmitKeyedIndexBatchZeroAlloc): inodes,
// multi-key tokens, reader groups and conflict-index entries are
// pooled and recycled at completion, key sets use small inline buffers
// (cdep.Compiled.AppendKeySet), and the ingress deques are pre-sized
// power-of-two rings. Completion gates and reader-group done channels
// are the deliberate exception: a closed channel cannot be re-armed
// and waiters retain the pointer past the owner's recycling, so they
// are allocated fresh — but only on paths that already pay a
// rendezvous (multi-key tokens, reader/writer transitions), never on
// the plain keyed fast path.
//
// The ingress deques are unbounded, like the scan engine's ready list:
// backpressure comes from the closed-loop clients and the ordering
// layer, and bounded hand-off channels would deadlock batched
// admission against reader-set gates (a blocked producer could hold
// back the very writer a queue head is waiting on). Submit and
// SubmitBatch keep the scan engine's contract: one producer, or
// producers that are externally serialized.
type IndexScheduler struct {
	cfg     Config
	queues  []*ingress
	keyIdx  []keyShard
	clients []clientShard

	stealBatch int
	stealSig   chan struct{}
	// stolen counts commands migrated between ingress queues by work
	// stealing since start (monotonic; exported via Stats).
	stolen atomic.Uint64

	admitCPU *bench.RoleMeter

	// Object pools backing zero-alloc admission. ipool holds plain
	// inodes (keyed, free, multi-key readers); mkpool holds multi-key
	// token inodes (recycled in handoff mode only); gpool holds reader
	// groups.
	ipool  sync.Pool
	mkpool sync.Pool
	gpool  sync.Pool

	// Admission scratch, reused across calls (producers are externally
	// serialized, so no locking). buckets groups one burst's keyed
	// commands by key shard; touched lists the non-empty buckets;
	// perWorker/workersHit bucket the placed burst by target queue;
	// mkScratch receives AppendKeySet output; token is the one-element
	// slice pushed per owner/worker queue.
	single     [1]*command.Request
	token      [1]*inode
	mkScratch  []uint64
	buckets    [][]*inode // len keyShardCount
	touched    []int
	free       []*inode
	perWorker  [][]*inode
	workersHit []int
	pendingLen []int

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// ingressInitCap pre-sizes each worker's ring so steady-state bursts
// never grow it; it doubles on overflow and keeps the peak capacity.
const ingressInitCap = 256

// ingress is one worker's unbounded admission deque. A mutex-guarded
// power-of-two ring replaces a bounded channel so that (a) a whole
// burst enqueues under one lock acquisition, (b) an idle worker can
// steal from the middle of another worker's backlog, and (c) the
// steady state allocates nothing — head/tail chase each other around
// a buffer sized once at the workload's peak.
type ingress struct {
	mu   sync.Mutex
	buf  []*inode // power-of-two ring
	head int
	n    int
	// load counts queued + executing commands; admission's least-loaded
	// placement reads it without the lock.
	load atomic.Int64
	// freeLoad counts the queued non-keyed, non-barrier commands — the
	// stealable ones. Thieves pick their victim by it, so an all-keyed
	// backlog costs them one atomic load, never a scan under the
	// victim's lock.
	freeLoad atomic.Int64
	// raided counts commands recently stolen FROM this queue — the
	// steal-aware placement feedback. A queue that keeps getting raided
	// is draining slower than its peers, so leastLoaded treats the
	// counter as extra load and stops preferring the queue as the owner
	// of idle keys; imbalance is then fixed at admission instead of
	// being re-stolen every burst. The counter halves each time the
	// owner finds its queue empty AND each time it drains a multi-key
	// token (progress through the backlog that never empties the queue
	// in token-heavy workloads), so the penalty fades once the backlog
	// clears.
	raided atomic.Int64
	// wake is a 1-buffered doorbell: pushed-to while the owner may be
	// parked.
	wake chan struct{}
}

func newIngress() *ingress {
	return &ingress{
		buf:  make([]*inode, ingressInitCap),
		wake: make(chan struct{}, 1),
	}
}

// grow doubles the ring until it fits need, unwrapping to index 0.
// The caller holds mu.
func (q *ingress) grow(need int) {
	capNew := len(q.buf) * 2
	for capNew < need {
		capNew *= 2
	}
	nb := make([]*inode, capNew)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}

func (q *ingress) pushBatch(ns []*inode) {
	free := 0
	for _, n := range ns {
		if !n.keyed && n.bar == nil {
			free++
		}
	}
	if free > 0 {
		q.freeLoad.Add(int64(free))
	}
	q.load.Add(int64(len(ns)))
	q.mu.Lock()
	if q.n+len(ns) > len(q.buf) {
		q.grow(q.n + len(ns))
	}
	mask := len(q.buf) - 1
	for i, n := range ns {
		q.buf[(q.head+q.n+i)&mask] = n
	}
	q.n += len(ns)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop removes the queue head, or returns nil when the queue is empty.
func (q *ingress) pop() *inode {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return nil
	}
	n := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.mu.Unlock()
	return n
}

// inode is one admitted command (or one worker's view of a barrier or
// multi-key token). Plain inodes are pooled and recycled at
// completion; barrier inodes are not (parked workers may still select
// on their channels), and token inodes recycle only in handoff mode.
type inode struct {
	req    *command.Request
	marker func()        // quiesce marker closure (barrier tokens only)
	bar    *indexBarrier // non-nil for barrier tokens
	mk     *mkToken      // non-nil for multi-key tokens
	keyed  bool
	reader bool
	key    uint64
	mkeys  []uint64 // multi-key readers: canonical key set (len 0 otherwise)

	set    command.Gamma // compiled worker set (admission scratch)
	worker int           // target queue (admission scratch)

	waitW  *gate          // readers, and writers behind a pending token: completion gate to wait
	waitWs []*gate        // multi-key readers: one writer gate per live key
	waitR  *readerGroup   // writers: reader set admitted since the previous writer
	gate   *gate          // writers: closed on completion
	grp    *readerGroup   // readers: group to leave on completion
	grps   []*readerGroup // multi-key readers: group per key, parallel to mkeys
}

// mkToken coordinates one multi-key command across the workers owning
// its keys. The SAME inode is enqueued on every owner queue; the
// completion gate is pre-allocated (readers of any touched key may
// latch onto it from under different key shards, so lazy allocation
// would race). keys and owners alias the inline buffers until a
// command touches more than four keys, mirroring the pooled proxy
// frames of the ordering layer.
type mkToken struct {
	keys      []uint64 // canonical (sorted, deduped) key set
	keysBuf   [4]uint64
	owners    []int // distinct owner workers, ascending
	ownersBuf [4]int

	// pending is the handoff countdown: initialized to len(owners)
	// before the token is enqueued; each owner deposits by decrementing
	// at pop, and the owner that reaches zero executes.
	pending atomic.Int32

	executor int           // park mode: owners[0] executes
	arrive   chan struct{} // park mode: owners signal "drained up to the token"
	release  chan struct{} // park mode: closed by the executor after running

	waitRs []*readerGroup // sealed reader sets of the touched keys
	waitWs []*gate        // completion gates of predecessor multi-key tokens
}

// gate is a writer's completion latch; successors admitted while the
// writer is live wait on it before executing. It is allocated lazily —
// only when a successor actually needs it — so write-only chains pay
// nothing for it. Gates are never pooled: waiters hold the pointer
// past the owner's recycling, and a closed channel cannot be re-armed.
type gate struct{ ch chan struct{} }

// readerGroup counts the live readers admitted between two writers of
// one key. The next writer seals the group at admission (allocating
// done); the last member to complete after sealing closes done. Groups
// are pooled: the unique waiter recycles a sealed group after its wait,
// and a dying key entry recycles its unsealed one.
type readerGroup struct {
	n    int
	done chan struct{} // non-nil once sealed by a writer
}

// indexBarrier coordinates one global command across the workers.
type indexBarrier struct {
	executor int           // worker that runs the command (min of the route's set)
	arrive   chan struct{} // workers signal "drained up to the token"
	release  chan struct{} // closed by the executor after running
}

// keyShard is one shard of the per-key conflict index. Keyed by
// cdep.KeyFunc output, hash-sharded so the admission thread and the
// workers' completions rarely contend; batched admission locks each
// touched shard once per burst.
type keyShard struct {
	mu   sync.Mutex
	live map[uint64]*keyEntry
	// epool is the shard's keyEntry free list, pushed/popped under mu:
	// entries churn at the rate keys go idle, so recycling them is what
	// keeps the map's delete/insert cycle allocation-free.
	epool []*keyEntry
}

func (ks *keyShard) getEntry() *keyEntry {
	if n := len(ks.epool); n > 0 {
		e := ks.epool[n-1]
		ks.epool[n-1] = nil
		ks.epool = ks.epool[:n-1]
		return e
	}
	return &keyEntry{}
}

func (ks *keyShard) putEntry(e *keyEntry) {
	e.worker, e.writers, e.total = 0, 0, 0
	e.lastWriter, e.readers = nil, nil
	ks.epool = append(ks.epool, e)
}

// keyEntry tracks one key with live (queued or executing) commands:
// the worker owning the write chain, live counts, the last admitted
// writer, and the reader set admitted since.
type keyEntry struct {
	worker     int // FIFO owning the write chain (valid while writers > 0)
	writers    int // live writers
	total      int // live writers + readers (entry is deleted at zero)
	lastWriter *inode
	readers    *readerGroup
}

// clientShard is one shard of the at-most-once state: the response
// cache plus the in-flight duplicate filter (shared across workers, so
// a retransmission routed anywhere is answered or suppressed).
type clientShard struct {
	mu       sync.Mutex
	table    *dedup.Table
	inflight map[requestID]struct{}
}

const (
	keyShardCount    = 128
	clientShardCount = 64
	// defaultStealBatch caps the commands an idle worker takes per
	// steal; small enough that a mistaken steal cannot unbalance the
	// victim, large enough to amortise the victim-lock acquisition.
	defaultStealBatch = 8
)

// StartIndex launches the index engine: the per-worker queues and the
// worker pool, but no scheduler thread.
func StartIndex(cfg Config) (*IndexScheduler, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sched: %d workers", cfg.Workers)
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = defaultStealBatch
	}
	if cfg.Compiled == nil {
		return nil, fmt.Errorf("sched: Compiled is required")
	}
	if cfg.Service == nil && cfg.Exec == nil {
		return nil, fmt.Errorf("sched: Service or Exec is required")
	}
	s := &IndexScheduler{
		cfg:        cfg,
		queues:     make([]*ingress, cfg.Workers),
		keyIdx:     make([]keyShard, keyShardCount),
		clients:    make([]clientShard, clientShardCount),
		stealBatch: cfg.StealBatch,
		stealSig:   make(chan struct{}, 1),
		buckets:    make([][]*inode, keyShardCount),
		perWorker:  make([][]*inode, cfg.Workers),
		pendingLen: make([]int, cfg.Workers),
		stop:       make(chan struct{}),
	}
	for i := range s.queues {
		s.queues[i] = newIngress()
	}
	for i := range s.keyIdx {
		s.keyIdx[i].live = make(map[uint64]*keyEntry)
	}
	for i := range s.clients {
		s.clients[i].table = dedup.NewTable(cfg.DedupWindow)
		s.clients[i].inflight = make(map[requestID]struct{})
	}
	// Admission runs on the caller (the delivery pump); metering it as
	// "scheduler" keeps the CPU panels comparable with the scan engine —
	// and shows how little of a core O(1) routing needs.
	s.admitCPU = cfg.CPU.Role("scheduler")
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.work(w)
	}
	return s, nil
}

// getInode returns a pooled plain inode (fields zeroed at put).
func (s *IndexScheduler) getInode() *inode {
	if v := s.ipool.Get(); v != nil {
		return v.(*inode)
	}
	return &inode{}
}

// putInode recycles a drained plain inode. Callers guarantee no live
// references remain: the conflict index no longer points at it
// (cleared under the shard lock before the call), and waiters hold its
// gate pointer, never the inode itself. Barrier and multi-key token
// inodes are never recycled here.
func (s *IndexScheduler) putInode(n *inode) {
	n.req = nil
	n.keyed, n.reader = false, false
	n.key, n.set, n.worker = 0, 0, 0
	n.mkeys = n.mkeys[:0]
	n.waitW, n.waitR, n.gate, n.grp = nil, nil, nil, nil
	n.waitWs = n.waitWs[:0]
	n.grps = n.grps[:0]
	s.ipool.Put(n)
}

// getMK returns a pooled multi-key token inode with a fresh completion
// gate (gates are never reused; see gate).
func (s *IndexScheduler) getMK() *inode {
	if v := s.mkpool.Get(); v != nil {
		n := v.(*inode)
		n.gate = &gate{ch: make(chan struct{})}
		return n
	}
	mk := &mkToken{}
	mk.keys = mk.keysBuf[:0]
	mk.owners = mk.ownersBuf[:0]
	return &inode{
		keyed: true, // never stealable, never counted as free
		mk:    mk,
		gate:  &gate{ch: make(chan struct{})},
	}
}

// putMK recycles a completed multi-key token — handoff mode only: a
// park-mode token's released owners may still be selecting on
// mk.release, so park-mode tokens are left to the GC. In handoff mode
// no owner retains the inode past its deposit (the countdown is the
// only cross-owner state), and completeMulti cleared the conflict
// index under the shard locks before this call.
func (s *IndexScheduler) putMK(n *inode) {
	mk := n.mk
	mk.keys = mk.keys[:0]
	mk.owners = mk.owners[:0]
	mk.waitRs = mk.waitRs[:0]
	mk.waitWs = mk.waitWs[:0]
	n.req = nil
	n.gate = nil
	n.waitW = nil
	n.worker = 0
	s.mkpool.Put(n)
}

func (s *IndexScheduler) getGroup() *readerGroup {
	if v := s.gpool.Get(); v != nil {
		return v.(*readerGroup)
	}
	return &readerGroup{}
}

// putGroup recycles a reader group once provably unreferenced: either
// its unique waiter saw done close (a sealed group is waited on by
// exactly one successor), or its key entry died with the group
// unsealed and empty. done channels are never reused — a closed
// channel cannot be re-armed — so sealing allocates a fresh one.
func (s *IndexScheduler) putGroup(g *readerGroup) {
	g.n, g.done = 0, nil
	s.gpool.Put(g)
}

// Submit routes one command to its worker queue in O(1). It reports
// false once the engine is stopping. Commands are ordered per conflict
// chain in Submit order.
func (s *IndexScheduler) Submit(req *command.Request) bool {
	s.single[0] = req
	return s.SubmitBatch(s.single[:])
}

// SubmitBatch admits one decided batch. The at-most-once filter runs
// per command, but each key shard is locked once per burst and each
// target worker's ingress deque is pushed once per burst — the lock
// amortisation that makes the pipeline batch-first. A barrier command
// flushes the work buffered before it, so barrier tokens partition
// every queue in admission order. The engine does not retain the
// slice. It reports false once the engine is stopping.
func (s *IndexScheduler) SubmitBatch(reqs []*command.Request) bool {
	select {
	case <-s.stop:
		return false
	default:
	}
	t0 := time.Now()
	for _, req := range reqs {
		s.cfg.Trace.StampID(obs.StageEngineAdmit, req.Client, req.Seq)
		if s.dropDuplicate(req) {
			continue
		}
		route := s.cfg.Compiled.Route(req.Cmd)
		kind := route.Kind
		var key uint64
		switch kind {
		case cdep.RouteKeyed:
			if k, ok := s.cfg.Compiled.Key(req.Cmd, req.Input); ok {
				key = k
			} else {
				// Keyless invocation of a keyed command may touch any
				// object: serialize it like a global command.
				kind = cdep.RouteBarrier
			}
		case cdep.RouteMultiKey:
			var ok bool
			s.mkScratch, ok = s.cfg.Compiled.AppendKeySet(s.mkScratch[:0], req.Cmd, req.Input)
			if !ok {
				// Undeterminable key set: synchronous mode.
				kind = cdep.RouteBarrier
			}
		}
		switch kind {
		case cdep.RouteBarrier:
			s.flush()
			s.admitBarrier(req, route)
		case cdep.RouteMultiKey:
			// Flush first so every earlier command of this burst is
			// already on its queue: the token (or reader) then lands
			// behind all of them, keeping one global admission order
			// across all queues.
			s.flush()
			if route.ReadOnly && !s.cfg.NoReaderSets {
				s.admitMultiKeyRead(req, route, s.mkScratch)
			} else {
				s.admitMultiKey(req, route, s.mkScratch)
			}
		case cdep.RouteKeyed:
			n := s.getInode()
			n.req, n.keyed, n.key, n.set = req, true, key, route.Workers
			n.reader = route.ReadOnly && !s.cfg.NoReaderSets
			s.bufferKeyed(n)
		default:
			n := s.getInode()
			n.req, n.set = req, route.Workers
			s.free = append(s.free, n)
		}
	}
	s.flush()
	s.admitCPU.Add(time.Since(t0))
	return true
}

// SubmitMarker admits a quiesce marker: a barrier token carrying a
// closure instead of a command. The buffered burst is flushed first,
// so the token partitions every queue in admission order — fn runs
// once every worker has drained up to its token, alone, before
// anything admitted later starts. It reports false once the engine is
// stopping.
func (s *IndexScheduler) SubmitMarker(fn func()) bool {
	if fn == nil {
		return true
	}
	select {
	case <-s.stop:
		return false
	default:
	}
	t0 := time.Now()
	s.flush()
	n := &inode{
		marker: fn,
		bar: &indexBarrier{
			executor: 0,
			arrive:   make(chan struct{}, len(s.queues)),
			release:  make(chan struct{}),
		},
	}
	s.token[0] = n
	for _, q := range s.queues {
		q.pushBatch(s.token[:])
	}
	s.admitCPU.Add(time.Since(t0))
	return true
}

// dropDuplicate applies the at-most-once filter: completed
// retransmissions are answered from the cache, duplicates whose
// original is still live are dropped (the same metastable
// retransmission collapse the scan engine defends against).
func (s *IndexScheduler) dropDuplicate(req *command.Request) bool {
	if s.cfg.Exec != nil {
		// External execution hook: the at-most-once layer moves to the
		// hook's owner (see Config.Exec).
		return false
	}
	cs := s.clientShard(req.Client)
	id := requestID{client: req.Client, seq: req.Seq}
	cs.mu.Lock()
	if out, dup := cs.table.Lookup(req.Client, req.Seq); dup {
		cs.mu.Unlock()
		s.respond(req, out)
		return true
	}
	if _, live := cs.inflight[id]; live {
		cs.mu.Unlock()
		return true
	}
	cs.inflight[id] = struct{}{}
	cs.mu.Unlock()
	return false
}

// bufferKeyed groups this burst's keyed commands by key shard so flush
// can lock each shard once. Same-key commands share a shard, so their
// admission order is preserved within the shard's bucket.
func (s *IndexScheduler) bufferKeyed(n *inode) {
	si := s.keyShardIndex(n.key)
	if len(s.buckets[si]) == 0 {
		s.touched = append(s.touched, int(si))
	}
	s.buckets[si] = append(s.buckets[si], n)
}

// flush places the buffered burst: every touched key shard is locked
// once, free commands are spread least-loaded, and every target
// worker's ingress is pushed once.
func (s *IndexScheduler) flush() {
	if len(s.touched) == 0 && len(s.free) == 0 {
		return
	}
	for _, si := range s.touched {
		ks := &s.keyIdx[si]
		ks.mu.Lock()
		for _, n := range s.buckets[si] {
			s.placeKeyedLocked(ks, n)
			s.pendingLen[n.worker]++
		}
		ks.mu.Unlock()
	}
	for _, n := range s.free {
		n.worker = s.leastLoaded(n.set)
		s.pendingLen[n.worker]++
	}
	for _, si := range s.touched {
		for _, n := range s.buckets[si] {
			s.addToWorker(n)
		}
		s.buckets[si] = s.buckets[si][:0]
	}
	s.touched = s.touched[:0]
	for _, n := range s.free {
		s.addToWorker(n)
	}
	s.free = s.free[:0]
	for _, w := range s.workersHit {
		ns := s.perWorker[w]
		s.pendingLen[w] = 0
		s.queues[w].pushBatch(ns)
		s.perWorker[w] = ns[:0]
		if !s.cfg.NoSteal && s.queues[w].freeLoad.Load() >= int64(s.stealBatch) {
			// A stealable backlog built up: ring the doorbell so a
			// parked worker rechecks the victim scan.
			select {
			case s.stealSig <- struct{}{}:
			default:
			}
		}
	}
	s.workersHit = s.workersHit[:0]
}

// addToWorker appends a placed command to its target queue's burst
// bucket, tracking which queues this burst touches.
func (s *IndexScheduler) addToWorker(n *inode) {
	if len(s.perWorker[n.worker]) == 0 {
		s.workersHit = append(s.workersHit, n.worker)
	}
	s.perWorker[n.worker] = append(s.perWorker[n.worker], n)
}

// placeKeyedLocked assigns one keyed command its target worker and its
// dependency gates. The caller holds the key's shard lock.
//
// Writers chain on one worker's FIFO (admission order = execution
// order) and wait for the reader set admitted since the previous
// writer. Readers are routed independently and wait only for the last
// admitted writer's completion gate. A successor admitted behind a
// multi-key token additionally latches the token's completion gate:
// under the handoff protocol a popped token may still be pending, so
// FIFO position alone no longer implies the token completed. Every
// wait edge points to an earlier-admitted command and every queue is
// FIFO in admission order, so the wait graph is acyclic — no deadlock.
func (s *IndexScheduler) placeKeyedLocked(ks *keyShard, n *inode) {
	e := ks.live[n.key]
	if e == nil {
		e = ks.getEntry()
		ks.live[n.key] = e
	}
	e.total++
	if n.reader {
		if w := e.lastWriter; w != nil {
			// Rendezvous with the live write chain: latch onto the last
			// writer's completion gate, allocating it on first use.
			if w.gate == nil {
				w.gate = &gate{ch: make(chan struct{})}
			}
			n.waitW = w.gate
		}
		if e.readers == nil {
			e.readers = s.getGroup()
		}
		e.readers.n++
		n.grp = e.readers
		// Readers fan out to their own routed workers instead of the
		// write chain's FIFO — this is what recovers hot-key read
		// concurrency.
		n.worker = s.leastLoaded(n.set)
		return
	}
	switch {
	case e.writers > 0:
		// Live write chain: append behind it (same worker FIFO
		// preserves admission order for the key).
		n.worker = e.worker
	default:
		// Idle write chain: a placement pin wins (§IV-D load-balancing
		// hint), else the least-loaded member of the compiled worker
		// set.
		if pw, ok := s.cfg.Compiled.PlacedWorker(n.key); ok && pw < len(s.queues) {
			n.worker = pw
		} else {
			n.worker = s.leastLoaded(n.set)
		}
	}
	if w := e.lastWriter; w != nil && w.mk != nil {
		// The predecessor is a multi-key token, which may still be
		// pending when this writer reaches the queue head (handoff
		// mode): wait its completion gate explicitly.
		n.waitW = w.gate
	}
	e.worker = n.worker
	e.writers++
	if g := e.readers; g != nil && g.n > 0 {
		g.done = make(chan struct{}) // seal: the writer waits for the drain
		n.waitR = g
	}
	e.readers = nil
	e.lastWriter = n
}

// Close stops the engine and waits for the workers to exit.
func (s *IndexScheduler) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// admitBarrier enqueues one barrier token on every worker's queue. The
// token is fully enqueued before admission continues, so every command
// admitted earlier precedes it on its queue and every later command
// follows it — the rendezvous cannot deadlock. The compiled worker
// set's minimum member executes.
func (s *IndexScheduler) admitBarrier(req *command.Request, route cdep.Route) {
	executor := route.Workers.Min()
	if executor < 0 || executor >= len(s.queues) {
		executor = 0
	}
	n := &inode{
		req: req,
		bar: &indexBarrier{
			executor: executor,
			arrive:   make(chan struct{}, len(s.queues)),
			release:  make(chan struct{}),
		},
	}
	s.token[0] = n
	for _, q := range s.queues {
		q.pushBatch(s.token[:])
	}
}

// admitMultiKey admits one multi-key command: a 2PL-style acquisition
// of every touched key, in the canonical sorted-key order, followed by
// ONE token on every distinct owner queue. The caller has flushed the
// buffered burst, so everything admitted earlier is already enqueued
// and the token partitions each owner queue in admission order. keys
// is sorted and deduplicated (admission scratch; copied into the
// token's inline buffer).
func (s *IndexScheduler) admitMultiKey(req *command.Request, route cdep.Route, keys []uint64) {
	n := s.getMK()
	n.req = req
	mk := n.mk
	mk.keys = append(mk.keys[:0], keys...)
	for _, key := range mk.keys {
		ks := s.keyShard(key)
		ks.mu.Lock()
		e := ks.live[key]
		if e == nil {
			e = ks.getEntry()
			ks.live[key] = e
		}
		e.total++
		if e.writers > 0 {
			// Live write chain: the token joins it on its worker, so
			// the chain's FIFO order is preserved for this key.
			// (worker already set in e.worker)
		} else if pw, ok := s.cfg.Compiled.PlacedWorker(key); ok && pw < len(s.queues) {
			e.worker = pw
		} else {
			e.worker = s.leastLoaded(route.Workers)
		}
		e.writers++
		if w := e.lastWriter; w != nil && w.mk != nil {
			// Predecessor multi-key token on a shared key: it may still
			// be pending when this token's owners deposit (a popped
			// token is not a completed token), so the executor waits
			// its completion gate explicitly.
			mk.waitWs = append(mk.waitWs, w.gate)
		}
		if g := e.readers; g != nil && g.n > 0 {
			g.done = make(chan struct{}) // seal: the executor waits for the drain
			mk.waitRs = append(mk.waitRs, g)
		}
		e.readers = nil
		e.lastWriter = n
		owner := e.worker
		ks.mu.Unlock()

		found := false
		for _, w := range mk.owners {
			if w == owner {
				found = true
				break
			}
		}
		if !found {
			mk.owners = append(mk.owners, owner)
			s.pendingLen[owner]++ // later keys' leastLoaded sees this token
		}
	}
	// Insertion sort: owner sets are tiny, and this keeps sort's
	// interface conversion off the admission path.
	for i := 1; i < len(mk.owners); i++ {
		for j := i; j > 0 && mk.owners[j] < mk.owners[j-1]; j-- {
			mk.owners[j], mk.owners[j-1] = mk.owners[j-1], mk.owners[j]
		}
	}
	mk.executor = mk.owners[0]
	if s.cfg.NoMKHandoff {
		mk.arrive = make(chan struct{}, len(mk.owners))
		mk.release = make(chan struct{})
	} else {
		// The countdown must be armed before any owner can pop the
		// token.
		mk.pending.Store(int32(len(mk.owners)))
	}
	s.token[0] = n
	for _, w := range mk.owners {
		s.pendingLen[w] = 0
		s.queues[w].pushBatch(s.token[:])
	}
}

// admitMultiKeyRead admits one read-only multi-key command (a snapshot
// read over a key set): instead of the owner rendezvous it behaves like
// a reader of EVERY touched key — it latches onto each key's last
// writer's completion gate and joins each key's reader group, then runs
// on its own least-loaded worker. No owner parks: the next writer of
// any touched key waits for the sealed reader groups exactly as it
// waits for single-key readers. Every wait edge (the keys' last
// writers) points to an earlier-admitted command, so the wait graph
// stays acyclic. The caller has flushed the buffered burst; keys is
// sorted and deduplicated (admission scratch; copied into the pooled
// inode's buffer).
func (s *IndexScheduler) admitMultiKeyRead(req *command.Request, route cdep.Route, keys []uint64) {
	n := s.getInode()
	n.req = req
	n.keyed = true // never stealable, never counted as free
	n.reader = true
	n.mkeys = append(n.mkeys[:0], keys...)
	for _, key := range n.mkeys {
		ks := s.keyShard(key)
		ks.mu.Lock()
		e := ks.live[key]
		if e == nil {
			e = ks.getEntry()
			ks.live[key] = e
		}
		e.total++
		if w := e.lastWriter; w != nil {
			// Latch onto the live write chain's completion, allocating
			// the gate on first use (multi-key writer tokens pre-allocate
			// theirs; see admitMultiKey).
			if w.gate == nil {
				w.gate = &gate{ch: make(chan struct{})}
			}
			n.waitWs = append(n.waitWs, w.gate)
		}
		if e.readers == nil {
			e.readers = s.getGroup()
		}
		e.readers.n++
		n.grps = append(n.grps, e.readers)
		ks.mu.Unlock()
	}
	n.worker = s.leastLoaded(route.Workers)
	s.token[0] = n
	s.queues[n.worker].pushBatch(s.token[:])
}

// leastLoaded returns the member of the compiled worker set with the
// shortest ingress backlog (queued + executing, plus this burst's
// not-yet-pushed placements, plus the decaying stolen-from penalty —
// a chronically raided queue is draining slower than its load suggests,
// so it should not be preferred as the owner of idle keys). Ties break
// deterministically to the lowest worker id (the scan is ascending and
// strictly improving). A set with no member in this engine's worker
// range falls back to all workers.
func (s *IndexScheduler) leastLoaded(set command.Gamma) int {
	best, bestLen := -1, int64(1<<62)
	for w := range s.queues {
		if set != 0 && !set.Has(w) {
			continue
		}
		q := s.queues[w]
		l := q.load.Load() + int64(s.pendingLen[w]) + q.raided.Load()
		if l < bestLen {
			best, bestLen = w, l
		}
	}
	if best < 0 {
		return s.leastLoaded(0)
	}
	return best
}

// stealScratch is one worker's reusable steal buffers, sized once at
// worker start so the steal path performs no allocation.
type stealScratch struct {
	batch []*inode // taken commands, cap stealBatch
	keep  []*inode // scanned-but-kept prefix, cap = scan limit
}

// work is one pool worker draining its own ingress queue, stealing
// from the longest queue when its own runs dry.
func (s *IndexScheduler) work(w int) {
	defer s.wg.Done()
	q := s.queues[w]
	cpu := s.cfg.CPU.Role("worker")
	stealSig := s.stealSig
	if s.cfg.NoSteal {
		stealSig = nil
	}
	sc := &stealScratch{
		batch: make([]*inode, 0, s.stealBatch),
		keep:  make([]*inode, 0, 8*s.stealBatch),
	}
	for {
		n := q.pop()
		if n == nil {
			// The backlog cleared: decay the steal-aware placement
			// penalty so a once-raided queue becomes attractive again.
			if r := q.raided.Load(); r > 0 {
				q.raided.Store(r / 2)
			}
			if batch := s.steal(w, sc); len(batch) > 0 {
				for _, m := range batch {
					if !s.execute(m, cpu) {
						return
					}
					q.load.Add(-1)
				}
				continue
			}
			select {
			case <-q.wake:
				continue
			case <-stealSig:
				continue
			case <-s.stop:
				return
			}
		}
		switch {
		case n.bar != nil:
			if !s.rendezvous(w, n, cpu) {
				return
			}
		case n.mk != nil:
			// Draining a token is progress through the backlog just
			// like an empty-queue pop: decay the raided penalty here
			// too, so a queue fed a steady diet of multi-key tokens
			// (which never let it go empty) sheds the penalty as well.
			if r := q.raided.Load(); r > 0 {
				q.raided.Store(r / 2)
			}
			if s.cfg.NoMKHandoff {
				if !s.rendezvousMulti(w, n, cpu) {
					return
				}
			} else if n.mk.pending.Add(-1) == 0 {
				// Last depositor: every owner reached its token, so the
				// key set is claimed — execute here.
				s.cfg.Journal.Emit(obs.EvSchedHandoff, uint64(w), uint64(len(n.mk.keys)))
				if !s.executeMulti(n, cpu) {
					return
				}
			}
			// Otherwise this owner deposited and keeps draining the
			// unrelated work behind the token.
		default:
			if !n.keyed {
				q.freeLoad.Add(-1)
			}
			if !s.execute(n, cpu) {
				return
			}
		}
		q.load.Add(-1)
	}
}

// steal takes up to stealBatch non-keyed commands from the front of
// the ingress queue with the most stealable work. Keyed chains never
// migrate (their FIFO is the conflict order) and the scan stops at the
// first barrier or multi-key token, so a stolen command was admitted
// after every executed barrier and before every pending one —
// executing it on the thief is indistinguishable from the victim
// executing it. The scan is bounded, queues with no stealable work are
// skipped on an atomic read alone, and the scratch buffers make the
// path allocation-free.
func (s *IndexScheduler) steal(w int, sc *stealScratch) []*inode {
	if s.cfg.NoSteal {
		return nil
	}
	victim, most := -1, int64(0)
	for i := range s.queues {
		if i == w {
			continue
		}
		if l := s.queues[i].freeLoad.Load(); l > most {
			victim, most = i, l
		}
	}
	if victim < 0 {
		return nil
	}
	q := s.queues[victim]
	limit := 8 * s.stealBatch // bound the time under the victim's lock
	batch := sc.batch[:0]
	keep := sc.keep[:0]
	q.mu.Lock()
	if q.n < limit {
		limit = q.n
	}
	mask := len(q.buf) - 1
	scanned := 0
	for ; scanned < limit; scanned++ {
		n := q.buf[(q.head+scanned)&mask]
		if n.bar != nil || n.mk != nil {
			// Stop at rendezvous tokens (full or multi-key barriers):
			// nothing at or past one may jump it.
			break
		}
		if !n.keyed && len(batch) < s.stealBatch {
			batch = append(batch, n)
			continue
		}
		keep = append(keep, n)
	}
	if len(batch) > 0 {
		// Compact the scanned prefix in place: kept entries slide back
		// by len(batch) ring slots (their copies are already in keep,
		// so overwrites are safe in any order) and the head advances
		// past the vacated slots.
		for i, n := range keep {
			q.buf[(q.head+len(batch)+i)&mask] = n
		}
		for i := 0; i < len(batch); i++ {
			q.buf[(q.head+i)&mask] = nil
		}
		q.head = (q.head + len(batch)) & mask
		q.n -= len(batch)
	}
	q.mu.Unlock()
	if len(batch) > 0 {
		q.load.Add(-int64(len(batch)))
		left := q.freeLoad.Add(-int64(len(batch)))
		// Steal-aware placement feedback: record that this queue needed
		// raiding, so admission stops preferring it for idle keys.
		q.raided.Add(int64(len(batch)))
		s.stolen.Add(uint64(len(batch)))
		s.cfg.Journal.Emit(obs.EvSchedSteal, uint64(w), uint64(len(batch)))
		s.queues[w].load.Add(int64(len(batch)))
		if left > 0 {
			// More stealable backlog remains: cascade the doorbell so
			// another parked worker joins in.
			select {
			case s.stealSig <- struct{}{}:
			default:
			}
		}
	}
	return batch
}

// execute runs one non-barrier command after waiting out its gates:
// the predecessor's completion gate for readers and for successors of
// multi-key tokens, the sealed reader set for writers. Gate owners are
// always earlier-admitted commands, so the waits terminate. It reports
// false when the engine is stopping.
func (s *IndexScheduler) execute(n *inode, cpu *bench.RoleMeter) bool {
	if n.waitW != nil {
		select {
		case <-n.waitW.ch:
		case <-s.stop:
			return false
		}
	}
	for _, g := range n.waitWs {
		select {
		case <-g.ch:
		case <-s.stop:
			return false
		}
	}
	if g := n.waitR; g != nil {
		select {
		case <-g.done:
		case <-s.stop:
			return false
		}
		// This writer is the sealed group's unique waiter: recycle it.
		s.putGroup(g)
		n.waitR = nil
	}
	var start time.Time
	if cpu != nil {
		start = time.Now()
	}
	s.cfg.Trace.StampID(obs.StageExecStart, n.req.Client, n.req.Seq)
	output := s.exec(n.req)
	s.cfg.Trace.StampID(obs.StageExecEnd, n.req.Client, n.req.Seq)
	s.respond(n.req, output)
	if cpu != nil {
		cpu.Add(time.Since(start))
	}
	s.complete(n, output)
	return true
}

// executeMulti runs one multi-key token as its last-depositing owner
// (handoff mode). Every owner has deposited, so per-key FIFO order
// guarantees all earlier single-key commands of every touched key have
// completed; predecessor multi-key tokens (popped but possibly still
// pending) are waited out via their completion gates, and the sealed
// reader sets of the touched keys via their done channels. It reports
// false when the engine is stopping.
func (s *IndexScheduler) executeMulti(n *inode, cpu *bench.RoleMeter) bool {
	mk := n.mk
	for _, g := range mk.waitWs {
		select {
		case <-g.ch:
		case <-s.stop:
			return false
		}
	}
	for _, g := range mk.waitRs {
		select {
		case <-g.done:
		case <-s.stop:
			return false
		}
		// The executor is each sealed group's unique waiter.
		s.putGroup(g)
	}
	mk.waitRs = mk.waitRs[:0]
	var start time.Time
	if cpu != nil {
		start = time.Now()
	}
	s.cfg.Trace.StampID(obs.StageExecStart, n.req.Client, n.req.Seq)
	output := s.exec(n.req)
	s.cfg.Trace.StampID(obs.StageExecEnd, n.req.Client, n.req.Seq)
	s.respond(n.req, output)
	if cpu != nil {
		cpu.Add(time.Since(start))
	}
	s.completeMulti(n, output)
	s.putMK(n)
	return true
}

// rendezvous runs one barrier token: the executor (the minimum of the
// compiled worker set) waits for every other worker to drain up to its
// token, executes the command alone, then releases them. It reports
// false when the engine is stopping.
func (s *IndexScheduler) rendezvous(w int, n *inode, cpu *bench.RoleMeter) bool {
	if w != n.bar.executor {
		select {
		case n.bar.arrive <- struct{}{}:
		case <-s.stop:
			return false
		}
		select {
		case <-n.bar.release:
			return true
		case <-s.stop:
			return false
		}
	}
	for i := 1; i < len(s.queues); i++ {
		select {
		case <-n.bar.arrive:
		case <-s.stop:
			return false
		}
	}
	var start time.Time
	if cpu != nil {
		start = time.Now()
	}
	if n.marker != nil {
		// Quiesce marker: every worker is parked at its token, so the
		// closure observes the service at one deterministic log
		// position. No response, no at-most-once record.
		n.marker()
		if cpu != nil {
			cpu.Add(time.Since(start))
		}
		close(n.bar.release)
		return true
	}
	s.cfg.Trace.StampID(obs.StageExecStart, n.req.Client, n.req.Seq)
	output := s.exec(n.req)
	s.cfg.Trace.StampID(obs.StageExecEnd, n.req.Client, n.req.Seq)
	s.respond(n.req, output)
	if cpu != nil {
		cpu.Add(time.Since(start))
	}
	s.complete(n, output)
	close(n.bar.release)
	return true
}

// rendezvousMulti runs one multi-key token under the parking protocol
// (Tuning.NoMKHandoff — the ablation baseline the handoff is measured
// against): the executor (the lowest-id owner) waits for the other
// owners to drain up to their tokens and park, waits out the sealed
// reader sets, executes the command once, then releases the parked
// owners. Per-key FIFO order guarantees every earlier writer of every
// touched key completed before its owner reached the token, so the
// rendezvous is exactly the same 2PL lock point as the handoff's last
// deposit — at the cost of idling every non-executor owner for the
// command's full duration. It reports false when the engine is
// stopping.
func (s *IndexScheduler) rendezvousMulti(w int, n *inode, cpu *bench.RoleMeter) bool {
	mk := n.mk
	if w != mk.executor {
		select {
		case mk.arrive <- struct{}{}:
		case <-s.stop:
			return false
		}
		select {
		case <-mk.release:
			return true
		case <-s.stop:
			return false
		}
	}
	for i := 1; i < len(mk.owners); i++ {
		select {
		case <-mk.arrive:
		case <-s.stop:
			return false
		}
	}
	for _, g := range mk.waitWs {
		// Closed by construction in park mode (popped implies completed
		// for every predecessor), but waiting keeps the two protocols
		// structurally identical.
		select {
		case <-g.ch:
		case <-s.stop:
			return false
		}
	}
	for _, g := range mk.waitRs {
		select {
		case <-g.done:
		case <-s.stop:
			return false
		}
		s.putGroup(g)
	}
	mk.waitRs = mk.waitRs[:0]
	var start time.Time
	if cpu != nil {
		start = time.Now()
	}
	s.cfg.Trace.StampID(obs.StageExecStart, n.req.Client, n.req.Seq)
	output := s.exec(n.req)
	s.cfg.Trace.StampID(obs.StageExecEnd, n.req.Client, n.req.Seq)
	s.respond(n.req, output)
	if cpu != nil {
		cpu.Add(time.Since(start))
	}
	s.completeMulti(n, output)
	close(mk.release)
	return true
}

// recordDone records a completed request in the at-most-once layer
// (skipped entirely under an external execution hook).
func (s *IndexScheduler) recordDone(req *command.Request, output []byte) {
	if s.cfg.Exec != nil {
		return
	}
	cs := s.clientShard(req.Client)
	cs.mu.Lock()
	cs.table.Record(req.Client, req.Seq, output)
	delete(cs.inflight, requestID{client: req.Client, seq: req.Seq})
	cs.mu.Unlock()
}

// completeMulti releases a multi-key command: at-most-once recording,
// per-key conflict-index cleanup (in the same sorted-key order as
// admission), and the completion-gate close that successors of any
// touched key may be parked on. The token inode itself is recycled by
// the caller (handoff mode only).
func (s *IndexScheduler) completeMulti(n *inode, output []byte) {
	s.recordDone(n.req, output)
	for _, key := range n.mk.keys {
		ks := s.keyShard(key)
		ks.mu.Lock()
		if e := ks.live[key]; e != nil {
			e.total--
			e.writers--
			if e.lastWriter == n {
				e.lastWriter = nil
			}
			if e.total <= 0 {
				if g := e.readers; g != nil {
					// Unsealed, empty group: the dying entry held the
					// last reference.
					s.putGroup(g)
				}
				delete(ks.live, key)
				ks.putEntry(e)
			}
		}
		ks.mu.Unlock()
	}
	// The gate was pre-allocated at admission; any successor that
	// latched on did so under its key's shard lock, before the
	// lastWriter clearing above.
	close(n.gate.ch)
}

// complete records the response for at-most-once, closes the command's
// writer gate (if a successor latched one on), releases it from the
// conflict index, and recycles the inode.
func (s *IndexScheduler) complete(n *inode, output []byte) {
	s.recordDone(n.req, output)
	if !n.keyed {
		if n.bar == nil {
			s.putInode(n)
		}
		return
	}
	if len(n.mkeys) > 0 {
		// Multi-key reader: leave every touched key's reader group, in
		// the same sorted-key order as admission.
		for i, key := range n.mkeys {
			ks := s.keyShard(key)
			ks.mu.Lock()
			if e := ks.live[key]; e != nil {
				e.total--
				if g := n.grps[i]; g != nil {
					g.n--
					if g.done != nil && g.n == 0 {
						close(g.done)
					}
				}
				if e.total <= 0 {
					if g := e.readers; g != nil {
						s.putGroup(g)
					}
					delete(ks.live, key)
					ks.putEntry(e)
				}
			}
			ks.mu.Unlock()
		}
		s.putInode(n)
		return
	}
	ks := s.keyShard(n.key)
	ks.mu.Lock()
	if e := ks.live[n.key]; e != nil {
		e.total--
		if n.reader {
			if g := n.grp; g != nil {
				g.n--
				if g.done != nil && g.n == 0 {
					close(g.done)
				}
			}
		} else {
			e.writers--
			if e.lastWriter == n {
				e.lastWriter = nil
			}
		}
		if e.total <= 0 {
			if g := e.readers; g != nil {
				s.putGroup(g)
			}
			delete(ks.live, n.key)
			ks.putEntry(e)
		}
	}
	// n.gate is written by successor admissions under this shard's
	// lock; read it under the same lock, close it after.
	var g *gate
	if !n.reader {
		g = n.gate
	}
	ks.mu.Unlock()
	if g != nil {
		close(g.ch)
	}
	s.putInode(n)
}

func (s *IndexScheduler) respond(req *command.Request, output []byte) {
	Respond(s.cfg.Transport, req, output)
}

// exec runs one request through the configured execution hook.
func (s *IndexScheduler) exec(req *command.Request) []byte {
	if s.cfg.Exec != nil {
		return s.cfg.Exec(req)
	}
	return s.cfg.Service.Execute(req.Cmd, req.Input)
}

func (s *IndexScheduler) keyShard(key uint64) *keyShard {
	return &s.keyIdx[s.keyShardIndex(key)]
}

func (s *IndexScheduler) keyShardIndex(key uint64) uint64 {
	return mix64(key) % keyShardCount
}

func (s *IndexScheduler) clientShard(client uint64) *clientShard {
	return &s.clients[mix64(client)%clientShardCount]
}

// mix64 is a splitmix64-style finalizer spreading low-entropy ids
// across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stats reports the engine's work-stealing counters: stolen is the
// total number of commands migrated between ingress queues since start
// (monotonic); raided is the current sum of the per-queue decaying
// stolen-from penalties (a load-balance health signal — persistently
// non-zero means admission keeps placing work on queues that drain
// slower than their load suggests).
func (s *IndexScheduler) Stats() (stolen uint64, raided int64) {
	stolen = s.stolen.Load()
	for _, q := range s.queues {
		raided += q.raided.Load()
	}
	return stolen, raided
}

// EngineStats extracts the work-stealing counters from an engine;
// engines without stealing (the scan scheduler) report zeros.
func EngineStats(e Engine) (stolen uint64, raided int64) {
	if is, ok := e.(*IndexScheduler); ok {
		return is.Stats()
	}
	return 0, 0
}

var _ Engine = (*IndexScheduler)(nil)
var _ Engine = (*Scheduler)(nil)
