package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
)

// IndexScheduler is the index-based early scheduling engine, combining
// two techniques from the literature on parallel state-machine
// replication schedulers:
//
//   - Early scheduling (Alchieri, Dotti, Pedone): the mapping from
//     command classes to worker sets is compiled once from the C-Dep
//     (cdep.Compiled.Route), so admission performs no conflict
//     reasoning — it just routes.
//   - Index-based scheduling (Wu et al.): a hash-sharded per-key
//     conflict index maps each key with live commands to the worker
//     currently serving it, so a keyed command enqueues in O(1) behind
//     exactly the commands it conflicts with — never a scan over the
//     live set.
//
// Commands flow straight from the delivery thread into per-worker
// ingress queues; there is no scheduler thread to saturate a core (the
// bottleneck the paper measures for sP-SMR in Figures 3, 5 and 7).
// Conflict correctness falls out of queue discipline:
//
//   - Same-key commands land on one worker's FIFO while any of them is
//     live, so they execute in admission order. This serializes
//     same-key READS too — the scan engine lets readers of a key run
//     concurrently behind its last writer, but expressing that here
//     would need cross-queue dependency tracking, the very bookkeeping
//     this engine removes. Hot-key read-heavy workloads therefore
//     favor the scan engine (or a reader-count extension, see ROADMAP);
//     keyed-write and mixed workloads favor this one.
//   - Keys with no live commands are (re)assigned to the least-loaded
//     worker, which is what balances skewed workloads.
//   - Global (barrier) commands are enqueued on every worker's queue;
//     workers rendezvous at the token, worker 0 executes alone, then
//     releases the rest — exactly the paper's "wait for the worker
//     threads to finish their ongoing work" semantics.
//
// Submit keeps the scan engine's contract: one producer, or producers
// that are externally serialized.
type IndexScheduler struct {
	cfg      Config
	queues   []chan *inode
	queueLen []atomic.Int64
	keyIdx   []keyShard
	clients  []clientShard

	admitCPU *bench.RoleMeter

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// inode is one admitted command (or one worker's view of a barrier).
type inode struct {
	req   *command.Request
	bar   *indexBarrier // non-nil for barrier tokens
	keyed bool
	key   uint64
}

// indexBarrier coordinates one global command across the workers.
type indexBarrier struct {
	executor int           // worker that runs the command (min of the route's set)
	arrive   chan struct{} // workers signal "drained up to the token"
	release  chan struct{} // closed by the executor after running
}

// keyShard is one shard of the per-key conflict index: for every key
// with live (queued or executing) commands, the worker serving it and
// the live count. Keyed by cdep.KeyFunc output, hash-sharded so the
// admission thread and the workers' completions rarely contend.
type keyShard struct {
	mu   sync.Mutex
	live map[uint64]*keyEntry
}

type keyEntry struct {
	worker int
	live   int
}

// clientShard is one shard of the at-most-once state: the response
// cache plus the in-flight duplicate filter (shared across workers, so
// a retransmission routed anywhere is answered or suppressed).
type clientShard struct {
	mu       sync.Mutex
	table    *dedup.Table
	inflight map[requestID]struct{}
}

const (
	keyShardCount    = 128
	clientShardCount = 64
)

// StartIndex launches the index engine: the per-worker queues and the
// worker pool, but no scheduler thread.
func StartIndex(cfg Config) (*IndexScheduler, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sched: %d workers", cfg.Workers)
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 1024
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	if cfg.Compiled == nil {
		return nil, fmt.Errorf("sched: Compiled is required")
	}
	s := &IndexScheduler{
		cfg:      cfg,
		queues:   make([]chan *inode, cfg.Workers),
		queueLen: make([]atomic.Int64, cfg.Workers),
		keyIdx:   make([]keyShard, keyShardCount),
		clients:  make([]clientShard, clientShardCount),
		stop:     make(chan struct{}),
	}
	for i := range s.queues {
		s.queues[i] = make(chan *inode, cfg.QueueBound)
	}
	for i := range s.keyIdx {
		s.keyIdx[i].live = make(map[uint64]*keyEntry)
	}
	for i := range s.clients {
		s.clients[i].table = dedup.NewTable(cfg.DedupWindow)
		s.clients[i].inflight = make(map[requestID]struct{})
	}
	// Admission runs on the caller (the delivery pump); metering it as
	// "scheduler" keeps the CPU panels comparable with the scan engine —
	// and shows how little of a core O(1) routing needs.
	s.admitCPU = cfg.CPU.Role("scheduler")
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.work(w)
	}
	return s, nil
}

// Submit routes one command to its worker queue in O(1). It reports
// false once the engine is stopping. Commands are ordered per conflict
// chain in Submit order.
//
// The busy meter stops before the queue send: a blocked wait on a full
// worker queue is backpressure, not scheduling work, and counting it
// would inflate the scheduler-CPU comparison against the scan engine
// (whose hand-off arm is likewise unmetered).
func (s *IndexScheduler) Submit(req *command.Request) bool {
	select {
	case <-s.stop:
		return false
	default:
	}
	stopBusy := s.admitCPU.Busy()

	// At-most-once: answer completed retransmissions from the cache,
	// drop duplicates whose original is still live (the same metastable
	// retransmission collapse the scan engine defends against).
	cs := s.clientShard(req.Client)
	id := requestID{client: req.Client, seq: req.Seq}
	cs.mu.Lock()
	if out, dup := cs.table.Lookup(req.Client, req.Seq); dup {
		cs.mu.Unlock()
		s.respond(req, out)
		stopBusy()
		return true
	}
	if _, live := cs.inflight[id]; live {
		cs.mu.Unlock()
		stopBusy()
		return true
	}
	cs.inflight[id] = struct{}{}
	cs.mu.Unlock()

	route := s.cfg.Compiled.Route(req.Cmd)
	kind := route.Kind
	var key uint64
	if kind == cdep.RouteKeyed {
		k, ok := s.cfg.Compiled.Key(req.Cmd, req.Input)
		if !ok {
			// Keyless invocation of a keyed command may touch any
			// object: serialize it like a global command.
			kind = cdep.RouteBarrier
		} else {
			key = k
		}
	}

	var (
		w int
		n *inode
	)
	switch kind {
	case cdep.RouteBarrier:
		stopBusy()
		return s.admitBarrier(req, route)
	case cdep.RouteKeyed:
		ks := s.keyShard(key)
		ks.mu.Lock()
		if e := ks.live[key]; e != nil {
			// Live conflict chain: append behind it (same worker FIFO
			// preserves admission order for the key).
			w = e.worker
			e.live++
		} else {
			// Idle key: a placement pin wins (§IV-D load-balancing
			// hint), else the least-loaded member of the compiled
			// worker set.
			if pw, ok := s.cfg.Compiled.PlacedWorker(key); ok && pw < len(s.queues) {
				w = pw
			} else {
				w = s.leastLoaded(route.Workers)
			}
			ks.live[key] = &keyEntry{worker: w, live: 1}
		}
		ks.mu.Unlock()
		n = &inode{req: req, keyed: true, key: key}
	default:
		w = s.leastLoaded(route.Workers)
		n = &inode{req: req}
	}
	stopBusy()
	return s.enqueue(w, n)
}

// Close stops the engine and waits for the workers to exit.
func (s *IndexScheduler) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// admitBarrier enqueues one barrier token on every worker's queue. The
// token is fully enqueued before Submit returns, so every command
// admitted earlier precedes it on its queue and every later command
// follows it — the rendezvous cannot deadlock. The compiled worker
// set's minimum member executes.
func (s *IndexScheduler) admitBarrier(req *command.Request, route cdep.Route) bool {
	executor := route.Workers.Min()
	if executor < 0 || executor >= len(s.queues) {
		executor = 0
	}
	n := &inode{
		req: req,
		bar: &indexBarrier{
			executor: executor,
			arrive:   make(chan struct{}, len(s.queues)),
			release:  make(chan struct{}),
		},
	}
	for w := range s.queues {
		if !s.enqueue(w, n) {
			return false
		}
	}
	return true
}

func (s *IndexScheduler) enqueue(w int, n *inode) bool {
	s.queueLen[w].Add(1)
	select {
	case s.queues[w] <- n:
		return true
	case <-s.stop:
		s.queueLen[w].Add(-1)
		return false
	}
}

// leastLoaded returns the member of the compiled worker set with the
// shortest ingress backlog (queued + executing). O(k) with k <= 64; an
// empty or out-of-range set falls back to all workers.
func (s *IndexScheduler) leastLoaded(set command.Gamma) int {
	best, bestLen := 0, int64(1<<62)
	for w := range s.queueLen {
		if set != 0 && !set.Has(w) {
			continue
		}
		if l := s.queueLen[w].Load(); l < bestLen {
			best, bestLen = w, l
		}
	}
	return best
}

// work is one pool worker draining its own ingress queue.
func (s *IndexScheduler) work(w int) {
	defer s.wg.Done()
	cpu := s.cfg.CPU.Role("worker")
	for {
		var n *inode
		select {
		case n = <-s.queues[w]:
		case <-s.stop:
			return
		}
		if n.bar != nil {
			if !s.rendezvous(w, n, cpu.Busy) {
				return
			}
		} else {
			stopBusy := cpu.Busy()
			output := s.cfg.Service.Execute(n.req.Cmd, n.req.Input)
			s.respond(n.req, output)
			stopBusy()
			s.complete(n, output)
		}
		s.queueLen[w].Add(-1)
	}
}

// rendezvous runs one barrier token: the executor (the minimum of the
// compiled worker set) waits for every other worker to drain up to its
// token, executes the command alone, then releases them. It reports
// false when the engine is stopping.
func (s *IndexScheduler) rendezvous(w int, n *inode, busy func() func()) bool {
	if w != n.bar.executor {
		select {
		case n.bar.arrive <- struct{}{}:
		case <-s.stop:
			return false
		}
		select {
		case <-n.bar.release:
			return true
		case <-s.stop:
			return false
		}
	}
	for i := 1; i < len(s.queues); i++ {
		select {
		case <-n.bar.arrive:
		case <-s.stop:
			return false
		}
	}
	stopBusy := busy()
	output := s.cfg.Service.Execute(n.req.Cmd, n.req.Input)
	s.respond(n.req, output)
	stopBusy()
	s.complete(n, output)
	close(n.bar.release)
	return true
}

// complete records the response for at-most-once and releases the
// command's key in the conflict index.
func (s *IndexScheduler) complete(n *inode, output []byte) {
	cs := s.clientShard(n.req.Client)
	cs.mu.Lock()
	cs.table.Record(n.req.Client, n.req.Seq, output)
	delete(cs.inflight, requestID{client: n.req.Client, seq: n.req.Seq})
	cs.mu.Unlock()
	if n.keyed {
		ks := s.keyShard(n.key)
		ks.mu.Lock()
		if e := ks.live[n.key]; e != nil {
			if e.live--; e.live <= 0 {
				delete(ks.live, n.key)
			}
		}
		ks.mu.Unlock()
	}
}

func (s *IndexScheduler) respond(req *command.Request, output []byte) {
	respond(s.cfg.Transport, req, output)
}

func (s *IndexScheduler) keyShard(key uint64) *keyShard {
	return &s.keyIdx[mix64(key)%keyShardCount]
}

func (s *IndexScheduler) clientShard(client uint64) *clientShard {
	return &s.clients[mix64(client)%clientShardCount]
}

// mix64 is a splitmix64-style finalizer spreading low-entropy ids
// across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var _ Engine = (*IndexScheduler)(nil)
var _ Engine = (*Scheduler)(nil)
